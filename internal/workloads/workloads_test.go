package workloads

import (
	"testing"
	"time"

	"chiron/internal/behavior"
)

func TestSuiteShapes(t *testing.T) {
	// Section 6's benchmark table: stages / functions / max parallelism.
	cases := []struct {
		name            string
		stages, fns, mp int
	}{
		{"SocialNetwork", 4, 10, 5},
		{"MovieReviewing", 4, 9, 4},
		{"SLApp", 2, 7, 4},
		{"SLApp-V", 5, 10, 5},
		{"FINRA-5", 2, 6, 5},
		{"FINRA-50", 2, 51, 50},
		{"FINRA-100", 2, 101, 100},
		{"FINRA-200", 2, 201, 200},
	}
	suite := Suite()
	if len(suite) != len(cases) {
		t.Fatalf("suite has %d workloads, want %d", len(suite), len(cases))
	}
	for i, tc := range cases {
		w := suite[i].Workflow
		if suite[i].Name != tc.name {
			t.Errorf("suite[%d] = %s, want %s", i, suite[i].Name, tc.name)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if len(w.Stages) != tc.stages {
			t.Errorf("%s: %d stages, want %d", tc.name, len(w.Stages), tc.stages)
		}
		if w.NumFunctions() != tc.fns {
			t.Errorf("%s: %d functions, want %d", tc.name, w.NumFunctions(), tc.fns)
		}
		if w.MaxParallelism() != tc.mp {
			t.Errorf("%s: max parallelism %d, want %d", tc.name, w.MaxParallelism(), tc.mp)
		}
	}
}

func TestSLAppHasNoSequentialStage(t *testing.T) {
	// "there is no sequential function in SLApp"
	for _, st := range SLApp().Stages {
		if st.Parallelism() < 2 {
			t.Fatal("SLApp must have only parallel stages")
		}
	}
}

func TestSLAppMixesWorkloadClasses(t *testing.T) {
	// CPU-, disk- and network-intensive functions with similar latency.
	w := SLApp()
	var minSolo, maxSolo time.Duration
	cpuHeavy, ioHeavy := false, false
	for _, fn := range w.Functions() {
		solo := fn.SoloLatency()
		if minSolo == 0 || solo < minSolo {
			minSolo = solo
		}
		if solo > maxSolo {
			maxSolo = solo
		}
		if fn.TotalBlock() == 0 {
			cpuHeavy = true
		}
		if fn.TotalBlock() > fn.TotalCPU() {
			ioHeavy = true
		}
	}
	if !cpuHeavy || !ioHeavy {
		t.Fatal("SLApp must mix CPU-bound and IO-bound functions")
	}
	if float64(maxSolo)/float64(minSolo) > 1.3 {
		t.Fatalf("SLApp latencies spread %v-%v; classes must have similar latency", minSolo, maxSolo)
	}
}

func TestFINRAValidatorsAreShortAndFetchDominates(t *testing.T) {
	w := FINRA(50)
	fetch := w.Stages[0].Functions[0]
	if fetch.SoloLatency() < 30*time.Millisecond {
		t.Fatal("fetch stage should dominate FINRA's sequential time")
	}
	for _, v := range w.Stages[1].Functions {
		solo := v.SoloLatency()
		if solo < 3*time.Millisecond || solo > 8*time.Millisecond {
			t.Fatalf("validator solo %v, want the few-millisecond regime that puts the thread/process crossover between 5 and 50 (Figure 6)", solo)
		}
	}
}

func TestFINRAHeterogeneityIsMild(t *testing.T) {
	// Validators vary a few percent — enough for natural CDFs, not
	// enough to defeat balanced partitioning.
	w := FINRA(100)
	var min, max time.Duration
	for _, v := range w.Stages[1].Functions {
		s := v.SoloLatency()
		if min == 0 || s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if min == max {
		t.Fatal("validators are identical; expected mild heterogeneity")
	}
	if float64(max)/float64(min) > 1.25 {
		t.Fatalf("validator spread %.2fx too wide", float64(max)/float64(min))
	}
}

func TestFINRAPanicsOnZeroParallelism(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FINRA(0)
}

func TestDeterministicConstruction(t *testing.T) {
	a, b := FINRA(25), FINRA(25)
	for i, fa := range a.Functions() {
		fb := b.Functions()[i]
		if fa.Name != fb.Name || fa.SoloLatency() != fb.SoloLatency() {
			t.Fatal("workload construction is nondeterministic")
		}
	}
}

func TestInJava(t *testing.T) {
	w := InJava(SLApp())
	if w.Name != "SLApp-Java" {
		t.Fatalf("name = %s", w.Name)
	}
	for _, fn := range w.Functions() {
		if fn.Runtime != behavior.Java {
			t.Fatalf("%s still on %s", fn.Name, fn.Runtime)
		}
	}
	// Original untouched.
	for _, fn := range SLApp().Functions() {
		if fn.Runtime != behavior.Python {
			t.Fatal("InJava mutated the source workflow")
		}
	}
}

func TestWebServiceLatencyTargets(t *testing.T) {
	// Interactive web workflows target < 100 ms (Section 1); the summed
	// solo path should sit well under that so platform overhead is the
	// story.
	for _, name := range []string{"SocialNetwork", "MovieReviewing"} {
		var w = SocialNetwork()
		if name == "MovieReviewing" {
			w = MovieReviewing()
		}
		var critical time.Duration
		for _, st := range w.Stages {
			var slowest time.Duration
			for _, fn := range st.Functions {
				if s := fn.SoloLatency(); s > slowest {
					slowest = s
				}
			}
			critical += slowest
		}
		if critical > 40*time.Millisecond {
			t.Fatalf("%s critical path %v too slow for an interactive service", name, critical)
		}
	}
}
