// Package workloads builds the five benchmark applications of the
// evaluation (Section 6, "Testbed and Benchmarks"), as behaviour specs
// calibrated so that the reproduced experiments land near the paper's
// reported Chiron latencies (Figure 13 annotations: SN 26 ms, MR 22 ms,
// SLApp 56 ms, SLApp-V 93 ms, FINRA-5 85 ms, FINRA-50 103 ms).
//
// Functions carry small deterministic per-instance heterogeneity (a few
// percent) so partitioning has real work to do and latency CDFs look like
// measurements rather than step functions.
package workloads

import (
	"fmt"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
)

// vary deterministically perturbs d by up to +/-8% based on (salt, i).
func vary(d time.Duration, salt, i int) time.Duration {
	h := uint64(salt)*1099511628211 + uint64(i)*2654435761
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	frac := float64(h%1600)/10000 - 0.08 // [-0.08, +0.08)
	return time.Duration(float64(d) * (1 + frac))
}

func ms(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }

// webFn is a short interactive-service function: CPU around a remote call.
func webFn(name string, cpu, net time.Duration, outBytes int64, salt, i int) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: vary(cpu*6/10, salt, i)},
			{Kind: behavior.NetIO, Dur: vary(net, salt, i+100), Bytes: 2048},
			{Kind: behavior.CPU, Dur: vary(cpu*4/10, salt, i+200)},
		},
		MemMB:       2.2,
		OutputBytes: outBytes,
	}
}

// FINRA is the Financial Industry Regulatory Authority trade-validation
// application [2,30]: a fetch-and-parse stage followed by par parallel
// rule validators.
func FINRA(par int) *dag.Workflow {
	if par < 1 {
		panic(fmt.Sprintf("workloads: FINRA parallelism %d", par))
	}
	fetch := &behavior.Spec{
		Name: "fetch-portfolio", Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: ms(6)},
			{Kind: behavior.NetIO, Dur: ms(45), Bytes: 96 << 10},
			{Kind: behavior.CPU, Dur: ms(4)},
		},
		MemMB:       6,
		OutputBytes: 96 << 10,
	}
	// Rule validators are CPU-dominated (audit arithmetic over the parsed
	// batch) with a short ledger write. Their ~5.5ms of CPU sits right in
	// the regime Observation 3 needs: below ~14-way parallelism the GIL's
	// serialized threads beat fork block time, above it true parallelism
	// wins — the Faastlane-T / Faastlane crossover of Figure 6.
	validators := make([]*behavior.Spec, par)
	for i := range validators {
		validators[i] = &behavior.Spec{
			Name: fmt.Sprintf("validate-%03d", i+1), Runtime: behavior.Python,
			Segments: []behavior.Segment{
				{Kind: behavior.CPU, Dur: vary(ms(4.3), 17, i)},
				{Kind: behavior.DiskIO, Dur: vary(ms(0.45), 18, i), Bytes: 4096},
				{Kind: behavior.CPU, Dur: vary(ms(1.15), 19, i)},
			},
			MemMB:       0.5,
			OutputBytes: 512,
		}
	}
	w, err := dag.FromStages(fmt.Sprintf("FINRA-%d", par), 0,
		[]*behavior.Spec{fetch}, validators)
	if err != nil {
		panic(err)
	}
	return w
}

// SocialNetwork is the DeathStarBench compose-post path [23]: 4 stages, 10
// functions, max parallelism 5.
func SocialNetwork() *dag.Workflow {
	stage2 := []*behavior.Spec{
		webFn("text-filter", ms(2.4), ms(1.6), 4096, 31, 0),
		webFn("media-check", ms(2.8), ms(2.2), 8192, 31, 1),
		webFn("user-tag", ms(1.9), ms(1.8), 2048, 31, 2),
		webFn("url-shorten", ms(1.6), ms(1.4), 1024, 31, 3),
		webFn("mention-scan", ms(2.2), ms(1.7), 2048, 31, 4),
	}
	stage3 := []*behavior.Spec{
		webFn("unique-id", ms(1.4), ms(1.1), 512, 32, 0),
		webFn("post-store", ms(2.6), ms(2.4), 4096, 32, 1),
		webFn("graph-update", ms(2.1), ms(1.9), 2048, 32, 2),
	}
	w, err := dag.FromStages("SocialNetwork", 0,
		[]*behavior.Spec{webFn("compose-post", ms(1.8), ms(1.2), 8192, 30, 0)},
		stage2,
		stage3,
		[]*behavior.Spec{webFn("write-timeline", ms(1.7), ms(1.5), 1024, 33, 0)},
	)
	if err != nil {
		panic(err)
	}
	return w
}

// MovieReviewing is the DeathStarBench movie-review path [23]: 4 stages, 9
// functions, max parallelism 4.
func MovieReviewing() *dag.Workflow {
	stage2 := []*behavior.Spec{
		webFn("rate-movie", ms(1.8), ms(1.3), 1024, 41, 0),
		webFn("review-text", ms(2.3), ms(1.5), 4096, 41, 1),
		webFn("user-lookup", ms(1.5), ms(1.6), 1024, 41, 2),
		webFn("movie-id", ms(1.3), ms(1.1), 512, 41, 3),
	}
	stage3 := []*behavior.Spec{
		webFn("review-store", ms(2.2), ms(2.0), 4096, 42, 0),
		webFn("rating-update", ms(1.7), ms(1.4), 1024, 42, 1),
		webFn("user-review-link", ms(1.6), ms(1.3), 1024, 42, 2),
	}
	w, err := dag.FromStages("MovieReviewing", 0,
		[]*behavior.Spec{webFn("front-review", ms(1.5), ms(1.0), 4096, 40, 0)},
		stage2,
		stage3,
		[]*behavior.Spec{webFn("review-page", ms(1.4), ms(1.2), 1024, 43, 0)},
	)
	if err != nil {
		panic(err)
	}
	return w
}

// slapp builds an SLApp function of the given class with ~solo latency.
func slappFn(name string, class behavior.Class, solo time.Duration, salt, i int) *behavior.Spec {
	s := behavior.FromClass(name, class, vary(solo, salt, i), behavior.Python)
	s.OutputBytes = 1024
	return s
}

// SLApp is the serverless application produced from [33]: 2 parallel
// stages, 7 functions of similar latency across three workload types (CPU,
// disk I/O and network I/O intensive); no sequential function, max
// parallelism 4.
func SLApp() *dag.Workflow {
	solo := ms(10)
	stage1 := []*behavior.Spec{
		slappFn("factorial-a", behavior.Factorial, solo, 51, 0),
		slappFn("disk-scan-a", behavior.DiskHeavy, solo, 51, 1),
		slappFn("net-fetch-a", behavior.NetHeavy, solo, 51, 2),
	}
	stage2 := []*behavior.Spec{
		slappFn("fibonacci-b", behavior.Fibonacci, solo, 52, 0),
		slappFn("factorial-b", behavior.Factorial, solo, 52, 1),
		slappFn("disk-scan-b", behavior.DiskHeavy, solo, 52, 2),
		slappFn("net-fetch-b", behavior.NetHeavy, solo, 52, 3),
	}
	w, err := dag.FromStages("SLApp", 0, stage1, stage2)
	if err != nil {
		panic(err)
	}
	return w
}

// SLAppV is the SLApp variant [33]: 5 stages, 10 functions, max
// parallelism 5.
func SLAppV() *dag.Workflow {
	solo := ms(12)
	w, err := dag.FromStages("SLApp-V", 0,
		[]*behavior.Spec{slappFn("ingest", behavior.NetHeavy, solo, 60, 0)},
		[]*behavior.Spec{
			slappFn("shard-1", behavior.Factorial, solo, 61, 0),
			slappFn("shard-2", behavior.Fibonacci, solo, 61, 1),
			slappFn("shard-3", behavior.DiskHeavy, solo, 61, 2),
			slappFn("shard-4", behavior.NetHeavy, solo, 61, 3),
			slappFn("shard-5", behavior.Factorial, solo, 61, 4),
		},
		[]*behavior.Spec{
			slappFn("merge-a", behavior.DiskHeavy, solo, 62, 0),
			slappFn("merge-b", behavior.Fibonacci, solo, 62, 1),
		},
		[]*behavior.Spec{slappFn("rank", behavior.Factorial, solo, 63, 0)},
		[]*behavior.Spec{slappFn("publish", behavior.NetHeavy, solo, 64, 0)},
	)
	if err != nil {
		panic(err)
	}
	return w
}

// InJava clones a workflow with every function on the GIL-free Java
// runtime (Figure 18's no-GIL evaluation).
func InJava(w *dag.Workflow) *dag.Workflow {
	c := w.Clone()
	c.Name = w.Name + "-Java"
	for _, fn := range c.Functions() {
		fn.Runtime = behavior.Java
	}
	return c
}

// TailHeavy is a hedging testbed, not a paper workload: a short 3-stage
// pipeline whose middle function carries a heavy-tailed straggler — a
// few percent of live executions take an extra TailDur that neither the
// profiler nor the predictor models. It exists to exercise request
// hedging (the tail is exactly the unmodeled noise a hedge cuts) and is
// exposed through Extras, not Suite, so the paper's tables stay fixed.
func TailHeavy() *dag.Workflow {
	lookup := &behavior.Spec{
		Name: "th-lookup", Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: ms(1.2)},
			{Kind: behavior.NetIO, Dur: ms(2.0), Bytes: 2048},
		},
		MemMB:       2,
		OutputBytes: 2048,
	}
	straggler := &behavior.Spec{
		Name: "th-straggler", Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: ms(2.0)},
			// The tail: 4% of executions stall an extra 200ms — a GC
			// pause, a slow replica, a noisy neighbour.
			{Kind: behavior.NetIO, Dur: ms(8.0), Bytes: 8192,
				TailDur: ms(200), TailProb: 0.04},
			{Kind: behavior.CPU, Dur: ms(1.5)},
		},
		MemMB:       3,
		OutputBytes: 4096,
	}
	render := &behavior.Spec{
		Name: "th-render", Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: ms(1.8)},
		},
		MemMB:       2,
		OutputBytes: 1024,
	}
	w, err := dag.FromStages("TailHeavy", 0,
		[]*behavior.Spec{lookup},
		[]*behavior.Spec{straggler},
		[]*behavior.Spec{render},
	)
	if err != nil {
		panic(err)
	}
	return w
}

// Entry names one evaluation workload.
type Entry struct {
	Name     string
	Workflow *dag.Workflow
}

// Suite returns the eight workloads of Figures 13-17 and 19, in the
// paper's column order.
func Suite() []Entry {
	return []Entry{
		{"SocialNetwork", SocialNetwork()},
		{"MovieReviewing", MovieReviewing()},
		{"SLApp", SLApp()},
		{"SLApp-V", SLAppV()},
		{"FINRA-5", FINRA(5)},
		{"FINRA-50", FINRA(50)},
		{"FINRA-100", FINRA(100)},
		{"FINRA-200", FINRA(200)},
	}
}

// Extras returns registrable workloads that are not part of the paper's
// evaluation suite (experiments iterate Suite; adding here is safe).
func Extras() []Entry {
	return []Entry{
		{"TailHeavy", TailHeavy()},
	}
}
