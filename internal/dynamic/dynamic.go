// Package dynamic extends Chiron to dynamic DAGs, the first open problem
// in the paper's Discussion ("where the function chain of workflow is not
// known a priori, such as switch step in Video-FFmpeg determines whether
// to execute the split function or the simple_process function based on
// the result of the upload function").
//
// A dynamic workflow is a static head followed by a switch over
// alternative continuations. The approach here is variant pre-planning:
// PGP plans every (head + branch) variant offline — wrap scheduling is
// offline anyway, so planning k variants costs k plans — and at request
// time the switch outcome selects which pre-planned deployment serves the
// tail. Expected latency and resources are branch-weighted.
package dynamic

import (
	"fmt"
	"math/rand"
	"time"

	"chiron/internal/dag"
	"chiron/internal/engine"
	"chiron/internal/model"
	"chiron/internal/pgp"
	"chiron/internal/profiler"
	"chiron/internal/wrap"
)

// Branch is one continuation the switch can choose.
type Branch struct {
	// Name labels the branch ("split-pipeline", "simple-process").
	Name string
	// Stages are the continuation's stages, executed after the head.
	Stages []dag.Stage
	// Weight is the branch's selection probability; weights are
	// normalized over all branches.
	Weight float64
}

// Workflow is a dynamic workflow: head stages, then a switch.
type Workflow struct {
	Name string
	// Head holds the stages executed before the switch (at least one;
	// the last head function's result decides the branch).
	Head []dag.Stage
	// Branches are the alternative continuations (at least two, or the
	// workflow would be static).
	Branches []Branch
}

// Validate checks structure: non-empty head, >= 2 branches with positive
// weights, and every variant valid as a static workflow.
func (w *Workflow) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("dynamic: workflow has empty name")
	}
	if len(w.Head) == 0 {
		return fmt.Errorf("dynamic: %s has no head stages", w.Name)
	}
	if len(w.Branches) < 2 {
		return fmt.Errorf("dynamic: %s has %d branches; a switch needs at least 2", w.Name, len(w.Branches))
	}
	for _, b := range w.Branches {
		if b.Weight <= 0 {
			return fmt.Errorf("dynamic: %s branch %q has non-positive weight", w.Name, b.Name)
		}
		if len(b.Stages) == 0 {
			return fmt.Errorf("dynamic: %s branch %q is empty", w.Name, b.Name)
		}
	}
	_, err := w.Variants()
	return err
}

// Variants returns one static workflow per branch: head + branch stages.
func (w *Workflow) Variants() ([]*dag.Workflow, error) {
	out := make([]*dag.Workflow, len(w.Branches))
	for i, b := range w.Branches {
		v := &dag.Workflow{
			Name:   fmt.Sprintf("%s/%s", w.Name, b.Name),
			Stages: append(append([]dag.Stage{}, w.Head...), b.Stages...),
		}
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("dynamic: variant %q: %w", b.Name, err)
		}
		out[i] = v
	}
	return out, nil
}

// Union returns a static workflow containing the head and every branch's
// functions (for profiling: every function that might run must be
// profiled). Branch stages are appended in branch order.
func (w *Workflow) Union() (*dag.Workflow, error) {
	u := &dag.Workflow{Name: w.Name + "/union", Stages: append([]dag.Stage{}, w.Head...)}
	for _, b := range w.Branches {
		u.Stages = append(u.Stages, b.Stages...)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

// Deployment is the pre-planned variant set.
type Deployment struct {
	Source   *Workflow
	Variants []*dag.Workflow
	Plans    []*wrap.Plan
	// Predicted is the per-variant predicted latency.
	Predicted []time.Duration
	weights   []float64
}

// Plan profiles the union of all branches and pre-plans every variant
// with PGP under the SLO.
func Plan(w *Workflow, c model.Constants, slo time.Duration) (*Deployment, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	union, err := w.Union()
	if err != nil {
		return nil, err
	}
	set, err := profiler.ProfileWorkflow(union, profiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	variants, err := w.Variants()
	if err != nil {
		return nil, err
	}
	d := &Deployment{Source: w, Variants: variants}
	var totalW float64
	for _, b := range w.Branches {
		totalW += b.Weight
	}
	for i, v := range variants {
		res, err := pgp.Plan(v, set, pgp.Options{Const: c, SLO: slo})
		if err != nil {
			return nil, fmt.Errorf("dynamic: planning variant %q: %w", v.Name, err)
		}
		d.Plans = append(d.Plans, res.Plan)
		d.Predicted = append(d.Predicted, res.Predicted)
		d.weights = append(d.weights, w.Branches[i].Weight/totalW)
	}
	return d, nil
}

// ExpectedLatency is the branch-weighted predicted latency.
func (d *Deployment) ExpectedLatency() time.Duration {
	var sum float64
	for i, p := range d.Predicted {
		sum += d.weights[i] * float64(p)
	}
	return time.Duration(sum)
}

// Choose picks a branch index from the weights, deterministically for a
// seed (standing in for the head function's data-dependent decision). The
// seed is bit-mixed first: math/rand's first draw is correlated across
// nearby seeds.
func (d *Deployment) Choose(seed int64) int {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	rng := rand.New(rand.NewSource(int64(z)))
	x := rng.Float64()
	acc := 0.0
	for i, w := range d.weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(d.weights) - 1
}

// Invoke serves one request: the switch selects a branch (seeded), the
// branch's pre-planned deployment executes it.
func (d *Deployment) Invoke(env engine.Env, seed int64) (branch int, res *engine.Result, err error) {
	branch = d.Choose(seed)
	env.Seed = seed
	res, err = engine.Run(d.Variants[branch], d.Plans[branch], env)
	return branch, res, err
}

// InvokeMany serves n requests and returns per-branch latencies.
func (d *Deployment) InvokeMany(env engine.Env, seed int64, n int) (map[int][]time.Duration, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dynamic: non-positive request count %d", n)
	}
	out := make(map[int][]time.Duration)
	for i := 0; i < n; i++ {
		b, res, err := d.Invoke(env, seed+int64(i)*2654435761)
		if err != nil {
			return nil, err
		}
		out[b] = append(out[b], res.E2E)
	}
	return out, nil
}
