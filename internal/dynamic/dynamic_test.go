package dynamic

import (
	"math"
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/engine"
	"chiron/internal/model"
)

func fn(name string, cpu time.Duration) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: cpu}},
		MemMB:    2,
	}
}

// videoFFmpeg mirrors the paper's Discussion example: upload decides
// between a parallel split/process/merge pipeline and a single
// simple_process step.
func videoFFmpeg(t *testing.T) *Workflow {
	t.Helper()
	w := &Workflow{
		Name: "video-ffmpeg",
		Head: []dag.Stage{{Functions: []*behavior.Spec{fn("upload", 4*time.Millisecond)}}},
		Branches: []Branch{
			{
				Name:   "split-pipeline",
				Weight: 0.3,
				Stages: []dag.Stage{
					{Functions: []*behavior.Spec{fn("split", 3*time.Millisecond)}},
					{Functions: []*behavior.Spec{
						fn("encode-1", 8*time.Millisecond), fn("encode-2", 8*time.Millisecond),
						fn("encode-3", 8*time.Millisecond), fn("encode-4", 8*time.Millisecond),
					}},
					{Functions: []*behavior.Spec{fn("merge", 3*time.Millisecond)}},
				},
			},
			{
				Name:   "simple",
				Weight: 0.7,
				Stages: []dag.Stage{
					{Functions: []*behavior.Spec{fn("simple_process", 10*time.Millisecond)}},
				},
			},
		},
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestVariants(t *testing.T) {
	w := videoFFmpeg(t)
	vs, err := w.Variants()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("%d variants", len(vs))
	}
	if len(vs[0].Stages) != 4 || len(vs[1].Stages) != 2 {
		t.Fatalf("variant stage counts %d/%d, want 4/2", len(vs[0].Stages), len(vs[1].Stages))
	}
	if vs[0].Lookup("upload") == nil || vs[1].Lookup("upload") == nil {
		t.Fatal("head not shared across variants")
	}
	if vs[1].Lookup("split") != nil {
		t.Fatal("simple variant contains the other branch's functions")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Workflow)
	}{
		{"empty name", func(w *Workflow) { w.Name = "" }},
		{"no head", func(w *Workflow) { w.Head = nil }},
		{"one branch", func(w *Workflow) { w.Branches = w.Branches[:1] }},
		{"zero weight", func(w *Workflow) { w.Branches[0].Weight = 0 }},
		{"empty branch", func(w *Workflow) { w.Branches[1].Stages = nil }},
		{"duplicate fn across head and branch", func(w *Workflow) {
			w.Branches[1].Stages[0].Functions[0].Name = "upload"
		}},
	}
	for _, tc := range cases {
		w := videoFFmpeg(t)
		tc.mut(w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestUnionProfilesEveryFunction(t *testing.T) {
	w := videoFFmpeg(t)
	u, err := w.Union()
	if err != nil {
		t.Fatal(err)
	}
	if u.NumFunctions() != 8 {
		t.Fatalf("union has %d functions, want 8", u.NumFunctions())
	}
}

func TestPlanAndInvoke(t *testing.T) {
	w := videoFFmpeg(t)
	c := model.Default()
	d, err := Plan(w, c, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Plans) != 2 {
		t.Fatalf("%d plans", len(d.Plans))
	}
	for i, p := range d.Plans {
		if err := p.Validate(d.Variants[i]); err != nil {
			t.Fatalf("variant %d plan invalid: %v", i, err)
		}
	}
	env := engine.Env{Const: c, Fidelity: true}
	branch, res, err := d.Invoke(env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if branch < 0 || branch > 1 || res.E2E <= 0 {
		t.Fatalf("branch %d, e2e %v", branch, res.E2E)
	}
}

func TestBranchSelectionFollowsWeights(t *testing.T) {
	w := videoFFmpeg(t)
	d, err := Plan(w, model.Default(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	n := 2000
	for i := 0; i < n; i++ {
		counts[d.Choose(int64(i))]++
	}
	frac := float64(counts[0]) / float64(n)
	if math.Abs(frac-0.3) > 0.05 {
		t.Fatalf("split branch chosen %.2f of the time, want ~0.30", frac)
	}
}

func TestExpectedLatencyIsWeighted(t *testing.T) {
	w := videoFFmpeg(t)
	d, err := Plan(w, model.Default(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	exp := d.ExpectedLatency()
	lo, hi := d.Predicted[0], d.Predicted[0]
	for _, p := range d.Predicted {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if exp < lo || exp > hi {
		t.Fatalf("expected latency %v outside [%v, %v]", exp, lo, hi)
	}
	if d.Predicted[0] == d.Predicted[1] {
		t.Fatal("variants should not predict identically (different shapes)")
	}
}

func TestInvokeManyCoversBothBranches(t *testing.T) {
	w := videoFFmpeg(t)
	c := model.Default()
	d, err := Plan(w, c, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	byBranch, err := d.InvokeMany(engine.Env{Const: c, Fidelity: true}, 7, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(byBranch) != 2 {
		t.Fatalf("only %d branch(es) exercised over 40 requests", len(byBranch))
	}
	if _, err := d.InvokeMany(engine.Env{Const: c}, 1, 0); err == nil {
		t.Fatal("zero request count accepted")
	}
}
