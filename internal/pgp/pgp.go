// Package pgp implements PGP, the prediction-based graph partitioning
// scheduler of Section 3.4 (Algorithm 2).
//
// Given a workflow's profiles and an SLO, PGP searches for the cheapest
// deployment that the Predictor says will meet the SLO:
//
//  1. Incrementally try n = 1..M processes per parallel stage (M = max
//     parallelism). Candidate partitions start as a round-robin split with
//     wrap sizes {min(floor(T_RPC/T_Block), n), 1, 1, ...} (line 7).
//  2. Refine each stage's partition with the Kernighan-Lin swap heuristic
//     (lines 18-25), minimizing the predicted stage latency.
//  3. At the first n whose predicted workflow latency meets the SLO,
//     repack the processes into as few wraps as possible while keeping
//     the SLO (lines 13-16), maximizing resource efficiency.
//
// The Discussion section's scalability remedies are implemented: process
// counts are explored concurrently (the paper's Scheduler "can use
// multiple processes to explore wrap partition under various number of
// processes in parallel"), per-group execution predictions are memoized,
// and Kernighan-Lin's candidate scan is capped for very wide stages.
package pgp

import (
	"fmt"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/model"
	"chiron/internal/obs"
	"chiron/internal/parallel"
	"chiron/internal/predict"
	"chiron/internal/profiler"
	"chiron/internal/wrap"
)

// Style selects the execution-mode family PGP plans with.
type Style int

const (
	// Hybrid combines processes and threads freely (native Chiron).
	Hybrid Style = iota
	// ProcOnly never groups parallel functions as threads: each parallel
	// function gets its own process, and PGP only decides wrap packing
	// (the Chiron-M configuration of Section 4: MPK threads for
	// sequential functions, processes for parallel ones).
	ProcOnly
	// PoolStyle deploys everything in a single warm-pool wrap and picks
	// the minimum cpuset that holds the SLO (Chiron-P).
	PoolStyle
)

// Options parameterize a PGP run.
type Options struct {
	// Const is the calibrated substrate timing.
	Const model.Constants
	// SLO is the latency target. Zero means "no SLO": PGP then returns
	// the lowest-latency plan it finds.
	SLO time.Duration
	// Safety is the Predictor inflation used during SLO checks (default
	// 1.1; Section 6.2's misprediction guard).
	Safety float64
	// Iso is the thread isolation mechanism for functions that share a
	// process (wrap.IsoNone or wrap.IsoMPK).
	Iso wrap.IsolationKind
	// Style selects the execution-mode family.
	Style Style
	// Parallelism is the exploration window: how many process counts are
	// evaluated per batch of the incremental search (default 8). It is a
	// *search* parameter, deliberately decoupled from the worker-pool
	// width, so plans are bit-for-bit identical on every machine and at
	// every -parallel setting; the parallel pool merely decides how many
	// of a window's candidates run concurrently.
	Parallelism int
	// MaxSwapCandidates caps the Kernighan-Lin candidate scan per
	// iteration (default 400), the scalability guard for very wide
	// stages.
	MaxSwapCandidates int
	// DisableKL skips the Kernighan-Lin refinement entirely, leaving the
	// round-robin partition (ablation knob: how much does Algorithm 2's
	// swapping pass actually buy?).
	DisableKL bool
	// NaiveKL makes Kernighan-Lin fully re-price the stage for every
	// tentative swap instead of using the incremental evaluator (klEval).
	// The two are arithmetically identical — plans are byte-for-byte equal
	// either way, pinned by TestKLIncrementalMatchesNaive — so this is an
	// ablation/verification knob, not a behaviour switch.
	NaiveKL bool
	// Rec, when non-nil, receives planner spans: the plan root, one span
	// per explored process count (TID = n, so the window fan-out is
	// visible as parallel rows), one span per Kernighan-Lin round, and a
	// cache-hit instant per prediction served from the shared cache.
	// Planner spans are wall-clock — they narrate real search cost, not
	// virtual time — so they are not deterministic across runs.
	Rec obs.Recorder
	// Clock supplies Rec timestamps; defaults to wall clock anchored at
	// the Plan call.
	Clock func() time.Duration
}

func (o *Options) defaults() {
	if o.Safety <= 0 {
		o.Safety = 1.1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 8
	}
	if o.MaxSwapCandidates <= 0 {
		o.MaxSwapCandidates = 400
	}
}

// Step records one exploration step for reporting (Figure 11's trace).
type Step struct {
	// N is the process count tried.
	N int
	// Predicted is the workflow latency predicted for this N (after
	// Kernighan-Lin refinement, before repacking).
	Predicted time.Duration
	// Meets reports whether Predicted fits the SLO.
	Meets bool
}

// Result is PGP's output.
type Result struct {
	// Plan is the chosen deployment.
	Plan *wrap.Plan
	// Predicted is the plan's predicted end-to-end latency (with safety).
	Predicted time.Duration
	// MeetsSLO reports whether Predicted fits the SLO (always true when
	// some N did; false only if even N = M misses, in which case Plan is
	// the best-effort lowest-latency plan).
	MeetsSLO bool
	// ProcsPerStage is the process count per stage in the chosen plan.
	ProcsPerStage []int
	// WrapsPerStage is the wrap count per stage.
	WrapsPerStage []int
	// Trace is the exploration history in N order.
	Trace []Step
}

// Plan runs PGP.
func Plan(w *dag.Workflow, profiles profiler.Set, opt Options) (*Result, error) {
	opt.defaults()
	if err := w.Validate(); err != nil {
		return nil, err
	}
	for _, fn := range w.Functions() {
		if _, ok := profiles[fn.Name]; !ok {
			return nil, fmt.Errorf("pgp: function %q is not profiled", fn.Name)
		}
	}
	pred := predict.New(opt.Const, profiles)
	pred.Safety = opt.Safety
	if opt.Rec != nil && opt.Clock == nil {
		opt.Clock = obs.NewWallClock()
	}
	pl := &planner{w: w, opt: opt, pred: pred}
	pl.findPinned()
	start := pl.now()
	run := pl.planHybrid
	if opt.Style == PoolStyle {
		if len(pl.pinned) > 0 {
			return nil, fmt.Errorf("pgp: pool style cannot honour sandbox-conflict constraints (%d pinned functions); use Hybrid", len(pl.pinned))
		}
		run = pl.planPool
	}
	res, err := run()
	if opt.Rec != nil && err == nil {
		opt.Rec.RecordSpan(obs.Span{
			PID: 0, TID: 0, Name: "pgp.plan " + w.Name, Cat: obs.CatPlan,
			Start: start, End: pl.now(),
			Args: []obs.Arg{
				obs.A("workflow", w.Name),
				obs.A("slo", opt.SLO),
				obs.A("explored", len(res.Trace)),
				obs.A("predicted", res.Predicted),
			},
		})
	}
	return res, err
}

// findPinned identifies functions that must not share the main sandboxes
// (Section 3.4): functions on a different language runtime than the
// workflow's dominant one, and all-but-the-first writers of a shared file.
// Each pinned function becomes "a wrap that only contains one function".
func (pl *planner) findPinned() {
	pl.pinned = make(map[string]bool)
	counts := map[behavior.Runtime]int{}
	for _, fn := range pl.w.Functions() {
		counts[fn.Runtime]++
	}
	// Dominant runtime: highest count, first-seen tie-break (deterministic).
	dominant := pl.w.Functions()[0].Runtime
	for _, fn := range pl.w.Functions() {
		if counts[fn.Runtime] > counts[dominant] {
			dominant = fn.Runtime
		}
	}
	fileOwner := map[string]string{}
	for _, fn := range pl.w.Functions() {
		if fn.Runtime != dominant {
			pl.pinned[fn.Name] = true
		}
		for _, f := range fn.Files {
			owner, taken := fileOwner[f]
			if !taken {
				fileOwner[f] = fn.Name
				continue
			}
			if owner != fn.Name {
				pl.pinned[fn.Name] = true
			}
		}
	}
}

type planner struct {
	w    *dag.Workflow
	opt  Options
	pred *predict.Predictor
	// pinned names functions that must occupy a dedicated single-function
	// wrap (runtime or shared-file conflicts, Section 3.4).
	pinned map[string]bool
}

// now returns the trace timestamp, zero when tracing is off.
func (pl *planner) now() time.Duration {
	if pl.opt.Clock == nil {
		return 0
	}
	return pl.opt.Clock()
}

// exec returns the Algorithm 1 prediction for one process group through
// the process-wide prediction cache (predict.ExecThreadsCached). The cache
// replaces the old per-planner memo: repeated group predictions — across
// KL iterations, across process-count candidates, across adapt re-plans
// and across experiments — are simulated once per process. Concurrent
// misses dedup too: when the parallel candidate fan-out (or two planners
// racing on the same workload) hits one uncached group from several
// goroutines at once, the cache's singleflight loader runs the GIL
// simulation once and every other goroutine shares the in-flight result
// instead of re-simulating.
func (pl *planner) exec(group []string) time.Duration {
	d, hit, err := pl.pred.ExecThreadsCachedHit(group, pl.opt.Iso)
	if err != nil {
		// Profiles were checked up front; this is a programming error.
		panic("pgp: " + err.Error())
	}
	if hit && pl.opt.Rec != nil {
		pl.opt.Rec.RecordInstant(obs.Instant{
			PID: 0, TID: 0, Name: "cache.hit", Cat: obs.CatCache, At: pl.now(),
		})
	}
	return d
}

// stageLatency prices a candidate stage partition analytically from the
// memoized group predictions (Eq. 2-4 arithmetic; no extra simulation).
// Under the hybrid style each wrap's first group runs as threads cloned
// from the wrap's existing main process — no fork block or startup — per
// Section 3.1's "cloning a thread from an existing process or forking a
// new process".
func (pl *planner) stageLatency(groups [][]string, wrapSizes []int, pinned []string) time.Duration {
	c := pl.opt.Const
	mainFirst := pl.opt.Style == Hybrid
	idx := 0
	var local time.Duration
	var remoteMax time.Duration
	hasRemote := false
	remoteRank := 0
	for wi, size := range wrapSizes {
		var wrapLat time.Duration
		fork := 0
		for r := 0; r < size; r++ {
			var t time.Duration
			if mainFirst && r == 0 {
				t = pl.exec(groups[idx])
			} else {
				t = time.Duration(fork)*c.ProcBlockStep + c.ProcStartup + pl.exec(groups[idx])
				fork++
			}
			idx++
			if t > wrapLat {
				wrapLat = t
			}
		}
		if size > 1 {
			wrapLat += time.Duration(size-1) * c.IPCCost
		}
		if wi == 0 {
			local = wrapLat
			continue
		}
		hasRemote = true
		remoteRank++
		if cand := wrapLat + time.Duration(remoteRank)*c.InvokeCost; cand > remoteMax {
			remoteMax = cand
		}
	}
	// Pinned functions run in dedicated single-function wraps (Section
	// 3.4's conflict rule): each is one more remote invocation, executing
	// as its sandbox's resident main (no fork).
	for _, name := range pinned {
		hasRemote = true
		remoteRank++
		if cand := pl.exec([]string{name}) + time.Duration(remoteRank)*c.InvokeCost; cand > remoteMax {
			remoteMax = cand
		}
	}
	total := local
	if hasRemote {
		if r := remoteMax + c.RPCCost; r > total {
			total = r
		}
	}
	if pl.opt.Safety > 1 {
		total = time.Duration(float64(total) * pl.opt.Safety)
	}
	return total
}

// initSizes is Algorithm 2 line 7: wrap1 takes min(maxPer, n) processes,
// every further wrap takes one.
func (pl *planner) initSizes(n int) []int {
	maxPer := pl.opt.Const.MaxProcsPerWrap(n)
	sizes := []int{maxPer}
	for rest := n - maxPer; rest > 0; rest-- {
		sizes = append(sizes, 1)
	}
	return sizes
}

// balancedSizes splits n processes over k wraps as evenly as possible.
func balancedSizes(n, k int) []int {
	sizes := make([]int, k)
	base, extra := n/k, n%k
	for i := range sizes {
		sizes[i] = base
		if i < extra {
			sizes[i]++
		}
	}
	return sizes
}

// roundRobin is Algorithm 2 line 9: {{f1, f(n+1), ...}, {f2, ...}, ...}.
func roundRobin(names []string, n int) [][]string {
	groups := make([][]string, n)
	for i, f := range names {
		groups[i%n] = append(groups[i%n], f)
	}
	return groups
}

// stageSolution is one stage's partition under a candidate N.
type stageSolution struct {
	seq      bool
	seqName  string
	groups   [][]string
	sizes    []int
	pinned   []string // functions in dedicated conflict wraps
	latency  time.Duration
	homogene bool
}

// solveStage partitions one stage for a given process budget n.
func (pl *planner) solveStage(stage int, n int) stageSolution {
	fns := pl.w.Stages[stage].Functions
	var names, pinned []string
	for _, f := range fns {
		if pl.pinned[f.Name] {
			pinned = append(pinned, f.Name)
		} else {
			names = append(names, f.Name)
		}
	}
	if len(fns) == 1 && len(pinned) == 0 {
		lat, err := pl.pred.SequentialStage(fns[0].Name, pl.opt.Iso)
		if err != nil {
			panic("pgp: " + err.Error())
		}
		return stageSolution{seq: true, seqName: fns[0].Name, latency: lat}
	}
	if len(names) == 0 {
		// Every function of this stage is conflict-pinned.
		sol := stageSolution{pinned: pinned, homogene: true}
		sol.latency = pl.stageLatency(nil, nil, pinned)
		return sol
	}
	k := n
	if pl.opt.Style == ProcOnly || k > len(names) {
		k = len(names)
	}
	groups := roundRobin(names, k)
	sizes := pl.initSizes(k)

	sol := stageSolution{groups: groups, sizes: sizes, pinned: pinned, homogene: pl.homogeneous(names)}
	if !sol.homogene && pl.opt.Style != ProcOnly && !pl.opt.DisableKL {
		pl.kernighanLinAll(n, groups, sizes, pinned)
	}
	sol.latency = pl.stageLatency(groups, sizes, pinned)
	return sol
}

// homogeneous reports whether all functions of a stage have near-identical
// profiles (solo latency and CPU share within 25%). A balanced round-robin
// split of such functions is already within scheduling noise of optimal,
// so Kernighan-Lin cannot materially improve it and PGP skips the pass —
// one of the Discussion section's scalability levers. Genuinely mixed
// stages (SLApp's CPU- vs IO-intensive classes differ by >3x in CPU share)
// still get refined.
func (pl *planner) homogeneous(names []string) bool {
	if len(names) < 2 {
		return true
	}
	p0 := pl.pred.Profiles[names[0]]
	for _, n := range names[1:] {
		p := pl.pred.Profiles[n]
		if !within(float64(p.Solo), float64(p0.Solo), 0.25) {
			return false
		}
		if !within(float64(p.CPUTime()), float64(p0.CPUTime()), 0.25) {
			return false
		}
	}
	return true
}

func within(a, b, tol float64) bool {
	if b == 0 {
		return a == 0
	}
	r := a/b - 1
	return r >= -tol && r <= tol
}

// kernighanLinAll refines pairs of process groups (Algorithm 2 lines
// 10-11): every pair for modest group counts, a ring of near neighbours
// beyond that (the Discussion section's scalability concession). One
// incremental evaluator is shared across every pair: its per-group and
// per-wrap state survives applied swaps via refresh, so each tentative
// swap is priced from the two touched groups only.
func (pl *planner) kernighanLinAll(tid int, groups [][]string, sizes []int, pinned []string) {
	n := len(groups)
	span := n
	if n*(n-1)/2 > 96 {
		span = 2
	}
	var ev *klEval
	if !pl.opt.NaiveKL {
		ev = pl.newKLEval(groups, sizes, pinned)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && j <= i+span; j++ {
			pl.kernighanLin(tid, ev, groups, sizes, pinned, i, j)
		}
	}
}

// klEval prices tentative Kernighan-Lin swaps incrementally (the
// Fiduccia-Mattheyses delta idea applied to Eq. 2-4): it decomposes the
// stage latency into per-group execution predictions, per-group fork/start
// offsets, per-wrap maxima with their IPC term, and the cross-wrap
// local/remote combine. A candidate swap touches exactly two groups, so
// pricing it needs two (cached) execution lookups plus O(wrap size +
// wrap count) exact integer arithmetic — instead of re-pricing every
// group in the stage. The decomposition is arithmetically identical to
// stageLatency, so incremental and naive searches pick the same swaps and
// produce byte-identical plans; stageLatency is still re-run in full at
// every round boundary (after each applied swap) as the paper's fallback.
type klEval struct {
	pl     *planner
	groups [][]string
	sizes  []int
	// wrapOf, off and execT are per-group: owning wrap, fork/startup
	// offset (Eq. 4's rank term), and the cached Algorithm-1 prediction.
	wrapOf []int
	off    []time.Duration
	execT  []time.Duration
	// wStart is each wrap's first group index; wrapTot each wrap's
	// latency including its IPC term (Eq. 3).
	wStart  []int
	wrapTot []time.Duration
	// pinnedMax folds the conflict-pinned single-function wraps, which
	// never participate in swaps, into one constant.
	pinnedMax time.Duration
	hasRemote bool
	// scrA/scrB hold the tentative post-swap name lists (reused; the
	// sequential scan never needs more than one pair at a time).
	scrA, scrB []string
}

func (pl *planner) newKLEval(groups [][]string, sizes []int, pinned []string) *klEval {
	c := pl.opt.Const
	n := len(groups)
	ev := &klEval{
		pl: pl, groups: groups, sizes: sizes,
		wrapOf:  make([]int, n),
		off:     make([]time.Duration, n),
		execT:   make([]time.Duration, n),
		wStart:  make([]int, len(sizes)),
		wrapTot: make([]time.Duration, len(sizes)),
	}
	mainFirst := pl.opt.Style == Hybrid
	idx := 0
	for wi, size := range sizes {
		ev.wStart[wi] = idx
		fork := 0
		for r := 0; r < size; r++ {
			ev.wrapOf[idx] = wi
			if mainFirst && r == 0 {
				ev.off[idx] = 0
			} else {
				ev.off[idx] = time.Duration(fork)*c.ProcBlockStep + c.ProcStartup
				fork++
			}
			ev.execT[idx] = pl.exec(groups[idx])
			idx++
		}
	}
	for wi := range sizes {
		ev.wrapTot[wi] = ev.wrapLat(wi, -1, 0, -1, 0)
	}
	ev.hasRemote = len(sizes) > 1 || len(pinned) > 0
	rank := len(sizes) - 1
	for _, name := range pinned {
		rank++
		if cand := pl.exec([]string{name}) + time.Duration(rank)*c.InvokeCost; cand > ev.pinnedMax {
			ev.pinnedMax = cand
		}
	}
	return ev
}

// wrapLat computes wrap wi's latency (Eq. 3), substituting execution times
// for up to two of its groups (g1/g2 of -1 disables a substitution).
func (ev *klEval) wrapLat(wi int, g1 int, e1 time.Duration, g2 int, e2 time.Duration) time.Duration {
	lo, size := ev.wStart[wi], ev.sizes[wi]
	var maxv time.Duration
	for gi := lo; gi < lo+size; gi++ {
		e := ev.execT[gi]
		if gi == g1 {
			e = e1
		} else if gi == g2 {
			e = e2
		}
		if v := e + ev.off[gi]; v > maxv {
			maxv = v
		}
	}
	if size > 1 {
		maxv += time.Duration(size-1) * ev.pl.opt.Const.IPCCost
	}
	return maxv
}

// combine folds per-wrap latencies into the stage latency (Eq. 2),
// substituting totals for up to two wraps.
func (ev *klEval) combine(w1 int, t1 time.Duration, w2 int, t2 time.Duration) time.Duration {
	c := ev.pl.opt.Const
	var local, remoteMax time.Duration
	for wi, t := range ev.wrapTot {
		if wi == w1 {
			t = t1
		} else if wi == w2 {
			t = t2
		}
		if wi == 0 {
			local = t
			continue
		}
		if cand := t + time.Duration(wi)*c.InvokeCost; cand > remoteMax {
			remoteMax = cand
		}
	}
	if ev.pinnedMax > remoteMax {
		remoteMax = ev.pinnedMax
	}
	total := local
	if ev.hasRemote {
		if r := remoteMax + c.RPCCost; r > total {
			total = r
		}
	}
	if ev.pl.opt.Safety > 1 {
		total = time.Duration(float64(total) * ev.pl.opt.Safety)
	}
	return total
}

// price evaluates the stage latency with groups a and b replaced by the
// given post-swap name lists.
func (ev *klEval) price(a, b int, ga, gb []string) time.Duration {
	execA := ev.pl.exec(ga)
	execB := ev.pl.exec(gb)
	wa, wb := ev.wrapOf[a], ev.wrapOf[b]
	if wa == wb {
		return ev.combine(wa, ev.wrapLat(wa, a, execA, b, execB), -1, 0)
	}
	ta := ev.wrapLat(wa, a, execA, -1, 0)
	tb := ev.wrapLat(wb, b, execB, -1, 0)
	return ev.combine(wa, ta, wb, tb)
}

// candidate prices the swap of groups[a][ai] with groups[b][bi] using the
// reusable scratch buffers (sequential scan only; not race-safe).
func (ev *klEval) candidate(a, b, ai, bi int) time.Duration {
	ev.scrA = append(ev.scrA[:0], ev.groups[a]...)
	ev.scrB = append(ev.scrB[:0], ev.groups[b]...)
	ev.scrA[ai], ev.scrB[bi] = ev.scrB[bi], ev.scrA[ai]
	return ev.price(a, b, ev.scrA, ev.scrB)
}

// candidateAlloc is candidate with private copies, safe for the parallel
// candidate scan (each worker pays two small slice copies but still skips
// the full-stage re-pricing).
func (ev *klEval) candidateAlloc(a, b, ai, bi int) time.Duration {
	ga := append([]string(nil), ev.groups[a]...)
	gb := append([]string(nil), ev.groups[b]...)
	ga[ai], gb[bi] = gb[bi], ga[ai]
	return ev.price(a, b, ga, gb)
}

// refresh re-reads groups a and b after their contents changed (an applied
// swap or a prefix undo) and rebuilds the affected per-wrap totals.
func (ev *klEval) refresh(a, b int) {
	ev.execT[a] = ev.pl.exec(ev.groups[a])
	ev.execT[b] = ev.pl.exec(ev.groups[b])
	wa, wb := ev.wrapOf[a], ev.wrapOf[b]
	ev.wrapTot[wa] = ev.wrapLat(wa, -1, 0, -1, 0)
	if wb != wa {
		ev.wrapTot[wb] = ev.wrapLat(wb, -1, 0, -1, 0)
	}
}

type swapRec struct {
	ai, bi int // positions swapped (indices into groups[a], groups[b])
	gain   time.Duration
}

// kernighanLin performs the paper's swap pass between groups a and b
// (Algorithm 2 lines 18-25): greedily pick the swap that minimizes the
// predicted stage latency, lock the swapped elements, repeat until one
// side is exhausted; then keep only the prefix of swaps with the best
// cumulative gain.
//
// Candidate swaps within one iteration are independent predictions, so
// they are priced over the worker pool. Selection is the earliest
// candidate (in scan order) achieving the minimal latency — exactly the
// element the sequential strict-less-than scan would keep — so refined
// partitions are identical at every worker count.
//
// With ev non-nil each tentative swap is priced incrementally from the two
// touched groups (see klEval); after every applied swap — a round boundary
// — the stage is re-priced in full by stageLatency, so the running
// cumulative-gain bookkeeping can never drift from the ground truth. With
// ev nil (Options.NaiveKL) every candidate is priced by a full stage
// evaluation; both paths compute identical latencies and therefore make
// identical choices.
func (pl *planner) kernighanLin(tid int, ev *klEval, groups [][]string, sizes []int, pinned []string, a, b int) {
	ga, gb := groups[a], groups[b]
	lockedA := make([]bool, len(ga))
	lockedB := make([]bool, len(gb))
	cur := pl.stageLatency(groups, sizes, pinned)
	var recs []swapRec

	type swapCand struct{ ai, bi int }
	cands := make([]swapCand, 0, min(len(ga)*len(gb), pl.opt.MaxSwapCandidates))
	round := 0
	for {
		roundStart := pl.now()
		cands = cands[:0]
	scan:
		for ai := range ga {
			if lockedA[ai] {
				continue
			}
			for bi := range gb {
				if lockedB[bi] {
					continue
				}
				if len(cands) >= pl.opt.MaxSwapCandidates {
					break scan
				}
				cands = append(cands, swapCand{ai, bi})
			}
		}
		if len(cands) == 0 {
			break
		}
		afters := make([]time.Duration, len(cands))
		switch {
		case parallel.Workers() == 1 && ev != nil:
			// Sequential incremental path: two cached lookups per swap.
			for ci, c := range cands {
				afters[ci] = ev.candidate(a, b, c.ai, c.bi)
			}
		case parallel.Workers() == 1:
			// Naive sequential path: swap in place, full re-pricing.
			for ci, c := range cands {
				ga[c.ai], gb[c.bi] = gb[c.bi], ga[c.ai]
				afters[ci] = pl.stageLatency(groups, sizes, pinned)
				ga[c.ai], gb[c.bi] = gb[c.bi], ga[c.ai]
			}
		default:
			parallel.ForEach(len(cands), func(ci int) {
				c := cands[ci]
				if ev != nil {
					afters[ci] = ev.candidateAlloc(a, b, c.ai, c.bi)
				} else {
					afters[ci] = pl.stageLatencySwapped(groups, sizes, pinned, a, b, c.ai, c.bi)
				}
			})
		}
		best := 0
		for ci := 1; ci < len(afters); ci++ {
			if afters[ci] < afters[best] {
				best = ci
			}
		}
		bestAi, bestBi, bestAfter := cands[best].ai, cands[best].bi, afters[best]
		ga[bestAi], gb[bestBi] = gb[bestBi], ga[bestAi]
		recs = append(recs, swapRec{ai: bestAi, bi: bestBi, gain: cur - bestAfter})
		if ev != nil {
			// Round boundary: refresh the evaluator's state for the two
			// mutated groups and re-price the stage in full.
			ev.refresh(a, b)
			cur = pl.stageLatency(groups, sizes, pinned)
		} else {
			cur = bestAfter
		}
		lockedA[bestAi] = true
		lockedB[bestBi] = true
		if pl.opt.Rec != nil {
			pl.opt.Rec.RecordSpan(obs.Span{
				PID: 0, TID: tid, Name: fmt.Sprintf("kl %d<->%d", a, b), Cat: obs.CatPlan,
				Start: roundStart, End: pl.now(),
				Args: []obs.Arg{
					obs.A("round", round),
					obs.A("candidates", len(cands)),
					obs.A("latency", cur),
				},
			})
		}
		round++
	}

	// Keep the prefix with the best cumulative gain (line 24); undo the
	// rest in reverse order.
	bestK, bestSum, sum := 0, time.Duration(0), time.Duration(0)
	for i, r := range recs {
		sum += r.gain
		if sum > bestSum {
			bestSum = sum
			bestK = i + 1
		}
	}
	for i := len(recs) - 1; i >= bestK; i-- {
		r := recs[i]
		ga[r.ai], gb[r.bi] = gb[r.bi], ga[r.ai]
	}
	if ev != nil && bestK < len(recs) {
		ev.refresh(a, b)
	}
}

// stageLatencySwapped prices the partition with groups[a][ai] and
// groups[b][bi] exchanged, without mutating the shared slices — the
// race-free evaluation used when swap candidates are priced concurrently.
func (pl *planner) stageLatencySwapped(groups [][]string, sizes []int, pinned []string, a, b, ai, bi int) time.Duration {
	ga := append([]string(nil), groups[a]...)
	gb := append([]string(nil), groups[b]...)
	ga[ai], gb[bi] = gb[bi], ga[ai]
	g2 := append([][]string(nil), groups...)
	g2[a], g2[b] = ga, gb
	return pl.stageLatency(g2, sizes, pinned)
}

// candidate is one explored process count.
type candidate struct {
	n      int
	stages []stageSolution
	total  time.Duration
}

// planHybrid runs the incremental n search (Algorithm 2 lines 3-17): it
// explores process counts in ascending windows, each window's candidates
// in parallel (the Scheduler's multi-process exploration), and stops at
// the smallest n that meets the SLO. Without an SLO it keeps going until
// latency stops improving for two windows, then returns the fastest plan.
func (pl *planner) planHybrid() (*Result, error) {
	m := pl.w.MaxParallelism()
	if pl.opt.Style == ProcOnly {
		// Parallel functions are never grouped, so every n yields the
		// same partition; one candidate suffices.
		m = 1
	}
	window := pl.opt.Parallelism

	evalOne := func(n int) candidate {
		start := pl.now()
		c := candidate{n: n, stages: make([]stageSolution, len(pl.w.Stages))}
		for i := range pl.w.Stages {
			c.stages[i] = pl.solveStage(i, n)
			c.total += c.stages[i].latency
		}
		if pl.opt.Rec != nil {
			// TID = n: each explored process count gets its own row, so
			// the window fan-out shows as overlapping candidate spans.
			pl.opt.Rec.RecordSpan(obs.Span{
				PID: 0, TID: n, Name: fmt.Sprintf("candidate n=%d", n), Cat: obs.CatPlan,
				Start: start, End: pl.now(),
				Args: []obs.Arg{obs.A("n", n), obs.A("predicted", c.total)},
			})
		}
		return c
	}

	res := &Result{}
	var final candidate
	chosen := false
	bestLat := time.Duration(1<<62 - 1)
	var bestCand candidate
	stall := 0
	for base := 1; base <= m && !chosen; base += window {
		hi := base + window - 1
		if hi > m {
			hi = m
		}
		// The window's candidates are explored over the shared worker
		// pool (the paper's Scheduler "can use multiple processes to
		// explore wrap partition under various number of processes in
		// parallel"); results land in ascending-n order regardless of
		// scheduling, so the selection below is deterministic.
		cands, _ := parallel.Map(hi-base+1, func(i int) (candidate, error) {
			return evalOne(base + i), nil
		})
		improved := false
		for _, c := range cands {
			meets := pl.opt.SLO > 0 && c.total <= pl.opt.SLO
			res.Trace = append(res.Trace, Step{N: c.n, Predicted: c.total, Meets: meets})
			if c.total < bestLat {
				bestLat = c.total
				bestCand = c
				improved = true
			}
			if meets && !chosen {
				final = c
				chosen = true
				break
			}
		}
		if pl.opt.SLO <= 0 {
			if improved {
				stall = 0
			} else if stall++; stall >= 2 {
				break
			}
		}
	}
	if !chosen {
		final = bestCand
	}
	res.MeetsSLO = pl.opt.SLO > 0 && final.total <= pl.opt.SLO

	// Repack: as few wraps as possible while holding the SLO (lines
	// 13-16). Wrap capacity stays bounded by maxPer (Figure 11 packs 17
	// processes as 5+4+4+4).
	pl.repack(&final)
	res.Predicted = final.total
	plan, err := pl.materialize(final)
	if err != nil {
		return nil, err
	}
	res.Plan = plan
	for _, s := range final.stages {
		if s.seq {
			res.ProcsPerStage = append(res.ProcsPerStage, 1)
			res.WrapsPerStage = append(res.WrapsPerStage, 1)
		} else {
			res.ProcsPerStage = append(res.ProcsPerStage, len(s.groups))
			res.WrapsPerStage = append(res.WrapsPerStage, len(s.sizes))
		}
	}
	return res, nil
}

// repack rebalances each parallel stage into the fewest wraps that keep
// the whole workflow inside the SLO.
func (pl *planner) repack(c *candidate) {
	budget := pl.opt.SLO
	for si := range c.stages {
		s := &c.stages[si]
		if s.seq || len(s.groups) == 0 {
			continue
		}
		n := len(s.groups)
		maxPer := pl.opt.Const.MaxProcsPerWrap(n)
		minWraps := (n + maxPer - 1) / maxPer
		others := c.total - s.latency

		// Price every feasible wrap count; prefer the fewest wraps that
		// hold the SLO, falling back to the latency-minimal packing when
		// none does (or when no SLO is set).
		bestK, bestLat := 0, time.Duration(1<<62-1)
		chosen := false
		var chosenSizes []int
		var chosenLat time.Duration
		for k := minWraps; k <= n; k++ {
			sizes := balancedSizes(n, k)
			lat := pl.stageLatency(s.groups, sizes, s.pinned)
			if lat < bestLat {
				bestLat, bestK = lat, k
			}
			if budget > 0 && others+lat <= budget {
				chosenSizes, chosenLat, chosen = sizes, lat, true
				break
			}
		}
		if !chosen {
			chosenSizes = balancedSizes(n, bestK)
			chosenLat = bestLat
		}
		c.total = others + chosenLat
		s.sizes = chosenSizes
		s.latency = chosenLat
	}
}

// materialize converts stage solutions into a wrap.Plan: sandbox 0 hosts
// the orchestrator main process (sequential functions as its threads) plus
// the first wrap of every parallel stage; wrap j of a parallel stage maps
// to sandbox j.
func (pl *planner) materialize(c candidate) (*wrap.Plan, error) {
	plan := &wrap.Plan{Workflow: pl.w.Name, Loc: make(map[string]wrap.Loc)}
	maxSandboxes := 1
	cpus := map[int]int{0: 1}
	for _, s := range c.stages {
		if s.seq {
			plan.Loc[s.seqName] = wrap.Loc{Sandbox: 0, Proc: 0}
			continue
		}
		if len(s.sizes) > maxSandboxes {
			maxSandboxes = len(s.sizes)
		}
		gi := 0
		mainFirst := pl.opt.Style == Hybrid
		for wi, size := range s.sizes {
			for r := 0; r < size; r++ {
				pr := r + 1
				if mainFirst {
					// The first group runs as threads of the wrap's
					// resident main process.
					pr = r
				}
				for _, name := range s.groups[gi] {
					plan.Loc[name] = wrap.Loc{Sandbox: wi, Proc: pr}
				}
				gi++
			}
			if size > cpus[wi] {
				cpus[wi] = size
			}
		}
	}
	for i := 0; i < maxSandboxes; i++ {
		cfg := wrap.SandboxCfg{CPUs: max(cpus[i], 1), Iso: pl.opt.Iso}
		plan.Sandboxes = append(plan.Sandboxes, cfg)
	}
	// Conflict-pinned functions each get a dedicated single-function wrap
	// appended after the main sandboxes ("a wrap that only contains one
	// function", Section 3.4). They run as their sandbox's resident main,
	// so no thread isolation is needed there.
	next := maxSandboxes
	for _, fn := range pl.w.Functions() {
		if !pl.pinned[fn.Name] {
			continue
		}
		plan.Loc[fn.Name] = wrap.Loc{Sandbox: next, Proc: 0}
		plan.Sandboxes = append(plan.Sandboxes, wrap.SandboxCfg{CPUs: 1})
		next++
	}
	if err := plan.Validate(pl.w); err != nil {
		return nil, fmt.Errorf("pgp: materialized plan invalid: %w", err)
	}
	return plan, nil
}

// planPool builds the Chiron-P deployment: one pool wrap holding every
// function, workers = max parallelism, cpuset = the smallest count that
// meets the SLO (Section 4: "Chiron enables CPU sharing between processes
// ... to derive the optimal resource efficiency").
func (pl *planner) planPool() (*Result, error) {
	workers := pl.w.MaxParallelism()
	res := &Result{}
	var best *wrap.Plan
	var bestLat time.Duration
	for cpus := 1; cpus <= workers; cpus++ {
		plan := pl.poolPlan(cpus, workers)
		lat, err := pl.pred.Workflow(pl.w, plan)
		if err != nil {
			return nil, err
		}
		meets := pl.opt.SLO > 0 && lat <= pl.opt.SLO
		res.Trace = append(res.Trace, Step{N: cpus, Predicted: lat, Meets: meets})
		if best == nil || lat < bestLat {
			best, bestLat = plan, lat
		}
		if meets {
			res.Plan, res.Predicted, res.MeetsSLO = plan, lat, true
			break
		}
	}
	if res.Plan == nil {
		res.Plan, res.Predicted = best, bestLat
		res.MeetsSLO = false
	}
	for range pl.w.Stages {
		res.ProcsPerStage = append(res.ProcsPerStage, workers)
		res.WrapsPerStage = append(res.WrapsPerStage, 1)
	}
	return res, nil
}

func (pl *planner) poolPlan(cpus, workers int) *wrap.Plan {
	plan := &wrap.Plan{
		Workflow: pl.w.Name,
		Loc:      make(map[string]wrap.Loc),
		Sandboxes: []wrap.SandboxCfg{{
			CPUs: cpus, Pool: true, Workers: workers, LongestFirst: true,
		}},
	}
	for i, fn := range pl.w.Functions() {
		plan.Loc[fn.Name] = wrap.Loc{Sandbox: 0, Proc: i + 1}
	}
	return plan
}
