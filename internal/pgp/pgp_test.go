package pgp

import (
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/model"
	"chiron/internal/parallel"
	"chiron/internal/predict"
	"chiron/internal/profiler"
	"chiron/internal/wrap"
)

func cpuFn(name string, d time.Duration) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: d}},
		MemMB:    1.2,
	}
}

func finraN(t *testing.T, par int, exec time.Duration) (*dag.Workflow, profiler.Set) {
	t.Helper()
	vs := make([]*behavior.Spec, par)
	for i := range vs {
		vs[i] = cpuFn(vname(i), exec)
	}
	w, err := dag.FromStages("finra", 0,
		[]*behavior.Spec{cpuFn("fetch", 3*time.Millisecond)},
		vs,
	)
	if err != nil {
		t.Fatal(err)
	}
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return w, set
}

func vname(i int) string { return "v" + string(rune('a'+i/26)) + string(rune('a'+i%26)) }

func opts(slo time.Duration) Options {
	return Options{Const: model.Default(), SLO: slo}
}

func TestTightSLONeedsMoreProcesses(t *testing.T) {
	// 20 functions x 4ms CPU: one GIL process serializes to ~80ms+. A
	// 40ms SLO forces PGP to split into multiple true-parallel processes.
	w, set := finraN(t, 20, 4*time.Millisecond)
	loose, err := Plan(w, set, opts(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Plan(w, set, opts(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if !loose.MeetsSLO || !tight.MeetsSLO {
		t.Fatalf("both plans should meet their SLOs: loose=%v tight=%v", loose.MeetsSLO, tight.MeetsSLO)
	}
	if loose.ProcsPerStage[1] >= tight.ProcsPerStage[1] {
		t.Fatalf("tight SLO should need more processes: loose=%d tight=%d",
			loose.ProcsPerStage[1], tight.ProcsPerStage[1])
	}
	if loose.Plan.TotalCPUs() >= tight.Plan.TotalCPUs() {
		t.Fatalf("loose SLO should reserve fewer CPUs: %d vs %d",
			loose.Plan.TotalCPUs(), tight.Plan.TotalCPUs())
	}
}

func TestPredictionMatchesPlanEvaluation(t *testing.T) {
	// PGP's internal arithmetic must agree with the Predictor's Eq. 1
	// evaluation of the materialized plan.
	w, set := finraN(t, 12, 2*time.Millisecond)
	res, err := Plan(w, set, opts(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	pred := predict.New(model.Default(), set)
	pred.Safety = 1.1
	got, err := pred.Workflow(w, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(got-res.Predicted) / float64(res.Predicted)
	if diff < -0.05 || diff > 0.05 {
		t.Fatalf("plan evaluation %v vs PGP prediction %v (%.1f%%)", got, res.Predicted, diff*100)
	}
}

func TestIncrementalSearchStopsAtFirstFit(t *testing.T) {
	w, set := finraN(t, 10, 5*time.Millisecond)
	res, err := Plan(w, set, opts(45*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if !res.MeetsSLO {
		t.Fatalf("SLO not met: predicted %v", res.Predicted)
	}
	chosen := res.ProcsPerStage[1]
	for _, step := range res.Trace {
		if step.N < chosen && step.Meets {
			t.Fatalf("n=%d already met the SLO but PGP chose n=%d", step.N, chosen)
		}
	}
}

func TestNoSLOMinimizesLatency(t *testing.T) {
	w, set := finraN(t, 8, 5*time.Millisecond)
	res, err := Plan(w, set, opts(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeetsSLO {
		t.Fatal("MeetsSLO must be false without an SLO")
	}
	for _, step := range res.Trace {
		if step.Predicted < res.Predicted {
			t.Fatalf("n=%d predicted %v beats chosen %v", step.N, step.Predicted, res.Predicted)
		}
	}
}

func TestImpossibleSLOReturnsBestEffort(t *testing.T) {
	w, set := finraN(t, 6, 10*time.Millisecond)
	res, err := Plan(w, set, opts(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeetsSLO {
		t.Fatal("1ms SLO cannot be met")
	}
	if res.Plan == nil || res.Predicted <= 0 {
		t.Fatal("best-effort plan missing")
	}
}

func TestRepackRespectsWrapCapacity(t *testing.T) {
	// Figure 11: processes per wrap never exceed floor(T_RPC/T_Block).
	c := model.Default()
	w, set := finraN(t, 40, 6*time.Millisecond)
	res, err := Plan(w, set, opts(80*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	maxPer := c.MaxProcsPerWrap(1 << 30)
	perSandbox := map[int]map[int]bool{}
	for name, loc := range res.Plan.Loc {
		if name == "fetch" {
			continue
		}
		m := perSandbox[loc.Sandbox]
		if m == nil {
			m = map[int]bool{}
			perSandbox[loc.Sandbox] = m
		}
		m[loc.Proc] = true
	}
	for sb, procs := range perSandbox {
		if len(procs) > maxPer {
			t.Fatalf("sandbox %d holds %d processes, capacity %d", sb, len(procs), maxPer)
		}
	}
}

func TestSequentialFunctionRidesMainProcess(t *testing.T) {
	w, set := finraN(t, 5, 2*time.Millisecond)
	res, err := Plan(w, set, opts(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Loc["fetch"] != (wrap.Loc{Sandbox: 0, Proc: 0}) {
		t.Fatalf("sequential function placed at %+v, want sandbox0/proc0", res.Plan.Loc["fetch"])
	}
}

func TestKernighanLinImprovesSkewedPartitions(t *testing.T) {
	// Stage with 4 long (20ms) and 4 short (1ms) functions. Round-robin
	// into 2 groups puts 2 long in each (balanced); force a bad start by
	// checking KL at n=2 yields a balanced (low) latency: the groups must
	// not end up with all long functions together.
	long := 20 * time.Millisecond
	short := time.Millisecond
	fns := []*behavior.Spec{
		cpuFn("l1", long), cpuFn("s1", short), cpuFn("l2", long), cpuFn("s2", short),
		cpuFn("l3", long), cpuFn("s3", short), cpuFn("l4", long), cpuFn("s4", short),
	}
	w, err := dag.FromStages("skew", 0, fns)
	if err != nil {
		t.Fatal(err)
	}
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// SLO requiring 2 processes: serialized = ~84ms; 2 procs ~42ms+.
	res, err := Plan(w, set, Options{Const: model.Default(), SLO: 65 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MeetsSLO {
		t.Fatalf("SLO missed: %v", res.Predicted)
	}
	// A KL-refined 2-way split must beat the worst-case (all-long
	// together = 80ms+fork) clearly.
	if res.ProcsPerStage[0] == 2 && res.Predicted > 62*time.Millisecond {
		t.Fatalf("2-process partition predicted %v; KL failed to balance", res.Predicted)
	}
}

func TestPoolStylePicksMinimalCPUs(t *testing.T) {
	w, set := finraN(t, 8, 10*time.Millisecond)
	res, err := Plan(w, set, Options{Const: model.Default(), SLO: 60 * time.Millisecond, Style: PoolStyle})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MeetsSLO {
		t.Fatalf("pool SLO missed: %v", res.Predicted)
	}
	cfg := res.Plan.Sandboxes[0]
	if !cfg.Pool || !cfg.LongestFirst {
		t.Fatalf("pool config = %+v", cfg)
	}
	if cfg.CPUs >= 8 {
		t.Fatalf("pool reserved %d CPUs; CPU sharing should need fewer than one per worker", cfg.CPUs)
	}
	// And a tighter SLO needs more CPUs.
	tight, err := Plan(w, set, Options{Const: model.Default(), SLO: 35 * time.Millisecond, Style: PoolStyle})
	if err != nil {
		t.Fatal(err)
	}
	if tight.MeetsSLO && tight.Plan.Sandboxes[0].CPUs <= cfg.CPUs {
		t.Fatalf("tighter SLO used %d CPUs <= loose %d", tight.Plan.Sandboxes[0].CPUs, cfg.CPUs)
	}
}

func TestProcOnlyNeverGroupsParallelFunctions(t *testing.T) {
	w, set := finraN(t, 12, 2*time.Millisecond)
	res, err := Plan(w, set, Options{Const: model.Default(), SLO: 300 * time.Millisecond, Style: ProcOnly, Iso: wrap.IsoMPK})
	if err != nil {
		t.Fatal(err)
	}
	procCount := map[[2]int]int{}
	for name, loc := range res.Plan.Loc {
		if name == "fetch" {
			continue
		}
		procCount[[2]int{loc.Sandbox, loc.Proc}]++
	}
	for k, n := range procCount {
		if n != 1 {
			t.Fatalf("sandbox %d proc %d hosts %d parallel functions; ProcOnly forbids grouping", k[0], k[1], n)
		}
	}
	for _, cfg := range res.Plan.Sandboxes {
		if cfg.Iso != wrap.IsoMPK {
			t.Fatalf("isolation lost: %+v", cfg)
		}
	}
}

func TestUnprofiledFunctionRejected(t *testing.T) {
	w, set := finraN(t, 4, time.Millisecond)
	delete(set, "fetch")
	if _, err := Plan(w, set, opts(time.Second)); err == nil {
		t.Fatal("missing profile accepted")
	}
}

func TestPlanValidatesAgainstWorkflow(t *testing.T) {
	w, set := finraN(t, 6, 2*time.Millisecond)
	res, err := Plan(w, set, opts(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(w); err != nil {
		t.Fatalf("materialized plan invalid: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	w, set := finraN(t, 16, 3*time.Millisecond)
	a, err := Plan(w, set, opts(90*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(w, set, opts(90*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if a.Predicted != b.Predicted || a.Plan.NumWraps() != b.Plan.NumWraps() {
		t.Fatal("PGP is nondeterministic across runs")
	}
	for name, loc := range a.Plan.Loc {
		if b.Plan.Loc[name] != loc {
			t.Fatalf("placement of %s differs across runs", name)
		}
	}
}

func TestBalancedSizes(t *testing.T) {
	cases := []struct {
		n, k int
		want []int
	}{
		{17, 4, []int{5, 4, 4, 4}},
		{10, 2, []int{5, 5}},
		{3, 3, []int{1, 1, 1}},
		{7, 1, []int{7}},
	}
	for _, tc := range cases {
		got := balancedSizes(tc.n, tc.k)
		if len(got) != len(tc.want) {
			t.Fatalf("balancedSizes(%d,%d) = %v", tc.n, tc.k, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("balancedSizes(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
			}
		}
	}
}

func TestRoundRobin(t *testing.T) {
	groups := roundRobin([]string{"a", "b", "c", "d", "e"}, 2)
	if len(groups) != 2 || len(groups[0]) != 3 || len(groups[1]) != 2 {
		t.Fatalf("roundRobin = %v", groups)
	}
	if groups[0][1] != "c" || groups[1][0] != "b" {
		t.Fatalf("roundRobin order = %v, want Algorithm 2 line 9's stride layout", groups)
	}
}

// ---- Section 3.4 conflict constraints ----

func mixedRuntimeWorkflow(t *testing.T) *dag.Workflow {
	t.Helper()
	vs := []*behavior.Spec{
		cpuFn("py-a", 3*time.Millisecond),
		cpuFn("py-b", 3*time.Millisecond),
		cpuFn("py-c", 3*time.Millisecond),
	}
	legacy := cpuFn("legacy-java", 3*time.Millisecond)
	legacy.Runtime = behavior.Java
	vs = append(vs, legacy)
	w, err := dag.FromStages("mixed", 0,
		[]*behavior.Spec{cpuFn("fetch", 2*time.Millisecond)}, vs)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRuntimeConflictGetsDedicatedWrap(t *testing.T) {
	w := mixedRuntimeWorkflow(t)
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Plan(w, set, opts(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(w); err != nil {
		t.Fatalf("conflict-aware plan invalid: %v", err)
	}
	legacy := res.Plan.Loc["legacy-java"]
	if legacy.Proc != 0 {
		t.Fatalf("pinned function should be its wrap's resident main, got proc %d", legacy.Proc)
	}
	for name, loc := range res.Plan.Loc {
		if name != "legacy-java" && loc.Sandbox == legacy.Sandbox {
			t.Fatalf("%s shares the conflict wrap with legacy-java", name)
		}
	}
	// The remote hop must be priced in.
	c := model.Default()
	if res.Predicted < c.RPCCost {
		t.Fatalf("predicted %v cannot undercut the conflict wrap's RPC %v", res.Predicted, c.RPCCost)
	}
}

func TestFileConflictSplitsSandboxes(t *testing.T) {
	a := cpuFn("writer-a", 3*time.Millisecond)
	b := cpuFn("writer-b", 3*time.Millisecond)
	a.Files = []string{"/data/ledger.db"}
	b.Files = []string{"/data/ledger.db"}
	w, err := dag.FromStages("filewf", 0, []*behavior.Spec{a, b, cpuFn("other", 3*time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Plan(w, set, opts(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(w); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	la, lb := res.Plan.Loc["writer-a"], res.Plan.Loc["writer-b"]
	if la.Sandbox == lb.Sandbox {
		t.Fatalf("file-conflicting writers share sandbox %d", la.Sandbox)
	}
}

func TestPoolStyleRejectsConflicts(t *testing.T) {
	w := mixedRuntimeWorkflow(t)
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(w, set, Options{Const: model.Default(), SLO: time.Second, Style: PoolStyle}); err == nil {
		t.Fatal("pool style accepted a conflicted workflow")
	}
}

func TestFullyPinnedStage(t *testing.T) {
	// A stage whose only function is on a conflicting runtime.
	head := cpuFn("head", 2*time.Millisecond)
	alien := cpuFn("alien", 2*time.Millisecond)
	alien.Runtime = behavior.Java
	w, err := dag.FromStages("pinwf", 0,
		[]*behavior.Spec{head},
		[]*behavior.Spec{alien},
		[]*behavior.Spec{cpuFn("tail", 2*time.Millisecond)},
	)
	if err != nil {
		t.Fatal(err)
	}
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Plan(w, set, opts(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(w); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if res.Plan.Loc["alien"].Sandbox == 0 {
		t.Fatal("alien-runtime function placed in the main sandbox")
	}
}

func TestNodeWorkflowPrefersProcesses(t *testing.T) {
	// With >50ms per worker-thread clone, grouping Node.js functions as
	// threads is a losing move; PGP should reach for more processes than
	// it does for the identical Python workflow under the same SLO.
	mk := func(rt behavior.Runtime) int {
		vs := make([]*behavior.Spec, 6)
		for i := range vs {
			vs[i] = cpuFn(vname(i), 4*time.Millisecond)
			vs[i].Runtime = rt
		}
		w, err := dag.FromStages("rt-finra", 0, vs)
		if err != nil {
			t.Fatal(err)
		}
		set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Plan(w, set, opts(60*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return res.ProcsPerStage[0]
	}
	py := mk(behavior.Python)
	node := mk(behavior.NodeJS)
	if node <= py {
		t.Fatalf("Node plan uses %d processes, Python %d; worker-thread cost should push PGP toward forks", node, py)
	}
}

// skewedWorkflow builds a stage heterogeneous enough that the
// Kernighan-Lin pass actually runs (the homogeneous shortcut skips it).
func skewedWorkflow(t *testing.T) (*dag.Workflow, profiler.Set) {
	t.Helper()
	var fns []*behavior.Spec
	for i := 0; i < 12; i++ {
		d := 2 * time.Millisecond
		if i%4 == 0 {
			d = 18 * time.Millisecond
		}
		fns = append(fns, cpuFn(vname(i), d))
	}
	w, err := dag.FromStages("skewed", 0, fns)
	if err != nil {
		t.Fatal(err)
	}
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return w, set
}

func TestPlanDeterministicAcrossWorkerCounts(t *testing.T) {
	w, set := skewedWorkflow(t)
	opt := Options{Const: model.Default(), SLO: 40 * time.Millisecond}

	planAt := func(workers int) *Result {
		parallel.SetWorkers(workers)
		res, err := Plan(w, set, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	defer parallel.SetWorkers(0)
	seq := planAt(1)
	par := planAt(8)

	if seq.Predicted != par.Predicted {
		t.Fatalf("predicted latency diverged: %v vs %v", seq.Predicted, par.Predicted)
	}
	if len(seq.Trace) != len(par.Trace) {
		t.Fatalf("trace lengths diverged: %d vs %d", len(seq.Trace), len(par.Trace))
	}
	for i := range seq.Trace {
		if seq.Trace[i] != par.Trace[i] {
			t.Fatalf("trace step %d diverged: %+v vs %+v", i, seq.Trace[i], par.Trace[i])
		}
	}
	for name, loc := range seq.Plan.Loc {
		if par.Plan.Loc[name] != loc {
			t.Fatalf("placement of %s diverged: %+v vs %+v", name, loc, par.Plan.Loc[name])
		}
	}
}

func TestPlanUsesSharedPredictionCache(t *testing.T) {
	w, set := finraN(t, 10, 2*time.Millisecond)
	opt := Options{Const: model.Default(), SLO: 60 * time.Millisecond}
	if _, err := Plan(w, set, opt); err != nil {
		t.Fatal(err)
	}
	before := predict.ExecCacheStats()
	// A second plan over identical profiles must be served almost
	// entirely from the process-wide cache.
	if _, err := Plan(w, set, opt); err != nil {
		t.Fatal(err)
	}
	after := predict.ExecCacheStats()
	hits := after.Hits - before.Hits
	misses := after.Misses - before.Misses
	if hits == 0 {
		t.Fatal("replan produced no cache hits")
	}
	if misses > hits/10 {
		t.Fatalf("replan missed too often: %d misses vs %d hits", misses, hits)
	}
}

// mixFnPGP builds a CPU+sleep+CPU function so golden workloads include
// IO-heterogeneous stages (the SLApp-style CPU- vs IO-intensive mix).
func mixFnPGP(name string, cpu, block time.Duration) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: cpu},
			{Kind: behavior.Sleep, Dur: block},
			{Kind: behavior.CPU, Dur: cpu},
		},
		MemMB: 1.2,
	}
}

// TestKLIncrementalMatchesNaive is the golden-plan equivalence gate for
// the incremental Kernighan-Lin evaluator: on every seed workload shape,
// the incremental search (default) must produce byte-identical output —
// trace, predicted latency, wrap counts, every placement — to the naive
// full-re-prediction search (Options.NaiveKL).
func TestKLIncrementalMatchesNaive(t *testing.T) {
	type workload struct {
		name string
		w    *dag.Workflow
		slo  time.Duration
	}
	var loads []workload

	skewW, _ := skewedWorkflow(t)
	loads = append(loads, workload{"skewed-cpu", skewW, 40 * time.Millisecond})
	loads = append(loads, workload{"skewed-cpu-noslo", skewW, 0})

	// IO-heterogeneous stage: blocking share differs wildly per function.
	var het []*behavior.Spec
	for i := 0; i < 10; i++ {
		if i%3 == 0 {
			het = append(het, mixFnPGP(vname(i), time.Millisecond, 25*time.Millisecond))
		} else {
			het = append(het, cpuFn(vname(i), time.Duration(2+i)*time.Millisecond))
		}
	}
	hetW, err := dag.FromStages("slapp-het", 0,
		[]*behavior.Spec{cpuFn("fetch", 2*time.Millisecond)}, het)
	if err != nil {
		t.Fatal(err)
	}
	loads = append(loads, workload{"io-het", hetW, 55 * time.Millisecond})

	// Conflict-pinned functions exercise the evaluator's pinnedMax fold.
	pinW := mixedRuntimeWorkflow(t)
	pinW.Stages[1].Functions[0].Segments[0].Dur = 15 * time.Millisecond
	loads = append(loads, workload{"pinned", pinW, 45 * time.Millisecond})

	for _, ld := range loads {
		set, err := profiler.ProfileWorkflow(ld.w, profiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{Const: model.Default(), SLO: ld.slo}
		fast, err := Plan(ld.w, set, opt)
		if err != nil {
			t.Fatalf("%s: incremental plan: %v", ld.name, err)
		}
		opt.NaiveKL = true
		naive, err := Plan(ld.w, set, opt)
		if err != nil {
			t.Fatalf("%s: naive plan: %v", ld.name, err)
		}
		if fast.Predicted != naive.Predicted || fast.MeetsSLO != naive.MeetsSLO {
			t.Fatalf("%s: predicted %v/%v vs naive %v/%v", ld.name,
				fast.Predicted, fast.MeetsSLO, naive.Predicted, naive.MeetsSLO)
		}
		if len(fast.Trace) != len(naive.Trace) {
			t.Fatalf("%s: trace length %d vs %d", ld.name, len(fast.Trace), len(naive.Trace))
		}
		for i := range fast.Trace {
			if fast.Trace[i] != naive.Trace[i] {
				t.Fatalf("%s: trace step %d: %+v vs %+v", ld.name, i, fast.Trace[i], naive.Trace[i])
			}
		}
		for i := range fast.ProcsPerStage {
			if fast.ProcsPerStage[i] != naive.ProcsPerStage[i] ||
				fast.WrapsPerStage[i] != naive.WrapsPerStage[i] {
				t.Fatalf("%s: stage %d shape diverged", ld.name, i)
			}
		}
		if len(fast.Plan.Loc) != len(naive.Plan.Loc) {
			t.Fatalf("%s: placement counts diverged", ld.name)
		}
		for name, loc := range fast.Plan.Loc {
			if naive.Plan.Loc[name] != loc {
				t.Fatalf("%s: placement of %s: %+v vs %+v", ld.name, name, loc, naive.Plan.Loc[name])
			}
		}
	}
}

// TestKLIncrementalMatchesNaiveParallel repeats the equivalence check with
// the worker pool engaged, covering the candidateAlloc parallel path.
func TestKLIncrementalMatchesNaiveParallel(t *testing.T) {
	w, set := skewedWorkflow(t)
	opt := Options{Const: model.Default(), SLO: 40 * time.Millisecond}
	parallel.SetWorkers(8)
	defer parallel.SetWorkers(0)
	fast, err := Plan(w, set, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.NaiveKL = true
	naive, err := Plan(w, set, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Predicted != naive.Predicted {
		t.Fatalf("parallel incremental predicted %v, naive %v", fast.Predicted, naive.Predicted)
	}
	for name, loc := range fast.Plan.Loc {
		if naive.Plan.Loc[name] != loc {
			t.Fatalf("placement of %s diverged under parallel scan", name)
		}
	}
}
