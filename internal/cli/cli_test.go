package cli

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
)

// run invokes the CLI and returns (exit code, stdout, stderr).
func run(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := Main(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestNoArgsShowsUsage(t *testing.T) {
	code, _, errOut := run()
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "commands:") {
		t.Fatalf("usage missing: %q", errOut)
	}
}

func TestUnknownCommand(t *testing.T) {
	code, _, errOut := run("launch-rockets")
	if code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Fatalf("exit %d, err %q", code, errOut)
	}
}

func TestHelpGoesToStdout(t *testing.T) {
	code, out, _ := run("help")
	if code != 0 || !strings.Contains(out, "commands:") {
		t.Fatalf("help: exit %d out %q", code, out)
	}
}

func TestWorkloads(t *testing.T) {
	code, out, _ := run("workloads")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{"SocialNetwork", "FINRA-200", "SLApp-V"} {
		if !strings.Contains(out, name) {
			t.Errorf("workload %s missing from listing", name)
		}
	}
}

func TestProfileBuiltin(t *testing.T) {
	code, out, _ := run("profile", "-workload", "FINRA-5")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "fetch-portfolio") || !strings.Contains(out, "validate-001") {
		t.Fatalf("profile table incomplete:\n%s", out)
	}
}

func TestPlanPrintsManifest(t *testing.T) {
	code, out, _ := run("plan", "-workload", "FINRA-5", "-slo", "150ms")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "system: Chiron (m-to-n model)") {
		t.Fatalf("missing system line:\n%s", out)
	}
	if !strings.Contains(out, "thread@main") {
		t.Fatalf("manifest missing placements:\n%s", out)
	}
}

func TestRunReportsStats(t *testing.T) {
	code, out, _ := run("run", "-workload", "SLApp", "-system", "Faastlane", "-n", "5")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "mean") || !strings.Contains(out, "p99") {
		t.Fatalf("stats missing:\n%s", out)
	}
}

func TestRunWithSLOReportsViolations(t *testing.T) {
	code, out, _ := run("run", "-workload", "SLApp", "-slo", "200ms", "-n", "5")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "violations") {
		t.Fatalf("violations missing:\n%s", out)
	}
}

func TestCompareCoversAllSystems(t *testing.T) {
	code, out, _ := run("compare", "-workload", "FINRA-5", "-n", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, sys := range []string{"ASF", "OpenFaaS", "SAND", "Faastlane", "Chiron", "Chiron-M", "Chiron-P"} {
		if !strings.Contains(out, sys) {
			t.Errorf("system %s missing from compare table", sys)
		}
	}
}

func TestCodegenEmitsHandlers(t *testing.T) {
	code, out, _ := run("codegen", "-workload", "FINRA-5", "-slo", "150ms")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "def handle(req):") || !strings.Contains(out, "handler for wrap 0") {
		t.Fatalf("codegen output incomplete:\n%s", out)
	}
}

func TestWorkflowFromJSONFile(t *testing.T) {
	w := &dag.Workflow{
		Name: "json-wf",
		Stages: []dag.Stage{
			{Functions: []*behavior.Spec{{
				Name: "solo", Runtime: behavior.Python,
				Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: 2 * time.Millisecond}},
				MemMB:    1,
			}}},
		},
	}
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wf.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := run("plan", "-workflow", path, "-slo", "50ms")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "json-wf") || !strings.Contains(out, "solo") {
		t.Fatalf("JSON workflow not planned:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"plan"},                      // no workload
		{"plan", "-workload", "Nope"}, // unknown workload
		{"plan", "-workload", "SLApp", "-system", "X"}, // unknown system
		{"plan", "-workflow", "/does/not/exist.json"},  // missing file
	}
	for _, args := range cases {
		code, _, errOut := run(args...)
		if code == 0 {
			t.Errorf("%v: exit 0, want failure (stderr %q)", args, errOut)
		}
	}
}

func TestBadJSONWorkflowRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"name":"","stages":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, _ := run("plan", "-workflow", path)
	if code == 0 {
		t.Fatal("invalid workflow JSON accepted")
	}
}
