// Package cli implements the chiron command: profile, plan, predict, run
// and compare serverless workflows across deployment models. It is a
// library (cmd/chiron is a two-line shim) so the whole surface is unit
// tested.
//
// Usage:
//
//	chiron workloads
//	chiron profile  -workload FINRA-50
//	chiron plan     -workload FINRA-50 -slo 300ms [-system Chiron]
//	chiron run      -workload FINRA-50 -slo 300ms -system Faastlane -n 20
//	chiron compare  -workload SocialNetwork
//	chiron codegen  -workload FINRA-5 -slo 150ms
//
// Workflows can also be loaded from a JSON file with -workflow <path>
// (the dag.Workflow wire format; see examples/quickstart for a sample).
package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"chiron/internal/dag"
	"chiron/internal/deploy"
	"chiron/internal/engine"
	"chiron/internal/metrics"
	"chiron/internal/model"
	"chiron/internal/platform"
	"chiron/internal/profiler"
	"chiron/internal/render"
	"chiron/internal/workloads"
)

// Main runs the CLI and returns the process exit code.
func Main(argv []string, stdout, stderr io.Writer) int {
	if len(argv) < 1 {
		usage(stderr)
		return 2
	}
	cmd, args := argv[0], argv[1:]
	var err error
	switch cmd {
	case "workloads":
		err = cmdWorkloads(stdout)
	case "profile":
		err = cmdProfile(args, stdout)
	case "plan":
		err = cmdPlan(args, stdout)
	case "run":
		err = cmdRun(args, stdout)
	case "compare":
		err = cmdCompare(args, stdout)
	case "codegen":
		err = cmdCodegen(args, stdout)
	case "help", "-h", "--help":
		usage(stdout)
	default:
		fmt.Fprintf(stderr, "chiron: unknown command %q\n", cmd)
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "chiron:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `chiron — m-to-n serverless deployment (SC'23 reproduction)

commands:
  workloads                          list built-in benchmark workflows
  profile  -workload W               profile every function (solo + strace)
  plan     -workload W -slo D        plan with a system (default Chiron) and print the wrap manifest
  run      -workload W -slo D -n N   execute N requests and print latency stats
  compare  -workload W [-slo D]      plan+run every system on one workflow
  codegen  -workload W -slo D        emit the generated orchestrator sources

common flags:
  -workload NAME   built-in workload (see 'chiron workloads')
  -workflow FILE   load a workflow from JSON instead
  -system NAME     platform (ASF, OpenFaaS, SAND, Faastlane, Faastlane-T,
                   Faastlane+, Faastlane-M, Faastlane-P, Chiron, Chiron-M, Chiron-P)
  -slo DURATION    latency SLO for PGP (e.g. 300ms; 0 = latency-optimal)`)
}

type common struct {
	fs       *flag.FlagSet
	workload string
	workflow string
	system   string
	slo      time.Duration
	n        int
}

func newCommon(name string) *common {
	c := &common{fs: flag.NewFlagSet(name, flag.ContinueOnError)}
	c.fs.StringVar(&c.workload, "workload", "", "built-in workload name")
	c.fs.StringVar(&c.workflow, "workflow", "", "workflow JSON file")
	c.fs.StringVar(&c.system, "system", "Chiron", "platform name")
	c.fs.DurationVar(&c.slo, "slo", 0, "latency SLO (0 = latency-optimal)")
	c.fs.IntVar(&c.n, "n", 10, "request count")
	return c
}

func (c *common) loadWorkflow() (*dag.Workflow, error) {
	if c.workflow != "" {
		raw, err := os.ReadFile(c.workflow)
		if err != nil {
			return nil, err
		}
		var w dag.Workflow
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", c.workflow, err)
		}
		return &w, nil
	}
	if c.workload == "" {
		return nil, fmt.Errorf("need -workload or -workflow")
	}
	for _, e := range workloads.Suite() {
		if e.Name == c.workload {
			return e.Workflow, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q (try 'chiron workloads')", c.workload)
}

func (c *common) loadSystem() (*platform.System, error) {
	sys := platform.Lookup(model.Default(), c.system)
	if sys == nil {
		return nil, fmt.Errorf("unknown system %q", c.system)
	}
	return sys, nil
}

func cmdWorkloads(out io.Writer) error {
	t := &render.Table{
		ID: "workloads", Title: "built-in benchmark workflows",
		Columns: []string{"name", "stages", "functions", "max-parallel", "runtime"},
	}
	for _, e := range workloads.Suite() {
		t.AddRow(e.Name, fmt.Sprint(len(e.Workflow.Stages)), fmt.Sprint(e.Workflow.NumFunctions()),
			fmt.Sprint(e.Workflow.MaxParallelism()), string(e.Workflow.Functions()[0].Runtime))
	}
	fmt.Fprint(out, t.String())
	return nil
}

func cmdProfile(args []string, out io.Writer) error {
	c := newCommon("profile")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	w, err := c.loadWorkflow()
	if err != nil {
		return err
	}
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		return err
	}
	t := &render.Table{
		ID: "profile", Title: "function profiles (solo run + rescaled strace block periods)",
		Columns: []string{"function", "solo", "cpu", "block", "periods", "memMB"},
	}
	for _, fn := range w.Functions() {
		p := set[fn.Name]
		t.AddRow(p.Name, render.Ms(p.Solo), render.Ms(p.CPUTime()),
			render.Ms(p.Solo-p.CPUTime()), fmt.Sprint(len(p.Periods)), render.F1(p.MemMB))
	}
	fmt.Fprint(out, t.String())
	return nil
}

func planFor(c *common) (*dag.Workflow, *platform.System, profiler.Set, *dag.Workflow, error) {
	w, err := c.loadWorkflow()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	sys, err := c.loadSystem()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return w, sys, set, w, nil
}

func cmdPlan(args []string, out io.Writer) error {
	c := newCommon("plan")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	w, sys, set, _, err := planFor(c)
	if err != nil {
		return err
	}
	plan, err := sys.Plan(w, set, c.slo)
	if err != nil {
		return err
	}
	manifest, err := deploy.Manifest(w, plan)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "system: %s (%s model)\n", sys.Name, sys.Model)
	fmt.Fprint(out, manifest)
	return nil
}

func cmdRun(args []string, out io.Writer) error {
	c := newCommon("run")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	w, sys, set, _, err := planFor(c)
	if err != nil {
		return err
	}
	plan, err := sys.Plan(w, set, c.slo)
	if err != nil {
		return err
	}
	env := sys.Env()
	env.Seed = 1
	lats, err := engine.RunMany(w, plan, env, c.n)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s on %s: %d requests\n", w.Name, sys.Name, c.n)
	fmt.Fprintf(out, "  mean %s  p50 %s  p95 %s  p99 %s\n",
		render.Ms(metrics.Mean(lats)),
		render.Ms(metrics.Percentile(lats, 0.50)),
		render.Ms(metrics.Percentile(lats, 0.95)),
		render.Ms(metrics.Percentile(lats, 0.99)))
	if c.slo > 0 {
		fmt.Fprintf(out, "  SLO %s violations %.1f%%\n", render.Ms(c.slo), metrics.ViolationRate(lats, c.slo)*100)
	}
	return nil
}

func cmdCompare(args []string, out io.Writer) error {
	c := newCommon("compare")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	w, err := c.loadWorkflow()
	if err != nil {
		return err
	}
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		return err
	}
	cm := model.Default()
	slo := c.slo
	if slo == 0 {
		// The paper's convention: Faastlane's mean latency + 10 ms.
		fl := platform.Faastlane(cm)
		plan, err := fl.Plan(w, set, 0)
		if err != nil {
			return err
		}
		env := fl.Env()
		env.Seed = 1
		lats, err := engine.RunMany(w, plan, env, 10)
		if err != nil {
			return err
		}
		slo = metrics.Mean(lats) + 10*time.Millisecond
	}
	t := &render.Table{
		ID: "compare", Title: fmt.Sprintf("%s across platforms (SLO %s)", w.Name, render.Ms(slo)),
		Columns: []string{"system", "model", "mean", "p95", "wraps", "cpus", "violations"},
	}
	for _, sys := range platform.All(cm) {
		plan, err := sys.Plan(w, set, slo)
		if err != nil {
			return err
		}
		env := sys.Env()
		env.Seed = 1
		lats, err := engine.RunMany(w, plan, env, c.n)
		if err != nil {
			return err
		}
		t.AddRow(sys.Name, sys.Model,
			render.Ms(metrics.Mean(lats)), render.Ms(metrics.Percentile(lats, 0.95)),
			fmt.Sprint(plan.NumWraps()), fmt.Sprint(plan.TotalCPUs()),
			render.Pct(metrics.ViolationRate(lats, slo)))
	}
	fmt.Fprint(out, t.String())
	return nil
}

func cmdCodegen(args []string, out io.Writer) error {
	c := newCommon("codegen")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	w, sys, set, _, err := planFor(c)
	if err != nil {
		return err
	}
	plan, err := sys.Plan(w, set, c.slo)
	if err != nil {
		return err
	}
	orcs, err := deploy.Generate(w, plan)
	if err != nil {
		return err
	}
	for _, o := range orcs {
		fmt.Fprintf(out, "# ===== handler for wrap %d =====\n%s\n", o.Sandbox, o.Source)
	}
	return nil
}
