// Package sim is a minimal deterministic discrete-event kernel.
//
// Every substrate in this repository that needs a notion of elapsing time
// runs on sim's virtual clock instead of the wall clock: events are (time,
// callback) pairs ordered by a binary heap, ties broken by insertion order
// so that runs are bit-for-bit reproducible. Nothing ever sleeps; a
// simulation of a 25-second S3 transfer finishes in nanoseconds of real time.
//
// The kernel recycles event objects through an internal free list: a fired
// or cancelled event returns to the list and backs a later At/AtArg call,
// so steady-state scheduling on a warm kernel performs zero heap
// allocations (guarded by testing.AllocsPerRun in sim_test.go). Handles
// returned by At carry a generation counter so a stale handle — one whose
// event has fired, been cancelled, or been detached by Reset — is inert no
// matter how the underlying object has since been reused.
package sim

import (
	"container/heap"
	"fmt"
	"sync/atomic"
	"time"
)

// event is the kernel-internal scheduled callback. Objects are pooled: the
// kernel recycles them through its free list, bumping gen on every recycle
// so stale Event handles cannot touch a reused object.
type event struct {
	at   time.Duration
	seq  uint64
	gen  uint32
	fn   func()
	afn  func(any)
	arg  any
	dead bool
	k    *Kernel // owning kernel while queued; nil once fired or collected
}

// Event is a handle to a scheduled callback. It is a small value: copy it
// freely. The zero value is inert. A handle goes stale once its event
// fires, is cancelled, or is detached by Kernel.Reset (including pooled
// kernels being reused); calling Cancel on a stale handle is always a
// no-op, enforced by a generation check against the recycled event object.
type Event struct {
	e   *event
	gen uint32
	at  time.Duration
}

// Time returns the virtual time at which the event fires (or fired).
func (ev Event) Time() time.Duration { return ev.at }

// Cancel prevents a pending event from firing. Cancelling an already-fired,
// already-cancelled or detached (Reset) event is a no-op: the handle's
// generation no longer matches the recycled event object's. Dead events are
// dropped lazily: they stay in the heap until popped, or until more than
// half the queue is dead, at which point the kernel compacts in one O(n)
// pass — cancel-heavy models (timeout races) no longer pay heap churn per
// cancellation.
func (ev Event) Cancel() {
	e := ev.e
	if e == nil || e.gen != ev.gen || e.dead || e.k == nil {
		return
	}
	e.dead = true
	k := e.k
	k.dead++
	if k.dead*2 > len(k.queue) {
		k.compact()
	}
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// firedTotal counts events fired across every kernel in the process,
// flushed once per Run/RunUntil so the hot loop stays atomic-free.
var firedTotal atomic.Uint64

// TotalFired reports the process-wide number of events fired across all
// kernels since start-up (chiron-bench prints it as events/sec).
func TotalFired() uint64 { return firedTotal.Load() }

// Kernel is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all model code runs inside event callbacks. Parallel
// harnesses give each task its own kernel (or reuse one via Reset).
type Kernel struct {
	now    time.Duration
	seq    uint64
	queue  eventHeap
	free   []*event // recycled event objects
	dead   int      // cancelled events still occupying the heap
	fired  uint64
	budget uint64 // max events per Run, 0 = unlimited
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel { return &Kernel{} }

// alloc takes an event object from the free list, or heap-allocates one
// when the list is empty (cold path only; fired events refill the list).
func (k *Kernel) alloc() *event {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return e
	}
	return &event{}
}

// recycle detaches an event and returns it to the free list. The bumped
// generation makes every outstanding handle to it inert.
func (k *Kernel) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.afn = nil
	e.arg = nil
	e.dead = false
	e.k = nil
	k.free = append(k.free, e)
}

// Reset returns the kernel to its initial state — virtual time zero, no
// queued events, counters and budget cleared — while keeping the heap's
// and free list's allocated capacity, so pooled workers can reuse kernels
// across tasks without reallocating. Events still held by the caller are
// detached: a later Cancel on their handles is a no-op even after the
// underlying objects are recycled into new events.
func (k *Kernel) Reset() {
	for i, ev := range k.queue {
		k.recycle(ev)
		k.queue[i] = nil
	}
	k.queue = k.queue[:0]
	k.now = 0
	k.seq = 0
	k.dead = 0
	k.fired = 0
	k.budget = 0
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Fired returns how many events have executed since the kernel was created.
func (k *Kernel) Fired() uint64 { return k.fired }

// SetBudget caps the number of events a single Run may fire; exceeding it
// makes Run return ErrBudget. Zero means unlimited. It exists to turn
// accidental event loops in model code into test failures instead of hangs.
func (k *Kernel) SetBudget(n uint64) { k.budget = n }

// schedule queues a recycled (or fresh) event at absolute time t.
func (k *Kernel) schedule(t time.Duration) *event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v which is before now %v", t, k.now))
	}
	e := k.alloc()
	e.at = t
	e.seq = k.seq
	e.k = k
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// At schedules fn at absolute virtual time t. Scheduling in the past is an
// error in the model; it panics to surface the bug immediately.
func (k *Kernel) At(t time.Duration, fn func()) Event {
	e := k.schedule(t)
	e.fn = fn
	return Event{e: e, gen: e.gen, at: t}
}

// AtArg schedules fn(arg) at absolute virtual time t. It exists for hot
// paths that must not allocate: a package-level fn plus a pointer-typed arg
// schedules with zero heap allocations on a warm kernel, where a capturing
// closure passed to At would allocate per call.
func (k *Kernel) AtArg(t time.Duration, fn func(any), arg any) Event {
	e := k.schedule(t)
	e.afn = fn
	e.arg = arg
	return Event{e: e, gen: e.gen, at: t}
}

// After schedules fn d after the current virtual time.
func (k *Kernel) After(d time.Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// AfterArg schedules fn(arg) d after the current virtual time (see AtArg).
func (k *Kernel) AfterArg(d time.Duration, fn func(any), arg any) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.AtArg(k.now+d, fn, arg)
}

// ErrBudget is returned by Run when the event budget set by SetBudget is
// exhausted before the queue drains.
var ErrBudget = fmt.Errorf("sim: event budget exhausted")

// compact drops all dead events in one pass and re-establishes the heap
// invariant. Relative order of live events is preserved by (at, seq).
func (k *Kernel) compact() {
	live := k.queue[:0]
	for _, ev := range k.queue {
		if ev.dead {
			k.recycle(ev)
			continue
		}
		live = append(live, ev)
	}
	// Clear the tail so dropped events can be collected.
	for i := len(live); i < len(k.queue); i++ {
		k.queue[i] = nil
	}
	k.queue = live
	k.dead = 0
	heap.Init(&k.queue)
}

// pop removes and returns the next live event, or nil when the queue is
// drained. Dead events encountered on the way are recycled.
func (k *Kernel) pop() *event {
	for k.queue.Len() > 0 {
		ev := heap.Pop(&k.queue).(*event)
		if ev.dead {
			k.dead--
			k.recycle(ev)
			continue
		}
		return ev
	}
	return nil
}

// fire recycles ev and then invokes its callback. Recycling first is what
// lets the callback itself schedule new events out of the free list; the
// generation bump keeps any outstanding handle to ev inert.
func (k *Kernel) fire(ev *event) {
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	k.recycle(ev)
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
	k.fired++
}

// Run fires events in order until the queue is empty. It returns ErrBudget
// if SetBudget's cap is hit.
func (k *Kernel) Run() error {
	n := uint64(0)
	for {
		ev := k.pop()
		if ev == nil {
			firedTotal.Add(n)
			return nil
		}
		k.now = ev.at
		k.fire(ev)
		n++
		if k.budget != 0 && n >= k.budget {
			firedTotal.Add(n)
			return ErrBudget
		}
	}
}

// RunUntil fires events in order while their time is <= deadline, leaving
// later events queued and the clock at min(deadline, last fired event).
func (k *Kernel) RunUntil(deadline time.Duration) {
	n := uint64(0)
	for k.queue.Len() > 0 && k.queue[0].at <= deadline {
		ev := heap.Pop(&k.queue).(*event)
		if ev.dead {
			k.dead--
			k.recycle(ev)
			continue
		}
		k.now = ev.at
		k.fire(ev)
		n++
	}
	firedTotal.Add(n)
	if k.now < deadline {
		k.now = deadline
	}
}

// Pending returns the number of live queued events in O(1), via the
// kernel's live-event accounting rather than a queue scan.
func (k *Kernel) Pending() int {
	return len(k.queue) - k.dead
}
