// Package sim is a minimal deterministic discrete-event kernel.
//
// Every substrate in this repository that needs a notion of elapsing time
// runs on sim's virtual clock instead of the wall clock: events are (time,
// callback) pairs ordered by a binary heap, ties broken by insertion order
// so that runs are bit-for-bit reproducible. Nothing ever sleeps; a
// simulation of a 25-second S3 transfer finishes in nanoseconds of real time.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. The zero value is inert.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	dead bool
	k    *Kernel // owning kernel while queued; nil once fired or collected
}

// Time returns the virtual time at which the event fires (or fired).
func (e *Event) Time() time.Duration { return e.at }

// Cancel prevents a pending event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op. Dead events are dropped lazily:
// they stay in the heap until popped, or until more than half the queue is
// dead, at which point the kernel compacts in one O(n) pass — cancel-heavy
// models (timeout races) no longer pay heap churn per cancellation.
func (e *Event) Cancel() {
	if e.dead || e.k == nil {
		return
	}
	e.dead = true
	k := e.k
	k.dead++
	if k.dead*2 > len(k.queue) {
		k.compact()
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all model code runs inside event callbacks. Parallel
// harnesses give each task its own kernel (or reuse one via Reset).
type Kernel struct {
	now    time.Duration
	seq    uint64
	queue  eventHeap
	dead   int // cancelled events still occupying the heap
	fired  uint64
	budget uint64 // max events per Run, 0 = unlimited
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel { return &Kernel{} }

// Reset returns the kernel to its initial state — virtual time zero, no
// queued events, counters and budget cleared — while keeping the heap's
// allocated capacity, so pooled workers can reuse kernels across tasks
// without reallocating. Events still held by the caller are detached: a
// later Cancel on them is a no-op.
func (k *Kernel) Reset() {
	for i, ev := range k.queue {
		ev.k = nil
		k.queue[i] = nil
	}
	k.queue = k.queue[:0]
	k.now = 0
	k.seq = 0
	k.dead = 0
	k.fired = 0
	k.budget = 0
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Fired returns how many events have executed since the kernel was created.
func (k *Kernel) Fired() uint64 { return k.fired }

// SetBudget caps the number of events a single Run may fire; exceeding it
// makes Run return ErrBudget. Zero means unlimited. It exists to turn
// accidental event loops in model code into test failures instead of hangs.
func (k *Kernel) SetBudget(n uint64) { k.budget = n }

// At schedules fn at absolute virtual time t. Scheduling in the past is an
// error in the model; it panics to surface the bug immediately.
func (k *Kernel) At(t time.Duration, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v which is before now %v", t, k.now))
	}
	ev := &Event{at: t, seq: k.seq, fn: fn, k: k}
	k.seq++
	heap.Push(&k.queue, ev)
	return ev
}

// After schedules fn d after the current virtual time.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// ErrBudget is returned by Run when the event budget set by SetBudget is
// exhausted before the queue drains.
var ErrBudget = fmt.Errorf("sim: event budget exhausted")

// compact drops all dead events in one pass and re-establishes the heap
// invariant. Relative order of live events is preserved by (at, seq).
func (k *Kernel) compact() {
	live := k.queue[:0]
	for _, ev := range k.queue {
		if ev.dead {
			ev.k = nil
			continue
		}
		live = append(live, ev)
	}
	// Clear the tail so dropped events can be collected.
	for i := len(live); i < len(k.queue); i++ {
		k.queue[i] = nil
	}
	k.queue = live
	k.dead = 0
	heap.Init(&k.queue)
}

// pop removes and returns the next live event, or nil when the queue is
// drained.
func (k *Kernel) pop() *Event {
	for k.queue.Len() > 0 {
		ev := heap.Pop(&k.queue).(*Event)
		ev.k = nil
		if ev.dead {
			k.dead--
			continue
		}
		return ev
	}
	return nil
}

// Run fires events in order until the queue is empty. It returns ErrBudget
// if SetBudget's cap is hit.
func (k *Kernel) Run() error {
	n := uint64(0)
	for {
		ev := k.pop()
		if ev == nil {
			return nil
		}
		k.now = ev.at
		ev.fn()
		k.fired++
		n++
		if k.budget != 0 && n >= k.budget {
			return ErrBudget
		}
	}
}

// RunUntil fires events in order while their time is <= deadline, leaving
// later events queued and the clock at min(deadline, last fired event).
func (k *Kernel) RunUntil(deadline time.Duration) {
	for k.queue.Len() > 0 && k.queue[0].at <= deadline {
		ev := heap.Pop(&k.queue).(*Event)
		ev.k = nil
		if ev.dead {
			k.dead--
			continue
		}
		k.now = ev.at
		ev.fn()
		k.fired++
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// Pending returns the number of live queued events in O(1), via the
// kernel's live-event accounting rather than a queue scan.
func (k *Kernel) Pending() int {
	return len(k.queue) - k.dead
}
