package sim

import (
	"testing"
	"time"
)

func TestRunFiresInTimeOrder(t *testing.T) {
	k := New()
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 10, 5} {
		d := d
		k.At(d, func() { got = append(got, k.Now()) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTiesFireInInsertionOrder(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(7, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order %v, want insertion order", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := New()
	var second time.Duration
	k.At(100, func() {
		k.After(50, func() { second = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if second != 150 {
		t.Fatalf("After fired at %v, want 150ns", second)
	}
}

func TestCancelSuppressesEvent(t *testing.T) {
	k := New()
	fired := false
	ev := k.At(10, func() { fired = true })
	ev.Cancel()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", k.Fired())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	k := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestBudgetStopsRunawayLoops(t *testing.T) {
	k := New()
	k.SetBudget(100)
	var loop func()
	loop = func() { k.After(1, loop) }
	k.At(0, loop)
	if err := k.Run(); err != ErrBudget {
		t.Fatalf("Run returned %v, want ErrBudget", err)
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	k := New()
	fired := 0
	k.At(10, func() { fired++ })
	k.At(20, func() { fired++ })
	k.At(30, func() { fired++ })
	k.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired %d events by t=20, want 2", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
	if k.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("fired %d after final Run, want 3", fired)
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	k := New()
	k.RunUntil(time.Second)
	if k.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", k.Now())
	}
}

func TestEventTimeAccessor(t *testing.T) {
	k := New()
	ev := k.At(42, func() {})
	if ev.Time() != 42 {
		t.Fatalf("Time() = %v, want 42", ev.Time())
	}
}

func TestNestedSchedulingInterleaves(t *testing.T) {
	// An event scheduled by a running event at the same timestamp must
	// still fire in this Run.
	k := New()
	var seq []string
	k.At(10, func() {
		seq = append(seq, "a")
		k.At(10, func() { seq = append(seq, "b") })
	})
	k.At(15, func() { seq = append(seq, "c") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a,b,c"
	got := ""
	for i, s := range seq {
		if i > 0 {
			got += ","
		}
		got += s
	}
	if got != want {
		t.Fatalf("sequence %q, want %q", got, want)
	}
}

func TestPendingIsLiveCount(t *testing.T) {
	k := New()
	var evs []Event
	for i := 0; i < 10; i++ {
		evs = append(evs, k.At(time.Duration(i+1), func() {}))
	}
	if k.Pending() != 10 {
		t.Fatalf("Pending() = %d, want 10", k.Pending())
	}
	evs[0].Cancel()
	evs[3].Cancel()
	evs[3].Cancel() // double-cancel is a no-op
	if k.Pending() != 8 {
		t.Fatalf("Pending() = %d after 2 cancels, want 8", k.Pending())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Fired() != 8 {
		t.Fatalf("Fired() = %d, want 8", k.Fired())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d after Run, want 0", k.Pending())
	}
}

func TestCancelCompactionKeepsOrder(t *testing.T) {
	// Cancel-heavy load: schedule 1000 events, cancel all odd ones (the
	// >50% threshold forces at least one compaction mid-stream), and
	// check that the survivors still fire in (time, insertion) order.
	k := New()
	var got []int
	var evs []Event
	for i := 0; i < 1000; i++ {
		i := i
		evs = append(evs, k.At(time.Duration(1+i/4), func() { got = append(got, i) }))
	}
	for i := 1; i < 1000; i += 2 {
		evs[i].Cancel()
	}
	if k.Pending() != 500 {
		t.Fatalf("Pending() = %d, want 500", k.Pending())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("fired %d, want 500", len(got))
	}
	for j := 1; j < len(got); j++ {
		a, b := got[j-1], got[j]
		if a/4 > b/4 || (a/4 == b/4 && a > b) {
			t.Fatalf("order violated after compaction: %d before %d", a, b)
		}
	}
}

func TestCancelAfterFireIsNoOp(t *testing.T) {
	k := New()
	ev := k.At(1, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ev.Cancel() // must not corrupt live-event accounting
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestResetReusesKernel(t *testing.T) {
	k := New()
	k.SetBudget(5)
	stale := k.At(10, func() { t.Fatal("event from before Reset fired") })
	k.At(20, func() {})
	k.RunUntil(0)
	k.Reset()
	if k.Now() != 0 || k.Pending() != 0 || k.Fired() != 0 {
		t.Fatalf("Reset left state: now=%v pending=%d fired=%d", k.Now(), k.Pending(), k.Fired())
	}
	stale.Cancel() // detached: must be a no-op on the reused kernel
	fired := 0
	for i := 0; i < 10; i++ {
		k.At(time.Duration(i), func() { fired++ })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("budget must be cleared by Reset: %v", err)
	}
	if fired != 10 {
		t.Fatalf("fired %d, want 10", fired)
	}
}

func TestResetKeepsHeapCapacity(t *testing.T) {
	k := New()
	for i := 0; i < 1024; i++ {
		k.At(time.Duration(i), func() {})
	}
	before := cap(k.queue)
	k.Reset()
	if cap(k.queue) != before {
		t.Fatalf("Reset reallocated: cap %d -> %d", before, cap(k.queue))
	}
}

// countHolder gives the zero-alloc test a pointer-typed AtArg argument
// (pointers box into `any` without allocating; plain ints do not).
type countHolder struct{ n int }

func bumpCount(a any) { a.(*countHolder).n++ }

func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	// Allocation budget: a warm kernel must schedule and fire events with
	// zero heap allocations — the free list absorbs every At/AtArg after
	// the first run populates it.
	k := New()
	var c countHolder
	round := func() {
		for i := 0; i < 64; i++ {
			k.AtArg(time.Duration(i), bumpCount, &c)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		k.Reset()
	}
	round() // warm the free list and heap capacity
	if avg := testing.AllocsPerRun(100, round); avg > 0 {
		t.Fatalf("steady-state scheduling allocates %.1f allocs/run, want 0", avg)
	}
	if c.n == 0 {
		t.Fatal("events never fired")
	}
}

func TestStaleHandleAfterResetIsInert(t *testing.T) {
	// A caller-held handle from a pooled kernel must stay inert after the
	// pool reuses the kernel: Reset recycles the event object, a new At
	// reuses it, and the stale handle's generation no longer matches.
	k := New()
	stale := k.At(10, func() { t.Fatal("detached event fired") })
	k.Reset()
	fired := false
	fresh := k.At(10, func() { fired = true }) // reuses the recycled object
	stale.Cancel()                             // must not cancel the new event
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("stale Cancel suppressed an unrelated recycled event")
	}
	fresh.Cancel() // fired already: no-op
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestStaleHandleAfterFireIsInertOnRecycledEvent(t *testing.T) {
	// Same staleness property within one kernel lifetime: once an event
	// fires, its object is recycled into the next scheduled event; the old
	// handle must not be able to cancel the new one.
	k := New()
	first := k.At(1, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	fired := false
	k.At(2, func() { fired = true }) // backed by the recycled object
	first.Cancel()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("stale handle cancelled a recycled event")
	}
}

func TestZeroEventHandleIsInert(t *testing.T) {
	var ev Event
	ev.Cancel() // must not panic
	if ev.Time() != 0 {
		t.Fatalf("zero handle Time() = %v, want 0", ev.Time())
	}
}

func TestTotalFiredAccumulatesAcrossKernels(t *testing.T) {
	before := TotalFired()
	k := New()
	for i := 0; i < 5; i++ {
		k.At(time.Duration(i), func() {})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := TotalFired() - before; got < 5 {
		t.Fatalf("TotalFired grew by %d, want >= 5", got)
	}
}

func TestAfterArgMatchesAfter(t *testing.T) {
	k := New()
	var c countHolder
	k.At(100, func() {
		k.AfterArg(50, bumpCount, &c)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.n != 1 {
		t.Fatalf("AfterArg callback ran %d times, want 1", c.n)
	}
	if k.Now() != 150 {
		t.Fatalf("clock at %v, want 150", k.Now())
	}
}
