package sim

import (
	"testing"
	"time"
)

func TestRunFiresInTimeOrder(t *testing.T) {
	k := New()
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 10, 5} {
		d := d
		k.At(d, func() { got = append(got, k.Now()) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTiesFireInInsertionOrder(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(7, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order %v, want insertion order", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := New()
	var second time.Duration
	k.At(100, func() {
		k.After(50, func() { second = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if second != 150 {
		t.Fatalf("After fired at %v, want 150ns", second)
	}
}

func TestCancelSuppressesEvent(t *testing.T) {
	k := New()
	fired := false
	ev := k.At(10, func() { fired = true })
	ev.Cancel()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", k.Fired())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	k := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestBudgetStopsRunawayLoops(t *testing.T) {
	k := New()
	k.SetBudget(100)
	var loop func()
	loop = func() { k.After(1, loop) }
	k.At(0, loop)
	if err := k.Run(); err != ErrBudget {
		t.Fatalf("Run returned %v, want ErrBudget", err)
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	k := New()
	fired := 0
	k.At(10, func() { fired++ })
	k.At(20, func() { fired++ })
	k.At(30, func() { fired++ })
	k.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired %d events by t=20, want 2", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
	if k.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("fired %d after final Run, want 3", fired)
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	k := New()
	k.RunUntil(time.Second)
	if k.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", k.Now())
	}
}

func TestEventTimeAccessor(t *testing.T) {
	k := New()
	ev := k.At(42, func() {})
	if ev.Time() != 42 {
		t.Fatalf("Time() = %v, want 42", ev.Time())
	}
}

func TestNestedSchedulingInterleaves(t *testing.T) {
	// An event scheduled by a running event at the same timestamp must
	// still fire in this Run.
	k := New()
	var seq []string
	k.At(10, func() {
		seq = append(seq, "a")
		k.At(10, func() { seq = append(seq, "b") })
	})
	k.At(15, func() { seq = append(seq, "c") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a,b,c"
	got := ""
	for i, s := range seq {
		if i > 0 {
			got += ","
		}
		got += s
	}
	if got != want {
		t.Fatalf("sequence %q, want %q", got, want)
	}
}
