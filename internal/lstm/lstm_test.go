package lstm

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/mlbase"
)

// seqSum builds sequences whose target is the (scaled) sum of the first
// feature across steps — learnable by an LSTM accumulating state.
func seqSum(rng *rand.Rand, n int) ([][][]float64, []float64) {
	var seqs [][][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		T := 2 + rng.Intn(4)
		seq := make([][]float64, T)
		var sum float64
		for t := range seq {
			a, b := rng.Float64(), rng.Float64()
			seq[t] = []float64{a, b}
			sum += a
		}
		seqs = append(seqs, seq)
		ys = append(ys, sum/4)
	}
	return seqs, ys
}

func TestGradientsMatchNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seq := [][]float64{{0.3, -0.2}, {0.7, 0.1}, {-0.4, 0.5}}
	target := 0.6
	m, err := Train([][][]float64{seq}, []float64{target}, Options{Hidden: 4, Epochs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dW, db, dwOut, dbOut := m.grads(seq, target)

	const eps = 1e-6
	check := func(name string, got float64, bump func(delta float64)) {
		bump(eps)
		up := m.Loss(seq, target)
		bump(-2 * eps)
		down := m.Loss(seq, target)
		bump(eps)
		num := (up - down) / (2 * eps)
		if math.Abs(num-got) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("%s: analytic %v vs numerical %v", name, got, num)
		}
	}
	// Spot-check a spread of W entries, biases, and the head.
	for _, idx := range []int{0, 7, len(m.W.Data) / 2, len(m.W.Data) - 1} {
		idx := idx
		check("W", dW.Data[idx], func(d float64) { m.W.Data[idx] += d })
	}
	for _, idx := range []int{0, len(m.b) / 2, len(m.b) - 1} {
		idx := idx
		check("b", db[idx], func(d float64) { m.b[idx] += d })
	}
	check("wOut", dwOut[1], func(d float64) { m.wOut[1] += d })
	check("bOut", dbOut, func(d float64) { m.bOut += d })
	_ = rng
}

func TestLearnsSequenceSum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seqs, ys := seqSum(rng, 250)
	m, err := Train(seqs, ys, Options{Hidden: 12, Epochs: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, len(seqs))
	for i, s := range seqs {
		pred[i] = m.Predict(s)
	}
	if mae := mlbase.MAE(pred, ys); mae > 0.12 {
		t.Fatalf("train MAE %v; LSTM failed to learn an additive sequence signal", mae)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	seqs, ys := seqSum(rng, 120)
	early, err := Train(seqs, ys, Options{Hidden: 8, Epochs: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	late, err := Train(seqs, ys, Options{Hidden: 8, Epochs: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var lossEarly, lossLate float64
	for i := range seqs {
		lossEarly += early.Loss(seqs[i], ys[i])
		lossLate += late.Loss(seqs[i], ys[i])
	}
	if lossLate >= lossEarly {
		t.Fatalf("training did not reduce loss: %v -> %v", lossEarly, lossLate)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	seqs, ys := seqSum(rng, 40)
	a, _ := Train(seqs, ys, Options{Hidden: 6, Epochs: 5, Seed: 9})
	b, _ := Train(seqs, ys, Options{Hidden: 6, Epochs: 5, Seed: 9})
	for i := range seqs {
		if a.Predict(seqs[i]) != b.Predict(seqs[i]) {
			t.Fatal("same seed, different models")
		}
	}
}

func TestVariableLengthSequences(t *testing.T) {
	seqs := [][][]float64{
		{{0.1, 0.2}},
		{{0.3, 0.4}, {0.5, 0.6}, {0.7, 0.8}, {0.9, 1.0}, {0.2, 0.1}},
	}
	m, err := Train(seqs, []float64{0.1, 0.5}, Options{Hidden: 4, Epochs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seqs {
		if math.IsNaN(m.Predict(s)) {
			t.Fatal("NaN prediction")
		}
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Train(nil, nil, Options{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Train([][][]float64{{}}, []float64{1}, Options{}); err == nil {
		t.Fatal("empty sequence accepted")
	}
	if _, err := Train([][][]float64{{{1, 2}}, {{1}}}, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("ragged features accepted")
	}
}

func TestPredictEmptyPanics(t *testing.T) {
	m, _ := Train([][][]float64{{{0.5}}}, []float64{1}, Options{Hidden: 2, Epochs: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sequence")
		}
	}()
	m.Predict(nil)
}
