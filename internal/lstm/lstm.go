// Package lstm is a from-scratch single-layer LSTM regressor, the
// stand-in for the PyTorch LSTM baseline of Figure 12.
//
// A wrap's functions form a sequence of feature vectors; the network
// consumes them in deployment order and regresses end-to-end latency from
// the final hidden state. Training is per-sample SGD (the paper sets
// batch size 1) with full backpropagation through time and gradient
// clipping; the learning rate defaults to the paper's best-found 0.01.
package lstm

import (
	"fmt"
	"math"
	"math/rand"

	"chiron/internal/mlbase"
)

// Options configure training.
type Options struct {
	// Hidden is the hidden-state width (default 16).
	Hidden int
	// Epochs is the number of SGD passes (default 60).
	Epochs int
	// LR is the learning rate (default 0.01, the paper's pick).
	LR float64
	// Clip bounds each gradient's L2 norm (default 5).
	Clip float64
	// Seed drives initialization and shuffling.
	Seed int64
}

func (o *Options) defaults() {
	if o.Hidden <= 0 {
		o.Hidden = 16
	}
	if o.Epochs <= 0 {
		o.Epochs = 60
	}
	if o.LR <= 0 {
		o.LR = 0.01
	}
	if o.Clip <= 0 {
		o.Clip = 5
	}
}

// Model is a trained LSTM regressor.
type Model struct {
	in, hidden int
	// W maps [x; h] -> the four stacked gates (i, f, o, g); b is its
	// bias.
	W *mlbase.Mat
	b []float64
	// wOut/bOut read the final hidden state out to a scalar.
	wOut []float64
	bOut float64
}

// Train fits the model to variable-length sequences seqs with targets y.
func Train(seqs [][][]float64, y []float64, opt Options) (*Model, error) {
	opt.defaults()
	if len(seqs) == 0 || len(seqs) != len(y) {
		return nil, fmt.Errorf("lstm: need matching non-empty seqs (%d) and y (%d)", len(seqs), len(y))
	}
	in := -1
	for i, s := range seqs {
		if len(s) == 0 {
			return nil, fmt.Errorf("lstm: sequence %d is empty", i)
		}
		for _, x := range s {
			if in == -1 {
				in = len(x)
			}
			if len(x) != in {
				return nil, fmt.Errorf("lstm: inconsistent feature width %d vs %d", len(x), in)
			}
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	h := opt.Hidden
	scale := 1 / math.Sqrt(float64(in+h))
	m := &Model{
		in: in, hidden: h,
		W:    mlbase.RandMat(4*h, in+h, scale, rng),
		b:    make([]float64, 4*h),
		wOut: make([]float64, h),
	}
	for j := range m.wOut {
		m.wOut[j] = (rng.Float64()*2 - 1) * scale
	}
	// Forget-gate bias starts positive, the standard trick for gradient
	// flow on short sequences.
	for j := h; j < 2*h; j++ {
		m.b[j] = 1
	}

	order := make([]int, len(seqs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			m.step(seqs[idx], y[idx], opt)
		}
	}
	return m, nil
}

// cache holds one forward pass for BPTT.
type cache struct {
	u    [][]float64 // [x; h_{t-1}]
	i    [][]float64
	f    [][]float64
	o    [][]float64
	g    [][]float64
	c    [][]float64
	h    [][]float64
	pred float64
}

func (m *Model) forward(seq [][]float64) *cache {
	h := m.hidden
	T := len(seq)
	cc := &cache{
		u: make([][]float64, T), i: make([][]float64, T), f: make([][]float64, T),
		o: make([][]float64, T), g: make([][]float64, T), c: make([][]float64, T),
		h: make([][]float64, T),
	}
	prevH := make([]float64, h)
	prevC := make([]float64, h)
	for t, x := range seq {
		u := make([]float64, m.in+h)
		copy(u, x)
		copy(u[m.in:], prevH)
		z := m.W.MulVec(u)
		it := make([]float64, h)
		ft := make([]float64, h)
		ot := make([]float64, h)
		gt := make([]float64, h)
		ct := make([]float64, h)
		ht := make([]float64, h)
		for j := 0; j < h; j++ {
			it[j] = mlbase.Sigmoid(z[j] + m.b[j])
			ft[j] = mlbase.Sigmoid(z[h+j] + m.b[h+j])
			ot[j] = mlbase.Sigmoid(z[2*h+j] + m.b[2*h+j])
			gt[j] = mlbase.Tanh(z[3*h+j] + m.b[3*h+j])
			ct[j] = ft[j]*prevC[j] + it[j]*gt[j]
			ht[j] = ot[j] * math.Tanh(ct[j])
		}
		cc.u[t], cc.i[t], cc.f[t], cc.o[t], cc.g[t], cc.c[t], cc.h[t] = u, it, ft, ot, gt, ct, ht
		prevH, prevC = ht, ct
	}
	cc.pred = mlbase.Dot(m.wOut, prevH) + m.bOut
	return cc
}

// step performs one SGD update on a single (sequence, target) pair.
func (m *Model) step(seq [][]float64, target float64, opt Options) {
	dW, db, dwOut, dbOut := m.grads(seq, target)
	clip := func(v []float64) {
		n := math.Sqrt(mlbase.Dot(v, v))
		if n > opt.Clip {
			s := opt.Clip / n
			for i := range v {
				v[i] *= s
			}
		}
	}
	clip(dW.Data)
	clip(db)
	clip(dwOut)

	m.W.AXPY(-opt.LR, dW)
	mlbase.AddScaled(m.b, -opt.LR, db)
	mlbase.AddScaled(m.wOut, -opt.LR, dwOut)
	m.bOut -= opt.LR * dbOut
}

// grads backpropagates the squared-error loss of one example through time
// and returns the parameter gradients.
func (m *Model) grads(seq [][]float64, target float64) (*mlbase.Mat, []float64, []float64, float64) {
	h := m.hidden
	cc := m.forward(seq)
	T := len(seq)
	dPred := cc.pred - target

	dW := mlbase.NewMat(4*h, m.in+h)
	db := make([]float64, 4*h)
	dwOut := make([]float64, h)
	mlbase.AddScaled(dwOut, dPred, cc.h[T-1])
	dbOut := dPred

	dh := make([]float64, h)
	mlbase.AddScaled(dh, dPred, m.wOut)
	dc := make([]float64, h)

	for t := T - 1; t >= 0; t-- {
		prevC := make([]float64, h)
		if t > 0 {
			copy(prevC, cc.c[t-1])
		}
		dz := make([]float64, 4*h)
		for j := 0; j < h; j++ {
			tc := math.Tanh(cc.c[t][j])
			do := dh[j] * tc
			dcj := dc[j] + dh[j]*cc.o[t][j]*(1-tc*tc)
			di := dcj * cc.g[t][j]
			dg := dcj * cc.i[t][j]
			df := dcj * prevC[j]
			dz[j] = di * cc.i[t][j] * (1 - cc.i[t][j])
			dz[h+j] = df * cc.f[t][j] * (1 - cc.f[t][j])
			dz[2*h+j] = do * cc.o[t][j] * (1 - cc.o[t][j])
			dz[3*h+j] = dg * (1 - cc.g[t][j]*cc.g[t][j])
			dc[j] = dcj * cc.f[t][j] // flows to c_{t-1}
		}
		// Accumulate parameter gradients and the input gradient.
		du := make([]float64, m.in+h)
		for r := 0; r < 4*h; r++ {
			if dz[r] == 0 {
				continue
			}
			row := m.W.Row(r)
			for cIdx, uv := range cc.u[t] {
				dW.Add(r, cIdx, dz[r]*uv)
				du[cIdx] += row[cIdx] * dz[r]
			}
			db[r] += dz[r]
		}
		copy(dh, du[m.in:]) // flows to h_{t-1}
	}
	return dW, db, dwOut, dbOut
}

// Predict returns the model's estimate for one sequence.
func (m *Model) Predict(seq [][]float64) float64 {
	if len(seq) == 0 {
		panic("lstm: empty sequence")
	}
	return m.forward(seq).pred
}

// Loss returns the squared-error loss on one example (exposed for
// gradient-check tests).
func (m *Model) Loss(seq [][]float64, target float64) float64 {
	d := m.Predict(seq) - target
	return 0.5 * d * d
}
