package deploy

import (
	"strings"
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/wrap"
)

func fn(name string) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: time.Millisecond}},
		MemMB:    1,
	}
}

func workflow(t *testing.T) *dag.Workflow {
	t.Helper()
	w, err := dag.FromStages("wf", 0,
		[]*behavior.Spec{fn("head")},
		[]*behavior.Spec{fn("a"), fn("b"), fn("c"), fn("d")},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func plan() *wrap.Plan {
	return &wrap.Plan{
		Workflow: "wf",
		Loc: map[string]wrap.Loc{
			"head": {Sandbox: 0, Proc: 0},
			"a":    {Sandbox: 0, Proc: 0},
			"b":    {Sandbox: 0, Proc: 1},
			"c":    {Sandbox: 1, Proc: 1},
			"d":    {Sandbox: 1, Proc: 2},
		},
		Sandboxes: []wrap.SandboxCfg{{CPUs: 2}, {CPUs: 2}},
	}
}

func TestGenerateOnePerSandbox(t *testing.T) {
	orcs, err := Generate(workflow(t), plan())
	if err != nil {
		t.Fatal(err)
	}
	if len(orcs) != 2 {
		t.Fatalf("%d orchestrators, want 2", len(orcs))
	}
	if orcs[0].Sandbox != 0 || orcs[1].Sandbox != 1 {
		t.Fatal("sandbox order wrong")
	}
}

func TestWrap0DrivesWorkflow(t *testing.T) {
	orcs, err := Generate(workflow(t), plan())
	if err != nil {
		t.Fatal(err)
	}
	src := orcs[0].Source
	for _, want := range []string{
		"def handle(req):",
		"Thread(functions.head, req)",      // sequential rides main
		"Thread(functions.a, req)",         // co-resident thread
		"Process([functions.b], req)",      // forked process
		"invoke_wrap(1, stage=1, req=req)", // remote wrap invocation
		"pending_1_1.wait()",               // gathers the remote result
		"pin_cpus(2)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("wrap 0 source missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(src, "functions.c") || strings.Contains(src, "functions.d") {
		t.Error("wrap 0 must not execute wrap 1's functions locally")
	}
}

func TestWrap1HandlesOnlyItsShare(t *testing.T) {
	orcs, err := Generate(workflow(t), plan())
	if err != nil {
		t.Fatal(err)
	}
	src := orcs[1].Source
	if !strings.Contains(src, "Process([functions.c], req)") ||
		!strings.Contains(src, "Process([functions.d], req)") {
		t.Errorf("wrap 1 missing its processes:\n%s", src)
	}
	if strings.Contains(src, "invoke_wrap(") {
		t.Error("remote wraps must not re-invoke siblings")
	}
	if strings.Contains(src, "functions.head") {
		t.Error("wrap 1 must not run wrap 0's functions")
	}
	if !strings.Contains(src, "gather_pipes(1)") {
		t.Errorf("wrap 1 should gather one pipe (2 processes):\n%s", src)
	}
}

func TestPoolCodegen(t *testing.T) {
	p := plan()
	p.Sandboxes[1].Pool = true
	p.Sandboxes[1].Workers = 2
	p.Sandboxes[1].LongestFirst = true
	orcs, err := Generate(workflow(t), p)
	if err != nil {
		t.Fatal(err)
	}
	src := orcs[1].Source
	for _, want := range []string{
		"pool = Pool(workers=2, longest_first=true)",
		"pool.submit(functions.c, req)",
		"pool.barrier()",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("pool codegen missing %q:\n%s", want, src)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(workflow(t), plan())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(workflow(t), plan())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Source != b[i].Source {
			t.Fatal("codegen nondeterministic")
		}
	}
}

func TestGenerateRejectsInvalidPlan(t *testing.T) {
	p := plan()
	delete(p.Loc, "a")
	if _, err := Generate(workflow(t), p); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestManifest(t *testing.T) {
	m, err := Manifest(workflow(t), plan())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"5 functions -> 2 wraps, 4 CPUs",
		"thread@main head",
		"fork",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("manifest missing %q:\n%s", want, m)
		}
	}
	// Sorted by (sandbox, proc): head before b, b before c.
	if strings.Index(m, "head") > strings.Index(m, " b\n") {
		t.Error("manifest not sorted by placement")
	}
}

func TestPyName(t *testing.T) {
	cases := map[string]string{
		"validate-001":  "validate_001",
		"fetch.data":    "fetch_data",
		"9lives":        "f_9lives",
		"ok_name":       "ok_name",
		"":              "f_",
		"weird name+/x": "weird_name__x",
	}
	for in, want := range cases {
		if got := pyName(in); got != want {
			t.Errorf("pyName(%q) = %q, want %q", in, got, want)
		}
	}
}
