package engine

import (
	"fmt"
	"time"

	"chiron/internal/gil"
	"chiron/internal/obs"
)

// emitTrace narrates the finished request to env.Rec as a span tree:
// the latency decomposition the paper argues from (scheduling share,
// fork block time, GIL contention, cold starts, IPC/RPC boundaries)
// becomes one event per cost instead of one aggregate number.
//
// Track model: PID 0 is the request/orchestrator track; sandbox s is
// pseudo-process s+1, whose TID 0 carries the wrap span and fork/IPC/
// RPC events and whose TID 1+i carries function i's span and slice
// detail. All timestamps are request-relative virtual time, so the
// trace is a pure function of (workflow, plan, env) — byte-identical
// at any worker count.
func (r *runner) emitTrace(res *Result) {
	rec := r.env.Rec
	tr, named := rec.(obs.Namer)
	if named {
		tr.NameProcess(0, "request")
	}
	rec.RecordSpan(obs.Span{
		PID: 0, TID: 0, Name: "request " + r.w.Name, Cat: obs.CatRequest,
		Start: 0, End: res.E2E,
		Args: []obs.Arg{
			obs.A("workflow", r.w.Name),
			obs.A("stages", len(res.Stages)),
			obs.A("seed", r.env.Seed),
			obs.A("sched_total", res.SchedTotal()),
		},
	})

	// Runtime lookup: GIL events only make sense for pseudo-parallel
	// runtimes (a Java thread's Run slice holds no interpreter lock).
	pseudo := make(map[string]bool)
	for _, st := range r.w.Stages {
		for _, fn := range st.Functions {
			pseudo[fn.Name] = fn.Runtime.PseudoParallel()
		}
	}

	for si, st := range res.Stages {
		rec.RecordSpan(obs.Span{
			PID: 0, TID: 0, Name: fmt.Sprintf("stage %d", si), Cat: obs.CatStage,
			Start: st.Start, End: st.End,
			Args: []obs.Arg{
				obs.A("sched", st.Sched),
				obs.A("wraps", len(st.Wraps)),
			},
		})
		if st.Boundary > 0 {
			rec.RecordSpan(obs.Span{
				PID: 0, TID: 0, Name: fmt.Sprintf("boundary %d->%d", si, si+1),
				Cat: obs.CatBoundary, Start: st.End, End: st.End + st.Boundary,
			})
			rec.RecordInstant(obs.Instant{
				PID: 0, TID: 0, Name: "boundary", Cat: obs.CatBoundary, At: st.End,
				Args: []obs.Arg{obs.A("dur", st.Boundary)},
			})
		}
		for _, wr := range st.Wraps {
			r.emitWrap(rec, named, tr, si, wr, pseudo)
		}
	}
}

func (r *runner) emitWrap(rec obs.Recorder, named bool, tr obs.Namer, si int, wr WrapResult, pseudo map[string]bool) {
	pid := wr.Sandbox + 1
	if named {
		tr.NameProcess(pid, fmt.Sprintf("sandbox %d", wr.Sandbox))
	}
	rec.RecordSpan(obs.Span{
		PID: pid, TID: 0, Name: fmt.Sprintf("s%d.wrap", si), Cat: obs.CatWrap,
		Start: wr.InvokedAt, End: wr.Done,
		Args: []obs.Arg{
			obs.A("stage", si),
			obs.A("sandbox", wr.Sandbox),
			obs.A("functions", len(wr.Exec.Functions)),
		},
	})
	if wr.Cold > 0 {
		rec.RecordInstant(obs.Instant{
			PID: pid, TID: 0, Name: "coldstart", Cat: obs.CatCold, At: wr.InvokedAt,
			Args: []obs.Arg{obs.A("dur", wr.Cold)},
		})
	}
	// Function timings are wrap-relative; InvokedAt is the base the
	// engine itself uses when assembling Result.Functions.
	base := wr.InvokedAt
	for pj, pt := range wr.Exec.Procs {
		if pt.ExecStart > pt.ForkAt {
			rec.RecordInstant(obs.Instant{
				PID: pid, TID: 0, Name: "fork", Cat: obs.CatFork, At: base + pt.ForkAt,
				Args: []obs.Arg{
					obs.A("proc", pj),
					obs.A("startup", pt.ExecStart-pt.ForkAt),
				},
			})
		}
	}
	if wr.Exec.IPC > 0 {
		from := base + wr.Exec.Compute
		rec.RecordSpan(obs.Span{
			PID: pid, TID: 0, Name: "ipc", Cat: obs.CatIPC,
			Start: from, End: from + wr.Exec.IPC,
		})
		rec.RecordInstant(obs.Instant{
			PID: pid, TID: 0, Name: "ipc", Cat: obs.CatIPC, At: from,
			Args: []obs.Arg{obs.A("dur", wr.Exec.IPC)},
		})
	}
	if wr.RPC > 0 {
		rec.RecordSpan(obs.Span{
			PID: pid, TID: 0, Name: "rpc", Cat: obs.CatRPC,
			Start: wr.Done - wr.RPC, End: wr.Done,
		})
		rec.RecordInstant(obs.Instant{
			PID: pid, TID: 0, Name: "rpc", Cat: obs.CatRPC, At: wr.Done - wr.RPC,
			Args: []obs.Arg{obs.A("dur", wr.RPC)},
		})
	}
	for fi, ft := range wr.Exec.Functions {
		tid := fi + 1
		start, end := base+ft.SpawnedAt, base+ft.Finish
		if len(ft.Slices) > 0 && base+ft.Slices[0].From < start {
			// Startup slices precede SpawnedAt; widen the span so slice
			// detail nests inside it.
			start = base + ft.Slices[0].From
		}
		rec.RecordSpan(obs.Span{
			PID: pid, TID: tid, Name: ft.Name, Cat: obs.CatFunction,
			Start: start, End: end,
			Args: []obs.Arg{
				obs.A("proc", ft.Proc),
				obs.A("cpu", ft.CPUTime),
				obs.A("block", ft.BlockTime),
			},
		})
		emitSlices(rec, pid, tid, base, ft.Slices, pseudo[ft.Name])
	}
}

// emitSlices renders a thread's timeline as slice spans plus GIL
// instants: one gil.acquire when a contiguous on-CPU chain first takes
// the token, gil.switch at every quantum preemption inside the chain,
// and one gil.release when the chain ends at a blocking syscall or
// thread exit (Figure 2's token passing, countable).
func emitSlices(rec obs.Recorder, pid, tid int, base time.Duration, slices []gil.Slice, underGIL bool) {
	holding := false
	for k, sl := range slices {
		from, to := base+sl.From, base+sl.To
		rec.RecordSpan(obs.Span{
			PID: pid, TID: tid, Name: sl.Kind.String(), Cat: obs.CatSlice,
			Start: from, End: to,
		})
		if !underGIL || sl.Kind != gil.Run {
			continue
		}
		if !holding {
			rec.RecordInstant(obs.Instant{PID: pid, TID: tid, Name: obs.GILAcquire, Cat: obs.CatGIL, At: from})
			holding = true
		}
		// Look past Wait slices: another Run continues the same CPU
		// span (the boundary was a switch); Block or exit releases.
		continues := false
		for _, nx := range slices[k+1:] {
			if nx.Kind == gil.Wait {
				continue
			}
			continues = nx.Kind == gil.Run
			break
		}
		if continues {
			rec.RecordInstant(obs.Instant{PID: pid, TID: tid, Name: obs.GILSwitch, Cat: obs.CatGIL, At: to})
		} else {
			rec.RecordInstant(obs.Instant{PID: pid, TID: tid, Name: obs.GILRelease, Cat: obs.CatGIL, At: to})
			holding = false
		}
	}
}
