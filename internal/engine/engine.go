// Package engine is the ground-truth executor: it runs one workflow
// request under a deployment plan and environment and reports what
// actually happened, stage by stage and function by function.
//
// Where the Predictor (package predict) applies the paper's clean
// white-box model, the engine layers on the effects real deployments
// exhibit: seeded startup jitter, per-syscall overhead, orchestrator
// hand-off lag, serialized gateway dispatch, Step Functions' windowed
// state scheduling, and remote-storage hops for intermediate data. All of
// it is deterministic for a given seed, so experiments and tests are
// stable while the predictor-vs-engine gap stays honest (Figure 12).
package engine

import (
	"fmt"
	"math/rand"
	"time"

	"chiron/internal/dag"
	"chiron/internal/gil"
	"chiron/internal/model"
	"chiron/internal/netsim"
	"chiron/internal/obs"
	"chiron/internal/parallel"
	"chiron/internal/proc"
	"chiron/internal/wrap"
)

// DispatchKind selects the per-stage function dispatch model.
type DispatchKind int

const (
	// DispatchNone: functions are invoked by the wrap orchestrators
	// themselves (many-to-one and m-to-n systems); only cross-wrap
	// invocation costs apply.
	DispatchNone DispatchKind = iota
	// DispatchGateway: the local OpenFaaS gateway serially dispatches
	// every function of a stage (one-to-one on the local cluster).
	DispatchGateway
	// DispatchASF: AWS Step Functions' state scheduler — ~150 ms per
	// state with a 10-wide window plus serialized control-plane cost
	// (Figure 3).
	DispatchASF
)

// BoundaryKind selects how intermediate data crosses stage boundaries.
type BoundaryKind int

const (
	// BoundaryShared: successor stages read predecessors' output from
	// sandbox-shared memory or over the wrap invocation itself; no extra
	// hop (many-to-one, m-to-n).
	BoundaryShared BoundaryKind = iota
	// BoundaryStore: producers upload to a remote object store and
	// consumers download (one-to-one; Figure 4's cost).
	BoundaryStore
)

// Env is the execution environment.
type Env struct {
	// Const is the calibrated substrate timing.
	Const model.Constants
	// Dispatch selects the function dispatch model.
	Dispatch DispatchKind
	// Boundary selects the inter-stage data path.
	Boundary BoundaryKind
	// Store prices BoundaryStore hops (e.g. netsim.AWSS3, LocalMinIO).
	Store netsim.Profile
	// ColdStart charges each sandbox's container boot on the critical
	// path of the stage where it first runs (off = pre-warmed, the
	// paper's measurement mode).
	ColdStart bool
	// Fidelity enables engine-grade imperfections (jitter, syscall
	// overhead, hand-off lag). Experiments leave it on; turning it off
	// reduces the engine to the predictor's idealized model.
	Fidelity bool
	// Seed drives all deterministic jitter.
	Seed int64
	// Record keeps per-function timeline slices (Figure 5).
	Record bool
	// Rec, when non-nil, receives the request's span tree and instant
	// events (package obs): request → stage → wrap → function spans plus
	// fork, GIL, cold-start, IPC/RPC and boundary events, all stamped
	// from the virtual clock. Tracing implies slice recording internally;
	// a nil Rec costs the hot path a single nil-check.
	Rec obs.Recorder
}

// FunctionTiming is one function's absolute schedule within the request.
type FunctionTiming struct {
	Name    string
	Stage   int
	Sandbox int
	// Start is when the function's thread/process existed and could run.
	Start time.Duration
	// Finish is when it completed (request-relative; Figure 15's CDF
	// metric).
	Finish time.Duration
	// Slices is the recorded timeline, request-relative (Env.Record).
	Slices []gil.Slice
}

// WrapResult is one wrap's execution within one stage.
type WrapResult struct {
	Sandbox int
	// InvokedAt is when the orchestrator issued this wrap's invocation.
	InvokedAt time.Duration
	// Done is when the wrap's result was back at the orchestrator.
	Done time.Duration
	// Cold is the container-boot cost this wrap paid (zero when warm).
	Cold time.Duration
	// RPC is the response hand-back cost for remote wraps (zero for the
	// local wrap and platform-dispatched sandboxes).
	RPC time.Duration
	// Exec is the wrap-internal execution detail.
	Exec *proc.Result
}

// StageResult is one stage's execution.
type StageResult struct {
	// Start and End bound the stage on the request timeline.
	Start, End time.Duration
	// Sched is the stage's scheduling/dispatch share: time until the
	// last function had been handed to an executor (Figure 3's metric).
	Sched time.Duration
	// Boundary is the inter-stage data cost paid after this stage.
	Boundary time.Duration
	// Wraps details each participating wrap.
	Wraps []WrapResult
}

// Result is one request's ground truth.
type Result struct {
	// E2E is the end-to-end latency.
	E2E time.Duration
	// Stages in order.
	Stages []StageResult
	// Functions across all stages, stage-major.
	Functions []FunctionTiming
}

// SchedTotal sums the per-stage scheduling shares.
func (r *Result) SchedTotal() time.Duration {
	var d time.Duration
	for _, s := range r.Stages {
		d += s.Sched
	}
	return d
}

// Run executes one request of workflow w deployed per plan under env.
func Run(w *dag.Workflow, plan *wrap.Plan, env Env) (*Result, error) {
	if err := plan.Validate(w); err != nil {
		return nil, err
	}
	r := &runner{w: w, plan: plan, env: env, rng: rand.New(rand.NewSource(env.Seed))}
	return r.run()
}

type runner struct {
	w    *dag.Workflow
	plan *wrap.Plan
	env  Env
	rng  *rand.Rand

	coldPaid map[int]bool
}

func (r *runner) jitter(d time.Duration) time.Duration {
	if !r.env.Fidelity || d <= 0 {
		return d
	}
	u := r.rng.Float64()*2 - 1
	out := time.Duration(float64(d) * (1 + r.env.Const.StartupJitterPct*u))
	if out < 0 {
		out = 0
	}
	return out
}

func (r *runner) run() (*Result, error) {
	res := &Result{}
	r.coldPaid = make(map[int]bool)
	// Per-request correlated load factor: co-located tenants, cache state
	// and frequency scaling move a whole request's costs together, which
	// is what makes real deployments miss SLOs (Figure 14). Independent
	// per-operation jitter alone would average out over wide stages.
	load := 1.0
	if r.env.Fidelity {
		load = 1 + 0.05*(r.rng.Float64()*2-1)
	}
	t := time.Duration(0)
	for i := range r.w.Stages {
		stage, err := r.runStage(i, t)
		if err != nil {
			return nil, err
		}
		t = stage.End + stage.Boundary
		res.Stages = append(res.Stages, *stage)
	}
	res.E2E = time.Duration(float64(t) * load)
	for si, st := range res.Stages {
		for _, wr := range st.Wraps {
			base := wr.InvokedAt
			for _, ft := range wr.Exec.Functions {
				out := FunctionTiming{
					Name:    ft.Name,
					Stage:   si,
					Sandbox: wr.Sandbox,
					Start:   base + ft.SpawnedAt,
					Finish:  base + ft.Finish,
				}
				if r.env.Record {
					out.Slices = make([]gil.Slice, len(ft.Slices))
					for k, sl := range ft.Slices {
						out.Slices[k] = gil.Slice{From: base + sl.From, To: base + sl.To, Kind: sl.Kind}
					}
				}
				res.Functions = append(res.Functions, out)
			}
		}
	}
	if r.env.Rec != nil {
		r.emitTrace(res)
	}
	return res, nil
}

// runStage executes stage i beginning at absolute time t0.
func (r *runner) runStage(i int, t0 time.Duration) (*StageResult, error) {
	wraps, err := r.plan.StageWraps(r.w, i)
	if err != nil {
		return nil, err
	}
	st := &StageResult{Start: t0}
	c := r.env.Const

	switch r.env.Dispatch {
	case DispatchGateway, DispatchASF:
		// One-to-one: every wrap is one sandbox the platform scheduler
		// dispatches to individually, at a per-dispatch start offset.
		end := t0
		for idx, sw := range wraps {
			offset := r.dispatchOffset(idx)
			invokeAt := t0 + offset
			if offset > st.Sched {
				st.Sched = offset
			}
			exec := r.execWrap(sw, i)
			cold := r.coldStart(sw.Sandbox)
			done := invokeAt + cold + exec.Total
			st.Wraps = append(st.Wraps, WrapResult{
				Sandbox:   sw.Sandbox,
				InvokedAt: invokeAt + cold,
				Done:      done,
				Cold:      cold,
				Exec:      exec,
			})
			if done > end {
				end = done
			}
		}
		st.End = end

	default:
		// Wrap orchestration per Eq. 2: the local wrap (sandbox 0) runs
		// in place; remote wraps are invoked serially at T_INV strides
		// and answer after T_RPC.
		end := t0
		remoteRank := 0
		for _, sw := range wraps {
			exec := r.execWrap(sw, i)
			cold := r.coldStart(sw.Sandbox)
			var invokeAt, done, rpc time.Duration
			if sw.Sandbox == 0 {
				invokeAt = t0
				done = t0 + cold + exec.Total
			} else {
				remoteRank++
				inv := r.jitter(time.Duration(remoteRank) * c.InvokeCost)
				rpc = r.jitter(c.RPCCost)
				invokeAt = t0 + inv
				done = invokeAt + cold + exec.Total + rpc
				if inv+rpc > st.Sched {
					st.Sched = inv + rpc
				}
			}
			st.Wraps = append(st.Wraps, WrapResult{Sandbox: sw.Sandbox, InvokedAt: invokeAt, Done: done, Cold: cold, RPC: rpc, Exec: exec})
			if done > end {
				end = done
			}
		}
		st.End = end
	}

	if r.env.Boundary == BoundaryStore && i < len(r.w.Stages)-1 {
		var maxOut int64
		for _, fn := range r.w.Stages[i].Functions {
			if fn.OutputBytes > maxOut {
				maxOut = fn.OutputBytes
			}
		}
		// Producer upload + consumer download on the critical path.
		st.Boundary = r.jitter(r.env.Store.Transfer(maxOut)) + r.jitter(r.env.Store.Transfer(maxOut))
	}
	return st, nil
}

// dispatchOffset returns function idx's start offset under the platform
// scheduler.
func (r *runner) dispatchOffset(idx int) time.Duration {
	c := r.env.Const
	switch r.env.Dispatch {
	case DispatchASF:
		// Dispatch rounds of ASFConcurrency states, each round costing
		// one scheduling latency, plus serialized control-plane work
		// (fits Figure 3: 150 ms / 874 ms / 1628 ms at 5/25/50).
		round := idx / c.ASFConcurrency
		base := time.Duration(round+1) * c.ASFSchedPerFn
		ctl := time.Duration(idx+1) * c.ASFControlPerFn
		return r.jitter(base + ctl)
	case DispatchGateway:
		return r.jitter(time.Duration(idx) * c.GatewaySchedPerFn)
	default:
		return 0
	}
}

// coldStart charges the container boot the first time a sandbox runs.
func (r *runner) coldStart(sandboxIdx int) time.Duration {
	if !r.env.ColdStart || r.coldPaid[sandboxIdx] {
		return 0
	}
	r.coldPaid[sandboxIdx] = true
	return r.jitter(r.env.Const.ColdStart)
}

// execWrap runs one wrap's processes through the execution substrate.
func (r *runner) execWrap(sw wrap.StageWrap, stage int) *proc.Result {
	opt := proc.Options{
		Const:        r.env.Const,
		CPUs:         sw.Cfg.CPUs,
		Pool:         sw.Cfg.Pool,
		Workers:      sw.Cfg.Workers,
		LongestFirst: sw.Cfg.LongestFirst,
		MainResident: sw.HasMainProc() && !sw.Cfg.ForkPerRequest,
		Fidelity:     r.env.Fidelity,
		Seed:         r.env.Seed + int64(stage)*31337 + int64(sw.Sandbox)*977,
		// Tracing needs the per-thread slice timelines to derive GIL
		// events; recording never changes simulated timings.
		Record: r.env.Record || r.env.Rec != nil,
	}
	switch sw.Cfg.Iso {
	case wrap.IsoMPK:
		opt.Iso = proc.MPK(r.env.Const)
	case wrap.IsoSFI:
		opt.Iso = proc.SFI(r.env.Const)
	}
	// A wrap's processes within one stage cannot exceed its cpuset when
	// they host threads; package proc validates. For single-thread
	// processes the cpuset bounds concurrency naturally.
	procs := sw.Processes()
	if opt.CPUs == 0 {
		opt.CPUs = len(procs)
	}
	return proc.Run(procs, opt)
}

// RunMany executes n requests with distinct seeds and returns their
// end-to-end latencies (the sampling behind Figures 14 and 15).
//
// Requests are independent seeded computations, so they fan out across the
// parallel worker pool; each task builds its own runner state (and its own
// event kernels underneath) and latencies are collected in request order,
// making the output bit-for-bit identical at every worker count. The
// per-request seed stream (base + i*65537) is a documented contract: every
// recorded table in EXPERIMENTS.md was sampled from it.
func RunMany(w *dag.Workflow, plan *wrap.Plan, env Env, n int) ([]time.Duration, error) {
	if n <= 0 {
		return nil, fmt.Errorf("engine: non-positive request count %d", n)
	}
	// Validate once up front instead of once per fanned-out request.
	if err := plan.Validate(w); err != nil {
		return nil, err
	}
	return parallel.Map(n, func(i int) (time.Duration, error) {
		e := env
		e.Seed = env.Seed + int64(i)*65537
		res, err := Run(w, plan, e)
		if err != nil {
			return 0, err
		}
		return res.E2E, nil
	})
}
