package engine

import (
	"bytes"
	"testing"

	"chiron/internal/dag"
	"chiron/internal/model"
	"chiron/internal/obs"
	"chiron/internal/parallel"
	"chiron/internal/pgp"
	"chiron/internal/profiler"
	"chiron/internal/workloads"
	"chiron/internal/wrap"
)

// tracedFINRARun profiles FINRA-100, plans it with PGP (the Chiron
// deployment) and runs one traced request, returning the trace and the
// Chrome export bytes — the exact pipeline behind chiron-bench -trace.
func tracedFINRARun(t testing.TB) (*obs.Trace, []byte) {
	t.Helper()
	w := workloads.FINRA(100)
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := model.Default()
	res, err := pgp.Plan(w, set, pgp.Options{Const: c, Iso: wrap.IsoNone, Style: pgp.Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	env := Env{Const: c, Dispatch: DispatchNone, Boundary: BoundaryShared, Fidelity: true, Seed: 1, Rec: tr}
	if _, err := Run(w, res.Plan, env); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes()
}

// TestGoldenTraceByteIdenticalAcrossWorkerCounts is the acceptance
// pin: the virtual-time trace of a FINRA-100 Chiron request — profiling,
// PGP planning and execution included — exports byte-identical Chrome
// JSON with the worker pool at width 1 and width 8.
func TestGoldenTraceByteIdenticalAcrossWorkerCounts(t *testing.T) {
	old := parallel.Workers()
	defer parallel.SetWorkers(old)

	parallel.SetWorkers(1)
	_, seq := tracedFINRARun(t)
	parallel.SetWorkers(8)
	_, par := tracedFINRARun(t)
	if !bytes.Equal(seq, par) {
		t.Fatal("trace bytes differ between -parallel 1 and -parallel 8")
	}
	// And a second run at the same width is identical too (no hidden
	// process-global state leaks into the trace).
	_, again := tracedFINRARun(t)
	if !bytes.Equal(par, again) {
		t.Fatal("trace bytes differ between two identical runs")
	}
}

// TestTraceSpanTree checks the structural contract of an engine trace:
// exactly one request span on PID 0 covering the run, one stage span
// per stage nested inside it, wrap spans on sandbox pseudo-processes,
// fork instants for forked processes, and paired GIL events.
func TestTraceSpanTree(t *testing.T) {
	tr, _ := tracedFINRARun(t)

	reqs := tr.SpansBy(obs.CatRequest)
	if len(reqs) != 1 {
		t.Fatalf("%d request spans, want 1", len(reqs))
	}
	req := reqs[0]
	if req.PID != 0 || req.Start != 0 || req.End <= 0 {
		t.Fatalf("request span = %+v", req)
	}

	stages := tr.SpansBy(obs.CatStage)
	if len(stages) != 2 { // FINRA: fetch stage + validator fan-out stage
		t.Fatalf("%d stage spans, want 2", len(stages))
	}
	for _, s := range stages {
		if s.PID != 0 || s.Start < req.Start || s.End > req.End {
			t.Fatalf("stage span %+v escapes request span %+v", s, req)
		}
	}

	wraps := tr.SpansBy(obs.CatWrap)
	if len(wraps) == 0 {
		t.Fatal("no wrap spans")
	}
	for _, w := range wraps {
		if w.PID == 0 {
			t.Fatalf("wrap span on the request track: %+v", w)
		}
		if w.TID != 0 {
			t.Fatalf("wrap span must ride the sandbox orchestrator row: %+v", w)
		}
	}

	fns := tr.SpansBy(obs.CatFunction)
	if len(fns) != 101 { // 1 fetch + 100 validators
		t.Fatalf("%d function spans, want 101", len(fns))
	}
	for _, f := range fns {
		if f.TID == 0 {
			t.Fatalf("function span on TID 0: %+v", f)
		}
	}

	// FINRA-100 packs multiple validator processes per wrap, so the
	// engine must narrate forks; FINRA is Python, so GIL instants must
	// exist and acquires must pair with releases.
	if len(tr.InstantsBy("fork")) == 0 {
		t.Fatal("no fork instants")
	}
	acq, rel := tr.InstantsBy(obs.GILAcquire), tr.InstantsBy(obs.GILRelease)
	if len(acq) == 0 {
		t.Fatal("no GIL acquire instants for a Python workflow")
	}
	if len(acq) != len(rel) {
		t.Fatalf("%d GIL acquires vs %d releases", len(acq), len(rel))
	}
}

// TestTracingDoesNotChangeResults pins that attaching a Recorder only
// narrates the run: E2E and per-stage timings are identical with and
// without tracing.
func TestTracingDoesNotChangeResults(t *testing.T) {
	w := workloads.FINRA(50)
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := model.Default()
	pres, err := pgp.Plan(w, set, pgp.Options{Const: c, Iso: wrap.IsoNone, Style: pgp.Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	env := Env{Const: c, Dispatch: DispatchNone, Boundary: BoundaryShared, Fidelity: true, Seed: 3}
	plain, err := Run(w, pres.Plan, env)
	if err != nil {
		t.Fatal(err)
	}
	env.Rec = obs.NewTrace()
	traced, err := Run(w, pres.Plan, env)
	if err != nil {
		t.Fatal(err)
	}
	if plain.E2E != traced.E2E {
		t.Fatalf("tracing changed E2E: %v vs %v", plain.E2E, traced.E2E)
	}
	for i := range plain.Stages {
		if plain.Stages[i].End != traced.Stages[i].End {
			t.Fatalf("tracing changed stage %d end", i)
		}
	}
}

// benchEnv builds a small deterministic run for the overhead benchmark.
func benchSetup(b *testing.B) (*workflowPlanEnv, error) {
	w := workloads.FINRA(5)
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		return nil, err
	}
	c := model.Default()
	res, err := pgp.Plan(w, set, pgp.Options{Const: c, Iso: wrap.IsoNone, Style: pgp.Hybrid})
	if err != nil {
		return nil, err
	}
	env := Env{Const: c, Dispatch: DispatchNone, Boundary: BoundaryShared, Fidelity: true, Seed: 1}
	return &workflowPlanEnv{w: w, plan: res.Plan, env: env}, nil
}

type workflowPlanEnv struct {
	w    *dag.Workflow
	plan *wrap.Plan
	env  Env
}

// BenchmarkRunTracingOff is the no-Recorder baseline: the hot path pays
// one nil-check. Compare against BenchmarkRunTracingOn to measure the
// cost of narration (BenchmarkRunTracingNop isolates call overhead).
func BenchmarkRunTracingOff(b *testing.B) {
	s, err := benchSetup(b)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s.w, s.plan, s.env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunTracingNop(b *testing.B) {
	s, err := benchSetup(b)
	if err != nil {
		b.Fatal(err)
	}
	s.env.Rec = obs.Nop{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s.w, s.plan, s.env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunTracingOn(b *testing.B) {
	s, err := benchSetup(b)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.env.Rec = obs.NewTrace()
		if _, err := Run(s.w, s.plan, s.env); err != nil {
			b.Fatal(err)
		}
	}
}
