package engine

import (
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/model"
	"chiron/internal/netsim"
	"chiron/internal/parallel"
	"chiron/internal/wrap"
)

func cpuFn(name string, d time.Duration) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: d}},
		MemMB:    1, OutputBytes: 4096,
	}
}

func twoStage(t *testing.T, par int) *dag.Workflow {
	t.Helper()
	vs := make([]*behavior.Spec, par)
	for i := range vs {
		vs[i] = cpuFn("v"+string(rune('a'+i)), 2*time.Millisecond)
	}
	w, err := dag.FromStages("wf", 0, []*behavior.Spec{cpuFn("head", 3*time.Millisecond)}, vs)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func oneToOne(w *dag.Workflow) *wrap.Plan {
	p := &wrap.Plan{Workflow: w.Name, Loc: map[string]wrap.Loc{}}
	for i, fn := range w.Functions() {
		p.Loc[fn.Name] = wrap.Loc{Sandbox: i, Proc: 0}
		p.Sandboxes = append(p.Sandboxes, wrap.SandboxCfg{CPUs: 1})
	}
	return p
}

func sharedSandbox(w *dag.Workflow) *wrap.Plan {
	p := &wrap.Plan{Workflow: w.Name, Loc: map[string]wrap.Loc{}}
	pr := 1
	for si, st := range w.Stages {
		for _, fn := range st.Functions {
			if si == 0 {
				p.Loc[fn.Name] = wrap.Loc{Sandbox: 0, Proc: 0}
				continue
			}
			p.Loc[fn.Name] = wrap.Loc{Sandbox: 0, Proc: pr}
			pr++
		}
	}
	p.Sandboxes = []wrap.SandboxCfg{{CPUs: w.MaxParallelism()}}
	return p
}

func idealEnv() Env {
	return Env{Const: model.Default(), Dispatch: DispatchNone, Boundary: BoundaryShared}
}

func TestSharedSandboxIdealMatchesEquations(t *testing.T) {
	c := model.Default()
	w := twoStage(t, 3)
	res, err := Run(w, sharedSandbox(w), idealEnv())
	if err != nil {
		t.Fatal(err)
	}
	// Stage 0: head as resident thread: clone + 3ms.
	s0 := c.ThreadStartup + 3*time.Millisecond
	// Stage 1: 3 forked singles over 3 CPUs: last fork at 2 x block,
	// + startup + exec, + 2 x IPC.
	s1 := 2*c.ProcBlockStep + c.ProcStartup + 2*time.Millisecond + 2*c.IPCCost
	want := s0 + s1
	if res.E2E != want {
		t.Fatalf("E2E = %v, want %v", res.E2E, want)
	}
	if len(res.Stages) != 2 || res.Stages[0].Sched != 0 {
		t.Fatalf("stages = %+v", res.Stages)
	}
}

func TestGatewayDispatchSerializes(t *testing.T) {
	c := model.Default()
	w := twoStage(t, 10)
	env := idealEnv()
	env.Dispatch = DispatchGateway
	res, err := Run(w, oneToOne(w), env)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 1 sched = 9 serialized gateway dispatches.
	wantSched := 9 * c.GatewaySchedPerFn
	if res.Stages[1].Sched != wantSched {
		t.Fatalf("stage 1 sched = %v, want %v", res.Stages[1].Sched, wantSched)
	}
}

func TestASFDispatchWindowMatchesFigure3(t *testing.T) {
	c := model.Default()
	mk := func(par int) time.Duration {
		w := twoStage(t, par)
		env := idealEnv()
		env.Dispatch = DispatchASF
		res, err := Run(w, oneToOne(w), env)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stages[1].Sched
	}
	// Figure 3: ~150ms at 5, ~874ms at 25, ~1628ms at 50.
	for _, tc := range []struct {
		par int
		lo  time.Duration
		hi  time.Duration
	}{
		{5, 150 * time.Millisecond, 250 * time.Millisecond},
		{25, 800 * time.Millisecond, 950 * time.Millisecond},
		{50, 1500 * time.Millisecond, 1750 * time.Millisecond},
	} {
		got := mk(tc.par)
		if got < tc.lo || got > tc.hi {
			t.Errorf("ASF sched at %d parallel = %v, want [%v, %v]", tc.par, got, tc.lo, tc.hi)
		}
	}
	_ = c
}

func TestBoundaryStoreChargesTransfers(t *testing.T) {
	c := model.Default()
	w := twoStage(t, 2)
	env := idealEnv()
	env.Boundary = BoundaryStore
	env.Store = netsim.LocalMinIO(c)
	res, err := Run(w, oneToOne(w), env)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * env.Store.Transfer(4096) // put + get of head's output
	if res.Stages[0].Boundary != want {
		t.Fatalf("boundary = %v, want %v", res.Stages[0].Boundary, want)
	}
	// The final stage has no successor: no boundary.
	if res.Stages[1].Boundary != 0 {
		t.Fatalf("final stage boundary = %v, want 0", res.Stages[1].Boundary)
	}
	shared, err := Run(w, oneToOne(w), idealEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.E2E <= shared.E2E {
		t.Fatal("remote store must cost more than shared memory")
	}
}

func TestRemoteWrapPaysInvokeAndRPC(t *testing.T) {
	c := model.Default()
	w := twoStage(t, 4)
	split := &wrap.Plan{Workflow: w.Name, Loc: map[string]wrap.Loc{
		"head": {Sandbox: 0, Proc: 0},
		"va":   {Sandbox: 0, Proc: 1}, "vb": {Sandbox: 0, Proc: 2},
		"vc": {Sandbox: 1, Proc: 1}, "vd": {Sandbox: 1, Proc: 2},
	}, Sandboxes: []wrap.SandboxCfg{{CPUs: 2}, {CPUs: 2}}}
	res, err := Run(w, split, idealEnv())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stages[1]
	if len(st.Wraps) != 2 {
		t.Fatalf("%d wraps in stage 1", len(st.Wraps))
	}
	local, remote := st.Wraps[0], st.Wraps[1]
	if local.Sandbox != 0 || remote.Sandbox != 1 {
		t.Fatalf("wrap order: %+v", st.Wraps)
	}
	if remote.InvokedAt != st.Start+c.InvokeCost {
		t.Errorf("remote invoked at %v, want start+T_INV", remote.InvokedAt-st.Start)
	}
	wantDone := remote.InvokedAt + remote.Exec.Total + c.RPCCost
	if remote.Done != wantDone {
		t.Errorf("remote done = %v, want %v", remote.Done, wantDone)
	}
}

func TestColdStartChargedOncePerSandbox(t *testing.T) {
	c := model.Default()
	w := twoStage(t, 2)
	plan := sharedSandbox(w)
	env := idealEnv()
	env.ColdStart = true
	cold, err := Run(w, plan, env)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(w, plan, idealEnv())
	if err != nil {
		t.Fatal(err)
	}
	diff := cold.E2E - warm.E2E
	if diff != c.ColdStart {
		t.Fatalf("cold start added %v, want exactly one %v (single sandbox, two stages)", diff, c.ColdStart)
	}
}

func TestFunctionTimingsCoverAllFunctions(t *testing.T) {
	w := twoStage(t, 5)
	res, err := Run(w, sharedSandbox(w), idealEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Functions) != 6 {
		t.Fatalf("%d function timings, want 6", len(res.Functions))
	}
	seen := map[string]bool{}
	for _, ft := range res.Functions {
		seen[ft.Name] = true
		if ft.Finish <= ft.Start && ft.Name != "head" {
			t.Errorf("%s: finish %v <= start %v", ft.Name, ft.Finish, ft.Start)
		}
		if ft.Finish > res.Stages[ft.Stage].End {
			t.Errorf("%s finishes after its stage ends", ft.Name)
		}
	}
	if len(seen) != 6 {
		t.Fatalf("function timings missing names: %v", seen)
	}
}

func TestStage1FunctionsStartAfterStage0(t *testing.T) {
	w := twoStage(t, 3)
	res, err := Run(w, sharedSandbox(w), idealEnv())
	if err != nil {
		t.Fatal(err)
	}
	for _, ft := range res.Functions {
		if ft.Stage == 1 && ft.Start < res.Stages[0].End {
			t.Fatalf("%s started at %v, before stage 0 ended at %v", ft.Name, ft.Start, res.Stages[0].End)
		}
	}
}

func TestFidelityDeterministicPerSeed(t *testing.T) {
	w := twoStage(t, 4)
	env := idealEnv()
	env.Fidelity = true
	env.Seed = 11
	a, err := Run(w, sharedSandbox(w), env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, sharedSandbox(w), env)
	if err != nil {
		t.Fatal(err)
	}
	if a.E2E != b.E2E {
		t.Fatal("same seed differed")
	}
	env.Seed = 12
	c2, err := Run(w, sharedSandbox(w), env)
	if err != nil {
		t.Fatal(err)
	}
	if c2.E2E == a.E2E {
		t.Fatal("different seeds identical")
	}
}

func TestRunManyProducesSpread(t *testing.T) {
	w := twoStage(t, 8)
	env := idealEnv()
	env.Fidelity = true
	lats, err := RunMany(w, sharedSandbox(w), env, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(lats) != 50 {
		t.Fatalf("%d samples", len(lats))
	}
	min, max := lats[0], lats[0]
	for _, l := range lats {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min == max {
		t.Fatal("no latency spread across seeded requests")
	}
	spread := float64(max-min) / float64(min)
	if spread > 0.5 {
		t.Fatalf("spread %.0f%% implausibly wide", spread*100)
	}
	if _, err := RunMany(w, sharedSandbox(w), env, 0); err == nil {
		t.Fatal("zero request count accepted")
	}
}

func TestRecordPropagatesAbsoluteSlices(t *testing.T) {
	w := twoStage(t, 3)
	env := idealEnv()
	env.Record = true
	res, err := Run(w, sharedSandbox(w), env)
	if err != nil {
		t.Fatal(err)
	}
	for _, ft := range res.Functions {
		if len(ft.Slices) == 0 {
			t.Fatalf("%s has no recorded slices", ft.Name)
		}
		last := ft.Slices[len(ft.Slices)-1]
		if last.To != ft.Finish {
			t.Errorf("%s: timeline end %v != finish %v", ft.Name, last.To, ft.Finish)
		}
	}
}

func TestInvalidPlanRejected(t *testing.T) {
	w := twoStage(t, 2)
	bad := &wrap.Plan{Workflow: w.Name, Loc: map[string]wrap.Loc{}, Sandboxes: []wrap.SandboxCfg{{CPUs: 1}}}
	if _, err := Run(w, bad, idealEnv()); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestForkPerRequestChargesMainProc(t *testing.T) {
	// classic-watchdog semantics: even proc-0 functions fork per request.
	c := model.Default()
	w := twoStage(t, 2)
	plan := sharedSandbox(w)
	of, err := Run(w, plan, idealEnv())
	if err != nil {
		t.Fatal(err)
	}
	classic := sharedSandbox(w)
	classic.Sandboxes[0].ForkPerRequest = true
	cl, err := Run(w, classic, idealEnv())
	if err != nil {
		t.Fatal(err)
	}
	if cl.E2E <= of.E2E {
		t.Fatalf("fork-per-request (%v) must cost more than resident main (%v)", cl.E2E, of.E2E)
	}
	if cl.E2E-of.E2E < c.ProcStartup/2 {
		t.Fatalf("penalty %v implausibly small", cl.E2E-of.E2E)
	}
}

func TestPoolWrapInEngine(t *testing.T) {
	w := twoStage(t, 6)
	plan := &wrap.Plan{Workflow: w.Name, Loc: map[string]wrap.Loc{}}
	for i, fn := range w.Functions() {
		plan.Loc[fn.Name] = wrap.Loc{Sandbox: 0, Proc: i + 1}
	}
	plan.Sandboxes = []wrap.SandboxCfg{{CPUs: 2, Pool: true, Workers: 3}}
	res, err := Run(w, plan, idealEnv())
	if err != nil {
		t.Fatal(err)
	}
	// 6 validators x 2ms on 2 CPUs: at least 6ms of serialized pairs for
	// stage 1 alone, plus stage 0.
	if res.E2E < 8*time.Millisecond {
		t.Fatalf("pool result %v too fast for 2 CPUs", res.E2E)
	}
	cold := idealEnv()
	cold.ColdStart = true
	cres, err := Run(w, plan, cold)
	if err != nil {
		t.Fatal(err)
	}
	if cres.E2E-res.E2E != model.Default().ColdStart {
		t.Fatalf("single pool sandbox should pay exactly one cold start, got +%v", cres.E2E-res.E2E)
	}
}

func TestASFWithColdStartStacksCosts(t *testing.T) {
	c := model.Default()
	w := twoStage(t, 3)
	env := idealEnv()
	env.Dispatch = DispatchASF
	warm, err := Run(w, oneToOne(w), env)
	if err != nil {
		t.Fatal(err)
	}
	env.ColdStart = true
	cold, err := Run(w, oneToOne(w), env)
	if err != nil {
		t.Fatal(err)
	}
	// Four sandboxes boot, but boots pipeline with dispatch; the E2E
	// penalty is at least one cold start and at most four.
	diff := cold.E2E - warm.E2E
	if diff < c.ColdStart || diff > 4*c.ColdStart {
		t.Fatalf("cold-start penalty %v outside [1,4] boots", diff)
	}
}

func TestSchedTotalSumsStages(t *testing.T) {
	w := twoStage(t, 4)
	env := idealEnv()
	env.Dispatch = DispatchGateway
	res, err := Run(w, oneToOne(w), env)
	if err != nil {
		t.Fatal(err)
	}
	var sum time.Duration
	for _, st := range res.Stages {
		sum += st.Sched
	}
	if res.SchedTotal() != sum {
		t.Fatalf("SchedTotal %v != sum %v", res.SchedTotal(), sum)
	}
	if sum == 0 {
		t.Fatal("gateway dispatch produced zero scheduling time")
	}
}

func TestRunManyParallelMatchesSequential(t *testing.T) {
	w := twoStage(t, 8)
	env := idealEnv()
	env.Fidelity = true
	parallel.SetWorkers(1)
	seq, err := RunMany(w, sharedSandbox(w), env, 40)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(8)
	defer parallel.SetWorkers(0)
	par, err := RunMany(w, sharedSandbox(w), env, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("request %d: sequential %v != parallel %v", i, seq[i], par[i])
		}
	}
}
