package proc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/model"
)

func cpuFn(name string, d time.Duration) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: d}},
		MemMB:    1,
	}
}

func singles(n int, d time.Duration) [][]*behavior.Spec {
	out := make([][]*behavior.Spec, n)
	for i := range out {
		out[i] = []*behavior.Spec{cpuFn("f", d)}
	}
	return out
}

func ideal() Options { return Options{Const: model.Default()} }

func TestSingleProcessSingleFunction(t *testing.T) {
	c := model.Default()
	res := Run(singles(1, 10*time.Millisecond), ideal())
	// Process 1: no block wait, startup + exec, no IPC.
	want := c.ProcStartup + 10*time.Millisecond
	if res.Total != want {
		t.Fatalf("Total = %v, want %v", res.Total, want)
	}
	if res.IPC != 0 {
		t.Fatalf("single process should have no IPC, got %v", res.IPC)
	}
}

func TestEquationFourBlockAndStartup(t *testing.T) {
	// Eq. 4: T_P^j = (j-1) x T_Block + T_Startup + T_exec. With one CPU
	// per process (true parallelism), process j finishes exactly there.
	c := model.Default()
	n := 5
	exec := 2 * time.Millisecond
	res := Run(singles(n, exec), ideal())
	for j, p := range res.Procs {
		want := time.Duration(j)*c.ProcBlockStep + c.ProcStartup + exec
		if p.Finish != want {
			t.Errorf("process %d finish = %v, want %v", j, p.Finish, want)
		}
	}
	wantTotal := time.Duration(n-1)*c.ProcBlockStep + c.ProcStartup + exec +
		time.Duration(n-1)*c.IPCCost
	if res.Total != wantTotal {
		t.Fatalf("Total = %v, want %v (Eq. 3+4)", res.Total, wantTotal)
	}
}

func TestBlockTimeGrowsLinearlyWithParallelism(t *testing.T) {
	// Observation 2: "when 50 parallel functions execute simultaneously,
	// the blocking time can reach up to 169 ms, similar to cold start".
	c := model.Default()
	res := Run(singles(50, time.Millisecond), ideal())
	lastFork := res.Procs[49].ForkAt
	if lastFork < 160*time.Millisecond || lastFork > 180*time.Millisecond {
		t.Fatalf("49th fork waited %v, want ~169ms", lastFork)
	}
	if res.Compute < lastFork+c.ProcStartup+time.Millisecond {
		t.Fatalf("compute %v cannot precede last process's completion", res.Compute)
	}
}

func TestStartupOverlapsSubsequentForks(t *testing.T) {
	// Process startup (7.5ms) runs off the orchestrator's critical path:
	// process 2's fork is issued at T_Block, not at T_Startup.
	res := Run(singles(3, time.Millisecond), ideal())
	c := model.Default()
	if res.Procs[1].ForkAt != c.ProcBlockStep {
		t.Fatalf("fork 2 issued at %v, want %v", res.Procs[1].ForkAt, c.ProcBlockStep)
	}
}

func TestThreadModeProcessHostsMultipleFunctions(t *testing.T) {
	c := model.Default()
	// One process, three 4ms CPU functions as threads: GIL serializes
	// execution; total ~= startup + 3 clones + 12ms.
	fns := []*behavior.Spec{cpuFn("a", 4*time.Millisecond), cpuFn("b", 4*time.Millisecond), cpuFn("c", 4*time.Millisecond)}
	res := Run([][]*behavior.Spec{fns}, ideal())
	minWant := c.ProcStartup + 12*time.Millisecond
	if res.Total < minWant {
		t.Fatalf("Total = %v, below GIL-serialized floor %v", res.Total, minWant)
	}
	if res.Total > minWant+5*time.Millisecond {
		t.Fatalf("Total = %v, too much overhead beyond %v", res.Total, minWant)
	}
	if res.IPC != 0 {
		t.Fatalf("threads share memory: IPC should be 0, got %v", res.IPC)
	}
}

func TestThreadsCheaperThanProcessesForShortFunctions(t *testing.T) {
	// Observation 2/3: for sub-millisecond functions, fork startup (7.5ms)
	// dwarfs execution, so one thread-mode process beats per-function
	// processes (Faastlane-T vs Faastlane at FINRA-5).
	short := 800 * time.Microsecond
	var fns []*behavior.Spec
	for i := 0; i < 5; i++ {
		fns = append(fns, cpuFn("v", short))
	}
	procMode := Run(singles(5, short), ideal())
	threadMode := Run([][]*behavior.Spec{fns}, ideal())
	if threadMode.Total >= procMode.Total {
		t.Fatalf("thread mode (%v) should beat process mode (%v) for short functions", threadMode.Total, procMode.Total)
	}
}

func TestProcessesBeatThreadsForLongCPUFunctions(t *testing.T) {
	// The flip side: 50ms CPU-bound functions want true parallelism.
	long := 50 * time.Millisecond
	var fns []*behavior.Spec
	for i := 0; i < 5; i++ {
		fns = append(fns, cpuFn("v", long))
	}
	procMode := Run(singles(5, long), ideal())
	threadMode := Run([][]*behavior.Spec{fns}, ideal())
	if procMode.Total >= threadMode.Total {
		t.Fatalf("process mode (%v) should beat thread mode (%v) for long CPU functions", procMode.Total, threadMode.Total)
	}
}

func TestMPKIsolationCosts(t *testing.T) {
	c := model.Default()
	fns := []*behavior.Spec{cpuFn("a", 4*time.Millisecond), cpuFn("b", 4*time.Millisecond)}
	native := Run([][]*behavior.Spec{fns}, ideal())
	opt := ideal()
	opt.Iso = MPK(c)
	mpk := Run([][]*behavior.Spec{fns}, opt)
	if mpk.Total <= native.Total {
		t.Fatalf("MPK (%v) must cost more than native threads (%v)", mpk.Total, native.Total)
	}
	// CPU work scaled by the Table 1 factor.
	wantCPU := time.Duration(float64(4*time.Millisecond) * c.MPKCPUFactor)
	if got := mpk.Functions[0].CPUTime; got != wantCPU {
		t.Fatalf("MPK CPU time %v, want %v", got, wantCPU)
	}
}

func TestSFICostlierThanMPK(t *testing.T) {
	c := model.Default()
	fns := []*behavior.Spec{cpuFn("a", 4*time.Millisecond), cpuFn("b", 4*time.Millisecond)}
	optM := ideal()
	optM.Iso = MPK(c)
	optS := ideal()
	optS.Iso = SFI(c)
	mpk := Run([][]*behavior.Spec{fns}, optM)
	sfi := Run([][]*behavior.Spec{fns}, optS)
	if sfi.Total <= mpk.Total {
		t.Fatalf("SFI (%v) must cost more than MPK (%v) per Table 1", sfi.Total, mpk.Total)
	}
	if sfi.IPC == 0 {
		t.Fatal("SFI cross-function interaction cost missing")
	}
	if mpk.IPC != 0 {
		t.Fatalf("MPK interaction should be free, got %v", mpk.IPC)
	}
}

func TestPoolSkipsForkCost(t *testing.T) {
	c := model.Default()
	opt := ideal()
	opt.Pool = true
	opt.Workers = 5
	res := Run(singles(5, time.Millisecond), opt)
	// Warm pool: dispatch is hundreds of microseconds, not 7.5ms forks.
	maxWant := 5*c.PoolDispatch + time.Millisecond + 5*c.IPCCost
	if res.Compute+res.IPC > maxWant+time.Millisecond {
		t.Fatalf("pool total %v, want under %v", res.Total, maxWant)
	}
	cold := Run(singles(5, time.Millisecond), ideal())
	if res.Total >= cold.Total {
		t.Fatalf("pool (%v) must start faster than forks (%v)", res.Total, cold.Total)
	}
}

func TestPoolCPUSharingSlowdown(t *testing.T) {
	// Figure 7: 4 parallel tasks on 3 CPUs lose only a little latency vs
	// 4 CPUs; on 1 CPU they serialize.
	mk := func(cpus int) time.Duration {
		opt := ideal()
		opt.Pool = true
		opt.Workers = 4
		opt.CPUs = cpus
		return Run(singles(4, 40*time.Millisecond), opt).Total
	}
	l4, l3, l1 := mk(4), mk(3), mk(1)
	if !(l4 <= l3 && l3 < l1) {
		t.Fatalf("latency ordering broken: 4cpu=%v 3cpu=%v 1cpu=%v", l4, l3, l1)
	}
	if l1 < 160*time.Millisecond {
		t.Fatalf("1 CPU must serialize 4x40ms: got %v", l1)
	}
	// The paper reports ~11.7% average inflation from dropping one CPU.
	if float64(l3)/float64(l4) > 1.55 {
		t.Fatalf("3-CPU inflation %.2fx too severe", float64(l3)/float64(l4))
	}
}

func TestFidelityAddsOverheadDeterministically(t *testing.T) {
	fns := singles(5, 2*time.Millisecond)
	opt := ideal()
	opt.Fidelity = true
	opt.Seed = 1
	a := Run(fns, opt)
	b := Run(fns, opt)
	if a.Total != b.Total {
		t.Fatal("fidelity run not deterministic for equal seeds")
	}
	opt.Seed = 2
	c := Run(fns, opt)
	if c.Total == a.Total {
		t.Fatal("different seeds gave identical totals; jitter inert")
	}
	ideal := Run(fns, Options{Const: model.Default()})
	diff := float64(a.Total-ideal.Total) / float64(ideal.Total)
	if diff < -0.3 || diff > 0.3 {
		t.Fatalf("fidelity shifted total by %.0f%%, want modest model gap", diff*100)
	}
}

func TestValidateRejections(t *testing.T) {
	if err := Validate(nil, ideal()); err == nil {
		t.Error("empty wrap accepted")
	}
	if err := Validate([][]*behavior.Spec{{}}, ideal()); err == nil {
		t.Error("empty process accepted")
	}
	multi := [][]*behavior.Spec{
		{cpuFn("a", time.Millisecond), cpuFn("b", time.Millisecond)},
		{cpuFn("c", time.Millisecond)},
	}
	opt := ideal()
	opt.CPUs = 1
	if err := Validate(multi, opt); err == nil {
		t.Error("hierarchical contention config accepted")
	}
}

func TestRunPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run did not panic on invalid wrap")
		}
	}()
	Run(nil, ideal())
}

// TestPropertyFunctionAccounting verifies per-function CPU/block totals and
// per-process ordering on random wraps.
func TestPropertyFunctionAccounting(t *testing.T) {
	f := func(seed int64, shape uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		nProc := int(shape%4) + 1
		procs := make([][]*behavior.Spec, nProc)
		total := 0
		for j := range procs {
			nf := int((shape>>uint(2*j))%3) + 1
			for i := 0; i < nf; i++ {
				procs[j] = append(procs[j], behavior.Random("f", rng, time.Millisecond, 8*time.Millisecond))
				total++
			}
		}
		res := Run(procs, ideal())
		if len(res.Functions) != total {
			return false
		}
		k := 0
		for j, fns := range procs {
			for _, sp := range fns {
				ft := res.Functions[k]
				k++
				if ft.Proc != j || ft.CPUTime != sp.TotalCPU() || ft.BlockTime != sp.TotalBlock() {
					return false
				}
				if ft.Finish > res.Compute {
					return false
				}
			}
		}
		return res.Total == res.Compute+res.IPC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordPropagatesSlices(t *testing.T) {
	opt := ideal()
	opt.Record = true
	res := Run(singles(2, time.Millisecond), opt)
	for _, ft := range res.Functions {
		if len(ft.Slices) == 0 {
			t.Fatalf("%s: no slices with Record set", ft.Name)
		}
	}
}

func TestIsolationConstructors(t *testing.T) {
	c := model.Default()
	if iso := NoIsolation(); iso.CPUFactor != 1 || iso.IOFactor != 1 || iso.Name != "none" {
		t.Errorf("NoIsolation = %+v", iso)
	}
	if iso := MPK(c); iso.ThreadStartupExtra != c.MPKStartup || iso.Name != "mpk" {
		t.Errorf("MPK = %+v", iso)
	}
	if iso := SFI(c); iso.Interaction != c.SFIInteraction || iso.Name != "sfi" {
		t.Errorf("SFI = %+v", iso)
	}
}
