// Package proc executes one wrap: a set of OS processes inside a single
// sandbox, each process hosting one or more functions as threads.
//
// It reproduces the paper's many-to-one execution semantics (Observation 2,
// Figure 5, Eq. 3-4):
//
//   - forks are issued sequentially by the orchestrator, so the j-th
//     process waits (j-1) x T_Block before its fork even starts;
//   - each fork then pays T_Startup of interpreter re-initialization,
//     overlapping with subsequent forks;
//   - threads inside one process contend on that process's GIL, simulated
//     by package gil; separate processes run truly in parallel on their
//     pinned CPUs;
//   - results are gathered over pipes at T_IPC per extra process.
//
// The same entry point also covers pool-based wraps (warm workers, shared
// CPUs) and GIL-free runtimes (Java), because those are option settings of
// the underlying scheduler simulation.
package proc

import (
	"fmt"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/gil"
	"chiron/internal/model"
)

// Isolation describes the thread-level memory isolation mechanism applied
// inside a process (Section 4, Table 1). The zero value means unrestricted
// sharing (native threads).
type Isolation struct {
	// Name identifies the mechanism ("none", "mpk", "sfi").
	Name string
	// ThreadStartupExtra is added to every thread clone (pkey setup,
	// module instantiation).
	ThreadStartupExtra time.Duration
	// Interaction is the per-handoff cost of moving data between
	// functions that no longer share memory freely.
	Interaction time.Duration
	// CPUFactor and IOFactor scale function segment durations (1 = none).
	CPUFactor float64
	IOFactor  float64
}

// NoIsolation returns the native-thread (unrestricted sharing) mechanism.
func NoIsolation() Isolation { return Isolation{Name: "none", CPUFactor: 1, IOFactor: 1} }

// MPK returns the Intel Memory Protection Keys mechanism calibrated from
// Table 1.
func MPK(c model.Constants) Isolation {
	return Isolation{
		Name:               "mpk",
		ThreadStartupExtra: c.MPKStartup,
		Interaction:        c.MPKInteraction,
		CPUFactor:          c.MPKCPUFactor,
		IOFactor:           c.MPKIOFactor,
	}
}

// SFI returns the WebAssembly software-fault-isolation mechanism calibrated
// from Table 1.
func SFI(c model.Constants) Isolation {
	return Isolation{
		Name:               "sfi",
		ThreadStartupExtra: c.SFIStartup,
		Interaction:        c.SFIInteraction,
		CPUFactor:          c.SFICPUFactor,
		IOFactor:           c.SFIIOFactor,
	}
}

// Options parameterize one wrap execution.
type Options struct {
	// Const supplies the calibrated substrate timings.
	Const model.Constants
	// CPUs is the sandbox's cpuset size. Zero means "one per process"
	// (the Faastlane/Chiron thread-mode allocation).
	CPUs int
	// Iso is the thread isolation mechanism (zero value = native).
	Iso Isolation
	// MainResident marks processes[0] as the sandbox's long-lived main
	// process (the of-watchdog worker / wrap orchestrator): its functions
	// pay thread startup, never fork block/startup. Fork ranks then start
	// at processes[1].
	MainResident bool
	// Pool switches to warm-pool execution: no fork cost, dispatcher
	// admission, Workers warm processes sharing CPUs.
	Pool bool
	// Workers is the pool size when Pool is set (0 = one per function).
	Workers int
	// LongestFirst admits pool tasks longest-solo-latency first
	// (Chiron-P's skew mitigation).
	LongestFirst bool
	// Fidelity enables the engine-grade model: seeded startup jitter,
	// per-syscall overhead, orchestrator hand-off lag. The white-box
	// Predictor leaves it off; the gap is Figure 12's subject.
	Fidelity bool
	// Seed drives deterministic jitter when Fidelity is set.
	Seed int64
	// Record enables per-function timeline slices (Figure 5).
	Record bool
}

func (o *Options) iso() Isolation {
	if o.Iso.Name == "" {
		return NoIsolation()
	}
	return o.Iso
}

// FunctionTiming is one function's wrap-relative schedule.
type FunctionTiming struct {
	Name string
	// Proc is the index of the hosting process within the wrap.
	Proc int
	// SpawnedAt is when the function's thread/task existed and could
	// contend for CPU (fork+startup done, or thread clone done).
	SpawnedAt time.Duration
	// FirstRun is when it first got on CPU.
	FirstRun time.Duration
	// Finish is when its last segment completed.
	Finish time.Duration
	// CPUTime and BlockTime are consumed totals.
	CPUTime, BlockTime time.Duration
	// Slices is the recorded timeline (Options.Record).
	Slices []gil.Slice
}

// ProcTiming is one process's wrap-relative schedule.
type ProcTiming struct {
	// ForkAt is when the orchestrator issued this process's fork.
	ForkAt time.Duration
	// ExecStart is when the process began running user code.
	ExecStart time.Duration
	// Finish is when the last function in the process completed.
	Finish time.Duration
}

// Result is the outcome of one wrap execution.
type Result struct {
	// Compute is when the slowest process finished.
	Compute time.Duration
	// IPC is the result-gathering cost: T_IPC x (processes-1), plus any
	// isolation interaction costs.
	IPC time.Duration
	// Total = Compute + IPC: the wrap's contribution to Eq. 3.
	Total time.Duration
	// Procs has one entry per process, in input order.
	Procs []ProcTiming
	// Functions has one entry per function, process-major order.
	Functions []FunctionTiming
}

// Run executes a wrap: processes[j] lists the functions hosted as threads
// in process j. It panics on configurations PGP never emits (see Validate).
func Run(processes [][]*behavior.Spec, opt Options) *Result {
	if err := Validate(processes, opt); err != nil {
		panic("proc: " + err.Error())
	}
	if opt.Pool {
		return runPool(processes, opt)
	}
	if allSingle(processes) && !opt.MainResident {
		return runFlat(processes, opt)
	}
	return runPerProcess(processes, opt)
}

// Validate reports whether the wrap shape is executable: non-empty
// processes, and no CPU oversubscription for multi-thread processes (the
// hierarchical GIL-over-shared-CPU case does not occur in the paper's
// deployments and is rejected rather than approximated).
func Validate(processes [][]*behavior.Spec, opt Options) error {
	if len(processes) == 0 {
		return fmt.Errorf("wrap has no processes")
	}
	for j, fns := range processes {
		if len(fns) == 0 {
			return fmt.Errorf("process %d hosts no functions", j)
		}
	}
	if !opt.Pool && !allSingle(processes) && opt.CPUs != 0 && opt.CPUs < len(processes) {
		return fmt.Errorf("%d multi-thread processes over %d CPUs is not schedulable without hierarchical contention", len(processes), opt.CPUs)
	}
	return nil
}

func allSingle(processes [][]*behavior.Spec) bool {
	for _, fns := range processes {
		if len(fns) != 1 {
			return false
		}
	}
	return true
}

func (o *Options) fidelity() (syscall time.Duration, jitter float64, lag time.Duration) {
	if !o.Fidelity {
		return 0, 0, 0
	}
	return o.Const.SyscallOverhead, o.Const.StartupJitterPct, o.Const.MainThreadLag
}

// runFlat handles the common all-single-thread case (SAND, Faastlane
// parallel stages, Chiron process wraps) with one scheduler simulation:
// forks serialized at ProcBlockStep, per-process ProcStartup off the
// critical path, true parallelism over the cpuset.
func runFlat(processes [][]*behavior.Spec, opt Options) *Result {
	fns := make([]*behavior.Spec, len(processes))
	for j, p := range processes {
		fns[j] = p[0]
	}
	cpus := opt.CPUs
	if cpus == 0 {
		cpus = len(processes)
	}
	syscall, jitter, lag := opt.fidelity()
	g := gil.Simulate(fns, gil.Options{
		Procs:        cpus,
		Quantum:      opt.Const.GILInterval,
		Spawn:        gil.Dispatcher,
		SpawnCost:    opt.Const.ProcBlockStep,
		ExtraStartup: opt.Const.ProcStartup,
		// Single-function processes need no thread isolation mechanism;
		// the process boundary already isolates them.
		CPUFactor:       1,
		IOFactor:        1,
		SyscallOverhead: syscall,
		JitterPct:       jitter,
		MainLag:         lag,
		Seed:            opt.Seed,
		Record:          opt.Record,
	})

	res := &Result{
		Compute: g.Total,
		Procs:   make([]ProcTiming, len(processes)),
	}
	for j, th := range g.Threads {
		res.Procs[j] = ProcTiming{
			ForkAt:    lag + time.Duration(j)*opt.Const.ProcBlockStep,
			ExecStart: th.SpawnedAt,
			Finish:    th.Finish,
		}
		res.Functions = append(res.Functions, FunctionTiming{
			Name:      th.Name,
			Proc:      j,
			SpawnedAt: th.SpawnedAt,
			FirstRun:  th.FirstRun,
			Finish:    th.Finish,
			CPUTime:   th.CPUTime,
			BlockTime: th.BlockTime,
			Slices:    th.Slices,
		})
	}
	res.IPC = ipcCost(len(processes), opt)
	res.Total = res.Compute + res.IPC
	return res
}

// runPerProcess handles wraps whose processes host multiple threads, with
// a dedicated CPU per process: each process is an independent GIL
// simulation offset by its fork admission time.
func runPerProcess(processes [][]*behavior.Spec, opt Options) *Result {
	syscall, jitter, lag := opt.fidelity()
	iso := opt.iso()
	res := &Result{Procs: make([]ProcTiming, len(processes))}
	var interactions int
	forked := 0
	for j, fns := range processes {
		resident := opt.MainResident && j == 0
		var forkAt, execStart time.Duration
		if resident {
			forkAt, execStart = lag, lag
		} else {
			forkAt = lag + time.Duration(forked)*opt.Const.ProcBlockStep
			execStart = forkAt + opt.Const.ProcStartup
			forked++
		}
		spawnCost := threadSpawnCost(opt.Const, fns) + iso.ThreadStartupExtra
		if len(fns) == 1 && !resident {
			// The function runs on the process main thread: no clone.
			spawnCost = 0
		}
		// GIL-free runtimes (Java, Figure 18) run their threads truly in
		// parallel across the sandbox's cpuset.
		innerProcs := 1
		if len(fns) > 0 && !fns[0].Runtime.PseudoParallel() {
			innerProcs = len(fns)
			if len(processes) == 1 && opt.CPUs > 0 && opt.CPUs < innerProcs {
				innerProcs = opt.CPUs
			}
		}
		g := gil.Simulate(fns, gil.Options{
			Procs:           innerProcs,
			Quantum:         opt.Const.GILInterval,
			Spawn:           gil.MainThread,
			SpawnBatch:      opt.Const.ThreadSpawnBatch,
			SpawnCost:       spawnCost,
			CPUFactor:       iso.CPUFactor,
			IOFactor:        iso.IOFactor,
			SyscallOverhead: syscall,
			JitterPct:       jitter,
			Seed:            opt.Seed + int64(j)*7919,
			Record:          opt.Record,
		})
		finish := execStart + g.Total
		res.Procs[j] = ProcTiming{ForkAt: forkAt, ExecStart: execStart, Finish: finish}
		if finish > res.Compute {
			res.Compute = finish
		}
		for _, th := range g.Threads {
			ft := FunctionTiming{
				Name:      th.Name,
				Proc:      j,
				SpawnedAt: execStart + th.SpawnedAt,
				FirstRun:  execStart + th.FirstRun,
				Finish:    execStart + th.Finish,
				CPUTime:   th.CPUTime,
				BlockTime: th.BlockTime,
			}
			if opt.Record {
				ft.Slices = make([]gil.Slice, len(th.Slices))
				for i, sl := range th.Slices {
					ft.Slices[i] = gil.Slice{From: execStart + sl.From, To: execStart + sl.To, Kind: sl.Kind}
				}
			}
			res.Functions = append(res.Functions, ft)
		}
		if len(fns) > 1 {
			interactions += len(fns) - 1
		}
	}
	// Pipe IPC follows Eq. 3: T_IPC x (|P|-1) over the wrap's function
	// processes (the resident main counts as one of them; its threads
	// share memory internally).
	res.IPC = ipcCost(len(processes), opt) + time.Duration(interactions)*iso.Interaction
	res.Total = res.Compute + res.IPC
	return res
}

// runPool handles warm-pool wraps: every function is a task dispatched to
// Workers long-lived processes sharing CPUs CPUs (Section 4).
func runPool(processes [][]*behavior.Spec, opt Options) *Result {
	var fns []*behavior.Spec
	for _, p := range processes {
		fns = append(fns, p...)
	}
	workers := opt.Workers
	if workers == 0 {
		workers = len(fns)
	}
	cpus := opt.CPUs
	if cpus == 0 {
		cpus = workers
	}
	syscall, jitter, lag := opt.fidelity()
	g := gil.Simulate(fns, gil.Options{
		Procs:           cpus,
		Quantum:         opt.Const.GILInterval,
		Spawn:           gil.Dispatcher,
		SpawnCost:       opt.Const.PoolDispatch,
		Workers:         workers,
		LongestFirst:    opt.LongestFirst,
		SyscallOverhead: syscall,
		JitterPct:       jitter,
		MainLag:         lag,
		Seed:            opt.Seed,
		Record:          opt.Record,
	})
	res := &Result{Compute: g.Total}
	for i, th := range g.Threads {
		res.Functions = append(res.Functions, FunctionTiming{
			Name:      th.Name,
			Proc:      i % workers,
			SpawnedAt: th.SpawnedAt,
			FirstRun:  th.FirstRun,
			Finish:    th.Finish,
			CPUTime:   th.CPUTime,
			BlockTime: th.BlockTime,
			Slices:    th.Slices,
		})
	}
	// Pool workers exchange results with the parent over pipes too.
	res.IPC = ipcCost(min(workers, len(fns)), opt)
	res.Total = res.Compute + res.IPC
	return res
}

// threadSpawnCost returns the per-thread clone cost for the group's
// runtime: CPython threads are near-free; Node.js worker threads pay tens
// of milliseconds (Section 2.1).
func threadSpawnCost(c model.Constants, fns []*behavior.Spec) time.Duration {
	if len(fns) > 0 && fns[0].Runtime == behavior.NodeJS {
		return c.NodeWorkerStartup
	}
	return c.ThreadStartup
}

func ipcCost(procs int, opt Options) time.Duration {
	if procs <= 1 {
		return 0
	}
	return time.Duration(procs-1) * opt.Const.IPCCost
}
