// Package trace is the strace substrate: it produces and parses the
// syscall logs the paper's Profiler consumes (Section 3.2, Figure 10).
//
// Record replays a function's behaviour spec under ptrace-style
// observation: every blocking segment surfaces as a syscall event with a
// start timestamp and duration, and the act of tracing inflates durations
// (the overhead the Profiler later rescales away). FormatLog/ParseLog
// round-trip the textual strace form, so the Profiler genuinely parses
// logs rather than peeking at the spec.
package trace

import (
	"bufio"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"chiron/internal/behavior"
)

// Event is one recorded syscall.
type Event struct {
	// At is the syscall's start timestamp relative to function start, as
	// observed under tracing.
	At time.Duration
	// Syscall is the syscall name (select, read, write, sendto, ...).
	Syscall string
	// Path is the file argument for file syscalls ("" otherwise).
	Path string
	// Dur is the syscall's duration as observed under tracing.
	Dur time.Duration
}

// Kind maps the syscall back to a behaviour segment kind. Process
// management (clone/fork/vfork — the interpreter forking workers) and
// lock waits (futex — GIL token passing observed from outside) are
// off-CPU from the tracer's viewpoint, so they classify as Sleep; they
// are listed explicitly because the profiler's logs contain them and
// relying on the default would misread any future re-mapping.
func (e Event) Kind() behavior.SegmentKind {
	switch e.Syscall {
	case "select", "poll", "epoll_wait", "nanosleep":
		return behavior.Sleep
	case "clone", "fork", "vfork", "futex":
		return behavior.Sleep
	case "read", "write", "openat", "fsync":
		return behavior.DiskIO
	case "sendto", "recvfrom", "connect":
		return behavior.NetIO
	default:
		return behavior.Sleep
	}
}

// Overhead models how much tracing slows the subject down.
type Overhead struct {
	// CPUFactor inflates CPU spans (ptrace stops on syscall entry/exit
	// perturb the pipeline; small).
	CPUFactor float64
	// BlockFactor inflates recorded syscall durations (each traced
	// syscall takes two extra context switches; larger).
	BlockFactor float64
	// JitterPct adds +/- seeded noise per span.
	JitterPct float64
}

// DefaultOverhead is a realistic strace-like perturbation.
func DefaultOverhead() Overhead {
	return Overhead{CPUFactor: 1.03, BlockFactor: 1.22, JitterPct: 0.02}
}

// Recording is the result of one traced solo run.
type Recording struct {
	// Events are the observed syscalls in time order.
	Events []Event
	// Total is the traced run's wall time (inflated vs the untraced run).
	Total time.Duration
}

// Record replays spec solo under tracing overhead ov, deterministically
// for a given seed.
func Record(spec *behavior.Spec, ov Overhead, seed int64) *Recording {
	rng := rand.New(rand.NewSource(seed))
	jit := func(d time.Duration, f float64) time.Duration {
		x := float64(d) * f
		if ov.JitterPct > 0 {
			x *= 1 + ov.JitterPct*(rng.Float64()*2-1)
		}
		out := time.Duration(x)
		if out <= 0 {
			out = time.Nanosecond
		}
		return out
	}
	rec := &Recording{}
	var t time.Duration
	diskToggle := 0
	for _, seg := range spec.Segments {
		if !seg.Kind.Blocking() {
			t += jit(seg.Dur, ov.CPUFactor)
			continue
		}
		dur := jit(seg.Dur, ov.BlockFactor)
		ev := Event{At: t, Dur: dur}
		switch seg.Kind {
		case behavior.Sleep:
			ev.Syscall = "select"
		case behavior.DiskIO:
			if diskToggle%2 == 0 {
				ev.Syscall = "write"
			} else {
				ev.Syscall = "read"
			}
			diskToggle++
			if len(spec.Files) > 0 {
				ev.Path = spec.Files[0]
			} else {
				ev.Path = "/home/app/data"
			}
		case behavior.NetIO:
			ev.Syscall = "sendto"
		}
		rec.Events = append(rec.Events, ev)
		t += dur
	}
	rec.Total = t
	return rec
}

// FormatLog renders the recording in the textual form the Profiler parses,
// one syscall per line:
//
//	48.000000 select() = 0 <1001.000000>
//	1070.000000 write(</home/app/test.txt>) = 1 <0.042000>
//
// Timestamps and durations are in milliseconds, as in Figure 10.
func FormatLog(rec *Recording) string {
	var b strings.Builder
	for _, ev := range rec.Events {
		arg := ""
		if ev.Path != "" {
			arg = "<" + ev.Path + ">"
		}
		fmt.Fprintf(&b, "%.6f %s(%s) = 0 <%.6f>\n",
			float64(ev.At)/float64(time.Millisecond),
			ev.Syscall, arg,
			float64(ev.Dur)/float64(time.Millisecond))
	}
	return b.String()
}

// ParseLog parses FormatLog output back into events.
func ParseLog(log string) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(strings.NewReader(log))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		ev, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (Event, error) {
	var ev Event
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return ev, fmt.Errorf("no timestamp separator in %q", line)
	}
	ms, err := strconv.ParseFloat(line[:sp], 64)
	if err != nil {
		return ev, fmt.Errorf("bad timestamp: %w", err)
	}
	ev.At = time.Duration(ms * float64(time.Millisecond))

	rest := line[sp+1:]
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return ev, fmt.Errorf("no syscall in %q", line)
	}
	ev.Syscall = rest[:open]
	closeIdx := strings.IndexByte(rest, ')')
	if closeIdx < open {
		return ev, fmt.Errorf("unterminated argument list in %q", line)
	}
	arg := rest[open+1 : closeIdx]
	if strings.HasPrefix(arg, "<") && strings.HasSuffix(arg, ">") {
		ev.Path = arg[1 : len(arg)-1]
	}

	lt := strings.LastIndexByte(rest, '<')
	gt := strings.LastIndexByte(rest, '>')
	if lt < 0 || gt < lt {
		return ev, fmt.Errorf("no duration in %q", line)
	}
	durMS, err := strconv.ParseFloat(rest[lt+1:gt], 64)
	if err != nil {
		return ev, fmt.Errorf("bad duration: %w", err)
	}
	ev.Dur = time.Duration(durMS * float64(time.Millisecond))
	return ev, nil
}
