package trace

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"chiron/internal/behavior"
)

func mixedSpec() *behavior.Spec {
	return &behavior.Spec{
		Name: "handle", Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: 48 * time.Millisecond},
			{Kind: behavior.Sleep, Dur: 1001 * time.Millisecond},
			{Kind: behavior.CPU, Dur: 21 * time.Millisecond},
			{Kind: behavior.DiskIO, Dur: 42 * time.Microsecond},
			{Kind: behavior.CPU, Dur: 11 * time.Millisecond},
			{Kind: behavior.DiskIO, Dur: 25 * time.Microsecond},
		},
		MemMB: 1,
		Files: []string{"/home/app/test.txt"},
	}
}

func TestRecordProducesOneEventPerBlockSegment(t *testing.T) {
	rec := Record(mixedSpec(), Overhead{CPUFactor: 1, BlockFactor: 1}, 0)
	if len(rec.Events) != 3 {
		t.Fatalf("%d events, want 3", len(rec.Events))
	}
	// Figure 10's shape: select at ~48ms for ~1001ms, then write, read.
	if rec.Events[0].Syscall != "select" || rec.Events[0].At != 48*time.Millisecond {
		t.Errorf("event 0 = %+v", rec.Events[0])
	}
	if rec.Events[1].Syscall != "write" || rec.Events[1].Path != "/home/app/test.txt" {
		t.Errorf("event 1 = %+v", rec.Events[1])
	}
	if rec.Events[2].Syscall != "read" {
		t.Errorf("event 2 = %+v", rec.Events[2])
	}
	if rec.Total != mixedSpec().SoloLatency() {
		t.Errorf("unit-overhead total %v, want solo latency %v", rec.Total, mixedSpec().SoloLatency())
	}
}

func TestRecordOverheadInflates(t *testing.T) {
	plain := Record(mixedSpec(), Overhead{CPUFactor: 1, BlockFactor: 1}, 0)
	traced := Record(mixedSpec(), DefaultOverhead(), 0)
	if traced.Total <= plain.Total {
		t.Fatalf("tracing must inflate the run: %v <= %v", traced.Total, plain.Total)
	}
	if traced.Events[0].Dur <= plain.Events[0].Dur {
		t.Fatal("tracing must inflate syscall durations")
	}
}

func TestRecordDeterministic(t *testing.T) {
	a := Record(mixedSpec(), DefaultOverhead(), 7)
	b := Record(mixedSpec(), DefaultOverhead(), 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different recordings")
	}
	c := Record(mixedSpec(), DefaultOverhead(), 8)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical recordings")
	}
}

func TestLogRoundTrip(t *testing.T) {
	rec := Record(mixedSpec(), DefaultOverhead(), 3)
	log := FormatLog(rec)
	events, err := ParseLog(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(rec.Events) {
		t.Fatalf("parsed %d events, want %d", len(events), len(rec.Events))
	}
	for i, ev := range events {
		orig := rec.Events[i]
		if ev.Syscall != orig.Syscall || ev.Path != orig.Path {
			t.Errorf("event %d: %+v != %+v", i, ev, orig)
		}
		// Millisecond text precision: allow sub-microsecond rounding.
		dAt := ev.At - orig.At
		if dAt < 0 {
			dAt = -dAt
		}
		if dAt > time.Microsecond {
			t.Errorf("event %d timestamp drift %v", i, dAt)
		}
	}
}

func TestParseLogErrors(t *testing.T) {
	bad := []string{
		"nonsense",
		"12.5 noparens = 0 <1.0>",
		"abc select() = 0 <1.0>",
		"12.5 select() = 0",
		"12.5 select() = 0 <xyz>",
	}
	for _, line := range bad {
		if _, err := ParseLog(line + "\n"); err == nil {
			t.Errorf("ParseLog accepted %q", line)
		}
	}
}

func TestParseLogSkipsBlankLines(t *testing.T) {
	events, err := ParseLog("\n\n48.0 select() = 0 <10.0>\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("%d events, want 1", len(events))
	}
}

func TestEventKindMapping(t *testing.T) {
	cases := map[string]behavior.SegmentKind{
		"select": behavior.Sleep, "poll": behavior.Sleep,
		"read": behavior.DiskIO, "write": behavior.DiskIO,
		"sendto": behavior.NetIO, "recvfrom": behavior.NetIO,
		"clone": behavior.Sleep, "fork": behavior.Sleep,
		"vfork": behavior.Sleep, "futex": behavior.Sleep,
		"mystery": behavior.Sleep,
	}
	for sys, want := range cases {
		if got := (Event{Syscall: sys}).Kind(); got != want {
			t.Errorf("Kind(%s) = %v, want %v", sys, got, want)
		}
	}
}

// TestLogRoundTripProcessEvents round-trips a log containing the
// process-management and lock syscalls (clone/fork/futex) that back the
// observability layer's fork and GIL instants: the textual form must
// preserve them exactly, including the path-less argument list.
func TestLogRoundTripProcessEvents(t *testing.T) {
	rec := &Recording{Events: []Event{
		{At: 5 * time.Millisecond, Syscall: "clone", Dur: 700 * time.Microsecond},
		{At: 6 * time.Millisecond, Syscall: "fork", Dur: 900 * time.Microsecond},
		{At: 8 * time.Millisecond, Syscall: "futex", Dur: 4900 * time.Microsecond},
		{At: 13 * time.Millisecond, Syscall: "write", Path: "/tmp/x", Dur: 50 * time.Microsecond},
	}}
	events, err := ParseLog(FormatLog(rec))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(rec.Events) {
		t.Fatalf("parsed %d events, want %d", len(events), len(rec.Events))
	}
	for i, ev := range events {
		orig := rec.Events[i]
		if ev.Syscall != orig.Syscall || ev.Path != orig.Path {
			t.Errorf("event %d: %+v != %+v", i, ev, orig)
		}
		if ev.At != orig.At || ev.Dur != orig.Dur {
			// Millisecond-text precision holds these exactly.
			t.Errorf("event %d timing: %+v != %+v", i, ev, orig)
		}
		if ev.Kind() != behavior.Sleep && ev.Syscall != "write" {
			t.Errorf("event %d: %s should classify as Sleep", i, ev.Syscall)
		}
	}
}

func TestFormatLogShape(t *testing.T) {
	rec := &Recording{Events: []Event{
		{At: 48 * time.Millisecond, Syscall: "select", Dur: 1001 * time.Millisecond},
		{At: 1070 * time.Millisecond, Syscall: "write", Path: "/home/app/test.txt", Dur: 42 * time.Microsecond},
	}}
	log := FormatLog(rec)
	lines := strings.Split(strings.TrimSpace(log), "\n")
	if len(lines) != 2 {
		t.Fatalf("log has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "48.000000 select()") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], "write(</home/app/test.txt>)") {
		t.Errorf("line 1 = %q", lines[1])
	}
}

func TestCPUOnlySpecYieldsNoEvents(t *testing.T) {
	spec := &behavior.Spec{
		Name: "fib", Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: 5 * time.Millisecond}},
		MemMB:    1,
	}
	rec := Record(spec, DefaultOverhead(), 0)
	if len(rec.Events) != 0 {
		t.Fatalf("CPU-only function produced %d syscall events", len(rec.Events))
	}
	if rec.Total <= 0 {
		t.Fatal("total must still be positive")
	}
}
