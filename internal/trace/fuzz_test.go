package trace

import (
	"testing"
	"time"

	"chiron/internal/behavior"
)

// FuzzParseLog hardens the strace-log parser against arbitrary input: it
// must never panic, and on inputs it accepts, re-formatting and re-parsing
// must be stable (a fixed point after one round trip).
func FuzzParseLog(f *testing.F) {
	spec := &behavior.Spec{
		Name: "seed", Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: 3 * time.Millisecond},
			{Kind: behavior.Sleep, Dur: 7 * time.Millisecond},
			{Kind: behavior.DiskIO, Dur: time.Millisecond, Bytes: 64},
		},
		MemMB: 1, Files: []string{"/tmp/x"},
	}
	f.Add(FormatLog(Record(spec, DefaultOverhead(), 1)))
	f.Add("48.000000 select() = 0 <1001.000000>\n")
	f.Add("1070.000000 write(</home/app/test.txt>) = 1 <0.042000>\n")
	f.Add("")
	f.Add("garbage\nmore garbage\n")
	f.Add("1.0 read() = 0 <->\n")
	f.Add("-5.5 sendto() = 0 <2.0>\n")

	f.Fuzz(func(t *testing.T, log string) {
		events, err := ParseLog(log)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Round trip: format accepted events and parse again.
		out := FormatLog(&Recording{Events: events})
		again, err := ParseLog(out)
		if err != nil {
			t.Fatalf("formatted output rejected: %v\n%q", err, out)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if again[i].Syscall != events[i].Syscall || again[i].Path != events[i].Path {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, events[i], again[i])
			}
		}
	})
}
