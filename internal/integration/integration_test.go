// Package integration holds cross-package properties: the contracts that
// make the whole reproduction trustworthy, checked on randomized
// workflows via testing/quick.
package integration

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/deploy"
	"chiron/internal/engine"
	"chiron/internal/model"
	"chiron/internal/pgp"
	"chiron/internal/platform"
	"chiron/internal/profiler"
)

// randomWorkflow builds a random but valid workflow: 1-4 stages, 1-6
// functions each, mixed behaviours.
func randomWorkflow(rng *rand.Rand) *dag.Workflow {
	nStages := 1 + rng.Intn(4)
	w := &dag.Workflow{Name: "rand-wf"}
	id := 0
	for s := 0; s < nStages; s++ {
		nFns := 1 + rng.Intn(6)
		var fns []*behavior.Spec
		for f := 0; f < nFns; f++ {
			spec := behavior.Random(nameOf(id), rng, time.Millisecond, 25*time.Millisecond)
			id++
			fns = append(fns, spec)
		}
		w.Stages = append(w.Stages, dag.Stage{Functions: fns})
	}
	return w
}

func nameOf(i int) string {
	return "fn-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// TestPropertyPredictorTracksEngine is the repository's keystone property:
// for random workflows, the white-box Predictor's estimate of the
// PGP-chosen plan stays within a modest band of the engine's ground truth
// (Figure 12's premise).
func TestPropertyPredictorTracksEngine(t *testing.T) {
	c := model.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWorkflow(rng)
		if err := w.Validate(); err != nil {
			return true // skip degenerate draws
		}
		set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
		if err != nil {
			t.Logf("seed %d: profile: %v", seed, err)
			return false
		}
		res, err := pgp.Plan(w, set, pgp.Options{Const: c, SLO: 0})
		if err != nil {
			t.Logf("seed %d: pgp: %v", seed, err)
			return false
		}
		env := platform.Chiron(c).Env()
		env.Seed = seed
		lats, err := engine.RunMany(w, res.Plan, env, 3)
		if err != nil {
			t.Logf("seed %d: engine: %v", seed, err)
			return false
		}
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		truth := sum / time.Duration(len(lats))
		// res.Predicted carries the 1.1x safety margin; strip it.
		pred := time.Duration(float64(res.Predicted) / 1.1)
		gap := float64(pred - truth)
		if gap < 0 {
			gap = -gap
		}
		// 35% relative band with a 2ms absolute floor: on sub-5ms
		// micro-workflows the engine's fixed fidelity overheads
		// (hand-off lag, syscall entry costs) dominate any relative
		// measure.
		limit := 0.35 * float64(truth)
		if floor := float64(2 * time.Millisecond); limit < floor {
			limit = floor
		}
		if gap > limit {
			t.Logf("seed %d: predictor %v vs engine %v", seed, pred, truth)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEverySystemHandlesRandomWorkflows: all eleven platforms
// plan and execute arbitrary (single-runtime, conflict-free) workflows.
func TestPropertyEverySystemHandlesRandomWorkflows(t *testing.T) {
	c := model.Default()
	systems := append(platform.All(c), platform.FaastlaneT(c), platform.FaastlanePlus(c))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWorkflow(rng)
		set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
		if err != nil {
			return false
		}
		for _, sys := range systems {
			plan, err := sys.Plan(w, set, 500*time.Millisecond)
			if err != nil {
				t.Logf("seed %d: %s plan: %v", seed, sys.Name, err)
				return false
			}
			if err := plan.Validate(w); err != nil {
				t.Logf("seed %d: %s invalid plan: %v", seed, sys.Name, err)
				return false
			}
			env := sys.Env()
			env.Seed = seed
			res, err := engine.Run(w, plan, env)
			if err != nil {
				t.Logf("seed %d: %s run: %v", seed, sys.Name, err)
				return false
			}
			if res.E2E <= 0 || len(res.Functions) != w.NumFunctions() {
				t.Logf("seed %d: %s result %v / %d fns", seed, sys.Name, res.E2E, len(res.Functions))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFullPipelineDeterminism: profile -> plan -> run is
// bit-stable for a fixed seed across repetitions.
func TestPropertyFullPipelineDeterminism(t *testing.T) {
	c := model.Default()
	f := func(seed int64) bool {
		once := func() (time.Duration, int) {
			rng := rand.New(rand.NewSource(seed))
			w := randomWorkflow(rng)
			set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
			if err != nil {
				return 0, 0
			}
			res, err := pgp.Plan(w, set, pgp.Options{Const: c, SLO: 300 * time.Millisecond})
			if err != nil {
				return 0, 0
			}
			env := platform.Chiron(c).Env()
			env.Seed = seed
			out, err := engine.Run(w, res.Plan, env)
			if err != nil {
				return 0, 0
			}
			return out.E2E, res.Plan.NumWraps()
		}
		a1, w1 := once()
		a2, w2 := once()
		return a1 == a2 && w1 == w2 && a1 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCodegenCoversEveryFunctionOnce: across all generated
// handlers, each function appears in exactly one execution site.
func TestPropertyCodegenCoversEveryFunctionOnce(t *testing.T) {
	c := model.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWorkflow(rng)
		set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
		if err != nil {
			return false
		}
		res, err := pgp.Plan(w, set, pgp.Options{Const: c, SLO: 200 * time.Millisecond})
		if err != nil {
			return false
		}
		orcs, err := deploy.Generate(w, res.Plan)
		if err != nil {
			t.Logf("seed %d: codegen: %v", seed, err)
			return false
		}
		all := ""
		for _, o := range orcs {
			all += o.Source
		}
		for _, fn := range w.Functions() {
			py := strings.ReplaceAll(fn.Name, "-", "_")
			execs := strings.Count(all, "functions."+py+",") + strings.Count(all, "functions."+py+"]") + strings.Count(all, "functions."+py+")")
			if execs == 0 {
				t.Logf("seed %d: %s never executed in generated code", seed, fn.Name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyResourceLedgerConsistency: the plan's ledger accounts for at
// least the runtime plus all function working sets, and sandbox count
// matches the plan.
func TestPropertyResourceLedgerConsistency(t *testing.T) {
	c := model.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWorkflow(rng)
		set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
		if err != nil {
			return false
		}
		res, err := pgp.Plan(w, set, pgp.Options{Const: c, SLO: 200 * time.Millisecond})
		if err != nil {
			return false
		}
		ledgers, err := res.Plan.Ledgers(w)
		if err != nil {
			t.Logf("seed %d: ledgers: %v", seed, err)
			return false
		}
		if len(ledgers) != res.Plan.NumWraps() {
			return false
		}
		var fnMem, total float64
		for _, fn := range w.Functions() {
			fnMem += fn.MemMB
		}
		for _, sb := range ledgers {
			total += sb.MemoryMB(c)
		}
		floor := fnMem + c.SandboxRuntimeMB // at least one runtime image
		return total >= floor
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
