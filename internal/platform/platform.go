// Package platform assembles the comparison systems of the evaluation
// (Section 6): for each system, how it deploys a workflow (the wrap.Plan)
// and what environment its requests execute in (the engine.Env).
//
// One-to-one systems (Table: ASF, OpenFaaS) give every function its own
// sandbox, pay platform scheduling per function and move intermediate data
// through a remote object store. Many-to-one systems (SAND, Faastlane and
// its -T/-+/-M/-P variants) share one sandbox per workflow. The m-to-n
// systems are Chiron and its -M/-P variants, planned by PGP.
package platform

import (
	"fmt"
	"time"

	"chiron/internal/dag"
	"chiron/internal/engine"
	"chiron/internal/model"
	"chiron/internal/netsim"
	"chiron/internal/pgp"
	"chiron/internal/profiler"
	"chiron/internal/wrap"
)

// System is one deployable platform.
type System struct {
	// Name is the system's evaluation label ("OpenFaaS", "Chiron-M", ...).
	Name string
	// Model classifies the deployment model ("one-to-one", "many-to-one",
	// "m-to-n") for reporting.
	Model string
	// BillsPerTransition marks commercial orchestrators that charge every
	// state transition (Figure 19: ASF).
	BillsPerTransition bool

	plan func(w *dag.Workflow, set profiler.Set, slo time.Duration) (*wrap.Plan, error)
	env  engine.Env
}

// Plan deploys workflow w (profiles and SLO are used only by PGP-based
// systems).
func (s *System) Plan(w *dag.Workflow, set profiler.Set, slo time.Duration) (*wrap.Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p, err := s.plan(w, set, slo)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	if err := p.Validate(w); err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	return p, nil
}

// Env returns the system's execution environment.
func (s *System) Env() engine.Env { return s.env }

// ---- one-to-one ----

func oneToOnePlan(w *dag.Workflow, _ profiler.Set, _ time.Duration) (*wrap.Plan, error) {
	p := &wrap.Plan{Workflow: w.Name, Loc: make(map[string]wrap.Loc)}
	for i, fn := range w.Functions() {
		p.Loc[fn.Name] = wrap.Loc{Sandbox: i, Proc: 0}
		p.Sandboxes = append(p.Sandboxes, wrap.SandboxCfg{CPUs: 1})
	}
	return p, nil
}

// ASF is AWS Step Functions: one-to-one, windowed 150 ms state scheduling,
// S3 for intermediate data.
func ASF(c model.Constants) *System {
	return &System{
		Name: "ASF", Model: "one-to-one", BillsPerTransition: true,
		plan: oneToOnePlan,
		env: engine.Env{
			Const:    c,
			Dispatch: engine.DispatchASF,
			Boundary: engine.BoundaryStore,
			Store:    netsim.AWSS3(c),
			Fidelity: true,
		},
	}
}

// OpenFaaS is the local one-to-one baseline: serialized gateway dispatch,
// MinIO for intermediate data.
func OpenFaaS(c model.Constants) *System {
	return &System{
		Name: "OpenFaaS", Model: "one-to-one",
		plan: oneToOnePlan,
		env: engine.Env{
			Const:    c,
			Dispatch: engine.DispatchGateway,
			Boundary: engine.BoundaryStore,
			Store:    netsim.LocalMinIO(c),
			Fidelity: true,
		},
	}
}

// ---- many-to-one ----

func sharedEnv(c model.Constants) engine.Env {
	return engine.Env{
		Const:    c,
		Dispatch: engine.DispatchNone,
		Boundary: engine.BoundaryShared,
		Fidelity: true,
	}
}

// sandPlan: one sandbox, every function a separate forked process.
func sandPlan(w *dag.Workflow, _ profiler.Set, _ time.Duration) (*wrap.Plan, error) {
	p := &wrap.Plan{Workflow: w.Name, Loc: make(map[string]wrap.Loc)}
	proc := 1
	for _, fn := range w.Functions() {
		p.Loc[fn.Name] = wrap.Loc{Sandbox: 0, Proc: proc}
		proc++
	}
	p.Sandboxes = []wrap.SandboxCfg{{CPUs: w.MaxParallelism()}}
	return p, nil
}

// SAND executes each function in a separate process inside one
// application sandbox.
func SAND(c model.Constants) *System {
	return &System{Name: "SAND", Model: "many-to-one", plan: sandPlan, env: sharedEnv(c)}
}

// faastlanePlan: one sandbox; sequential functions as threads of the main
// process, parallel functions as forked processes.
func faastlanePlan(iso wrap.IsolationKind) func(*dag.Workflow, profiler.Set, time.Duration) (*wrap.Plan, error) {
	return func(w *dag.Workflow, _ profiler.Set, _ time.Duration) (*wrap.Plan, error) {
		p := &wrap.Plan{Workflow: w.Name, Loc: make(map[string]wrap.Loc)}
		proc := 1
		for _, st := range w.Stages {
			if len(st.Functions) == 1 {
				p.Loc[st.Functions[0].Name] = wrap.Loc{Sandbox: 0, Proc: 0}
				continue
			}
			for _, fn := range st.Functions {
				p.Loc[fn.Name] = wrap.Loc{Sandbox: 0, Proc: proc}
				proc++
			}
		}
		p.Sandboxes = []wrap.SandboxCfg{{CPUs: w.MaxParallelism(), Iso: iso}}
		return p, nil
	}
}

// Faastlane uses thread execution for sequential functions and processes
// for concurrent ones, all in one sandbox.
func Faastlane(c model.Constants) *System {
	return &System{Name: "Faastlane", Model: "many-to-one", plan: faastlanePlan(wrap.IsoNone), env: sharedEnv(c)}
}

// FaastlaneM is Faastlane with Intel MPK protecting its thread execution.
func FaastlaneM(c model.Constants) *System {
	return &System{Name: "Faastlane-M", Model: "many-to-one", plan: faastlanePlan(wrap.IsoMPK), env: sharedEnv(c)}
}

// FaastlaneT runs every function — concurrent or sequential — as a thread
// of one process (the thread-only configuration of Section 2.2).
func FaastlaneT(c model.Constants) *System {
	return &System{
		Name: "Faastlane-T", Model: "many-to-one",
		plan: func(w *dag.Workflow, _ profiler.Set, _ time.Duration) (*wrap.Plan, error) {
			p := &wrap.Plan{Workflow: w.Name, Loc: make(map[string]wrap.Loc)}
			for _, fn := range w.Functions() {
				p.Loc[fn.Name] = wrap.Loc{Sandbox: 0, Proc: 0}
			}
			p.Sandboxes = []wrap.SandboxCfg{{CPUs: 1}}
			return p, nil
		},
		env: sharedEnv(c),
	}
}

// FaastlanePlus fixes five function processes per sandbox (the static
// m-to-n configuration of Section 2.2).
func FaastlanePlus(c model.Constants) *System {
	const perSandbox = 5
	return &System{
		Name: "Faastlane+", Model: "m-to-n",
		plan: func(w *dag.Workflow, _ profiler.Set, _ time.Duration) (*wrap.Plan, error) {
			p := &wrap.Plan{Workflow: w.Name, Loc: make(map[string]wrap.Loc)}
			cpus := map[int]int{0: 1}
			for _, st := range w.Stages {
				if len(st.Functions) == 1 {
					p.Loc[st.Functions[0].Name] = wrap.Loc{Sandbox: 0, Proc: 0}
					continue
				}
				for i, fn := range st.Functions {
					sb, pr := i/perSandbox, i%perSandbox+1
					p.Loc[fn.Name] = wrap.Loc{Sandbox: sb, Proc: pr}
					if pr > cpus[sb] {
						cpus[sb] = pr
					}
				}
			}
			maxSb := 0
			for sb := range cpus {
				if sb > maxSb {
					maxSb = sb
				}
			}
			for sb := 0; sb <= maxSb; sb++ {
				n := cpus[sb]
				if n == 0 {
					n = 1
				}
				p.Sandboxes = append(p.Sandboxes, wrap.SandboxCfg{CPUs: n})
			}
			return p, nil
		},
		env: sharedEnv(c),
	}
}

// FaastlaneP replaces per-request forks with a uniform warm process pool:
// one worker and one CPU per parallel function.
func FaastlaneP(c model.Constants) *System {
	return &System{
		Name: "Faastlane-P", Model: "many-to-one",
		plan: func(w *dag.Workflow, _ profiler.Set, _ time.Duration) (*wrap.Plan, error) {
			p := &wrap.Plan{Workflow: w.Name, Loc: make(map[string]wrap.Loc)}
			for i, fn := range w.Functions() {
				p.Loc[fn.Name] = wrap.Loc{Sandbox: 0, Proc: i + 1}
			}
			m := w.MaxParallelism()
			p.Sandboxes = []wrap.SandboxCfg{{CPUs: m, Pool: true, Workers: m}}
			return p, nil
		},
		env: sharedEnv(c),
	}
}

// ---- m-to-n (Chiron) ----

func chironPlan(style pgp.Style, iso wrap.IsolationKind, c model.Constants) func(*dag.Workflow, profiler.Set, time.Duration) (*wrap.Plan, error) {
	return func(w *dag.Workflow, set profiler.Set, slo time.Duration) (*wrap.Plan, error) {
		if len(set) == 0 {
			return nil, fmt.Errorf("chiron requires profiles")
		}
		st := style
		if st == pgp.Hybrid && !w.Functions()[0].Runtime.PseudoParallel() {
			// GIL-free runtimes get true parallelism from a warm pool
			// (Section 4 "True Parallelism"): no fork cost, CPU sharing.
			st = pgp.PoolStyle
		}
		res, err := pgp.Plan(w, set, pgp.Options{
			Const: c, SLO: slo, Iso: iso, Style: st,
		})
		if err != nil {
			return nil, err
		}
		return res.Plan, nil
	}
}

// Chiron is the paper's system: PGP-planned m-to-n deployment with
// combined processes and native threads.
func Chiron(c model.Constants) *System {
	return &System{Name: "Chiron", Model: "m-to-n", plan: chironPlan(pgp.Hybrid, wrap.IsoNone, c), env: sharedEnv(c)}
}

// ChironM is Chiron with Intel MPK isolating thread execution: MPK threads
// for sequential functions, processes for parallel ones (Section 4).
func ChironM(c model.Constants) *System {
	return &System{Name: "Chiron-M", Model: "m-to-n", plan: chironPlan(pgp.ProcOnly, wrap.IsoMPK, c), env: sharedEnv(c)}
}

// ChironP is Chiron over a warm process pool with PGP-minimized CPU
// sharing.
func ChironP(c model.Constants) *System {
	return &System{Name: "Chiron-P", Model: "m-to-n", plan: chironPlan(pgp.PoolStyle, wrap.IsoNone, c), env: sharedEnv(c)}
}

// All returns the nine systems of Figure 13, in the paper's order.
func All(c model.Constants) []*System {
	return []*System{
		ASF(c), OpenFaaS(c), SAND(c), Faastlane(c), Chiron(c),
		FaastlaneM(c), ChironM(c), FaastlaneP(c), ChironP(c),
	}
}

// ResourceComparison returns the eight systems of Figure 16 (ASF is
// excluded: its resources are not observable on the local cluster).
func ResourceComparison(c model.Constants) []*System {
	return []*System{
		OpenFaaS(c), SAND(c), Faastlane(c), Chiron(c),
		FaastlaneM(c), ChironM(c), FaastlaneP(c), ChironP(c),
	}
}

// Lookup returns the named system or nil.
func Lookup(c model.Constants, name string) *System {
	for _, s := range append(All(c), FaastlaneT(c), FaastlanePlus(c)) {
		if s.Name == name {
			return s
		}
	}
	return nil
}
