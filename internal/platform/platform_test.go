package platform

import (
	"testing"
	"time"

	"chiron/internal/dag"
	"chiron/internal/engine"
	"chiron/internal/model"
	"chiron/internal/profiler"
	"chiron/internal/workloads"
	"chiron/internal/wrap"
)

// fixture profiles a workload once and derives the paper's SLO convention
// (Faastlane's latency + 10 ms).
type fixture struct {
	set profiler.Set
	slo time.Duration
}

func setup(t *testing.T, name string) (*fixture, *System) {
	t.Helper()
	c := model.Default()
	var w = mustWorkload(t, name)
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fl := Faastlane(c)
	plan, err := fl.Plan(w, set, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(w, plan, fl.Env())
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{set: set, slo: res.E2E + 10*time.Millisecond}, fl
}

func mustWorkload(t *testing.T, name string) *dag.Workflow {
	t.Helper()
	for _, e := range workloads.Suite() {
		if e.Name == name {
			return e.Workflow
		}
	}
	t.Fatalf("unknown workload %s", name)
	return nil
}

func TestAllSystemsPlanAndRunEveryWorkload(t *testing.T) {
	c := model.Default()
	for _, entry := range workloads.Suite() {
		set, err := profiler.ProfileWorkflow(entry.Workflow, profiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		fl := Faastlane(c)
		fplan, err := fl.Plan(entry.Workflow, set, 0)
		if err != nil {
			t.Fatal(err)
		}
		fres, err := engine.Run(entry.Workflow, fplan, fl.Env())
		if err != nil {
			t.Fatal(err)
		}
		slo := fres.E2E + 10*time.Millisecond
		for _, sys := range append(All(c), FaastlaneT(c), FaastlanePlus(c)) {
			p, err := sys.Plan(entry.Workflow, set, slo)
			if err != nil {
				t.Fatalf("%s/%s plan: %v", entry.Name, sys.Name, err)
			}
			r, err := engine.Run(entry.Workflow, p, sys.Env())
			if err != nil {
				t.Fatalf("%s/%s run: %v", entry.Name, sys.Name, err)
			}
			if r.E2E <= 0 {
				t.Fatalf("%s/%s: non-positive latency", entry.Name, sys.Name)
			}
			if len(r.Functions) != entry.Workflow.NumFunctions() {
				t.Fatalf("%s/%s: %d function timings, want %d",
					entry.Name, sys.Name, len(r.Functions), entry.Workflow.NumFunctions())
			}
		}
	}
}

func TestChironBeatsFaastlaneOnEveryWorkload(t *testing.T) {
	// The headline claim: Chiron reduces latency vs Faastlane (25.1% on
	// average in the paper).
	c := model.Default()
	var totalGain float64
	n := 0
	for _, entry := range workloads.Suite() {
		set, err := profiler.ProfileWorkflow(entry.Workflow, profiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		fl := Faastlane(c)
		fplan, _ := fl.Plan(entry.Workflow, set, 0)
		fres, err := engine.Run(entry.Workflow, fplan, fl.Env())
		if err != nil {
			t.Fatal(err)
		}
		slo := fres.E2E + 10*time.Millisecond
		ch := Chiron(c)
		cplan, err := ch.Plan(entry.Workflow, set, slo)
		if err != nil {
			t.Fatal(err)
		}
		cres, err := engine.Run(entry.Workflow, cplan, ch.Env())
		if err != nil {
			t.Fatal(err)
		}
		if cres.E2E >= fres.E2E {
			t.Errorf("%s: Chiron %v >= Faastlane %v", entry.Name, cres.E2E, fres.E2E)
		}
		totalGain += 1 - float64(cres.E2E)/float64(fres.E2E)
		n++
	}
	avg := totalGain / float64(n)
	if avg < 0.10 || avg > 0.60 {
		t.Fatalf("average latency reduction vs Faastlane = %.0f%%, want within the paper's ballpark (25%%)", avg*100)
	}
}

func TestChironUsesFewerCPUsThanFaastlane(t *testing.T) {
	c := model.Default()
	for _, name := range []string{"FINRA-50", "SocialNetwork"} {
		entry := mustWorkload(t, name)
		set, err := profiler.ProfileWorkflow(entry, profiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		fl := Faastlane(c)
		fplan, _ := fl.Plan(entry, set, 0)
		fres, _ := engine.Run(entry, fplan, fl.Env())
		slo := fres.E2E + 10*time.Millisecond
		cplan, err := Chiron(c).Plan(entry, set, slo)
		if err != nil {
			t.Fatal(err)
		}
		if cplan.TotalCPUs() >= fplan.TotalCPUs() {
			t.Errorf("%s: Chiron CPUs %d >= Faastlane %d", name, cplan.TotalCPUs(), fplan.TotalCPUs())
		}
	}
}

func TestOneToOnePlansShape(t *testing.T) {
	c := model.Default()
	w := workloads.FINRA(5)
	p, err := OpenFaaS(c).Plan(w, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumWraps() != 6 {
		t.Fatalf("one-to-one wraps = %d, want 6", p.NumWraps())
	}
	for _, loc := range p.Loc {
		if loc.Proc != 0 {
			t.Fatal("one-to-one functions must be resident mains")
		}
	}
}

func TestFaastlaneSequentialAsThreads(t *testing.T) {
	c := model.Default()
	w := workloads.FINRA(5)
	p, err := Faastlane(c).Plan(w, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Loc["fetch-portfolio"].Proc != 0 {
		t.Fatal("sequential function should ride the main process")
	}
	procs := map[int]bool{}
	for name, loc := range p.Loc {
		if name == "fetch-portfolio" {
			continue
		}
		if loc.Proc == 0 {
			t.Fatalf("parallel function %s placed on main process", name)
		}
		if procs[loc.Proc] {
			t.Fatalf("parallel functions share process %d", loc.Proc)
		}
		procs[loc.Proc] = true
	}
	if p.NumWraps() != 1 {
		t.Fatal("Faastlane is many-to-one: a single sandbox")
	}
}

func TestFaastlaneTAllThreads(t *testing.T) {
	c := model.Default()
	p, err := FaastlaneT(c).Plan(workloads.FINRA(5), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, loc := range p.Loc {
		if loc != (wrap.Loc{Sandbox: 0, Proc: 0}) {
			t.Fatalf("%s at %+v; Faastlane-T runs everything as threads", name, loc)
		}
	}
	if p.Sandboxes[0].CPUs != 1 {
		t.Fatal("thread-only execution needs one CPU")
	}
}

func TestFaastlanePlusFiveProcessesPerSandbox(t *testing.T) {
	c := model.Default()
	p, err := FaastlanePlus(c).Plan(workloads.FINRA(12), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 12 parallel functions / 5 per sandbox = 3 sandboxes (last with 2).
	if p.NumWraps() != 3 {
		t.Fatalf("Faastlane+ wraps = %d, want 3", p.NumWraps())
	}
	count := map[int]int{}
	for name, loc := range p.Loc {
		if name == "fetch-portfolio" {
			continue
		}
		count[loc.Sandbox]++
	}
	if count[0] != 5 || count[1] != 5 || count[2] != 2 {
		t.Fatalf("function distribution = %v, want 5/5/2", count)
	}
}

func TestFaastlanePUniformPool(t *testing.T) {
	c := model.Default()
	w := workloads.FINRA(8)
	p, err := FaastlaneP(c).Plan(w, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Sandboxes[0]
	if !cfg.Pool || cfg.Workers != 8 || cfg.CPUs != 8 {
		t.Fatalf("Faastlane-P config = %+v, want uniform 8-worker/8-CPU pool", cfg)
	}
	if cfg.LongestFirst {
		t.Fatal("Faastlane-P has no skew mitigation")
	}
}

func TestChironRequiresProfiles(t *testing.T) {
	c := model.Default()
	if _, err := Chiron(c).Plan(workloads.FINRA(5), nil, time.Second); err == nil {
		t.Fatal("Chiron planned without profiles")
	}
}

func TestChironJavaFallsBackToPool(t *testing.T) {
	c := model.Default()
	w := workloads.InJava(workloads.SLApp())
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Chiron(c).Plan(w, set, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Sandboxes[0].Pool {
		t.Fatal("GIL-free workflow should deploy as a warm pool (Section 4)")
	}
}

func TestEnvsMatchDeploymentModels(t *testing.T) {
	c := model.Default()
	if env := ASF(c).Env(); env.Dispatch != engine.DispatchASF || env.Boundary != engine.BoundaryStore {
		t.Error("ASF env misconfigured")
	}
	if env := OpenFaaS(c).Env(); env.Dispatch != engine.DispatchGateway || env.Store.Name != "openfaas+minio" {
		t.Error("OpenFaaS env misconfigured")
	}
	if env := Chiron(c).Env(); env.Dispatch != engine.DispatchNone || env.Boundary != engine.BoundaryShared {
		t.Error("Chiron env misconfigured")
	}
}

func TestLookup(t *testing.T) {
	c := model.Default()
	for _, name := range []string{"ASF", "OpenFaaS", "SAND", "Faastlane", "Faastlane-T", "Faastlane+", "Faastlane-M", "Faastlane-P", "Chiron", "Chiron-M", "Chiron-P"} {
		if Lookup(c, name) == nil {
			t.Errorf("Lookup(%s) = nil", name)
		}
	}
	if Lookup(c, "Lambda") != nil {
		t.Error("unknown system resolved")
	}
}

func TestBillsPerTransitionOnlyASF(t *testing.T) {
	c := model.Default()
	for _, s := range All(c) {
		want := s.Name == "ASF"
		if s.BillsPerTransition != want {
			t.Errorf("%s BillsPerTransition = %v", s.Name, s.BillsPerTransition)
		}
	}
}

func TestSetupHelper(t *testing.T) {
	fx, fl := setup(t, "FINRA-5")
	if fx.slo <= 10*time.Millisecond {
		t.Fatal("SLO not derived")
	}
	if fl.Name != "Faastlane" {
		t.Fatal("unexpected system")
	}
}
