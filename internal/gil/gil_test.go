package gil

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"chiron/internal/behavior"
)

func cpuFn(name string, d time.Duration) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: d}},
		MemMB:    1,
	}
}

func sleepFn(name string, cpu, sleep time.Duration) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: cpu},
			{Kind: behavior.Sleep, Dur: sleep},
			{Kind: behavior.CPU, Dur: cpu},
		},
		MemMB: 1,
	}
}

var idealGIL = Options{
	Procs:      1,
	Quantum:    5 * time.Millisecond,
	Spawn:      MainThread,
	SpawnBatch: 8,
	SpawnCost:  300 * time.Microsecond,
}

func TestEmptyInput(t *testing.T) {
	res := Simulate(nil, idealGIL)
	if res.Total != 0 || len(res.Threads) != 0 {
		t.Fatalf("empty simulation returned %+v", res)
	}
}

func TestSingleCPUThread(t *testing.T) {
	res := Simulate([]*behavior.Spec{cpuFn("f", 10*time.Millisecond)}, idealGIL)
	want := 300*time.Microsecond + 10*time.Millisecond // spawn + run
	if res.Total != want {
		t.Fatalf("Total = %v, want %v", res.Total, want)
	}
	th := res.Threads[0]
	if th.CPUTime != 10*time.Millisecond || th.BlockTime != 0 {
		t.Fatalf("thread accounting = %+v", th)
	}
	if th.SpawnedAt != 300*time.Microsecond {
		t.Fatalf("SpawnedAt = %v", th.SpawnedAt)
	}
	if th.Finish != want {
		t.Fatalf("Finish = %v, want %v", th.Finish, want)
	}
}

func TestGILSerializesCPUThreads(t *testing.T) {
	// Two 10ms CPU threads under the GIL must take >= 20ms: no speedup
	// from pseudo-parallelism (Section 2.1).
	specs := []*behavior.Spec{cpuFn("a", 10*time.Millisecond), cpuFn("b", 10*time.Millisecond)}
	res := Simulate(specs, idealGIL)
	if res.Total < 20*time.Millisecond {
		t.Fatalf("GIL run finished in %v, impossible under serialization", res.Total)
	}
	if res.Total > 21*time.Millisecond {
		t.Fatalf("GIL run took %v, too much overhead", res.Total)
	}
}

func TestTrueParallelismRunsConcurrently(t *testing.T) {
	opt := idealGIL
	opt.Procs = 2
	specs := []*behavior.Spec{cpuFn("a", 10*time.Millisecond), cpuFn("b", 10*time.Millisecond)}
	res := Simulate(specs, opt)
	// Both can run at once; total ~= spawn of b + 10ms.
	if res.Total > 11*time.Millisecond {
		t.Fatalf("2-CPU run took %v, want ~10.6ms", res.Total)
	}
}

func TestBlockOpsOverlapUnderGIL(t *testing.T) {
	// Two threads that sleep 50ms each: the sleeps overlap (Figure 2), so
	// total is far below the serialized 100ms+.
	specs := []*behavior.Spec{
		sleepFn("a", time.Millisecond, 50*time.Millisecond),
		sleepFn("b", time.Millisecond, 50*time.Millisecond),
	}
	res := Simulate(specs, idealGIL)
	if res.Total > 60*time.Millisecond {
		t.Fatalf("sleeps did not overlap: total %v", res.Total)
	}
	if res.Total < 50*time.Millisecond {
		t.Fatalf("total %v below a single sleep", res.Total)
	}
}

func TestQuantumPreemptionSharesCPUFairly(t *testing.T) {
	// With 5ms quanta, two 20ms CPU threads should finish within one
	// quantum of each other rather than strictly one-after-the-other.
	specs := []*behavior.Spec{cpuFn("a", 20*time.Millisecond), cpuFn("b", 20*time.Millisecond)}
	res := Simulate(specs, idealGIL)
	a, b := res.Threads[0].Finish, res.Threads[1].Finish
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > 6*time.Millisecond {
		t.Fatalf("finish skew %v exceeds a quantum; CFS interleaving broken (a=%v b=%v)", diff, a, b)
	}
}

func TestFirstRunWaitsForGIL(t *testing.T) {
	// Under the GIL the second thread's first run must wait until the
	// first yields (quantum) even though it spawned almost immediately.
	specs := []*behavior.Spec{cpuFn("a", 20*time.Millisecond), cpuFn("b", 20*time.Millisecond)}
	res := Simulate(specs, idealGIL)
	b := res.Threads[1]
	if b.FirstRun < 5*time.Millisecond {
		t.Fatalf("thread b first ran at %v, before any quantum expired", b.FirstRun)
	}
}

func TestDispatcherWorkerLimitSerializes(t *testing.T) {
	opt := Options{
		Procs:     4,
		Quantum:   5 * time.Millisecond,
		Spawn:     Dispatcher,
		SpawnCost: 100 * time.Microsecond,
		Workers:   1,
	}
	specs := []*behavior.Spec{cpuFn("a", 5*time.Millisecond), cpuFn("b", 5*time.Millisecond), cpuFn("c", 5*time.Millisecond)}
	res := Simulate(specs, opt)
	if res.Total < 15*time.Millisecond {
		t.Fatalf("1 worker finished 3x5ms in %v; worker limit not enforced", res.Total)
	}
}

func TestDispatcherUnlimitedWorkersParallel(t *testing.T) {
	opt := Options{
		Procs:     4,
		Quantum:   5 * time.Millisecond,
		Spawn:     Dispatcher,
		SpawnCost: 100 * time.Microsecond,
		Workers:   8,
	}
	specs := []*behavior.Spec{cpuFn("a", 5*time.Millisecond), cpuFn("b", 5*time.Millisecond), cpuFn("c", 5*time.Millisecond)}
	res := Simulate(specs, opt)
	if res.Total > 6*time.Millisecond {
		t.Fatalf("4 CPUs / 8 workers took %v for 3 independent 5ms tasks", res.Total)
	}
}

func TestLongestFirstReducesMakespanUnderSkew(t *testing.T) {
	// One 40ms task and four 5ms tasks on 2 CPUs: starting the long task
	// last wastes its length at the tail (Chiron-P's skew mitigation).
	specs := []*behavior.Spec{
		cpuFn("s1", 5*time.Millisecond), cpuFn("s2", 5*time.Millisecond),
		cpuFn("s3", 5*time.Millisecond), cpuFn("s4", 5*time.Millisecond),
		cpuFn("long", 40*time.Millisecond),
	}
	base := Options{
		Procs: 2, Quantum: 5 * time.Millisecond, Spawn: Dispatcher,
		SpawnCost: 50 * time.Microsecond, Workers: 2,
	}
	fifo := Simulate(specs, base)
	lf := base
	lf.LongestFirst = true
	sorted := Simulate(specs, lf)
	if sorted.Total >= fifo.Total {
		t.Fatalf("longest-first (%v) did not beat FIFO (%v)", sorted.Total, fifo.Total)
	}
}

func TestExecutionFactorsScaleWork(t *testing.T) {
	spec := sleepFn("f", 10*time.Millisecond, 10*time.Millisecond)
	plain := Simulate([]*behavior.Spec{spec}, idealGIL)
	opt := idealGIL
	opt.CPUFactor = 1.5
	opt.IOFactor = 1.2
	scaled := Simulate([]*behavior.Spec{spec}, opt)
	wantCPU := time.Duration(float64(plain.Threads[0].CPUTime) * 1.5)
	if scaled.Threads[0].CPUTime != wantCPU {
		t.Errorf("CPUFactor: got %v, want %v", scaled.Threads[0].CPUTime, wantCPU)
	}
	wantIO := time.Duration(float64(plain.Threads[0].BlockTime) * 1.2)
	if scaled.Threads[0].BlockTime != wantIO {
		t.Errorf("IOFactor: got %v, want %v", scaled.Threads[0].BlockTime, wantIO)
	}
}

func TestSyscallOverheadAddsCPU(t *testing.T) {
	spec := sleepFn("f", time.Millisecond, time.Millisecond)
	opt := idealGIL
	opt.SyscallOverhead = 100 * time.Microsecond
	res := Simulate([]*behavior.Spec{spec}, opt)
	// One blocking segment -> exactly one syscall overhead charge.
	want := 2*time.Millisecond + 100*time.Microsecond
	if res.Threads[0].CPUTime != want {
		t.Fatalf("CPUTime = %v, want %v", res.Threads[0].CPUTime, want)
	}
}

func TestJitterIsDeterministicPerSeed(t *testing.T) {
	specs := []*behavior.Spec{cpuFn("a", 3*time.Millisecond), cpuFn("b", 4*time.Millisecond)}
	opt := idealGIL
	opt.JitterPct = 0.2
	opt.Seed = 42
	r1 := Simulate(specs, opt)
	r2 := Simulate(specs, opt)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("same seed produced different results")
	}
	opt.Seed = 43
	r3 := Simulate(specs, opt)
	if reflect.DeepEqual(r1.Total, r3.Total) {
		t.Fatal("different seeds produced identical totals (jitter inert)")
	}
}

func TestLeadingBlockSegment(t *testing.T) {
	spec := &behavior.Spec{
		Name: "io-first", Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.NetIO, Dur: 5 * time.Millisecond},
			{Kind: behavior.CPU, Dur: time.Millisecond},
		},
		MemMB: 1,
	}
	res := Simulate([]*behavior.Spec{spec}, idealGIL)
	want := 300*time.Microsecond + 6*time.Millisecond
	if res.Total != want {
		t.Fatalf("Total = %v, want %v", res.Total, want)
	}
}

func TestTrailingBlockSegment(t *testing.T) {
	spec := &behavior.Spec{
		Name: "io-last", Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: time.Millisecond},
			{Kind: behavior.DiskIO, Dur: 5 * time.Millisecond},
		},
		MemMB: 1,
	}
	res := Simulate([]*behavior.Spec{spec}, idealGIL)
	want := 300*time.Microsecond + 6*time.Millisecond
	if res.Total != want {
		t.Fatalf("Total = %v, want %v", res.Total, want)
	}
	if res.Threads[0].Finish != want {
		t.Fatalf("Finish = %v, want %v", res.Threads[0].Finish, want)
	}
}

func TestRecordedTimelineIsConsistent(t *testing.T) {
	specs := []*behavior.Spec{
		sleepFn("a", 3*time.Millisecond, 10*time.Millisecond),
		sleepFn("b", 3*time.Millisecond, 10*time.Millisecond),
		cpuFn("c", 7*time.Millisecond),
	}
	opt := idealGIL
	opt.Record = true
	res := Simulate(specs, opt)
	for _, th := range res.Threads {
		if len(th.Slices) == 0 {
			t.Fatalf("%s: no slices recorded", th.Name)
		}
		var run, block time.Duration
		for i, sl := range th.Slices {
			if sl.To < sl.From {
				t.Fatalf("%s slice %d inverted: %+v", th.Name, i, sl)
			}
			if sl.To > res.Total {
				t.Fatalf("%s slice %d ends after makespan", th.Name, i)
			}
			switch sl.Kind {
			case Run:
				run += sl.To - sl.From
			case Block:
				block += sl.To - sl.From
			}
		}
		if run != th.CPUTime {
			t.Errorf("%s: recorded run time %v != CPUTime %v", th.Name, run, th.CPUTime)
		}
		if block != th.BlockTime {
			t.Errorf("%s: recorded block time %v != BlockTime %v", th.Name, block, th.BlockTime)
		}
		last := th.Slices[len(th.Slices)-1]
		if last.To != th.Finish {
			t.Errorf("%s: timeline ends at %v, Finish %v", th.Name, last.To, th.Finish)
		}
	}
}

func TestSliceKindStrings(t *testing.T) {
	for k, want := range map[SliceKind]string{Startup: "startup", Run: "run", Block: "block", Wait: "wait", SliceKind(9): "?"} {
		if k.String() != want {
			t.Errorf("SliceKind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// TestPropertyConservation checks the fundamental accounting invariants on
// random workloads: per-thread CPU and block totals match the (scaled)
// spec; the makespan is at least the critical path of any single thread and
// at most the fully-serialized sum.
func TestPropertyConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8, procsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 1
		specs := make([]*behavior.Spec, n)
		for i := range specs {
			specs[i] = behavior.Random("f", rng, 500*time.Microsecond, 20*time.Millisecond)
		}
		opt := idealGIL
		opt.Procs = int(procsRaw%4) + 1
		res := Simulate(specs, opt)

		var serial time.Duration
		var maxSolo time.Duration
		for i, sp := range specs {
			th := res.Threads[i]
			if th.CPUTime != sp.TotalCPU() || th.BlockTime != sp.TotalBlock() {
				return false
			}
			if th.Finish > res.Total {
				return false
			}
			serial += sp.SoloLatency()
			if sp.SoloLatency() > maxSolo {
				maxSolo = sp.SoloLatency()
			}
		}
		spawnBudget := time.Duration(n) * opt.SpawnCost
		if res.Total < maxSolo {
			return false
		}
		if res.Total > serial+spawnBudget+time.Millisecond {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMoreProcsNeverSlower: adding CPUs can only help (or tie).
func TestPropertyMoreProcsNeverSlower(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		specs := make([]*behavior.Spec, n)
		for i := range specs {
			specs[i] = behavior.Random("f", rng, time.Millisecond, 10*time.Millisecond)
		}
		prev := time.Duration(-1)
		for procs := 1; procs <= 4; procs++ {
			opt := idealGIL
			opt.Procs = procs
			total := Simulate(specs, opt).Total
			if prev >= 0 && total > prev+time.Microsecond {
				return false
			}
			prev = total
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCPUBusyAggregation(t *testing.T) {
	specs := []*behavior.Spec{cpuFn("a", 3*time.Millisecond), cpuFn("b", 4*time.Millisecond)}
	res := Simulate(specs, idealGIL)
	if res.CPUBusy != 7*time.Millisecond {
		t.Fatalf("CPUBusy = %v, want 7ms", res.CPUBusy)
	}
}

func TestExtraStartupOffCriticalPathOfDispatcher(t *testing.T) {
	// Fork semantics: the dispatcher issues task j at j x SpawnCost; each
	// task's ExtraStartup (interpreter init) overlaps later dispatches.
	opt := Options{
		Procs: 8, Quantum: 5 * time.Millisecond,
		Spawn: Dispatcher, SpawnCost: 2 * time.Millisecond,
		ExtraStartup: 7 * time.Millisecond,
	}
	specs := []*behavior.Spec{
		cpuFn("a", time.Millisecond), cpuFn("b", time.Millisecond), cpuFn("c", time.Millisecond),
	}
	res := Simulate(specs, opt)
	// Task j ready at j*2ms + 7ms; last finishes at 2*2+7+1 = 12ms.
	want := 12 * time.Millisecond
	if res.Total != want {
		t.Fatalf("Total = %v, want %v", res.Total, want)
	}
	for j, th := range res.Threads {
		wantSpawn := time.Duration(j)*2*time.Millisecond + 7*time.Millisecond
		if th.SpawnedAt != wantSpawn {
			t.Errorf("task %d spawned at %v, want %v", j, th.SpawnedAt, wantSpawn)
		}
	}
}

func TestExtraStartupRecordedAsStartupSlice(t *testing.T) {
	opt := Options{
		Procs: 1, Quantum: 5 * time.Millisecond,
		Spawn: Dispatcher, SpawnCost: time.Millisecond,
		ExtraStartup: 3 * time.Millisecond, Record: true,
	}
	res := Simulate([]*behavior.Spec{cpuFn("a", time.Millisecond)}, opt)
	found := false
	for _, sl := range res.Threads[0].Slices {
		if sl.Kind == Startup && sl.To-sl.From == 3*time.Millisecond {
			found = true
		}
	}
	if !found {
		t.Fatalf("ExtraStartup slice missing: %+v", res.Threads[0].Slices)
	}
}

func TestWorkerLimitWithLongestFirstOrdering(t *testing.T) {
	// With one worker and longest-first, the long task must run first.
	opt := Options{
		Procs: 1, Quantum: 5 * time.Millisecond,
		Spawn: Dispatcher, SpawnCost: 100 * time.Microsecond,
		Workers: 1, LongestFirst: true,
	}
	specs := []*behavior.Spec{
		cpuFn("short", 2*time.Millisecond),
		cpuFn("long", 20*time.Millisecond),
	}
	res := Simulate(specs, opt)
	longTh, shortTh := res.Threads[1], res.Threads[0]
	if longTh.FirstRun > shortTh.FirstRun {
		t.Fatalf("long task first ran at %v, after short's %v; longest-first broken",
			longTh.FirstRun, shortTh.FirstRun)
	}
}

func TestMainThreadSpawnBatchesRespectBatchSize(t *testing.T) {
	// With batch size 2 and 6 threads, spawning takes three main-thread
	// turns; under the GIL those turns interleave with execution, so the
	// last thread spawns well after the first batch.
	opt := idealGIL
	opt.SpawnBatch = 2
	specs := make([]*behavior.Spec, 6)
	for i := range specs {
		specs[i] = cpuFn("f", 4*time.Millisecond)
	}
	res := Simulate(specs, opt)
	if res.Threads[5].SpawnedAt < res.Threads[1].SpawnedAt+4*time.Millisecond {
		t.Fatalf("batch 3 spawned at %v, too close to batch 1 (%v); main thread did not yield between batches",
			res.Threads[5].SpawnedAt, res.Threads[1].SpawnedAt)
	}
}

func TestSimReuseMatchesFreshSimulate(t *testing.T) {
	// A reused Sim must be indistinguishable from a fresh Simulate call:
	// no state may leak between runs, including across different options
	// and spawn modes.
	specsA := []*behavior.Spec{
		cpuFn("a", 10*time.Millisecond),
		sleepFn("b", 3*time.Millisecond, 20*time.Millisecond),
		cpuFn("c", 7*time.Millisecond),
	}
	specsB := []*behavior.Spec{
		sleepFn("x", 2*time.Millisecond, 9*time.Millisecond),
		cpuFn("y", 4*time.Millisecond),
	}
	opts := []Options{
		{Procs: 1, Quantum: 5 * time.Millisecond, SpawnCost: 100 * time.Microsecond, Record: true},
		{Procs: 4, Quantum: 5 * time.Millisecond, Spawn: Dispatcher, Workers: 2,
			SpawnCost: 50 * time.Microsecond, LongestFirst: true},
		{Procs: 2, Quantum: time.Millisecond, SyscallOverhead: 20 * time.Microsecond,
			JitterPct: 0.1, Seed: 42, ExtraStartup: time.Millisecond, Spawn: Dispatcher},
	}
	s := NewSim()
	for _, opt := range opts {
		for _, specs := range [][]*behavior.Spec{specsA, specsB} {
			want := Simulate(specs, opt)
			got := s.Simulate(specs, opt)
			if got.Total != want.Total || got.CPUBusy != want.CPUBusy {
				t.Fatalf("reused Sim diverged: got total=%v busy=%v, want total=%v busy=%v",
					got.Total, got.CPUBusy, want.Total, want.CPUBusy)
			}
			if len(got.Threads) != len(want.Threads) {
				t.Fatalf("thread count %d, want %d", len(got.Threads), len(want.Threads))
			}
			for i := range want.Threads {
				g, w := got.Threads[i], want.Threads[i]
				if g.Finish != w.Finish || g.CPUTime != w.CPUTime || g.BlockTime != w.BlockTime ||
					g.SpawnedAt != w.SpawnedAt || g.FirstRun != w.FirstRun {
					t.Fatalf("thread %d diverged on reused Sim:\n got %+v\nwant %+v", i, g, w)
				}
				if len(g.Slices) != len(w.Slices) {
					t.Fatalf("thread %d slices %d, want %d", i, len(g.Slices), len(w.Slices))
				}
				for j := range w.Slices {
					if g.Slices[j] != w.Slices[j] {
						t.Fatalf("thread %d slice %d = %+v, want %+v", i, j, g.Slices[j], w.Slices[j])
					}
				}
			}
		}
	}
}

func TestWarmSimSimulateDoesNotAllocate(t *testing.T) {
	// Allocation budget: pricing a wrap on a warm Sim is the innermost
	// operation of the PGP search, so it must not touch the heap.
	specs := []*behavior.Spec{
		cpuFn("a", 10*time.Millisecond),
		sleepFn("b", 3*time.Millisecond, 20*time.Millisecond),
		cpuFn("c", 7*time.Millisecond),
		sleepFn("d", 2*time.Millisecond, 5*time.Millisecond),
	}
	opt := Options{Procs: 1, Quantum: 5 * time.Millisecond, SpawnCost: 100 * time.Microsecond}
	s := NewSim()
	s.Simulate(specs, opt) // warm every arena
	if avg := testing.AllocsPerRun(100, func() { s.Simulate(specs, opt) }); avg > 0 {
		t.Fatalf("warm Sim.Simulate allocates %.1f allocs/run, want 0", avg)
	}
	// The dispatcher path (sorted admission, worker limit) must also be
	// allocation-free once warm.
	dopt := Options{Procs: 4, Spawn: Dispatcher, Workers: 2, LongestFirst: true,
		SpawnCost: 50 * time.Microsecond}
	s.Simulate(specs, dopt)
	if avg := testing.AllocsPerRun(100, func() { s.Simulate(specs, dopt) }); avg > 0 {
		t.Fatalf("warm dispatcher Simulate allocates %.1f allocs/run, want 0", avg)
	}
}

func TestPooledSimulateResultIsCallerOwned(t *testing.T) {
	// The package-level Simulate must return a deep copy: mutating a pooled
	// Sim afterwards (by running it again) must not change the caller's copy.
	specs := []*behavior.Spec{
		sleepFn("a", 3*time.Millisecond, 20*time.Millisecond),
		cpuFn("b", 7*time.Millisecond),
	}
	opt := Options{Procs: 1, Quantum: 5 * time.Millisecond, Record: true}
	res := Simulate(specs, opt)
	total, finish0 := res.Total, res.Threads[0].Finish
	slices0 := append([]Slice(nil), res.Threads[0].Slices...)
	// Churn the pool with different workloads.
	for i := 0; i < 8; i++ {
		Simulate([]*behavior.Spec{cpuFn("z", time.Duration(i+1)*time.Millisecond)}, Options{Procs: 2})
	}
	if res.Total != total || res.Threads[0].Finish != finish0 {
		t.Fatal("pooled Simulate result mutated by later runs")
	}
	for j, s := range slices0 {
		if res.Threads[0].Slices[j] != s {
			t.Fatal("pooled Simulate slices mutated by later runs")
		}
	}
}
