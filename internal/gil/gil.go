// Package gil simulates how a set of functions executes as threads inside
// one OS process, under three runtime regimes:
//
//   - CPython/Node.js pseudo-parallelism: one global interpreter lock, the
//     holder is asked to drop it after a switch interval when others wait,
//     and blocking syscalls release it (paper Figure 2, Algorithm 1);
//   - true parallelism over a limited CPU set (Java threads, Figure 18, or
//     GIL-free runtimes, Figure 7);
//   - process pools (ProcessPoolExecutor): warm workers give near-zero
//     startup, a dispatcher admits tasks, and CPU pinning/sharing decides
//     contention (Section 4 "True Parallelism").
//
// One event-driven simulator covers all three because they differ only in
// (a) how many CPU slots exist, (b) how tasks are admitted, and (c) what a
// task admission costs. The white-box Predictor runs this simulator with
// idealized options; the ground-truth engine runs it with fidelity knobs
// (syscall overhead, spawn jitter, main-thread lag) turned on — the gap
// between the two is the prediction error studied in Figure 12.
//
// The simulator itself is engineered for PGP's search loop, where millions
// of short simulations price candidate layouts: a reusable Sim owns every
// buffer (kernel events, thread arenas, segment copies, the run queue) and
// schedules via argument-carrying callbacks instead of closures, so a warm
// Sim prices a wrap with zero heap allocations (guarded by
// testing.AllocsPerRun in gil_test.go). The package-level Simulate keeps
// the old contract — a caller-owned Result — by running on a pooled Sim
// and copying the result out.
package gil

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/cfs"
	"chiron/internal/sim"
)

// SpawnMode selects how threads come into existence.
type SpawnMode int

const (
	// MainThread models CPython Thread.start(): the orchestrator's main
	// thread holds the GIL while cloning, starting SpawnBatch threads per
	// scheduling turn (Algorithm 1 lines 4-5).
	MainThread SpawnMode = iota
	// Dispatcher models a pool executor: a parent process submits tasks
	// serially at SpawnCost each; tasks then wait for a free worker.
	Dispatcher
)

// Options parameterize one simulation.
type Options struct {
	// Procs is the number of CPU slots threads may occupy concurrently:
	// 1 under the GIL, the cpuset size under true parallelism.
	Procs int
	// Quantum is the scheduler switch interval (CPython's 5 ms switch
	// interval, or the CFS slice under true parallelism).
	Quantum time.Duration
	// Spawn selects the admission model.
	Spawn SpawnMode
	// SpawnBatch caps how many threads the main thread starts per turn
	// (MainThread mode only).
	SpawnBatch int
	// SpawnCost is the cost of creating/admitting one thread or task:
	// thread clone time in MainThread mode, dispatch cost in Dispatcher
	// mode.
	SpawnCost time.Duration
	// ExtraStartup is additional per-task initialization that runs after
	// spawn/dispatch completes but off the spawner's critical path: a
	// forked process's interpreter re-initialization. The spawner moves on
	// to the next task while this elapses.
	ExtraStartup time.Duration
	// Workers caps concurrently-admitted tasks in Dispatcher mode (pool
	// size); 0 means unlimited (MainThread mode ignores it).
	Workers int
	// LongestFirst makes the dispatcher admit tasks in descending
	// solo-latency order, Chiron-P's skew mitigation ("long-running
	// functions are started preferentially", Section 6.2).
	LongestFirst bool

	// CPUFactor and IOFactor scale CPU and blocking segment durations;
	// isolation mechanisms (MPK/SFI, Table 1) set them above 1.
	CPUFactor float64
	IOFactor  float64

	// ---- Fidelity knobs (engine only; the Predictor leaves them zero) ----

	// SyscallOverhead is extra on-CPU time charged on entry to every
	// blocking syscall.
	SyscallOverhead time.Duration
	// MainLag delays the first admission (watchdog hand-off).
	MainLag time.Duration
	// JitterPct applies +/- seeded jitter to every spawn cost.
	JitterPct float64
	// Seed drives the deterministic jitter stream.
	Seed int64

	// Record enables per-thread slice timelines (Figure 5 rendering).
	Record bool
}

func (o *Options) normalize() {
	if o.Procs <= 0 {
		o.Procs = 1
	}
	if o.Quantum <= 0 {
		o.Quantum = 5 * time.Millisecond
	}
	if o.SpawnBatch <= 0 {
		o.SpawnBatch = 8
	}
	if o.CPUFactor <= 0 {
		o.CPUFactor = 1
	}
	if o.IOFactor <= 0 {
		o.IOFactor = 1
	}
}

// SliceKind labels a timeline slice.
type SliceKind int

const (
	// Startup covers thread creation / task dispatch.
	Startup SliceKind = iota
	// Run is on-CPU execution.
	Run
	// Block is off-CPU time in a blocking syscall.
	Block
	// Wait is runnable time spent waiting for the GIL/CPU or a pool
	// worker.
	Wait
)

func (k SliceKind) String() string {
	switch k {
	case Startup:
		return "startup"
	case Run:
		return "run"
	case Block:
		return "block"
	case Wait:
		return "wait"
	}
	return "?"
}

// Slice is one span of a thread's timeline.
type Slice struct {
	From, To time.Duration
	Kind     SliceKind
}

// ThreadResult reports one function-thread's fate.
type ThreadResult struct {
	Name string
	// SpawnedAt is when creation/dispatch of the thread completed.
	SpawnedAt time.Duration
	// FirstRun is when the thread first got a CPU slot (-1 if never ran).
	FirstRun time.Duration
	// Finish is when the thread's last segment completed.
	Finish time.Duration
	// CPUTime and BlockTime are totals actually consumed.
	CPUTime   time.Duration
	BlockTime time.Duration
	// Slices is the recorded timeline (only when Options.Record).
	Slices []Slice
}

// Result is the outcome of one simulation.
type Result struct {
	// Total is the makespan: the time at which every thread has finished,
	// measured from process start (this is Algorithm 1's T_exec).
	Total time.Duration
	// Threads are per-function results in input order.
	Threads []ThreadResult
	// CPUBusy is the total on-CPU time across all threads; with Total and
	// Procs it yields utilization.
	CPUBusy time.Duration
}

type threadState int

const (
	stSpawning threadState = iota
	stWaitWorker
	stReady
	stRunning
	stBlocked
	stDone
)

// threadPhase names what a thread's single pending kernel event will do
// when it fires. Threads never have more than one event in flight, so one
// phase tag plus the pend* argument fields replace the per-event closures
// the simulator used to allocate.
type threadPhase int

const (
	phaseNone threadPhase = iota
	phaseAdmit
	phaseAdmitReady
	phaseEndSlice
	phaseUnblock
)

type thread struct {
	s         *Sim
	idx       int
	spec      *behavior.Spec
	segments  []behavior.Segment // duration-scaled copy (points into Sim's arena)
	segIdx    int
	segRem    time.Duration
	cpuUsed   time.Duration
	state     threadState
	extraDone bool
	res       *ThreadResult

	waitFrom time.Duration // when the current Ready/WaitWorker span began

	// Pending-event dispatch state (see threadPhase).
	phase       threadPhase
	pendRan     time.Duration
	pendSys     time.Duration
	pendPreempt bool
	pendBlock   bool
}

// VRuntime implements cfs.Entity.
func (t *thread) VRuntime() time.Duration { return t.cpuUsed }

// fire dispatches the thread's pending event.
func (t *thread) fire() {
	ph := t.phase
	t.phase = phaseNone
	switch ph {
	case phaseAdmit:
		t.s.admit(t)
	case phaseAdmitReady:
		t.s.admitReady(t)
	case phaseEndSlice:
		t.s.endSlice(t)
	case phaseUnblock:
		t.s.unblock(t)
	}
}

// mainEnt is the orchestrator's main thread: it competes for the CPU
// through the same CFS queue as function threads (so under the GIL, thread
// creation is interleaved with function execution exactly as in Figure 2)
// and spends its slices cloning the next batch of threads.
type mainEnt struct {
	s       *Sim
	cpuUsed time.Duration
	next    int // index of the next thread to spawn
}

// VRuntime implements cfs.Entity.
func (m *mainEnt) VRuntime() time.Duration { return m.cpuUsed }

// Package-level event callbacks: referencing a top-level function as a
// value is allocation-free, and the `any` argument always carries a
// pointer, which boxes without allocating.
func fireThreadEvent(a any) { a.(*thread).fire() }
func fireMainStart(a any) {
	s := a.(*Sim)
	s.ready.Add(&s.main)
	s.schedule()
}
func fireMainDone(a any)    { a.(*Sim).mainDone() }
func fireDispatchAll(a any) { a.(*Sim).dispatchAll() }

// byLongest stable-sorts the dispatch order by descending solo latency.
// It lives in the Sim so sorting reuses one sorter and one order slice
// across Simulate calls (no per-dispatch comparator closure).
type byLongest struct{ ths []*thread }

func (b *byLongest) Len() int      { return len(b.ths) }
func (b *byLongest) Swap(i, j int) { b.ths[i], b.ths[j] = b.ths[j], b.ths[i] }
func (b *byLongest) Less(i, j int) bool {
	return b.ths[i].spec.SoloLatency() > b.ths[j].spec.SoloLatency()
}

// Sim is a reusable simulator. It owns every buffer a run needs — the
// event kernel, thread and segment arenas, result slots, the CFS run
// queue — so a warm Sim executes Simulate with zero heap allocations.
// A Sim is not safe for concurrent use, and the Result returned by
// Simulate (including everything it references) is owned by the Sim and
// valid only until the next Simulate call. Callers that retain results
// use the package-level Simulate, which returns an independent copy.
type Sim struct {
	opt      Options
	k        *sim.Kernel
	rng      *rand.Rand
	ready    cfs.Queue
	waitQ    []*thread // Dispatcher mode: admitted but no worker yet
	waitHead int       // consumed prefix of waitQ (ring-free FIFO reuse)
	free     int       // free CPU slots
	workers  int       // free pool workers (Dispatcher mode)
	threads  []*thread
	main     mainEnt
	alive    int
	res      Result

	// Recycled arenas.
	threadBuf []thread
	segBuf    []behavior.Segment
	resBuf    []ThreadResult
	sorter    byLongest
}

// NewSim returns an empty reusable simulator.
func NewSim() *Sim {
	return &Sim{k: sim.New(), rng: rand.New(rand.NewSource(1))}
}

// simPool backs the package-level Simulate and hot-path callers that
// acquire a Sim directly (predict's cached Algorithm-1 pricing).
var simPool = sync.Pool{New: func() interface{} { return NewSim() }}

// AcquireSim takes a reusable simulator from the process-wide pool.
// Callers must ReleaseSim it after reading the Result (the Result dies
// with the release).
func AcquireSim() *Sim { return simPool.Get().(*Sim) }

// ReleaseSim returns a simulator to the pool. The Result of its last
// Simulate call must not be used afterwards.
func ReleaseSim(s *Sim) { simPool.Put(s) }

// Simulate runs the given function set to completion and returns per-thread
// results. It never touches the wall clock and is fully deterministic for a
// given (specs, Options) pair. The returned Result is an independent copy
// the caller owns; hot paths that only read Result.Total use
// AcquireSim/ReleaseSim with (*Sim).Simulate to skip the copy.
func Simulate(specs []*behavior.Spec, opt Options) *Result {
	s := AcquireSim()
	out := cloneResult(s.Simulate(specs, opt))
	ReleaseSim(s)
	return out
}

func cloneResult(r *Result) *Result {
	out := &Result{Total: r.Total, CPUBusy: r.CPUBusy}
	out.Threads = make([]ThreadResult, len(r.Threads))
	copy(out.Threads, r.Threads)
	for i := range out.Threads {
		if s := out.Threads[i].Slices; len(s) > 0 {
			out.Threads[i].Slices = append([]Slice(nil), s...)
		} else {
			out.Threads[i].Slices = nil
		}
	}
	return out
}

// Simulate runs one simulation on the reusable Sim. See the type comment
// for the result's lifetime.
func (s *Sim) Simulate(specs []*behavior.Spec, opt Options) *Result {
	opt.normalize()
	s.opt = opt
	s.k.Reset()
	s.ready.Reset()
	if opt.JitterPct > 0 {
		// Seeding the lagged-Fibonacci source is ~60x the cost of one
		// draw, so only pay it when jitter actually consumes the stream
		// (the Predictor always runs jitter-free).
		s.rng.Seed(opt.Seed)
	}
	s.free = opt.Procs
	s.workers = opt.Workers
	if opt.Workers <= 0 {
		s.workers = len(specs) + 1 // effectively unlimited
	}
	s.alive = len(specs)
	s.waitQ = s.waitQ[:0]
	s.waitHead = 0
	s.main = mainEnt{s: s}

	n := len(specs)
	if cap(s.resBuf) < n {
		s.resBuf = make([]ThreadResult, n)
	} else {
		s.resBuf = s.resBuf[:n]
	}
	s.res = Result{Threads: s.resBuf}
	if n == 0 {
		return &s.res
	}

	if cap(s.threadBuf) < n {
		s.threadBuf = make([]thread, n)
	} else {
		s.threadBuf = s.threadBuf[:n]
	}
	if cap(s.threads) < n {
		s.threads = make([]*thread, n)
	} else {
		s.threads = s.threads[:n]
	}
	// The segment arena is sized up front so per-thread subslices stay
	// valid (no growth while handing out windows).
	totalSegs := 0
	for _, sp := range specs {
		totalSegs += len(sp.Segments)
	}
	if cap(s.segBuf) < totalSegs {
		s.segBuf = make([]behavior.Segment, totalSegs)
	} else {
		s.segBuf = s.segBuf[:totalSegs]
	}

	segOff := 0
	for i, sp := range specs {
		tr := &s.resBuf[i]
		*tr = ThreadResult{Name: sp.Name, FirstRun: -1, Slices: tr.Slices[:0]}
		th := &s.threadBuf[i]
		*th = thread{s: s, idx: i, spec: sp, res: tr}
		segs := s.segBuf[segOff : segOff+len(sp.Segments)]
		segOff += len(sp.Segments)
		for j, seg := range sp.Segments {
			f := opt.CPUFactor
			if seg.Kind.Blocking() {
				f = opt.IOFactor
			}
			seg.Dur = time.Duration(float64(seg.Dur) * f)
			if seg.Dur <= 0 {
				seg.Dur = time.Nanosecond
			}
			segs[j] = seg
		}
		th.segments = segs
		th.segRem = segs[0].Dur
		s.threads[i] = th
	}

	switch opt.Spawn {
	case Dispatcher:
		s.k.AtArg(opt.MainLag, fireDispatchAll, s)
	default:
		s.k.AtArg(opt.MainLag, fireMainStart, s)
	}

	s.k.SetBudget(50_000_000)
	if err := s.k.Run(); err != nil {
		panic("gil: simulation did not converge: " + err.Error())
	}
	return &s.res
}

// jittered returns d with +/- JitterPct deterministic noise.
func (s *Sim) jittered(d time.Duration) time.Duration {
	if s.opt.JitterPct <= 0 || d <= 0 {
		return d
	}
	u := s.rng.Float64()*2 - 1
	out := time.Duration(float64(d) * (1 + s.opt.JitterPct*u))
	if out <= 0 {
		out = time.Nanosecond
	}
	return out
}

// runMain executes one of the main thread's scheduling turns: while holding
// a CPU slot it clones the next batch of threads, each at SpawnCost
// (Algorithm 1 lines 4-5: "the same amount of functions is started in each
// interval"). If spawns remain afterwards, the main thread re-enters the
// run queue and competes on vruntime like everyone else.
func (s *Sim) runMain() {
	batch := s.opt.SpawnBatch
	if rem := len(s.threads) - s.main.next; rem < batch {
		batch = rem
	}
	var busy time.Duration
	for i := 0; i < batch; i++ {
		busy += s.jittered(s.opt.SpawnCost)
		th := s.threads[s.main.next+i]
		at := s.k.Now() + busy
		th.phase = phaseAdmit
		s.k.AtArg(at, fireThreadEvent, th)
		if s.opt.Record {
			th.res.Slices = append(th.res.Slices, Slice{From: s.k.Now(), To: at, Kind: Startup})
		}
	}
	s.main.next += batch
	s.main.cpuUsed += busy
	s.k.AtArg(s.k.Now()+busy, fireMainDone, s)
}

// mainDone releases the main thread's CPU slot after a spawn turn.
func (s *Sim) mainDone() {
	s.free++
	if s.main.next < len(s.threads) {
		s.ready.Add(&s.main)
	}
	s.schedule()
}

// dispatchAll models a pool dispatcher submitting every task serially.
// The admission order slice and its sorter are reused across calls.
func (s *Sim) dispatchAll() {
	order := append(s.sorter.ths[:0], s.threads...)
	s.sorter.ths = order
	if s.opt.LongestFirst {
		sort.Stable(&s.sorter)
	}
	// Task j is issued after j prior dispatches: the first fork/submit
	// waits nothing, matching Eq. 4's (j-1) x T_Block.
	var busy time.Duration
	for _, th := range order {
		at := s.k.Now() + busy
		th.phase = phaseAdmit
		s.k.AtArg(at, fireThreadEvent, th)
		if s.opt.Record && busy > 0 {
			th.res.Slices = append(th.res.Slices, Slice{From: s.k.Now(), To: at, Kind: Wait})
		}
		busy += s.jittered(s.opt.SpawnCost)
	}
}

// admit makes a spawned thread runnable, subject to worker availability.
// Per-task ExtraStartup elapses first, off the spawner's critical path.
func (s *Sim) admit(th *thread) {
	if s.opt.ExtraStartup > 0 && !th.extraDone {
		th.extraDone = true
		extra := s.jittered(s.opt.ExtraStartup)
		from := s.k.Now()
		if s.opt.Record {
			th.res.Slices = append(th.res.Slices, Slice{From: from, To: from + extra, Kind: Startup})
		}
		th.phase = phaseAdmitReady
		s.k.AtArg(from+extra, fireThreadEvent, th)
		return
	}
	s.admitReady(th)
}

func (s *Sim) admitReady(th *thread) {
	th.res.SpawnedAt = s.k.Now()
	if s.workers > 0 {
		s.workers--
		s.makeReady(th)
		s.schedule()
		return
	}
	th.state = stWaitWorker
	th.waitFrom = s.k.Now()
	s.waitQ = append(s.waitQ, th)
}

func (s *Sim) makeReady(th *thread) {
	th.state = stReady
	th.waitFrom = s.k.Now()
	s.ready.Add(th)
}

// schedule fills free CPU slots from the ready queue.
func (s *Sim) schedule() {
	for s.free > 0 && s.ready.Len() > 0 {
		e := s.ready.PopMin()
		s.free--
		switch ent := e.(type) {
		case *thread:
			s.startSlice(ent)
		case *mainEnt:
			s.runMain()
		}
	}
}

// cpuChain returns the contiguous on-CPU time from the thread's current
// position to the next blocking segment or the end, plus whether a block
// or the end follows.
func (t *thread) cpuChain() (d time.Duration, nextBlock bool, done bool) {
	i, rem := t.segIdx, t.segRem
	for i < len(t.segments) {
		seg := t.segments[i]
		if seg.Kind.Blocking() {
			return d, true, false
		}
		d += rem
		i++
		if i < len(t.segments) {
			rem = t.segments[i].Dur
		}
	}
	return d, false, true
}

// consumeCPU advances the thread's position by d of on-CPU time across CPU
// segments.
func (t *thread) consumeCPU(d time.Duration) {
	for d > 0 {
		if t.segRem > d {
			t.segRem -= d
			return
		}
		d -= t.segRem
		t.segIdx++
		if t.segIdx >= len(t.segments) {
			t.segRem = 0
			return
		}
		t.segRem = t.segments[t.segIdx].Dur
	}
}

func (s *Sim) startSlice(th *thread) {
	now := s.k.Now()
	if th.res.FirstRun < 0 {
		th.res.FirstRun = now
	}
	if s.opt.Record && now > th.waitFrom {
		th.res.Slices = append(th.res.Slices, Slice{From: th.waitFrom, To: now, Kind: Wait})
	}
	th.state = stRunning

	chain, nextBlock, _ := th.cpuChain()
	runFor := chain
	preempt := false
	if runFor > s.opt.Quantum {
		runFor = s.opt.Quantum
		preempt = true
	}
	syscall := time.Duration(0)
	if !preempt && nextBlock {
		syscall = s.opt.SyscallOverhead
	}
	total := runFor + syscall
	end := now + total
	th.phase = phaseEndSlice
	th.pendRan = runFor
	th.pendSys = syscall
	th.pendPreempt = preempt
	th.pendBlock = nextBlock
	s.k.AtArg(end, fireThreadEvent, th)
	if s.opt.Record && total > 0 {
		th.res.Slices = append(th.res.Slices, Slice{From: now, To: end, Kind: Run})
	}
}

func (s *Sim) endSlice(th *thread) {
	ran, syscall := th.pendRan, th.pendSys
	preempt, nextBlock := th.pendPreempt, th.pendBlock
	th.cpuUsed += ran + syscall
	th.res.CPUTime += ran + syscall
	th.consumeCPU(ran)
	s.free++

	switch {
	case preempt:
		s.makeReady(th)
	case nextBlock:
		seg := th.segments[th.segIdx]
		th.state = stBlocked
		from := s.k.Now()
		until := from + seg.Dur
		th.res.BlockTime += seg.Dur
		if s.opt.Record {
			th.res.Slices = append(th.res.Slices, Slice{From: from, To: until, Kind: Block})
		}
		th.phase = phaseUnblock
		s.k.AtArg(until, fireThreadEvent, th)
	default:
		s.finish(th)
	}
	s.schedule()
}

func (s *Sim) unblock(th *thread) {
	th.segIdx++
	if th.segIdx >= len(th.segments) {
		// Block was the final segment: the thread exits as the syscall
		// returns (the brief GIL reacquisition to unwind is part of the
		// engine/predictor model gap, not simulated).
		s.finish(th)
		s.schedule()
		return
	}
	th.segRem = th.segments[th.segIdx].Dur
	s.makeReady(th)
	s.schedule()
}

func (s *Sim) finish(th *thread) {
	if th.state == stDone {
		return
	}
	th.state = stDone
	th.res.Finish = s.k.Now()
	s.alive--
	if s.res.Total < th.res.Finish {
		s.res.Total = th.res.Finish
	}
	s.res.CPUBusy += th.res.CPUTime
	// A finished task's pool worker frees up for the wait queue.
	if s.opt.Spawn == Dispatcher {
		s.workers++
		s.releaseWorker()
	}
}

// releaseWorker admits the next waiting task if a worker is free. The wait
// queue is consumed through waitHead so the buffer is reused, not resliced
// away.
func (s *Sim) releaseWorker() {
	for s.workers > 0 && s.waitHead < len(s.waitQ) {
		th := s.waitQ[s.waitHead]
		s.waitQ[s.waitHead] = nil
		s.waitHead++
		s.workers--
		if s.opt.Record && s.k.Now() > th.waitFrom {
			th.res.Slices = append(th.res.Slices, Slice{From: th.waitFrom, To: s.k.Now(), Kind: Wait})
		}
		s.makeReady(th)
	}
	if s.waitHead == len(s.waitQ) {
		s.waitQ = s.waitQ[:0]
		s.waitHead = 0
	}
}
