// Package gil simulates how a set of functions executes as threads inside
// one OS process, under three runtime regimes:
//
//   - CPython/Node.js pseudo-parallelism: one global interpreter lock, the
//     holder is asked to drop it after a switch interval when others wait,
//     and blocking syscalls release it (paper Figure 2, Algorithm 1);
//   - true parallelism over a limited CPU set (Java threads, Figure 18, or
//     GIL-free runtimes, Figure 7);
//   - process pools (ProcessPoolExecutor): warm workers give near-zero
//     startup, a dispatcher admits tasks, and CPU pinning/sharing decides
//     contention (Section 4 "True Parallelism").
//
// One event-driven simulator covers all three because they differ only in
// (a) how many CPU slots exist, (b) how tasks are admitted, and (c) what a
// task admission costs. The white-box Predictor runs this simulator with
// idealized options; the ground-truth engine runs it with fidelity knobs
// (syscall overhead, spawn jitter, main-thread lag) turned on — the gap
// between the two is the prediction error studied in Figure 12.
package gil

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/cfs"
	"chiron/internal/sim"
)

// kernelPool recycles event kernels across Simulate calls. Simulate fully
// drains its kernel before returning, so a Reset hands the next caller a
// pristine kernel that keeps the previous run's heap capacity — the
// allocation that used to dominate short predictions under PGP's search.
var kernelPool = sync.Pool{New: func() interface{} { return sim.New() }}

// SpawnMode selects how threads come into existence.
type SpawnMode int

const (
	// MainThread models CPython Thread.start(): the orchestrator's main
	// thread holds the GIL while cloning, starting SpawnBatch threads per
	// scheduling turn (Algorithm 1 lines 4-5).
	MainThread SpawnMode = iota
	// Dispatcher models a pool executor: a parent process submits tasks
	// serially at SpawnCost each; tasks then wait for a free worker.
	Dispatcher
)

// Options parameterize one simulation.
type Options struct {
	// Procs is the number of CPU slots threads may occupy concurrently:
	// 1 under the GIL, the cpuset size under true parallelism.
	Procs int
	// Quantum is the scheduler switch interval (CPython's 5 ms switch
	// interval, or the CFS slice under true parallelism).
	Quantum time.Duration
	// Spawn selects the admission model.
	Spawn SpawnMode
	// SpawnBatch caps how many threads the main thread starts per turn
	// (MainThread mode only).
	SpawnBatch int
	// SpawnCost is the cost of creating/admitting one thread or task:
	// thread clone time in MainThread mode, dispatch cost in Dispatcher
	// mode.
	SpawnCost time.Duration
	// ExtraStartup is additional per-task initialization that runs after
	// spawn/dispatch completes but off the spawner's critical path: a
	// forked process's interpreter re-initialization. The spawner moves on
	// to the next task while this elapses.
	ExtraStartup time.Duration
	// Workers caps concurrently-admitted tasks in Dispatcher mode (pool
	// size); 0 means unlimited (MainThread mode ignores it).
	Workers int
	// LongestFirst makes the dispatcher admit tasks in descending
	// solo-latency order, Chiron-P's skew mitigation ("long-running
	// functions are started preferentially", Section 6.2).
	LongestFirst bool

	// CPUFactor and IOFactor scale CPU and blocking segment durations;
	// isolation mechanisms (MPK/SFI, Table 1) set them above 1.
	CPUFactor float64
	IOFactor  float64

	// ---- Fidelity knobs (engine only; the Predictor leaves them zero) ----

	// SyscallOverhead is extra on-CPU time charged on entry to every
	// blocking syscall.
	SyscallOverhead time.Duration
	// MainLag delays the first admission (watchdog hand-off).
	MainLag time.Duration
	// JitterPct applies +/- seeded jitter to every spawn cost.
	JitterPct float64
	// Seed drives the deterministic jitter stream.
	Seed int64

	// Record enables per-thread slice timelines (Figure 5 rendering).
	Record bool
}

func (o *Options) normalize() {
	if o.Procs <= 0 {
		o.Procs = 1
	}
	if o.Quantum <= 0 {
		o.Quantum = 5 * time.Millisecond
	}
	if o.SpawnBatch <= 0 {
		o.SpawnBatch = 8
	}
	if o.CPUFactor <= 0 {
		o.CPUFactor = 1
	}
	if o.IOFactor <= 0 {
		o.IOFactor = 1
	}
}

// SliceKind labels a timeline slice.
type SliceKind int

const (
	// Startup covers thread creation / task dispatch.
	Startup SliceKind = iota
	// Run is on-CPU execution.
	Run
	// Block is off-CPU time in a blocking syscall.
	Block
	// Wait is runnable time spent waiting for the GIL/CPU or a pool
	// worker.
	Wait
)

func (k SliceKind) String() string {
	switch k {
	case Startup:
		return "startup"
	case Run:
		return "run"
	case Block:
		return "block"
	case Wait:
		return "wait"
	}
	return "?"
}

// Slice is one span of a thread's timeline.
type Slice struct {
	From, To time.Duration
	Kind     SliceKind
}

// ThreadResult reports one function-thread's fate.
type ThreadResult struct {
	Name string
	// SpawnedAt is when creation/dispatch of the thread completed.
	SpawnedAt time.Duration
	// FirstRun is when the thread first got a CPU slot (-1 if never ran).
	FirstRun time.Duration
	// Finish is when the thread's last segment completed.
	Finish time.Duration
	// CPUTime and BlockTime are totals actually consumed.
	CPUTime   time.Duration
	BlockTime time.Duration
	// Slices is the recorded timeline (only when Options.Record).
	Slices []Slice
}

// Result is the outcome of one simulation.
type Result struct {
	// Total is the makespan: the time at which every thread has finished,
	// measured from process start (this is Algorithm 1's T_exec).
	Total time.Duration
	// Threads are per-function results in input order.
	Threads []ThreadResult
	// CPUBusy is the total on-CPU time across all threads; with Total and
	// Procs it yields utilization.
	CPUBusy time.Duration
}

type threadState int

const (
	stSpawning threadState = iota
	stWaitWorker
	stReady
	stRunning
	stBlocked
	stDone
)

type thread struct {
	idx       int
	spec      *behavior.Spec
	segments  []behavior.Segment // duration-scaled copy
	segIdx    int
	segRem    time.Duration
	cpuUsed   time.Duration
	state     threadState
	extraDone bool
	res       *ThreadResult

	waitFrom time.Duration // when the current Ready/WaitWorker span began
}

// VRuntime implements cfs.Entity.
func (t *thread) VRuntime() time.Duration { return t.cpuUsed }

// mainEnt is the orchestrator's main thread: it competes for the CPU
// through the same CFS queue as function threads (so under the GIL, thread
// creation is interleaved with function execution exactly as in Figure 2)
// and spends its slices cloning the next batch of threads.
type mainEnt struct {
	cpuUsed time.Duration
	next    int // index of the next thread to spawn
}

// VRuntime implements cfs.Entity.
func (m *mainEnt) VRuntime() time.Duration { return m.cpuUsed }

type simulator struct {
	opt     Options
	k       *sim.Kernel
	rng     *rand.Rand
	ready   cfs.Queue
	waitQ   []*thread // Dispatcher mode: admitted but no worker yet
	free    int       // free CPU slots
	workers int       // free pool workers (Dispatcher mode)
	threads []*thread
	main    *mainEnt
	alive   int
	res     *Result
}

// Simulate runs the given function set to completion and returns per-thread
// results. It never touches the wall clock and is fully deterministic for a
// given (specs, Options) pair.
func Simulate(specs []*behavior.Spec, opt Options) *Result {
	opt.normalize()
	k := kernelPool.Get().(*sim.Kernel)
	defer func() {
		k.Reset()
		kernelPool.Put(k)
	}()
	s := &simulator{
		opt:     opt,
		k:       k,
		rng:     rand.New(rand.NewSource(opt.Seed)),
		free:    opt.Procs,
		workers: opt.Workers,
		res:     &Result{Threads: make([]ThreadResult, len(specs))},
	}
	if opt.Workers <= 0 {
		s.workers = len(specs) + 1 // effectively unlimited
	}
	s.threads = make([]*thread, len(specs))
	for i, sp := range specs {
		th := &thread{idx: i, spec: sp, res: &s.res.Threads[i]}
		th.res.Name = sp.Name
		th.res.FirstRun = -1
		th.segments = make([]behavior.Segment, len(sp.Segments))
		for j, seg := range sp.Segments {
			f := opt.CPUFactor
			if seg.Kind.Blocking() {
				f = opt.IOFactor
			}
			seg.Dur = time.Duration(float64(seg.Dur) * f)
			if seg.Dur <= 0 {
				seg.Dur = time.Nanosecond
			}
			th.segments[j] = seg
		}
		th.segRem = th.segments[0].Dur
		s.threads[i] = th
	}
	s.alive = len(specs)

	if len(specs) == 0 {
		return s.res
	}

	switch opt.Spawn {
	case Dispatcher:
		s.k.At(opt.MainLag, s.dispatchAll)
	default:
		s.main = &mainEnt{}
		s.k.At(opt.MainLag, func() {
			s.ready.Add(s.main)
			s.schedule()
		})
	}

	s.k.SetBudget(50_000_000)
	if err := s.k.Run(); err != nil {
		panic("gil: simulation did not converge: " + err.Error())
	}
	return s.res
}

// jittered returns d with +/- JitterPct deterministic noise.
func (s *simulator) jittered(d time.Duration) time.Duration {
	if s.opt.JitterPct <= 0 || d <= 0 {
		return d
	}
	u := s.rng.Float64()*2 - 1
	out := time.Duration(float64(d) * (1 + s.opt.JitterPct*u))
	if out <= 0 {
		out = time.Nanosecond
	}
	return out
}

// runMain executes one of the main thread's scheduling turns: while holding
// a CPU slot it clones the next batch of threads, each at SpawnCost
// (Algorithm 1 lines 4-5: "the same amount of functions is started in each
// interval"). If spawns remain afterwards, the main thread re-enters the
// run queue and competes on vruntime like everyone else.
func (s *simulator) runMain() {
	batch := s.opt.SpawnBatch
	if rem := len(s.threads) - s.main.next; rem < batch {
		batch = rem
	}
	var busy time.Duration
	for i := 0; i < batch; i++ {
		busy += s.jittered(s.opt.SpawnCost)
		th := s.threads[s.main.next+i]
		at := s.k.Now() + busy
		s.k.At(at, func() { s.admit(th) })
		if s.opt.Record {
			th.res.Slices = append(th.res.Slices, Slice{From: s.k.Now(), To: at, Kind: Startup})
		}
	}
	s.main.next += batch
	s.main.cpuUsed += busy
	s.k.At(s.k.Now()+busy, func() {
		s.free++
		if s.main.next < len(s.threads) {
			s.ready.Add(s.main)
		}
		s.schedule()
	})
}

// dispatchAll models a pool dispatcher submitting every task serially.
func (s *simulator) dispatchAll() {
	order := make([]*thread, len(s.threads))
	copy(order, s.threads)
	if s.opt.LongestFirst {
		sort.SliceStable(order, func(a, b int) bool {
			return order[a].spec.SoloLatency() > order[b].spec.SoloLatency()
		})
	}
	// Task j is issued after j prior dispatches: the first fork/submit
	// waits nothing, matching Eq. 4's (j-1) x T_Block.
	var busy time.Duration
	for _, th := range order {
		th := th
		at := s.k.Now() + busy
		s.k.At(at, func() { s.admit(th) })
		if s.opt.Record && busy > 0 {
			th.res.Slices = append(th.res.Slices, Slice{From: s.k.Now(), To: at, Kind: Wait})
		}
		busy += s.jittered(s.opt.SpawnCost)
	}
}

// admit makes a spawned thread runnable, subject to worker availability.
// Per-task ExtraStartup elapses first, off the spawner's critical path.
func (s *simulator) admit(th *thread) {
	if s.opt.ExtraStartup > 0 && !th.extraDone {
		th.extraDone = true
		extra := s.jittered(s.opt.ExtraStartup)
		from := s.k.Now()
		if s.opt.Record {
			th.res.Slices = append(th.res.Slices, Slice{From: from, To: from + extra, Kind: Startup})
		}
		s.k.At(from+extra, func() { s.admitReady(th) })
		return
	}
	s.admitReady(th)
}

func (s *simulator) admitReady(th *thread) {
	th.res.SpawnedAt = s.k.Now()
	if s.workers > 0 {
		s.workers--
		s.makeReady(th)
		s.schedule()
		return
	}
	th.state = stWaitWorker
	th.waitFrom = s.k.Now()
	s.waitQ = append(s.waitQ, th)
}

func (s *simulator) makeReady(th *thread) {
	th.state = stReady
	th.waitFrom = s.k.Now()
	s.ready.Add(th)
}

// schedule fills free CPU slots from the ready queue.
func (s *simulator) schedule() {
	for s.free > 0 && s.ready.Len() > 0 {
		e := s.ready.PopMin()
		s.free--
		switch ent := e.(type) {
		case *thread:
			s.startSlice(ent)
		case *mainEnt:
			s.runMain()
		}
	}
}

// cpuChain returns the contiguous on-CPU time from the thread's current
// position to the next blocking segment or the end, plus whether a block
// or the end follows.
func (t *thread) cpuChain() (d time.Duration, nextBlock bool, done bool) {
	i, rem := t.segIdx, t.segRem
	for i < len(t.segments) {
		seg := t.segments[i]
		if seg.Kind.Blocking() {
			return d, true, false
		}
		d += rem
		i++
		if i < len(t.segments) {
			rem = t.segments[i].Dur
		}
	}
	return d, false, true
}

// consumeCPU advances the thread's position by d of on-CPU time across CPU
// segments.
func (t *thread) consumeCPU(d time.Duration) {
	for d > 0 {
		if t.segRem > d {
			t.segRem -= d
			return
		}
		d -= t.segRem
		t.segIdx++
		if t.segIdx >= len(t.segments) {
			t.segRem = 0
			return
		}
		t.segRem = t.segments[t.segIdx].Dur
	}
}

func (s *simulator) startSlice(th *thread) {
	now := s.k.Now()
	if th.res.FirstRun < 0 {
		th.res.FirstRun = now
	}
	if s.opt.Record && now > th.waitFrom {
		th.res.Slices = append(th.res.Slices, Slice{From: th.waitFrom, To: now, Kind: Wait})
	}
	th.state = stRunning

	chain, nextBlock, _ := th.cpuChain()
	runFor := chain
	preempt := false
	if runFor > s.opt.Quantum {
		runFor = s.opt.Quantum
		preempt = true
	}
	syscall := time.Duration(0)
	if !preempt && nextBlock {
		syscall = s.opt.SyscallOverhead
	}
	total := runFor + syscall
	end := now + total
	s.k.At(end, func() { s.endSlice(th, runFor, syscall, preempt, nextBlock) })
	if s.opt.Record && total > 0 {
		th.res.Slices = append(th.res.Slices, Slice{From: now, To: end, Kind: Run})
	}
}

func (s *simulator) endSlice(th *thread, ran, syscall time.Duration, preempt, nextBlock bool) {
	th.cpuUsed += ran + syscall
	th.res.CPUTime += ran + syscall
	th.consumeCPU(ran)
	s.free++

	switch {
	case preempt:
		s.makeReady(th)
	case nextBlock:
		seg := th.segments[th.segIdx]
		th.state = stBlocked
		from := s.k.Now()
		until := from + seg.Dur
		th.res.BlockTime += seg.Dur
		if s.opt.Record {
			th.res.Slices = append(th.res.Slices, Slice{From: from, To: until, Kind: Block})
		}
		s.k.At(until, func() { s.unblock(th) })
	default:
		s.finish(th)
	}
	s.schedule()
}

func (s *simulator) unblock(th *thread) {
	th.segIdx++
	if th.segIdx >= len(th.segments) {
		// Block was the final segment: the thread exits as the syscall
		// returns (the brief GIL reacquisition to unwind is part of the
		// engine/predictor model gap, not simulated).
		s.finish(th)
		s.schedule()
		return
	}
	th.segRem = th.segments[th.segIdx].Dur
	s.makeReady(th)
	s.schedule()
}

func (s *simulator) finish(th *thread) {
	if th.state == stDone {
		return
	}
	th.state = stDone
	th.res.Finish = s.k.Now()
	s.alive--
	if s.res.Total < th.res.Finish {
		s.res.Total = th.res.Finish
	}
	s.res.CPUBusy += th.res.CPUTime
	// A finished task's pool worker frees up for the wait queue.
	if s.opt.Spawn == Dispatcher {
		s.workers++
		s.releaseWorker()
	}
}

// releaseWorker admits the next waiting task if a worker is free.
func (s *simulator) releaseWorker() {
	for s.workers > 0 && len(s.waitQ) > 0 {
		th := s.waitQ[0]
		s.waitQ = s.waitQ[1:]
		s.workers--
		if s.opt.Record && s.k.Now() > th.waitFrom {
			th.res.Slices = append(th.res.Slices, Slice{From: th.waitFrom, To: s.k.Now(), Kind: Wait})
		}
		s.makeReady(th)
	}
}
