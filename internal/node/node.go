// Package node models worker nodes and the packing of sandboxes onto them.
//
// The paper's throughput metric (Figure 16) is "the normalized maximum
// RPS in a worker node": how many copies of a workflow's full sandbox set
// fit into one node's cores and DRAM, divided by the end-to-end latency.
// This package supplies the fitting; package metrics does the division.
package node

import (
	"fmt"
	"math"
	"sort"

	"chiron/internal/model"
	"chiron/internal/sandbox"
)

// Node is one worker's capacity.
type Node struct {
	Cores int
	MemMB float64
}

// FromConstants returns the testbed worker of Table 2.
func FromConstants(c model.Constants) Node {
	return Node{Cores: c.NodeCores, MemMB: c.NodeMemMB}
}

// Demand aggregates a deployment's per-instance resource footprint.
type Demand struct {
	CPUs  int
	MemMB float64
	// Sandboxes is how many containers one instance comprises.
	Sandboxes int
}

// DemandOf sums the footprint of one instance (one deployed copy) of a
// workflow: all its sandboxes.
func DemandOf(c model.Constants, sbs []*sandbox.Sandbox) Demand {
	var d Demand
	for _, s := range sbs {
		d.CPUs += s.CPUs
		d.MemMB += s.MemoryMB(c)
		d.Sandboxes++
	}
	return d
}

// MaxInstances returns how many whole instances of demand d fit on the
// node: the binding resource decides (Observation 4: one-to-one is
// memory-bound long before it is CPU-bound).
func (n Node) MaxInstances(d Demand) int {
	if d.CPUs <= 0 || d.MemMB <= 0 {
		return 0
	}
	byCPU := n.Cores / d.CPUs
	byMem := int(math.Floor(n.MemMB / d.MemMB))
	if byMem < byCPU {
		return byMem
	}
	return byCPU
}

// BindingResource names which resource caps MaxInstances ("cpu" or
// "memory"), for reporting.
func (n Node) BindingResource(d Demand) string {
	if d.CPUs <= 0 || d.MemMB <= 0 {
		return "none"
	}
	byCPU := n.Cores / d.CPUs
	byMem := int(math.Floor(n.MemMB / d.MemMB))
	if byMem < byCPU {
		return "memory"
	}
	return "cpu"
}

// Cluster is a set of worker nodes.
type Cluster struct {
	Nodes []Node
}

// Uniform returns a cluster of n identical nodes (the paper's 8-node
// testbed).
func Uniform(n int, spec Node) Cluster {
	c := Cluster{Nodes: make([]Node, n)}
	for i := range c.Nodes {
		c.Nodes[i] = spec
	}
	return c
}

// Placement maps sandbox index -> node index.
type Placement []int

// Place assigns sandboxes to nodes first-fit-decreasing by CPU (then
// memory), respecting both capacities. It returns an error when the
// cluster cannot hold them.
func (c Cluster) Place(con model.Constants, sbs []*sandbox.Sandbox) (Placement, error) {
	type free struct {
		cores int
		mem   float64
	}
	rem := make([]free, len(c.Nodes))
	for i, n := range c.Nodes {
		rem[i] = free{cores: n.Cores, mem: n.MemMB}
	}
	order := make([]int, len(sbs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := sbs[order[a]], sbs[order[b]]
		if sa.CPUs != sb.CPUs {
			return sa.CPUs > sb.CPUs
		}
		return sa.MemoryMB(con) > sb.MemoryMB(con)
	})
	place := make(Placement, len(sbs))
	for _, i := range order {
		s := sbs[i]
		mem := s.MemoryMB(con)
		placed := false
		for j := range rem {
			if rem[j].cores >= s.CPUs && rem[j].mem >= mem {
				rem[j].cores -= s.CPUs
				rem[j].mem -= mem
				place[i] = j
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("node: sandbox %d (%d CPUs, %.1f MB) does not fit in the cluster", i, s.CPUs, mem)
		}
	}
	return place, nil
}
