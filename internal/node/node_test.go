package node

import (
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/model"
	"chiron/internal/sandbox"
)

func sb(cpus int, fnMem float64) *sandbox.Sandbox {
	f := &behavior.Spec{
		Name: "f", Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: time.Millisecond}},
		MemMB:    fnMem,
	}
	s := sandbox.ForSingle(f, cpus)
	return s
}

func TestFromConstants(t *testing.T) {
	c := model.Default()
	n := FromConstants(c)
	if n.Cores != 40 || n.MemMB != 128*1024 {
		t.Fatalf("testbed node = %+v, want Table 2's 40 cores / 128GB", n)
	}
}

func TestMaxInstancesCPUBound(t *testing.T) {
	c := model.Default()
	n := FromConstants(c)
	d := DemandOf(c, []*sandbox.Sandbox{sb(4, 1)})
	if got := n.MaxInstances(d); got != 10 {
		t.Fatalf("40 cores / 4 CPUs = %d instances, want 10", got)
	}
	if n.BindingResource(d) != "cpu" {
		t.Fatalf("binding resource = %s, want cpu", n.BindingResource(d))
	}
}

func TestMaxInstancesMemoryBound(t *testing.T) {
	c := model.Default()
	n := Node{Cores: 1000, MemMB: 1000}
	d := DemandOf(c, []*sandbox.Sandbox{sb(1, 70)}) // ~100MB each
	got := n.MaxInstances(d)
	if got < 9 || got > 10 {
		t.Fatalf("memory-bound instances = %d, want ~10", got)
	}
	if n.BindingResource(d) != "memory" {
		t.Fatalf("binding resource = %s, want memory", n.BindingResource(d))
	}
}

func TestMaxInstancesDegenerate(t *testing.T) {
	n := Node{Cores: 4, MemMB: 100}
	if n.MaxInstances(Demand{}) != 0 {
		t.Fatal("zero demand should fit zero instances (guard against div-by-zero)")
	}
	if n.BindingResource(Demand{}) != "none" {
		t.Fatal("zero demand binding resource should be none")
	}
}

func TestDemandAggregates(t *testing.T) {
	c := model.Default()
	d := DemandOf(c, []*sandbox.Sandbox{sb(2, 5), sb(3, 1)})
	if d.CPUs != 5 || d.Sandboxes != 2 {
		t.Fatalf("demand = %+v", d)
	}
	if d.MemMB <= 2*c.SandboxRuntimeMB {
		t.Fatalf("memory %f should include both runtimes", d.MemMB)
	}
}

func TestPlaceFirstFitDecreasing(t *testing.T) {
	c := model.Default()
	cl := Uniform(2, Node{Cores: 4, MemMB: 1024})
	sbs := []*sandbox.Sandbox{sb(1, 1), sb(4, 1), sb(3, 1)}
	place, err := cl.Place(c, sbs)
	if err != nil {
		t.Fatal(err)
	}
	// The 4-CPU sandbox fills node 0; the 3-CPU goes to node 1; the 1-CPU
	// fits beside it on node 1.
	if place[1] != 0 {
		t.Errorf("4-CPU sandbox on node %d, want 0", place[1])
	}
	if place[2] != 1 {
		t.Errorf("3-CPU sandbox on node %d, want 1", place[2])
	}
	if place[0] != 1 {
		t.Errorf("1-CPU sandbox on node %d, want 1 (remaining core)", place[0])
	}
}

func TestPlaceOverflowErrors(t *testing.T) {
	c := model.Default()
	cl := Uniform(1, Node{Cores: 2, MemMB: 1024})
	if _, err := cl.Place(c, []*sandbox.Sandbox{sb(3, 1)}); err == nil {
		t.Fatal("oversized sandbox placed without error")
	}
}

func TestPlaceRespectsMemory(t *testing.T) {
	c := model.Default()
	cl := Uniform(1, Node{Cores: 100, MemMB: 40})
	// One sandbox (~31MB) fits; two exceed 40MB.
	if _, err := cl.Place(c, []*sandbox.Sandbox{sb(1, 1)}); err != nil {
		t.Fatalf("single sandbox should fit: %v", err)
	}
	if _, err := cl.Place(c, []*sandbox.Sandbox{sb(1, 1), sb(1, 1)}); err == nil {
		t.Fatal("memory overflow not detected")
	}
}
