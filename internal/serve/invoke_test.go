package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"chiron/internal/dag"
	"chiron/internal/wrap"
)

// TestEvictAsyncSparesInflight pins the eviction rule down at the unit
// level: only *completed* results (closed done channel) may be trimmed,
// oldest first, and submission order is preserved among survivors.
func TestEvictAsyncSparesInflight(t *testing.T) {
	a := testApp(t, Options{})
	old := maxAsyncResults
	maxAsyncResults = 3
	defer func() { maxAsyncResults = old }()

	mk := func(id string, completed bool) {
		ar := &asyncResult{ID: id, done: make(chan struct{})}
		if completed {
			close(ar.done)
		}
		a.results[id] = ar
		a.resOrder = append(a.resOrder, id)
	}
	mk("r1", true)
	mk("r2", false)
	mk("r3", true)
	mk("r4", false)
	mk("r5", true)

	a.resMu.Lock()
	a.evictAsyncLocked()
	a.resMu.Unlock()

	// Excess was 2: the two oldest completed entries (r1, r3) go; the
	// in-flight r2/r4 survive even though they are older than r5.
	want := []string{"r2", "r4", "r5"}
	if len(a.resOrder) != len(want) {
		t.Fatalf("ring after eviction: %v, want %v", a.resOrder, want)
	}
	for i, id := range want {
		if a.resOrder[i] != id {
			t.Fatalf("ring after eviction: %v, want %v", a.resOrder, want)
		}
	}
	if _, _, err := a.AsyncResult("r1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("evicted r1 still resolvable: %v", err)
	}
	if _, done, err := a.AsyncResult("r2"); err != nil || done {
		t.Fatalf("in-flight r2: done=%v err=%v, want pollable and pending", done, err)
	}
}

// TestAsyncInflightNeverEvicted is the end-to-end regression test for
// the eviction bug: with the result cap at 1 and three detached
// invocations serialized behind one execution slot, polling the
// still-running first request must not 404 even though later
// submissions pushed the ring past its bound.
func TestAsyncInflightNeverEvicted(t *testing.T) {
	old := maxAsyncResults
	maxAsyncResults = 1
	defer func() { maxAsyncResults = old }()

	a := testApp(t, Options{Scale: 0.5, MaxConcurrency: 1})
	if _, err := a.Register(testWorkflow(40 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", 20*time.Second)

	ids := make([]string, 3)
	for i := range ids {
		id, err := a.InvokeAsync("wf-test")
		if err != nil {
			t.Fatalf("async submit %d: %v", i, err)
		}
		ids[i] = id
	}
	// Every submission ran eviction, but all three entries are (or were)
	// in flight: none may have been dropped.
	for _, id := range ids {
		if _, _, err := a.AsyncResult(id); err != nil {
			t.Fatalf("poll %s while in flight: %v", id, err)
		}
	}
	for _, id := range ids {
		waitFor(t, func() bool {
			_, done, err := a.AsyncResult(id)
			return err == nil && done
		})
	}
	// The next submission trims the now-completed backlog to the cap.
	id4, err := a.InvokeAsync("wf-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.AsyncResult(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("completed %s should have been evicted: %v", ids[0], err)
	}
	waitFor(t, func() bool {
		_, done, err := a.AsyncResult(id4)
		return err == nil && done
	})
}

// TestPlacementErrClassification: the gateway classifies plan/behaviour
// mismatches by sentinel (wrap.ErrPlacement, dag.ErrInvalid), not by
// matching "wrap: "/"dag: " substrings in error text.
func TestPlacementErrClassification(t *testing.T) {
	if !isPlacementErr(fmt.Errorf("live: stage 2: %w", wrap.ErrPlacement)) {
		t.Error("wrapped wrap.ErrPlacement not classified as placement error")
	}
	if !isPlacementErr(fmt.Errorf("%w: graph has a cycle", dag.ErrInvalid)) {
		t.Error("wrapped dag.ErrInvalid not classified as placement error")
	}
	if isPlacementErr(errors.New("wrap: lookalike text without the sentinel")) {
		t.Error("error-text imposter classified as placement error")
	}
	if isPlacementErr(context.DeadlineExceeded) {
		t.Error("deadline classified as placement error")
	}

	// The real validators produce sentinel-carrying errors end-to-end.
	w := testWorkflow(time.Millisecond)
	if err := (&wrap.Plan{Workflow: w.Name}).Validate(w); !errors.Is(err, wrap.ErrPlacement) {
		t.Errorf("wrap.Plan.Validate error %v does not carry wrap.ErrPlacement", err)
	}
	if err := (&dag.Workflow{}).Validate(); !errors.Is(err, dag.ErrInvalid) {
		t.Errorf("dag.Workflow.Validate error %v does not carry dag.ErrInvalid", err)
	}
}
