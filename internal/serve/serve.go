// Package serve is the online serving plane: it turns the repo's
// one-shot planners and executors into a long-running daemon
// (cmd/chirond) with a real request path.
//
// The gateway registers workflows (DAG JSON + behaviour specs), plans
// them with PGP (through the shared prediction cache), and serves
// invocations on internal/live. Around that execution core sit the
// three mechanisms that the orchestration papers (Dirigent,
// Archipelago) show dominate end-to-end behaviour at scale:
//
//   - a warm-wrap pool per active plan: keep-alive sandbox instances
//     priced by internal/sandbox ledgers, with cold/warm accounting —
//     under steady load the cold-start counter stops rising;
//   - a bounded admission queue with backpressure: when the estimated
//     queue sojourn (queue-wait + service, the same decomposition as
//     loadgen) would bust the SLO, or the queue is full, the request is
//     rejected with 429 + Retry-After instead of queueing unboundedly;
//   - a background controller that feeds served latencies into
//     internal/adapt and atomically swaps the active wrap.Plan when a
//     re-plan triggers; in-flight requests finish on the plan (and
//     pool) they started with.
//
// All counters, gauges and histograms live in an obs.Registry
// (obs.Default unless overridden), so /metrics is a plain
// Registry.WriteProm.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chiron/internal/adapt"
	"chiron/internal/dag"
	"chiron/internal/model"
	"chiron/internal/obs"
	"chiron/internal/obs/flight"
	"chiron/internal/parallel"
	"chiron/internal/pgp"
	"chiron/internal/workloads"
	"chiron/internal/wrap"
)

// Options configure an App.
type Options struct {
	// Const is the substrate calibration (zero value: model.Default()).
	Const model.Constants
	// Scale multiplies every modelled duration before sleeping, exactly
	// like live.Options.Scale (0 = 1.0). Cold starts scale too.
	Scale float64
	// SLO is the fallback latency target used at plan time when neither
	// the plan request nor the workflow carries one. Zero means
	// "auto": plan latency-optimal first and serve under 2x its
	// prediction.
	SLO time.Duration
	// RequestTimeout bounds one invocation's execution (default 30s).
	RequestTimeout time.Duration
	// MaxConcurrency bounds concurrently executing requests per
	// workflow (default 2*GOMAXPROCS).
	MaxConcurrency int
	// MaxQueue bounds the admission queue per workflow (default 64).
	// Requests beyond it are rejected with ErrOverloaded.
	MaxQueue int
	// KeepAlive is how long an idle warm instance stays resident before
	// the reaper evicts it (default 1 minute).
	KeepAlive time.Duration
	// KeepAliveJitter spreads each parked instance's expiry uniformly in
	// [KeepAlive*(1-j), KeepAlive*(1+j)], so a plan swap's epoch-wide
	// expiry cannot synchronize a cold-boot storm when traffic returns.
	// Zero means the default 0.1; negative disables jitter entirely.
	KeepAliveJitter float64
	// NegCachePolicy is the replacement policy of the negative cache for
	// unknown-workflow lookups (default 2Q: a junk-name flood churns
	// through the probation queue while repeatedly-probed names stay
	// resident). NegCacheCap bounds it (default 1024).
	NegCachePolicy parallel.Policy
	NegCacheCap    int
	// Window, ViolationTrigger, DriftTrigger, BiasAlpha, Cooldown,
	// MinImprovement and RollbackGuard parameterize the internal/adapt
	// controller (zero: adapt's defaults). Cooldown and MinImprovement
	// are the hysteresis knobs; RollbackGuard arms the post-swap
	// regression check.
	Window           int
	ViolationTrigger float64
	DriftTrigger     float64
	BiasAlpha        float64
	Cooldown         int
	MinImprovement   float64
	RollbackGuard    float64
	// PlanHistory is how many retired plan epochs each workflow keeps
	// for rollback (default 4).
	PlanHistory int
	// HedgeQuantile arms request hedging: once a request has been
	// executing for HedgeQuantile x the plan's bias-corrected predicted
	// latency (the adapt controller's EWMA bias x prediction), a second
	// warm instance is leased and the same invocation re-issued on it;
	// the first completion wins and the loser is cancelled. 1.5 hedges
	// requests past ~1.5x the expected latency. Zero disables hedging.
	HedgeQuantile float64
	// HedgeMaxInflight caps concurrent hedge attempts across the whole
	// app (default 64): under a correlated slowdown every request runs
	// past the quantile, and doubling all of them would double the
	// overload instead of cutting the tail.
	HedgeMaxInflight int
	// PGP carries extra planner options (Style, Iso); Const and SLO are
	// always overridden by the serving plane.
	PGP pgp.Options
	// Reg receives all serving metrics (default obs.Default).
	Reg *obs.Registry
	// Flight is the always-on flight recorder both ingress planes record
	// into (default: a fresh flight.New on Reg). Set it explicitly to
	// share one across apps or to tune ring/sampling/SLO-burn options.
	Flight *flight.Flight
}

func (o *Options) defaults() {
	if o.Const.ColdStart == 0 {
		o.Const = model.Default()
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxConcurrency <= 0 {
		o.MaxConcurrency = 2 * runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.KeepAlive <= 0 {
		o.KeepAlive = time.Minute
	}
	if o.KeepAliveJitter == 0 {
		o.KeepAliveJitter = 0.1
	}
	if o.KeepAliveJitter < 0 {
		o.KeepAliveJitter = 0
	}
	if o.PlanHistory <= 0 {
		o.PlanHistory = 4
	}
	if o.HedgeMaxInflight <= 0 {
		o.HedgeMaxInflight = 64
	}
	if o.NegCachePolicy == "" {
		o.NegCachePolicy = parallel.Policy2Q
	}
	if o.NegCacheCap <= 0 {
		o.NegCacheCap = 1024
	}
	if o.Reg == nil {
		o.Reg = obs.Default
	}
	if o.Flight == nil {
		o.Flight = flight.New(flight.Options{Reg: o.Reg})
	}
}

// Typed request-path errors; the HTTP layer maps them to status codes.
var (
	// ErrNotFound: the workflow (or async request) is not registered.
	ErrNotFound = errors.New("serve: not found")
	// ErrNoPlan: the workflow is registered but has no active plan.
	ErrNoPlan = errors.New("serve: workflow has no active plan (POST .../plan first)")
	// ErrStalePlan: the registered behaviour no longer matches the
	// active plan (functions were added/renamed); re-plan.
	ErrStalePlan = errors.New("serve: active plan is stale for the registered behaviour")
	// ErrDraining: the app is shutting down.
	ErrDraining = errors.New("serve: draining")
	// ErrNoHistory: a rollback was requested but the workflow has no
	// retired plan epoch to fall back to.
	ErrNoHistory = errors.New("serve: no prior plan epoch to roll back to")
)

// OverloadError is returned when admission rejects a request; RetryAfter
// is the wall-clock backoff hint surfaced as the Retry-After header.
type OverloadError struct {
	RetryAfter time.Duration
	Reason     string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// appMetrics are the serving plane's registry handles.
type appMetrics struct {
	requests   *obs.Counter
	errors     *obs.Counter
	rejected   *obs.Counter
	inflight   *obs.Gauge
	queued     *obs.Gauge
	latency    *obs.Histogram
	queueWait  *obs.Histogram
	cold       *obs.Counter
	warmHits   *obs.Counter
	warmGauge  *obs.Gauge
	resident   *obs.Gauge
	replans    *obs.Counter
	suppressed *obs.Counter
	rollbacks  *obs.Counter
	bias       *obs.Gauge
	negHits    *obs.Counter

	coldCancelled   *obs.Counter
	deadlineExpired *obs.Counter
	deadlineShed    *obs.Counter
	hedges          *obs.Counter
	hedgeWins       *obs.Counter
	hedgeWasted     *obs.Counter
}

func newAppMetrics(reg *obs.Registry) appMetrics {
	return appMetrics{
		requests:  reg.Counter("chiron_serve_requests_total", "invocations accepted by the gateway"),
		errors:    reg.Counter("chiron_serve_errors_total", "invocations that failed during execution"),
		rejected:  reg.Counter("chiron_serve_rejected_total", "invocations rejected by admission control (HTTP 429)"),
		inflight:  reg.Gauge("chiron_serve_inflight", "invocations currently executing"),
		queued:    reg.Gauge("chiron_serve_queue_depth", "invocations waiting in the admission queue"),
		latency:   reg.Histogram("chiron_serve_latency", "end-to-end served latency (nominal seconds: queue wait + cold start + execution)", nil),
		queueWait: reg.Histogram("chiron_serve_queue_wait", "admission queue wait (nominal seconds)", nil),
		cold:      reg.Counter("chiron_serve_coldstarts_total", "sandbox instances booted cold"),
		warmHits:  reg.Counter("chiron_serve_warmhits_total", "invocations served by a warm instance"),
		warmGauge: reg.Gauge("chiron_serve_warm_instances", "idle warm instances resident across active plans"),
		resident:  reg.Gauge("chiron_serve_resident_mb", "resident memory of live sandbox instances (MB, sandbox ledger pricing)"),
		replans:   reg.Counter("chiron_serve_replans_total", "plan swaps triggered by the adaptive controller"),
		suppressed: reg.Counter("chiron_serve_replans_suppressed_total",
			"re-plan triggers swallowed by hysteresis (cooldown or the min-improvement gate)"),
		rollbacks: reg.Counter("chiron_serve_rollbacks_total",
			"plan epochs restored by rollback (operator endpoint or post-swap regression)"),
		bias: reg.Gauge("chiron_adapt_bias",
			"calibrated observed/predicted latency ratio x1000 (most recently updated controller)"),
		negHits: reg.Counter("chiron_serve_negcache_hits_total",
			"unknown-workflow lookups answered by the negative cache (no registry lock taken)"),
		coldCancelled: reg.Counter("chiron_serve_cold_cancelled_total",
			"cold boots cancelled mid-boot (counted in coldstarts_total but never served)"),
		deadlineExpired: reg.Counter("chiron_serve_deadline_expired_total",
			"requests rejected at admission because their deadline had already passed"),
		deadlineShed: reg.Counter("chiron_serve_deadline_shed_total",
			"queued requests shed at grant time because their deadline passed while waiting"),
		hedges: reg.Counter("chiron_serve_hedges_total",
			"hedge attempts issued (request ran past the hedge quantile and a second instance was leased)"),
		hedgeWins: reg.Counter("chiron_serve_hedge_wins_total",
			"hedged requests where the re-issued attempt finished first"),
		hedgeWasted: reg.Counter("chiron_serve_hedge_wasted_total",
			"hedged requests where the primary finished first (the hedge was duplicate work)"),
	}
}

// App is the serving plane: registered workflows, their active plans and
// pools, and the shared admission/adaptation machinery.
type App struct {
	opt Options
	m   appMetrics

	mu  sync.RWMutex
	wfs map[string]*workflowState

	// byHash is a copy-on-write index from HashName(workflow) to its
	// state, rebuilt on Register under mu. The binary UDP ingress reads
	// it lock-free on every packet (workflows are named by hash on the
	// wire), so a packet flood never touches the registry lock.
	byHash atomic.Pointer[map[uint64]*workflowState]

	// neg is the negative cache for unknown-workflow lookups: names that
	// recently missed the registry, held in a small bounded policy cache
	// (2Q by default) so a junk-name flood evicts per-entry instead of
	// periodically dropping every legitimate negative entry at once.
	// negGen/negMu guard the register/note-miss race: Register bumps the
	// generation and purges under negMu, and a miss noted against a stale
	// generation is discarded — a name can never be poisoned after its
	// registration lands. Lookups that hit the cache touch only the
	// shard lock and return the static canned error (zero allocations).
	neg    *parallel.Cache[string, struct{}]
	negGen atomic.Uint64
	negMu  sync.Mutex

	resMu    sync.Mutex
	results  map[string]*asyncResult
	resOrder []string
	resSeq   uint64

	// drainMu guards the drain state: once draining, track() refuses new
	// work and drained is closed when the last in-flight unit releases.
	// (A WaitGroup cannot express this — Add concurrent with Wait races.)
	drainMu  sync.Mutex
	inflight int
	draining bool
	drained  chan struct{}

	// invSeq hands out invocation ids for requests that arrive without
	// one (HTTP); the UDP plane reuses its wire header's client-chosen
	// id instead. hedgeInflight counts hedge attempts currently running
	// against Options.HedgeMaxInflight.
	invSeq        atomic.Uint64
	hedgeInflight atomic.Int64

	quit    chan struct{}
	reaperW sync.WaitGroup
}

// New builds an App and starts its keep-alive reaper.
func New(opt Options) *App {
	opt.defaults()
	a := &App{
		opt:     opt,
		m:       newAppMetrics(opt.Reg),
		wfs:     map[string]*workflowState{},
		results: map[string]*asyncResult{},
		drained: make(chan struct{}),
		quit:    make(chan struct{}),
		neg:     parallel.NewCachePolicy[string, struct{}](opt.NegCachePolicy, opt.NegCacheCap, 4, parallel.StringHash),
	}
	a.reaperW.Add(1)
	go a.reaper()
	return a
}

// reaper evicts idle warm instances past their keep-alive.
func (a *App) reaper() {
	defer a.reaperW.Done()
	tick := a.opt.KeepAlive / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-a.quit:
			return
		case now := <-t.C:
			a.mu.RLock()
			states := make([]*workflowState, 0, len(a.wfs))
			for _, wf := range a.wfs {
				states = append(states, wf)
			}
			a.mu.RUnlock()
			for _, wf := range states {
				if ps := wf.active.Load(); ps != nil {
					ps.pool.reap(now)
				}
			}
		}
	}
}

// Registry returns the metrics registry backing /metrics.
func (a *App) Registry() *obs.Registry { return a.opt.Reg }

// Flight returns the always-on flight recorder (never nil).
func (a *App) Flight() *flight.Flight { return a.opt.Flight }

// Draining reports whether a drain has begun; /readyz flips to 503 on
// it while /healthz (liveness) stays 200 until the process exits.
func (a *App) Draining() bool {
	a.drainMu.Lock()
	defer a.drainMu.Unlock()
	return a.draining
}

// Shutdown drains: new invocations are refused, in-flight ones (sync and
// async) finish, controllers and the reaper stop. It returns ctx.Err()
// if the context expires before the drain completes.
func (a *App) Shutdown(ctx context.Context) error {
	a.drainMu.Lock()
	already := a.draining
	a.draining = true
	if !already && a.inflight == 0 {
		close(a.drained)
	}
	a.drainMu.Unlock()
	if already {
		return nil
	}
	var err error
	select {
	case <-a.drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	close(a.quit)
	a.reaperW.Wait()
	return err
}

// track registers one unit of in-flight work for the drain barrier.
func (a *App) track() (release func(), err error) {
	if err := a.trackOne(); err != nil {
		return nil, err
	}
	return a.untrack, nil
}

// trackOne is track without the bound release closure: the UDP fast
// path uses it because materializing the method value would allocate on
// every packet. Callers must pair it with exactly one untrack.
func (a *App) trackOne() error {
	a.drainMu.Lock()
	defer a.drainMu.Unlock()
	if a.draining {
		return ErrDraining
	}
	a.inflight++
	return nil
}

// untrack releases one unit; the last one out completes a pending drain.
func (a *App) untrack() {
	a.drainMu.Lock()
	a.inflight--
	if a.draining && a.inflight == 0 {
		close(a.drained)
	}
	a.drainMu.Unlock()
}

// ---- workflow registry ----

// workflowState is one registered workflow's serving state.
type workflowState struct {
	app  *App
	name string

	// behMu guards cur, the latest registered behaviour. It is distinct
	// from mu so the adapt Source can snapshot behaviour while a plan
	// (which holds mu) is in flight.
	behMu sync.Mutex
	cur   *dag.Workflow

	// mu serializes planning, rollback and the controller's
	// Observe/replan cycle. history holds the last K retired plan epochs
	// (most recent last) — the rollback targets.
	mu        sync.Mutex
	ctrl      *adapt.Controller
	planSLO   time.Duration
	history   []*planState
	rollbacks int

	active  atomic.Pointer[planState]
	version atomic.Int64

	// correctedNs is the bias-corrected predicted latency (nominal ns),
	// refreshed by the plan/rollback paths and the controller loop. The
	// hedging fast path reads it lock-free to compute the hedge delay.
	correctedNs atomic.Int64

	adm *admission

	obsCh   chan time.Duration
	obsOnce sync.Once
}

// planState is one immutable active-plan epoch: the plan, the behaviour
// snapshot it was built for, its predicted latency, and the warm pool
// bound to it. Swaps replace the whole value; retired epochs survive in
// workflowState.history so a rollback can restore them.
type planState struct {
	version   int64
	plan      *wrap.Plan
	workflow  *dag.Workflow
	predicted time.Duration
	pool      *warmPool
}

// snapshot returns the current behaviour (shared, read-only by contract:
// the executors never mutate specs).
func (wf *workflowState) snapshot() *dag.Workflow {
	wf.behMu.Lock()
	defer wf.behMu.Unlock()
	return wf.cur
}

// Register adds or updates a workflow's behaviour. Updating behaviour
// does not touch the active plan: requests immediately execute the new
// specs under the old placement, which is exactly the drift the adaptive
// controller watches for. It reports whether the workflow was new.
func (a *App) Register(w *dag.Workflow) (created bool, err error) {
	if err := w.Validate(); err != nil {
		return false, err
	}
	a.mu.Lock()
	wf, ok := a.wfs[w.Name]
	if !ok {
		wf = &workflowState{
			app:   a,
			name:  w.Name,
			obsCh: make(chan time.Duration, 256),
			adm:   newAdmission(a, a.opt.MaxConcurrency, a.opt.MaxQueue, a.opt.Scale),
		}
		a.wfs[w.Name] = wf
		a.rebuildHashIndexLocked()
	}
	a.mu.Unlock()
	if !ok {
		// Invalidate the negative cache after the registry insert. The
		// generation bump and purge are serialized (negMu) against miss
		// notes: a lookup that missed the registry before this insert
		// either notes its miss first (and the purge clears it) or sees
		// the bumped generation and discards the note — the registered
		// name can never be re-poisoned.
		a.negMu.Lock()
		a.negGen.Add(1)
		a.neg.Purge()
		a.negMu.Unlock()
	}
	wf.behMu.Lock()
	wf.cur = w
	wf.behMu.Unlock()
	return !ok, nil
}

// rebuildHashIndexLocked recomputes the copy-on-write hash index.
// Callers hold a.mu.
func (a *App) rebuildHashIndexLocked() {
	m := make(map[uint64]*workflowState, len(a.wfs))
	for n, wf := range a.wfs {
		m[HashName(n)] = wf
	}
	a.byHash.Store(&m)
}

// RegisterBuiltin registers one of the builtin workloads by name: the
// paper's evaluation suite plus the extras (e.g. the TailHeavy hedging
// testbed).
func (a *App) RegisterBuiltin(name string) (created bool, err error) {
	for _, e := range workloads.Suite() {
		if e.Name == name {
			return a.Register(e.Workflow)
		}
	}
	for _, e := range workloads.Extras() {
		if e.Name == name {
			return a.Register(e.Workflow)
		}
	}
	return false, fmt.Errorf("serve: unknown builtin workload %q: %w", name, ErrNotFound)
}

// errUnknownWorkflow is the negative cache's canned miss: a static error
// so the hot reject path does not allocate per lookup.
var errUnknownWorkflow = fmt.Errorf("serve: unknown workflow: %w", ErrNotFound)

func (a *App) workflow(name string) (*workflowState, error) {
	if _, miss := a.neg.Get(name); miss {
		a.m.negHits.Inc()
		return nil, errUnknownWorkflow
	}
	// Snapshot the generation before the registry read: if a
	// registration lands between the read and the note below, it bumps
	// the generation and the note is discarded.
	gen := a.negGen.Load()
	a.mu.RLock()
	wf, ok := a.wfs[name]
	a.mu.RUnlock()
	if !ok {
		a.negMu.Lock()
		if a.negGen.Load() == gen {
			a.neg.Put(name, struct{}{})
		}
		a.negMu.Unlock()
		return nil, fmt.Errorf("serve: workflow %q: %w", name, ErrNotFound)
	}
	return wf, nil
}

// Workflows lists registered workflow names, sorted.
func (a *App) Workflows() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.wfs))
	for n := range a.wfs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---- planning ----

// PlanInfo reports an activated plan.
type PlanInfo struct {
	Workflow  string
	Version   int64
	Predicted time.Duration
	SLO       time.Duration
	Plan      *wrap.Plan
}

// PlanWorkflow profiles the registered behaviour and activates a PGP
// plan. slo zero falls back to the workflow's SLO, then Options.SLO,
// then auto (2x the latency-optimal prediction). The first plan also
// starts the workflow's adaptive controller.
func (a *App) PlanWorkflow(name string, slo time.Duration) (*PlanInfo, error) {
	wf, err := a.workflow(name)
	if err != nil {
		return nil, err
	}
	release, err := a.track()
	if err != nil {
		return nil, err
	}
	defer release()

	wf.mu.Lock()
	defer wf.mu.Unlock()
	beh := wf.snapshot()
	if slo <= 0 {
		slo = beh.SLO
	}
	if slo <= 0 {
		slo = a.opt.SLO
	}
	if slo <= 0 {
		// Auto-SLO: serve under 2x the latency-optimal prediction.
		pred, err := a.latencyOptimalPrediction(beh)
		if err != nil {
			return nil, err
		}
		slo = 2 * pred
	}
	src := func() *dag.Workflow { return wf.snapshot() }
	ctrl, err := adapt.New(src, adapt.Options{
		Const:            a.opt.Const,
		SLO:              slo,
		Window:           a.opt.Window,
		ViolationTrigger: a.opt.ViolationTrigger,
		DriftTrigger:     a.opt.DriftTrigger,
		BiasAlpha:        a.opt.BiasAlpha,
		Cooldown:         a.opt.Cooldown,
		MinImprovement:   a.opt.MinImprovement,
		RollbackGuard:    a.opt.RollbackGuard,
		PGP:              a.opt.PGP,
	})
	if err != nil {
		return nil, err
	}
	wf.ctrl = ctrl
	wf.planSLO = slo
	ps := wf.swapLocked(ctrl)
	wf.adm.setSLO(slo)
	wf.adm.prime(ctrl.Predicted())
	wf.correctedNs.Store(int64(ctrl.Corrected()))
	wf.obsOnce.Do(func() { go wf.observe() })
	return &PlanInfo{
		Workflow:  name,
		Version:   ps.version,
		Predicted: ps.predicted,
		SLO:       slo,
		Plan:      ps.plan,
	}, nil
}

// RollbackPlan restores the workflow's most recently retired plan epoch
// (the ROADMAP rollback item): the adaptive controller adopts the prior
// plan without re-profiling and a fresh epoch is activated from it.
// Returns ErrNoPlan when the workflow was never planned and ErrNoHistory
// when there is nothing to fall back to.
func (a *App) RollbackPlan(name string) (*PlanInfo, error) {
	wf, err := a.workflow(name)
	if err != nil {
		return nil, err
	}
	release, err := a.track()
	if err != nil {
		return nil, err
	}
	defer release()

	wf.mu.Lock()
	defer wf.mu.Unlock()
	if wf.ctrl == nil {
		return nil, ErrNoPlan
	}
	ps, err := wf.rollbackLocked()
	if err != nil {
		return nil, err
	}
	return &PlanInfo{
		Workflow:  name,
		Version:   ps.version,
		Predicted: ps.predicted,
		SLO:       wf.planSLO,
		Plan:      ps.plan,
	}, nil
}

// latencyOptimalPrediction plans without an SLO just to price the
// workflow (the auto-SLO anchor).
func (a *App) latencyOptimalPrediction(w *dag.Workflow) (time.Duration, error) {
	set, err := profileWorkflow(w)
	if err != nil {
		return 0, err
	}
	p := a.opt.PGP
	p.Const = a.opt.Const
	p.SLO = 0
	res, err := pgp.Plan(w, set, p)
	if err != nil {
		return 0, err
	}
	return res.Predicted, nil
}

// swapLocked installs the controller's current plan as a new epoch and
// retires the previous one, keeping it in the rollback history (last K,
// most recent last). Callers hold wf.mu.
func (wf *workflowState) swapLocked(ctrl *adapt.Controller) *planState {
	a := wf.app
	v := wf.version.Add(1)
	ps := &planState{
		version:   v,
		plan:      ctrl.Plan(),
		workflow:  ctrl.Workflow(),
		predicted: ctrl.Predicted(),
		pool:      newWarmPool(a, ctrl.Plan(), ctrl.Workflow(), a.opt.KeepAlive, a.opt.Scale),
	}
	old := wf.active.Swap(ps)
	if old != nil {
		old.pool.retire()
		wf.history = append(wf.history, old)
		if n := len(wf.history); n > a.opt.PlanHistory {
			wf.history = append(wf.history[:0], wf.history[n-a.opt.PlanHistory:]...)
		}
	}
	return ps
}

// rollbackLocked restores the most recently retired plan epoch: the
// controller adopts its plan/behaviour/prediction and a fresh epoch
// (new version, new pool) is activated from it. The displaced epoch
// joins the history, so a second rollback is a redo. Callers hold
// wf.mu and must have a live controller.
func (wf *workflowState) rollbackLocked() (*planState, error) {
	n := len(wf.history)
	if n == 0 {
		return nil, fmt.Errorf("serve: workflow %q: %w", wf.name, ErrNoHistory)
	}
	prev := wf.history[n-1]
	if err := wf.ctrl.Adopt(prev.workflow, prev.plan, prev.predicted); err != nil {
		return nil, err
	}
	wf.history = wf.history[:n-1]
	ps := wf.swapLocked(wf.ctrl)
	wf.adm.prime(prev.predicted)
	wf.correctedNs.Store(int64(wf.ctrl.Corrected()))
	wf.rollbacks++
	wf.app.m.rollbacks.Inc()
	return ps, nil
}

// observe is the workflow's background controller loop: it consumes
// served latencies and acts on the controller's decision — swapping the
// active plan on a re-plan, counting suppressed triggers, and rolling
// back to the prior epoch when the post-swap window regresses. One
// goroutine per workflow, started at first plan.
func (wf *workflowState) observe() {
	a := wf.app
	for {
		select {
		case <-a.quit:
			return
		case lat := <-wf.obsCh:
			wf.mu.Lock()
			ctrl := wf.ctrl
			if ctrl == nil {
				wf.mu.Unlock()
				continue
			}
			act, err := ctrl.Observe(lat)
			if err == nil {
				// Format the annotation only when something happened:
				// Observe runs per request and ActionNone is the common
				// case — an unconditional Sprintf here would put string
				// building on every request's tail.
				var detail string
				if act != adapt.ActionNone {
					win := ctrl.LastWindow()
					detail = fmt.Sprintf("mean=%v violations=%.2f drift=%.2f", win.Mean, win.Violations, win.Drift)
				}
				switch act {
				case adapt.ActionReplanned:
					wf.swapLocked(ctrl)
					wf.adm.prime(ctrl.Predicted())
					a.m.replans.Inc()
					a.opt.Flight.NoteEvent(wf.name, "replanned", detail, true)
				case adapt.ActionSuppressed:
					a.m.suppressed.Inc()
					a.opt.Flight.NoteEvent(wf.name, "suppressed", detail, true)
				case adapt.ActionRollback:
					// A rollback with no history (trimmed away) degrades
					// to keeping the regressed plan; the next trigger
					// will adapt again.
					_, _ = wf.rollbackLocked()
					a.opt.Flight.NoteEvent(wf.name, "rollback", detail, true)
				case adapt.ActionCalibrated:
					// Routine: annotate the timeline but do not retain
					// nearby traces — calibration closes every window.
					a.opt.Flight.NoteEvent(wf.name, "calibrated", detail, false)
				}
				a.m.bias.Set(int64(ctrl.Bias() * 1000))
				wf.correctedNs.Store(int64(ctrl.Corrected()))
			}
			wf.mu.Unlock()
		}
	}
}

// feed hands one served latency to the controller loop without ever
// blocking the request path (excess observations are dropped).
func (wf *workflowState) feed(lat time.Duration) {
	select {
	case wf.obsCh <- lat:
	default:
	}
}

// ---- status ----

// PoolStats is a point-in-time pool snapshot.
type PoolStats struct {
	Warm       int     `json:"warm"`
	Total      int     `json:"total"`
	ResidentMB float64 `json:"resident_mb"`
}

// Status describes one workflow's serving state.
type Status struct {
	Name        string    `json:"name"`
	Stages      int       `json:"stages"`
	Functions   int       `json:"functions"`
	Planned     bool      `json:"planned"`
	PlanVersion int64     `json:"plan_version,omitempty"`
	PredictedMs float64   `json:"predicted_ms,omitempty"`
	SLOMs       float64   `json:"slo_ms,omitempty"`
	Replans     int       `json:"replans"`
	Suppressed  int       `json:"suppressed_replans"`
	Rollbacks   int       `json:"rollbacks"`
	Bias        float64   `json:"bias,omitempty"`
	History     []int64   `json:"plan_history,omitempty"`
	Pool        PoolStats `json:"pool"`
	QueueDepth  int       `json:"queue_depth"`
	QueueCap    int       `json:"queue_cap"`
}

// WorkflowStatus reports a registered workflow's serving state.
func (a *App) WorkflowStatus(name string) (*Status, error) {
	wf, err := a.workflow(name)
	if err != nil {
		return nil, err
	}
	beh := wf.snapshot()
	st := &Status{
		Name:       name,
		Stages:     len(beh.Stages),
		Functions:  beh.NumFunctions(),
		QueueDepth: wf.adm.depth(),
		QueueCap:   wf.adm.maxQueue,
	}
	wf.mu.Lock()
	if wf.ctrl != nil {
		st.Replans = wf.ctrl.Replans()
		st.Suppressed = wf.ctrl.Suppressed()
		st.Bias = wf.ctrl.Bias()
		st.SLOMs = ms(wf.planSLO)
	}
	st.Rollbacks = wf.rollbacks
	for _, h := range wf.history {
		st.History = append(st.History, h.version)
	}
	wf.mu.Unlock()
	if ps := wf.active.Load(); ps != nil {
		st.Planned = true
		st.PlanVersion = ps.version
		st.PredictedMs = ms(ps.predicted)
		st.Pool = ps.pool.stats()
	}
	return st, nil
}

// ActivePlan returns the current plan epoch (plan + metadata), or
// ErrNoPlan.
func (a *App) ActivePlan(name string) (*PlanInfo, error) {
	wf, err := a.workflow(name)
	if err != nil {
		return nil, err
	}
	ps := wf.active.Load()
	if ps == nil {
		return nil, ErrNoPlan
	}
	wf.mu.Lock()
	slo := wf.planSLO
	wf.mu.Unlock()
	return &PlanInfo{
		Workflow:  name,
		Version:   ps.version,
		Predicted: ps.predicted,
		SLO:       slo,
		Plan:      ps.plan,
	}, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
