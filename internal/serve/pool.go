package serve

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"

	"chiron/internal/dag"
	"chiron/internal/wrap"
)

// warmPool manages keep-alive sandbox instances for one plan epoch.
//
// An "instance" is one booted copy of the plan's whole sandbox set (all
// wraps of one request path). Acquiring with no idle instance boots a
// cold one — the modelled container boot, model.Constants.ColdStart,
// slept on the wall clock (scaled) and charged to the request — while a
// warm hit is free, mirroring sandbox.StartLatency. Idle instances are
// evicted after the keep-alive, so the resident-memory gauge (priced by
// the plan's sandbox ledgers) tracks what a node would actually hold.
//
// When the controller swaps plans the old epoch's pool is retired: its
// leased instances finish their requests and are then discarded instead
// of being parked warm, so a swap never drops in-flight work.
//
// Each parked instance gets its own jittered expiry (KeepAliveJitter),
// so the epoch-wide park that follows a plan swap cannot line up every
// instance's eviction on one reaper tick and synchronize a cold-boot
// storm when traffic returns.
type warmPool struct {
	app         *App
	perInstMB   float64
	coldNominal time.Duration
	coldWall    time.Duration
	keepAlive   time.Duration
	jitter      float64

	mu      sync.Mutex
	warm    []time.Time // idle instances, identified only by expiry
	total   int         // warm + leased
	leased  int
	retired bool
}

func newWarmPool(a *App, plan *wrap.Plan, w *dag.Workflow, keepAlive time.Duration, scale float64) *warmPool {
	p := &warmPool{
		app:         a,
		coldNominal: a.opt.Const.ColdStart,
		coldWall:    time.Duration(float64(a.opt.Const.ColdStart) * scale),
		keepAlive:   keepAlive,
		jitter:      a.opt.KeepAliveJitter,
	}
	// Price one instance from the plan's sandbox ledgers. A plan that
	// fails to price (stale behaviour) still serves; it just reports 0.
	if ledgers, err := plan.Ledgers(w); err == nil {
		for _, s := range ledgers {
			p.perInstMB += s.MemoryMB(a.opt.Const)
		}
	}
	return p
}

// acquire leases an instance, booting cold when no warm one is idle.
// The cold boot honours ctx; the returned cold flag tells the caller to
// charge ColdStart to the request.
func (p *warmPool) acquire(ctx context.Context) (cold bool, err error) {
	n, err := p.acquireN(ctx, 1)
	return n > 0, err
}

// acquireN leases n instances at once — the hedging path needs two —
// taking warm instances first and booting the remainder cold under one
// shared boot sleep (the boots proceed concurrently, like n containers
// starting side by side). It returns how many of the leases were cold.
//
// On ctx cancellation mid-boot every lease is handed back: warm takes
// are re-parked, cold boots are unwound from leased/total and the
// resident gauge, and the cold boots that never served are recorded in
// chiron_serve_cold_cancelled_total — the coldstarts counter stays
// monotonic (Prometheus counters must), so capacity accounting
// reconciles as coldstarts - cold_cancelled.
func (p *warmPool) acquireN(ctx context.Context, n int) (cold int, err error) {
	p.mu.Lock()
	warmTake := len(p.warm)
	if warmTake > n {
		warmTake = n
	}
	p.warm = p.warm[:len(p.warm)-warmTake]
	cold = n - warmTake
	p.leased += n
	p.total += cold
	p.mu.Unlock()
	if warmTake > 0 {
		p.app.m.warmHits.Add(uint64(warmTake))
		p.app.m.warmGauge.Add(int64(-warmTake))
	}
	if cold == 0 {
		return 0, nil
	}
	p.app.m.cold.Add(uint64(cold))
	p.app.m.resident.Add(int64(cold) * int64(p.perInstMB))
	if p.coldWall > 0 {
		t := time.NewTimer(p.coldWall)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			now := time.Now()
			p.mu.Lock()
			p.leased -= n
			p.total -= cold
			parked := 0
			if p.retired {
				p.total -= warmTake
			} else {
				for i := 0; i < warmTake; i++ {
					p.warm = append(p.warm, p.expiry(now))
				}
				parked = warmTake
			}
			p.mu.Unlock()
			p.app.m.resident.Add(int64(-cold) * int64(p.perInstMB))
			if parked > 0 {
				p.app.m.warmGauge.Add(int64(parked))
			} else if warmTake > 0 {
				p.app.m.resident.Add(int64(-warmTake) * int64(p.perInstMB))
			}
			p.app.m.coldCancelled.Add(uint64(cold))
			return 0, context.Cause(ctx)
		}
	}
	return cold, nil
}

// expiry computes a parked instance's eviction time: keep-alive with
// per-instance uniform jitter in [1-j, 1+j].
func (p *warmPool) expiry(now time.Time) time.Time {
	ka := p.keepAlive
	if p.jitter > 0 {
		ka = time.Duration(float64(ka) * (1 + p.jitter*(2*rand.Float64()-1)))
	}
	return now.Add(ka)
}

// release returns a leased instance: parked warm on a live pool,
// discarded on a retired one.
func (p *warmPool) release(now time.Time) {
	p.mu.Lock()
	p.leased--
	if p.retired {
		p.total--
		p.mu.Unlock()
		p.app.m.resident.Add(-int64(p.perInstMB))
		return
	}
	p.warm = append(p.warm, p.expiry(now))
	p.mu.Unlock()
	p.app.m.warmGauge.Add(1)
}

// reap evicts idle instances past their jittered expiry.
func (p *warmPool) reap(now time.Time) {
	p.mu.Lock()
	kept := p.warm[:0]
	evicted := 0
	for _, exp := range p.warm {
		if now.After(exp) {
			evicted++
		} else {
			kept = append(kept, exp)
		}
	}
	p.warm = kept
	p.total -= evicted
	p.mu.Unlock()
	if evicted > 0 {
		p.app.m.warmGauge.Add(int64(-evicted))
		p.app.m.resident.Add(int64(-evicted) * int64(p.perInstMB))
	}
}

// retire marks the epoch dead: idle instances are evicted now, leased
// ones are discarded as they release.
func (p *warmPool) retire() {
	p.mu.Lock()
	p.retired = true
	evicted := len(p.warm)
	p.warm = nil
	p.total -= evicted
	p.mu.Unlock()
	if evicted > 0 {
		p.app.m.warmGauge.Add(int64(-evicted))
		p.app.m.resident.Add(int64(-evicted) * int64(p.perInstMB))
	}
}

func (p *warmPool) stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Warm:       len(p.warm),
		Total:      p.total,
		ResidentMB: float64(p.total) * p.perInstMB,
	}
}
