package serve

import (
	"context"
	"errors"
	"fmt"

	"chiron/internal/dag"
	"chiron/internal/obs"
	"chiron/internal/profiler"
	"chiron/internal/wrap"
)

// FnTiming is one function's schedule within a served request
// (milliseconds, nominal time).
type FnTiming struct {
	Name     string  `json:"name"`
	Stage    int     `json:"stage"`
	Sandbox  int     `json:"sandbox"`
	StartMs  float64 `json:"start_ms"`
	FinishMs float64 `json:"finish_ms"`
}

// InvokeResult is one served invocation.
type InvokeResult struct {
	Workflow    string  `json:"workflow"`
	PlanVersion int64   `json:"plan_version"`
	Cold        bool    `json:"cold"`
	ColdStartMs float64 `json:"cold_start_ms,omitempty"`
	QueueWaitMs float64 `json:"queue_wait_ms"`
	E2EMs       float64 `json:"e2e_ms"`
	TotalMs     float64 `json:"total_ms"`
	// FlightTraceID points at the retained flight trace when tail
	// sampling kept this request (GET /debug/flight/trace?id=...).
	FlightTraceID uint64 `json:"flight_trace_id,omitempty"`
	// InvocationID is the request's idempotent invocation id; hedged
	// attempts share it and exactly one result is delivered under it.
	InvocationID uint64 `json:"invocation_id"`
	// Hedged reports that a second instance was leased for this request
	// and the first completion returned.
	Hedged    bool       `json:"hedged,omitempty"`
	Functions []FnTiming `json:"functions"`
}

// Invoke serves one request of the named workflow: admission, warm-pool
// lease, live execution of the *current* behaviour under the active
// plan, then metric and controller feedback. A non-nil rec receives the
// request's spans (the ?trace=1 path).
func (a *App) Invoke(ctx context.Context, name string, rec obs.Recorder) (*InvokeResult, error) {
	release, err := a.track()
	if err != nil {
		return nil, err
	}
	defer release()
	return a.invoke(ctx, name, rec)
}

// invoke is the drain-exempt core: callers must already hold a track()
// release (async invocations acquire theirs at submission, so a drain
// that starts mid-request cannot refuse the execution it is waiting on).
func (a *App) invoke(ctx context.Context, name string, rec obs.Recorder) (*InvokeResult, error) {
	wf, err := a.workflow(name)
	if err != nil {
		return nil, err
	}

	if wf.active.Load() == nil {
		return nil, ErrNoPlan
	}

	wait, err := wf.adm.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer wf.adm.done()

	res, fast, err := a.executeAdmitted(ctx, wf, wait, a.invSeq.Add(1), rec)
	if err != nil {
		return nil, err
	}

	out := &InvokeResult{
		Workflow:    name,
		PlanVersion: fast.PlanVersion,
		Cold:        fast.Cold,
		ColdStartMs: ms(fast.ColdStart),
		QueueWaitMs: ms(fast.QueueWait),
		E2EMs:       ms(fast.E2E),
		// Sum the rounded parts, not ms(total): the reported arithmetic
		// must be exact (total = wait + cold + e2e) for consumers that
		// cross-check the fields.
		TotalMs:       ms(fast.QueueWait) + ms(fast.ColdStart) + ms(fast.E2E),
		FlightTraceID: fast.TraceID,
		InvocationID:  fast.InvocationID,
		Hedged:        fast.Hedged,
		Functions:     make([]FnTiming, len(res.Functions)),
	}
	for i, f := range res.Functions {
		out.Functions[i] = FnTiming{
			Name:     f.Name,
			Stage:    f.Stage,
			Sandbox:  f.Sandbox,
			StartMs:  ms(f.Start),
			FinishMs: ms(f.Finish),
		}
	}
	return out, nil
}

// isPlacementErr detects plan/behaviour mismatches (wrap validation,
// workflow shape), which the gateway reports as a stale plan rather
// than a server error. Classification is by sentinel, not error text.
func isPlacementErr(err error) bool {
	return errors.Is(err, wrap.ErrPlacement) || errors.Is(err, dag.ErrInvalid)
}

// profileWorkflow profiles every function with the standard options
// (the shared profiler memo makes repeats cheap).
func profileWorkflow(w *dag.Workflow) (profiler.Set, error) {
	return profiler.ProfileWorkflow(w, profiler.DefaultOptions())
}

// ---- async invocations ----

// asyncResult tracks one detached invocation.
type asyncResult struct {
	ID   string        `json:"id"`
	done chan struct{} // closed on completion
	res  *InvokeResult
	err  error
}

// maxAsyncResults bounds the completed-result ring (var so tests can
// shrink it). In-flight entries are never evicted — a poll for a
// running request must not 404 — so the ring may transiently exceed
// the bound while more invocations than the cap are in flight.
var maxAsyncResults = 4096

// evictAsyncLocked trims the oldest *completed* async results until
// the ring is back within maxAsyncResults, preserving submission
// order among survivors. Callers hold resMu.
func (a *App) evictAsyncLocked() {
	excess := len(a.resOrder) - maxAsyncResults
	if excess <= 0 {
		return
	}
	kept := a.resOrder[:0]
	for _, id := range a.resOrder {
		evict := false
		if ar := a.results[id]; ar != nil && excess > 0 {
			select {
			case <-ar.done:
				evict = true
			default: // still running: its goroutine will publish here
			}
		}
		if evict {
			delete(a.results, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	a.resOrder = kept
}

// InvokeAsync starts a detached invocation and returns its id. The
// request runs on a background context bound by RequestTimeout (plus
// queue wait), and counts toward the drain barrier.
func (a *App) InvokeAsync(name string) (string, error) {
	if _, err := a.workflow(name); err != nil {
		return "", err
	}
	release, err := a.track()
	if err != nil {
		return "", err
	}

	a.resMu.Lock()
	a.resSeq++
	id := fmt.Sprintf("r-%d", a.resSeq)
	ar := &asyncResult{ID: id, done: make(chan struct{})}
	a.results[id] = ar
	a.resOrder = append(a.resOrder, id)
	a.evictAsyncLocked()
	a.resMu.Unlock()

	go func() {
		defer release()
		// 4x the request timeout bounds queue wait + cold start + run.
		ctx, cancel := context.WithTimeout(context.Background(), 4*a.opt.RequestTimeout)
		defer cancel()
		ar.res, ar.err = a.invoke(ctx, name, nil)
		close(ar.done)
	}()
	return id, nil
}

// AsyncResult polls a detached invocation: done reports completion;
// result and err are valid only once done.
func (a *App) AsyncResult(id string) (res *InvokeResult, done bool, err error) {
	a.resMu.Lock()
	ar, ok := a.results[id]
	a.resMu.Unlock()
	if !ok {
		return nil, false, fmt.Errorf("serve: request %q: %w", id, ErrNotFound)
	}
	select {
	case <-ar.done:
		return ar.res, true, ar.err
	default:
		return nil, false, nil
	}
}
