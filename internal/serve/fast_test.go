package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestHashNameFNV(t *testing.T) {
	// Pinned FNV-64a vectors: the UDP wire format depends on these
	// exact values, so a change here is a protocol break.
	cases := map[string]uint64{
		"":              14695981039346656037,
		"a":             12638187200555641996,
		"SocialNetwork": 9757268868648466704,
	}
	for in, want := range cases {
		if got := HashName(in); got != want {
			t.Errorf("HashName(%q) = %d, want %d", in, got, want)
		}
	}
	if HashName("wf-a") == HashName("wf-b") {
		t.Fatal("distinct names collided")
	}
}

func TestAdmitHashLifecycle(t *testing.T) {
	a := testApp(t, Options{Scale: 0.02})
	if _, err := a.AdmitHash(context.Background(), HashName("wf-test")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown hash: %v", err)
	}
	if _, err := a.Register(testWorkflow(4 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AdmitHash(context.Background(), HashName("wf-test")); !errors.Is(err, ErrNoPlan) {
		t.Fatalf("unplanned workflow: %v", err)
	}
	mustPlan(t, a, "wf-test", 400*time.Millisecond)

	ad, err := a.AdmitHash(context.Background(), HashName("wf-test"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ad.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cold || res.PlanVersion != 1 || res.E2E <= 0 {
		t.Fatalf("fast result %+v", res)
	}

	// Release without Execute must return the slot: the full
	// concurrency budget stays admittable afterwards.
	for i := 0; i < 2*a.wfs["wf-test"].adm.capacity; i++ {
		ad, err := a.AdmitHash(context.Background(), HashName("wf-test"))
		if err != nil {
			t.Fatalf("admit %d after releases: %v", i, err)
		}
		ad.Release()
	}
}

// TestAdmitHashZeroAlloc is the guarded budget for the ingress step the
// UDP plane runs per packet: hash lookup, drain tracking, admission
// fast path, release. 0 allocs once warm.
func TestAdmitHashZeroAlloc(t *testing.T) {
	a := testApp(t, Options{Scale: 0.02})
	if _, err := a.Register(testWorkflow(2 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", 400*time.Millisecond)
	h := HashName("wf-test")
	ctx := context.Background()
	if avg := testing.AllocsPerRun(200, func() {
		ad, err := a.AdmitHash(ctx, h)
		if err != nil {
			t.Fatal(err)
		}
		ad.Release()
	}); avg > 0 {
		t.Fatalf("AdmitHash+Release allocates %.1f per run, want 0", avg)
	}
	// The unknown-hash reject is a packet-flood path too: no allocs.
	bad := HashName("no-such-workflow")
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := a.AdmitHash(ctx, bad); err == nil {
			t.Fatal("unknown hash admitted")
		}
	}); avg > 0 {
		t.Fatalf("unknown-hash reject allocates %.1f per run, want 0", avg)
	}
}

func TestNegativeCacheUnknownWorkflows(t *testing.T) {
	a := testApp(t, Options{Scale: 0.02})
	// First miss takes the registry lock and seeds the cache; repeats
	// are answered by the cache.
	for i := 0; i < 3; i++ {
		if _, err := a.Invoke(context.Background(), "ghost", nil); !errors.Is(err, ErrNotFound) {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	if hits := a.m.negHits.Value(); hits != 2 {
		t.Fatalf("negative-cache hits = %d, want 2", hits)
	}

	// Registering the name must unpoison it immediately.
	w := testWorkflow(2 * time.Millisecond)
	w.Name = "ghost"
	if _, err := a.Register(w); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Invoke(context.Background(), "ghost", nil); !errors.Is(err, ErrNoPlan) {
		t.Fatalf("after register: %v (want ErrNoPlan, not ErrNotFound)", err)
	}
}

func TestNegativeCacheBounded(t *testing.T) {
	a := testApp(t, Options{Scale: 0.02})
	// Overflow the cap: the cache must evict per-entry rather than grow
	// without bound, and lookups keep working throughout.
	for i := 0; i < a.opt.NegCacheCap+10; i++ {
		name := "junk-" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + itoa(i)
		if _, err := a.workflow(name); !errors.Is(err, ErrNotFound) {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	if n := a.neg.Len(); n > a.opt.NegCacheCap {
		t.Fatalf("negative cache grew past cap: %d", n)
	}
}

func TestNegativeCacheSurvivesJunkFlood(t *testing.T) {
	a := testApp(t, Options{Scale: 0.02})
	// A handful of legitimate-but-unregistered names are probed
	// repeatedly (clients retrying a typo'd workflow), interleaved with a
	// flood of one-shot junk names several times the cache capacity.
	// Under the old drop-the-whole-map scheme every flood wiped the hot
	// names; under the 2Q policy they are promoted out of the probation
	// queue and keep answering from the cache.
	hot := []string{"typo-a", "typo-b", "typo-c", "typo-d"}
	warm := func() {
		for _, n := range hot {
			if _, err := a.workflow(n); !errors.Is(err, ErrNotFound) {
				t.Fatalf("hot lookup %q: %v", n, err)
			}
		}
	}
	// Probe twice so each hot name ages through the probation queue once
	// and is re-admitted into the protected main queue.
	warm()
	for i := 0; i < a.opt.NegCacheCap; i++ {
		_, _ = a.workflow("flood-" + itoa(i))
	}
	warm()
	for i := 0; i < 4*a.opt.NegCacheCap; i++ {
		_, _ = a.workflow("flood2-" + itoa(i))
		if i%256 == 0 {
			warm()
		}
	}

	before := a.m.negHits.Value()
	warm()
	if got := a.m.negHits.Value() - before; got != uint64(len(hot)) {
		t.Fatalf("hot negative entries evicted by junk flood: %d/%d served from cache", got, len(hot))
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func TestKeepAliveJitterSpreadsExpiry(t *testing.T) {
	a := testApp(t, Options{Scale: 0.02, KeepAlive: time.Minute, KeepAliveJitter: 0.2})
	if _, err := a.Register(testWorkflow(2 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", 400*time.Millisecond)
	ps := a.wfs["wf-test"].active.Load()
	now := time.Now()
	min, max := now.Add(time.Minute), now.Add(time.Minute)
	for i := 0; i < 64; i++ {
		e := ps.pool.expiry(now)
		if e.Before(min) {
			min = e
		}
		if e.After(max) {
			max = e
		}
		lo, hi := now.Add(48*time.Second), now.Add(72*time.Second)
		if e.Before(lo) || e.After(hi) {
			t.Fatalf("expiry %v outside [%v, %v]", e.Sub(now), 48*time.Second, 72*time.Second)
		}
	}
	if max.Sub(min) < time.Second {
		t.Fatalf("64 jittered expiries spread only %v; epoch-wide expiry would synchronize", max.Sub(min))
	}

	// Jitter disabled (negative): expiry is exactly keep-alive.
	b := testApp(t, Options{Scale: 0.02, KeepAlive: time.Minute, KeepAliveJitter: -1})
	if _, err := b.Register(testWorkflow(2 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, b, "wf-test", 400*time.Millisecond)
	pb := b.wfs["wf-test"].active.Load()
	if e := pb.pool.expiry(now); !e.Equal(now.Add(time.Minute)) {
		t.Fatalf("jitter-disabled expiry %v, want exactly %v", e.Sub(now), time.Minute)
	}
}
