package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"chiron/internal/obs"
	"chiron/internal/obs/flight"
)

// flightApp boots a gateway with a deterministic flight recorder:
// probabilistic sampling off, so every retention is explainable.
func flightApp(t *testing.T, ring int, opt Options) (*App, *flight.Flight, string) {
	t.Helper()
	if opt.Reg == nil {
		opt.Reg = obs.NewRegistry()
	}
	fl := flight.New(flight.Options{RingSize: ring, SampleRate: -1, Reg: opt.Reg})
	opt.Flight = fl
	a, srv := httpApp(t, opt)
	return a, fl, srv.URL
}

// TestFlightRetainsSLOViolationEndToEnd: a workflow planned with an
// unreachable SLO violates on every request; the flight recorder must
// retain the trace, tag it, and serve it back as a Chrome trace.
func TestFlightRetainsSLOViolationEndToEnd(t *testing.T) {
	a, fl, url := flightApp(t, 16, Options{Scale: 0.05})
	if _, err := a.Register(testWorkflow(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", time.Microsecond) // impossible SLO: every request violates

	code, body := doJSON(t, "POST", url+"/workflows/wf-test/invoke", nil)
	if code != http.StatusOK {
		t.Fatalf("invoke: %d %v", code, body)
	}
	idf, ok := body["flight_trace_id"].(float64)
	if !ok || idf <= 0 {
		t.Fatalf("invoke result carries no flight_trace_id: %v", body)
	}

	// The listing shows the retained trace with its reason tags.
	code, list := doJSON(t, "GET", url+"/debug/flight", nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/flight: %d", code)
	}
	retained := list["retained"].([]interface{})
	if len(retained) == 0 {
		t.Fatal("no retained traces after an SLO violation")
	}
	top := retained[0].(map[string]interface{})
	if top["id"].(float64) != idf || top["workflow"] != "wf-test" {
		t.Fatalf("retained[0] = %v", top)
	}
	reasons := fmt.Sprint(top["reasons"])
	if !strings.Contains(reasons, "slo") {
		t.Fatalf("reasons = %s, want slo", reasons)
	}

	// The trace itself comes back as Chrome trace_event JSON with the
	// request's span tree.
	resp, err := http.Get(fmt.Sprintf("%s/debug/flight/trace?id=%d", url, uint64(idf)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: %d %s", resp.StatusCode, raw)
	}
	var chrome struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("trace is not JSON: %v\n%s", err, raw)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if !strings.Contains(string(raw), "request wf-test") {
		t.Errorf("trace missing request span:\n%s", raw)
	}

	// Unknown and malformed ids fail loudly.
	for _, q := range []string{"?id=999999", "?id=abc", ""} {
		resp, err := http.Get(url + "/debug/flight/trace" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("trace%s: got 200", q)
		}
	}
	_ = fl
}

// TestFlightForceEndpoint arms dump-on-demand over HTTP and expects the
// next request retained even when healthy.
func TestFlightForceEndpoint(t *testing.T) {
	a, fl, url := flightApp(t, 16, Options{Scale: 0.05})
	if _, err := a.Register(testWorkflow(5 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", time.Minute) // generous SLO: requests are healthy

	code, body := doJSON(t, "POST", url+"/debug/flight/force?n=1", nil)
	if code != http.StatusOK || body["forced"].(float64) != 1 {
		t.Fatalf("force: %d %v", code, body)
	}
	code, body = doJSON(t, "POST", url+"/workflows/wf-test/invoke", nil)
	if code != http.StatusOK {
		t.Fatalf("invoke: %d %v", code, body)
	}
	if body["flight_trace_id"] == nil {
		t.Fatalf("forced invoke not retained: %v", body)
	}
	if fl.Len() != 1 {
		t.Fatalf("ring = %d, want 1", fl.Len())
	}
	// Second healthy request: force budget spent, not retained.
	code, body = doJSON(t, "POST", url+"/workflows/wf-test/invoke", nil)
	if code != http.StatusOK {
		t.Fatal("invoke")
	}
	if body["flight_trace_id"] != nil {
		t.Fatalf("healthy request retained after budget spent: %v", body)
	}
}

// TestFlightExemplarOnGatewayHistogram: a retained request's trace id
// must surface as an OpenMetrics exemplar on chiron_serve_latency.
func TestFlightExemplarOnGatewayHistogram(t *testing.T) {
	a, _, url := flightApp(t, 16, Options{Scale: 0.05})
	if _, err := a.Register(testWorkflow(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", time.Microsecond)
	if code, _ := doJSON(t, "POST", url+"/workflows/wf-test/invoke", nil); code != http.StatusOK {
		t.Fatal("invoke")
	}

	// Classic scrape: strict-parseable, no exemplars.
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	classic, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(classic), "trace_id") {
		t.Error("classic /metrics carries exemplars")
	}
	if _, err := obs.CheckProm(strings.NewReader(string(classic))); err != nil {
		t.Fatalf("classic /metrics fails strict parse: %v", err)
	}

	// OpenMetrics negotiation via Accept header.
	req, _ := http.NewRequest("GET", url+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	om, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("Content-Type = %s", ct)
	}
	if !strings.Contains(string(om), "chiron_serve_latency_bucket") ||
		!strings.Contains(string(om), "trace_id") {
		t.Errorf("OpenMetrics output missing latency exemplar:\n%s", om)
	}
	if !strings.HasSuffix(string(om), "# EOF\n") {
		t.Error("OpenMetrics output missing # EOF")
	}
}

// TestReadyzFlipsOnDrain: /readyz mirrors the drain barrier so a
// rolling restart can pull the instance from rotation before SIGTERM
// kills it; /healthz stays 200 (the process is alive, just draining).
func TestReadyzFlipsOnDrain(t *testing.T) {
	a, _, url := flightApp(t, 16, Options{Scale: 0.05})

	get := func(path string) int {
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := get("/readyz"); c != http.StatusOK {
		t.Fatalf("/readyz before drain: %d", c)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain: %d, want 503", c)
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Fatalf("/healthz after drain: %d, want 200", c)
	}
}

// TestTraceMemoryBounded drives sustained load with both trace sinks
// active (?trace=1 and the flight ring) and asserts neither grows
// beyond its cap: the ring stays at RingSize and every ?trace=1
// response is a fresh bounded trace, across 10k invokes.
func TestTraceMemoryBounded(t *testing.T) {
	const (
		ring    = 8
		total   = 10_000
		workers = 8
	)
	// SampleRate 1: every request is retained — worst-case ring churn —
	// without the impossible-SLO trick (which would trip admission
	// control into 429s once a queue forms).
	reg := obs.NewRegistry()
	fl := flight.New(flight.Options{RingSize: ring, SampleRate: 1, Reg: reg})
	a, srv := httpApp(t, Options{Scale: 0.0005, Reg: reg, Flight: fl})
	url := srv.URL
	if _, err := a.Register(testWorkflow(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", time.Minute)

	client := &http.Client{}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < total/workers; i++ {
				path := "/workflows/wf-test/invoke"
				if i%100 == 0 {
					path += "?trace=1" // exercise the Tee path too
				}
				resp, err := client.Post(url+path, "application/json", nil)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("invoke %d: %d", i, resp.StatusCode)
					return
				}
				if n := fl.Len(); n > ring {
					errs <- fmt.Errorf("flight ring grew to %d (cap %d)", n, ring)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if n := fl.Len(); n != ring {
		t.Fatalf("ring = %d, want full %d", n, ring)
	}
}
