package serve

import (
	"context"
	"fmt"
	"time"

	"chiron/internal/live"
	"chiron/internal/obs"
	"chiron/internal/obs/flight"
)

// This file is the binary-ingress fast path: workflows addressed by
// name hash instead of strings, admission split from execution so the
// UDP receive loop can admit a packet without allocating, and a
// value-typed result small enough to encode straight into a response
// datagram. The HTTP path shares every stage below admission — both
// protocols drain into one admission queue and one warm pool per
// workflow.

// HashName is the wire identity of a workflow: FNV-64a over its name.
// The UDP protocol carries this hash instead of the name so the invoke
// header stays fixed-layout, and AdmitHash resolves it through a
// copy-on-write index without locks or allocation.
func HashName(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}

// FastResult is the value-typed invocation summary for binary protocol
// responses: everything InvokeResult reports except the per-function
// timeline, with no heap allocation.
type FastResult struct {
	PlanVersion int64
	Cold        bool
	ColdStart   time.Duration
	QueueWait   time.Duration
	E2E         time.Duration
	// InvocationID is the request's idempotent invocation id: the UDP
	// header's client-chosen id on that plane, gateway-generated for
	// HTTP. Hedged attempts share it, and exactly-once result delivery
	// is guarded by it.
	InvocationID uint64
	// Hedged reports that a second instance was leased and the same
	// invocation re-issued on it (the first completion was returned).
	Hedged bool
	// TraceID is non-zero when the flight recorder retained this
	// request's trace (fetch via /debug/flight/trace?id=). Server-side
	// only — it is not part of the UDP wire format.
	TraceID uint64
}

// Admitted is one admitted-but-not-yet-executed invocation: it owns an
// admission slot and a drain-barrier unit. Callers must finish it with
// exactly one of Execute or Release. It is a value type so the
// receive→parse→admit step stays allocation-free.
type Admitted struct {
	app  *App
	wf   *workflowState
	wait time.Duration
	id   uint64
}

// AdmitHash admits one invocation of the workflow registered under
// HashName(name) with a gateway-generated invocation id. See
// AdmitHashID.
func (a *App) AdmitHash(ctx context.Context, h uint64) (Admitted, error) {
	return a.AdmitHashID(ctx, h, a.invSeq.Add(1))
}

// AdmitHashID admits one invocation of the workflow registered under
// HashName(name), blocking in the shared admission queue exactly like an
// HTTP request (ctx bounds the queue wait; its deadline orders the
// queue by remaining slack). id is the caller's idempotent invocation
// id — the UDP plane passes its wire header's id so hedged re-issues
// and completion replies stay correlated end to end. On the happy path
// — index hit, active plan, free slot — it performs zero heap
// allocations. Errors: ErrNotFound (unknown hash), ErrNoPlan,
// ErrDraining, context.DeadlineExceeded (deadline already expired), or
// an *OverloadError from admission.
func (a *App) AdmitHashID(ctx context.Context, h, id uint64) (Admitted, error) {
	var wf *workflowState
	if m := a.byHash.Load(); m != nil {
		wf = (*m)[h]
	}
	if wf == nil {
		return Admitted{}, errUnknownWorkflow
	}
	if wf.active.Load() == nil {
		return Admitted{}, ErrNoPlan
	}
	if err := a.trackOne(); err != nil {
		return Admitted{}, err
	}
	wait, err := wf.adm.admit(ctx)
	if err != nil {
		a.untrack()
		return Admitted{}, err
	}
	return Admitted{app: a, wf: wf, wait: wait, id: id}, nil
}

// Release abandons an admitted invocation without executing it,
// returning the slot and the drain unit. Allocation-free.
func (ad Admitted) Release() {
	if ad.app == nil {
		return
	}
	ad.wf.adm.done()
	ad.app.untrack()
}

// Execute runs the admitted invocation on the workflow's active plan and
// warm pool, releasing the slot and drain unit when done.
func (ad Admitted) Execute(ctx context.Context) (FastResult, error) {
	a := ad.app
	defer a.untrack()
	defer ad.wf.adm.done()
	_, fast, err := a.executeAdmitted(ctx, ad.wf, ad.wait, ad.id, nil)
	return fast, err
}

// executeAdmitted is the execution core shared by the HTTP and UDP
// paths: epoch load, behaviour snapshot, warm-pool lease, live run
// (hedged when armed), then metric and controller feedback. The caller
// holds an admission slot (released by the caller, not here).
func (a *App) executeAdmitted(ctx context.Context, wf *workflowState, wait time.Duration, id uint64, rec obs.Recorder) (*live.Result, FastResult, error) {
	a.m.inflight.Add(1)
	defer a.m.inflight.Add(-1)

	// Load the epoch after the queue wait: if a swap happened while we
	// queued, execute on the fresh plan; requests already past this
	// point keep their epoch (the old pool drains them). The behaviour
	// snapshot is taken at the same instant so a re-registration that
	// landed during the wait cannot pair stale specs with a fresh plan.
	ps := wf.active.Load()
	if ps == nil {
		return nil, FastResult{}, ErrNoPlan
	}
	beh := wf.snapshot()

	// Every admitted request records into a pooled flight recorder; an
	// explicit ?trace=1 recorder tees on top. Finish decides retention
	// from hindsight (slow/error/SLO/adapt-coincident) and recycles the
	// recorder either way.
	fl := a.opt.Flight
	fr := fl.Acquire()
	runRec := obs.Tee(fr, rec)
	sloNow := wf.adm.slo()
	start := time.Now()

	cold, err := ps.pool.acquire(ctx)
	if err != nil {
		fl.Finish(fr, flight.Info{
			Workflow: wf.name, Latency: a.nominalSince(start) + wait, SLO: sloNow, Err: err,
		})
		return nil, FastResult{}, err
	}

	// The hedge delay is computed per request from the lock-free
	// bias-corrected prediction; zero keeps the plain single-attempt
	// path, byte-identical to a build without hedging.
	var (
		res    *live.Result
		hedged bool
		winner int
	)
	execStart := time.Now()
	if delay := a.hedgeDelay(wf); delay > 0 {
		res, hedged, winner, err = a.runHedged(ctx, ps, beh, runRec, delay)
	} else {
		res, err = live.RunCtx(ctx, beh, ps.plan, live.Options{
			Const:   a.opt.Const,
			Scale:   a.opt.Scale,
			Timeout: a.opt.RequestTimeout,
			Rec:     runRec,
		})
		ps.pool.release(time.Now())
	}
	if err != nil {
		a.m.errors.Inc()
		fl.Finish(fr, flight.Info{
			Workflow: wf.name, Latency: a.nominalSince(start) + wait, SLO: sloNow, Err: err,
		})
		if isPlacementErr(err) {
			return nil, FastResult{}, fmt.Errorf("%w: %v", ErrStalePlan, err)
		}
		return nil, FastResult{}, err
	}

	coldCost := time.Duration(0)
	if cold {
		coldCost = a.opt.Const.ColdStart
	}

	// A hedged request's end-to-end time is measured, not modelled: it
	// spans the hedge delay plus whichever attempt finished first (and
	// folds in the hedge instance's boot, which happened inside the
	// window). The primary's cold boot stays charged separately so the
	// non-hedged accounting is unchanged.
	e2e := res.E2E
	if hedged {
		e2e = a.nominalSince(execStart)
	}
	if hedged {
		if winner == 1 {
			a.m.hedgeWins.Inc()
			fl.NoteEvent(wf.name, "hedge", "hedge attempt won", true)
		} else {
			a.m.hedgeWasted.Inc()
			fl.NoteEvent(wf.name, "hedge", "hedge attempt wasted", false)
		}
	}

	total := wait + coldCost + e2e
	a.m.requests.Inc()
	a.m.latency.Observe(total)
	wf.adm.observe(res.E2E)
	wf.feed(res.E2E)

	traceID, kept := fl.Finish(fr, flight.Info{
		Workflow: wf.name, Latency: total, SLO: sloNow,
	})
	if kept {
		// Exemplar: the latency bucket this request landed in now points
		// at a fetchable trace.
		a.m.latency.SetExemplar(total, traceID)
	}

	return res, FastResult{
		PlanVersion:  ps.version,
		Cold:         cold,
		ColdStart:    coldCost,
		QueueWait:    wait,
		E2E:          e2e,
		InvocationID: id,
		Hedged:       hedged,
		TraceID:      traceID,
	}, nil
}

// nominalSince converts elapsed wall time back into nominal (unscaled)
// time, matching how latency metrics are reported elsewhere.
func (a *App) nominalSince(start time.Time) time.Duration {
	el := time.Since(start)
	if s := a.opt.Scale; s > 0 && s != 1 {
		return time.Duration(float64(el) / s)
	}
	return el
}
