package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"chiron/internal/dag"
	"chiron/internal/obs"
)

// Handler returns the gateway's HTTP mux:
//
//	GET  /healthz                     liveness (200 until the process exits)
//	GET  /readyz                      readiness (503 once a drain begins)
//	GET  /metrics                     Prometheus text exposition (?exemplars=1 for OpenMetrics)
//	GET  /debug/flight                retained flight traces + adapt/burn annotations
//	GET  /debug/flight/trace?id=N     one retained trace as Chrome trace_event JSON
//	POST /debug/flight/force?n=K      retain the next K traces unconditionally
//	GET  /workflows                   registered workflow names
//	POST /workflows                   register/update (workflow | graph | builtin)
//	GET  /workflows/{name}            serving status
//	POST /workflows/{name}/plan       profile + PGP, activate the plan
//	GET  /workflows/{name}/plan       active plan JSON
//	POST /workflows/{name}/plan/rollback  restore the previous plan epoch
//	POST /workflows/{name}/invoke     execute (sync; ?async=1 detaches, ?trace=1 returns spans)
//	GET  /requests/{id}               async invocation result
func (a *App) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", a.handleReadyz)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	mux.HandleFunc("GET /debug/flight", a.handleFlightList)
	mux.HandleFunc("GET /debug/flight/trace", a.handleFlightTrace)
	mux.HandleFunc("POST /debug/flight/force", a.handleFlightForce)
	mux.HandleFunc("GET /workflows", a.handleList)
	mux.HandleFunc("POST /workflows", a.handleRegister)
	mux.HandleFunc("GET /workflows/{name}", a.handleStatus)
	mux.HandleFunc("POST /workflows/{name}/plan", a.handlePlan)
	mux.HandleFunc("GET /workflows/{name}/plan", a.handleGetPlan)
	mux.HandleFunc("POST /workflows/{name}/plan/rollback", a.handleRollback)
	mux.HandleFunc("POST /workflows/{name}/invoke", a.handleInvoke)
	mux.HandleFunc("GET /requests/{id}", a.handleAsyncResult)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps serving errors onto status codes: 404 unknown, 409 no
// plan / stale plan, 429 + Retry-After on admission rejection, 503 while
// draining, 504 on request deadline, 400 on malformed input, 500 rest.
func writeErr(w http.ResponseWriter, err error) {
	var ov *OverloadError
	switch {
	case errors.As(err, &ov):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", ceilSeconds(ov.RetryAfter)))
		writeJSON(w, http.StatusTooManyRequests, map[string]interface{}{
			"error":          ov.Error(),
			"retry_after_ms": float64(ov.RetryAfter) / float64(time.Millisecond),
		})
	case errors.Is(err, ErrNotFound):
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrNoPlan), errors.Is(err, ErrStalePlan), errors.Is(err, ErrNoHistory):
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case errors.Is(err, errBadRequest):
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	case isDeadline(err):
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
}

var errBadRequest = errors.New("serve: bad request")

func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}

func (a *App) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Default is the classic 0.0.4 text format, which strict classic
	// parsers (cmd/promcheck) accept. ?exemplars=1 or an OpenMetrics
	// Accept header switches to the OpenMetrics rendering, whose bucket
	// exemplars link latency buckets to retained flight trace ids.
	if r.URL.Query().Get("exemplars") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = a.opt.Reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = a.opt.Reg.WriteProm(w)
}

func (a *App) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{"workflows": a.Workflows()})
}

// registerRequest is the POST /workflows body: exactly one of the
// fields. A staged workflow or a general DAG (levelled on ingest) both
// carry their behaviour specs inline; builtin names an evaluation
// workload.
type registerRequest struct {
	Workflow *dag.Workflow `json:"workflow,omitempty"`
	Graph    *dag.Graph    `json:"graph,omitempty"`
	Builtin  string        `json:"builtin,omitempty"`
}

func (a *App) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: reading body: %v", errBadRequest, err))
		return
	}
	var req registerRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	var created bool
	var name string
	switch {
	case req.Builtin != "":
		name = req.Builtin
		created, err = a.RegisterBuiltin(req.Builtin)
	case req.Graph != nil:
		var wf *dag.Workflow
		wf, err = req.Graph.Level()
		if err != nil {
			writeErr(w, fmt.Errorf("%w: %v", errBadRequest, err))
			return
		}
		name = wf.Name
		created, err = a.Register(wf)
	case req.Workflow != nil:
		name = req.Workflow.Name
		created, err = a.Register(req.Workflow)
	default:
		writeErr(w, fmt.Errorf("%w: body needs one of workflow|graph|builtin", errBadRequest))
		return
	}
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			writeErr(w, err)
		} else {
			writeErr(w, fmt.Errorf("%w: %v", errBadRequest, err))
		}
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, map[string]interface{}{"workflow": name, "created": created})
}

func (a *App) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := a.WorkflowStatus(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

type planRequest struct {
	// SLO is a Go duration string ("300ms"); empty inherits workflow /
	// app default / auto.
	SLO string `json:"slo,omitempty"`
}

type planResponse struct {
	Workflow    string      `json:"workflow"`
	Version     int64       `json:"version"`
	PredictedMs float64     `json:"predicted_ms"`
	SLOMs       float64     `json:"slo_ms"`
	Plan        interface{} `json:"plan"`
}

func (a *App) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	body, _ := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, fmt.Errorf("%w: %v", errBadRequest, err))
			return
		}
	}
	var slo time.Duration
	if req.SLO != "" {
		d, err := time.ParseDuration(req.SLO)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: bad slo %q: %v", errBadRequest, req.SLO, err))
			return
		}
		slo = d
	}
	info, err := a.PlanWorkflow(r.PathValue("name"), slo)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, planResponse{
		Workflow:    info.Workflow,
		Version:     info.Version,
		PredictedMs: ms(info.Predicted),
		SLOMs:       ms(info.SLO),
		Plan:        info.Plan,
	})
}

// handleRollback restores the previous plan epoch. 409 when the
// workflow has no plan or no retired epoch to fall back to.
func (a *App) handleRollback(w http.ResponseWriter, r *http.Request) {
	info, err := a.RollbackPlan(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, planResponse{
		Workflow:    info.Workflow,
		Version:     info.Version,
		PredictedMs: ms(info.Predicted),
		SLOMs:       ms(info.SLO),
		Plan:        info.Plan,
	})
}

func (a *App) handleGetPlan(w http.ResponseWriter, r *http.Request) {
	info, err := a.ActivePlan(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, planResponse{
		Workflow:    info.Workflow,
		Version:     info.Version,
		PredictedMs: ms(info.Predicted),
		SLOMs:       ms(info.SLO),
		Plan:        info.Plan,
	})
}

func (a *App) handleInvoke(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if r.URL.Query().Get("async") == "1" {
		id, err := a.InvokeAsync(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{
			"id":         id,
			"status_url": "/requests/" + id,
		})
		return
	}
	var rec obs.Recorder
	var tr *obs.Trace
	if r.URL.Query().Get("trace") == "1" {
		tr = obs.NewTrace()
		rec = tr
	}
	// ?deadline_ms= gives the request a per-request deadline, exactly
	// like the UDP invoke header's DeadlineMs: admission orders it by
	// remaining slack and rejects it with 504 once expired.
	ctx := r.Context()
	if dl := r.URL.Query().Get("deadline_ms"); dl != "" {
		ms, err := strconv.ParseFloat(dl, 64)
		if err != nil || ms <= 0 {
			writeErr(w, fmt.Errorf("%w: bad deadline_ms %q", errBadRequest, dl))
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms*float64(time.Millisecond)))
		defer cancel()
	}
	res, err := a.Invoke(ctx, name, rec)
	if err != nil {
		writeErr(w, err)
		return
	}
	if tr == nil {
		writeJSON(w, http.StatusOK, res)
		return
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"result": res,
		"trace":  json.RawMessage(buf.Bytes()),
	})
}

func (a *App) handleAsyncResult(w http.ResponseWriter, r *http.Request) {
	res, done, err := a.AsyncResult(r.PathValue("id"))
	switch {
	case err != nil && !done:
		writeErr(w, err)
	case !done:
		writeJSON(w, http.StatusAccepted, map[string]string{"state": "running"})
	case err != nil:
		writeErr(w, err)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}
