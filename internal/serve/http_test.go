package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chiron/internal/obs"
)

// httpApp boots an App behind an httptest server.
func httpApp(t *testing.T, opt Options) (*App, *httptest.Server) {
	t.Helper()
	a := testApp(t, opt)
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	return a, srv
}

func doJSON(t *testing.T, method, url string, body interface{}) (int, map[string]interface{}) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := map[string]interface{}{}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%s %s: non-JSON body %q", method, url, raw)
		}
	}
	return resp.StatusCode, out
}

// TestGatewayLifecycle drives the full register -> plan -> invoke ->
// result -> status path over HTTP, including async invocations, traces
// and /metrics.
func TestGatewayLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	_, srv := httpApp(t, Options{Scale: 0.05, Reg: reg})

	// Register (builtin registration is what CI's smoke test uses too).
	code, body := doJSON(t, "POST", srv.URL+"/workflows",
		map[string]string{"builtin": "SocialNetwork"})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	// Re-register is an update, not a create.
	code, _ = doJSON(t, "POST", srv.URL+"/workflows", map[string]string{"builtin": "SocialNetwork"})
	if code != http.StatusOK {
		t.Fatalf("re-register: %d", code)
	}
	// Unknown builtin -> 404; invoke before plan -> 409.
	code, _ = doJSON(t, "POST", srv.URL+"/workflows", map[string]string{"builtin": "nope"})
	if code != http.StatusNotFound {
		t.Fatalf("unknown builtin: %d", code)
	}
	code, _ = doJSON(t, "POST", srv.URL+"/workflows/SocialNetwork/invoke", nil)
	if code != http.StatusConflict {
		t.Fatalf("invoke before plan: %d", code)
	}

	code, body = doJSON(t, "POST", srv.URL+"/workflows/SocialNetwork/plan",
		map[string]string{"slo": "500ms"})
	if code != http.StatusOK {
		t.Fatalf("plan: %d %v", code, body)
	}
	if body["version"].(float64) != 1 || body["predicted_ms"].(float64) <= 0 {
		t.Fatalf("plan response %v", body)
	}

	code, body = doJSON(t, "POST", srv.URL+"/workflows/SocialNetwork/invoke", nil)
	if code != http.StatusOK {
		t.Fatalf("invoke: %d %v", code, body)
	}
	if body["cold"] != true || body["e2e_ms"].(float64) <= 0 {
		t.Fatalf("invoke result %v", body)
	}
	if n := len(body["functions"].([]interface{})); n != 10 {
		t.Fatalf("functions in result: %d, want 10", n)
	}

	// Traced invocation returns a Chrome trace alongside the result.
	code, body = doJSON(t, "POST", srv.URL+"/workflows/SocialNetwork/invoke?trace=1", nil)
	if code != http.StatusOK {
		t.Fatalf("traced invoke: %d", code)
	}
	if body["trace"] == nil || body["result"] == nil {
		t.Fatalf("traced invoke body keys %v", body)
	}

	// Async invocation: 202 + poll to completion.
	code, body = doJSON(t, "POST", srv.URL+"/workflows/SocialNetwork/invoke?async=1", nil)
	if code != http.StatusAccepted {
		t.Fatalf("async invoke: %d %v", code, body)
	}
	statusURL := srv.URL + body["status_url"].(string)
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body = doJSON(t, "GET", statusURL, nil)
		if code == http.StatusOK {
			break
		}
		if code != http.StatusAccepted || time.Now().After(deadline) {
			t.Fatalf("async poll: %d %v", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if body["workflow"] != "SocialNetwork" {
		t.Fatalf("async result %v", body)
	}

	// Status and active plan.
	code, body = doJSON(t, "GET", srv.URL+"/workflows/SocialNetwork", nil)
	if code != http.StatusOK || body["planned"] != true {
		t.Fatalf("status: %d %v", code, body)
	}
	code, body = doJSON(t, "GET", srv.URL+"/workflows/SocialNetwork/plan", nil)
	if code != http.StatusOK || body["plan"] == nil {
		t.Fatalf("get plan: %d %v", code, body)
	}

	// Metrics expose the serving counters.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"chiron_serve_requests_total",
		"chiron_serve_coldstarts_total",
		"chiron_serve_warmhits_total",
		"chiron_serve_latency_bucket",
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("/metrics missing %s:\n%s", want, prom)
		}
	}
}

// TestGatewayBackpressure saturates a 1-slot, 1-seat gateway and expects
// the third concurrent request to be rejected with 429 + Retry-After
// instead of queueing unboundedly.
func TestGatewayBackpressure(t *testing.T) {
	a, srv := httpApp(t, Options{
		Scale:          0.5,
		MaxConcurrency: 1,
		MaxQueue:       1,
	})
	if _, err := a.Register(testWorkflow(80 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", 20*time.Second)

	var wg sync.WaitGroup
	invoke := func() {
		defer wg.Done()
		code, _ := doJSON(t, "POST", srv.URL+"/workflows/wf-test/invoke", nil)
		if code != http.StatusOK {
			t.Errorf("background invoke: %d", code)
		}
	}
	wg.Add(2)
	go invoke() // occupies the execution slot
	waitFor(t, func() bool { return a.opt.Reg.Gauge("chiron_serve_inflight", "").Value() == 1 })
	go invoke() // occupies the single queue seat
	waitFor(t, func() bool {
		wf, _ := a.workflow("wf-test")
		return wf.adm.depth() == 1
	})

	req, _ := http.NewRequest("POST", srv.URL+"/workflows/wf-test/invoke", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	wg.Wait()
	if got := a.opt.Reg.Counter("chiron_serve_rejected_total", "").Value(); got == 0 {
		t.Fatal("rejected counter did not move")
	}
}

// TestGatewayRollbackEndpoint drives POST /workflows/{name}/plan/rollback:
// 409 before a plan and with an empty history, restoring the previous
// epoch (prediction and all) once one exists, and a second rollback
// acting as a redo.
func TestGatewayRollbackEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	a, srv := httpApp(t, Options{Scale: 0.05, Reg: reg})
	if _, err := a.Register(testWorkflow(4 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	rollbackURL := srv.URL + "/workflows/wf-test/plan/rollback"

	// Unknown workflow -> 404; unplanned -> 409; no history yet -> 409.
	code, _ := doJSON(t, "POST", srv.URL+"/workflows/nope/plan/rollback", nil)
	if code != http.StatusNotFound {
		t.Fatalf("rollback unknown workflow: %d, want 404", code)
	}
	code, _ = doJSON(t, "POST", rollbackURL, nil)
	if code != http.StatusConflict {
		t.Fatalf("rollback before plan: %d, want 409", code)
	}
	infoA := mustPlan(t, a, "wf-test", 400*time.Millisecond)
	code, body := doJSON(t, "POST", rollbackURL, nil)
	if code != http.StatusConflict {
		t.Fatalf("rollback with empty history: %d %v, want 409", code, body)
	}

	// Re-register heavier behaviour and re-plan: epoch 2, a different
	// prediction, epoch 1 retired into the history.
	if _, err := a.Register(testWorkflow(16 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	infoB := mustPlan(t, a, "wf-test", 1600*time.Millisecond)
	if infoB.Version != 2 || infoB.Predicted == infoA.Predicted {
		t.Fatalf("second plan: version=%d predicted=%v (first %v)", infoB.Version, infoB.Predicted, infoA.Predicted)
	}

	// Rollback restores epoch 1's plan as a fresh epoch.
	code, body = doJSON(t, "POST", rollbackURL, nil)
	if code != http.StatusOK {
		t.Fatalf("rollback: %d %v", code, body)
	}
	if v := body["version"].(float64); v != 3 {
		t.Fatalf("rollback version %v, want 3", v)
	}
	if p := body["predicted_ms"].(float64); p != float64(infoA.Predicted)/1e6 {
		t.Fatalf("rollback predicted %vms, want epoch 1's %vms", p, float64(infoA.Predicted)/1e6)
	}
	code, body = doJSON(t, "GET", srv.URL+"/workflows/wf-test", nil)
	if code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if body["rollbacks"].(float64) != 1 {
		t.Fatalf("status rollbacks %v, want 1", body["rollbacks"])
	}

	// A second rollback is a redo: the displaced epoch 2 comes back.
	code, body = doJSON(t, "POST", rollbackURL, nil)
	if code != http.StatusOK {
		t.Fatalf("redo rollback: %d %v", code, body)
	}
	if p := body["predicted_ms"].(float64); p != float64(infoB.Predicted)/1e6 {
		t.Fatalf("redo predicted %vms, want epoch 2's %vms", p, float64(infoB.Predicted)/1e6)
	}
	if got := reg.Counter("chiron_serve_rollbacks_total", "").Value(); got != 2 {
		t.Fatalf("rollbacks_total = %d, want 2", got)
	}

	// The gateway keeps serving on the restored plan.
	code, body = doJSON(t, "POST", srv.URL+"/workflows/wf-test/invoke", nil)
	if code != http.StatusOK {
		t.Fatalf("invoke after rollbacks: %d %v", code, body)
	}
	if v := body["plan_version"].(float64); v != 4 {
		t.Fatalf("serving plan version %v, want 4", v)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGatewayAdaptiveReplan induces a latency drift (re-registering the
// workflow with 6x heavier functions) under continuous load and expects
// the controller to re-plan and swap the active plan while every
// in-flight and subsequent request still succeeds.
func TestGatewayAdaptiveReplan(t *testing.T) {
	reg := obs.NewRegistry()
	a, srv := httpApp(t, Options{
		Scale:        0.05,
		Reg:          reg,
		Window:       4,
		DriftTrigger: 1.5,
	})
	if _, err := a.Register(testWorkflow(4 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", 600*time.Millisecond)

	var stop atomic.Bool
	var failures atomic.Int64
	var served atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				code, body := doJSON(t, "POST", srv.URL+"/workflows/wf-test/invoke", nil)
				if code != http.StatusOK {
					failures.Add(1)
					t.Errorf("invoke during drift: %d %v", code, body)
					return
				}
				served.Add(1)
			}
		}()
	}

	// Warm up under the original behaviour, then drift.
	waitFor(t, func() bool { return served.Load() >= 8 })
	if _, err := a.Register(testWorkflow(24 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := a.WorkflowStatus("wf-test")
		if err != nil {
			t.Fatal(err)
		}
		if st.Replans >= 1 {
			break
		}
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("drift never triggered a re-plan (served %d)", served.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d requests dropped across the plan swap", failures.Load())
	}
	if got := reg.Counter("chiron_serve_replans_total", "").Value(); got == 0 {
		t.Fatal("replan counter did not move")
	}
	// New arrivals must land on the swapped plan epoch.
	code, body := doJSON(t, "POST", srv.URL+"/workflows/wf-test/invoke", nil)
	if code != http.StatusOK {
		t.Fatalf("post-swap invoke: %d", code)
	}
	if v := body["plan_version"].(float64); v < 2 {
		t.Fatalf("post-swap plan version %v, want >= 2", v)
	}
	st, err := a.WorkflowStatus("wf-test")
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanVersion < 2 {
		t.Fatalf("status plan version %d, want >= 2", st.PlanVersion)
	}
	_ = fmt.Sprintf("served %d", served.Load())
}
