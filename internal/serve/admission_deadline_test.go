package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// deadlineOnlyCtx carries a deadline without ever firing Done: it
// isolates the admission queue's own deadline handling (expired-reject,
// slack ordering, grant-time shed) from the racing ctx.Done path that a
// context.WithTimeout would add on top.
type deadlineOnlyCtx struct {
	context.Context
	dl time.Time
}

func (c deadlineOnlyCtx) Deadline() (time.Time, bool) { return c.dl, true }

// TestAdmissionExpiredDeadlineRejected: a request whose deadline has
// already passed must be refused before it consumes a queue seat or an
// execution slot.
func TestAdmissionExpiredDeadlineRejected(t *testing.T) {
	a := testApp(t, Options{})
	adm := newAdmission(a, 1, 10, 1)
	adm.prime(time.Millisecond)

	ctx := deadlineOnlyCtx{context.Background(), time.Now().Add(-time.Millisecond)}
	if _, err := adm.admit(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired admit: %v, want DeadlineExceeded", err)
	}
	if got := a.m.deadlineExpired.Value(); got != 1 {
		t.Fatalf("deadline_expired_total = %d, want 1", got)
	}
	if d := adm.depth(); d != 0 {
		t.Fatalf("expired request left depth %d", d)
	}
	// The slot was never touched: the next request takes the fast path.
	if _, err := adm.admit(context.Background()); err != nil {
		t.Fatalf("admit after expired reject: %v", err)
	}
	adm.done()
}

// TestAdmissionSlackOrdering: the queue is EDF, not FIFO — a waiter
// with a tight deadline enqueued later is granted before a
// deadline-less waiter that arrived first.
func TestAdmissionSlackOrdering(t *testing.T) {
	a := testApp(t, Options{})
	adm := newAdmission(a, 1, 10, 1)
	adm.prime(time.Millisecond)

	if _, err := adm.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	go func() {
		if _, err := adm.admit(context.Background()); err != nil {
			order <- "fifo-err"
			return
		}
		order <- "fifo"
	}()
	waitFor(t, func() bool { return adm.depth() == 1 })
	go func() {
		ctx := deadlineOnlyCtx{context.Background(), time.Now().Add(30 * time.Second)}
		if _, err := adm.admit(ctx); err != nil {
			order <- "deadline-err"
			return
		}
		order <- "deadline"
	}()
	waitFor(t, func() bool { return adm.depth() == 2 })

	adm.done()
	if first := <-order; first != "deadline" {
		t.Fatalf("first grant went to %q, want the deadline waiter", first)
	}
	adm.done()
	if second := <-order; second != "fifo" {
		t.Fatalf("second grant went to %q, want the FIFO waiter", second)
	}
	adm.done()
}

// TestAdmissionGrantTimeShed: a waiter whose deadline passed while it
// queued is shed at grant time — it gets DeadlineExceeded instead of a
// warm slot it can no longer use, and the slot goes back to the pool.
func TestAdmissionGrantTimeShed(t *testing.T) {
	a := testApp(t, Options{})
	adm := newAdmission(a, 1, 10, 1)
	adm.prime(time.Millisecond)

	if _, err := adm.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		ctx := deadlineOnlyCtx{context.Background(), time.Now().Add(20 * time.Millisecond)}
		_, err := adm.admit(ctx)
		errCh <- err
	}()
	waitFor(t, func() bool { return adm.depth() == 1 })
	time.Sleep(30 * time.Millisecond) // let the waiter's deadline lapse in the queue

	adm.done()
	if err := <-errCh; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-past-deadline waiter: %v, want DeadlineExceeded", err)
	}
	if got := a.m.deadlineShed.Value(); got != 1 {
		t.Fatalf("deadline_shed_total = %d, want 1", got)
	}
	// The shed handed the slot onward (to free, with nobody else queued).
	if _, err := adm.admit(context.Background()); err != nil {
		t.Fatalf("admit after shed: %v", err)
	}
	adm.done()
}

// TestPoolColdCancelAccounting: cancelling an acquire mid-cold-boot must
// unwind leased/total and the resident gauge, leave the coldstarts
// counter monotone, and tick chiron_serve_cold_cancelled_total.
func TestPoolColdCancelAccounting(t *testing.T) {
	a := testApp(t, Options{Scale: 1}) // coldWall = full 167ms ColdStart
	if _, err := a.Register(testWorkflow(4 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", 400*time.Millisecond)
	pool := a.wfs["wf-test"].active.Load().pool

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := pool.acquire(ctx)
		done <- err
	}()
	waitFor(t, func() bool { return a.m.cold.Value() == 1 }) // boot has begun
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: %v, want Canceled", err)
	}

	if got := a.m.coldCancelled.Value(); got != 1 {
		t.Fatalf("cold_cancelled_total = %d, want 1", got)
	}
	if got := a.m.cold.Value(); got != 1 {
		t.Fatalf("coldstarts_total = %d, want 1 (counters stay monotonic)", got)
	}
	st := pool.stats()
	if st.Total != 0 || st.Warm != 0 || st.ResidentMB != 0 {
		t.Fatalf("pool not unwound after cancel: %+v", st)
	}
	pool.mu.Lock()
	leased := pool.leased
	pool.mu.Unlock()
	if leased != 0 {
		t.Fatalf("leased = %d after cancel, want 0", leased)
	}

	// The pool still serves: a fresh acquire boots cold and parks warm.
	cold, err := pool.acquire(context.Background())
	if err != nil || !cold {
		t.Fatalf("acquire after cancel: cold=%v err=%v", cold, err)
	}
	pool.release(time.Now())
	if st := pool.stats(); st.Warm != 1 || st.Total != 1 {
		t.Fatalf("pool after release: %+v", st)
	}
}
