package serve

import (
	"context"
	"math"
	"sync/atomic"
	"time"
)

// admission is the bounded queue in front of one workflow's executor.
//
// A fixed number of slots bound concurrent executions; waiters beyond
// them queue, bounded by maxQueue. Before queueing, the expected sojourn
// is estimated with the same decomposition loadgen simulates — queue
// wait (position x mean service / slots) plus one service time, tracked
// as an EWMA of served requests — and a request whose estimate would
// bust the SLO is rejected immediately with a Retry-After hint instead
// of being queued to die. Estimates are in nominal time; Retry-After is
// converted back to wall time through the scale factor.
type admission struct {
	app      *App
	slots    chan struct{}
	maxQueue int
	scale    float64

	queued atomic.Int64
	ewmaNs atomic.Int64 // nominal mean service time
	sloNs  atomic.Int64
}

func newAdmission(a *App, slots, maxQueue int, scale float64) *admission {
	adm := &admission{
		app:      a,
		slots:    make(chan struct{}, slots),
		maxQueue: maxQueue,
		scale:    scale,
	}
	for i := 0; i < slots; i++ {
		adm.slots <- struct{}{}
	}
	return adm
}

func (a *admission) setSLO(slo time.Duration) { a.sloNs.Store(int64(slo)) }

// slo returns the latency SLO in effect (0 = none). Lock-free; the
// flight recorder reads it on every request.
func (a *admission) slo() time.Duration { return time.Duration(a.sloNs.Load()) }

// prime seeds the service-time estimate (the plan's prediction) so the
// very first requests are admitted against a sane model.
func (a *admission) prime(svc time.Duration) { a.ewmaNs.Store(int64(svc)) }

// observe folds one served execution time into the EWMA (alpha 0.2).
func (a *admission) observe(svc time.Duration) {
	old := a.ewmaNs.Load()
	if old == 0 {
		a.ewmaNs.Store(int64(svc))
		return
	}
	a.ewmaNs.Store(int64(0.8*float64(old) + 0.2*float64(svc)))
}

func (a *admission) depth() int { return int(a.queued.Load()) }

// estWait estimates the nominal queue wait at queue position pos.
func (a *admission) estWait(pos int64) time.Duration {
	svc := time.Duration(a.ewmaNs.Load())
	if pos <= 0 {
		return 0
	}
	return time.Duration(float64(pos) * float64(svc) / float64(cap(a.slots)))
}

// retryAfter converts a nominal backoff into a wall-clock hint, at least
// one millisecond so clients always back off.
func (a *admission) retryAfter(nominal time.Duration) time.Duration {
	wall := time.Duration(float64(nominal) * a.scale)
	if wall < time.Millisecond {
		wall = time.Millisecond
	}
	return wall
}

// admit blocks until an execution slot is free (or ctx is done) and
// returns the nominal queue wait. Requests that would overflow the
// queue, or whose estimated sojourn busts the SLO, get an OverloadError.
func (a *admission) admit(ctx context.Context) (wait time.Duration, err error) {
	select {
	case <-a.slots:
		return 0, nil
	default:
	}

	pos := a.queued.Add(1)
	if int(pos) > a.maxQueue {
		a.queued.Add(-1)
		a.app.m.rejected.Inc()
		return 0, &OverloadError{
			RetryAfter: a.retryAfter(a.estWait(pos)),
			Reason:     "queue full",
		}
	}
	if slo := time.Duration(a.sloNs.Load()); slo > 0 {
		est := a.estWait(pos)
		if svc := time.Duration(a.ewmaNs.Load()); est+svc > slo {
			a.queued.Add(-1)
			a.app.m.rejected.Inc()
			return 0, &OverloadError{
				RetryAfter: a.retryAfter(est + svc - slo),
				Reason:     "queue wait would bust the SLO",
			}
		}
	}

	a.app.m.queued.Add(1)
	t0 := time.Now()
	defer func() {
		a.queued.Add(-1)
		a.app.m.queued.Add(-1)
	}()
	select {
	case <-a.slots:
		wait = time.Duration(float64(time.Since(t0)) / a.scale)
		a.app.m.queueWait.Observe(wait)
		return wait, nil
	case <-ctx.Done():
		return 0, context.Cause(ctx)
	}
}

// done releases the execution slot.
func (a *admission) done() { a.slots <- struct{}{} }

// ceilSeconds renders a Retry-After header value (whole seconds, >= 1).
func ceilSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
