package serve

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// admission is the bounded queue in front of one workflow's executor.
//
// A fixed number of execution slots bound concurrency; waiters beyond
// them queue, bounded by maxQueue. Before queueing, the expected sojourn
// is estimated with the same decomposition loadgen simulates — queue
// wait (position x mean service / slots) plus one service time, tracked
// as an EWMA of served requests — and a request whose estimate would
// bust the SLO is rejected immediately with a Retry-After hint instead
// of being queued to die. Estimates are in nominal time; Retry-After is
// converted back to wall time through the scale factor.
//
// The queue is not FIFO: waiters are ordered by remaining slack
// (deadline - now - predicted execution), so the request closest to
// violating its deadline is served first (EDF). A request whose ctx
// carries a real deadline uses it; one without is ordered by a virtual
// deadline of arrival + SLO (arrival + a large constant when no SLO is
// set), which degrades to FIFO among deadline-less traffic. Requests
// whose deadline has already expired are rejected before they queue,
// and a waiter whose deadline passes while queued is shed at grant time
// instead of being handed a warm slot it can no longer use.
type admission struct {
	app      *App
	capacity int
	maxQueue int
	scale    float64

	mu      sync.Mutex
	free    int
	waiters waiterQueue
	seq     uint64

	queued atomic.Int64 // mirrors len(waiters); lock-free depth()
	ewmaNs atomic.Int64 // nominal mean service time
	sloNs  atomic.Int64
}

// waiter is one queued request. ready is buffered so a grant or shed
// never blocks the releaser; signaled (guarded by admission.mu) marks
// that a decision is already in the buffer, which the cancellation path
// uses to avoid losing a granted slot.
type waiter struct {
	ready    chan error
	deadline time.Time // real ctx deadline; zero when none
	key      int64     // effective deadline (UnixNano) for EDF order
	seq      uint64    // FIFO tie-break
	index    int
	signaled bool
}

func newAdmission(a *App, slots, maxQueue int, scale float64) *admission {
	return &admission{
		app:      a,
		capacity: slots,
		maxQueue: maxQueue,
		scale:    scale,
		free:     slots,
	}
}

func (a *admission) setSLO(slo time.Duration) { a.sloNs.Store(int64(slo)) }

// slo returns the latency SLO in effect (0 = none). Lock-free; the
// flight recorder reads it on every request.
func (a *admission) slo() time.Duration { return time.Duration(a.sloNs.Load()) }

// prime seeds the service-time estimate (the plan's prediction) so the
// very first requests are admitted against a sane model.
func (a *admission) prime(svc time.Duration) { a.ewmaNs.Store(int64(svc)) }

// observe folds one served execution time into the EWMA (alpha 0.2).
func (a *admission) observe(svc time.Duration) {
	old := a.ewmaNs.Load()
	if old == 0 {
		a.ewmaNs.Store(int64(svc))
		return
	}
	a.ewmaNs.Store(int64(0.8*float64(old) + 0.2*float64(svc)))
}

func (a *admission) depth() int { return int(a.queued.Load()) }

// estWait estimates the nominal queue wait at queue position pos.
func (a *admission) estWait(pos int64) time.Duration {
	svc := time.Duration(a.ewmaNs.Load())
	if pos <= 0 {
		return 0
	}
	return time.Duration(float64(pos) * float64(svc) / float64(a.capacity))
}

// retryAfter converts a nominal backoff into a wall-clock hint, at least
// one millisecond so clients always back off.
func (a *admission) retryAfter(nominal time.Duration) time.Duration {
	wall := time.Duration(float64(nominal) * a.scale)
	if wall < time.Millisecond {
		wall = time.Millisecond
	}
	return wall
}

// slackKey computes the EDF ordering key: the wall-clock instant by
// which service must *start* for the request to make its deadline
// (deadline minus the predicted execution, in wall time). Waiters
// without a deadline order by a virtual deadline of arrival + SLO, so
// deadline-less traffic keeps FIFO order among itself while a request
// that is about to die jumps it.
func (a *admission) slackKey(now, deadline time.Time, hasDeadline bool) int64 {
	if hasDeadline {
		svcWall := time.Duration(float64(a.ewmaNs.Load()) * a.scale)
		return deadline.Add(-svcWall).UnixNano()
	}
	off := time.Duration(float64(a.sloNs.Load()) * a.scale)
	if off <= 0 {
		off = time.Hour
	}
	return now.Add(off).UnixNano()
}

// admit blocks until an execution slot is free (or ctx is done) and
// returns the nominal queue wait. Requests that would overflow the
// queue, or whose estimated sojourn busts the SLO, get an OverloadError;
// a request whose deadline has already expired gets
// context.DeadlineExceeded without consuming a queue seat.
func (a *admission) admit(ctx context.Context) (wait time.Duration, err error) {
	deadline, hasDeadline := ctx.Deadline()
	now := time.Now()
	if hasDeadline && !now.Before(deadline) {
		a.app.m.deadlineExpired.Inc()
		return 0, context.DeadlineExceeded
	}

	a.mu.Lock()
	if a.free > 0 {
		a.free--
		a.mu.Unlock()
		return 0, nil
	}
	pos := int64(len(a.waiters)) + 1
	if int(pos) > a.maxQueue {
		a.mu.Unlock()
		a.app.m.rejected.Inc()
		return 0, &OverloadError{
			RetryAfter: a.retryAfter(a.estWait(pos)),
			Reason:     "queue full",
		}
	}
	if slo := time.Duration(a.sloNs.Load()); slo > 0 {
		est := a.estWait(pos)
		if svc := time.Duration(a.ewmaNs.Load()); est+svc > slo {
			a.mu.Unlock()
			a.app.m.rejected.Inc()
			return 0, &OverloadError{
				RetryAfter: a.retryAfter(est + svc - slo),
				Reason:     "queue wait would bust the SLO",
			}
		}
	}
	a.seq++
	w := &waiter{
		ready: make(chan error, 1),
		key:   a.slackKey(now, deadline, hasDeadline),
		seq:   a.seq,
	}
	if hasDeadline {
		w.deadline = deadline
	}
	a.waiters.push(w)
	a.queued.Store(int64(len(a.waiters)))
	a.mu.Unlock()

	a.app.m.queued.Add(1)
	defer a.app.m.queued.Add(-1)
	select {
	case err := <-w.ready:
		if err != nil {
			// Shed at grant time: the deadline passed while queued.
			return 0, err
		}
		wait = time.Duration(float64(time.Since(now)) / a.scale)
		a.app.m.queueWait.Observe(wait)
		return wait, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.signaled {
			a.mu.Unlock()
			// The decision raced the cancellation and is already in the
			// buffer; a granted slot must be handed onward, not lost.
			if err := <-w.ready; err == nil {
				a.release()
			}
			return 0, context.Cause(ctx)
		}
		a.waiters.remove(w.index)
		a.queued.Store(int64(len(a.waiters)))
		a.mu.Unlock()
		return 0, context.Cause(ctx)
	}
}

// done releases the execution slot: the waiter with the least remaining
// slack is granted it, dead-on-arrival waiters are shed on the way.
func (a *admission) done() { a.release() }

func (a *admission) release() {
	now := time.Now()
	for {
		a.mu.Lock()
		w := a.waiters.popMin()
		if w == nil {
			a.free++
			a.mu.Unlock()
			return
		}
		a.queued.Store(int64(len(a.waiters)))
		w.signaled = true
		if !w.deadline.IsZero() && !now.Before(w.deadline) {
			// Already dead: signal the shed (buffered, never blocks) and
			// offer the slot to the next waiter instead of burning a
			// warm instance on a request nobody is waiting for.
			w.ready <- context.DeadlineExceeded
			a.mu.Unlock()
			a.app.m.deadlineShed.Inc()
			continue
		}
		w.ready <- nil
		a.mu.Unlock()
		return
	}
}

// ceilSeconds renders a Retry-After header value (whole seconds, >= 1).
func ceilSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// waiterQueue is a hand-rolled binary min-heap over (key, seq): least
// effective deadline first, FIFO among equals. Hand-rolled rather than
// container/heap so push/pop stay free of interface boxing.
type waiterQueue []*waiter

func (q waiterQueue) less(i, j int) bool {
	if q[i].key != q[j].key {
		return q[i].key < q[j].key
	}
	return q[i].seq < q[j].seq
}

func (q waiterQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *waiterQueue) push(w *waiter) {
	w.index = len(*q)
	*q = append(*q, w)
	q.up(w.index)
}

func (q *waiterQueue) popMin() *waiter {
	old := *q
	if len(old) == 0 {
		return nil
	}
	w := old[0]
	n := len(old) - 1
	old.swap(0, n)
	old[n] = nil
	*q = old[:n]
	if n > 0 {
		q.down(0)
	}
	w.index = -1
	return w
}

func (q *waiterQueue) remove(i int) {
	old := *q
	n := len(old) - 1
	w := old[i]
	if i != n {
		old.swap(i, n)
	}
	old[n] = nil
	*q = old[:n]
	if i != n && n > 0 {
		q.down(i)
		q.up(i)
	}
	w.index = -1
}

func (q waiterQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q waiterQueue) down(i int) {
	n := len(q)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		q.swap(i, small)
		i = small
	}
}
