package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/obs"
)

// testWorkflow builds a small 2-stage workflow whose function cost is
// parameterized, so drift can be induced by re-registering with a
// heavier cpu.
func testWorkflow(cpu time.Duration) *dag.Workflow {
	mk := func(name string) *behavior.Spec {
		return &behavior.Spec{
			Name: name, Runtime: behavior.Python,
			Segments: []behavior.Segment{
				{Kind: behavior.CPU, Dur: cpu},
				{Kind: behavior.NetIO, Dur: cpu / 2},
			},
			MemMB: 64,
		}
	}
	w, err := dag.FromStages("wf-test", 0,
		[]*behavior.Spec{mk("f1")},
		[]*behavior.Spec{mk("f2"), mk("f3")},
	)
	if err != nil {
		panic(err)
	}
	return w
}

func testApp(t *testing.T, opt Options) *App {
	t.Helper()
	if opt.Reg == nil {
		opt.Reg = obs.NewRegistry()
	}
	a := New(opt)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = a.Shutdown(ctx)
	})
	return a
}

func mustPlan(t *testing.T, a *App, name string, slo time.Duration) *PlanInfo {
	t.Helper()
	info, err := a.PlanWorkflow(name, slo)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestRegisterPlanInvoke(t *testing.T) {
	a := testApp(t, Options{Scale: 0.05, Window: 4})
	created, err := a.Register(testWorkflow(4 * time.Millisecond))
	if err != nil || !created {
		t.Fatalf("register: created=%v err=%v", created, err)
	}
	// Invoke before plan must be refused.
	if _, err := a.Invoke(context.Background(), "wf-test", nil); !errors.Is(err, ErrNoPlan) {
		t.Fatalf("invoke without plan: %v", err)
	}
	info := mustPlan(t, a, "wf-test", 400*time.Millisecond)
	if info.Version != 1 || info.Predicted <= 0 {
		t.Fatalf("plan info %+v", info)
	}
	res, err := a.Invoke(context.Background(), "wf-test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cold {
		t.Fatal("first invocation should be cold")
	}
	if res.PlanVersion != 1 || len(res.Functions) != 3 || res.E2EMs <= 0 {
		t.Fatalf("result %+v", res)
	}
	if res.TotalMs < res.E2EMs+res.ColdStartMs {
		t.Fatalf("total %v < e2e %v + cold %v", res.TotalMs, res.E2EMs, res.ColdStartMs)
	}
}

func TestWarmPoolReuseAndKeepAlive(t *testing.T) {
	reg := obs.NewRegistry()
	a := testApp(t, Options{Scale: 0.05, KeepAlive: 40 * time.Millisecond, Reg: reg})
	if _, err := a.Register(testWorkflow(4 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", 400*time.Millisecond)

	for i := 0; i < 5; i++ {
		if _, err := a.Invoke(context.Background(), "wf-test", nil); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	cold := reg.Counter("chiron_serve_coldstarts_total", "").Value()
	warm := reg.Counter("chiron_serve_warmhits_total", "").Value()
	if cold != 1 {
		t.Fatalf("cold starts = %d, want 1 (steady sequential load must reuse the warm instance)", cold)
	}
	if warm != 4 {
		t.Fatalf("warm hits = %d, want 4", warm)
	}

	// Past the keep-alive the instance is evicted and the next request
	// boots cold again.
	deadline := time.Now().Add(3 * time.Second)
	for reg.Gauge("chiron_serve_warm_instances", "").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("warm instance not evicted after keep-alive")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := a.Invoke(context.Background(), "wf-test", nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("chiron_serve_coldstarts_total", "").Value(); got != 2 {
		t.Fatalf("cold starts after eviction = %d, want 2", got)
	}
}

func TestAdmissionSLORejection(t *testing.T) {
	a := testApp(t, Options{Scale: 1})
	adm := newAdmission(a, 1, 10, 1)
	adm.setSLO(100 * time.Millisecond)
	adm.prime(80 * time.Millisecond)

	if _, err := adm.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Slot taken; the next request's estimated sojourn (80ms wait + 80ms
	// service) busts the 100ms SLO.
	_, err := adm.admit(context.Background())
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("expected OverloadError, got %v", err)
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("retry-after %v", ov.RetryAfter)
	}
	adm.done()
	if _, err := adm.admit(context.Background()); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := testApp(t, Options{Scale: 1})
	adm := newAdmission(a, 1, 1, 1)
	adm.prime(10 * time.Millisecond) // no SLO: only the depth bound applies

	if _, err := adm.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	waiting := make(chan error, 1)
	go func() {
		_, err := adm.admit(context.Background())
		waiting <- err
	}()
	// Wait for the queued request to occupy the single queue seat.
	deadline := time.Now().Add(2 * time.Second)
	for adm.depth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never registered")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := adm.admit(context.Background())
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("expected queue-full OverloadError, got %v", err)
	}
	adm.done() // serve the queued request
	if err := <-waiting; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
}

func TestShutdownDrainsInflight(t *testing.T) {
	a := testApp(t, Options{Scale: 0.5})
	if _, err := a.Register(testWorkflow(40 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", 2*time.Second)

	started := make(chan struct{})
	invoked := make(chan error, 1)
	go func() {
		close(started)
		_, err := a.Invoke(context.Background(), "wf-test", nil)
		invoked <- err
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the invocation enter execution
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-invoked; err != nil {
		t.Fatalf("in-flight invocation dropped during drain: %v", err)
	}
	if _, err := a.Invoke(context.Background(), "wf-test", nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain invoke: %v", err)
	}
}

// drainObservations waits until the controller loop has consumed every
// queued observation and finished acting on the last one (the in-flight
// Observe holds wf.mu, so locking it is the completion barrier).
func drainObservations(t *testing.T, wf *workflowState) {
	t.Helper()
	waitFor(t, func() bool { return len(wf.obsCh) == 0 })
	wf.mu.Lock()
	_ = wf.ctrl
	wf.mu.Unlock()
}

// feedWindow injects one full controller window of identical latencies
// at the same point real serving feeds them (wf.feed), making the
// "constant executor overhead" of the churn bug deterministic.
func feedWindow(t *testing.T, wf *workflowState, lat time.Duration, window int) {
	t.Helper()
	for i := 0; i < window; i++ {
		wf.feed(lat)
	}
	drainObservations(t, wf)
}

// TestConstantOverheadDoesNotChurn is the serving-plane regression test
// for the re-plan churn bug: a constant executor overhead (every served
// latency = 2x the prediction, well past the 1.3x drift trigger) must
// calibrate away after the first window — chiron_serve_replans_total
// stays at 0 — while a genuine behaviour drift afterwards still
// triggers exactly one re-plan.
func TestConstantOverheadDoesNotChurn(t *testing.T) {
	const window = 4
	reg := obs.NewRegistry()
	a := testApp(t, Options{Scale: 0.05, Reg: reg, Window: window})
	if _, err := a.Register(testWorkflow(4 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// Generous SLO: the overhead is a bias, not a violation.
	info := mustPlan(t, a, "wf-test", 5*time.Second)
	wf, err := a.workflow("wf-test")
	if err != nil {
		t.Fatal(err)
	}

	replans := func() uint64 { return reg.Counter("chiron_serve_replans_total", "").Value() }
	biased := time.Duration(2.0 * float64(info.Predicted))
	for w := 0; w < 6; w++ {
		feedWindow(t, wf, biased, window)
	}
	if got := replans(); got != 0 {
		t.Fatalf("constant 2x overhead caused %d re-plans, want 0 (churn bug)", got)
	}
	if got := reg.Counter("chiron_serve_replans_suppressed_total", "").Value(); got != 0 {
		t.Fatalf("constant overhead tripped %d suppressed triggers, want 0", got)
	}
	if b := reg.Gauge("chiron_adapt_bias", "").Value(); b < 1900 || b > 2100 {
		t.Fatalf("bias gauge = %d, want ~2000 (observed/predicted x1000)", b)
	}

	// Genuine drift: the behaviour itself gets 6x heavier, and observed
	// latency under the stale plan jumps far past the corrected
	// baseline. Exactly one adaptation must follow.
	if _, err := a.Register(testWorkflow(24 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	feedWindow(t, wf, 8*info.Predicted, window)
	if got := replans(); got != 1 {
		t.Fatalf("genuine drift caused %d re-plans, want exactly 1", got)
	}
	cur, err := a.ActivePlan("wf-test")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != 2 {
		t.Fatalf("post-drift plan version %d, want 2", cur.Version)
	}

	// Post-swap steady state at the new plan's own latency: probation
	// passes, the controller re-calibrates, and nothing else churns.
	for w := 0; w < 5; w++ {
		feedWindow(t, wf, cur.Predicted, window)
	}
	if got := replans(); got != 1 {
		t.Fatalf("post-swap churn: %d re-plans, want still 1", got)
	}
	st, err := a.WorkflowStatus("wf-test")
	if err != nil {
		t.Fatal(err)
	}
	if st.Replans != 1 || st.Rollbacks != 0 {
		t.Fatalf("status replans=%d rollbacks=%d, want 1/0", st.Replans, st.Rollbacks)
	}
}

// TestAutoRollbackOnPostSwapRegression: when the first full window after
// an adaptive swap is worse than the pre-swap baseline, the serving
// plane restores the prior plan epoch on its own.
func TestAutoRollbackOnPostSwapRegression(t *testing.T) {
	const window = 4
	reg := obs.NewRegistry()
	a := testApp(t, Options{Scale: 0.05, Reg: reg, Window: window})
	if _, err := a.Register(testWorkflow(4 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	info := mustPlan(t, a, "wf-test", 5*time.Second)
	wf, err := a.workflow("wf-test")
	if err != nil {
		t.Fatal(err)
	}

	// Calibrate (bias 1) and clear the cooldown, then drift for real.
	for w := 0; w < 3; w++ {
		feedWindow(t, wf, info.Predicted, window)
	}
	if _, err := a.Register(testWorkflow(24 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	preSwap := 8 * info.Predicted
	feedWindow(t, wf, preSwap, window)
	if got := reg.Counter("chiron_serve_replans_total", "").Value(); got != 1 {
		t.Fatalf("drift caused %d re-plans, want 1", got)
	}

	// The swap made things WORSE: the probation window regresses past
	// RollbackGuard x the pre-swap mean, so the controller rolls back.
	feedWindow(t, wf, 2*preSwap, window)
	if got := reg.Counter("chiron_serve_rollbacks_total", "").Value(); got != 1 {
		t.Fatalf("rollbacks_total = %d, want 1", got)
	}
	cur, err := a.ActivePlan("wf-test")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Predicted != info.Predicted {
		t.Fatalf("rolled-back prediction %v, want the original %v", cur.Predicted, info.Predicted)
	}
	if cur.Version != 3 {
		t.Fatalf("post-rollback version %d, want 3 (v1 restored as a fresh epoch)", cur.Version)
	}
	st, err := a.WorkflowStatus("wf-test")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rollbacks != 1 {
		t.Fatalf("status rollbacks = %d, want 1", st.Rollbacks)
	}
	found := false
	for _, v := range st.History {
		if v == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("regressed epoch 2 missing from history %v", st.History)
	}

	// The restored plan keeps serving: quiet windows recalibrate without
	// further churn, and invocations execute on it.
	feedWindow(t, wf, info.Predicted, window)
	if got := reg.Counter("chiron_serve_rollbacks_total", "").Value(); got != 1 {
		t.Fatalf("rollback churned: %d rollbacks", got)
	}
	if _, err := a.Invoke(context.Background(), "wf-test", nil); err != nil {
		t.Fatalf("invoke on restored plan: %v", err)
	}
}

func TestStalePlanReported(t *testing.T) {
	a := testApp(t, Options{Scale: 0.05})
	if _, err := a.Register(testWorkflow(2 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", 400*time.Millisecond)
	// Re-register with an extra function: the active plan has no
	// placement for it.
	w := testWorkflow(2 * time.Millisecond)
	w.Stages[0].Functions = append(w.Stages[0].Functions, &behavior.Spec{
		Name: "f-new", Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: time.Millisecond}},
		MemMB:    8,
	})
	if _, err := a.Register(w); err != nil {
		t.Fatal(err)
	}
	_, err := a.Invoke(context.Background(), "wf-test", nil)
	if !errors.Is(err, ErrStalePlan) {
		t.Fatalf("expected ErrStalePlan, got %v", err)
	}
	// Re-planning heals it.
	mustPlan(t, a, "wf-test", 400*time.Millisecond)
	if _, err := a.Invoke(context.Background(), "wf-test", nil); err != nil {
		t.Fatal(err)
	}
}
