package serve

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
)

// settleGoroutines waits for the goroutine count to return to within
// slack of baseline and reports the final count (the runtime needs a
// moment to retire exiting goroutines).
func settleGoroutines(baseline, slack int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline+slack {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
	return n
}

// tailWorkflow is a single-function workflow whose NetIO segment
// carries a heavy-tailed straggler: prob of the live executions stall
// an extra tail on top of base.
func tailWorkflow(base, tail time.Duration, prob float64) *dag.Workflow {
	w, err := dag.FromStages("wf-tail", 0, []*behavior.Spec{{
		Name: "f-tail", Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: base / 4},
			{Kind: behavior.NetIO, Dur: base / 2, TailDur: tail, TailProb: prob},
			{Kind: behavior.CPU, Dur: base / 4},
		},
		MemMB: 16,
	}})
	if err != nil {
		panic(err)
	}
	return w
}

// TestHedgeLifecycleNoLeak: with an aggressive quantile every request
// arms a hedge; each must deliver exactly one result, return both
// leases, and leave no goroutine behind.
func TestHedgeLifecycleNoLeak(t *testing.T) {
	a := testApp(t, Options{Scale: 0.05, HedgeQuantile: 0.05})
	if _, err := a.Register(testWorkflow(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", 400*time.Millisecond)

	before := runtime.NumGoroutine()
	const n = 5
	for i := 0; i < n; i++ {
		res, err := a.Invoke(context.Background(), "wf-test", nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Hedged {
			t.Fatalf("invoke %d: hedge did not arm (quantile 0.05)", i)
		}
		if res.InvocationID == 0 {
			t.Fatalf("invoke %d: zero invocation id", i)
		}
	}

	if got := a.m.hedges.Value(); got != n {
		t.Fatalf("hedges_total = %d, want %d", got, n)
	}
	if w, l := a.m.hedgeWins.Value(), a.m.hedgeWasted.Value(); w+l != n {
		t.Fatalf("hedge_wins %d + hedge_wasted %d != hedges %d", w, l, n)
	}
	// Exactly-once: one completion counted per request, no duplicates.
	if got := a.m.requests.Value(); got != n {
		t.Fatalf("requests_total = %d, want %d (exactly-once)", got, n)
	}
	pool := a.wfs["wf-test"].active.Load().pool
	pool.mu.Lock()
	leased := pool.leased
	pool.mu.Unlock()
	if leased != 0 {
		t.Fatalf("leased = %d after all requests done, want 0", leased)
	}
	if after := settleGoroutines(before, 2); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestHedgeWinsCutStraggler: with a 50% 400ms tail and a hedge delay
// past the base latency, hedges fire only for straggling primaries and
// some must win (the hedge attempt redraws the tail). The win rate is
// probabilistic but the zero-wins probability over 64 requests is
// ~0.75^64 ≈ 1e-8.
func TestHedgeWinsCutStraggler(t *testing.T) {
	a := testApp(t, Options{Scale: 0.05, HedgeQuantile: 2})
	if _, err := a.Register(tailWorkflow(10*time.Millisecond, 400*time.Millisecond, 0.5)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-tail", time.Second)

	const n = 64
	for i := 0; i < n; i++ {
		if _, err := a.Invoke(context.Background(), "wf-tail", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.m.requests.Value(); got != n {
		t.Fatalf("requests_total = %d, want %d", got, n)
	}
	if a.m.hedges.Value() == 0 {
		t.Fatal("no hedge ever armed against a 50% straggler")
	}
	if a.m.hedgeWins.Value() == 0 {
		t.Fatal("no hedge ever won against a 50% straggler")
	}
	if w, l, h := a.m.hedgeWins.Value(), a.m.hedgeWasted.Value(), a.m.hedges.Value(); w+l != h {
		t.Fatalf("hedge_wins %d + hedge_wasted %d != hedges %d", w, l, h)
	}
}

// TestHedgeDisabledParity: with hedging off (quantile 0) and with it
// armed-but-never-firing (huge quantile), responses are structurally
// identical — same fields, Hedged false, zero hedge counters — so
// enabling the feature without tripping it changes nothing observable.
func TestHedgeDisabledParity(t *testing.T) {
	invoke := func(q float64) (*InvokeResult, *App) {
		a := testApp(t, Options{Scale: 0.05, HedgeQuantile: q})
		if _, err := a.Register(testWorkflow(4 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		mustPlan(t, a, "wf-test", 400*time.Millisecond)
		res, err := a.Invoke(context.Background(), "wf-test", nil)
		if err != nil {
			t.Fatal(err)
		}
		return res, a
	}
	off, appOff := invoke(0)
	huge, appHuge := invoke(1000)

	for name, app := range map[string]*App{"off": appOff, "huge-quantile": appHuge} {
		if h := app.m.hedges.Value(); h != 0 {
			t.Fatalf("%s: hedges_total = %d, want 0", name, h)
		}
		if w, l := app.m.hedgeWins.Value(), app.m.hedgeWasted.Value(); w != 0 || l != 0 {
			t.Fatalf("%s: hedge win/wasted = %d/%d, want 0/0", name, w, l)
		}
	}
	if off.Hedged || huge.Hedged {
		t.Fatalf("hedged flags: off=%v huge=%v, want false/false", off.Hedged, huge.Hedged)
	}

	// Byte parity modulo measured time: zero the timing/trace fields and
	// the serialized responses must be identical.
	strip := func(r *InvokeResult) []byte {
		c := *r
		c.ColdStartMs, c.QueueWaitMs, c.E2EMs, c.TotalMs = 0, 0, 0, 0
		c.FlightTraceID = 0
		c.Functions = nil
		b, err := json.Marshal(&c)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := strip(off), strip(huge); string(a) != string(b) {
		t.Fatalf("response shape diverged:\n off: %s\nhuge: %s", a, b)
	}
}

// TestHedgedInvokeStampede: 100 concurrent hedged invocations against
// one workflow (run under -race via make ci). Admission may shed with
// OverloadError under the burst; everything admitted must complete
// exactly once and unwind fully.
func TestHedgedInvokeStampede(t *testing.T) {
	a := testApp(t, Options{
		Scale: 0.02, HedgeQuantile: 0.2,
		MaxConcurrency: 32, MaxQueue: 256,
	})
	if _, err := a.Register(testWorkflow(5 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	mustPlan(t, a, "wf-test", 0)

	before := runtime.NumGoroutine()
	const n = 100
	var served, overloaded atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := a.Invoke(context.Background(), "wf-test", nil)
			switch {
			case err == nil:
				served.Add(1)
			case func() bool { var ov *OverloadError; return errors.As(err, &ov) }():
				overloaded.Add(1)
			default:
				t.Errorf("stampede invoke: %v", err)
			}
		}()
	}
	wg.Wait()

	if served.Load()+overloaded.Load() != n {
		t.Fatalf("served %d + overloaded %d != %d", served.Load(), overloaded.Load(), n)
	}
	if got := a.m.requests.Value(); got != served.Load() {
		t.Fatalf("requests_total = %d, want %d (exactly-once under stampede)", got, served.Load())
	}
	if w, l, h := a.m.hedgeWins.Value(), a.m.hedgeWasted.Value(), a.m.hedges.Value(); w+l != h {
		t.Fatalf("hedge_wins %d + hedge_wasted %d != hedges %d", w, l, h)
	}
	pool := a.wfs["wf-test"].active.Load().pool
	pool.mu.Lock()
	leased := pool.leased
	pool.mu.Unlock()
	if leased != 0 {
		t.Fatalf("leased = %d after stampede, want 0", leased)
	}
	if a.hedgeInflight.Load() != 0 {
		t.Fatalf("hedgeInflight = %d after stampede, want 0", a.hedgeInflight.Load())
	}
	if after := settleGoroutines(before, 4); after > before+4 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestRegisterBuiltinTailHeavy: the TailHeavy hedging testbed is
// registrable through the builtin path (Extras, not the paper Suite).
func TestRegisterBuiltinTailHeavy(t *testing.T) {
	a := testApp(t, Options{Scale: 0.05})
	created, err := a.RegisterBuiltin("TailHeavy")
	if err != nil || !created {
		t.Fatalf("RegisterBuiltin(TailHeavy): created=%v err=%v", created, err)
	}
	mustPlan(t, a, "TailHeavy", 0)
	if _, err := a.Invoke(context.Background(), "TailHeavy", nil); err != nil {
		t.Fatal(err)
	}
}
