package serve

import (
	"context"
	"sync/atomic"
	"time"

	"chiron/internal/dag"
	"chiron/internal/live"
	"chiron/internal/obs"
)

// Request hedging (the Archipelago trick): once a request has been
// executing for a configurable quantile of its plan's bias-corrected
// predicted latency, a second warm instance is leased and the same
// invocation re-issued on it. The first completion wins; the loser's
// context is cancelled and its instance returned. All hedge state is
// per-request stack state — nothing persists between invocations, so a
// crashed gateway reconstructs hedging behaviour from the plan alone.

// hedgeDelay returns the wall-clock in-flight duration after which this
// workflow's requests arm a hedge: HedgeQuantile x the bias-corrected
// predicted latency (falling back to the admission service-time EWMA
// before the first correction lands), converted to wall time through
// Scale. Zero disables hedging for the request. Lock-free — it sits on
// every invocation.
func (a *App) hedgeDelay(wf *workflowState) time.Duration {
	q := a.opt.HedgeQuantile
	if q <= 0 {
		return 0
	}
	nominal := wf.correctedNs.Load()
	if nominal <= 0 {
		nominal = wf.adm.ewmaNs.Load()
	}
	if nominal <= 0 {
		return 0
	}
	return time.Duration(q * float64(nominal) * a.opt.Scale)
}

// hedgeAttempt is one attempt's completion. won marks the attempt that
// claimed the per-request result race — at most one attempt ever has
// it, which is what makes result delivery exactly once.
type hedgeAttempt struct {
	res  *live.Result
	err  error
	idx  int // 0 = primary, 1 = hedge
	cold bool
	won  bool
}

// runHedged executes the invocation with a hedge armed. The primary
// attempt starts immediately on the lease the caller already holds; if
// it has not completed after delay, a second instance is leased
// (subject to the global HedgeMaxInflight cap) and the invocation
// re-issued on it. A CAS over per-request state decides the winner, the
// loser's context is cancelled, and runHedged does not return until
// every attempt it started has fully unwound — no goroutine outlives
// the request, and both leases are always returned.
//
// winner reports which attempt's result was delivered (0 primary,
// 1 hedge); hedged reports whether the second attempt was launched at
// all.
func (a *App) runHedged(ctx context.Context, ps *planState, beh *dag.Workflow, runRec obs.Recorder, delay time.Duration) (res *live.Result, hedged bool, winner int, err error) {
	var claim atomic.Uint32
	done := make(chan hedgeAttempt, 2)
	primCtx, cancelPrim := context.WithCancel(ctx)
	defer cancelPrim()
	hedgeCtx, cancelHedge := context.WithCancel(ctx)
	defer cancelHedge()

	run := func(rctx context.Context, idx int, cold bool) {
		r, rerr := live.RunCtx(rctx, beh, ps.plan, live.Options{
			Const:   a.opt.Const,
			Scale:   a.opt.Scale,
			Timeout: a.opt.RequestTimeout,
			Rec:     runRec,
		})
		ps.pool.release(time.Now())
		won := rerr == nil && claim.CompareAndSwap(0, uint32(idx)+1)
		done <- hedgeAttempt{res: r, err: rerr, idx: idx, cold: cold, won: won}
	}
	go run(primCtx, 0, false)

	outstanding := 1
	var first *hedgeAttempt
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case at := <-done:
		first = &at
	case <-timer.C:
		// The primary is past the quantile: arm the hedge, unless the
		// global cap says the cure has become the disease.
		if a.hedgeInflight.Add(1) > int64(a.opt.HedgeMaxInflight) {
			a.hedgeInflight.Add(-1)
		} else {
			hedged = true
			outstanding = 2
			a.m.hedges.Inc()
			if runRec != nil {
				runRec.RecordInstant(obs.Instant{
					Name: "hedge.armed", Cat: obs.CatHedge,
					At: time.Duration(float64(delay) / a.opt.Scale),
				})
			}
			go func() {
				defer a.hedgeInflight.Add(-1)
				// The hedge leases its own instance; a cancelled boot is
				// unwound by acquireN's rollback accounting.
				cold, aerr := ps.pool.acquire(hedgeCtx)
				if aerr != nil {
					done <- hedgeAttempt{err: aerr, idx: 1}
					return
				}
				run(hedgeCtx, 1, cold)
			}()
		}
	}

	// Drain every attempt before returning. The first successful
	// completion claims the race and cancels the loser, whose RunCtx
	// tears down promptly (its sleeps select on ctx.Done); a loser that
	// finished before the cancellation landed simply loses the CAS.
	var win hedgeAttempt
	haveWin := false
	var primErr error
	received := 0
	handle := func(at hedgeAttempt) {
		received++
		if at.idx == 0 {
			primErr = at.err
		}
		if at.won && !haveWin {
			win, haveWin = at, true
			cancelPrim()
			cancelHedge()
		}
	}
	if first != nil {
		handle(*first)
	}
	for received < outstanding {
		handle(<-done)
	}
	if !haveWin {
		// Every attempt failed; the primary's error is the request's.
		return nil, hedged, 0, primErr
	}
	return win.res, hedged, win.idx, nil
}
