package serve

// /debug/flight: the operator's window into the always-on flight
// recorder. Listing is cheap (summaries only); fetching a trace copies
// it through the Chrome trace_event exporter so the output loads
// directly in Perfetto / chrome://tracing.

import (
	"fmt"
	"net/http"
	"strconv"
)

// handleReadyz is the readiness probe: 200 while serving, 503 once a
// drain has begun so load balancers stop routing before the listener
// closes. Liveness (/healthz) stays 200 throughout the drain.
func (a *App) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if a.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleFlightList returns the retained traces (newest first, with
// reason tags) and the adapt/burn annotation log.
func (a *App) handleFlightList(w http.ResponseWriter, r *http.Request) {
	fl := a.opt.Flight
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"retained":    fl.List(),
		"annotations": fl.Annotations(),
	})
}

// handleFlightTrace streams one retained trace as Chrome trace_event
// JSON. 404 when the id was never kept or has been evicted by the ring.
func (a *App) handleFlightTrace(w http.ResponseWriter, r *http.Request) {
	idStr := r.URL.Query().Get("id")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil || id == 0 {
		writeErr(w, fmt.Errorf("%w: bad trace id %q", errBadRequest, idStr))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := a.opt.Flight.WriteChrome(id, w); err != nil {
		// Headers may not have flushed yet for an unknown id because
		// WriteChrome fails before writing; map to 404.
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
	}
}

// handleFlightForce arms dump-on-demand: the next n finished requests
// are retained regardless of the sampling rules (default 1, cap 64).
func (a *App) handleFlightForce(w http.ResponseWriter, r *http.Request) {
	n := 1
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			writeErr(w, fmt.Errorf("%w: bad count %q", errBadRequest, s))
			return
		}
		n = v
	}
	if n > 64 {
		n = 64
	}
	a.opt.Flight.ForceNext(n)
	writeJSON(w, http.StatusOK, map[string]int{"forced": n})
}
