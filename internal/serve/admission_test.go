package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAdmissionSLORejectKeepsQueueAccounting: a rejection on the SLO
// sojourn check must give back its queue position. Pre-fix symptoms
// would be a depth() that creeps up with every rejection until the
// queue reads full with nobody in it.
func TestAdmissionSLORejectKeepsQueueAccounting(t *testing.T) {
	a := testApp(t, Options{})
	adm := newAdmission(a, 1, 10, 1)
	adm.setSLO(100 * time.Millisecond)
	adm.prime(80 * time.Millisecond)

	if _, err := adm.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		_, err := adm.admit(context.Background())
		var ov *OverloadError
		if !errors.As(err, &ov) {
			t.Fatalf("reject %d: %v, want OverloadError", i, err)
		}
		if d := adm.depth(); d != 0 {
			t.Fatalf("reject %d leaked a queue seat: depth=%d", i, d)
		}
	}
	adm.done()
	if _, err := adm.admit(context.Background()); err != nil {
		t.Fatalf("admit after release: %v", err)
	}

	// With the SLO check out of the way, a waiter still gets the seat
	// the rejections must not have consumed.
	adm.setSLO(0)
	waiting := make(chan error, 1)
	go func() {
		_, err := adm.admit(context.Background())
		waiting <- err
	}()
	waitFor(t, func() bool { return adm.depth() == 1 })
	adm.done()
	if err := <-waiting; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

// TestAdmissionObserveRacesPrime exercises the swap-time race: the
// controller primes the EWMA from the fresh plan's prediction while
// completing requests of the old epoch keep folding observations in.
// Run under -race (make ci); the invariant is that the estimate stays
// inside the envelope of its inputs.
func TestAdmissionObserveRacesPrime(t *testing.T) {
	a := testApp(t, Options{})
	adm := newAdmission(a, 1, 1, 1)
	adm.prime(100 * time.Millisecond)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			adm.prime(100 * time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			adm.observe(50 * time.Millisecond)
			_ = adm.estWait(1)
		}
	}()
	wg.Wait()
	got := time.Duration(adm.ewmaNs.Load())
	if got < 50*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("EWMA %v left the [50ms, 100ms] input envelope", got)
	}
}

// TestAdmissionRetryAfterSubMillisecond: at aggressive time compression
// the nominal backoff shrinks below a millisecond of wall clock; the
// Retry-After hint must floor at 1ms (and its header rendering at 1s)
// so clients always back off a nonzero amount.
func TestAdmissionRetryAfterSubMillisecond(t *testing.T) {
	a := testApp(t, Options{})
	adm := newAdmission(a, 1, 1, 0.001) // 1000x compression
	adm.prime(time.Millisecond)

	if got := adm.retryAfter(100 * time.Microsecond); got != time.Millisecond {
		t.Fatalf("retryAfter(100µs nominal) = %v, want the 1ms floor", got)
	}

	// Through admit: slot taken, seat taken, the next request is
	// rejected queue-full with a nominal wait of ~2ms -> 2µs wall.
	if _, err := adm.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	waiting := make(chan error, 1)
	go func() {
		_, err := adm.admit(context.Background())
		waiting <- err
	}()
	waitFor(t, func() bool { return adm.depth() == 1 })
	_, err := adm.admit(context.Background())
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("expected queue-full OverloadError, got %v", err)
	}
	if ov.RetryAfter != time.Millisecond {
		t.Fatalf("sub-ms overload RetryAfter = %v, want the 1ms floor", ov.RetryAfter)
	}
	adm.done()
	if err := <-waiting; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}

	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{500 * time.Microsecond, 1},
		{time.Millisecond, 1},
		{1500 * time.Millisecond, 2},
		{3 * time.Second, 3},
	} {
		if got := ceilSeconds(tc.d); got != tc.want {
			t.Errorf("ceilSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}
