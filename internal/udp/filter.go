package udp

import "encoding/binary"

// Filter is the stateless first-bytes packet filter the receive loop
// runs before any parsing or dispatch: a datagram that fails it is
// dropped on the floor with one counter tick and zero further work.
// It rejects on length bounds, magic/version prefix, type range, the
// payload-size field, and the header check — all from fixed offsets,
// no allocation, no state.
//
// The check covers the full header plus the datagram length, so random
// junk, reflected/truncated packets, and wrong-version traffic all die
// here; only well-formed protocol datagrams reach ParseHeader (which
// then cannot fail, but stays defensive).
func Filter(b []byte) bool {
	if len(b) < HeaderSize || len(b) > MaxDatagram {
		return false
	}
	if b[0] != magic[0] || b[1] != magic[1] || b[2] != magic[2] || b[3] != magic[3] {
		return false
	}
	if b[4] < TypeConnect || b[4] > TypeAck {
		return false
	}
	if binary.LittleEndian.Uint32(b[36:40]) != uint32(len(b)-HeaderSize) {
		return false
	}
	return binary.LittleEndian.Uint16(b[6:8]) == pktCheck(b, len(b))
}
