package udp

import (
	"bytes"
	"encoding/hex"
	"math/rand/v2"
	"testing"
	"time"
)

func TestInvokeRoundTrip(t *testing.T) {
	var buf [MaxDatagram]byte
	payload := []byte("hello-payload")
	n, err := EncodeInvoke(buf[:], 0xDEADBEEF, HashWorkflow("wf-test"), 7, FlagAsync, 1500*time.Millisecond, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n != HeaderSize+len(payload) {
		t.Fatalf("encoded %d bytes", n)
	}
	var h Header
	if err := ParseHeader(buf[:n], &h); err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeInvoke || h.Flags != FlagAsync || h.Token != 0xDEADBEEF ||
		h.Hash != HashWorkflow("wf-test") || h.ID != 7 || h.DeadlineMs != 1500 ||
		h.Size != uint32(len(payload)) {
		t.Fatalf("header %+v", h)
	}
	if !bytes.Equal(buf[HeaderSize:n], payload) {
		t.Fatal("payload corrupted")
	}
	if !Filter(buf[:n]) {
		t.Fatal("valid invoke rejected by filter")
	}
}

func TestReplyRoundTrip(t *testing.T) {
	var buf [ReplySize]byte
	in := Reply{
		Type: TypeReply, Status: StatusOK, Token: 42, ID: 99,
		PlanVersion: 3, Cold: true,
		E2E: 250 * time.Millisecond, QueueWait: 5 * time.Millisecond, Aux: 80 * time.Millisecond,
	}
	n := EncodeReply(buf[:], &in)
	if n != ReplySize {
		t.Fatalf("reply length %d", n)
	}
	var out Reply
	if err := ParseReply(buf[:n], &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

// TestWireABI pins the exact byte layout of an invoke packet. If this
// test fails the wire format changed: bump Version and update the pin.
func TestWireABI(t *testing.T) {
	var buf [MaxDatagram]byte
	n, err := EncodeInvoke(buf[:], 0x1122334455667788, HashWorkflow("SocialNetwork"), 42, FlagAsync, 250*time.Millisecond, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	const want = "" +
		"c71ed101" + // magic + version
		"0301" + // type=invoke, flags=async
		"0b7a" + // header check
		"8877665544332211" + // token (LE)
		"10f9c4fd56c86887" + // HashWorkflow("SocialNetwork") = 9757268868648466704 (LE)
		"2a00000000000000" + // invocation id 42
		"fa000000" + // deadline 250ms
		"04000000" + // payload size 4
		"70696e67" // "ping"
	if got := hex.EncodeToString(buf[:n]); got != want {
		t.Fatalf("wire ABI changed:\n got %s\nwant %s", got, want)
	}
}

func TestParseHeaderRejects(t *testing.T) {
	var good [HeaderSize + 4]byte
	n, err := EncodeInvoke(good[:], 1, 2, 3, 0, 0, []byte("abcd"))
	if err != nil || n != len(good) {
		t.Fatal(err)
	}
	var h Header

	if err := ParseHeader(good[:HeaderSize-1], &h); err != ErrTooShort {
		t.Fatalf("truncated: %v", err)
	}
	if err := ParseHeader(make([]byte, MaxDatagram+1), &h); err != ErrTooLong {
		t.Fatalf("oversized: %v", err)
	}

	bad := append([]byte(nil), good[:]...)
	bad[3] = Version + 1 // wrong version is a magic mismatch
	if err := ParseHeader(bad, &h); err != ErrBadMagic {
		t.Fatalf("bad version: %v", err)
	}

	// A size field that disagrees with the datagram length must fail the
	// check (it is covered via the total length), and an attacker who
	// fixes up the check still hits ErrBadSize on the truncated datagram.
	bad = append([]byte(nil), good[:]...)
	bad[36] = 200 // claim a 200-byte payload on a 4-byte datagram
	if err := ParseHeader(bad, &h); err != ErrBadCheck {
		t.Fatalf("oversized size field: %v", err)
	}
}

// TestFilterJunk floods the filter with random buffers: none may pass,
// none may panic.
func TestFilterJunk(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	buf := make([]byte, 2*MaxDatagram)
	for i := 0; i < 10000; i++ {
		n := int(r.Uint64() % uint64(len(buf)))
		for j := 0; j < n; j++ {
			buf[j] = byte(r.Uint64())
		}
		if Filter(buf[:n]) {
			t.Fatalf("random junk passed the filter (len %d): %x", n, buf[:n])
		}
	}
}

// TestFilterBitFlips: every corrupted header byte of a valid packet
// must fail the filter (the payload is deliberately not covered).
func TestFilterBitFlips(t *testing.T) {
	var buf [HeaderSize + 8]byte
	if _, err := EncodeInvoke(buf[:], 77, 88, 99, 0, time.Second, []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if !Filter(buf[:]) {
		t.Fatal("valid packet rejected")
	}
	for i := 0; i < HeaderSize; i++ {
		flipped := buf
		flipped[i] ^= 0x40
		if Filter(flipped[:]) {
			t.Fatalf("filter passed with header byte %d corrupted", i)
		}
	}
	// Truncation and extension both die on the size/length cross-check.
	if Filter(buf[:len(buf)-1]) {
		t.Fatal("filter passed truncated packet")
	}
	ext := append(append([]byte(nil), buf[:]...), 0)
	if Filter(ext) {
		t.Fatal("filter passed extended packet")
	}
}

// TestRejectPathZeroAlloc: parsing and filtering hostile input is the
// packet-flood path — it must not allocate.
func TestRejectPathZeroAlloc(t *testing.T) {
	junk := make([]byte, 200)
	for i := range junk {
		junk[i] = byte(i * 7)
	}
	var good [HeaderSize]byte
	h := Header{Type: TypeConnect}
	putHeader(good[:], &h, HeaderSize)

	var hdr Header
	if avg := testing.AllocsPerRun(500, func() {
		if err := ParseHeader(junk, &hdr); err == nil {
			t.Fatal("junk parsed")
		}
		if Filter(junk) {
			t.Fatal("junk filtered through")
		}
		if !Filter(good[:]) {
			t.Fatal("good packet dropped")
		}
		if err := ParseHeader(good[:], &hdr); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Fatalf("parse/filter path allocates %.1f per run, want 0", avg)
	}
}
