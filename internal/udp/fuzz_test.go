package udp

import (
	"testing"
	"time"
)

// FuzzParseHeader throws arbitrary bytes at the parser and the filter.
// Properties: never panic, never allocate on reject (spot-checked by
// TestRejectPathZeroAlloc), and the filter and parser must agree — a
// datagram passes Filter iff ParseHeader accepts it.
func FuzzParseHeader(f *testing.F) {
	// Seed corpus: the interesting shapes from the issue — truncated
	// headers, bad magic, oversized payload-size fields — plus valid
	// packets of each type for mutation to start from.
	f.Add([]byte{})
	f.Add([]byte{0xC7})
	f.Add([]byte{0xC7, 0x1E, 0xD1, Version})
	var trunc [HeaderSize - 1]byte
	copy(trunc[:], magic[:])
	f.Add(trunc[:])

	var connect [HeaderSize]byte
	putHeader(connect[:], &Header{Type: TypeConnect, ID: 7}, HeaderSize)
	f.Add(connect[:])

	var invoke [HeaderSize + 16]byte
	if _, err := EncodeInvoke(invoke[:], 1, HashWorkflow("wf"), 2, FlagAsync, time.Second, []byte("0123456789abcdef")); err != nil {
		f.Fatal(err)
	}
	f.Add(invoke[:])

	badMagic := append([]byte(nil), invoke[:]...)
	badMagic[0] = 0x00
	f.Add(badMagic)

	// Oversized size field: claims 64KiB of payload on a header-only
	// datagram (with and without a fixed-up check).
	var oversize [HeaderSize]byte
	putHeader(oversize[:], &Header{Type: TypeInvoke, Size: 1 << 16}, HeaderSize)
	f.Add(oversize[:])
	lyingSize := append([]byte(nil), invoke[:]...)
	lyingSize[36], lyingSize[37] = 0xFF, 0xFF
	f.Add(lyingSize)

	var reply [ReplySize]byte
	EncodeReply(reply[:], &Reply{Type: TypeReply, Status: StatusOK, ID: 3, Cold: true, E2E: time.Millisecond})
	f.Add(reply[:])

	f.Fuzz(func(t *testing.T, b []byte) {
		var h Header
		err := ParseHeader(b, &h)
		if pass := Filter(b); pass != (err == nil) {
			t.Fatalf("filter/parser disagree: filter=%v parse=%v (len %d)", pass, err, len(b))
		}
		if err == nil {
			if int(h.Size) != len(b)-HeaderSize {
				t.Fatalf("accepted size %d for datagram length %d", h.Size, len(b))
			}
			// Re-encoding the parsed header must reproduce the original
			// header bytes (the layout has no hidden state).
			var re [MaxDatagram]byte
			putHeader(re[:], &h, len(b))
			for i := 0; i < HeaderSize; i++ {
				if re[i] != b[i] {
					t.Fatalf("byte %d not canonical: got %x want %x", i, re[i], b[i])
				}
			}
		}
		var r Reply
		_ = ParseReply(b, &r) // must not panic either
	})
}
