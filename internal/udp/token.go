package udp

import (
	"crypto/rand"
	"fmt"
	"net/netip"
)

// Secret keys the connect-token handshake. A token is a keyed hash of
// the client's source address: the server can verify any invoke packet
// statelessly (recompute and compare, no per-client table), and a token
// lifted from one client's traffic is useless from another address.
// This is liveness/anti-spoofing for a trusted network, not
// cryptographic authentication.
type Secret [16]byte

// NewSecret draws a random per-process secret. Tokens do not survive a
// server restart; clients re-handshake on StatusBadToken.
func NewSecret() (Secret, error) {
	var s Secret
	if _, err := rand.Read(s[:]); err != nil {
		return Secret{}, fmt.Errorf("udp: secret: %w", err)
	}
	return s, nil
}

// Token derives the connect token for one client address: FNV-64a over
// the secret, the 16-byte address and the port. Allocation-free — the
// receive loop recomputes it per invoke packet.
func (s *Secret) Token(addr netip.AddrPort) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, c := range s {
		h ^= uint64(c)
		h *= prime64
	}
	a16 := addr.Addr().As16()
	for _, c := range a16 {
		h ^= uint64(c)
		h *= prime64
	}
	p := addr.Port()
	h ^= uint64(p & 0xFF)
	h *= prime64
	h ^= uint64(p >> 8)
	h *= prime64
	// A zero token is reserved for "no token" in connect requests; dodge
	// the (cosmically unlikely) collision.
	if h == 0 {
		h = 1
	}
	return h
}
