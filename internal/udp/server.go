package udp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"chiron/internal/obs"
	"chiron/internal/serve"
)

// Options configures the UDP ingress server.
type Options struct {
	// Addr is the UDP listen address (default 127.0.0.1:0).
	Addr string
	// Workers is the number of invoke workers draining the receive loop
	// (default 4x GOMAXPROCS). Admission still happens in serve.App's
	// shared queue; workers only bound how many datagrams are in flight
	// between socket and admission.
	Workers int
	// Backlog is how many parsed packets may queue for workers beyond
	// the workers themselves (default 2x Workers). When the backlog is
	// full the receive loop sheds invokes with StatusOverloaded instead
	// of letting the kernel socket buffer bloat silently.
	Backlog int
	// Reg receives the udp metrics; pass the same registry as the HTTP
	// gateway so both planes report side by side (default: a fresh one).
	Reg *obs.Registry
}

// job is one in-flight datagram: buffers, source address and parsed
// header, preallocated once and recycled through a free list so the
// receive path allocates nothing per packet.
type job struct {
	buf  [MaxDatagram]byte
	out  [ReplySize]byte
	n    int
	addr netip.AddrPort
	h    Header
}

type serverMetrics struct {
	packets   *obs.Counter
	filtered  *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	connects  *obs.Counter
	shed      *obs.Counter
	errors    *obs.Counter
	bytes     *obs.IntHistogram
	latency   *obs.Histogram
}

// Server is the binary ingress plane: one UDP socket, a preallocated
// receive loop, and a worker pool feeding invocations into the same
// serve.App — same admission queue, warm pools and plan epochs — as the
// HTTP gateway.
type Server struct {
	app    *serve.App
	conn   *net.UDPConn
	secret Secret
	m      serverMetrics

	free chan *job // recycled packet buffers
	work chan *job // parsed invokes awaiting a worker

	recvDone  chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// New binds the socket and starts the receive loop and workers.
func New(app *serve.App, opt Options) (*Server, error) {
	if opt.Addr == "" {
		opt.Addr = "127.0.0.1:0"
	}
	if opt.Workers <= 0 {
		opt.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	if opt.Backlog <= 0 {
		opt.Backlog = 2 * opt.Workers
	}
	if opt.Reg == nil {
		opt.Reg = obs.NewRegistry()
	}
	laddr, err := net.ResolveUDPAddr("udp", opt.Addr)
	if err != nil {
		return nil, fmt.Errorf("udp: listen addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udp: listen: %w", err)
	}
	secret, err := NewSecret()
	if err != nil {
		conn.Close()
		return nil, err
	}

	numJobs := opt.Workers + opt.Backlog
	s := &Server{
		app:    app,
		conn:   conn,
		secret: secret,
		m: serverMetrics{
			packets:   opt.Reg.Counter("chiron_udp_packets_total", "UDP datagrams received"),
			filtered:  opt.Reg.Counter("chiron_udp_filtered_total", "datagrams dropped by the stateless packet filter"),
			rejected:  opt.Reg.Counter("chiron_udp_rejected_total", "well-formed packets refused (bad token, shed, admission reject)"),
			completed: opt.Reg.Counter("chiron_udp_completed_total", "invocations completed over UDP"),
			connects:  opt.Reg.Counter("chiron_udp_connects_total", "connect handshakes answered"),
			shed:      opt.Reg.Counter("chiron_udp_shed_total", "invokes shed because the worker backlog was full"),
			errors:    opt.Reg.Counter("chiron_udp_errors_total", "socket write failures"),
			bytes:     opt.Reg.IntHistogram("chiron_udp_bytes", "received datagram sizes (bytes)", obs.DefSizeBuckets()),
			latency:   opt.Reg.Histogram("chiron_udp_latency", "end-to-end UDP invoke latency (nominal seconds: queue wait + cold start + execution)", nil),
		},
		free:     make(chan *job, numJobs),
		work:     make(chan *job, numJobs),
		recvDone: make(chan struct{}),
	}
	for i := 0; i < numJobs; i++ {
		s.free <- &job{}
	}
	s.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	go s.recvLoop()
	return s, nil
}

// Addr is the bound listen address (resolves :0 for tests).
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Close stops the receive loop, drains the workers (in-flight
// invocations finish — they hold serve.App drain units) and closes the
// socket. Safe to call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.conn.Close() // unblocks ReadMsgUDPAddrPort
		<-s.recvDone
		close(s.work)
		s.wg.Wait()
	})
	return s.closeErr
}

// recvLoop is the hot path: one goroutine, zero allocations per packet.
// It reads into a pooled buffer, runs the stateless filter, answers
// connects inline and hands token-verified invokes to the workers.
func (s *Server) recvLoop() {
	defer close(s.recvDone)
	// scratch keeps the socket draining when every pooled job is in
	// flight: reads land here and invokes are shed with a reject.
	scratch := &job{}
	for {
		var j *job
		select {
		case j = <-s.free:
		default:
			j = scratch
		}
		n, _, _, addr, err := s.conn.ReadMsgUDPAddrPort(j.buf[:], nil)
		if err != nil {
			if j != scratch {
				s.free <- j
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.m.packets.Inc()
		s.m.bytes.Observe(int64(n))
		if !Filter(j.buf[:n]) {
			s.m.filtered.Inc()
			if j != scratch {
				s.free <- j
			}
			continue
		}
		if ParseHeader(j.buf[:n], &j.h) != nil { // unreachable after Filter; stay defensive
			s.m.filtered.Inc()
			if j != scratch {
				s.free <- j
			}
			continue
		}
		dispatched := false
		switch j.h.Type {
		case TypeConnect:
			s.m.connects.Inc()
			s.sendReply(j, addr, &Reply{
				Type: TypeConnectAck, Status: StatusOK,
				Token: s.secret.Token(addr), ID: j.h.ID,
			})
		case TypeInvoke:
			switch {
			case j.h.Token != s.secret.Token(addr):
				s.m.rejected.Inc()
				s.sendReply(j, addr, &Reply{Type: TypeReply, Status: StatusBadToken, ID: j.h.ID})
			case j == scratch:
				s.m.shed.Inc()
				s.m.rejected.Inc()
				s.sendReply(j, addr, &Reply{Type: TypeReply, Status: StatusOverloaded, ID: j.h.ID})
			default:
				j.n = n
				j.addr = addr
				s.work <- j // cap == pool size: never blocks
				dispatched = true
			}
		default:
			// Reply-family packets have no business arriving here.
			s.m.rejected.Inc()
		}
		if !dispatched && j != scratch {
			s.free <- j
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.work {
		s.handle(j)
		s.free <- j // cap == pool size: never blocks
	}
}

// handle admits and executes one invoke packet. Admission blocks in the
// workflow's shared queue exactly like an HTTP request; the worker pool
// size bounds how many UDP invocations can be queued there at once.
func (s *Server) handle(j *job) {
	ctx := context.Background()
	var cancel context.CancelFunc
	if j.h.DeadlineMs > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.h.DeadlineMs)*time.Millisecond)
		defer cancel()
	}

	// The wire header's client-chosen id is the invocation's idempotent
	// id: hedged re-issues inside serve share it, and the per-request ms
	// deadline above orders this packet in the admission queue by
	// remaining slack (an already-expired one is rejected before it
	// queues).
	ad, err := s.app.AdmitHashID(ctx, j.h.Hash, j.h.ID)
	if err != nil {
		s.m.rejected.Inc()
		st, aux := classify(err)
		s.sendReply(j, j.addr, &Reply{Type: TypeReply, Status: st, ID: j.h.ID, Aux: aux})
		return
	}

	if j.h.Flags&FlagAsync != 0 {
		// Ack the submission now; the completion reply follows when the
		// run finishes. The admitted slot (and its drain unit) is held
		// through execution, so shutdown still waits for this work.
		s.sendReply(j, j.addr, &Reply{Type: TypeAck, Status: StatusAccepted, ID: j.h.ID})
	}

	fast, err := ad.Execute(ctx)
	if err != nil {
		st, aux := classify(err)
		s.sendReply(j, j.addr, &Reply{Type: TypeReply, Status: st, ID: j.h.ID, Aux: aux})
		return
	}
	s.m.completed.Inc()
	total := fast.QueueWait + fast.ColdStart + fast.E2E
	s.m.latency.Observe(total)
	if fast.TraceID != 0 {
		// Link this bucket to the retained flight trace. TraceID stays
		// server-side: the 40-byte reply ABI is pinned.
		s.m.latency.SetExemplar(total, fast.TraceID)
	}
	s.sendReply(j, j.addr, &Reply{
		Type: TypeReply, Status: StatusOK, ID: j.h.ID,
		PlanVersion: uint32(fast.PlanVersion), Cold: fast.Cold,
		E2E: fast.E2E, QueueWait: fast.QueueWait, Aux: fast.ColdStart,
	})
}

// classify maps serve errors onto wire status codes (by sentinel, never
// by error text). Aux carries the overload retry-after hint.
func classify(err error) (status byte, aux time.Duration) {
	var ov *serve.OverloadError
	switch {
	case errors.As(err, &ov):
		return StatusOverloaded, ov.RetryAfter
	case errors.Is(err, serve.ErrNotFound):
		return StatusNotFound, 0
	case errors.Is(err, serve.ErrNoPlan):
		return StatusNoPlan, 0
	case errors.Is(err, serve.ErrDraining):
		return StatusDraining, 0
	case errors.Is(err, serve.ErrStalePlan):
		return StatusStale, 0
	case errors.Is(err, context.DeadlineExceeded):
		return StatusTimeout, 0
	default:
		return StatusError, 0
	}
}

// sendReply encodes into the job's reply buffer and writes one
// datagram. Write failures are counted, not retried: UDP.
func (s *Server) sendReply(j *job, addr netip.AddrPort, r *Reply) {
	n := EncodeReply(j.out[:], r)
	if _, err := s.conn.WriteToUDPAddrPort(j.out[:n], addr); err != nil {
		s.m.errors.Inc()
	}
}
