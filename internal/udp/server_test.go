package udp

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/obs"
	"chiron/internal/serve"
)

// testWorkflow mirrors serve's test fixture: a 2-stage workflow with a
// parameterized per-function cost.
func testWorkflow(cpu time.Duration) *dag.Workflow {
	mk := func(name string) *behavior.Spec {
		return &behavior.Spec{
			Name: name, Runtime: behavior.Python,
			Segments: []behavior.Segment{
				{Kind: behavior.CPU, Dur: cpu},
				{Kind: behavior.NetIO, Dur: cpu / 2},
			},
			MemMB: 64,
		}
	}
	w, err := dag.FromStages("wf-test", 0,
		[]*behavior.Spec{mk("f1")},
		[]*behavior.Spec{mk("f2"), mk("f3")},
	)
	if err != nil {
		panic(err)
	}
	return w
}

// testServer boots a serve.App with one planned workflow and a UDP
// server on an ephemeral port, sharing one metrics registry.
func testServer(t *testing.T, opt serve.Options, cpu time.Duration) (*serve.App, *Server, *obs.Registry) {
	t.Helper()
	reg := opt.Reg
	if reg == nil {
		reg = obs.NewRegistry()
		opt.Reg = reg
	}
	if opt.Scale == 0 {
		opt.Scale = 0.02
	}
	app := serve.New(opt)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = app.Shutdown(ctx)
	})
	if _, err := app.Register(testWorkflow(cpu)); err != nil {
		t.Fatal(err)
	}
	if _, err := app.PlanWorkflow("wf-test", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	srv, err := New(app, Options{Reg: reg, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return app, srv, reg
}

func testDial(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestConnectAndSyncInvoke(t *testing.T) {
	_, srv, reg := testServer(t, serve.Options{}, 4*time.Millisecond)
	c := testDial(t, srv)
	if c.Token() == 0 {
		t.Fatal("handshake issued zero token")
	}

	h := HashWorkflow("wf-test")
	r, err := c.Invoke(h, []byte(`{"k":"v"}`), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Type != TypeReply || r.Status != StatusOK {
		t.Fatalf("reply %+v", r)
	}
	if !r.Cold || r.PlanVersion != 1 || r.E2E <= 0 || r.Aux <= 0 {
		t.Fatalf("first invoke should be cold with timings: %+v", r)
	}
	r2, err := c.Invoke(h, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cold {
		t.Fatal("second sequential invoke should hit the warm pool")
	}
	if got := reg.Counter("chiron_udp_completed_total", "").Value(); got != 2 {
		t.Fatalf("completed counter = %d, want 2", got)
	}
	if got := reg.Counter("chiron_udp_filtered_total", "").Value(); got != 0 {
		t.Fatalf("filtered counter = %d, want 0", got)
	}
	if h := reg.IntHistogram("chiron_udp_bytes", "", obs.DefSizeBuckets()); h.Count() < 3 {
		t.Fatalf("bytes histogram observed %d datagrams", h.Count())
	}
}

func TestAsyncInvoke(t *testing.T) {
	_, srv, _ := testServer(t, serve.Options{}, 4*time.Millisecond)
	c := testDial(t, srv)

	r, err := c.Invoke(HashWorkflow("wf-test"), []byte("async"), 0, FlagAsync)
	if err != nil {
		t.Fatal(err)
	}
	if r.Type != TypeAck || r.Status != StatusAccepted {
		t.Fatalf("expected submission ack, got %+v", r)
	}
	done, err := c.Await(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Type != TypeReply || done.Status != StatusOK || done.E2E <= 0 {
		t.Fatalf("completion %+v", done)
	}
}

func TestRejections(t *testing.T) {
	_, srv, reg := testServer(t, serve.Options{}, 4*time.Millisecond)
	c := testDial(t, srv)

	// Unknown workflow hash.
	r, err := c.Invoke(HashWorkflow("no-such-workflow"), nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusNotFound {
		t.Fatalf("unknown hash: %+v", r)
	}

	// Forged token: reject before admission.
	c.token ^= 0xFFFF
	r, err = c.Invoke(HashWorkflow("wf-test"), nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusBadToken {
		t.Fatalf("forged token: %+v", r)
	}
	if got := reg.Counter("chiron_udp_rejected_total", "").Value(); got != 2 {
		t.Fatalf("rejected counter = %d, want 2", got)
	}

	// Re-handshake recovers.
	if err := c.connect(); err != nil {
		t.Fatal(err)
	}
	if r, err = c.Invoke(HashWorkflow("wf-test"), nil, 0, 0); err != nil || r.Status != StatusOK {
		t.Fatalf("after re-handshake: %+v err=%v", r, err)
	}
}

func TestJunkIsFiltered(t *testing.T) {
	_, srv, reg := testServer(t, serve.Options{}, 4*time.Millisecond)
	raw, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	junk := [][]byte{
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		{0xC7, 0x1E, 0xD1}, // truncated magic
		make([]byte, HeaderSize),
		make([]byte, MaxDatagram),
	}
	for _, b := range junk {
		if _, err := raw.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for reg.Counter("chiron_udp_filtered_total", "").Value() < uint64(len(junk)) {
		if time.Now().After(deadline) {
			t.Fatalf("filtered = %d, want %d", reg.Counter("chiron_udp_filtered_total", "").Value(), len(junk))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Counter("chiron_udp_completed_total", "").Value(); got != 0 {
		t.Fatalf("junk completed %d invocations", got)
	}
}

func TestDeadlineTimesOut(t *testing.T) {
	// Nominal E2E ~1.2s scaled by 0.1 → ~120ms wall; a 20ms deadline
	// must expire mid-execution and report StatusTimeout.
	_, srv, _ := testServer(t, serve.Options{Scale: 0.1}, 400*time.Millisecond)
	c := testDial(t, srv)
	r, err := c.Invoke(HashWorkflow("wf-test"), nil, 20*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusTimeout {
		t.Fatalf("expected timeout, got %+v", r)
	}
}

// TestSharedAdmissionAndWarmPool is the cross-plane integration check:
// a UDP invocation and an HTTP-path invocation of the same workflow
// contend for the same admission slots and reuse the same warm pool.
func TestSharedAdmissionAndWarmPool(t *testing.T) {
	reg := obs.NewRegistry()
	// MaxConcurrency 1: one slot shared by both planes. Scale 1 with
	// 100ms functions gives a ~300ms execution window to race against.
	app, srv, _ := testServer(t, serve.Options{
		Reg: reg, Scale: 1, MaxConcurrency: 1, KeepAlive: time.Minute,
	}, 100*time.Millisecond)
	c := testDial(t, srv)

	// 1. Async UDP invoke: the ack proves the packet holds the single
	// admission slot while it executes.
	r, err := c.Invoke(HashWorkflow("wf-test"), nil, 0, FlagAsync)
	if err != nil {
		t.Fatal(err)
	}
	if r.Type != TypeAck {
		t.Fatalf("ack %+v", r)
	}

	// 2. An HTTP-path invocation now queues behind the UDP one and must
	// time out waiting for the shared slot — same admission queue.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	_, err = app.Invoke(ctx, "wf-test", nil)
	cancel()
	if err == nil {
		t.Fatal("HTTP invoke ran concurrently with UDP invoke despite MaxConcurrency=1")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued HTTP invoke: %v", err)
	}

	// 3. UDP completion frees the slot and parks its instance warm.
	done, err := c.Await(r.ID)
	if err != nil || done.Status != StatusOK {
		t.Fatalf("completion %+v err=%v", done, err)
	}
	if !done.Cold {
		t.Fatal("first UDP invoke should have booted cold")
	}

	// 4. The HTTP-path invocation now reuses the instance UDP booted —
	// same warm pool, observable in the shared metrics.
	res, err := app.Invoke(context.Background(), "wf-test", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cold {
		t.Fatal("HTTP invoke booted cold instead of reusing the UDP-warmed instance")
	}
	if cold := reg.Counter("chiron_serve_coldstarts_total", "").Value(); cold != 1 {
		t.Fatalf("cold starts = %d, want exactly the UDP boot", cold)
	}
	if warm := reg.Counter("chiron_serve_warmhits_total", "").Value(); warm != 1 {
		t.Fatalf("warm hits = %d, want the HTTP reuse", warm)
	}
}

func TestServerCloseDrains(t *testing.T) {
	_, srv, _ := testServer(t, serve.Options{}, 4*time.Millisecond)
	c := testDial(t, srv)
	if r, err := c.Invoke(HashWorkflow("wf-test"), nil, 0, 0); err != nil || r.Status != StatusOK {
		t.Fatalf("%+v err=%v", r, err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second close:", err)
	}
}
