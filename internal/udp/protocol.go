// Package udp is the binary ingress plane: a compact fixed-layout
// invoke protocol served beside the HTTP gateway, for clients that need
// the invoke path without HTTP/1.1 parsing, header maps, or per-request
// connection state.
//
// Every datagram starts with the same 40-byte little-endian header:
//
//	offset size field
//	0      4    magic (3 fixed bytes + protocol version)
//	4      1    packet type (connect | connect-ack | invoke | reply | ack)
//	5      1    flags (bit 0: async invoke)
//	6      2    check — Fletcher-16 over bytes [8,40), the type/flags
//	            bytes and the datagram length, XOR-folded with a salt
//	8      8    connect token (0 in a connect request; the issued token
//	            in a connect-ack and in every invoke)
//	16     8    workflow id — serve.HashName (FNV-64a) of the name
//	24     8    invocation id (client-chosen, echoed in the reply)
//	32     4    deadline (ms of wall time the server may spend; 0 = none)
//	36     4    payload size — must equal len(datagram) - 40
//	40     ...  payload (opaque, at most MaxPayload bytes)
//
// Replies append a fixed 32-byte body (plan version, cold flag, e2e,
// queue wait, aux) and carry a status code in the flags byte. The whole
// layout is pinned by TestWireABI; any change is a protocol version
// bump.
package udp

import (
	"encoding/binary"
	"errors"
	"time"

	"chiron/internal/serve"
)

// Wire constants. MaxDatagram keeps every packet under a conservative
// path MTU so invokes never fragment.
const (
	Version     = 1
	HeaderSize  = 40
	MaxDatagram = 1200
	MaxPayload  = MaxDatagram - HeaderSize
	ReplyBody   = 32
	ReplySize   = HeaderSize + ReplyBody
)

// Packet types.
const (
	TypeConnect    = 1 // client -> server: request a connect token
	TypeConnectAck = 2 // server -> client: token in the header token field
	TypeInvoke     = 3 // client -> server: one invocation
	TypeReply      = 4 // server -> client: invocation result / rejection
	TypeAck        = 5 // server -> client: async submission accepted
)

// Header flag bits (invoke packets).
const (
	// FlagAsync detaches the invocation: the server acks the submission
	// immediately after admission and sends the completion reply later.
	FlagAsync = 1 << 0
)

// Reply status codes (carried in the flags byte of reply/ack packets).
const (
	StatusOK         = 0
	StatusNotFound   = 1 // unknown workflow hash
	StatusNoPlan     = 2 // registered but unplanned
	StatusOverloaded = 3 // admission rejected; Aux is the retry-after hint
	StatusDraining   = 4
	StatusBadToken   = 5 // connect token missing/forged/stale
	StatusTimeout    = 6 // deadline exceeded
	StatusStale      = 7 // plan/behaviour mismatch (re-plan)
	StatusError      = 8 // internal execution failure
	StatusAccepted   = 9 // async submission acknowledged
)

// magic is the first-bytes signature: three fixed bytes plus the
// protocol version, so a version bump changes the prefix itself.
var magic = [4]byte{0xC7, 0x1E, 0xD1, Version}

// Static parse errors: the reject path of a packet flood must not
// allocate, so every failure is a sentinel.
var (
	ErrTooShort = errors.New("udp: datagram shorter than header")
	ErrTooLong  = errors.New("udp: datagram exceeds MaxDatagram")
	ErrBadMagic = errors.New("udp: bad magic/version prefix")
	ErrBadType  = errors.New("udp: unknown packet type")
	ErrBadCheck = errors.New("udp: header check mismatch")
	ErrBadSize  = errors.New("udp: payload size field disagrees with datagram length")
)

// HashWorkflow is the wire identity of a workflow (serve.HashName:
// FNV-64a over the name).
func HashWorkflow(name string) uint64 { return serve.HashName(name) }

// Header is a parsed packet header. Parse writes into a caller-owned
// value, so the receive loop never allocates.
type Header struct {
	Type       byte
	Flags      byte
	Token      uint64
	Hash       uint64
	ID         uint64
	DeadlineMs uint32
	Size       uint32
}

// pktCheck is the header check: Fletcher-16 over bytes [8,40), the
// type/flags bytes and the datagram length, XOR-folded with a salt so
// all-zero buffers do not verify.
func pktCheck(b []byte, total int) uint16 {
	var s1, s2 uint32 = 1, 0
	for _, c := range b[8:HeaderSize] {
		s1 += uint32(c)
		s2 += s1
	}
	s1 += uint32(b[4]) + uint32(b[5])<<4
	s2 += s1
	s1 += uint32(total)
	s2 += s1
	return uint16(((s2%255)<<8)|(s1%255)) ^ 0xC1A0
}

// putHeader writes h into b (len(b) >= HeaderSize) and stamps the check
// for a datagram of the given total length.
func putHeader(b []byte, h *Header, total int) {
	copy(b[0:4], magic[:])
	b[4] = h.Type
	b[5] = h.Flags
	binary.LittleEndian.PutUint64(b[8:16], h.Token)
	binary.LittleEndian.PutUint64(b[16:24], h.Hash)
	binary.LittleEndian.PutUint64(b[24:32], h.ID)
	binary.LittleEndian.PutUint32(b[32:36], h.DeadlineMs)
	binary.LittleEndian.PutUint32(b[36:40], h.Size)
	binary.LittleEndian.PutUint16(b[6:8], pktCheck(b, total))
}

// ParseHeader validates b as a protocol datagram and fills h. It never
// panics and never allocates, whatever the input (FuzzParseHeader).
func ParseHeader(b []byte, h *Header) error {
	if len(b) < HeaderSize {
		return ErrTooShort
	}
	if len(b) > MaxDatagram {
		return ErrTooLong
	}
	if b[0] != magic[0] || b[1] != magic[1] || b[2] != magic[2] || b[3] != magic[3] {
		return ErrBadMagic
	}
	if b[4] < TypeConnect || b[4] > TypeAck {
		return ErrBadType
	}
	if binary.LittleEndian.Uint16(b[6:8]) != pktCheck(b, len(b)) {
		return ErrBadCheck
	}
	size := binary.LittleEndian.Uint32(b[36:40])
	if size != uint32(len(b)-HeaderSize) {
		return ErrBadSize
	}
	h.Type = b[4]
	h.Flags = b[5]
	h.Token = binary.LittleEndian.Uint64(b[8:16])
	h.Hash = binary.LittleEndian.Uint64(b[16:24])
	h.ID = binary.LittleEndian.Uint64(b[24:32])
	h.DeadlineMs = binary.LittleEndian.Uint32(b[32:36])
	h.Size = size
	return nil
}

// EncodeInvoke writes one invoke packet into buf and returns its length.
// buf must hold HeaderSize+len(payload) bytes; payloads past MaxPayload
// are refused.
func EncodeInvoke(buf []byte, token, hash, id uint64, flags byte, deadline time.Duration, payload []byte) (int, error) {
	if len(payload) > MaxPayload {
		return 0, ErrTooLong
	}
	total := HeaderSize + len(payload)
	if len(buf) < total {
		return 0, ErrTooShort
	}
	var dl uint32
	if deadline > 0 {
		ms := deadline.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		if ms > int64(^uint32(0)) {
			ms = int64(^uint32(0))
		}
		dl = uint32(ms)
	}
	h := Header{
		Type: TypeInvoke, Flags: flags, Token: token, Hash: hash, ID: id,
		DeadlineMs: dl, Size: uint32(len(payload)),
	}
	copy(buf[HeaderSize:total], payload)
	putHeader(buf, &h, total)
	return total, nil
}

// EncodeConnect writes a connect request (nonce rides in the id field).
func EncodeConnect(buf []byte, nonce uint64) int {
	h := Header{Type: TypeConnect, ID: nonce}
	putHeader(buf, &h, HeaderSize)
	return HeaderSize
}

// Reply is a parsed reply/ack body plus its header echo.
type Reply struct {
	Type        byte
	Status      byte
	Token       uint64 // connect-ack: the issued token
	ID          uint64 // invocation id echo
	PlanVersion uint32
	Cold        bool
	E2E         time.Duration
	QueueWait   time.Duration
	// Aux is status-dependent: cold-start cost on StatusOK, retry-after
	// hint on StatusOverloaded, zero otherwise.
	Aux time.Duration
}

// EncodeReply writes a reply/ack/connect-ack packet and returns its
// length (always ReplySize). buf must hold ReplySize bytes.
func EncodeReply(buf []byte, r *Reply) int {
	h := Header{Type: r.Type, Flags: r.Status, Token: r.Token, ID: r.ID, Size: ReplyBody}
	b := buf[HeaderSize:ReplySize]
	binary.LittleEndian.PutUint32(b[0:4], r.PlanVersion)
	if r.Cold {
		b[4] = 1
	} else {
		b[4] = 0
	}
	b[5], b[6], b[7] = 0, 0, 0
	binary.LittleEndian.PutUint64(b[8:16], uint64(r.E2E))
	binary.LittleEndian.PutUint64(b[16:24], uint64(r.QueueWait))
	binary.LittleEndian.PutUint64(b[24:32], uint64(r.Aux))
	putHeader(buf, &h, ReplySize)
	return ReplySize
}

// ParseReply validates b as a reply-family packet and fills r.
func ParseReply(b []byte, r *Reply) error {
	var h Header
	if err := ParseHeader(b, &h); err != nil {
		return err
	}
	if h.Type != TypeReply && h.Type != TypeAck && h.Type != TypeConnectAck {
		return ErrBadType
	}
	if h.Size != ReplyBody || len(b) != ReplySize {
		return ErrBadSize
	}
	body := b[HeaderSize:ReplySize]
	r.Type = h.Type
	r.Status = h.Flags
	r.Token = h.Token
	r.ID = h.ID
	r.PlanVersion = binary.LittleEndian.Uint32(body[0:4])
	r.Cold = body[4] != 0
	r.E2E = time.Duration(binary.LittleEndian.Uint64(body[8:16]))
	r.QueueWait = time.Duration(binary.LittleEndian.Uint64(body[16:24]))
	r.Aux = time.Duration(binary.LittleEndian.Uint64(body[24:32]))
	return nil
}
