package udp

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// ErrTimeout: no reply within the client's read timeout (the datagram
// or its reply may simply be lost — UDP makes no promises).
var ErrTimeout = errors.New("udp: reply timeout")

// Client speaks the binary invoke protocol over one connected socket.
// It is NOT safe for concurrent use: loadgen and benchmarks run one
// Client per worker, which is also what keeps the path allocation-free
// (fixed send/receive buffers, no per-call state).
type Client struct {
	conn    *net.UDPConn
	token   uint64
	seq     uint64
	timeout time.Duration
	sbuf    [MaxDatagram]byte
	rbuf    [MaxDatagram]byte
}

// Dial connects to a server and completes the token handshake. timeout
// bounds each reply wait (default 2s); the handshake retries a few
// times since connect datagrams can be lost like any other.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udp: dial %s: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("udp: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, timeout: timeout}
	if err := c.connect(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() error {
	var lastErr error = ErrTimeout
	for attempt := 0; attempt < 3; attempt++ {
		c.seq++
		nonce := c.seq
		n := EncodeConnect(c.sbuf[:], nonce)
		if _, err := c.conn.Write(c.sbuf[:n]); err != nil {
			return fmt.Errorf("udp: connect: %w", err)
		}
		var r Reply
		if err := c.readReply(nonce, &r); err != nil {
			lastErr = err
			continue
		}
		if r.Type != TypeConnectAck || r.Token == 0 {
			lastErr = fmt.Errorf("udp: connect: unexpected reply type %d", r.Type)
			continue
		}
		c.token = r.Token
		return nil
	}
	return fmt.Errorf("udp: connect handshake failed: %w", lastErr)
}

// Invoke sends one invocation and waits for its reply. For async
// invokes (FlagAsync) it returns on the submission ack; the completion
// reply is read by the next call that drains the socket, or discarded.
// deadline (0 = none) rides in the packet and bounds the server's work.
func (c *Client) Invoke(hash uint64, payload []byte, deadline time.Duration, flags byte) (Reply, error) {
	c.seq++
	id := c.seq
	n, err := EncodeInvoke(c.sbuf[:], c.token, hash, id, flags, deadline, payload)
	if err != nil {
		return Reply{}, err
	}
	if _, err := c.conn.Write(c.sbuf[:n]); err != nil {
		return Reply{}, fmt.Errorf("udp: send: %w", err)
	}
	var r Reply
	if err := c.readReply(id, &r); err != nil {
		return Reply{}, err
	}
	return r, nil
}

// Await blocks for the completion reply of an async invocation
// previously acked with the given id.
func (c *Client) Await(id uint64) (Reply, error) {
	var r Reply
	for {
		if err := c.readReply(id, &r); err != nil {
			return Reply{}, err
		}
		if r.Type == TypeReply {
			return r, nil
		}
	}
}

// readReply reads datagrams until one parses as a reply for id or the
// timeout elapses. Replies for other ids (stale completions from
// earlier async invokes) are skipped.
func (c *Client) readReply(id uint64, r *Reply) error {
	deadline := time.Now().Add(c.timeout)
	for {
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return err
		}
		n, err := c.conn.Read(c.rbuf[:])
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return ErrTimeout
			}
			return err
		}
		if ParseReply(c.rbuf[:n], r) != nil {
			continue
		}
		if r.ID == id {
			return nil
		}
	}
}

// Token exposes the negotiated connect token (tests forge bad ones).
func (c *Client) Token() uint64 { return c.token }

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }
