package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestMean(t *testing.T) {
	if got := Mean([]time.Duration{ms(10), ms(20), ms(30)}); got != ms(20) {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	samples := []time.Duration{ms(50), ms(10), ms(30), ms(20), ms(40)}
	// Nearest-rank: rank ceil(0.5*5) = 3, the 3rd smallest.
	if got := Percentile(samples, 0.5); got != ms(30) {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(samples, 1.0); got != ms(50) {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(samples, 0.0); got != ms(10) {
		t.Fatalf("p0 = %v", got)
	}
	// Input must not be mutated.
	if samples[0] != ms(50) {
		t.Fatal("Percentile sorted the caller's slice")
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("Percentile(nil) = %v", got)
	}
}

// TestPercentileNearestRank pins the nearest-rank definition (rank
// ceil(p*n)) across odd and even sample counts and the percentiles the
// evaluation reports. Samples are 10ms, 20ms, ..., n*10ms shuffled, so
// the k-th smallest is k*10ms and want is the expected rank directly.
func TestPercentileNearestRank(t *testing.T) {
	mk := func(n int) []time.Duration {
		s := make([]time.Duration, n)
		for i := range s {
			// Fixed shuffle: fill back-to-front so input is unsorted.
			s[n-1-i] = ms(10 * (i + 1))
		}
		return s
	}
	cases := []struct {
		n    int
		p    float64
		rank int // expected nearest rank, 1-based
	}{
		{1, 0, 1}, {1, 0.5, 1}, {1, 1, 1},
		{2, 0.5, 1}, {2, 0.95, 2}, {2, 1, 2},
		{4, 0, 1}, {4, 0.5, 2}, {4, 0.95, 4}, {4, 0.99, 4}, {4, 1, 4},
		{5, 0, 1}, {5, 0.5, 3}, {5, 0.95, 5}, {5, 0.99, 5}, {5, 1, 5},
		{10, 0.5, 5}, {10, 0.95, 10}, {10, 0.99, 10},
		{20, 0.5, 10}, {20, 0.95, 19}, {20, 0.99, 20},
		// 0.95*100 floats to 95.00000000000001: must stay rank 95.
		{100, 0.5, 50}, {100, 0.95, 95}, {100, 0.99, 99}, {100, 1, 100},
	}
	for _, tc := range cases {
		if got, want := Percentile(mk(tc.n), tc.p), ms(10*tc.rank); got != want {
			t.Errorf("Percentile(n=%d, p=%v) = %v, want rank %d (%v)", tc.n, tc.p, got, tc.rank, want)
		}
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Percentile([]time.Duration{ms(1)}, 1.5)
}

func TestCDFShape(t *testing.T) {
	cdf := CDF([]time.Duration{ms(30), ms(10), ms(10), ms(20)})
	if len(cdf) != 3 {
		t.Fatalf("CDF has %d distinct points, want 3", len(cdf))
	}
	if cdf[0].Latency != ms(10) || cdf[0].Frac != 0.5 {
		t.Fatalf("cdf[0] = %+v, want 10ms@0.5 (duplicates collapse)", cdf[0])
	}
	if cdf[2].Latency != ms(30) || cdf[2].Frac != 1.0 {
		t.Fatalf("cdf[2] = %+v", cdf[2])
	}
	if CDF(nil) != nil {
		t.Fatal("CDF(nil) should be nil")
	}
}

func TestAtOrBelow(t *testing.T) {
	cdf := CDF([]time.Duration{ms(10), ms(20), ms(30), ms(40)})
	cases := []struct {
		x    time.Duration
		want float64
	}{
		{ms(5), 0}, {ms(10), 0.25}, {ms(25), 0.5}, {ms(40), 1}, {ms(99), 1},
	}
	for _, tc := range cases {
		if got := AtOrBelow(cdf, tc.x); got != tc.want {
			t.Errorf("AtOrBelow(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestViolationRate(t *testing.T) {
	samples := []time.Duration{ms(90), ms(110), ms(100), ms(150)}
	if got := ViolationRate(samples, ms(100)); got != 0.5 {
		t.Fatalf("violations = %v, want 0.5", got)
	}
	if got := ViolationRate(samples, 0); got != 0 {
		t.Fatal("zero SLO must yield zero rate")
	}
	if got := ViolationRate(nil, ms(1)); got != 0 {
		t.Fatal("empty samples must yield zero rate")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(10, 100*time.Millisecond); got != 100 {
		t.Fatalf("throughput = %v, want 100 rps", got)
	}
	if Throughput(0, time.Second) != 0 || Throughput(5, 0) != 0 {
		t.Fatal("degenerate throughput must be 0")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Normalize = %v", got)
	}
	if z := Normalize([]float64{1}, 0); z[0] != 0 {
		t.Fatal("zero base should yield zeros")
	}
}

func TestPropertyCDFMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		samples := make([]time.Duration, count)
		for i := range samples {
			samples[i] = time.Duration(rng.Int63n(1e9))
		}
		cdf := CDF(samples)
		prevL, prevF := time.Duration(-1), 0.0
		for _, p := range cdf {
			if p.Latency <= prevL || p.Frac <= prevF {
				return false
			}
			prevL, prevF = p.Latency, p.Frac
		}
		return cdf[len(cdf)-1].Frac == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPercentileWithinRange(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		samples := make([]time.Duration, 1+int(pRaw%20))
		for i := range samples {
			samples[i] = time.Duration(rng.Int63n(1e9))
		}
		p := float64(pRaw) / 255
		v := Percentile(samples, p)
		min, max := samples[0], samples[0]
		for _, s := range samples {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		return v >= min && v <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
