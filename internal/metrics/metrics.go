// Package metrics computes the evaluation's derived quantities: latency
// statistics and CDFs (Figure 15), SLO violation rates (Figure 14), and
// per-node maximum throughput (Figure 16).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean latency.
func Mean(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	return sum / time.Duration(len(samples))
}

// Percentile returns the p-quantile (0 <= p <= 1) by nearest-rank on a
// copy of the samples; it does not mutate its input. Nearest-rank is
// rank ceil(p*n): the smallest sample with at least a p fraction of the
// data at or below it (so p = 0.5 over 5 samples is the 3rd smallest).
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("metrics: percentile %v out of [0,1]", p))
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// The epsilon guards float noise: 0.95*100 is 95.00000000000001,
	// which must stay rank 95, not ceil to 96.
	idx := int(math.Ceil(p*float64(len(sorted))-1e-9)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Latency time.Duration
	// Frac is the fraction of samples at or below Latency, in [0,1].
	Frac float64
}

// CDF returns the full empirical CDF (one point per distinct sample).
func CDF(samples []time.Duration) []CDFPoint {
	if len(samples) == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out []CDFPoint
	n := float64(len(sorted))
	for i, s := range sorted {
		frac := float64(i+1) / n
		if len(out) > 0 && out[len(out)-1].Latency == s {
			out[len(out)-1].Frac = frac
			continue
		}
		out = append(out, CDFPoint{Latency: s, Frac: frac})
	}
	return out
}

// AtOrBelow returns the CDF value at latency x (the Figure 15 read-out).
func AtOrBelow(cdf []CDFPoint, x time.Duration) float64 {
	frac := 0.0
	for _, p := range cdf {
		if p.Latency > x {
			break
		}
		frac = p.Frac
	}
	return frac
}

// ViolationRate returns the fraction of samples exceeding the SLO
// (Figure 14's metric).
func ViolationRate(samples []time.Duration, slo time.Duration) float64 {
	if len(samples) == 0 || slo <= 0 {
		return 0
	}
	n := 0
	for _, s := range samples {
		if s > slo {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

// Throughput returns the maximum sustainable requests/second when
// `instances` copies of a deployment run on one worker node, each
// completing a request in `latency` (Figure 16's metric).
func Throughput(instances int, latency time.Duration) float64 {
	if instances <= 0 || latency <= 0 {
		return 0
	}
	return float64(instances) / latency.Seconds()
}

// Normalize divides each value by base, guarding zero.
func Normalize(values []float64, base float64) []float64 {
	out := make([]float64, len(values))
	if base == 0 {
		return out
	}
	for i, v := range values {
		out[i] = v / base
	}
	return out
}
