// Package wrap defines the paper's central abstraction (Section 3.1): the
// deployment plan that maps a workflow's m functions onto n sandboxes
// ("wraps"), and within each sandbox onto processes and threads.
//
// A Plan assigns every function a location (sandbox, process). Functions
// sharing a (sandbox, process) pair run as threads of that process;
// distinct process indices within a sandbox are forked processes; distinct
// sandboxes interact over the network. Process index 0 is special: it is
// the sandbox's resident main process (the orchestrator / of-watchdog
// worker), so functions placed there pay thread-clone startup rather than
// fork startup.
//
// Every deployment model in the paper is a special case:
//
//   - one-to-one: each function alone in its own sandbox;
//   - many-to-one (SAND): one sandbox, every function its own forked
//     process;
//   - many-to-one (Faastlane): one sandbox, sequential functions as
//     threads of process 0, parallel functions as forked processes;
//   - m-to-n (Chiron): PGP's output, mixing all of the above.
package wrap

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/sandbox"
)

// ErrPlacement marks every plan-shape failure — a function without a
// placement, an out-of-range sandbox, mixed runtimes, a plan/workflow
// mismatch. Callers classify with errors.Is(err, wrap.ErrPlacement)
// instead of matching error text; the serving gateway maps it to a
// stale-plan response.
var ErrPlacement = errors.New("wrap: invalid placement")

// Loc is one function's placement.
type Loc struct {
	// Sandbox is the global wrap index (0 = the sandbox that hosts the
	// workflow orchestrator and receives the request).
	Sandbox int `json:"sandbox"`
	// Proc is the process index within the sandbox; 0 is the resident
	// main process.
	Proc int `json:"proc"`
}

// IsolationKind names the thread isolation mechanism of a sandbox.
type IsolationKind string

// Supported isolation mechanisms (Section 4, Table 1).
const (
	IsoNone IsolationKind = "none"
	IsoMPK  IsolationKind = "mpk"
	IsoSFI  IsolationKind = "sfi"
)

// SandboxCfg configures one sandbox of the plan.
type SandboxCfg struct {
	// CPUs is the cpuset reservation (>= 1).
	CPUs int `json:"cpus"`
	// Pool runs this sandbox's functions on a warm process pool instead
	// of per-request forks (Section 4 "True Parallelism").
	Pool bool `json:"pool,omitempty"`
	// Workers is the pool size (Pool only; 0 = one per function).
	Workers int `json:"workers,omitempty"`
	// LongestFirst admits pool tasks longest-first to counter execution
	// skew (Chiron-P, Section 6.2).
	LongestFirst bool `json:"longest_first,omitempty"`
	// Iso selects the thread isolation mechanism.
	Iso IsolationKind `json:"iso,omitempty"`
	// ForkPerRequest forks a fresh process per function invocation even
	// for process 0 (classic-watchdog semantics); used as an ablation.
	ForkPerRequest bool `json:"fork_per_request,omitempty"`
}

// Plan is a complete deployment of one workflow.
type Plan struct {
	// Workflow names the workflow this plan deploys.
	Workflow string `json:"workflow"`
	// Loc maps function name -> placement.
	Loc map[string]Loc `json:"loc"`
	// Sandboxes configures each wrap, indexed by Loc.Sandbox.
	Sandboxes []SandboxCfg `json:"sandboxes"`
}

// NumWraps returns n: the number of sandboxes.
func (p *Plan) NumWraps() int { return len(p.Sandboxes) }

// TotalCPUs returns the plan's total CPU reservation (Figure 17's metric).
func (p *Plan) TotalCPUs() int {
	n := 0
	for _, s := range p.Sandboxes {
		n += s.CPUs
	}
	return n
}

// ProcGroup is one process of one wrap within one stage: the functions
// that run as its threads, in placement order.
type ProcGroup struct {
	// Proc is the process index within the sandbox.
	Proc int
	// Functions are the hosted function specs.
	Functions []*behavior.Spec
}

// StageWrap is the portion of one wrap active during one stage.
type StageWrap struct {
	// Sandbox is the wrap's global index.
	Sandbox int
	// Cfg is the wrap's sandbox configuration.
	Cfg SandboxCfg
	// Procs are the active process groups, ordered by process index.
	Procs []ProcGroup
}

// Processes returns the wrap's functions grouped per process, the shape
// package proc executes.
func (sw *StageWrap) Processes() [][]*behavior.Spec {
	out := make([][]*behavior.Spec, len(sw.Procs))
	for i, g := range sw.Procs {
		out[i] = g.Functions
	}
	return out
}

// HasMainProc reports whether process index 0 participates (its functions
// pay thread startup, not fork startup).
func (sw *StageWrap) HasMainProc() bool {
	return len(sw.Procs) > 0 && sw.Procs[0].Proc == 0
}

// StageWraps groups stage i's functions by wrap and process. Wraps are
// ordered by sandbox index (so index 0, when present, is the orchestrator's
// own sandbox, the paper's wrap1); processes by process index; functions by
// their order within the stage.
func (p *Plan) StageWraps(w *dag.Workflow, stage int) ([]StageWrap, error) {
	if stage < 0 || stage >= len(w.Stages) {
		return nil, fmt.Errorf("%w: stage %d out of range", ErrPlacement, stage)
	}
	bySandbox := make(map[int]map[int][]*behavior.Spec)
	for _, fn := range w.Stages[stage].Functions {
		loc, ok := p.Loc[fn.Name]
		if !ok {
			return nil, fmt.Errorf("%w: function %q has no placement", ErrPlacement, fn.Name)
		}
		if loc.Sandbox < 0 || loc.Sandbox >= len(p.Sandboxes) {
			return nil, fmt.Errorf("%w: function %q placed in unknown sandbox %d", ErrPlacement, fn.Name, loc.Sandbox)
		}
		m := bySandbox[loc.Sandbox]
		if m == nil {
			m = make(map[int][]*behavior.Spec)
			bySandbox[loc.Sandbox] = m
		}
		m[loc.Proc] = append(m[loc.Proc], fn)
	}
	sandboxes := make([]int, 0, len(bySandbox))
	for sb := range bySandbox {
		sandboxes = append(sandboxes, sb)
	}
	sort.Ints(sandboxes)
	out := make([]StageWrap, 0, len(sandboxes))
	for _, sb := range sandboxes {
		sw := StageWrap{Sandbox: sb, Cfg: p.Sandboxes[sb]}
		procs := make([]int, 0, len(bySandbox[sb]))
		for pr := range bySandbox[sb] {
			procs = append(procs, pr)
		}
		sort.Ints(procs)
		for _, pr := range procs {
			sw.Procs = append(sw.Procs, ProcGroup{Proc: pr, Functions: bySandbox[sb][pr]})
		}
		out = append(out, sw)
	}
	return out, nil
}

// Validate checks the plan against its workflow: every function placed
// exactly once in an existing sandbox, positive CPU reservations, a single
// runtime per sandbox (Section 3.4: "conflict between language runtimes"),
// and no two functions of one sandbox writing the same file ("functions
// that need to process the same file cannot share sandbox").
func (p *Plan) Validate(w *dag.Workflow) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if p.Workflow != w.Name {
		return fmt.Errorf("%w: plan is for workflow %q, not %q", ErrPlacement, p.Workflow, w.Name)
	}
	if len(p.Sandboxes) == 0 {
		return fmt.Errorf("%w: plan has no sandboxes", ErrPlacement)
	}
	for i, cfg := range p.Sandboxes {
		if cfg.CPUs < 1 {
			return fmt.Errorf("%w: sandbox %d reserves %d CPUs", ErrPlacement, i, cfg.CPUs)
		}
		switch cfg.Iso {
		case "", IsoNone, IsoMPK, IsoSFI:
		default:
			return fmt.Errorf("%w: sandbox %d has unknown isolation %q", ErrPlacement, i, cfg.Iso)
		}
		if cfg.Workers < 0 {
			return fmt.Errorf("%w: sandbox %d has negative pool size", ErrPlacement, i)
		}
	}

	runtimes := make(map[int]behavior.Runtime)
	files := make(map[int]map[string]string) // sandbox -> file -> function
	used := make(map[int]bool)
	for _, fn := range w.Functions() {
		loc, ok := p.Loc[fn.Name]
		if !ok {
			return fmt.Errorf("%w: function %q has no placement", ErrPlacement, fn.Name)
		}
		if loc.Sandbox < 0 || loc.Sandbox >= len(p.Sandboxes) {
			return fmt.Errorf("%w: function %q placed in unknown sandbox %d", ErrPlacement, fn.Name, loc.Sandbox)
		}
		if loc.Proc < 0 {
			return fmt.Errorf("%w: function %q has negative process index", ErrPlacement, fn.Name)
		}
		used[loc.Sandbox] = true
		if rt, ok := runtimes[loc.Sandbox]; ok && rt != fn.Runtime {
			return fmt.Errorf("%w: sandbox %d mixes runtimes %s and %s", ErrPlacement, loc.Sandbox, rt, fn.Runtime)
		}
		runtimes[loc.Sandbox] = fn.Runtime
		for _, f := range fn.Files {
			m := files[loc.Sandbox]
			if m == nil {
				m = make(map[string]string)
				files[loc.Sandbox] = m
			}
			if other, dup := m[f]; dup {
				return fmt.Errorf("%w: functions %q and %q both write %s in sandbox %d", ErrPlacement, other, fn.Name, f, loc.Sandbox)
			}
			m[f] = fn.Name
		}
	}
	for name := range p.Loc {
		if w.Lookup(name) == nil {
			return fmt.Errorf("%w: plan places unknown function %q", ErrPlacement, name)
		}
	}
	for i := range p.Sandboxes {
		if !used[i] {
			return fmt.Errorf("%w: sandbox %d hosts no functions", ErrPlacement, i)
		}
	}
	return nil
}

// Ledgers builds the per-sandbox resource ledger for the whole plan: a
// sandbox's resident processes are the union over stages (process indices
// are persistent identities within a request's lifetime).
func (p *Plan) Ledgers(w *dag.Workflow) ([]*sandbox.Sandbox, error) {
	if err := p.Validate(w); err != nil {
		return nil, err
	}
	type key struct{ sb, proc int }
	threads := make(map[key]int)
	fnMem := make(map[int]float64)
	rts := make(map[int]behavior.Runtime)
	for _, fn := range w.Functions() {
		loc := p.Loc[fn.Name]
		threads[key{loc.Sandbox, loc.Proc}]++
		fnMem[loc.Sandbox] += fn.MemMB
		rts[loc.Sandbox] = fn.Runtime
	}
	out := make([]*sandbox.Sandbox, len(p.Sandboxes))
	for i, cfg := range p.Sandboxes {
		s := &sandbox.Sandbox{
			Runtime: rts[i],
			Pool:    cfg.Pool,
			CPUs:    cfg.CPUs,
			FnMemMB: fnMem[i],
		}
		procIdx := make([]int, 0)
		for k := range threads {
			if k.sb == i {
				procIdx = append(procIdx, k.proc)
			}
		}
		sort.Ints(procIdx)
		if cfg.Pool {
			// Pool sandboxes keep Workers resident workers regardless of
			// logical function grouping (default: one per function).
			workers := cfg.Workers
			if workers == 0 {
				for _, pr := range procIdx {
					workers += threads[key{i, pr}]
				}
			}
			for j := 0; j < workers; j++ {
				s.Procs = append(s.Procs, sandbox.Proc{Threads: 1})
			}
		} else {
			for _, pr := range procIdx {
				s.Procs = append(s.Procs, sandbox.Proc{Threads: threads[key{i, pr}]})
			}
		}
		out[i] = s
	}
	return out, nil
}

// MarshalJSON/UnmarshalJSON round-trip plans for the CLI.
func (p *Plan) MarshalJSON() ([]byte, error) {
	type alias Plan
	return json.Marshal((*alias)(p))
}

// UnmarshalJSON decodes a plan (validation requires the workflow and is
// done separately).
func (p *Plan) UnmarshalJSON(b []byte) error {
	type alias Plan
	return json.Unmarshal(b, (*alias)(p))
}
