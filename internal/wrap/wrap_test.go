package wrap

import (
	"encoding/json"
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/model"
)

func fn(name string) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: time.Millisecond}},
		MemMB:    2,
	}
}

// finraLike: stage 0 = fetch; stage 1 = v1..v4.
func finraLike(t *testing.T) *dag.Workflow {
	t.Helper()
	w, err := dag.FromStages("finra", 0,
		[]*behavior.Spec{fn("fetch")},
		[]*behavior.Spec{fn("v1"), fn("v2"), fn("v3"), fn("v4")},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// chironPlan: fetch as thread in sandbox0/proc0; v1,v2 as processes in
// sandbox 0; v3,v4 as processes in sandbox 1.
func chironPlan() *Plan {
	return &Plan{
		Workflow: "finra",
		Loc: map[string]Loc{
			"fetch": {0, 0},
			"v1":    {0, 1},
			"v2":    {0, 2},
			"v3":    {1, 1},
			"v4":    {1, 2},
		},
		Sandboxes: []SandboxCfg{{CPUs: 2}, {CPUs: 2}},
	}
}

func TestValidateAcceptsChironPlan(t *testing.T) {
	if err := chironPlan().Validate(finraLike(t)); err != nil {
		t.Fatal(err)
	}
}

func TestStageWrapsGrouping(t *testing.T) {
	w := finraLike(t)
	p := chironPlan()
	s0, err := p.StageWraps(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s0) != 1 || s0[0].Sandbox != 0 || !s0[0].HasMainProc() {
		t.Fatalf("stage 0 wraps = %+v", s0)
	}
	s1, err := p.StageWraps(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 2 {
		t.Fatalf("stage 1 has %d wraps, want 2", len(s1))
	}
	if s1[0].Sandbox != 0 || s1[1].Sandbox != 1 {
		t.Fatalf("wrap order %d,%d; want sandbox order", s1[0].Sandbox, s1[1].Sandbox)
	}
	if s1[0].HasMainProc() {
		t.Error("stage 1 places nothing in proc 0")
	}
	procs := s1[0].Processes()
	if len(procs) != 2 || procs[0][0].Name != "v1" || procs[1][0].Name != "v2" {
		t.Fatalf("stage1 wrap0 processes = %v", procs)
	}
	if _, err := p.StageWraps(w, 9); err == nil {
		t.Error("out-of-range stage accepted")
	}
}

func TestThreadGroupingInOneProcess(t *testing.T) {
	w := finraLike(t)
	p := &Plan{
		Workflow: "finra",
		Loc: map[string]Loc{
			"fetch": {0, 0}, "v1": {0, 1}, "v2": {0, 1}, "v3": {0, 1}, "v4": {0, 2},
		},
		Sandboxes: []SandboxCfg{{CPUs: 2}},
	}
	if err := p.Validate(w); err != nil {
		t.Fatal(err)
	}
	s1, _ := p.StageWraps(w, 1)
	if len(s1) != 1 || len(s1[0].Procs) != 2 {
		t.Fatalf("stage 1 = %+v", s1)
	}
	if got := len(s1[0].Procs[0].Functions); got != 3 {
		t.Fatalf("proc 1 hosts %d threads, want 3", got)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Plan, *dag.Workflow)
	}{
		{"wrong workflow", func(p *Plan, w *dag.Workflow) { p.Workflow = "other" }},
		{"no sandboxes", func(p *Plan, w *dag.Workflow) { p.Sandboxes = nil }},
		{"zero cpus", func(p *Plan, w *dag.Workflow) { p.Sandboxes[0].CPUs = 0 }},
		{"bad iso", func(p *Plan, w *dag.Workflow) { p.Sandboxes[0].Iso = "tee" }},
		{"negative workers", func(p *Plan, w *dag.Workflow) { p.Sandboxes[0].Workers = -1 }},
		{"missing placement", func(p *Plan, w *dag.Workflow) { delete(p.Loc, "v1") }},
		{"unknown sandbox", func(p *Plan, w *dag.Workflow) { p.Loc["v1"] = Loc{5, 0} }},
		{"negative proc", func(p *Plan, w *dag.Workflow) { p.Loc["v1"] = Loc{0, -1} }},
		{"phantom function", func(p *Plan, w *dag.Workflow) { p.Loc["ghost"] = Loc{0, 0} }},
		{"empty sandbox", func(p *Plan, w *dag.Workflow) {
			for n := range p.Loc {
				p.Loc[n] = Loc{0, 0}
			}
		}},
		{"mixed runtimes", func(p *Plan, w *dag.Workflow) { w.Stages[1].Functions[0].Runtime = behavior.Java }},
		{"file conflict", func(p *Plan, w *dag.Workflow) {
			w.Stages[1].Functions[0].Files = []string{"/tmp/shared"}
			w.Stages[1].Functions[1].Files = []string{"/tmp/shared"}
		}},
	}
	for _, tc := range cases {
		w := finraLike(t)
		p := chironPlan()
		tc.mut(p, w)
		if err := p.Validate(w); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestFileConflictAcrossSandboxesIsFine(t *testing.T) {
	w := finraLike(t)
	w.Stages[1].Functions[0].Files = []string{"/tmp/shared"} // v1 -> sandbox 0
	w.Stages[1].Functions[2].Files = []string{"/tmp/shared"} // v3 -> sandbox 1
	if err := chironPlan().Validate(w); err != nil {
		t.Fatalf("cross-sandbox file use rejected: %v", err)
	}
}

func TestTotals(t *testing.T) {
	p := chironPlan()
	if p.NumWraps() != 2 {
		t.Errorf("NumWraps = %d", p.NumWraps())
	}
	if p.TotalCPUs() != 4 {
		t.Errorf("TotalCPUs = %d", p.TotalCPUs())
	}
}

func TestLedgers(t *testing.T) {
	c := model.Default()
	w := finraLike(t)
	p := chironPlan()
	sbs, err := p.Ledgers(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(sbs) != 2 {
		t.Fatalf("%d ledgers", len(sbs))
	}
	// Sandbox 0: procs {0:fetch, 1:v1, 2:v2} = 3 procs, 3 fns.
	if sbs[0].NumProcs() != 3 || sbs[0].NumFunctions() != 3 {
		t.Fatalf("sandbox 0 = %d procs / %d fns", sbs[0].NumProcs(), sbs[0].NumFunctions())
	}
	if sbs[1].NumProcs() != 2 || sbs[1].NumFunctions() != 2 {
		t.Fatalf("sandbox 1 = %d procs / %d fns", sbs[1].NumProcs(), sbs[1].NumFunctions())
	}
	if sbs[0].MemoryMB(c) <= sbs[1].MemoryMB(c) {
		t.Error("sandbox 0 hosts more and must cost more memory")
	}
}

func TestLedgersPool(t *testing.T) {
	w := finraLike(t)
	p := chironPlan()
	p.Sandboxes[0].Pool = true
	p.Sandboxes[0].Workers = 2
	sbs, err := p.Ledgers(w)
	if err != nil {
		t.Fatal(err)
	}
	if sbs[0].NumProcs() != 2 {
		t.Fatalf("pool sandbox keeps %d workers, want 2", sbs[0].NumProcs())
	}
	if !sbs[0].Pool {
		t.Fatal("pool flag lost")
	}
	// Default pool size = one worker per function.
	p.Sandboxes[0].Workers = 0
	sbs, err = p.Ledgers(w)
	if err != nil {
		t.Fatal(err)
	}
	if sbs[0].NumProcs() != 3 {
		t.Fatalf("default pool keeps %d workers, want 3", sbs[0].NumProcs())
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := chironPlan()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(finraLike(t)); err != nil {
		t.Fatalf("round-tripped plan invalid: %v", err)
	}
	if back.Loc["v3"] != (Loc{1, 1}) {
		t.Fatalf("placement lost: %+v", back.Loc["v3"])
	}
}
