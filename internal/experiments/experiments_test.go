package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"chiron/internal/parallel"
)

func quickCfg() Config {
	return Config{Seed: 1, Quick: true, Requests: 25}
}

// parse helpers for table cells ("12.3ms", "45.6%", "1.23").
func cellMs(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
	if err != nil {
		t.Fatalf("cell %q not a millisecond value: %v", s, err)
	}
	return v
}

func cellPct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q not a percentage: %v", s, err)
	}
	return v
}

func cellF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", s, err)
	}
	return v
}

func TestRegistryCoversPaper(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table1",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
	}
	if len(Order) != len(want) {
		t.Fatalf("Order has %d entries, want %d", len(Order), len(want))
	}
	for _, id := range want {
		if Registry[id] == nil {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if _, err := Run("fig99", quickCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig3ASFDominatesScheduling(t *testing.T) {
	tab, err := Fig3SchedulingOverhead(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Rows: parallel, system, sched, e2e, sched%.
	var asf25, ofs25 float64
	for _, row := range tab.Rows {
		if row[0] == "25" && row[1] == "ASF" {
			asf25 = cellPct(t, row[4])
		}
		if row[0] == "25" && row[1] == "OpenFaaS" {
			ofs25 = cellPct(t, row[4])
		}
	}
	if asf25 < 50 {
		t.Errorf("ASF scheduling share at 25-way = %.1f%%, want dominant (>50%%)", asf25)
	}
	if ofs25 >= asf25 {
		t.Errorf("OpenFaaS share %.1f%% >= ASF %.1f%%", ofs25, asf25)
	}
}

func TestFig4OrderingAndMagnitudes(t *testing.T) {
	tab, err := Fig4Transmission(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	oneB := cellMs(t, tab.Rows[0][1])
	oneGB := cellMs(t, tab.Rows[3][1])
	if oneB < 45 || oneB > 60 {
		t.Errorf("1B over S3 = %.1fms, want ~52ms", oneB)
	}
	if oneGB < 20000 || oneGB > 30000 {
		t.Errorf("1GB over S3 = %.1fms, want ~25s", oneGB)
	}
	for _, row := range tab.Rows {
		if cellMs(t, row[2]) >= cellMs(t, row[1]) {
			t.Errorf("MinIO (%s) not cheaper than S3 (%s) at %s", row[2], row[1], row[0])
		}
	}
}

func TestFig5ThreadStartupTiny(t *testing.T) {
	tab, err := Fig5Timelines(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var procSpawnMax, threadSpawnMax float64
	for _, row := range tab.Rows {
		spawn := cellMs(t, row[2])
		switch row[0] {
		case "process":
			if spawn > procSpawnMax {
				procSpawnMax = spawn
			}
		case "thread":
			if spawn > threadSpawnMax {
				threadSpawnMax = spawn
			}
		}
	}
	if procSpawnMax < 15 {
		t.Errorf("last process spawned at %.1fms; block+startup cascade missing", procSpawnMax)
	}
	if threadSpawnMax > procSpawnMax/4 {
		t.Errorf("threads spawn at %.1fms vs processes %.1fms; expected ~96%% cheaper", threadSpawnMax, procSpawnMax)
	}
}

func TestFig6ChironWinsAndCrossover(t *testing.T) {
	tab, err := Fig6LatencyComparison(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: parallel, OpenFaaS, Faastlane, Faastlane-T, Faastlane+, Chiron.
	for _, row := range tab.Rows {
		chiron := cellMs(t, row[5])
		for i := 1; i <= 4; i++ {
			if cellMs(t, row[i]) < chiron*0.98 {
				t.Errorf("par=%s: %s (%.1f) beats Chiron (%.1f)", row[0], tab.Columns[i], cellMs(t, row[i]), chiron)
			}
		}
	}
	// Observation 3 crossover: Faastlane-T beats Faastlane at 5, loses at 25.
	var t5, f5, t25, f25 float64
	for _, row := range tab.Rows {
		if row[0] == "5" {
			f5, t5 = cellMs(t, row[2]), cellMs(t, row[3])
		}
		if row[0] == "25" {
			f25, t25 = cellMs(t, row[2]), cellMs(t, row[3])
		}
	}
	if t5 >= f5 {
		t.Errorf("FINRA-5: threads (%.1f) should beat processes (%.1f)", t5, f5)
	}
	if t25 <= f25 {
		t.Errorf("FINRA-25: processes (%.1f) should beat threads (%.1f)", f25, t25)
	}
}

func TestFig7FewerCPUsModestPenalty(t *testing.T) {
	tab, err := Fig7NoGILCPUs(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	means := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		if means[row[0]] == nil {
			means[row[0]] = map[string]float64{}
		}
		means[row[0]][row[1]] = cellMs(t, row[2])
	}
	for mech, byCPU := range means {
		if byCPU["3"] < byCPU["4"]*0.99 {
			t.Errorf("%s: 3 CPUs (%f) faster than 4 (%f)", mech, byCPU["3"], byCPU["4"])
		}
		penalty := byCPU["3"]/byCPU["4"] - 1
		if penalty > 0.45 {
			t.Errorf("%s: dropping one CPU costs %.0f%%, paper says ~11.7%%", mech, penalty*100)
		}
		if byCPU["1"] <= byCPU["4"]*1.5 {
			t.Errorf("%s: 1 CPU (%f) should serialize well beyond 4 CPUs (%f)", mech, byCPU["1"], byCPU["4"])
		}
	}
}

func TestFig8ChironMostEfficient(t *testing.T) {
	tab, err := Fig8Resources(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[string][]string{}
	for _, row := range tab.Rows {
		if byKey[row[0]] == nil {
			byKey[row[0]] = map[string][]string{}
		}
		byKey[row[0]][row[1]] = row
	}
	for par, rows := range byKey {
		ofsMem := cellF(t, rows["OpenFaaS"][2])
		flMem := cellF(t, rows["Faastlane"][2])
		chMem := cellF(t, rows["Chiron"][2])
		if !(chMem <= flMem && flMem < ofsMem) {
			t.Errorf("par=%s: memory ordering broken: %f / %f / %f", par, ofsMem, flMem, chMem)
		}
		if cellF(t, rows["Chiron"][3]) > cellF(t, rows["Faastlane"][3]) {
			t.Errorf("par=%s: Chiron reserves more CPUs than Faastlane", par)
		}
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	tab, err := Table1Isolation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	sfi, mpk := tab.Rows[0], tab.Rows[1]
	if cellMs(t, mpk[1]) >= cellMs(t, sfi[1]) {
		t.Error("MPK startup must undercut SFI")
	}
	if cellPct(t, mpk[3]) >= cellPct(t, sfi[3]) {
		t.Error("MPK fibonacci overhead must undercut SFI")
	}
	if cellPct(t, mpk[4]) >= cellPct(t, sfi[4]) {
		t.Error("MPK disk-io overhead must undercut SFI")
	}
	// CPU-bound suffers more than IO-bound under both mechanisms.
	if cellPct(t, mpk[3]) <= cellPct(t, mpk[4]) {
		t.Error("fibonacci should suffer more than disk-io under MPK")
	}
}

func TestFig11TraceEndsWithinSLO(t *testing.T) {
	tab, err := Fig11PGPTrace(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty trace")
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[3] != "true" {
		t.Fatalf("final step does not meet the SLO: %v", last)
	}
}

func TestFig12ChironBeatsLearnedModels(t *testing.T) {
	tab, err := Fig12PredictionError(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		chiron := cellPct(t, row[2])
		if chiron > 25 {
			t.Errorf("%s/%s: Chiron error %.1f%% too high", row[0], row[1], chiron)
		}
		worst := cellPct(t, row[3])
		for _, c := range []int{4, 5} {
			if v := cellPct(t, row[c]); v > worst {
				worst = v
			}
		}
		if worst < chiron {
			t.Errorf("%s/%s: every learned model beat the white-box predictor (best learned %.1f%% vs %.1f%%)",
				row[0], row[1], worst, chiron)
		}
	}
}

func TestFig13ChironIsBaselineWinner(t *testing.T) {
	tab, err := Fig13OverallLatency(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	cols := tab.Columns
	chironCol := -1
	asfCol := -1
	for i, c := range cols {
		if c == "Chiron" {
			chironCol = i
		}
		if c == "ASF" {
			asfCol = i
		}
	}
	if chironCol < 0 || asfCol < 0 {
		t.Fatalf("columns: %v", cols)
	}
	for _, row := range tab.Rows[:len(tab.Rows)-1] { // skip avg row
		if norm := cellF(t, row[chironCol]); norm != 1.0 {
			t.Errorf("%s: Chiron normalized to %.2f", row[0], norm)
		}
		if asf := cellF(t, row[asfCol]); asf < 3 {
			t.Errorf("%s: ASF only %.2fx Chiron; one-to-one overhead missing", row[0], asf)
		}
	}
}

func TestFig14ChironViolatesLessThanFaastlane(t *testing.T) {
	tab, err := Fig14SLOViolations(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var flSum, chSum float64
	for _, row := range tab.Rows {
		flSum += cellPct(t, row[2])
		chSum += cellPct(t, row[3])
	}
	if chSum >= flSum {
		t.Fatalf("Chiron violations (%.1f total) not below Faastlane (%.1f)", chSum, flSum)
	}
	if chSum/float64(len(tab.Rows)) > 8 {
		t.Fatalf("Chiron averages %.1f%% violations, paper says ~1.3%%", chSum/float64(len(tab.Rows)))
	}
}

func TestFig15ChironFinishesEarly(t *testing.T) {
	tab, err := Fig15LatencyCDF(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	p99 := map[string]float64{}
	for _, row := range tab.Rows {
		p99[row[0]] = cellMs(t, row[5])
	}
	if p99["Chiron"] >= p99["Faastlane"] {
		t.Errorf("Chiron p99 %.1f >= Faastlane %.1f", p99["Chiron"], p99["Faastlane"])
	}
	if p99["Chiron-M"] >= p99["Faastlane-M"] {
		t.Errorf("Chiron-M p99 %.1f >= Faastlane-M %.1f", p99["Chiron-M"], p99["Faastlane-M"])
	}
}

func TestFig16ChironLeadsThroughput(t *testing.T) {
	tab, err := Fig16MemoryThroughput(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[1] == "memory" {
			// OpenFaaS (first system column, index 3) pays heavy redundancy.
			if v := cellF(t, row[3]); v < 2 {
				t.Errorf("%s: OpenFaaS memory only %.2fx Chiron", row[0], v)
			}
		}
		if row[1] == "throughput" {
			// Chiron (column of Chiron) normalized 1.0; Faastlane below 1.
			for i, c := range tab.Columns {
				if c == "Faastlane" {
					if v := cellF(t, row[i]); v >= 1.0 {
						t.Errorf("%s: Faastlane throughput %.2fx >= Chiron", row[0], v)
					}
				}
			}
		}
	}
}

func TestFig17ChironReservesFewestCPUs(t *testing.T) {
	tab, err := Fig17CPUAllocation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for i := 2; i < len(row); i++ {
			if v := cellF(t, row[i]); v < 0.99 {
				t.Errorf("%s: %s uses %.2fx Chiron's CPUs (<1)", row[0], tab.Columns[i], v)
			}
		}
	}
}

func TestFig18ChironThroughputLeadsWithoutGIL(t *testing.T) {
	tab, err := Fig18NoGIL(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	thr := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		if thr[row[0]] == nil {
			thr[row[0]] = map[string]float64{}
		}
		thr[row[0]][row[1]] = cellF(t, row[3])
	}
	for app, by := range thr {
		if by["Chiron"] <= by["One-to-One"] || by["Chiron"] <= by["Many-to-One"] {
			t.Errorf("%s: Chiron throughput %.1f not ahead (1:1 %.1f, m:1 %.1f)",
				app, by["Chiron"], by["One-to-One"], by["Many-to-One"])
		}
	}
}

func TestFig19ChironCheapest(t *testing.T) {
	tab, err := Fig19DollarCost(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for i := 2; i < len(row); i++ {
			v := cellF(t, row[i])
			if tab.Columns[i] == "Chiron" {
				if v != 1.0 {
					t.Errorf("%s: Chiron normalized cost %.1f", row[0], v)
				}
				continue
			}
			if tab.Columns[i] == "ASF" && v < 5 {
				t.Errorf("%s: ASF only %.1fx Chiron's cost; transition fees missing", row[0], v)
			}
			if v < 0.5 {
				t.Errorf("%s: %s drastically cheaper than Chiron (%.2fx)", row[0], tab.Columns[i], v)
			}
		}
	}
}

func TestAllExperimentsRenderNonEmpty(t *testing.T) {
	for _, id := range Order {
		tab, err := Run(id, quickCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := tab.String()
		if len(out) < 50 || !strings.Contains(out, tab.ID) {
			t.Errorf("%s: implausible rendering (%d bytes)", id, len(out))
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := Default()
	if cfg.Requests != 100 || cfg.Const.NodeCores == 0 {
		t.Fatalf("Default() = %+v", cfg)
	}
	var c Config
	c.defaults()
	if c.Requests == 0 || c.Const.NodeCores == 0 {
		t.Fatal("defaults() did not fill zero config")
	}
	_ = time.Second
}

// TestTablesDeterministicAcrossWorkerCounts is the harness's core
// guarantee: every experiment renders byte-identical tables whether the
// worker pool is sequential or wide. The subset below covers each fan-out
// shape (per-size, per-system, per-workload, per-candidate, per-value).
func TestTablesDeterministicAcrossWorkerCounts(t *testing.T) {
	ids := []string{"fig3", "fig6", "fig11", "fig12", "fig13", "fig14", "fig15", "abl-safety", "abl-kl"}
	render := func(workers int) map[string]string {
		prev := parallel.Workers()
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		out := map[string]string{}
		for _, id := range ids {
			tab, err := Run(id, quickCfg())
			if err != nil {
				t.Fatalf("%s at %d workers: %v", id, workers, err)
			}
			out[id] = tab.String()
		}
		return out
	}
	seq := render(1)
	par := render(8)
	for _, id := range ids {
		if seq[id] != par[id] {
			t.Errorf("%s: table differs between 1 and 8 workers\n--- sequential ---\n%s\n--- parallel ---\n%s", id, seq[id], par[id])
		}
	}
}
