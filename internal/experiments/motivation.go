package experiments

import (
	"fmt"
	"strings"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/engine"
	"chiron/internal/gil"
	"chiron/internal/metrics"
	"chiron/internal/model"
	"chiron/internal/netsim"
	"chiron/internal/parallel"
	"chiron/internal/platform"
	"chiron/internal/proc"
	"chiron/internal/render"
	"chiron/internal/workloads"
)

// Fig3SchedulingOverhead reproduces Figure 3: the share of end-to-end
// latency the one-to-one model spends scheduling FINRA's parallel stage on
// ASF vs OpenFaaS, at 5/25/50 parallel functions.
func Fig3SchedulingOverhead(cfg Config) (*render.Table, error) {
	cfg.defaults()
	t := &render.Table{
		ID:      "fig3",
		Title:   "Scheduling overhead in FINRA (one-to-one model)",
		Columns: []string{"parallel", "system", "sched", "e2e", "sched%"},
	}
	sizes := finraSizes(cfg)
	rowsPer, err := parallel.Map(len(sizes), func(i int) ([][]string, error) {
		par := sizes[i]
		w := workloads.FINRA(par)
		systems := []*platform.System{platform.ASF(cfg.Const), platform.OpenFaaS(cfg.Const)}
		return mapSystems(systems, func(sys *platform.System) ([]string, error) {
			d, err := deploy(sys, w, nil, 0)
			if err != nil {
				return nil, err
			}
			res, err := d.runOnce(w, cfg)
			if err != nil {
				return nil, err
			}
			sched := res.SchedTotal()
			return []string{fmt.Sprint(par), sys.Name, render.Ms(sched), render.Ms(res.E2E),
				render.Pct(float64(sched) / float64(res.E2E))}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowsPer {
		for _, row := range rows {
			t.AddRow(row...)
		}
	}
	t.AddNote("paper: ASF 150ms/874ms/1628ms and OpenFaaS 2ms/70ms/180ms of scheduling at 5/25/50; up to 95%% of latency")
	return t, nil
}

// Fig4Transmission reproduces Figure 4: intermediate-data transfer latency
// across payload sizes, through S3 from Lambda and MinIO on the local
// cluster.
func Fig4Transmission(cfg Config) (*render.Table, error) {
	cfg.defaults()
	t := &render.Table{
		ID:      "fig4",
		Title:   "Function interaction latency vs payload size",
		Columns: []string{"size", "ASF+S3", "OpenFaaS+MinIO"},
	}
	s3 := netsim.AWSS3(cfg.Const)
	minio := netsim.LocalMinIO(cfg.Const)
	sizes := []struct {
		label string
		n     int64
	}{
		{"1B", 1}, {"1KB", 1 << 10}, {"1MB", 1 << 20}, {"1GB", 1 << 30},
	}
	for _, sz := range sizes {
		t.AddRow(sz.label, render.Ms(s3.Transfer(sz.n)), render.Ms(minio.Transfer(sz.n)))
	}
	t.AddNote("paper: 52ms floor and up to 25s on S3; 10ms-10s on the local cluster")
	return t, nil
}

// Fig5Timelines reproduces Figure 5: per-function execution timelines of
// FINRA-5 under process execution (Faastlane) and thread execution
// (Faastlane-T), showing fork block/startup versus cheap thread clones.
func Fig5Timelines(cfg Config) (*render.Table, error) {
	cfg.defaults()
	w := workloads.FINRA(5)
	t := &render.Table{
		ID:      "fig5",
		Title:   "FINRA-5 parallel-stage timelines: process vs thread mode",
		Columns: []string{"mode", "function", "spawned", "finish", "startup-share"},
	}
	for _, sys := range []*platform.System{platform.Faastlane(cfg.Const), platform.FaastlaneT(cfg.Const)} {
		plan, err := sys.Plan(w, nil, 0)
		if err != nil {
			return nil, err
		}
		env := sys.Env()
		env.Seed = cfg.Seed
		env.Record = true
		res, err := engine.Run(w, plan, env)
		if err != nil {
			return nil, err
		}
		mode := "process"
		if sys.Name == "Faastlane-T" {
			mode = "thread"
		}
		stageStart := res.Stages[1].Start
		var gantt []render.GanttRow
		for _, ft := range res.Functions {
			if ft.Stage != 1 {
				continue
			}
			startup := ft.Start - stageStart
			total := ft.Finish - stageStart
			share := 0.0
			if total > 0 {
				share = float64(startup) / float64(total)
			}
			t.AddRow(mode, ft.Name,
				render.Ms(startup), render.Ms(total), render.Pct(share))
			row := render.GanttRow{Label: mode + "/" + ft.Name}
			for _, sl := range ft.Slices {
				glyph := byte('#') // run
				switch sl.Kind {
				case gil.Startup:
					glyph = 's'
				case gil.Block:
					glyph = '.'
				case gil.Wait:
					glyph = '-'
				}
				row.Spans = append(row.Spans, render.GanttSpan{
					From:  (sl.From - stageStart).Seconds() * 1000,
					To:    (sl.To - stageStart).Seconds() * 1000,
					Glyph: glyph,
				})
			}
			gantt = append(gantt, row)
		}
		for _, line := range splitLines(render.Gantt(gantt, 64)) {
			t.AddNote("%s", line)
		}
	}
	t.AddNote("timeline glyphs: s=startup  -=wait  #=on-CPU  .=blocked  (x-axis in ms)")
	t.AddNote("paper: fork startup ~7.5ms (10x a sub-ms function) plus 1-2.1x block time; threads cut startup 96%%")
	return t, nil
}

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		out = append(out, l)
	}
	return out
}

// Fig6LatencyComparison reproduces Figure 6: FINRA end-to-end latency
// under the five motivating systems at 5/25/50 parallel functions.
func Fig6LatencyComparison(cfg Config) (*render.Table, error) {
	cfg.defaults()
	systems := []*platform.System{
		platform.OpenFaaS(cfg.Const), platform.Faastlane(cfg.Const),
		platform.FaastlaneT(cfg.Const), platform.FaastlanePlus(cfg.Const),
		platform.Chiron(cfg.Const),
	}
	t := &render.Table{
		ID:      "fig6",
		Title:   "FINRA end-to-end latency across deployment models",
		Columns: append([]string{"parallel"}, names(systems)...),
	}
	sizes := finraSizes(cfg)
	rows, err := parallel.Map(len(sizes), func(i int) ([]string, error) {
		par := sizes[i]
		w := workloads.FINRA(par)
		set, slo, err := workloadBasics(w, cfg)
		if err != nil {
			return nil, err
		}
		lats, err := mapSystems(systems, func(sys *platform.System) (time.Duration, error) {
			// Figure 6 explores the *optimal* deployment model, so Chiron
			// plans latency-first here (no SLO -> PGP minimizes latency);
			// the SLO-constrained comparison is Figure 13.
			sysSLO := slo
			if sys.Name == "Chiron" {
				sysSLO = 0
			}
			d, err := deploy(sys, w, set, sysSLO)
			if err != nil {
				return 0, err
			}
			return d.meanLatency(w, cfg, 5)
		})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(par)}
		for _, lat := range lats {
			row = append(row, render.Ms(lat))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("paper: Faastlane-T wins at 5 (+17.4%%) but is 77%% slower than OpenFaaS at 50; Chiron best everywhere (15.9-74.1%% reduction)")
	return t, nil
}

// Fig7NoGILCPUs reproduces Figure 7: latency of four similar-latency
// parallel functions under true parallelism (process pool / Java threads)
// as the cpuset shrinks from 4 to 1.
func Fig7NoGILCPUs(cfg Config) (*render.Table, error) {
	cfg.defaults()
	t := &render.Table{
		ID:      "fig7",
		Title:   "True-parallel latency vs cpuset size (no GIL)",
		Columns: []string{"mechanism", "cpus", "mean", "p95"},
	}
	solo := 40 * time.Millisecond
	specs := []*behavior.Spec{
		behavior.FromClass("factorial", behavior.Factorial, solo, behavior.Python),
		behavior.FromClass("fibonacci", behavior.Fibonacci, solo, behavior.Python),
		behavior.FromClass("disk-io", behavior.DiskHeavy, solo, behavior.Python),
		behavior.FromClass("network-io", behavior.NetHeavy, solo, behavior.Python),
	}
	type combo struct {
		mech string
		cpus int
	}
	var combos []combo
	for _, mech := range []string{"Python ProcessPool", "Java Thread"} {
		for cpus := 4; cpus >= 1; cpus-- {
			combos = append(combos, combo{mech, cpus})
		}
	}
	rows, err := parallel.Map(len(combos), func(ci int) ([]string, error) {
		mech, cpus := combos[ci].mech, combos[ci].cpus
		var lats []time.Duration
		for rep := 0; rep < 10; rep++ {
			var res *gil.Result
			if mech == "Python ProcessPool" {
				res = gil.Simulate(specs, gil.Options{
					Procs: cpus, Quantum: cfg.Const.GILInterval,
					Spawn: gil.Dispatcher, SpawnCost: cfg.Const.PoolDispatch,
					Workers: 4, JitterPct: cfg.Const.StartupJitterPct,
					SyscallOverhead: cfg.Const.SyscallOverhead,
					Seed:            cfg.Seed + int64(rep),
				})
			} else {
				jspecs := make([]*behavior.Spec, len(specs))
				for i, s := range specs {
					jspecs[i] = s.Clone(s.Name)
					jspecs[i].Runtime = behavior.Java
				}
				res = gil.Simulate(jspecs, gil.Options{
					Procs: cpus, Quantum: cfg.Const.GILInterval,
					Spawn: gil.MainThread, SpawnCost: cfg.Const.ThreadStartup,
					SpawnBatch: 8, JitterPct: cfg.Const.StartupJitterPct,
					SyscallOverhead: cfg.Const.SyscallOverhead,
					Seed:            cfg.Seed + int64(rep),
				})
			}
			lats = append(lats, res.Total)
		}
		return []string{mech, fmt.Sprint(cpus), render.Ms(metrics.Mean(lats)), render.Ms(metrics.Percentile(lats, 0.95))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("paper: dropping from 4 to 3 CPUs costs only ~11.7%% (4.2ms) — uniform allocation wastes CPU")
	return t, nil
}

// Fig8Resources reproduces Figure 8: FINRA's overall memory and
// normalized CPU cost under OpenFaaS, Faastlane and Chiron.
func Fig8Resources(cfg Config) (*render.Table, error) {
	cfg.defaults()
	t := &render.Table{
		ID:      "fig8",
		Title:   "FINRA resource consumption across deployment models",
		Columns: []string{"parallel", "system", "memoryMB", "cpus", "norm-cpu"},
	}
	sizes := finraSizes(cfg)
	rowsPer, err := parallel.Map(len(sizes), func(i int) ([][]string, error) {
		par := sizes[i]
		w := workloads.FINRA(par)
		set, slo, err := workloadBasics(w, cfg)
		if err != nil {
			return nil, err
		}
		systems := []*platform.System{
			platform.OpenFaaS(cfg.Const), platform.Faastlane(cfg.Const), platform.Chiron(cfg.Const),
		}
		var chironCPUs int
		rows := [][]string{}
		for _, sys := range systems {
			d, err := deploy(sys, w, set, slo)
			if err != nil {
				return nil, err
			}
			mem, err := d.memoryMB(w, cfg)
			if err != nil {
				return nil, err
			}
			cpus := d.plan.TotalCPUs()
			if sys.Name == "Chiron" {
				chironCPUs = cpus
			}
			rows = append(rows, []string{fmt.Sprint(par), sys.Name, render.F1(mem), fmt.Sprint(cpus), ""})
		}
		for _, row := range rows {
			c := atoiSafe(row[3])
			row[4] = render.F2(float64(c) / float64(chironCPUs))
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowsPer {
		for _, row := range rows {
			t.AddRow(row...)
		}
	}
	t.AddNote("paper: Faastlane cuts 85.5%% memory vs OpenFaaS; Chiron cuts another 82.7%% CPU and 8.3%% memory vs Faastlane")
	return t, nil
}

// Table1Isolation reproduces Table 1: SFI vs Intel MPK isolation costs on
// a CPU-bound (fibonacci) and an IO-bound (disk-io) function.
func Table1Isolation(cfg Config) (*render.Table, error) {
	cfg.defaults()
	t := &render.Table{
		ID:      "table1",
		Title:   "Thread isolation mechanisms (SFI vs Intel MPK)",
		Columns: []string{"mechanism", "startup", "interaction", "fibonacci-overhead", "disk-io-overhead"},
	}
	solo := 40 * time.Millisecond
	fib := behavior.FromClass("fibonacci", behavior.Fibonacci, solo, behavior.Python)
	disk := behavior.FromClass("disk-io", behavior.DiskHeavy, solo, behavior.Python)

	overhead := func(spec *behavior.Spec, iso proc.Isolation) float64 {
		base := runIso(spec, proc.NoIsolation(), cfg.Const)
		with := runIso(spec, iso, cfg.Const)
		return float64(with-base) / float64(base)
	}
	for _, mech := range []struct {
		name string
		iso  proc.Isolation
	}{
		{"SFI", proc.SFI(cfg.Const)},
		{"Intel MPK", proc.MPK(cfg.Const)},
	} {
		t.AddRow(mech.name,
			render.Ms(mech.iso.ThreadStartupExtra),
			render.Ms(mech.iso.Interaction),
			render.Pct(overhead(fib, mech.iso)),
			render.Pct(overhead(disk, mech.iso)),
		)
	}
	t.AddNote("paper: SFI 18ms/8ms with 52.9%%/29.4%% execution overhead; MPK 0.2ms/0 with 35.2%%/7.3%%")
	return t, nil
}

// runIso measures one function's execution latency under an isolation
// mechanism (thread mode, solo).
func runIso(spec *behavior.Spec, iso proc.Isolation, c model.Constants) time.Duration {
	res := proc.Run([][]*behavior.Spec{{spec, spec.Clone(spec.Name + "-b")}}, proc.Options{
		Const: c, Iso: iso,
	})
	return res.Total
}

func names(systems []*platform.System) []string {
	out := make([]string, len(systems))
	for i, s := range systems {
		out[i] = s.Name
	}
	return out
}

func atoiSafe(s string) int {
	n := 0
	fmt.Sscanf(s, "%d", &n)
	return n
}
