package experiments

import "testing"

func TestAblationsRegisteredAndRun(t *testing.T) {
	for _, id := range Ablations {
		if Registry[id] == nil {
			t.Fatalf("%s not registered", id)
		}
		tab, err := Run(id, quickCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: no rows", id)
		}
	}
}

func TestAblWrapCountUShape(t *testing.T) {
	tab, err := AblWrapCount(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The single-wrap row must not be the best (block time hurts), and
	// the max-wrap row must not be the best either (RPC hurts).
	first := cellF(t, tab.Rows[0][3])
	last := cellF(t, tab.Rows[len(tab.Rows)-1][3])
	if first <= 1.0 && last <= 1.0 {
		t.Fatalf("no U-shape: first=%.2f last=%.2f", first, last)
	}
}

func TestAblMainThreadPenaltyPositive(t *testing.T) {
	tab, err := AblMainThread(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if cellPct(t, row[3]) < -1 {
			t.Fatalf("%s: classic-watchdog cheaper than of-watchdog (%s)", row[0], row[3])
		}
	}
}

func TestAblKLRefinementHelps(t *testing.T) {
	tab, err := AblKernighanLin(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// For each SLO pair, KL must not be worse on both procs and latency.
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		rr, kl := tab.Rows[i], tab.Rows[i+1]
		rrProcs, klProcs := cellF(t, rr[2]), cellF(t, kl[2])
		rrLat, klLat := cellMs(t, rr[4]), cellMs(t, kl[4])
		if klProcs > rrProcs && klLat > rrLat*1.02 {
			t.Fatalf("KL worse on both axes at %s: procs %v->%v lat %.1f->%.1f",
				rr[0], rrProcs, klProcs, rrLat, klLat)
		}
	}
}

func TestAblColdStartOrdering(t *testing.T) {
	tab, err := AblColdStart(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	pen := map[string]float64{}
	for _, row := range tab.Rows {
		pen[row[0]] = cellPct(t, row[4])
	}
	if pen["OpenFaaS"] <= pen["Chiron"] {
		t.Fatalf("one-to-one cold penalty (%.1f%%) should exceed Chiron's (%.1f%%)", pen["OpenFaaS"], pen["Chiron"])
	}
}

func TestAblSafetyMonotoneCPUs(t *testing.T) {
	tab, err := AblSafetyMargin(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, row := range tab.Rows {
		cpus := cellF(t, row[1])
		if cpus < prev {
			t.Fatalf("CPUs decreased as safety grew: %v", tab.Rows)
		}
		prev = cpus
	}
}

func TestAblLoadChironSustainsMost(t *testing.T) {
	tab, err := AblLoad(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, row := range tab.Rows {
		rates[row[0]] = cellF(t, row[3])
	}
	if rates["Chiron"] <= rates["Faastlane"] || rates["Chiron"] <= rates["OpenFaaS"] {
		t.Fatalf("Chiron sustainable rate %.1f not ahead (Faastlane %.1f, OpenFaaS %.1f)",
			rates["Chiron"], rates["Faastlane"], rates["OpenFaaS"])
	}
	for _, row := range tab.Rows {
		if cellF(t, row[3]) > cellF(t, row[2])+0.01 {
			t.Fatalf("%s: sustainable exceeds zero-queue bound", row[0])
		}
	}
}
