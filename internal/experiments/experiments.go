// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 2's motivation figures and Section 6's results).
// Each experiment returns a render.Table carrying the same rows/series the
// paper plots; bench_test.go and cmd/chiron-bench expose them.
//
// Absolute numbers come from this repository's calibrated virtual-time
// substrate, not the authors' 8-node testbed; the point of each table is
// the paper's *shape*: who wins, by roughly what factor, and where the
// crossovers fall. EXPERIMENTS.md records paper-vs-measured for all of
// them.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"chiron/internal/dag"
	"chiron/internal/engine"
	"chiron/internal/metrics"
	"chiron/internal/model"
	"chiron/internal/node"
	"chiron/internal/parallel"
	"chiron/internal/platform"
	"chiron/internal/profiler"
	"chiron/internal/render"
	"chiron/internal/workloads"
	"chiron/internal/wrap"
)

// Config parameterizes an experiment run.
type Config struct {
	// Const is the substrate calibration (model.Default unless testing).
	Const model.Constants
	// Seed drives every deterministic jitter stream.
	Seed int64
	// Requests is the per-configuration sample count for distributional
	// metrics (Figures 14-15).
	Requests int
	// Quick trims sweeps for unit tests (fewer requests, smaller
	// FINRA instances, fewer ML candidates).
	Quick bool
}

// Default returns the standard configuration.
func Default() Config {
	return Config{Const: model.Default(), Seed: 1, Requests: 100}
}

func (c *Config) defaults() {
	if c.Const.NodeCores == 0 {
		c.Const = model.Default()
	}
	if c.Requests <= 0 {
		c.Requests = 100
		if c.Quick {
			c.Requests = 25
		}
	}
}

// Func is one experiment driver.
type Func func(Config) (*render.Table, error)

// Registry maps experiment IDs to drivers, and Order lists them in paper
// order.
var (
	Registry = map[string]Func{
		"fig3":   Fig3SchedulingOverhead,
		"fig4":   Fig4Transmission,
		"fig5":   Fig5Timelines,
		"fig6":   Fig6LatencyComparison,
		"fig7":   Fig7NoGILCPUs,
		"fig8":   Fig8Resources,
		"table1": Table1Isolation,
		"fig11":  Fig11PGPTrace,
		"fig12":  Fig12PredictionError,
		"fig13":  Fig13OverallLatency,
		"fig14":  Fig14SLOViolations,
		"fig15":  Fig15LatencyCDF,
		"fig16":  Fig16MemoryThroughput,
		"fig17":  Fig17CPUAllocation,
		"fig18":  Fig18NoGIL,
		"fig19":  Fig19DollarCost,
	}
	Order = []string{
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table1",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19",
	}
)

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*render.Table, error) {
	f, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, Order)
	}
	return f(cfg)
}

// ---- shared harness helpers ----

// mapEntries evaluates fn once per workload entry on the parallel worker
// pool, preserving entry order. Each entry's computation is independent
// (its own profiles, plans and simulations); table rows are appended
// sequentially from the ordered results, so output is byte-identical at
// any worker count.
func mapEntries[T any](entries []workloads.Entry, fn func(e workloads.Entry) (T, error)) ([]T, error) {
	return parallel.Map(len(entries), func(i int) (T, error) { return fn(entries[i]) })
}

// mapSystems evaluates fn once per system on the parallel worker pool,
// preserving system order.
func mapSystems[T any](systems []*platform.System, fn func(sys *platform.System) (T, error)) ([]T, error) {
	return parallel.Map(len(systems), func(i int) (T, error) { return fn(systems[i]) })
}

// workloadBasics computes the shared per-workload inputs — the profile set
// and the Faastlane-derived SLO — that nearly every driver needs before
// deploying systems.
func workloadBasics(w *dag.Workflow, cfg Config) (profiler.Set, time.Duration, error) {
	set, err := profileOf(w, cfg)
	if err != nil {
		return nil, 0, err
	}
	slo, err := faastlaneSLO(w, cfg)
	if err != nil {
		return nil, 0, err
	}
	return set, slo, nil
}

// deployment is a planned system ready to execute.
type deployment struct {
	sys  *platform.System
	plan *wrap.Plan
}

// profileOf profiles a workflow with the standard options.
func profileOf(w *dag.Workflow, cfg Config) (profiler.Set, error) {
	opt := profiler.DefaultOptions()
	opt.Seed = cfg.Seed
	return profiler.ProfileWorkflow(w, opt)
}

// faastlaneSLO derives the paper's SLO convention: Faastlane's average
// end-to-end latency plus 10 ms of slack (Section 6.2).
func faastlaneSLO(w *dag.Workflow, cfg Config) (time.Duration, error) {
	fl := platform.Faastlane(cfg.Const)
	plan, err := fl.Plan(w, nil, 0)
	if err != nil {
		return 0, err
	}
	env := fl.Env()
	env.Seed = cfg.Seed
	lats, err := engine.RunMany(w, plan, env, 10)
	if err != nil {
		return 0, err
	}
	return metrics.Mean(lats) + 10*time.Millisecond, nil
}

// deploy plans one system against a workload.
func deploy(sys *platform.System, w *dag.Workflow, set profiler.Set, slo time.Duration) (*deployment, error) {
	plan, err := sys.Plan(w, set, slo)
	if err != nil {
		return nil, err
	}
	return &deployment{sys: sys, plan: plan}, nil
}

// runOnce executes a single request.
func (d *deployment) runOnce(w *dag.Workflow, cfg Config) (*engine.Result, error) {
	env := d.sys.Env()
	env.Seed = cfg.Seed
	return engine.Run(w, d.plan, env)
}

// meanLatency averages n requests.
func (d *deployment) meanLatency(w *dag.Workflow, cfg Config, n int) (time.Duration, error) {
	env := d.sys.Env()
	env.Seed = cfg.Seed
	lats, err := engine.RunMany(w, d.plan, env, n)
	if err != nil {
		return 0, err
	}
	return metrics.Mean(lats), nil
}

// throughput computes the per-node maximum RPS (Figure 16's metric): how
// many whole instances fit into one Table 2 worker divided by the
// end-to-end latency.
func (d *deployment) throughput(w *dag.Workflow, cfg Config) (float64, error) {
	lat, err := d.meanLatency(w, cfg, 5)
	if err != nil {
		return 0, err
	}
	ledgers, err := d.plan.Ledgers(w)
	if err != nil {
		return 0, err
	}
	demand := node.DemandOf(cfg.Const, ledgers)
	instances := node.FromConstants(cfg.Const).MaxInstances(demand)
	if instances < 1 {
		instances = 1 // a deployment larger than one node still serves from the cluster
	}
	return metrics.Throughput(instances, lat), nil
}

// memoryMB sums the deployment's resident memory.
func (d *deployment) memoryMB(w *dag.Workflow, cfg Config) (float64, error) {
	ledgers, err := d.plan.Ledgers(w)
	if err != nil {
		return 0, err
	}
	var mb float64
	for _, sb := range ledgers {
		mb += sb.MemoryMB(cfg.Const)
	}
	return mb, nil
}

// finraSizes returns the FINRA parallelism sweep, trimmed under Quick.
func finraSizes(cfg Config) []int {
	if cfg.Quick {
		return []int{5, 25}
	}
	return []int{5, 25, 50}
}

// suite returns the eight evaluation workloads, trimmed under Quick.
func suite(cfg Config) []workloads.Entry {
	s := workloads.Suite()
	if cfg.Quick {
		return []workloads.Entry{s[0], s[2], s[4], s[5]} // SN, SLApp, FINRA-5, FINRA-50
	}
	return s
}

// sortedKeys returns map keys in sorted order (stable table rows).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
