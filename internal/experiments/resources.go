package experiments

import (
	"chiron/internal/cost"
	"chiron/internal/parallel"
	"chiron/internal/platform"
	"chiron/internal/render"
	"chiron/internal/workloads"
)

// Fig16MemoryThroughput reproduces Figure 16: per-workload memory
// consumption normalized to Chiron (with Chiron's absolute MB annotated)
// and the maximum single-node throughput in requests/second.
func Fig16MemoryThroughput(cfg Config) (*render.Table, error) {
	cfg.defaults()
	systems := platform.ResourceComparison(cfg.Const)
	t := &render.Table{
		ID:      "fig16",
		Title:   "Normalized memory (Chiron = 1.0) and max per-node throughput (req/s)",
		Columns: append([]string{"workload", "metric", "Chiron-abs"}, names(systems)...),
	}
	type memThr struct{ mem, thr float64 }
	type entryRes struct {
		name string
		by   map[string]memThr
	}
	results, err := mapEntries(suite(cfg), func(entry workloads.Entry) (entryRes, error) {
		set, slo, err := workloadBasics(entry.Workflow, cfg)
		if err != nil {
			return entryRes{}, err
		}
		vals, err := mapSystems(systems, func(sys *platform.System) (memThr, error) {
			d, err := deploy(sys, entry.Workflow, set, slo)
			if err != nil {
				return memThr{}, err
			}
			m, err := d.memoryMB(entry.Workflow, cfg)
			if err != nil {
				return memThr{}, err
			}
			r, err := d.throughput(entry.Workflow, cfg)
			if err != nil {
				return memThr{}, err
			}
			return memThr{mem: m, thr: r}, nil
		})
		if err != nil {
			return entryRes{}, err
		}
		by := map[string]memThr{}
		for i, sys := range systems {
			by[sys.Name] = vals[i]
		}
		return entryRes{name: entry.Name, by: by}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		ch := r.by["Chiron"]
		memRow := []string{r.name, "memory", render.F1(ch.mem) + "MB"}
		thrRow := []string{r.name, "throughput", render.F1(ch.thr) + "rps"}
		for _, sys := range systems {
			memRow = append(memRow, render.F2(r.by[sys.Name].mem/ch.mem))
			thrRow = append(thrRow, render.F2(r.by[sys.Name].thr/ch.thr))
		}
		t.AddRow(memRow...)
		t.AddRow(thrRow...)
	}
	t.AddNote("paper: OpenFaaS needs 10.8x-36.7x Chiron's memory; Chiron lifts throughput 12.2x/6.5x/4.1x vs Faastlane/-M/-P on average")
	return t, nil
}

// Fig17CPUAllocation reproduces Figure 17: CPUs reserved per workload,
// normalized to Chiron.
func Fig17CPUAllocation(cfg Config) (*render.Table, error) {
	cfg.defaults()
	systems := []*platform.System{
		platform.OpenFaaS(cfg.Const), platform.Faastlane(cfg.Const),
		platform.Chiron(cfg.Const), platform.ChironM(cfg.Const), platform.ChironP(cfg.Const),
	}
	t := &render.Table{
		ID:      "fig17",
		Title:   "Normalized CPU allocation (Chiron = 1.0)",
		Columns: append([]string{"workload", "Chiron-abs"}, names(systems)...),
	}
	type entryCPUs struct {
		name string
		cpus map[string]int
	}
	results, err := mapEntries(suite(cfg), func(entry workloads.Entry) (entryCPUs, error) {
		set, slo, err := workloadBasics(entry.Workflow, cfg)
		if err != nil {
			return entryCPUs{}, err
		}
		vals, err := mapSystems(systems, func(sys *platform.System) (int, error) {
			d, err := deploy(sys, entry.Workflow, set, slo)
			if err != nil {
				return 0, err
			}
			return d.plan.TotalCPUs(), nil
		})
		if err != nil {
			return entryCPUs{}, err
		}
		cpus := map[string]int{}
		for i, sys := range systems {
			cpus[sys.Name] = vals[i]
		}
		return entryCPUs{name: entry.Name, cpus: cpus}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		row := []string{r.name, render.F1(float64(r.cpus["Chiron"]))}
		for _, sys := range systems {
			row = append(row, render.F2(float64(r.cpus[sys.Name])/float64(r.cpus["Chiron"])))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: Chiron saves 75%%/66%%/63%% CPU vs Faastlane with threads/MPK/pool — 20-94%% overall")
	return t, nil
}

// Fig18NoGIL reproduces Figure 18: SLApp and FINRA-5 re-implemented on the
// GIL-free Java runtime — latency and throughput under the one-to-one
// model, the many-to-one model and Chiron.
func Fig18NoGIL(cfg Config) (*render.Table, error) {
	cfg.defaults()
	t := &render.Table{
		ID:      "fig18",
		Title:   "No-GIL (Java) latency and per-node throughput",
		Columns: []string{"workload", "system", "latency", "throughput-rps"},
	}
	apps := []workloads.Entry{
		{Name: "SLApp", Workflow: workloads.InJava(workloads.SLApp())},
		{Name: "FINRA-5", Workflow: workloads.InJava(workloads.FINRA(5))},
	}
	scenarios := []struct {
		label string
		sys   func() *platform.System
	}{
		{"One-to-One", func() *platform.System { return platform.OpenFaaS(cfg.Const) }},
		{"Many-to-One", func() *platform.System { return platform.Faastlane(cfg.Const) }},
		{"Chiron", func() *platform.System { return platform.Chiron(cfg.Const) }},
	}
	rowsPer, err := mapEntries(apps, func(entry workloads.Entry) ([][]string, error) {
		set, slo, err := workloadBasics(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		return parallel.Map(len(scenarios), func(i int) ([]string, error) {
			sc := scenarios[i]
			d, err := deploy(sc.sys(), entry.Workflow, set, slo)
			if err != nil {
				return nil, err
			}
			lat, err := d.meanLatency(entry.Workflow, cfg, 5)
			if err != nil {
				return nil, err
			}
			thr, err := d.throughput(entry.Workflow, cfg)
			if err != nil {
				return nil, err
			}
			return []string{entry.Name, sc.label, render.Ms(lat), render.F1(thr)}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowsPer {
		for _, row := range rows {
			t.AddRow(row...)
		}
	}
	t.AddNote("paper: even GIL-free, Chiron lifts throughput up to 4.9x (5x/3.1x vs one-to-one/many-to-one) via resource efficiency")
	return t, nil
}

// Fig19DollarCost reproduces Figure 19: dollars per one million workflow
// requests, normalized to Chiron.
func Fig19DollarCost(cfg Config) (*render.Table, error) {
	cfg.defaults()
	systems := append([]*platform.System{platform.ASF(cfg.Const)}, platform.ResourceComparison(cfg.Const)...)
	t := &render.Table{
		ID:      "fig19",
		Title:   "Cost per 1M requests normalized to Chiron (Chiron absolute in $)",
		Columns: append([]string{"workload", "Chiron-$"}, names(systems)...),
	}
	type entryCost struct {
		name    string
		dollars map[string]float64
	}
	results, err := mapEntries(suite(cfg), func(entry workloads.Entry) (entryCost, error) {
		set, slo, err := workloadBasics(entry.Workflow, cfg)
		if err != nil {
			return entryCost{}, err
		}
		vals, err := mapSystems(systems, func(sys *platform.System) (float64, error) {
			d, err := deploy(sys, entry.Workflow, set, slo)
			if err != nil {
				return 0, err
			}
			res, err := d.runOnce(entry.Workflow, cfg)
			if err != nil {
				return 0, err
			}
			b, err := cost.Request(cfg.Const, entry.Workflow, d.plan, res, sys.BillsPerTransition)
			if err != nil {
				return 0, err
			}
			return b.PerMillion(), nil
		})
		if err != nil {
			return entryCost{}, err
		}
		dollars := map[string]float64{}
		for i, sys := range systems {
			dollars[sys.Name] = vals[i]
		}
		return entryCost{name: entry.Name, dollars: dollars}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		row := []string{r.name, "$" + render.F2(r.dollars["Chiron"])}
		for _, sys := range systems {
			row = append(row, render.F1(r.dollars[sys.Name]/r.dollars["Chiron"]))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: ASF costs up to 272x Chiron (state transitions); Chiron saves 44.4-95.3%% vs Faastlane and 23.1-99.6%% overall")
	return t, nil
}
