package experiments

import (
	"chiron/internal/cost"
	"chiron/internal/platform"
	"chiron/internal/render"
	"chiron/internal/workloads"
)

// Fig16MemoryThroughput reproduces Figure 16: per-workload memory
// consumption normalized to Chiron (with Chiron's absolute MB annotated)
// and the maximum single-node throughput in requests/second.
func Fig16MemoryThroughput(cfg Config) (*render.Table, error) {
	cfg.defaults()
	systems := platform.ResourceComparison(cfg.Const)
	t := &render.Table{
		ID:      "fig16",
		Title:   "Normalized memory (Chiron = 1.0) and max per-node throughput (req/s)",
		Columns: append([]string{"workload", "metric", "Chiron-abs"}, names(systems)...),
	}
	for _, entry := range suite(cfg) {
		set, err := profileOf(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		slo, err := faastlaneSLO(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		mem := map[string]float64{}
		thr := map[string]float64{}
		for _, sys := range systems {
			d, err := deploy(sys, entry.Workflow, set, slo)
			if err != nil {
				return nil, err
			}
			m, err := d.memoryMB(entry.Workflow, cfg)
			if err != nil {
				return nil, err
			}
			r, err := d.throughput(entry.Workflow, cfg)
			if err != nil {
				return nil, err
			}
			mem[sys.Name], thr[sys.Name] = m, r
		}
		memRow := []string{entry.Name, "memory", render.F1(mem["Chiron"]) + "MB"}
		thrRow := []string{entry.Name, "throughput", render.F1(thr["Chiron"]) + "rps"}
		for _, sys := range systems {
			memRow = append(memRow, render.F2(mem[sys.Name]/mem["Chiron"]))
			thrRow = append(thrRow, render.F2(thr[sys.Name]/thr["Chiron"]))
		}
		t.AddRow(memRow...)
		t.AddRow(thrRow...)
	}
	t.AddNote("paper: OpenFaaS needs 10.8x-36.7x Chiron's memory; Chiron lifts throughput 12.2x/6.5x/4.1x vs Faastlane/-M/-P on average")
	return t, nil
}

// Fig17CPUAllocation reproduces Figure 17: CPUs reserved per workload,
// normalized to Chiron.
func Fig17CPUAllocation(cfg Config) (*render.Table, error) {
	cfg.defaults()
	systems := []*platform.System{
		platform.OpenFaaS(cfg.Const), platform.Faastlane(cfg.Const),
		platform.Chiron(cfg.Const), platform.ChironM(cfg.Const), platform.ChironP(cfg.Const),
	}
	t := &render.Table{
		ID:      "fig17",
		Title:   "Normalized CPU allocation (Chiron = 1.0)",
		Columns: append([]string{"workload", "Chiron-abs"}, names(systems)...),
	}
	for _, entry := range suite(cfg) {
		set, err := profileOf(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		slo, err := faastlaneSLO(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		cpus := map[string]int{}
		for _, sys := range systems {
			d, err := deploy(sys, entry.Workflow, set, slo)
			if err != nil {
				return nil, err
			}
			cpus[sys.Name] = d.plan.TotalCPUs()
		}
		row := []string{entry.Name, render.F1(float64(cpus["Chiron"]))}
		for _, sys := range systems {
			row = append(row, render.F2(float64(cpus[sys.Name])/float64(cpus["Chiron"])))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: Chiron saves 75%%/66%%/63%% CPU vs Faastlane with threads/MPK/pool — 20-94%% overall")
	return t, nil
}

// Fig18NoGIL reproduces Figure 18: SLApp and FINRA-5 re-implemented on the
// GIL-free Java runtime — latency and throughput under the one-to-one
// model, the many-to-one model and Chiron.
func Fig18NoGIL(cfg Config) (*render.Table, error) {
	cfg.defaults()
	t := &render.Table{
		ID:      "fig18",
		Title:   "No-GIL (Java) latency and per-node throughput",
		Columns: []string{"workload", "system", "latency", "throughput-rps"},
	}
	apps := []workloads.Entry{
		{Name: "SLApp", Workflow: workloads.InJava(workloads.SLApp())},
		{Name: "FINRA-5", Workflow: workloads.InJava(workloads.FINRA(5))},
	}
	for _, entry := range apps {
		set, err := profileOf(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		slo, err := faastlaneSLO(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		for _, sc := range []struct {
			label string
			sys   *platform.System
		}{
			{"One-to-One", platform.OpenFaaS(cfg.Const)},
			{"Many-to-One", platform.Faastlane(cfg.Const)},
			{"Chiron", platform.Chiron(cfg.Const)},
		} {
			d, err := deploy(sc.sys, entry.Workflow, set, slo)
			if err != nil {
				return nil, err
			}
			lat, err := d.meanLatency(entry.Workflow, cfg, 5)
			if err != nil {
				return nil, err
			}
			thr, err := d.throughput(entry.Workflow, cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(entry.Name, sc.label, render.Ms(lat), render.F1(thr))
		}
	}
	t.AddNote("paper: even GIL-free, Chiron lifts throughput up to 4.9x (5x/3.1x vs one-to-one/many-to-one) via resource efficiency")
	return t, nil
}

// Fig19DollarCost reproduces Figure 19: dollars per one million workflow
// requests, normalized to Chiron.
func Fig19DollarCost(cfg Config) (*render.Table, error) {
	cfg.defaults()
	systems := append([]*platform.System{platform.ASF(cfg.Const)}, platform.ResourceComparison(cfg.Const)...)
	t := &render.Table{
		ID:      "fig19",
		Title:   "Cost per 1M requests normalized to Chiron (Chiron absolute in $)",
		Columns: append([]string{"workload", "Chiron-$"}, names(systems)...),
	}
	for _, entry := range suite(cfg) {
		set, err := profileOf(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		slo, err := faastlaneSLO(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		dollars := map[string]float64{}
		for _, sys := range systems {
			d, err := deploy(sys, entry.Workflow, set, slo)
			if err != nil {
				return nil, err
			}
			res, err := d.runOnce(entry.Workflow, cfg)
			if err != nil {
				return nil, err
			}
			b, err := cost.Request(cfg.Const, entry.Workflow, d.plan, res, sys.BillsPerTransition)
			if err != nil {
				return nil, err
			}
			dollars[sys.Name] = b.PerMillion()
		}
		row := []string{entry.Name, "$" + render.F2(dollars["Chiron"])}
		for _, sys := range systems {
			row = append(row, render.F1(dollars[sys.Name]/dollars["Chiron"]))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: ASF costs up to 272x Chiron (state transitions); Chiron saves 44.4-95.3%% vs Faastlane and 23.1-99.6%% overall")
	return t, nil
}
