package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"chiron/internal/dag"
	"chiron/internal/engine"
	"chiron/internal/gnn"
	"chiron/internal/lstm"
	"chiron/internal/mlbase"
	"chiron/internal/parallel"
	"chiron/internal/pgp"
	"chiron/internal/platform"
	"chiron/internal/predict"
	"chiron/internal/profiler"
	"chiron/internal/render"
	"chiron/internal/rfr"
	"chiron/internal/workloads"
	"chiron/internal/wrap"
)

// Fig11PGPTrace reproduces Figure 11: PGP's exploration of FINRA-100
// under a latency SLO — the incremental process-count search, the
// predicted latency at each step, and the final wrap packing.
func Fig11PGPTrace(cfg Config) (*render.Table, error) {
	cfg.defaults()
	par := 100
	slo := 200 * time.Millisecond // the paper's Figure 11 example SLO
	if cfg.Quick {
		par = 25
		slo = 120 * time.Millisecond
	}
	w := workloads.FINRA(par)
	set, err := profileOf(w, cfg)
	if err != nil {
		return nil, err
	}
	res, err := pgp.Plan(w, set, pgp.Options{Const: cfg.Const, SLO: slo})
	if err != nil {
		return nil, err
	}
	t := &render.Table{
		ID:      "fig11",
		Title:   fmt.Sprintf("PGP scheduling FINRA-%d (SLO %s)", par, render.Ms(slo)),
		Columns: []string{"step", "processes", "predicted", "meets-slo"},
	}
	for i, step := range res.Trace {
		t.AddRow(fmt.Sprint(i+1), fmt.Sprint(step.N), render.Ms(step.Predicted), fmt.Sprint(step.Meets))
	}
	perWrap := map[int]map[int]bool{}
	for name, loc := range res.Plan.Loc {
		if w.Lookup(name) == nil || loc.Proc == 0 {
			continue
		}
		m := perWrap[loc.Sandbox]
		if m == nil {
			m = map[int]bool{}
			perWrap[loc.Sandbox] = m
		}
		m[loc.Proc] = true
	}
	t.AddNote("final plan: %d wraps, %d CPUs, predicted %s (meets SLO: %v)",
		res.Plan.NumWraps(), res.Plan.TotalCPUs(), render.Ms(res.Predicted), res.MeetsSLO)
	for _, sb := range sortedInts(perWrap) {
		t.AddNote("wrap %d packs %d processes", sb, len(perWrap[sb]))
	}
	t.AddNote("paper: 17 processes packed 5+4+4+4 into 4 wraps at 197ms under a 200ms SLO")
	return t, nil
}

func sortedInts(m map[int]map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ---- Figure 12: prediction error across models and execution modes ----

// candidatePlan is one enumerated wrap deployment with its engine ground
// truth.
type candidatePlan struct {
	plan  *wrap.Plan
	truth time.Duration
}

// enumerateWraps produces the candidate deployments of one workflow under
// one execution mode: all process counts with three wrap packings each
// (the paper "exploits all possible wraps").
func enumerateWraps(w *dag.Workflow, mode string, cfg Config) []*wrap.Plan {
	var out []*wrap.Plan
	maxPar := w.MaxParallelism()
	if cfg.Quick && maxPar > 4 {
		maxPar = 4
	}
	switch mode {
	case "pool":
		workers := w.MaxParallelism()
		for cpus := 1; cpus <= workers; cpus++ {
			p := &wrap.Plan{Workflow: w.Name, Loc: map[string]wrap.Loc{}}
			for i, fn := range w.Functions() {
				p.Loc[fn.Name] = wrap.Loc{Sandbox: 0, Proc: i + 1}
			}
			p.Sandboxes = []wrap.SandboxCfg{{CPUs: cpus, Pool: true, Workers: workers}}
			out = append(out, p)
		}
		return out
	}
	iso := wrap.IsoNone
	if mode == "mpk" {
		iso = wrap.IsoMPK
	}
	for n := 1; n <= maxPar; n++ {
		for _, split := range []int{1, 2} {
			if split > n {
				continue
			}
			p := buildHybridPlan(w, n, split, iso)
			if p != nil {
				out = append(out, p)
			}
		}
	}
	return out
}

// buildHybridPlan round-robins each parallel stage into n processes spread
// over `wraps` sandboxes; sequential functions ride sandbox 0's main
// process.
func buildHybridPlan(w *dag.Workflow, n, wraps int, iso wrap.IsolationKind) *wrap.Plan {
	p := &wrap.Plan{Workflow: w.Name, Loc: map[string]wrap.Loc{}}
	cpus := map[int]int{0: 1}
	maxSb := 1
	for _, st := range w.Stages {
		if len(st.Functions) == 1 {
			p.Loc[st.Functions[0].Name] = wrap.Loc{Sandbox: 0, Proc: 0}
			continue
		}
		k := n
		if k > len(st.Functions) {
			k = len(st.Functions)
		}
		kw := wraps
		if kw > k {
			kw = k
		}
		if kw > maxSb {
			maxSb = kw
		}
		// process g of stage -> sandbox g%kw, proc index 1+g/kw.
		for i, fn := range st.Functions {
			g := i % k
			sb := g % kw
			pr := 1 + g/kw
			p.Loc[fn.Name] = wrap.Loc{Sandbox: sb, Proc: pr}
			if pr > cpus[sb] {
				cpus[sb] = pr
			}
		}
	}
	for sb := 0; sb < maxSb; sb++ {
		c := cpus[sb]
		if c == 0 {
			c = 1
		}
		p.Sandboxes = append(p.Sandboxes, wrap.SandboxCfg{CPUs: c, Iso: iso})
	}
	if err := p.Validate(w); err != nil {
		return nil
	}
	return p
}

// groundTruth measures a candidate on the engine (mean of three seeds).
func groundTruth(w *dag.Workflow, p *wrap.Plan, cfg Config) (time.Duration, error) {
	env := platform.Chiron(cfg.Const).Env()
	env.Seed = cfg.Seed
	lats, err := engine.RunMany(w, p, env, 3)
	if err != nil {
		return 0, err
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return sum / time.Duration(len(lats)), nil
}

// Fig12PredictionError reproduces Figure 12: the Chiron Predictor against
// RFR, LSTM and GNN baselines across five applications and three
// execution modes (native thread, Intel MPK, process pool). Reported
// values are mean absolute percentage errors on held-out candidates.
func Fig12PredictionError(cfg Config) (*render.Table, error) {
	cfg.defaults()
	apps := []workloads.Entry{
		{Name: "SN", Workflow: workloads.SocialNetwork()},
		{Name: "MR", Workflow: workloads.MovieReviewing()},
		{Name: "FINRA-5", Workflow: workloads.FINRA(5)},
		{Name: "SLApp", Workflow: workloads.SLApp()},
		{Name: "SLApp-V", Workflow: workloads.SLAppV()},
	}
	modes := []string{"thread", "mpk", "pool"}
	if cfg.Quick {
		apps = apps[:2]
		modes = modes[:1]
	}
	t := &render.Table{
		ID:      "fig12",
		Title:   "Latency prediction error by model and execution mode (learned models trained leave-one-app-out)",
		Columns: []string{"app", "mode", "Chiron", "RFR", "LSTM", "GNN", "candidates"},
	}
	var chironAll, rfrAll, lstmAll, gnnAll float64
	rows := 0
	type appErrs struct {
		chiron, rfr, lstm, gnn float64
		candidates             int
	}
	for _, mode := range modes {
		// Gather every app's candidates for this mode first: the learned
		// baselines train on the *other* apps' deployments, which is what
		// exposes their core weakness — "lack of diversity in training
		// data, including various structures of workflows and function
		// workloads, can limit their applicability". Apps are independent
		// here, so build their candidate sets on the worker pool; the
		// leave-one-out training below needs all of them (a true barrier).
		data, err := mapEntries(apps, func(app workloads.Entry) (*appData, error) {
			set, err := profileOf(app.Workflow, cfg)
			if err != nil {
				return nil, err
			}
			return buildAppData(app.Workflow, set, mode, cfg)
		})
		if err != nil {
			return nil, err
		}
		// Each holdout trains its own models — independent again.
		errs, err := parallel.Map(len(apps), func(ai int) (appErrs, error) {
			d := data[ai]
			rfrErr, lstmErr, gnnErr, err := learnedErrors(data, ai, cfg)
			if err != nil {
				return appErrs{}, err
			}
			return appErrs{
				chiron: meanF(d.chironErrs), rfr: rfrErr, lstm: lstmErr, gnn: gnnErr,
				candidates: len(d.y),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		for ai, app := range apps {
			e := errs[ai]
			t.AddRow(app.Name, mode,
				render.Pct(e.chiron), render.Pct(e.rfr), render.Pct(e.lstm), render.Pct(e.gnn),
				fmt.Sprint(e.candidates))
			chironAll += e.chiron
			rfrAll += e.rfr
			lstmAll += e.lstm
			gnnAll += e.gnn
			rows++
		}
	}
	n := float64(rows)
	t.AddNote("means: Chiron %.1f%%, RFR %.1f%%, LSTM %.1f%%, GNN %.1f%%",
		chironAll/n*100, rfrAll/n*100, lstmAll/n*100, gnnAll/n*100)
	t.AddNote("paper: Chiron averages 6.7%% error (1.4-14.2%%), cutting 78.1%%/86.6%%/70.1%% vs RFR/LSTM/GNN")
	return t, nil
}

// appData is one app's candidate deployments with ground truth, Chiron
// predictor errors, and the three baselines' feature encodings.
type appData struct {
	y          []float64 // ground-truth latency, ms
	chironErrs []float64
	flat       [][]float64
	seqs       [][][]float64
	graphs     []*gnn.Graph
}

func buildAppData(w *dag.Workflow, set profiler.Set, mode string, cfg Config) (*appData, error) {
	pred := predict.New(cfg.Const, set)
	cands := enumerateWraps(w, mode, cfg)
	// Each candidate's ground truth is three engine runs — the expensive
	// part of Figure 12. Candidates are independent, so fan them out.
	type sample struct {
		y     float64
		chErr float64
		flat  []float64
		seq   [][]float64
		graph *gnn.Graph
	}
	samples, err := parallel.Map(len(cands), func(i int) (sample, error) {
		p := cands[i]
		truth, err := groundTruth(w, p, cfg)
		if err != nil {
			return sample{}, err
		}
		est, err := pred.Workflow(w, p)
		if err != nil {
			return sample{}, err
		}
		return sample{
			y:     truth.Seconds() * 1000,
			chErr: absFrac(est, truth),
			flat:  flatFeatures(w, set, p, cfg),
			seq:   seqFeatures(w, set, p, cfg),
			graph: graphFeatures(w, set, p, cfg),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	d := &appData{}
	for _, s := range samples {
		d.y = append(d.y, s.y)
		d.chironErrs = append(d.chironErrs, s.chErr)
		d.flat = append(d.flat, s.flat)
		d.seqs = append(d.seqs, s.seq)
		d.graphs = append(d.graphs, s.graph)
	}
	return d, nil
}

// learnedErrors trains RFR/LSTM/GNN on every app except data[holdout] and
// reports their MAPE on the held-out app's candidates.
func learnedErrors(data []*appData, holdout int, cfg Config) (rfrE, lstmE, gnnE float64, err error) {
	var flat [][]float64
	var seqs [][][]float64
	var graphs []*gnn.Graph
	var y []float64
	for ai, d := range data {
		if ai == holdout {
			continue
		}
		flat = append(flat, d.flat...)
		seqs = append(seqs, d.seqs...)
		graphs = append(graphs, d.graphs...)
		y = append(y, d.y...)
	}
	test := data[holdout]
	if len(y) < 4 || len(test.y) == 0 {
		return 1, 1, 1, nil
	}
	std := mlbase.FitStandardizer(flat)
	fx, e := rfr.Train(std.TransformAll(flat), y, rfr.Options{Seed: cfg.Seed})
	if e != nil {
		return 0, 0, 0, e
	}
	lm, e := lstm.Train(seqs, y, lstm.Options{Seed: cfg.Seed, Epochs: lstmEpochs(cfg)})
	if e != nil {
		return 0, 0, 0, e
	}
	gm, e := gnn.Train(graphs, y, gnn.Options{Seed: cfg.Seed, Epochs: gnnEpochs(cfg)})
	if e != nil {
		return 0, 0, 0, e
	}
	var rp, lp, gp []float64
	for i := range test.y {
		rp = append(rp, fx.Predict(std.Transform(test.flat[i])))
		lp = append(lp, lm.Predict(test.seqs[i]))
		gp = append(gp, gm.Predict(test.graphs[i]))
	}
	return mlbase.MAPE(rp, test.y), mlbase.MAPE(lp, test.y), mlbase.MAPE(gp, test.y), nil
}

func lstmEpochs(cfg Config) int {
	if cfg.Quick {
		return 10
	}
	return 60
}

func gnnEpochs(cfg Config) int {
	if cfg.Quick {
		return 15
	}
	return 80
}

// fnFeatures synthesizes the Gsight-style feature vector for one function:
// profile-derived timings plus deterministic microarchitectural nuisance
// features (MPKIs, utilizations) correlated with the behaviour.
func fnFeatures(p *profiler.Profile, loc wrap.Loc, cfg wrap.SandboxCfg, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	soloMS := p.Solo.Seconds() * 1000
	cpuMS := p.CPUTime().Seconds() * 1000
	blockMS := soloMS - cpuMS
	noise := func(base float64) float64 { return base * (0.9 + 0.2*rng.Float64()) }
	return []float64{
		soloMS, cpuMS, blockMS, float64(len(p.Periods)),
		p.MemMB, float64(p.OutputBytes) / 1024,
		noise(2 + cpuMS/3),             // context switches
		noise(0.4),                     // L1I MPKI
		noise(1.1),                     // L1D MPKI
		noise(0.8),                     // L2 MPKI
		noise(0.3),                     // L3 MPKI
		noise(0.2),                     // TLBD MPKI
		noise(0.1),                     // TLBI MPKI
		noise(1.5),                     // branch MPKI
		noise(2.5),                     // MLP
		noise(cpuMS / (soloMS + 0.01)), // CPU utilization
		noise(p.MemMB / 8),             // memory utilization
		float64(loc.Sandbox), float64(loc.Proc), float64(cfg.CPUs), boolF(cfg.Pool),
	}
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// flatFeatures aggregates per-function features to a fixed-width vector
// for the RFR (sums, means, maxima plus deployment shape).
func flatFeatures(w *dag.Workflow, set profiler.Set, plan *wrap.Plan, cfg Config) []float64 {
	fns := w.Functions()
	width := 21
	sum := make([]float64, width)
	maxv := make([]float64, width)
	for i, fn := range fns {
		f := fnFeatures(set[fn.Name], plan.Loc[fn.Name], plan.Sandboxes[plan.Loc[fn.Name].Sandbox], cfg.Seed+int64(i))
		for j, v := range f {
			sum[j] += v
			if v > maxv[j] {
				maxv[j] = v
			}
		}
	}
	out := append(sum, maxv...)
	out = append(out,
		float64(len(fns)), float64(plan.NumWraps()), float64(plan.TotalCPUs()),
		float64(w.MaxParallelism()), float64(len(w.Stages)))
	return out
}

// seqFeatures orders per-function features by stage for the LSTM.
func seqFeatures(w *dag.Workflow, set profiler.Set, plan *wrap.Plan, cfg Config) [][]float64 {
	var out [][]float64
	for i, fn := range w.Functions() {
		out = append(out, fnFeatures(set[fn.Name], plan.Loc[fn.Name], plan.Sandboxes[plan.Loc[fn.Name].Sandbox], cfg.Seed+int64(i)))
	}
	return out
}

// graphFeatures builds the GNN instance: nodes are functions, edges link
// same-process and same-wrap co-residents and consecutive stages.
func graphFeatures(w *dag.Workflow, set profiler.Set, plan *wrap.Plan, cfg Config) *gnn.Graph {
	fns := w.Functions()
	idx := map[string]int{}
	g := &gnn.Graph{}
	for i, fn := range fns {
		idx[fn.Name] = i
		g.X = append(g.X, fnFeatures(set[fn.Name], plan.Loc[fn.Name], plan.Sandboxes[plan.Loc[fn.Name].Sandbox], cfg.Seed+int64(i)))
	}
	for i, a := range fns {
		for j := i + 1; j < len(fns); j++ {
			b := fns[j]
			la, lb := plan.Loc[a.Name], plan.Loc[b.Name]
			if la.Sandbox == lb.Sandbox {
				g.Edges = append(g.Edges, [2]int{i, j})
			}
		}
	}
	for si := 0; si < len(w.Stages)-1; si++ {
		for _, a := range w.Stages[si].Functions {
			for _, b := range w.Stages[si+1].Functions {
				g.Edges = append(g.Edges, [2]int{idx[a.Name], idx[b.Name]})
			}
		}
	}
	return g
}

func absFrac(est, truth time.Duration) float64 {
	if truth == 0 {
		return 0
	}
	d := float64(est-truth) / float64(truth)
	if d < 0 {
		d = -d
	}
	return d
}

func meanF(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
