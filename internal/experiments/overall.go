package experiments

import (
	"fmt"
	"time"

	"chiron/internal/engine"
	"chiron/internal/metrics"
	"chiron/internal/platform"
	"chiron/internal/render"
	"chiron/internal/workloads"
)

// Fig13OverallLatency reproduces Figure 13: end-to-end workflow latency of
// the nine systems across all eight workloads, normalized to Chiron (with
// Chiron's absolute latency annotated, as in the paper).
func Fig13OverallLatency(cfg Config) (*render.Table, error) {
	cfg.defaults()
	systems := platform.All(cfg.Const)
	t := &render.Table{
		ID:      "fig13",
		Title:   "Normalized end-to-end latency (Chiron = 1.0)",
		Columns: append([]string{"workload", "Chiron-ms"}, names(systems)...),
	}
	// Each workload is independent: profile, derive the SLO, then deploy
	// and measure every system. Fan out both levels on the worker pool and
	// assemble rows sequentially from the ordered results.
	type entryLat struct {
		name string
		lat  map[string]time.Duration
	}
	results, err := mapEntries(suite(cfg), func(entry workloads.Entry) (entryLat, error) {
		set, slo, err := workloadBasics(entry.Workflow, cfg)
		if err != nil {
			return entryLat{}, err
		}
		lats, err := mapSystems(systems, func(sys *platform.System) (time.Duration, error) {
			d, err := deploy(sys, entry.Workflow, set, slo)
			if err != nil {
				return 0, err
			}
			return d.meanLatency(entry.Workflow, cfg, 10)
		})
		if err != nil {
			return entryLat{}, err
		}
		lat := map[string]time.Duration{}
		for i, sys := range systems {
			lat[sys.Name] = lats[i]
		}
		return entryLat{name: entry.Name, lat: lat}, nil
	})
	if err != nil {
		return nil, err
	}
	var sums = map[string]float64{}
	for _, r := range results {
		base := float64(r.lat["Chiron"])
		row := []string{r.name, render.Ms(r.lat["Chiron"])}
		for _, sys := range systems {
			norm := float64(r.lat[sys.Name]) / base
			row = append(row, render.F2(norm))
			sums[sys.Name] += norm
		}
		t.AddRow(row...)
	}
	avg := []string{"geo-mean-ish(avg)", ""}
	for _, sys := range systems {
		avg = append(avg, render.F2(sums[sys.Name]/float64(len(results))))
	}
	t.AddRow(avg...)
	t.AddNote("paper: Chiron cuts latency 89.9%%/37.5%%/32.1%%/25.1%% on average vs ASF/OpenFaaS/SAND/Faastlane")
	return t, nil
}

// Fig14SLOViolations reproduces Figure 14: the fraction of requests that
// miss the workload SLO under Faastlane vs Chiron.
func Fig14SLOViolations(cfg Config) (*render.Table, error) {
	cfg.defaults()
	t := &render.Table{
		ID:      "fig14",
		Title:   "SLO violation rate (SLO = Faastlane mean + 10ms)",
		Columns: []string{"workload", "slo", "Faastlane", "Chiron"},
	}
	type entryRates struct {
		name   string
		slo    time.Duration
		fl, ch float64
	}
	results, err := mapEntries(suite(cfg), func(entry workloads.Entry) (entryRates, error) {
		set, slo, err := workloadBasics(entry.Workflow, cfg)
		if err != nil {
			return entryRates{}, err
		}
		systems := []*platform.System{platform.Faastlane(cfg.Const), platform.Chiron(cfg.Const)}
		rates, err := mapSystems(systems, func(sys *platform.System) (float64, error) {
			d, err := deploy(sys, entry.Workflow, set, slo)
			if err != nil {
				return 0, err
			}
			env := d.sys.Env()
			env.Seed = cfg.Seed + 7
			lats, err := engine.RunMany(entry.Workflow, d.plan, env, cfg.Requests)
			if err != nil {
				return 0, err
			}
			return metrics.ViolationRate(lats, slo), nil
		})
		if err != nil {
			return entryRates{}, err
		}
		return entryRates{name: entry.Name, slo: slo, fl: rates[0], ch: rates[1]}, nil
	})
	if err != nil {
		return nil, err
	}
	var flSum, chSum float64
	for _, r := range results {
		t.AddRow(r.name, render.Ms(r.slo), render.Pct(r.fl), render.Pct(r.ch))
		flSum += r.fl
		chSum += r.ch
	}
	rows := len(results)
	t.AddNote("means: Faastlane %.1f%%, Chiron %.1f%%", flSum/float64(rows)*100, chSum/float64(rows)*100)
	t.AddNote("paper: Chiron averages 1.3%% violations, far below Faastlane")
	return t, nil
}

// Fig15LatencyCDF reproduces Figure 15: the per-function completion-time
// CDF for FINRA-50 under seven systems, read out at fixed percentiles.
func Fig15LatencyCDF(cfg Config) (*render.Table, error) {
	cfg.defaults()
	par := 50
	if cfg.Quick {
		par = 10
	}
	w := workloads.FINRA(par)
	set, err := profileOf(w, cfg)
	if err != nil {
		return nil, err
	}
	slo, err := faastlaneSLO(w, cfg)
	if err != nil {
		return nil, err
	}
	systems := []*platform.System{
		platform.OpenFaaS(cfg.Const),
		platform.Faastlane(cfg.Const), platform.Chiron(cfg.Const),
		platform.FaastlaneM(cfg.Const), platform.ChironM(cfg.Const),
		platform.FaastlaneP(cfg.Const), platform.ChironP(cfg.Const),
	}
	t := &render.Table{
		ID:      "fig15",
		Title:   fmt.Sprintf("FINRA-%d per-function completion time percentiles", par),
		Columns: []string{"system", "p25", "p50", "p75", "p90", "p99"},
	}
	rows, err := mapSystems(systems, func(sys *platform.System) ([]string, error) {
		d, err := deploy(sys, w, set, slo)
		if err != nil {
			return nil, err
		}
		env := sys.Env()
		env.Seed = cfg.Seed
		env.Fidelity = true
		res, err := engine.Run(w, d.plan, env)
		if err != nil {
			return nil, err
		}
		var finishes []time.Duration
		for _, ft := range res.Functions {
			if ft.Stage == 1 {
				finishes = append(finishes, ft.Finish)
			}
		}
		return []string{sys.Name,
			render.Ms(metrics.Percentile(finishes, 0.25)),
			render.Ms(metrics.Percentile(finishes, 0.50)),
			render.Ms(metrics.Percentile(finishes, 0.75)),
			render.Ms(metrics.Percentile(finishes, 0.90)),
			render.Ms(metrics.Percentile(finishes, 0.99))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("paper: pool systems start fastest but long-tail under skew; Chiron variants start and finish fastest overall (up to 32.5%% faster)")
	return t, nil
}
