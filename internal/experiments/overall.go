package experiments

import (
	"fmt"
	"time"

	"chiron/internal/engine"
	"chiron/internal/metrics"
	"chiron/internal/platform"
	"chiron/internal/render"
	"chiron/internal/workloads"
)

// Fig13OverallLatency reproduces Figure 13: end-to-end workflow latency of
// the nine systems across all eight workloads, normalized to Chiron (with
// Chiron's absolute latency annotated, as in the paper).
func Fig13OverallLatency(cfg Config) (*render.Table, error) {
	cfg.defaults()
	systems := platform.All(cfg.Const)
	t := &render.Table{
		ID:      "fig13",
		Title:   "Normalized end-to-end latency (Chiron = 1.0)",
		Columns: append([]string{"workload", "Chiron-ms"}, names(systems)...),
	}
	var sums = map[string]float64{}
	count := 0
	for _, entry := range suite(cfg) {
		set, err := profileOf(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		slo, err := faastlaneSLO(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		lat := map[string]time.Duration{}
		for _, sys := range systems {
			d, err := deploy(sys, entry.Workflow, set, slo)
			if err != nil {
				return nil, err
			}
			l, err := d.meanLatency(entry.Workflow, cfg, 10)
			if err != nil {
				return nil, err
			}
			lat[sys.Name] = l
		}
		base := float64(lat["Chiron"])
		row := []string{entry.Name, render.Ms(lat["Chiron"])}
		for _, sys := range systems {
			norm := float64(lat[sys.Name]) / base
			row = append(row, render.F2(norm))
			sums[sys.Name] += norm
			_ = norm
		}
		count++
		t.AddRow(row...)
	}
	avg := []string{"geo-mean-ish(avg)", ""}
	for _, sys := range systems {
		avg = append(avg, render.F2(sums[sys.Name]/float64(count)))
	}
	t.AddRow(avg...)
	t.AddNote("paper: Chiron cuts latency 89.9%%/37.5%%/32.1%%/25.1%% on average vs ASF/OpenFaaS/SAND/Faastlane")
	return t, nil
}

// Fig14SLOViolations reproduces Figure 14: the fraction of requests that
// miss the workload SLO under Faastlane vs Chiron.
func Fig14SLOViolations(cfg Config) (*render.Table, error) {
	cfg.defaults()
	t := &render.Table{
		ID:      "fig14",
		Title:   "SLO violation rate (SLO = Faastlane mean + 10ms)",
		Columns: []string{"workload", "slo", "Faastlane", "Chiron"},
	}
	var flSum, chSum float64
	rows := 0
	for _, entry := range suite(cfg) {
		set, err := profileOf(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		slo, err := faastlaneSLO(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		rates := map[string]float64{}
		for _, sys := range []*platform.System{platform.Faastlane(cfg.Const), platform.Chiron(cfg.Const)} {
			d, err := deploy(sys, entry.Workflow, set, slo)
			if err != nil {
				return nil, err
			}
			env := d.sys.Env()
			env.Seed = cfg.Seed + 7
			lats, err := engine.RunMany(entry.Workflow, d.plan, env, cfg.Requests)
			if err != nil {
				return nil, err
			}
			rates[sys.Name] = metrics.ViolationRate(lats, slo)
		}
		t.AddRow(entry.Name, render.Ms(slo), render.Pct(rates["Faastlane"]), render.Pct(rates["Chiron"]))
		flSum += rates["Faastlane"]
		chSum += rates["Chiron"]
		rows++
	}
	t.AddNote("means: Faastlane %.1f%%, Chiron %.1f%%", flSum/float64(rows)*100, chSum/float64(rows)*100)
	t.AddNote("paper: Chiron averages 1.3%% violations, far below Faastlane")
	return t, nil
}

// Fig15LatencyCDF reproduces Figure 15: the per-function completion-time
// CDF for FINRA-50 under seven systems, read out at fixed percentiles.
func Fig15LatencyCDF(cfg Config) (*render.Table, error) {
	cfg.defaults()
	par := 50
	if cfg.Quick {
		par = 10
	}
	w := workloads.FINRA(par)
	set, err := profileOf(w, cfg)
	if err != nil {
		return nil, err
	}
	slo, err := faastlaneSLO(w, cfg)
	if err != nil {
		return nil, err
	}
	systems := []*platform.System{
		platform.OpenFaaS(cfg.Const),
		platform.Faastlane(cfg.Const), platform.Chiron(cfg.Const),
		platform.FaastlaneM(cfg.Const), platform.ChironM(cfg.Const),
		platform.FaastlaneP(cfg.Const), platform.ChironP(cfg.Const),
	}
	t := &render.Table{
		ID:      "fig15",
		Title:   fmt.Sprintf("FINRA-%d per-function completion time percentiles", par),
		Columns: []string{"system", "p25", "p50", "p75", "p90", "p99"},
	}
	for _, sys := range systems {
		d, err := deploy(sys, w, set, slo)
		if err != nil {
			return nil, err
		}
		env := sys.Env()
		env.Seed = cfg.Seed
		env.Fidelity = true
		res, err := engine.Run(w, d.plan, env)
		if err != nil {
			return nil, err
		}
		var finishes []time.Duration
		for _, ft := range res.Functions {
			if ft.Stage == 1 {
				finishes = append(finishes, ft.Finish)
			}
		}
		t.AddRow(sys.Name,
			render.Ms(metrics.Percentile(finishes, 0.25)),
			render.Ms(metrics.Percentile(finishes, 0.50)),
			render.Ms(metrics.Percentile(finishes, 0.75)),
			render.Ms(metrics.Percentile(finishes, 0.90)),
			render.Ms(metrics.Percentile(finishes, 0.99)))
	}
	t.AddNote("paper: pool systems start fastest but long-tail under skew; Chiron variants start and finish fastest overall (up to 32.5%% faster)")
	return t, nil
}
