package experiments

import (
	"fmt"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/engine"
	"chiron/internal/loadgen"
	"chiron/internal/metrics"
	"chiron/internal/node"
	"chiron/internal/parallel"
	"chiron/internal/pgp"
	"chiron/internal/platform"
	"chiron/internal/render"
	"chiron/internal/workloads"
	"chiron/internal/wrap"
)

// Ablations lists the design-choice ablations (beyond the paper's own
// figures) in recommended order.
var Ablations = []string{"abl-wraps", "abl-mainthread", "abl-kl", "abl-safety", "abl-coldstart", "abl-load"}

func init() {
	Registry["abl-wraps"] = AblWrapCount
	Registry["abl-mainthread"] = AblMainThread
	Registry["abl-kl"] = AblKernighanLin
	Registry["abl-safety"] = AblSafetyMargin
	Registry["abl-coldstart"] = AblColdStart
	Registry["abl-load"] = AblLoad
}

// AblWrapCount sweeps the number of wraps for a fixed process count on
// FINRA: the block-time-vs-network trade at the heart of the m-to-n model
// (Figure 1). One wrap accumulates fork block time; too many wraps pay
// invocation and RPC per sandbox; the minimum sits in between, near the
// capacity bound floor(T_RPC/T_Block).
func AblWrapCount(cfg Config) (*render.Table, error) {
	cfg.defaults()
	par := 48
	procs := 16
	if cfg.Quick {
		par, procs = 16, 8
	}
	w := workloads.FINRA(par)
	t := &render.Table{
		ID:      "abl-wraps",
		Title:   fmt.Sprintf("FINRA-%d with %d processes: latency vs wrap count", par, procs),
		Columns: []string{"wraps", "procs-per-wrap", "e2e", "vs-best"},
	}
	env := platform.Chiron(cfg.Const).Env()
	env.Seed = cfg.Seed
	type row struct {
		wraps int
		lat   time.Duration
	}
	var counts []int
	for wraps := 1; wraps <= procs; wraps *= 2 {
		counts = append(counts, wraps)
	}
	all, err := parallel.Map(len(counts), func(i int) (row, error) {
		wraps := counts[i]
		p := buildHybridPlan(w, procs, wraps, wrap.IsoNone)
		if p == nil {
			return row{}, nil
		}
		lats, err := engine.RunMany(w, p, env, 5)
		if err != nil {
			return row{}, err
		}
		return row{wraps, metrics.Mean(lats)}, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []row
	for _, r := range all {
		if r.wraps != 0 {
			rows = append(rows, r)
		}
	}
	best := rows[0].lat
	for _, r := range rows {
		if r.lat < best {
			best = r.lat
		}
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.wraps), fmt.Sprint((procs+r.wraps-1)/r.wraps),
			render.Ms(r.lat), render.F2(float64(r.lat)/float64(best)))
	}
	t.AddNote("expected U-shape: one wrap pays fork block time, many wraps pay T_INV/T_RPC; the sweet spot sits near capacity %d", cfg.Const.MaxProcsPerWrap(procs))
	return t, nil
}

// AblMainThread ablates the resident-main execution path: of-watchdog
// semantics (functions placed on the wrap's long-lived process, thread
// clones only) against classic-watchdog semantics (every request forks,
// Section 5's template choice).
func AblMainThread(cfg Config) (*render.Table, error) {
	cfg.defaults()
	t := &render.Table{
		ID:      "abl-mainthread",
		Title:   "Resident-main (of-watchdog) vs fork-per-request (classic-watchdog)",
		Columns: []string{"workload", "of-watchdog", "classic-watchdog", "penalty"},
	}
	rows, err := mapEntries(suite(cfg), func(entry workloads.Entry) ([]string, error) {
		set, slo, err := workloadBasics(entry.Workflow, cfg)
		if err != nil {
			return nil, err
		}
		sys := platform.Chiron(cfg.Const)
		plan, err := sys.Plan(entry.Workflow, set, slo)
		if err != nil {
			return nil, err
		}
		env := sys.Env()
		env.Seed = cfg.Seed
		of, err := engine.RunMany(entry.Workflow, plan, env, 5)
		if err != nil {
			return nil, err
		}
		classic := clonePlan(plan)
		for i := range classic.Sandboxes {
			classic.Sandboxes[i].ForkPerRequest = true
		}
		cl, err := engine.RunMany(entry.Workflow, classic, env, 5)
		if err != nil {
			return nil, err
		}
		mOf, mCl := metrics.Mean(of), metrics.Mean(cl)
		return []string{entry.Name, render.Ms(mOf), render.Ms(mCl),
			render.Pct(float64(mCl-mOf) / float64(mOf))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("the of-watchdog template avoids one fork (7.5ms startup) per main-process group per stage; Section 5 chose it 'for a better performance efficiency'")
	return t, nil
}

func clonePlan(p *wrap.Plan) *wrap.Plan {
	c := &wrap.Plan{Workflow: p.Workflow, Loc: make(map[string]wrap.Loc, len(p.Loc))}
	for k, v := range p.Loc {
		c.Loc[k] = v
	}
	c.Sandboxes = append([]wrap.SandboxCfg(nil), p.Sandboxes...)
	return c
}

// AblKernighanLin ablates Algorithm 2's swapping pass on a skewed stage:
// round-robin alone vs KL-refined partitions.
func AblKernighanLin(cfg Config) (*render.Table, error) {
	cfg.defaults()
	// A deliberately skewed stage: long and short functions interleaved
	// so the stride-layout round-robin produces imbalanced groups.
	var fns []*behavior.Spec
	for i := 0; i < 12; i++ {
		d := 2 * time.Millisecond
		if i%4 == 0 {
			d = 18 * time.Millisecond
		}
		fns = append(fns, &behavior.Spec{
			Name: fmt.Sprintf("task-%02d", i), Runtime: behavior.Python,
			Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: d}},
			MemMB:    1,
		})
	}
	w, err := dag.FromStages("skewed", 0, fns)
	if err != nil {
		return nil, err
	}
	set, err := profileOf(w, cfg)
	if err != nil {
		return nil, err
	}
	t := &render.Table{
		ID:      "abl-kl",
		Title:   "Kernighan-Lin refinement on a skewed 12-function stage",
		Columns: []string{"slo", "variant", "procs", "predicted", "measured"},
	}
	env := platform.Chiron(cfg.Const).Env()
	env.Seed = cfg.Seed
	type combo struct {
		slo     time.Duration
		label   string
		disable bool
	}
	var combos []combo
	for _, slo := range []time.Duration{45 * time.Millisecond, 35 * time.Millisecond} {
		combos = append(combos,
			combo{slo, "round-robin", true},
			combo{slo, "kl-refined", false})
	}
	rows, err := parallel.Map(len(combos), func(i int) ([]string, error) {
		c := combos[i]
		res, err := pgp.Plan(w, set, pgp.Options{Const: cfg.Const, SLO: c.slo, DisableKL: c.disable})
		if err != nil {
			return nil, err
		}
		lats, err := engine.RunMany(w, res.Plan, env, 5)
		if err != nil {
			return nil, err
		}
		return []string{render.Ms(c.slo), c.label,
			fmt.Sprint(res.ProcsPerStage[0]), render.Ms(res.Predicted), render.Ms(metrics.Mean(lats))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("KL balances long/short functions across processes, so the same SLO is met with fewer processes (or lower latency at equal processes)")
	return t, nil
}

// AblSafetyMargin sweeps the Predictor's safety factor: too little risks
// SLO violations, too much wastes CPUs (Section 6.2's misprediction
// guard).
func AblSafetyMargin(cfg Config) (*render.Table, error) {
	cfg.defaults()
	par := 50
	if cfg.Quick {
		par = 20
	}
	w := workloads.FINRA(par)
	set, err := profileOf(w, cfg)
	if err != nil {
		return nil, err
	}
	slo, err := faastlaneSLO(w, cfg)
	if err != nil {
		return nil, err
	}
	// Use a target tight enough that the margin actually binds: 3/4 of
	// the Faastlane-derived SLO sits near a process-count boundary.
	slo = slo * 3 / 4
	t := &render.Table{
		ID:      "abl-safety",
		Title:   fmt.Sprintf("Safety-margin sweep on FINRA-%d (SLO %s)", par, render.Ms(slo)),
		Columns: []string{"safety", "cpus", "wraps", "mean", "violations"},
	}
	env := platform.Chiron(cfg.Const).Env()
	margins := []float64{1.0, 1.05, 1.1, 1.2, 1.35}
	rows, err := parallel.Map(len(margins), func(i int) ([]string, error) {
		safety := margins[i]
		res, err := pgp.Plan(w, set, pgp.Options{Const: cfg.Const, SLO: slo, Safety: safety})
		if err != nil {
			return nil, err
		}
		e := env
		e.Seed = cfg.Seed + 31
		lats, err := engine.RunMany(w, res.Plan, e, cfg.Requests)
		if err != nil {
			return nil, err
		}
		return []string{render.F2(safety), fmt.Sprint(res.Plan.TotalCPUs()), fmt.Sprint(res.Plan.NumWraps()),
			render.Ms(metrics.Mean(lats)), render.Pct(metrics.ViolationRate(lats, slo))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("the paper's Chiron 'adopts larger parameters to estimate the latency, avoiding performance violation resulting from mispredictions' — the sweep shows the cost of that insurance")
	return t, nil
}

// AblColdStart charges container cold starts (Section 1's 167ms) and
// compares deployment models: fewer sandboxes = fewer cold starts, an
// unstated bonus of the m-to-n model.
func AblColdStart(cfg Config) (*render.Table, error) {
	cfg.defaults()
	par := 25
	w := workloads.FINRA(par)
	set, err := profileOf(w, cfg)
	if err != nil {
		return nil, err
	}
	slo, err := faastlaneSLO(w, cfg)
	if err != nil {
		return nil, err
	}
	t := &render.Table{
		ID:      "abl-coldstart",
		Title:   fmt.Sprintf("Cold-start impact on FINRA-%d by deployment model", par),
		Columns: []string{"system", "sandboxes", "warm", "cold", "cold-penalty"},
	}
	systems := []*platform.System{
		platform.OpenFaaS(cfg.Const), platform.Faastlane(cfg.Const), platform.Chiron(cfg.Const),
	}
	rows, err := mapSystems(systems, func(sys *platform.System) ([]string, error) {
		plan, err := sys.Plan(w, set, slo)
		if err != nil {
			return nil, err
		}
		env := sys.Env()
		env.Seed = cfg.Seed
		warm, err := engine.Run(w, plan, env)
		if err != nil {
			return nil, err
		}
		env.ColdStart = true
		cold, err := engine.Run(w, plan, env)
		if err != nil {
			return nil, err
		}
		return []string{sys.Name, fmt.Sprint(plan.NumWraps()),
			render.Ms(warm.E2E), render.Ms(cold.E2E),
			render.Pct(float64(cold.E2E-warm.E2E) / float64(warm.E2E))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("one-to-one pays a 167ms boot per function sandbox (pipelined but on the critical path); the m-to-n model boots n << m sandboxes")
	return t, nil
}

// AblLoad measures sustainable throughput under queueing: open-loop
// Poisson arrivals against each system's instance fleet on one worker
// node, binary-searching the highest rate whose p95 stays within the SLO.
// Figure 16's instances/latency metric is the zero-queueing bound; this
// shows how much of it survives real arrival bursts.
func AblLoad(cfg Config) (*render.Table, error) {
	cfg.defaults()
	par := 50
	if cfg.Quick {
		par = 20
	}
	w := workloads.FINRA(par)
	set, err := profileOf(w, cfg)
	if err != nil {
		return nil, err
	}
	slo, err := faastlaneSLO(w, cfg)
	if err != nil {
		return nil, err
	}
	t := &render.Table{
		ID:      "abl-load",
		Title:   fmt.Sprintf("Sustainable load on one worker node, FINRA-%d (p95 <= %s)", par, render.Ms(slo)),
		Columns: []string{"system", "instances", "zero-queue-rps", "sustainable-rps", "utilization"},
	}
	worker := node.FromConstants(cfg.Const)
	systems := []*platform.System{
		platform.OpenFaaS(cfg.Const), platform.Faastlane(cfg.Const),
		platform.Chiron(cfg.Const), platform.ChironP(cfg.Const),
	}
	rows, err := mapSystems(systems, func(sys *platform.System) ([]string, error) {
		plan, err := sys.Plan(w, set, slo)
		if err != nil {
			return nil, err
		}
		env := sys.Env()
		env.Seed = cfg.Seed
		samples, err := engine.RunMany(w, plan, env, 20)
		if err != nil {
			return nil, err
		}
		ledgers, err := plan.Ledgers(w)
		if err != nil {
			return nil, err
		}
		instances := worker.MaxInstances(node.DemandOf(cfg.Const, ledgers))
		if instances < 1 {
			instances = 1
		}
		srv := loadgen.Server{Instances: instances, ServiceTimes: samples}
		sustainable, err := loadgen.MaxRate(srv, slo, loadgen.Options{Seed: cfg.Seed, Duration: 20 * time.Second})
		if err != nil {
			return nil, err
		}
		util := 0.0
		if cap := srv.Capacity(); cap > 0 {
			util = sustainable / cap
		}
		return []string{sys.Name, fmt.Sprint(instances),
			render.F1(srv.Capacity()), render.F1(sustainable), render.Pct(util)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("queueing claws back part of the zero-queue bound for everyone, but the m-to-n model's instance count keeps it far ahead under bursty arrivals")
	return t, nil
}
