package cost

import (
	"testing"
	"time"

	"chiron/internal/engine"
	"chiron/internal/model"
	"chiron/internal/platform"
	"chiron/internal/profiler"
	"chiron/internal/workloads"
)

func TestOneToOneCostDominatedByTransitions(t *testing.T) {
	c := model.Default()
	w := workloads.FINRA(5)
	asf := platform.ASF(c)
	plan, err := asf.Plan(w, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(w, plan, asf.Env())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Request(c, w, plan, res, asf.BillsPerTransition)
	if err != nil {
		t.Fatal(err)
	}
	if b.Transitions <= 0 {
		t.Fatal("ASF must charge transitions")
	}
	if b.Transitions < b.CPU+b.Memory {
		t.Fatalf("transitions (%g) should dominate compute (%g) for millisecond functions",
			b.Transitions, b.CPU+b.Memory)
	}
	// 6 functions + start/end at $25/M.
	want := float64(w.NumFunctions()+2) * c.PricePerTransition
	if b.Transitions != want {
		t.Fatalf("transitions = %g, want %g", b.Transitions, want)
	}
}

func TestChironCheaperThanFaastlane(t *testing.T) {
	c := model.Default()
	w := workloads.FINRA(50)
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	price := func(sys *platform.System, slo time.Duration) float64 {
		plan, err := sys.Plan(w, set, slo)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Run(w, plan, sys.Env())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Request(c, w, plan, res, sys.BillsPerTransition)
		if err != nil {
			t.Fatal(err)
		}
		return b.Total()
	}
	fl := price(platform.Faastlane(c), 0)
	ch := price(platform.Chiron(c), 400*time.Millisecond)
	if ch >= fl {
		t.Fatalf("Chiron ($%g) must undercut Faastlane ($%g)", ch, fl)
	}
	// Figure 19: 44.4%-95.3% cheaper.
	saving := 1 - ch/fl
	if saving < 0.3 {
		t.Fatalf("saving %.0f%%, want the paper's substantial reduction", saving*100)
	}
}

func TestPerMillionScaling(t *testing.T) {
	b := Breakdown{CPU: 1e-6, Memory: 2e-6, Transitions: 3e-6}
	if got := b.PerMillion(); got < 5.9999 || got > 6.0001 {
		t.Fatalf("PerMillion = %g, want 6", got)
	}
}

func TestSharedSandboxBilledForWholeRequest(t *testing.T) {
	c := model.Default()
	w := workloads.SLApp()
	sand := platform.SAND(c)
	plan, err := sand.Plan(w, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(w, plan, sand.Env())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Request(c, w, plan, res, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.Transitions != 0 {
		t.Fatal("open-source platforms charge no transitions")
	}
	if b.CPU <= 0 || b.Memory <= 0 {
		t.Fatalf("breakdown = %+v", b)
	}
}
