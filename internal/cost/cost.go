// Package cost prices workflow requests in dollars (Figure 19).
//
// Following the paper, CPU is billed per GHz-second and memory per
// GB-second (Google Cloud Functions rates), every sandbox's reservation is
// billed for the request's full duration, and commercial one-to-one
// orchestrators additionally charge every state transition (AWS Step
// Functions).
package cost

import (
	"chiron/internal/dag"
	"chiron/internal/engine"
	"chiron/internal/model"
	"chiron/internal/wrap"
)

// Breakdown itemizes one request's cost.
type Breakdown struct {
	CPU         float64 // GHz-second charges
	Memory      float64 // GB-second charges
	Transitions float64 // orchestrator state-transition charges
}

// Total returns the request's full price.
func (b Breakdown) Total() float64 { return b.CPU + b.Memory + b.Transitions }

// PerMillion scales to the paper's "per 1 million requests" unit.
func (b Breakdown) PerMillion() float64 { return b.Total() * 1e6 }

// Request prices one executed request. Every sandbox's reservation is
// billed for the request's full end-to-end duration — the paper's cost
// model charges allocated resources, which is exactly why one-to-one
// deployments cost 57x-272x Chiron in Figure 19: a 50-function fan-out
// holds 51 single-CPU sandboxes (and 51 duplicated runtimes) for the whole
// workflow even though each function computes for milliseconds.
// billsPerTransition adds the commercial orchestrator's fee per function
// plus the start/end transitions.
func Request(c model.Constants, w *dag.Workflow, plan *wrap.Plan, res *engine.Result, billsPerTransition bool) (Breakdown, error) {
	ledgers, err := plan.Ledgers(w)
	if err != nil {
		return Breakdown{}, err
	}
	seconds := res.E2E.Seconds()
	var b Breakdown
	for _, sb := range ledgers {
		b.CPU += float64(sb.CPUs) * c.CPUBaseGHz * seconds * c.PricePerGHzSecond
		b.Memory += sb.MemoryMB(c) / 1024 * seconds * c.PricePerGBSecond
	}
	if billsPerTransition {
		b.Transitions = float64(w.NumFunctions()+2) * c.PricePerTransition
	}
	return b, nil
}
