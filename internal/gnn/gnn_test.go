package gnn

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/mlbase"
)

func chainGraph(rng *rand.Rand, n int) (*Graph, float64) {
	g := &Graph{}
	var sum float64
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		g.X = append(g.X, []float64{a, b})
		sum += a
		if i > 0 {
			g.Edges = append(g.Edges, [2]int{i - 1, i})
		}
	}
	return g, sum / 4
}

func TestGradientsMatchNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, target := chainGraph(rng, 4)
	m, err := Train([]*Graph{g}, []float64{target}, Options{Hidden: 4, Epochs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dW1, dW2, dwOut, dbOut := m.grads(g, target)

	const eps = 1e-6
	check := func(name string, got float64, bump func(delta float64)) {
		bump(eps)
		up := m.Loss(g, target)
		bump(-2 * eps)
		down := m.Loss(g, target)
		bump(eps)
		num := (up - down) / (2 * eps)
		if math.Abs(num-got) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("%s: analytic %v vs numerical %v", name, got, num)
		}
	}
	for _, idx := range []int{0, len(m.W1.Data) / 2, len(m.W1.Data) - 1} {
		idx := idx
		check("W1", dW1.Data[idx], func(d float64) { m.W1.Data[idx] += d })
	}
	for _, idx := range []int{0, len(m.W2.Data) / 2, len(m.W2.Data) - 1} {
		idx := idx
		check("W2", dW2.Data[idx], func(d float64) { m.W2.Data[idx] += d })
	}
	check("wOut", dwOut[2], func(d float64) { m.wOut[2] += d })
	check("bOut", dbOut, func(d float64) { m.bOut += d })
}

func TestLearnsNodeFeatureSum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var graphs []*Graph
	var ys []float64
	for i := 0; i < 200; i++ {
		g, y := chainGraph(rng, 3+rng.Intn(4))
		graphs = append(graphs, g)
		ys = append(ys, y)
	}
	m, err := Train(graphs, ys, Options{Hidden: 12, Epochs: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, len(graphs))
	for i, g := range graphs {
		pred[i] = m.Predict(g)
	}
	if mae := mlbase.MAE(pred, ys); mae > 0.25 {
		t.Fatalf("train MAE %v; GCN failed to learn", mae)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var graphs []*Graph
	var ys []float64
	for i := 0; i < 80; i++ {
		g, y := chainGraph(rng, 4)
		graphs = append(graphs, g)
		ys = append(ys, y)
	}
	early, _ := Train(graphs, ys, Options{Hidden: 8, Epochs: 1, Seed: 7})
	late, _ := Train(graphs, ys, Options{Hidden: 8, Epochs: 60, Seed: 7})
	var lossEarly, lossLate float64
	for i := range graphs {
		lossEarly += early.Loss(graphs[i], ys[i])
		lossLate += late.Loss(graphs[i], ys[i])
	}
	if lossLate >= lossEarly {
		t.Fatalf("training did not reduce loss: %v -> %v", lossEarly, lossLate)
	}
}

func TestNormalizedAdjacency(t *testing.T) {
	g := &Graph{X: [][]float64{{1}, {1}}, Edges: [][2]int{{0, 1}}}
	s := g.norm()
	// Two nodes, one edge, self-loops: every degree is 2, so every entry
	// of the normalized adjacency is 1/2.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(s.At(i, j)-0.5) > 1e-12 {
				t.Fatalf("S[%d][%d] = %v, want 0.5", i, j, s.At(i, j))
			}
		}
	}
}

func TestIsolatedNodeGraph(t *testing.T) {
	g := &Graph{X: [][]float64{{0.5, 0.5}}}
	m, err := Train([]*Graph{g}, []float64{1}, Options{Hidden: 3, Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.Predict(g)) {
		t.Fatal("NaN on single-node graph")
	}
}

func TestValidation(t *testing.T) {
	if err := (&Graph{}).Validate(); err == nil {
		t.Error("empty graph accepted")
	}
	if err := (&Graph{X: [][]float64{{1}, {1, 2}}}).Validate(); err == nil {
		t.Error("ragged features accepted")
	}
	if err := (&Graph{X: [][]float64{{1}}, Edges: [][2]int{{0, 5}}}).Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := Train(nil, nil, Options{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train([]*Graph{{X: [][]float64{{1}}}, {X: [][]float64{{1, 2}}}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("inconsistent widths accepted")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, y := chainGraph(rng, 5)
	a, _ := Train([]*Graph{g}, []float64{y}, Options{Hidden: 4, Epochs: 5, Seed: 9})
	b, _ := Train([]*Graph{g}, []float64{y}, Options{Hidden: 4, Epochs: 5, Seed: 9})
	if a.Predict(g) != b.Predict(g) {
		t.Fatal("same seed, different models")
	}
}
