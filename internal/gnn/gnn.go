// Package gnn is a from-scratch two-layer graph convolutional network,
// the stand-in for Figure 12's GNN baseline (a BRP-NAS-style latency
// predictor).
//
// A candidate deployment becomes a graph whose nodes are functions with
// Gsight-style feature vectors and whose edges encode co-residency
// (same process, same wrap) and stage adjacency. Two symmetric-normalized
// graph convolutions with ReLU, mean pooling and a linear head regress
// end-to-end latency. Backpropagation is hand-derived and verified by a
// numerical gradient check in the tests.
package gnn

import (
	"fmt"
	"math"
	"math/rand"

	"chiron/internal/mlbase"
)

// Graph is one training/prediction instance.
type Graph struct {
	// X is the node feature matrix, one row per function.
	X [][]float64
	// Edges are undirected node-index pairs; self-loops are added
	// internally per the GCN normalization.
	Edges [][2]int
}

// Validate reports malformed graphs.
func (g *Graph) Validate() error {
	n := len(g.X)
	if n == 0 {
		return fmt.Errorf("gnn: graph has no nodes")
	}
	d := len(g.X[0])
	for i, row := range g.X {
		if len(row) != d {
			return fmt.Errorf("gnn: node %d has %d features, want %d", i, len(row), d)
		}
	}
	for _, e := range g.Edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return fmt.Errorf("gnn: edge %v out of range", e)
		}
	}
	return nil
}

// norm builds the symmetric-normalized adjacency D^-1/2 (A+I) D^-1/2.
func (g *Graph) norm() *mlbase.Mat {
	n := len(g.X)
	a := mlbase.NewMat(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	for _, e := range g.Edges {
		if e[0] == e[1] {
			continue
		}
		a.Set(e[0], e[1], 1)
		a.Set(e[1], e[0], 1)
	}
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			deg[i] += a.At(i, j)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := a.At(i, j); v != 0 {
				a.Set(i, j, v/math.Sqrt(deg[i]*deg[j]))
			}
		}
	}
	return a
}

// Options configure training.
type Options struct {
	// Hidden is the width of both graph convolution layers (default 16).
	Hidden int
	// Epochs is the number of SGD passes (default 80).
	Epochs int
	// LR is the learning rate (default 0.005).
	LR float64
	// Clip bounds each gradient's L2 norm (default 5).
	Clip float64
	// Seed drives initialization and shuffling.
	Seed int64
}

func (o *Options) defaults() {
	if o.Hidden <= 0 {
		o.Hidden = 16
	}
	if o.Epochs <= 0 {
		o.Epochs = 80
	}
	if o.LR <= 0 {
		o.LR = 0.005
	}
	if o.Clip <= 0 {
		o.Clip = 5
	}
}

// Model is a trained GCN regressor.
type Model struct {
	in, hidden int
	W1, W2     *mlbase.Mat // (in x h), (h x h)
	wOut       []float64
	bOut       float64
}

// Train fits the model.
func Train(graphs []*Graph, y []float64, opt Options) (*Model, error) {
	opt.defaults()
	if len(graphs) == 0 || len(graphs) != len(y) {
		return nil, fmt.Errorf("gnn: need matching non-empty graphs (%d) and y (%d)", len(graphs), len(y))
	}
	in := -1
	for _, g := range graphs {
		if err := g.Validate(); err != nil {
			return nil, err
		}
		if in == -1 {
			in = len(g.X[0])
		}
		if len(g.X[0]) != in {
			return nil, fmt.Errorf("gnn: inconsistent feature width")
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	h := opt.Hidden
	m := &Model{
		in: in, hidden: h,
		W1:   mlbase.RandMat(in, h, 1/math.Sqrt(float64(in)), rng),
		W2:   mlbase.RandMat(h, h, 1/math.Sqrt(float64(h)), rng),
		wOut: make([]float64, h),
	}
	for j := range m.wOut {
		m.wOut[j] = (rng.Float64()*2 - 1) / math.Sqrt(float64(h))
	}

	order := make([]int, len(graphs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			m.step(graphs[idx], y[idx], opt)
		}
	}
	return m, nil
}

// matMul multiplies (r x k) by (k x c).
func matMul(a, b *mlbase.Mat) *mlbase.Mat {
	if a.C != b.R {
		panic("gnn: matMul shape mismatch")
	}
	out := mlbase.NewMat(a.R, b.C)
	for i := 0; i < a.R; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j := range br {
				or[j] += av * br[j]
			}
		}
	}
	return out
}

func transpose(a *mlbase.Mat) *mlbase.Mat {
	out := mlbase.NewMat(a.C, a.R)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			out.Set(j, i, a.At(i, j))
		}
	}
	return out
}

type fwd struct {
	s          *mlbase.Mat // normalized adjacency
	xm         *mlbase.Mat // node features
	sx, z1, h1 *mlbase.Mat
	sh1, z2    *mlbase.Mat
	h2         *mlbase.Mat
	pooled     []float64
	pred       float64
}

func (m *Model) forward(g *Graph) *fwd {
	n := len(g.X)
	f := &fwd{s: g.norm(), xm: mlbase.NewMat(n, m.in)}
	for i, row := range g.X {
		copy(f.xm.Row(i), row)
	}
	f.sx = matMul(f.s, f.xm)
	f.z1 = matMul(f.sx, m.W1)
	f.h1 = f.z1.Clone()
	for i := range f.h1.Data {
		f.h1.Data[i] = mlbase.ReLU(f.h1.Data[i])
	}
	f.sh1 = matMul(f.s, f.h1)
	f.z2 = matMul(f.sh1, m.W2)
	f.h2 = f.z2.Clone()
	for i := range f.h2.Data {
		f.h2.Data[i] = mlbase.ReLU(f.h2.Data[i])
	}
	f.pooled = make([]float64, m.hidden)
	for i := 0; i < n; i++ {
		mlbase.AddScaled(f.pooled, 1/float64(n), f.h2.Row(i))
	}
	f.pred = mlbase.Dot(m.wOut, f.pooled) + m.bOut
	return f
}

// grads returns hand-derived gradients of the squared-error loss.
func (m *Model) grads(g *Graph, target float64) (dW1, dW2 *mlbase.Mat, dwOut []float64, dbOut float64) {
	f := m.forward(g)
	n := len(g.X)
	dPred := f.pred - target

	dwOut = make([]float64, m.hidden)
	mlbase.AddScaled(dwOut, dPred, f.pooled)
	dbOut = dPred

	// dH2: every row receives dPred * wOut / n.
	dH2 := mlbase.NewMat(n, m.hidden)
	for i := 0; i < n; i++ {
		mlbase.AddScaled(dH2.Row(i), dPred/float64(n), m.wOut)
	}
	// Through ReLU of layer 2.
	dZ2 := dH2
	for i := range dZ2.Data {
		if f.z2.Data[i] <= 0 {
			dZ2.Data[i] = 0
		}
	}
	dW2 = matMul(transpose(f.sh1), dZ2)
	// dH1 = S^T dZ2 W2^T (S symmetric).
	dH1 := matMul(matMul(f.s, dZ2), transpose(m.W2))
	dZ1 := dH1
	for i := range dZ1.Data {
		if f.z1.Data[i] <= 0 {
			dZ1.Data[i] = 0
		}
	}
	dW1 = matMul(transpose(f.sx), dZ1)
	return dW1, dW2, dwOut, dbOut
}

func (m *Model) step(g *Graph, target float64, opt Options) {
	dW1, dW2, dwOut, dbOut := m.grads(g, target)
	clip := func(v []float64) {
		n := math.Sqrt(mlbase.Dot(v, v))
		if n > opt.Clip {
			s := opt.Clip / n
			for i := range v {
				v[i] *= s
			}
		}
	}
	clip(dW1.Data)
	clip(dW2.Data)
	clip(dwOut)
	m.W1.AXPY(-opt.LR, dW1)
	m.W2.AXPY(-opt.LR, dW2)
	mlbase.AddScaled(m.wOut, -opt.LR, dwOut)
	m.bOut -= opt.LR * dbOut
}

// Predict returns the model's estimate for one graph.
func (m *Model) Predict(g *Graph) float64 {
	if err := g.Validate(); err != nil {
		panic(err.Error())
	}
	return m.forward(g).pred
}

// Loss returns the squared-error loss on one example (for gradient-check
// tests).
func (m *Model) Loss(g *Graph, target float64) float64 {
	d := m.Predict(g) - target
	return 0.5 * d * d
}
