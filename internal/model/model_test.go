package model

import (
	"testing"
	"time"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() fails its own validation: %v", err)
	}
}

func TestThreadStartupIs96PercentBelowProcess(t *testing.T) {
	// Observation 2: "thread reduces startup latency by 96% compared to
	// process". Guard the calibration.
	c := Default()
	ratio := float64(c.ThreadStartup) / float64(c.ProcStartup)
	if ratio < 0.02 || ratio > 0.06 {
		t.Fatalf("thread/process startup ratio = %.3f, want ~0.04", ratio)
	}
}

func TestBlockTimeCalibration(t *testing.T) {
	// Observation 2: "when 50 parallel functions execute simultaneously,
	// the blocking time can reach up to 169 ms".
	c := Default()
	block49 := time.Duration(49) * c.ProcBlockStep
	if block49 < 150*time.Millisecond || block49 > 190*time.Millisecond {
		t.Fatalf("49-fork block time = %v, want ~169ms", block49)
	}
}

func TestMaxProcsPerWrap(t *testing.T) {
	c := Default()
	cases := []struct {
		n    int
		want int
	}{
		{1, 1},
		{3, 3},
		{100, int(c.RPCCost / c.ProcBlockStep)},
	}
	for _, tc := range cases {
		if got := c.MaxProcsPerWrap(tc.n); got != tc.want {
			t.Errorf("MaxProcsPerWrap(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	// Figure 11 packs 17 processes into 4 wraps of at most 5: the default
	// calibration must yield 5.
	if got := c.MaxProcsPerWrap(17); got != 5 {
		t.Errorf("MaxProcsPerWrap(17) = %d, want 5 (Figure 11)", got)
	}
}

func TestMaxProcsPerWrapDegenerateBlockStep(t *testing.T) {
	c := Default()
	c.ProcBlockStep = 0
	if got := c.MaxProcsPerWrap(7); got != 7 {
		t.Fatalf("with zero block step, MaxProcsPerWrap(7) = %d, want 7", got)
	}
	c = Default()
	c.ProcBlockStep = c.RPCCost * 2 // block dearer than a network hop
	if got := c.MaxProcsPerWrap(7); got != 1 {
		t.Fatalf("with huge block step, MaxProcsPerWrap(7) = %d, want 1", got)
	}
}

func TestValidateCatchesBrokenCalibrations(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Constants)
	}{
		{"zero proc startup", func(c *Constants) { c.ProcStartup = 0 }},
		{"thread slower than process", func(c *Constants) { c.ThreadStartup = c.ProcStartup * 2 }},
		{"zero gil interval", func(c *Constants) { c.GILInterval = 0 }},
		{"zero spawn batch", func(c *Constants) { c.ThreadSpawnBatch = 0 }},
		{"zero rpc", func(c *Constants) { c.RPCCost = 0 }},
		{"zero cores", func(c *Constants) { c.NodeCores = 0 }},
		{"zero memory", func(c *Constants) { c.NodeMemMB = 0 }},
		{"mpk speedup", func(c *Constants) { c.MPKCPUFactor = 0.5 }},
		{"sfi speedup", func(c *Constants) { c.SFIIOFactor = 0.9 }},
		{"zero runtime mem", func(c *Constants) { c.SandboxRuntimeMB = 0 }},
		{"pool factor below 1", func(c *Constants) { c.PoolResidentFactor = 0.3 }},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken calibration", m.name)
		}
	}
}

func TestInvalidConstantsErrorMessage(t *testing.T) {
	c := Default()
	c.NodeCores = 0
	err := c.Validate()
	if err == nil {
		t.Fatal("expected error")
	}
	if _, ok := err.(*InvalidConstantsError); !ok {
		t.Fatalf("error type %T, want *InvalidConstantsError", err)
	}
	if msg := err.Error(); msg == "" {
		t.Fatal("empty error message")
	}
}
