// Package model holds the calibrated timing, memory and pricing constants
// that parameterize every substrate in the repository.
//
// The paper's evaluation ran on a physical OpenFaaS/Kubernetes cluster
// (Table 2: 8 nodes, Intel Xeon Gold 6230 @ 2.1 GHz × 40, 128 GB DRAM,
// 10 GbE). This reproduction replaces the testbed with a deterministic
// virtual-time engine; the constants below are calibrated from the numbers
// the paper itself reports (Figures 3-6, Observations 1-2, Table 1) so that
// the reproduced experiments preserve the paper's shapes: who wins, by what
// factor, and where the crossovers fall.
//
// All durations are time.Duration on a virtual clock; nothing in the
// simulation sleeps for real.
package model

import "time"

// Constants is the full calibration set. A zero value is NOT usable; obtain
// one from Default and override fields as needed. Every platform, predictor
// and experiment receives its Constants explicitly so tests can perturb a
// single knob without global state.
type Constants struct {
	// ---- Process execution mode (Observation 2, Figure 5) ----

	// ProcStartup is the mean time from issuing fork() to the first user
	// instruction of the child function: interpreter fork, module re-init,
	// runtime handshake. The paper measures 7.5 ms on CPython 3.11.
	ProcStartup time.Duration
	// ProcBlockStep is the additional wait the j-th forked process suffers
	// because forks are issued sequentially by the orchestrator (Eq. 4:
	// (j-1) x T_Block). Calibrated from "50 parallel functions -> blocking
	// time up to 169 ms": 169ms/49 = 3.45 ms.
	ProcBlockStep time.Duration
	// IPCCost is the cost of moving one function's state to/from another
	// process over a Linux pipe (Eq. 3: T_IPC x (|P|-1)). Figure 5 reports
	// 4.3 ms of IPC for FINRA-5 (4 transfers) = 1.08 ms each.
	IPCCost time.Duration

	// ---- Thread execution mode (Figure 2, Observation 2) ----

	// ThreadStartup is the cost of cloning a thread inside a warm process.
	// The paper reports threads reduce startup latency by 96% vs processes:
	// 7.5 ms x 0.04 = 0.3 ms.
	ThreadStartup time.Duration
	// NodeWorkerStartup is Node.js's far heavier per-thread cost: "worker
	// threads incur more than 50 ms of startup overhead for each
	// function, leading to doubled latency" (Section 2.1).
	NodeWorkerStartup time.Duration
	// GILInterval is the CPython switch interval: a thread holding the GIL
	// is asked to drop it after this long when other threads wait
	// (sys.getswitchinterval() default 5 ms).
	GILInterval time.Duration
	// ThreadSpawnBatch is how many threads the main thread can start per
	// GIL interval while it holds the GIL (Algorithm 1 lines 4-5).
	ThreadSpawnBatch int

	// ---- Sandbox / container substrate (Section 1, Figure 1) ----

	// ColdStart is the time to pull-free cold start a warm-image container
	// with a language runtime ("starting a Hello-world Python container
	// takes 167 ms").
	ColdStart time.Duration
	// SandboxRuntimeMB is the resident memory of one sandbox's language
	// runtime + base libraries, duplicated per sandbox under one-to-one
	// deployment (Figure 16 calibration: ~30 MB per Python sandbox).
	SandboxRuntimeMB float64
	// ProcOverheadMB is the incremental private memory of one extra forked
	// process inside a sandbox (interpreter COW residue, heap arenas).
	ProcOverheadMB float64
	// ThreadOverheadMB is the incremental memory of one extra thread
	// (stack + TLS) inside a process.
	ThreadOverheadMB float64
	// PoolResidentFactor multiplies process memory for pool-based systems:
	// long-running pool workers keep arenas resident ("more than 5x memory
	// to avoid duplicate startup overhead").
	PoolResidentFactor float64

	// ---- Interaction substrate (Observation 1, Figures 3-4) ----

	// RPCCost is one wrap-to-wrap (sandbox-to-sandbox) invocation over the
	// local cluster network: HTTP through the gateway, T_RPC in Eq. 2.
	RPCCost time.Duration
	// InvokeCost is the per-extra-wrap client-side overhead when wrap1
	// fans out to sibling wraps ((k-1) x T_INV in Eq. 2): serialization and
	// connection setup in the orchestrator library.
	InvokeCost time.Duration

	// ASFSchedPerFn is AWS Step Functions' per-state scheduling latency
	// (Figure 3: "ASF uses 150 ms for scheduling a function").
	ASFSchedPerFn time.Duration
	// ASFConcurrency is ASF's dispatch window ("only able to run up-to 10
	// functions concurrently").
	ASFConcurrency int
	// ASFControlPerFn is the serialized control-plane cost ASF pays per
	// state transition beyond the parallel window (fits Fig. 3's growth to
	// 874 ms / 1628 ms at 25 / 50 functions).
	ASFControlPerFn time.Duration
	// GatewaySchedPerFn is the local OpenFaaS gateway's serialized
	// per-function dispatch cost (fits Fig. 3: 180 ms for 50 functions).
	GatewaySchedPerFn time.Duration

	// ---- Remote storage (Figure 4) ----

	// S3BaseLatency / S3BandwidthMBps model AWS S3 from Lambda: 52 ms
	// floor, ~43 MB/s effective (1 GB -> ~25 s).
	S3BaseLatency   time.Duration
	S3BandwidthMBps float64
	// MinIOBaseLatency / MinIOBandwidthMBps model MinIO on the local
	// cluster: ~10 ms floor, 1 GB -> ~10 s.
	MinIOBaseLatency   time.Duration
	MinIOBandwidthMBps float64

	// ---- Isolation mechanisms (Table 1) ----

	// MPK* model Intel Memory Protection Keys thread isolation.
	MPKStartup     time.Duration // pkey alloc + WRPKRU setup per function
	MPKInteraction time.Duration // shared-memory handoff (measured 0)
	MPKCPUFactor   float64       // CPU-segment slowdown (fibonacci +35.2%)
	MPKIOFactor    float64       // IO-segment slowdown (disk-io +7.3% overall)

	// SFI* model WebAssembly software-fault isolation (Faasm-style).
	SFIStartup     time.Duration // module instantiation, 18 ms
	SFIInteraction time.Duration // cross-module call + copy, 8 ms
	SFICPUFactor   float64       // fibonacci +52.9%
	SFIIOFactor    float64       // disk-io +29.4% overall

	// ---- Process pool (Section 4 "True Parallelism") ----

	// PoolDispatch is the cost of handing a task to a warm pool worker.
	PoolDispatch time.Duration

	// ---- Worker node (Table 2) ----

	NodeCores  int     // CPUs per worker node (40)
	NodeMemMB  float64 // DRAM per worker node (128 GB)
	CPUBaseGHz float64 // base clock, for GHz-second pricing (2.1)

	// ---- Pricing (Figure 19, Google Cloud Functions rates) ----

	PricePerGBSecond  float64 // $0.0000025 per GB-second of memory
	PricePerGHzSecond float64 // $0.0000100 per GHz-second of CPU
	// PricePerTransition is what one-to-one orchestrators charge per state
	// transition (AWS Step Functions: $25 per million).
	PricePerTransition float64

	// ---- Engine fidelity knobs (Section 5 of DESIGN.md) ----

	// SyscallOverhead is the engine-side entry/exit cost added to every
	// block operation; the white-box Predictor ignores it, which is one
	// source of its (small) prediction error.
	SyscallOverhead time.Duration
	// StartupJitterPct is the +/- percentage of deterministic, seeded
	// jitter the engine applies to each fork's startup cost.
	StartupJitterPct float64
	// MainThreadLag is the engine-side delay before the orchestrator's
	// main thread begins spawning workers (watchdog hand-off).
	MainThreadLag time.Duration
}

// Default returns the calibration used throughout the paper reproduction.
// See the field comments for the provenance of each number.
func Default() Constants {
	return Constants{
		ProcStartup:   7500 * time.Microsecond,
		ProcBlockStep: 3450 * time.Microsecond,
		IPCCost:       1080 * time.Microsecond,

		ThreadStartup:     300 * time.Microsecond,
		NodeWorkerStartup: 52 * time.Millisecond,
		GILInterval:       5 * time.Millisecond,
		ThreadSpawnBatch:  8,

		ColdStart:          167 * time.Millisecond,
		SandboxRuntimeMB:   30,
		ProcOverheadMB:     4.5,
		ThreadOverheadMB:   0.35,
		PoolResidentFactor: 5.2,

		RPCCost:    17500 * time.Microsecond,
		InvokeCost: 1500 * time.Microsecond,

		ASFSchedPerFn:     150 * time.Millisecond,
		ASFConcurrency:    10,
		ASFControlPerFn:   17 * time.Millisecond,
		GatewaySchedPerFn: 3600 * time.Microsecond,

		S3BaseLatency:      52 * time.Millisecond,
		S3BandwidthMBps:    43,
		MinIOBaseLatency:   10 * time.Millisecond,
		MinIOBandwidthMBps: 105,

		MPKStartup:     200 * time.Microsecond,
		MPKInteraction: 0,
		MPKCPUFactor:   1.352,
		MPKIOFactor:    1.048,

		SFIStartup:     18 * time.Millisecond,
		SFIInteraction: 8 * time.Millisecond,
		SFICPUFactor:   1.529,
		SFIIOFactor:    1.21,

		PoolDispatch: 450 * time.Microsecond,

		NodeCores:  40,
		NodeMemMB:  128 * 1024,
		CPUBaseGHz: 2.1,

		PricePerGBSecond:   0.0000025,
		PricePerGHzSecond:  0.0000100,
		PricePerTransition: 0.000025,

		SyscallOverhead:  35 * time.Microsecond,
		StartupJitterPct: 0.12,
		MainThreadLag:    400 * time.Microsecond,
	}
}

// MaxProcsPerWrap returns how many processes Algorithm 2 (line 7) initially
// packs into wrap1: min(floor(T_RPC / T_Block), n). Grouping more processes
// than this into one sandbox would accumulate more fork block time than one
// network hop costs, so the partitioner prefers a new wrap beyond it.
func (c Constants) MaxProcsPerWrap(n int) int {
	if c.ProcBlockStep <= 0 {
		return n
	}
	m := int(c.RPCCost / c.ProcBlockStep)
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	return m
}

// Validate reports a non-nil error when a Constants value is internally
// inconsistent (non-positive core timings, zero node resources, factors
// below 1). It exists so fuzz/property tests can reject nonsense inputs.
func (c Constants) Validate() error {
	type check struct {
		ok  bool
		msg string
	}
	checks := []check{
		{c.ProcStartup > 0, "ProcStartup must be positive"},
		{c.ProcBlockStep >= 0, "ProcBlockStep must be non-negative"},
		{c.ThreadStartup > 0, "ThreadStartup must be positive"},
		{c.ThreadStartup < c.ProcStartup, "thread startup must undercut process startup"},
		{c.GILInterval > 0, "GILInterval must be positive"},
		{c.ThreadSpawnBatch > 0, "ThreadSpawnBatch must be positive"},
		{c.RPCCost > 0, "RPCCost must be positive"},
		{c.NodeCores > 0, "NodeCores must be positive"},
		{c.NodeMemMB > 0, "NodeMemMB must be positive"},
		{c.MPKCPUFactor >= 1 && c.MPKIOFactor >= 1, "MPK factors must be >= 1"},
		{c.SFICPUFactor >= 1 && c.SFIIOFactor >= 1, "SFI factors must be >= 1"},
		{c.SandboxRuntimeMB > 0, "SandboxRuntimeMB must be positive"},
		{c.PoolResidentFactor >= 1, "PoolResidentFactor must be >= 1"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return &InvalidConstantsError{Reason: ch.msg}
		}
	}
	return nil
}

// InvalidConstantsError reports why a Constants value failed Validate.
type InvalidConstantsError struct{ Reason string }

func (e *InvalidConstantsError) Error() string {
	return "model: invalid constants: " + e.Reason
}
