// Package rfr is a from-scratch random forest regressor, the stand-in for
// the scikit-learn RandomForestRegressor baseline of Figure 12.
//
// It is a textbook implementation: bootstrap-sampled CART trees grown by
// variance reduction with per-split feature subsampling, predictions
// averaged across the ensemble. Defaults mirror scikit-learn's
// ("default parameters" per the paper): 100 trees, unlimited depth,
// min-samples-split 2.
package rfr

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Options configure training.
type Options struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// MaxDepth caps tree depth (0 = unlimited).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 1).
	MinLeaf int
	// FeatureFrac is the fraction of features scanned per split
	// (default 1.0, scikit-learn's regression default).
	FeatureFrac float64
	// Seed drives bootstrap and feature sampling.
	Seed int64
}

func (o *Options) defaults() {
	if o.Trees <= 0 {
		o.Trees = 100
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 1
	}
	if o.FeatureFrac <= 0 || o.FeatureFrac > 1 {
		o.FeatureFrac = 1
	}
}

type node struct {
	feature int
	thresh  float64
	left    *node
	right   *node
	value   float64 // leaf mean
	leaf    bool
}

// Forest is a trained ensemble.
type Forest struct {
	trees []*node
	dim   int
}

// Train fits a forest to (X, y).
func Train(X [][]float64, y []float64, opt Options) (*Forest, error) {
	opt.defaults()
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("rfr: need matching non-empty X (%d) and y (%d)", len(X), len(y))
	}
	dim := len(X[0])
	for i, row := range X {
		if len(row) != dim {
			return nil, fmt.Errorf("rfr: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	f := &Forest{dim: dim}
	for t := 0; t < opt.Trees; t++ {
		idx := make([]int, len(X))
		for i := range idx {
			idx[i] = rng.Intn(len(X))
		}
		f.trees = append(f.trees, grow(X, y, idx, 0, opt, rng))
	}
	return f, nil
}

func mean(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sse(y []float64, idx []int) float64 {
	m := mean(y, idx)
	var s float64
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

func grow(X [][]float64, y []float64, idx []int, depth int, opt Options, rng *rand.Rand) *node {
	if len(idx) <= opt.MinLeaf || (opt.MaxDepth > 0 && depth >= opt.MaxDepth) || pure(y, idx) {
		return &node{leaf: true, value: mean(y, idx)}
	}
	dim := len(X[0])
	nFeat := int(math.Ceil(opt.FeatureFrac * float64(dim)))
	feats := rng.Perm(dim)[:nFeat]

	bestFeat, bestThresh := -1, 0.0
	bestScore := math.Inf(1)
	var bestLeft, bestRight []int

	for _, f := range feats {
		order := append([]int(nil), idx...)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		for cut := opt.MinLeaf; cut <= len(order)-opt.MinLeaf; cut++ {
			lo, hi := X[order[cut-1]][f], X[order[cut]][f]
			if lo == hi {
				continue
			}
			left, right := order[:cut], order[cut:]
			score := sse(y, left) + sse(y, right)
			if score < bestScore {
				bestScore = score
				bestFeat = f
				bestThresh = (lo + hi) / 2
				bestLeft = append([]int(nil), left...)
				bestRight = append([]int(nil), right...)
			}
		}
	}
	if bestFeat < 0 {
		return &node{leaf: true, value: mean(y, idx)}
	}
	return &node{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    grow(X, y, bestLeft, depth+1, opt, rng),
		right:   grow(X, y, bestRight, depth+1, opt, rng),
	}
}

func pure(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

// Predict returns the forest's estimate for one feature vector.
func (f *Forest) Predict(x []float64) float64 {
	if len(x) != f.dim {
		panic(fmt.Sprintf("rfr: predict dim %d != %d", len(x), f.dim))
	}
	var s float64
	for _, t := range f.trees {
		n := t
		for !n.leaf {
			if x[n.feature] <= n.thresh {
				n = n.left
			} else {
				n = n.right
			}
		}
		s += n.value
	}
	return s / float64(len(f.trees))
}

// PredictAll maps Predict over rows.
func (f *Forest) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = f.Predict(x)
	}
	return out
}
