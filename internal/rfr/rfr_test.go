package rfr

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/mlbase"
)

func TestLearnsPiecewiseFunction(t *testing.T) {
	// y = 10 if x0 < 0.5 else 20 — a single split a forest must nail.
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64()
		X = append(X, []float64{x, rng.Float64()})
		if x < 0.5 {
			y = append(y, 10)
		} else {
			y = append(y, 20)
		}
	}
	f, err := Train(X, y, Options{Trees: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if p := f.Predict([]float64{0.1, 0.9}); math.Abs(p-10) > 1 {
		t.Fatalf("predict(0.1) = %v, want ~10", p)
	}
	if p := f.Predict([]float64{0.9, 0.1}); math.Abs(p-20) > 1 {
		t.Fatalf("predict(0.9) = %v, want ~20", p)
	}
}

func TestLearnsAdditiveSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a, b := rng.Float64(), rng.Float64()
		X = append(X, []float64{a, b, rng.Float64()})
		y = append(y, 5*a+3*b)
	}
	f, err := Train(X, y, Options{Trees: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	pred := f.PredictAll(X)
	if mae := mlbase.MAE(pred, y); mae > 0.6 {
		t.Fatalf("train MAE %v too high", mae)
	}
}

func TestGeneralizationBeatsMeanBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var X [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a := rng.Float64()
		X = append(X, []float64{a, rng.Float64()})
		y = append(y, 100*a*a)
	}
	tr, te := mlbase.Split(len(X), 0.75, 11)
	var trX [][]float64
	var trY []float64
	for _, i := range tr {
		trX = append(trX, X[i])
		trY = append(trY, y[i])
	}
	f, err := Train(trX, trY, Options{Trees: 30, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var meanY float64
	for _, v := range trY {
		meanY += v
	}
	meanY /= float64(len(trY))
	var fErr, mErr float64
	for _, i := range te {
		fErr += math.Abs(f.Predict(X[i]) - y[i])
		mErr += math.Abs(meanY - y[i])
	}
	if fErr >= mErr {
		t.Fatalf("forest test error %v not better than mean baseline %v", fErr, mErr)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	a, _ := Train(X, y, Options{Trees: 5, Seed: 2})
	b, _ := Train(X, y, Options{Trees: 5, Seed: 2})
	for _, x := range X {
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed, different forests")
		}
	}
}

func TestMaxDepthLimitsTree(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	y := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	stump, _ := Train(X, y, Options{Trees: 1, MaxDepth: 1, Seed: 1})
	deep, _ := Train(X, y, Options{Trees: 1, Seed: 1})
	// A depth-1 tree can produce at most 2 distinct outputs.
	got := map[float64]bool{}
	for _, x := range X {
		got[stump.Predict(x)] = true
	}
	if len(got) > 2 {
		t.Fatalf("depth-1 tree produced %d distinct values", len(got))
	}
	gotDeep := map[float64]bool{}
	for _, x := range X {
		gotDeep[deep.Predict(x)] = true
	}
	if len(gotDeep) <= 2 {
		t.Fatal("unlimited tree should split further")
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Train(nil, nil, Options{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("ragged features accepted")
	}
}

func TestPredictDimPanics(t *testing.T) {
	f, _ := Train([][]float64{{1}, {2}}, []float64{1, 2}, Options{Trees: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong dimension")
		}
	}()
	f.Predict([]float64{1, 2})
}

func TestConstantTargetsYieldConstantPrediction(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{7, 7, 7}
	f, _ := Train(X, y, Options{Trees: 3, Seed: 1})
	if p := f.Predict([]float64{99}); p != 7 {
		t.Fatalf("constant target predicted %v", p)
	}
}
