// Package behavior models what a serverless function *does* while it runs.
//
// The paper's Profiler (Section 3.2) reduces a function to the sequence of
// CPU bursts and blocking syscalls (open/read/write/poll/select/sendto...)
// it performs during a solo run. That sequence is everything the Predictor
// (Algorithm 1) needs, so in this reproduction a function's ground truth IS
// its behaviour spec: an ordered list of CPU and block segments plus memory
// and data-flow metadata. The engine replays specs on virtual time; the
// live executor replays them with real goroutines doing real work.
package behavior

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"
)

// SegmentKind classifies one contiguous span of a function's execution.
type SegmentKind int

const (
	// CPU is a burst of pure computation. Under the GIL only one CPU
	// segment in a process makes progress at a time.
	CPU SegmentKind = iota
	// Sleep is a timer wait (time.sleep / setTimeout). The GIL is dropped
	// for its whole duration.
	Sleep
	// DiskIO is a blocking file syscall span (open/read/write/fsync).
	DiskIO
	// NetIO is a blocking network span (connect/sendto/recvfrom/poll).
	NetIO
)

var segmentNames = map[SegmentKind]string{
	CPU: "cpu", Sleep: "sleep", DiskIO: "disk", NetIO: "net",
}

func (k SegmentKind) String() string {
	if s, ok := segmentNames[k]; ok {
		return s
	}
	return fmt.Sprintf("SegmentKind(%d)", int(k))
}

// Blocking reports whether the segment releases the GIL while it runs
// (everything except CPU does; see Figure 2 of the paper).
func (k SegmentKind) Blocking() bool { return k != CPU }

// MarshalJSON encodes the kind as its lower-case name.
func (k SegmentKind) MarshalJSON() ([]byte, error) {
	s, ok := segmentNames[k]
	if !ok {
		return nil, fmt.Errorf("behavior: unknown segment kind %d", int(k))
	}
	return json.Marshal(s)
}

// UnmarshalJSON decodes a lower-case kind name.
func (k *SegmentKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for kind, name := range segmentNames {
		if name == s {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("behavior: unknown segment kind %q", s)
}

// Segment is one contiguous CPU or blocking span.
type Segment struct {
	Kind SegmentKind `json:"kind"`
	// Dur is the segment's solo-run duration.
	Dur time.Duration `json:"dur"`
	// Bytes is the payload moved during IO segments (0 for CPU/Sleep);
	// storage back-ends use it to derive transfer time.
	Bytes int64 `json:"bytes,omitempty"`
	// TailDur/TailProb model a heavy-tailed straggler: with probability
	// TailProb one live execution of this segment takes Dur+TailDur
	// instead of Dur. Only the live executor samples the tail — the
	// profiler, engine and predictor all see Dur, so the tail is
	// unmodeled noise from the planner's point of view (exactly the
	// straggler a hedged re-issue is meant to cut).
	TailDur  time.Duration `json:"tail_dur,omitempty"`
	TailProb float64       `json:"tail_prob,omitempty"`
}

// Runtime identifies the language runtime a function needs. Functions with
// different runtimes can never share a sandbox (Section 3.4), and the Java
// runtime has no GIL (Figure 18).
type Runtime string

// Supported runtimes.
const (
	Python  Runtime = "python3"
	Python2 Runtime = "python2"
	NodeJS  Runtime = "nodejs"
	Java    Runtime = "java"
)

// PseudoParallel reports whether threads of this runtime contend on a
// global interpreter lock (Section 2.1: CPython and Node.js do, Java does
// not).
func (r Runtime) PseudoParallel() bool {
	switch r {
	case Java:
		return false
	default:
		return true
	}
}

// Spec is a function's complete behavioural description.
type Spec struct {
	// Name must be unique within a workflow.
	Name string `json:"name"`
	// Runtime is the language runtime the function requires.
	Runtime Runtime `json:"runtime"`
	// Segments is the solo-run execution trace, in order.
	Segments []Segment `json:"segments"`
	// MemMB is the function's private working set beyond the shared
	// runtime image (libraries it alone imports, heap).
	MemMB float64 `json:"mem_mb"`
	// Files lists paths the function opens for writing. Two functions
	// touching the same file must not share a sandbox (Section 3.4).
	Files []string `json:"files,omitempty"`
	// OutputBytes is the size of the intermediate result handed to the
	// next stage; it prices remote-storage transfers under one-to-one
	// deployment and pipe IPC under many-to-one.
	OutputBytes int64 `json:"output_bytes"`
}

// TotalCPU returns the sum of the spec's CPU segment durations.
func (s *Spec) TotalCPU() time.Duration {
	var d time.Duration
	for _, seg := range s.Segments {
		if seg.Kind == CPU {
			d += seg.Dur
		}
	}
	return d
}

// TotalBlock returns the sum of the spec's blocking segment durations.
func (s *Spec) TotalBlock() time.Duration {
	var d time.Duration
	for _, seg := range s.Segments {
		if seg.Kind.Blocking() {
			d += seg.Dur
		}
	}
	return d
}

// SoloLatency returns the function's uncontended run time (the sum of all
// segments), i.e. what the Profiler records in a solo run.
func (s *Spec) SoloLatency() time.Duration { return s.TotalCPU() + s.TotalBlock() }

// Validate reports structural problems: empty name, no segments,
// non-positive durations, unknown runtime.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("behavior: spec has empty name")
	}
	switch s.Runtime {
	case Python, Python2, NodeJS, Java:
	default:
		return fmt.Errorf("behavior: %s: unknown runtime %q", s.Name, s.Runtime)
	}
	if len(s.Segments) == 0 {
		return fmt.Errorf("behavior: %s: no segments", s.Name)
	}
	for i, seg := range s.Segments {
		if seg.Dur <= 0 {
			return fmt.Errorf("behavior: %s: segment %d has non-positive duration %v", s.Name, i, seg.Dur)
		}
		if seg.Bytes < 0 {
			return fmt.Errorf("behavior: %s: segment %d has negative bytes", s.Name, i)
		}
		if seg.TailProb < 0 || seg.TailProb > 1 {
			return fmt.Errorf("behavior: %s: segment %d has tail probability %v outside [0, 1]", s.Name, i, seg.TailProb)
		}
		if seg.TailDur < 0 {
			return fmt.Errorf("behavior: %s: segment %d has negative tail duration %v", s.Name, i, seg.TailDur)
		}
		if seg.TailProb > 0 && seg.TailDur == 0 {
			return fmt.Errorf("behavior: %s: segment %d has tail probability without a tail duration", s.Name, i)
		}
	}
	if s.MemMB < 0 {
		return fmt.Errorf("behavior: %s: negative memory", s.Name)
	}
	return nil
}

// Clone returns a deep copy with a new name.
func (s *Spec) Clone(name string) *Spec {
	c := *s
	c.Name = name
	c.Segments = append([]Segment(nil), s.Segments...)
	c.Files = append([]string(nil), s.Files...)
	return &c
}

// ScaleCPU multiplies every CPU segment duration by f, in place. Isolation
// mechanisms (MPK, SFI) use it to apply their execution overhead.
func (s *Spec) ScaleCPU(f float64) {
	for i := range s.Segments {
		if s.Segments[i].Kind == CPU {
			s.Segments[i].Dur = time.Duration(float64(s.Segments[i].Dur) * f)
		}
	}
}

// ScaleIO multiplies every blocking segment duration by f, in place.
func (s *Spec) ScaleIO(f float64) {
	for i := range s.Segments {
		if s.Segments[i].Kind.Blocking() {
			s.Segments[i].Dur = time.Duration(float64(s.Segments[i].Dur) * f)
		}
	}
}

// ---- Canonical workload classes (SLApp, Table 1, Figure 7) ----

// Class names the four SLApp micro-workload archetypes used throughout the
// paper's motivation and evaluation.
type Class string

const (
	Factorial Class = "factorial"  // pure CPU, single burst
	Fibonacci Class = "fibonacci"  // pure CPU, two bursts
	DiskHeavy Class = "disk-io"    // short CPU setup, long file IO
	NetHeavy  Class = "network-io" // short CPU setup, long socket IO
)

// Classes lists all archetypes in canonical order.
func Classes() []Class { return []Class{Factorial, Fibonacci, DiskHeavy, NetHeavy} }

// FromClass builds a spec of the given class with roughly the given solo
// latency (the paper picks four SLApp functions "with various execution
// behaviors but similar latency").
func FromClass(name string, class Class, solo time.Duration, rt Runtime) *Spec {
	mk := func(segs ...Segment) *Spec {
		return &Spec{Name: name, Runtime: rt, Segments: segs, MemMB: 2.5, OutputBytes: 512}
	}
	switch class {
	case Factorial:
		return mk(Segment{Kind: CPU, Dur: solo})
	case Fibonacci:
		return mk(
			Segment{Kind: CPU, Dur: solo * 6 / 10},
			Segment{Kind: CPU, Dur: solo * 4 / 10},
		)
	case DiskHeavy:
		return mk(
			Segment{Kind: CPU, Dur: solo * 15 / 100},
			Segment{Kind: DiskIO, Dur: solo * 70 / 100, Bytes: 4 << 20},
			Segment{Kind: CPU, Dur: solo * 15 / 100},
		)
	case NetHeavy:
		return mk(
			Segment{Kind: CPU, Dur: solo * 10 / 100},
			Segment{Kind: NetIO, Dur: solo * 80 / 100, Bytes: 1 << 20},
			Segment{Kind: CPU, Dur: solo * 10 / 100},
		)
	default:
		panic(fmt.Sprintf("behavior: unknown class %q", class))
	}
}

// Random returns a deterministic pseudo-random spec drawn from rng: 1-5
// segments alternating CPU and block spans, total latency within
// [minSolo, maxSolo]. Property tests and the ML training-set generator use
// it to cover the behaviour space.
func Random(name string, rng *rand.Rand, minSolo, maxSolo time.Duration) *Spec {
	total := minSolo + time.Duration(rng.Int63n(int64(maxSolo-minSolo)+1))
	n := 1 + rng.Intn(5)
	cuts := make([]float64, n)
	var sum float64
	for i := range cuts {
		cuts[i] = 0.1 + rng.Float64()
		sum += cuts[i]
	}
	blockKinds := []SegmentKind{Sleep, DiskIO, NetIO}
	segs := make([]Segment, 0, n)
	for i := range cuts {
		d := time.Duration(float64(total) * cuts[i] / sum)
		if d <= 0 {
			d = time.Microsecond
		}
		kind := CPU
		if i%2 == 1 {
			kind = blockKinds[rng.Intn(len(blockKinds))]
		}
		seg := Segment{Kind: kind, Dur: d}
		if kind == DiskIO || kind == NetIO {
			seg.Bytes = 1 << uint(8+rng.Intn(12))
		}
		segs = append(segs, seg)
	}
	return &Spec{
		Name:        name,
		Runtime:     Python,
		Segments:    segs,
		MemMB:       0.5 + rng.Float64()*6,
		OutputBytes: int64(128 + rng.Intn(4096)),
	}
}
