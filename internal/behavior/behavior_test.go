package behavior

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func specFixture() *Spec {
	return &Spec{
		Name:    "validate-trade",
		Runtime: Python,
		Segments: []Segment{
			{Kind: CPU, Dur: 800 * time.Microsecond},
			{Kind: DiskIO, Dur: 2 * time.Millisecond, Bytes: 4096},
			{Kind: CPU, Dur: 400 * time.Microsecond},
			{Kind: Sleep, Dur: time.Millisecond},
		},
		MemMB:       3,
		Files:       []string{"/tmp/audit.log"},
		OutputBytes: 256,
	}
}

func TestTotals(t *testing.T) {
	s := specFixture()
	if got, want := s.TotalCPU(), 1200*time.Microsecond; got != want {
		t.Errorf("TotalCPU = %v, want %v", got, want)
	}
	if got, want := s.TotalBlock(), 3*time.Millisecond; got != want {
		t.Errorf("TotalBlock = %v, want %v", got, want)
	}
	if got, want := s.SoloLatency(), 4200*time.Microsecond; got != want {
		t.Errorf("SoloLatency = %v, want %v", got, want)
	}
}

func TestValidateAcceptsFixture(t *testing.T) {
	if err := specFixture().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"unknown runtime", func(s *Spec) { s.Runtime = "cobol" }},
		{"no segments", func(s *Spec) { s.Segments = nil }},
		{"zero duration", func(s *Spec) { s.Segments[0].Dur = 0 }},
		{"negative duration", func(s *Spec) { s.Segments[1].Dur = -time.Millisecond }},
		{"negative bytes", func(s *Spec) { s.Segments[1].Bytes = -1 }},
		{"negative memory", func(s *Spec) { s.MemMB = -0.5 }},
		{"tail prob above 1", func(s *Spec) { s.Segments[0].TailProb = 1.5; s.Segments[0].TailDur = time.Millisecond }},
		{"negative tail prob", func(s *Spec) { s.Segments[0].TailProb = -0.1 }},
		{"negative tail dur", func(s *Spec) { s.Segments[0].TailDur = -time.Millisecond }},
		{"tail prob without dur", func(s *Spec) { s.Segments[0].TailProb = 0.5 }},
	}
	for _, tc := range cases {
		s := specFixture()
		tc.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid spec", tc.name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := specFixture()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, &back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", &back, s)
	}
}

func TestSegmentKindJSONUnknown(t *testing.T) {
	var k SegmentKind
	if err := k.UnmarshalJSON([]byte(`"warp-drive"`)); err == nil {
		t.Fatal("unknown kind decoded without error")
	}
	bad := SegmentKind(99)
	if _, err := bad.MarshalJSON(); err == nil {
		t.Fatal("unknown kind encoded without error")
	}
}

func TestBlockingClassification(t *testing.T) {
	if CPU.Blocking() {
		t.Error("CPU must not be blocking")
	}
	for _, k := range []SegmentKind{Sleep, DiskIO, NetIO} {
		if !k.Blocking() {
			t.Errorf("%v must be blocking", k)
		}
	}
}

func TestRuntimePseudoParallel(t *testing.T) {
	if Java.PseudoParallel() {
		t.Error("Java has no GIL")
	}
	for _, r := range []Runtime{Python, Python2, NodeJS} {
		if !r.PseudoParallel() {
			t.Errorf("%s must be pseudo-parallel", r)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := specFixture()
	c := s.Clone("copy")
	c.Segments[0].Dur = time.Hour
	c.Files[0] = "/other"
	if s.Segments[0].Dur == time.Hour || s.Files[0] == "/other" {
		t.Fatal("Clone shares backing arrays with original")
	}
	if c.Name != "copy" {
		t.Fatalf("clone name %q", c.Name)
	}
}

func TestScaleCPUOnlyTouchesCPU(t *testing.T) {
	s := specFixture()
	block := s.TotalBlock()
	s.ScaleCPU(2)
	if got, want := s.TotalCPU(), 2400*time.Microsecond; got != want {
		t.Errorf("scaled TotalCPU = %v, want %v", got, want)
	}
	if s.TotalBlock() != block {
		t.Errorf("ScaleCPU changed block time")
	}
}

func TestScaleIOOnlyTouchesBlocking(t *testing.T) {
	s := specFixture()
	cpu := s.TotalCPU()
	s.ScaleIO(1.5)
	if got, want := s.TotalBlock(), 4500*time.Microsecond; got != want {
		t.Errorf("scaled TotalBlock = %v, want %v", got, want)
	}
	if s.TotalCPU() != cpu {
		t.Errorf("ScaleIO changed CPU time")
	}
}

func TestFromClassShapes(t *testing.T) {
	solo := 40 * time.Millisecond
	for _, class := range Classes() {
		s := FromClass("f", class, solo, Python)
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		got := s.SoloLatency()
		if got < solo*95/100 || got > solo*105/100 {
			t.Errorf("%s: solo latency %v, want ~%v", class, got, solo)
		}
	}
	if got := FromClass("f", Factorial, solo, Python); got.TotalBlock() != 0 {
		t.Error("factorial must be pure CPU")
	}
	if got := FromClass("f", DiskHeavy, solo, Python); got.TotalBlock() < got.TotalCPU() {
		t.Error("disk-io must be block-dominated")
	}
}

func TestFromClassUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown class did not panic")
		}
	}()
	FromClass("f", Class("quantum"), time.Second, Python)
}

func TestRandomSpecsAreValidAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Random("r", rng, time.Millisecond, 50*time.Millisecond)
		if err := s.Validate(); err != nil {
			return false
		}
		solo := s.SoloLatency()
		// Rounding may shave a hair below the minimum; never above max.
		return solo > time.Millisecond/2 && solo <= 50*time.Millisecond+time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	a := Random("r", rand.New(rand.NewSource(7)), time.Millisecond, time.Second)
	b := Random("r", rand.New(rand.NewSource(7)), time.Millisecond, time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different specs")
	}
}
