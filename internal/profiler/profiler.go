// Package profiler implements Chiron's Profiler component (Section 3.2).
//
// For every function it performs a solo run without tracing (the latency
// baseline), then a traced run whose strace log it parses to extract block
// periods. Because tracing inflates the run, all periods are rescaled by
// the untraced/traced latency ratio, exactly as the paper describes:
// "Profiler scales down all block periods based on the average function
// latency recorded without strace." The output Profile is the only view of
// a function the Predictor and PGP ever see — prediction error therefore
// includes honest profiling error.
package profiler

import (
	"fmt"
	"math"
	"sort"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/obs"
	"chiron/internal/parallel"
	"chiron/internal/trace"
)

// Period is one rescaled block period within a solo run.
type Period struct {
	Start, End time.Duration
	Kind       behavior.SegmentKind
	Path       string
}

// Dur returns the period's length.
func (p Period) Dur() time.Duration { return p.End - p.Start }

// Profile is the Profiler's description of one function.
type Profile struct {
	Name string
	// Solo is the untraced solo-run latency.
	Solo time.Duration
	// Periods are the rescaled block periods, in time order.
	Periods []Period
	// Runtime, MemMB, OutputBytes and Files are deployment metadata
	// carried through from the registry.
	Runtime     behavior.Runtime
	MemMB       float64
	OutputBytes int64
	Files       []string
}

// CPUTime returns the solo CPU time implied by the profile: everything
// that is not a block period.
func (p *Profile) CPUTime() time.Duration {
	var block time.Duration
	for _, per := range p.Periods {
		block += per.Dur()
	}
	if block > p.Solo {
		return 0
	}
	return p.Solo - block
}

// Spec reconstructs the estimated behaviour spec the Predictor simulates:
// CPU segments fill the gaps between block periods. The reconstruction is
// close to, but not identical to, the function's true behaviour — that gap
// is part of Figure 12's prediction error.
func (p *Profile) Spec() *behavior.Spec {
	s := &behavior.Spec{
		Name:        p.Name,
		Runtime:     p.Runtime,
		MemMB:       p.MemMB,
		OutputBytes: p.OutputBytes,
		Files:       append([]string(nil), p.Files...),
	}
	cursor := time.Duration(0)
	for _, per := range p.Periods {
		if per.Start > cursor {
			s.Segments = append(s.Segments, behavior.Segment{Kind: behavior.CPU, Dur: per.Start - cursor})
		}
		d := per.Dur()
		if d <= 0 {
			d = time.Nanosecond
		}
		s.Segments = append(s.Segments, behavior.Segment{Kind: per.Kind, Dur: d})
		cursor = per.End
	}
	if cursor < p.Solo {
		s.Segments = append(s.Segments, behavior.Segment{Kind: behavior.CPU, Dur: p.Solo - cursor})
	}
	if len(s.Segments) == 0 {
		s.Segments = append(s.Segments, behavior.Segment{Kind: behavior.CPU, Dur: time.Nanosecond})
	}
	return s
}

// Options configure the Profiler.
type Options struct {
	// Overhead is the tracing perturbation applied during the strace run.
	Overhead trace.Overhead
	// Seed drives deterministic trace jitter.
	Seed int64
}

// DefaultOptions returns the standard profiling setup.
func DefaultOptions() Options {
	return Options{Overhead: trace.DefaultOverhead(), Seed: 1}
}

// profKey fingerprints ProfileFunction's inputs — the full spec content,
// the tracing overhead and the jitter seed — with two independent FNV
// streams (128 bits total) so the memo below cannot conflate two distinct
// profiling jobs.
type profKey struct{ h1, h2 uint64 }

const (
	profFNVOffset = uint64(14695981039346656037)
	profFNVPrime  = uint64(1099511628211)
)

func (k *profKey) byteIn(b byte) {
	k.h1 = (k.h1 ^ uint64(b)) * profFNVPrime // FNV-1a: xor then multiply
	k.h2 = (k.h2 * profFNVPrime) ^ uint64(b) // FNV-1: multiply then xor
}

func (k *profKey) word(v uint64) {
	for i := 0; i < 64; i += 8 {
		k.byteIn(byte(v >> i))
	}
}

// str folds a string followed by a 0x1f separator, so adjacent fields can
// never collide by shifting bytes across a boundary.
func (k *profKey) str(s string) {
	for i := 0; i < len(s); i++ {
		k.byteIn(s[i])
	}
	k.byteIn(0x1f)
}

func profKeyOf(spec *behavior.Spec, opt Options) profKey {
	k := profKey{h1: profFNVOffset, h2: profFNVOffset}
	k.str(spec.Name)
	k.str(string(spec.Runtime))
	k.word(math.Float64bits(spec.MemMB))
	k.word(uint64(spec.OutputBytes))
	k.word(uint64(len(spec.Files)))
	for _, f := range spec.Files {
		k.str(f)
	}
	k.word(uint64(len(spec.Segments)))
	for _, s := range spec.Segments {
		k.word(uint64(s.Kind))
		k.word(uint64(s.Dur))
		k.word(uint64(s.Bytes))
	}
	k.word(math.Float64bits(opt.Overhead.CPUFactor))
	k.word(math.Float64bits(opt.Overhead.BlockFactor))
	k.word(math.Float64bits(opt.Overhead.JitterPct))
	k.word(uint64(opt.Seed))
	return k
}

// profileCache memoizes ProfileFunction across the process. Profiling is a
// pure function of (spec content, overhead, seed) — trace.Record derives
// every jitter draw from the seed — so serving a repeat from the cache is
// byte-identical to recomputing it; experiments that profile the same
// workload (every figure shares the FINRA workflows) skip the dominant
// trace-record/parse cost. The cache holds the canonical copy; every
// caller receives a private clone on the way out, so callers may mutate
// what they receive.
//
// LRU is the benchmarked default (BENCH_pr8.json): the profile working
// set is small and strongly re-referenced (every figure shares the FINRA
// workflows), so probation/frequency machinery buys nothing here.
// ConfigureProfileCache swaps the policy or size at boot.
var profileCache = parallel.NewCachePolicyMetrics[profKey, *Profile](
	parallel.PolicyLRU, 4096, 8,
	func(k profKey) uint64 { return k.h1 }, obs.Default, "chiron_profile_cache")

// ConfigureProfileCache rebuilds the process-wide profiler memo with an
// explicit policy and capacity (capacity <= 0 keeps the default 4096).
// Call it at boot (chirond -profile-cache), before traffic: the swap is
// not synchronized with in-flight lookups.
func ConfigureProfileCache(policy parallel.Policy, capacity int) {
	if capacity <= 0 {
		capacity = 4096
	}
	profileCache = parallel.NewCachePolicyMetrics[profKey, *Profile](
		policy, capacity, 8,
		func(k profKey) uint64 { return k.h1 }, obs.Default, "chiron_profile_cache")
}

// CacheStats exposes the memo's counters (Shared counts concurrent misses
// deduplicated by the singleflight loader, so Misses - Shared is the
// number of profiles actually computed).
func CacheStats() parallel.CacheStats { return profileCache.Stats() }

// PurgeCache empties the memo (tests that measure cold-path behaviour).
func PurgeCache() { profileCache.Purge() }

func cloneProfile(p *Profile) *Profile {
	c := *p
	c.Periods = append([]Period(nil), p.Periods...)
	c.Files = append([]string(nil), p.Files...)
	return &c
}

// ProfileFunction profiles one function: untraced baseline, traced run,
// log parse, rescale. Results are memoized by full input content; see
// profileCache.
//
// The memo stores the winner's freshly computed Profile as the canonical
// copy — nobody else holds a reference to it — and clones once on every
// return path, so each call costs exactly one clone (the old scheme
// cloned on Put *and* on every Get). Concurrent misses on one key run
// profileFunction once through the cache's singleflight loader; a
// re-plan burst profiling an unchanged workload computes each function a
// single time.
func ProfileFunction(spec *behavior.Spec, opt Options) (*Profile, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	key := profKeyOf(spec, opt)
	if p, ok := profileCache.Get(key); ok {
		return cloneProfile(p), nil
	}
	p, _, err := profileCache.ComputeMissed(key, func() (*Profile, error) {
		return profileFunction(spec, opt)
	})
	if err != nil {
		return nil, err
	}
	return cloneProfile(p), nil
}

func profileFunction(spec *behavior.Spec, opt Options) (*Profile, error) {
	solo := spec.SoloLatency()

	rec := trace.Record(spec, opt.Overhead, opt.Seed)
	log := trace.FormatLog(rec)
	events, err := trace.ParseLog(log)
	if err != nil {
		return nil, fmt.Errorf("profiler: parsing strace log for %s: %w", spec.Name, err)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	scale := 1.0
	if rec.Total > 0 {
		scale = float64(solo) / float64(rec.Total)
	}
	p := &Profile{
		Name:        spec.Name,
		Solo:        solo,
		Runtime:     spec.Runtime,
		MemMB:       spec.MemMB,
		OutputBytes: spec.OutputBytes,
		Files:       append([]string(nil), spec.Files...),
	}
	for _, ev := range events {
		start := time.Duration(float64(ev.At) * scale)
		end := time.Duration(float64(ev.At+ev.Dur) * scale)
		if end > solo {
			end = solo
		}
		if end <= start {
			continue
		}
		p.Periods = append(p.Periods, Period{Start: start, End: end, Kind: ev.Kind(), Path: ev.Path})
	}
	return p, nil
}

// Set is a profiled workflow: one profile per function, keyed by name.
type Set map[string]*Profile

// ProfileWorkflow profiles every function of a workflow.
func ProfileWorkflow(w *dag.Workflow, opt Options) (Set, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	set := make(Set, w.NumFunctions())
	for i, fn := range w.Functions() {
		o := opt
		o.Seed = opt.Seed + int64(i)*104729
		p, err := ProfileFunction(fn, o)
		if err != nil {
			return nil, err
		}
		set[fn.Name] = p
	}
	return set, nil
}

// Specs returns the reconstructed specs for the named functions, in order.
// It errors on names missing from the set (a PGP/Predictor wiring bug).
func (s Set) Specs(names []string) ([]*behavior.Spec, error) {
	out := make([]*behavior.Spec, len(names))
	for i, n := range names {
		p, ok := s[n]
		if !ok {
			return nil, fmt.Errorf("profiler: no profile for function %q", n)
		}
		out[i] = p.Spec()
	}
	return out, nil
}
