package profiler

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/trace"
)

func mixedSpec() *behavior.Spec {
	return &behavior.Spec{
		Name: "handle", Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: 4 * time.Millisecond},
			{Kind: behavior.Sleep, Dur: 10 * time.Millisecond},
			{Kind: behavior.CPU, Dur: 2 * time.Millisecond},
			{Kind: behavior.DiskIO, Dur: 3 * time.Millisecond},
		},
		MemMB: 2, OutputBytes: 512, Files: []string{"/tmp/x"},
	}
}

func TestProfilePreservesSoloLatency(t *testing.T) {
	p, err := ProfileFunction(mixedSpec(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.Solo != mixedSpec().SoloLatency() {
		t.Fatalf("Solo = %v, want %v", p.Solo, mixedSpec().SoloLatency())
	}
	if len(p.Periods) != 2 {
		t.Fatalf("%d block periods, want 2", len(p.Periods))
	}
}

func TestRescalingBoundsPeriods(t *testing.T) {
	// Traced durations are inflated ~22%; after rescaling, everything
	// must fit inside the untraced solo latency.
	p, err := ProfileFunction(mixedSpec(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prevEnd := time.Duration(0)
	for i, per := range p.Periods {
		if per.Start < prevEnd {
			t.Errorf("period %d overlaps previous", i)
		}
		if per.End > p.Solo {
			t.Errorf("period %d ends at %v, beyond solo %v", i, per.End, p.Solo)
		}
		prevEnd = per.End
	}
	if p.CPUTime() <= 0 {
		t.Error("profile implies no CPU time")
	}
}

func TestRescaledBlockCloseToTruth(t *testing.T) {
	spec := mixedSpec()
	p, err := ProfileFunction(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var got time.Duration
	for _, per := range p.Periods {
		got += per.Dur()
	}
	truth := spec.TotalBlock()
	ratio := float64(got) / float64(truth)
	// The uniform rescale cannot fully undo differential CPU/block
	// inflation, but it should land within a few percent.
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("profiled block total %v vs truth %v (ratio %.3f)", got, truth, ratio)
	}
}

func TestSpecReconstruction(t *testing.T) {
	spec := mixedSpec()
	p, err := ProfileFunction(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rec := p.Spec()
	if err := rec.Validate(); err != nil {
		t.Fatalf("reconstructed spec invalid: %v", err)
	}
	if rec.SoloLatency() != p.Solo {
		t.Fatalf("reconstructed solo %v != profile solo %v", rec.SoloLatency(), p.Solo)
	}
	if rec.Runtime != spec.Runtime || rec.MemMB != spec.MemMB || rec.OutputBytes != spec.OutputBytes {
		t.Fatal("metadata not carried through")
	}
	// Kinds preserved in order.
	var kinds []behavior.SegmentKind
	for _, s := range rec.Segments {
		if s.Kind.Blocking() {
			kinds = append(kinds, s.Kind)
		}
	}
	if len(kinds) != 2 || kinds[0] != behavior.Sleep || kinds[1] != behavior.DiskIO {
		t.Fatalf("block kinds %v", kinds)
	}
}

func TestCPUOnlyFunctionProfile(t *testing.T) {
	spec := &behavior.Spec{
		Name: "fib", Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: 7 * time.Millisecond}},
		MemMB:    1,
	}
	p, err := ProfileFunction(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Periods) != 0 {
		t.Fatalf("CPU-only profile has %d periods", len(p.Periods))
	}
	rec := p.Spec()
	if rec.TotalCPU() != 7*time.Millisecond || rec.TotalBlock() != 0 {
		t.Fatalf("reconstruction = %v CPU / %v block", rec.TotalCPU(), rec.TotalBlock())
	}
}

func TestProfileWorkflow(t *testing.T) {
	w, err := dag.FromStages("wf", 0,
		[]*behavior.Spec{mixedSpec().Clone("a")},
		[]*behavior.Spec{mixedSpec().Clone("b"), mixedSpec().Clone("c")},
	)
	if err != nil {
		t.Fatal(err)
	}
	set, err := ProfileWorkflow(w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("profiled %d functions, want 3", len(set))
	}
	specs, err := set.Specs([]string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Name != "b" || specs[1].Name != "a" {
		t.Fatal("Specs order not preserved")
	}
	if _, err := set.Specs([]string{"ghost"}); err == nil {
		t.Fatal("missing profile not reported")
	}
}

func TestProfileFunctionRejectsInvalidSpec(t *testing.T) {
	bad := &behavior.Spec{Name: "", Runtime: behavior.Python}
	if _, err := ProfileFunction(bad, DefaultOptions()); err == nil {
		t.Fatal("invalid spec profiled without error")
	}
}

// TestPropertyReconstructionError: across random functions, the profiled
// reconstruction's CPU and block totals stay within 10% of the truth —
// tight enough for a useful white-box predictor, loose enough to be an
// honest error source.
func TestPropertyReconstructionError(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := behavior.Random("f", rng, 2*time.Millisecond, 50*time.Millisecond)
		p, err := ProfileFunction(spec, Options{Overhead: trace.DefaultOverhead(), Seed: seed})
		if err != nil {
			return false
		}
		rec := p.Spec()
		if rec.SoloLatency() != spec.SoloLatency() {
			return false
		}
		if spec.TotalBlock() == 0 {
			return rec.TotalBlock() == 0
		}
		// The uniform rescale cannot fully undo differential CPU/block
		// inflation: in the CPU-dominated limit the residual bias tends
		// to BlockFactor/CPUFactor = 1.22/1.03 ~= 1.18.
		ratio := float64(rec.TotalBlock()) / float64(spec.TotalBlock())
		return ratio > 0.82 && ratio < 1.20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestProfileMemoReturnsIndependentCopies checks the process-wide memo:
// a repeat profiling of identical inputs must give an equal result, and
// mutating what one caller received must never leak into another's.
func TestProfileMemoReturnsIndependentCopies(t *testing.T) {
	spec := mixedSpec()
	spec.Name = "memo-copy-probe"
	p1, err := ProfileFunction(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ProfileFunction(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("memo returned the same *Profile twice; callers must get private copies")
	}
	if p1.Solo != p2.Solo || len(p1.Periods) != len(p2.Periods) {
		t.Fatalf("memoized profile differs: %+v vs %+v", p1, p2)
	}
	for i := range p1.Periods {
		if p1.Periods[i] != p2.Periods[i] {
			t.Fatalf("period %d differs: %+v vs %+v", i, p1.Periods[i], p2.Periods[i])
		}
	}
	p1.Periods[0].Start += time.Millisecond
	p1.Files[0] = "/tmp/poison"
	p3, err := ProfileFunction(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p3.Periods[0] != p2.Periods[0] || p3.Files[0] != p2.Files[0] {
		t.Fatal("caller mutation leaked into the memoized profile")
	}
}

// TestProfileMemoKeySensitivity checks that every input the profile
// depends on is part of the memo key: perturbing it must change the key.
func TestProfileMemoKeySensitivity(t *testing.T) {
	base := mixedSpec()
	opt := DefaultOptions()
	k0 := profKeyOf(base, opt)

	perturb := []struct {
		name string
		spec func(*behavior.Spec)
		opt  func(*Options)
	}{
		{name: "name", spec: func(s *behavior.Spec) { s.Name = "other" }},
		{name: "runtime", spec: func(s *behavior.Spec) { s.Runtime = behavior.NodeJS }},
		{name: "memmb", spec: func(s *behavior.Spec) { s.MemMB = 4 }},
		{name: "output", spec: func(s *behavior.Spec) { s.OutputBytes = 1 }},
		{name: "files", spec: func(s *behavior.Spec) { s.Files = []string{"/tmp/y"} }},
		{name: "seg-dur", spec: func(s *behavior.Spec) { s.Segments[0].Dur += time.Microsecond }},
		{name: "seg-kind", spec: func(s *behavior.Spec) { s.Segments[0].Kind = behavior.NetIO }},
		{name: "seg-bytes", spec: func(s *behavior.Spec) { s.Segments[3].Bytes = 7 }},
		{name: "seed", opt: func(o *Options) { o.Seed = 2 }},
		{name: "jitter", opt: func(o *Options) { o.Overhead.JitterPct = 0.5 }},
		{name: "cpu-factor", opt: func(o *Options) { o.Overhead.CPUFactor = 1.5 }},
		{name: "block-factor", opt: func(o *Options) { o.Overhead.BlockFactor = 1.5 }},
	}
	for _, pt := range perturb {
		s := mixedSpec()
		o := DefaultOptions()
		if pt.spec != nil {
			pt.spec(s)
		}
		if pt.opt != nil {
			pt.opt(&o)
		}
		if profKeyOf(s, o) == k0 {
			t.Errorf("%s: perturbed input produced the same memo key", pt.name)
		}
	}

	// Field-boundary probe: moving a byte across the name/runtime
	// boundary must not collide.
	a := mixedSpec()
	a.Name = "ab"
	a.Runtime = behavior.Runtime("c")
	b := mixedSpec()
	b.Name = "a"
	b.Runtime = behavior.Runtime("bc")
	if profKeyOf(a, opt) == profKeyOf(b, opt) {
		t.Error("name/runtime boundary shift collided")
	}
}

// TestProfileCacheStampede is the PR-8 acceptance proof for the profiler
// memo: 100 goroutines profiling the same cold spec trace it exactly once
// (loader executions = Misses - Shared), and every caller still receives
// a private clone — equal content, distinct pointers — so the memo's
// canonical copy can never be mutated through a returned profile.
func TestProfileCacheStampede(t *testing.T) {
	spec := mixedSpec()
	spec.Name = "stampede-profile"
	opt := DefaultOptions()
	PurgeCache()
	before := CacheStats()

	const goroutines = 100
	var entered, wg sync.WaitGroup
	entered.Add(goroutines)
	start := make(chan struct{})
	profiles := make([]*Profile, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Done()
			<-start
			p, err := ProfileFunction(spec, opt)
			if err != nil {
				t.Error(err)
				return
			}
			profiles[i] = p
		}(i)
	}
	entered.Wait()
	close(start)
	wg.Wait()

	after := CacheStats()
	if ran := (after.Misses - before.Misses) - (after.Shared - before.Shared); ran != 1 {
		t.Fatalf("profiles computed = %d (misses %d, shared %d), want exactly 1",
			ran, after.Misses-before.Misses, after.Shared-before.Shared)
	}
	for i := 1; i < goroutines; i++ {
		if profiles[i] == profiles[0] {
			t.Fatalf("goroutines 0 and %d share a *Profile: cache leaked its canonical copy", i)
		}
		if profiles[i].Solo != profiles[0].Solo || len(profiles[i].Periods) != len(profiles[0].Periods) {
			t.Fatalf("clone %d diverges from clone 0", i)
		}
	}
	// Mutating a returned clone must not poison the cached canonical.
	profiles[0].Solo = -1
	fresh, err := ProfileFunction(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Solo != profiles[1].Solo {
		t.Fatalf("mutation through a returned clone reached the cache: Solo = %v", fresh.Solo)
	}
}

// TestProfileFunctionSingleCloneOnHit pins the double-clone fix: a warm
// ProfileFunction call clones once on the way out, so its allocation
// count stays flat at the size of one profile copy.
func TestProfileFunctionSingleCloneOnHit(t *testing.T) {
	spec := mixedSpec()
	spec.Name = "clone-count"
	opt := DefaultOptions()
	if _, err := ProfileFunction(spec, opt); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(100, func() {
		if _, err := ProfileFunction(spec, opt); err != nil {
			t.Fatal(err)
		}
	})
	// One clone = the Profile struct plus its Periods and PerThread
	// slices; a second (pre-fix) clone doubles that. Budget generously
	// under the doubled figure.
	if warm > 8 {
		t.Fatalf("warm ProfileFunction allocates %.1f allocs/run, want single-clone budget (<=8)", warm)
	}
}
