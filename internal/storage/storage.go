// Package storage provides the intermediate-data stores serverless
// workflows use to pass state between stages.
//
// Two families live here:
//
//   - SimStore: a virtual-time object store whose Put/Get return the
//     latency the operation would cost over a given netsim.Profile. The
//     engine charges these on the critical path (Figure 4's experiment is
//     exactly a sweep of SimStore latencies).
//   - MemStore and the TCP server in tcp.go: real stores for the live
//     executor and the examples, exercising actual bytes.
package storage

import (
	"fmt"
	"sync"
	"time"

	"chiron/internal/netsim"
)

// SimStore is a virtual-time object store. It tracks object sizes so a
// consumer's Get is priced by what the producer actually stored. It is safe
// for concurrent use.
type SimStore struct {
	prof netsim.Profile

	mu      sync.Mutex
	objects map[string]int64
	puts    int
	gets    int
}

// NewSim returns an empty store over the given medium.
func NewSim(p netsim.Profile) *SimStore {
	return &SimStore{prof: p, objects: make(map[string]int64)}
}

// Profile returns the medium this store is priced on.
func (s *SimStore) Profile() netsim.Profile { return s.prof }

// Put records an object of n bytes and returns the virtual cost of writing
// it.
func (s *SimStore) Put(key string, n int64) time.Duration {
	if n < 0 {
		panic(fmt.Sprintf("storage: negative object size %d", n))
	}
	s.mu.Lock()
	s.objects[key] = n
	s.puts++
	s.mu.Unlock()
	return s.prof.Transfer(n)
}

// Get returns the stored size and the virtual cost of reading it. Reading
// a missing key returns an error (workflow wiring bug).
func (s *SimStore) Get(key string) (int64, time.Duration, error) {
	s.mu.Lock()
	n, ok := s.objects[key]
	if ok {
		s.gets++
	}
	s.mu.Unlock()
	if !ok {
		return 0, 0, fmt.Errorf("storage: object %q not found", key)
	}
	return n, s.prof.Transfer(n), nil
}

// RoundTrip prices a produce/consume handoff of n bytes (one Put + one
// Get) without mutating the store; the engine uses it for ephemeral
// intermediates.
func (s *SimStore) RoundTrip(n int64) time.Duration {
	return s.prof.Transfer(n) * 2
}

// Stats reports operation counts (for tests and resource accounting).
func (s *SimStore) Stats() (puts, gets int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.puts, s.gets
}

// MemStore is a real in-memory KV store used by the live executor: actual
// byte slices, actual copies, safe for concurrent use.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMem returns an empty MemStore.
func NewMem() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Put stores a copy of val under key.
func (s *MemStore) Put(key string, val []byte) {
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
}

// Get returns a copy of the value, or an error if absent.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: object %q not found", key)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}

// Delete removes a key (idempotent).
func (s *MemStore) Delete(key string) {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
}

// Len returns the number of stored objects.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
