package storage

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// TCPServer exposes a MemStore over a minimal line-oriented TCP protocol,
// standing in for the MinIO endpoint of the paper's local cluster so the
// live examples exercise a real network hop:
//
//	PUT <key> <size>\n<size raw bytes>   -> OK 0\n
//	GET <key>\n                          -> OK <size>\n<raw bytes> | ERR <msg>\n
//	DEL <key>\n                          -> OK 0\n
//
// Keys must not contain whitespace.
type TCPServer struct {
	store *MemStore
	ln    net.Listener
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// ServeTCP starts a server on addr (use "127.0.0.1:0" for an ephemeral
// port) backed by the given store.
func ServeTCP(addr string, store *MemStore) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{store: store, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for in-flight connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

func (s *TCPServer) serve(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "PUT":
			if len(fields) != 3 {
				writeErr(w, "PUT needs key and size")
				continue
			}
			n, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || n < 0 || n > 1<<30 {
				writeErr(w, "bad size")
				continue
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(r, buf); err != nil {
				return
			}
			s.store.Put(fields[1], buf)
			writeOK(w, nil)
		case "GET":
			if len(fields) != 2 {
				writeErr(w, "GET needs key")
				continue
			}
			v, err := s.store.Get(fields[1])
			if err != nil {
				writeErr(w, "not found")
				continue
			}
			writeOK(w, v)
		case "DEL":
			if len(fields) != 2 {
				writeErr(w, "DEL needs key")
				continue
			}
			s.store.Delete(fields[1])
			writeOK(w, nil)
		default:
			writeErr(w, "unknown command")
		}
	}
}

func writeOK(w *bufio.Writer, payload []byte) {
	fmt.Fprintf(w, "OK %d\n", len(payload))
	w.Write(payload)
	w.Flush()
}

func writeErr(w *bufio.Writer, msg string) {
	fmt.Fprintf(w, "ERR %s\n", msg)
	w.Flush()
}

// TCPClient is a single-connection client for TCPServer. It is safe for
// concurrent use (operations are serialized on the connection).
type TCPClient struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

// DialTCP connects to a TCPServer.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPClient{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close tears down the connection.
func (c *TCPClient) Close() error { return c.conn.Close() }

// Put stores val under key.
func (c *TCPClient) Put(key string, val []byte) error {
	if strings.ContainsAny(key, " \t\n") {
		return fmt.Errorf("storage: key %q contains whitespace", key)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "PUT %s %d\n", key, len(val)); err != nil {
		return err
	}
	if _, err := c.conn.Write(val); err != nil {
		return err
	}
	_, err := c.readReply()
	return err
}

// Get fetches the value stored under key.
func (c *TCPClient) Get(key string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "GET %s\n", key); err != nil {
		return nil, err
	}
	return c.readReply()
}

// Delete removes key.
func (c *TCPClient) Delete(key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "DEL %s\n", key); err != nil {
		return err
	}
	_, err := c.readReply()
	return err
}

func (c *TCPClient) readReply() ([]byte, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	line = strings.TrimSpace(line)
	switch {
	case strings.HasPrefix(line, "OK "):
		n, err := strconv.Atoi(strings.TrimPrefix(line, "OK "))
		if err != nil {
			return nil, fmt.Errorf("storage: malformed reply %q", line)
		}
		if n == 0 {
			return nil, nil
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	case strings.HasPrefix(line, "ERR "):
		return nil, fmt.Errorf("storage: %s", strings.TrimPrefix(line, "ERR "))
	default:
		return nil, fmt.Errorf("storage: malformed reply %q", line)
	}
}
