package storage

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultIOTimeout is the per-operation deadline applied to server
// handlers and clients unless overridden: a peer that stalls mid-command
// (or goes silent between commands) is disconnected instead of wedging a
// handler goroutine forever.
const DefaultIOTimeout = 30 * time.Second

// TCPServer exposes a MemStore over a minimal line-oriented TCP protocol,
// standing in for the MinIO endpoint of the paper's local cluster so the
// live examples exercise a real network hop:
//
//	PUT <key> <size>\n<size raw bytes>   -> OK 0\n
//	GET <key>\n                          -> OK <size>\n<raw bytes> | ERR <msg>\n
//	DEL <key>\n                          -> OK 0\n
//
// Keys must not contain whitespace.
//
// Every read and write on an accepted connection carries a deadline
// (DefaultIOTimeout unless set via ServeTCPTimeout), and reply writes are
// error-checked: a stalled or half-closed peer gets its connection torn
// down after the timeout rather than pinning a goroutine.
type TCPServer struct {
	store   *MemStore
	ln      net.Listener
	timeout time.Duration
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// ServeTCP starts a server on addr (use "127.0.0.1:0" for an ephemeral
// port) backed by the given store, with the default I/O timeout.
func ServeTCP(addr string, store *MemStore) (*TCPServer, error) {
	return ServeTCPTimeout(addr, store, DefaultIOTimeout)
}

// ServeTCPTimeout starts a server whose per-operation read/write
// deadline is ioTimeout (<= 0 means no deadline; only tests should want
// that).
func ServeTCPTimeout(addr string, store *MemStore, ioTimeout time.Duration) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{store: store, ln: ln, timeout: ioTimeout}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for in-flight connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

// extendDeadline arms the per-operation deadline before a blocking read
// or write. An error (connection already dead) aborts the handler.
func (s *TCPServer) extendDeadline(conn net.Conn) bool {
	if s.timeout <= 0 {
		return true
	}
	return conn.SetDeadline(time.Now().Add(s.timeout)) == nil
}

func (s *TCPServer) serve(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if !s.extendDeadline(conn) {
			return
		}
		line, err := r.ReadString('\n')
		if err != nil {
			// EOF, timeout or reset: either way the conversation is over.
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		var replyErr error
		switch fields[0] {
		case "PUT":
			if len(fields) != 3 {
				replyErr = writeErr(w, "PUT needs key and size")
				break
			}
			n, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || n < 0 || n > 1<<30 {
				replyErr = writeErr(w, "bad size")
				break
			}
			buf := make([]byte, n)
			// The payload read is covered by the same deadline as the
			// command line: a peer that sends "PUT k 100" and stalls is
			// cut off, not waited on forever.
			if _, err := io.ReadFull(r, buf); err != nil {
				return
			}
			s.store.Put(fields[1], buf)
			replyErr = writeOK(w, nil)
		case "GET":
			if len(fields) != 2 {
				replyErr = writeErr(w, "GET needs key")
				break
			}
			v, err := s.store.Get(fields[1])
			if err != nil {
				replyErr = writeErr(w, "not found")
				break
			}
			replyErr = writeOK(w, v)
		case "DEL":
			if len(fields) != 2 {
				replyErr = writeErr(w, "DEL needs key")
				break
			}
			s.store.Delete(fields[1])
			replyErr = writeOK(w, nil)
		default:
			replyErr = writeErr(w, "unknown command")
		}
		if replyErr != nil {
			// Partial or failed write: the peer's read side is gone or
			// stalled past the deadline; drop the connection rather than
			// desynchronize the protocol.
			return
		}
	}
}

// writeOK sends "OK <n>\n<payload>" and reports the first write error
// (bufio latches partial-write failures until Flush, so checking Flush
// catches a short write anywhere in the reply).
func writeOK(w *bufio.Writer, payload []byte) error {
	if _, err := fmt.Fprintf(w, "OK %d\n", len(payload)); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

func writeErr(w *bufio.Writer, msg string) error {
	if _, err := fmt.Fprintf(w, "ERR %s\n", msg); err != nil {
		return err
	}
	return w.Flush()
}

// TCPClient is a single-connection client for TCPServer. It is safe for
// concurrent use (operations are serialized on the connection). Every
// operation carries a deadline so a stalled server surfaces as a timeout
// error instead of a hung caller.
type TCPClient struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	timeout time.Duration
}

// DialTCP connects to a TCPServer with the default I/O timeout.
func DialTCP(addr string) (*TCPClient, error) {
	return DialTCPTimeout(addr, DefaultIOTimeout)
}

// DialTCPTimeout connects with an explicit per-operation deadline
// (also used as the dial timeout; <= 0 disables deadlines).
func DialTCPTimeout(addr string, timeout time.Duration) (*TCPClient, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPClient{conn: conn, r: bufio.NewReader(conn), timeout: timeout}, nil
}

// Close tears down the connection.
func (c *TCPClient) Close() error { return c.conn.Close() }

// arm sets the whole-operation deadline; callers hold c.mu.
func (c *TCPClient) arm() error {
	if c.timeout <= 0 {
		return nil
	}
	return c.conn.SetDeadline(time.Now().Add(c.timeout))
}

// Put stores val under key.
func (c *TCPClient) Put(key string, val []byte) error {
	if strings.ContainsAny(key, " \t\n") {
		return fmt.Errorf("storage: key %q contains whitespace", key)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.arm(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(c.conn, "PUT %s %d\n", key, len(val)); err != nil {
		return err
	}
	if err := writeFull(c.conn, val); err != nil {
		return err
	}
	_, err := c.readReply()
	return err
}

// Get fetches the value stored under key.
func (c *TCPClient) Get(key string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.arm(); err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(c.conn, "GET %s\n", key); err != nil {
		return nil, err
	}
	return c.readReply()
}

// Delete removes key.
func (c *TCPClient) Delete(key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.arm(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(c.conn, "DEL %s\n", key); err != nil {
		return err
	}
	_, err := c.readReply()
	return err
}

// writeFull writes all of b, looping over short writes (net.Conn.Write
// contractually returns a non-nil error on n < len(b), but looping keeps
// the invariant explicit and guards non-TCP Conn implementations).
func writeFull(w io.Writer, b []byte) error {
	for len(b) > 0 {
		n, err := w.Write(b)
		if err != nil {
			return err
		}
		b = b[n:]
	}
	return nil
}

func (c *TCPClient) readReply() ([]byte, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	line = strings.TrimSpace(line)
	switch {
	case strings.HasPrefix(line, "OK "):
		n, err := strconv.Atoi(strings.TrimPrefix(line, "OK "))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("storage: malformed reply %q", line)
		}
		if n == 0 {
			return nil, nil
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	case strings.HasPrefix(line, "ERR "):
		return nil, fmt.Errorf("storage: %s", strings.TrimPrefix(line, "ERR "))
	default:
		return nil, fmt.Errorf("storage: malformed reply %q", line)
	}
}
