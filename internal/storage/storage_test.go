package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"chiron/internal/model"
	"chiron/internal/netsim"
)

func TestSimStorePutGet(t *testing.T) {
	s := NewSim(netsim.LocalMinIO(model.Default()))
	putCost := s.Put("stage1/out", 1<<20)
	if putCost <= 0 {
		t.Fatal("Put returned zero cost")
	}
	n, getCost, err := s.Get("stage1/out")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1<<20 {
		t.Fatalf("size %d, want 1MiB", n)
	}
	if getCost != putCost {
		t.Fatalf("get cost %v != put cost %v for same size", getCost, putCost)
	}
	if _, _, err := s.Get("missing"); err == nil {
		t.Fatal("missing key did not error")
	}
	puts, gets := s.Stats()
	if puts != 1 || gets != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", puts, gets)
	}
}

func TestSimStoreRoundTrip(t *testing.T) {
	s := NewSim(netsim.AWSS3(model.Default()))
	if got, want := s.RoundTrip(0), s.Profile().Transfer(0)*2; got != want {
		t.Fatalf("RoundTrip(0) = %v, want %v", got, want)
	}
}

func TestSimStoreConcurrentAccess(t *testing.T) {
	s := NewSim(netsim.SharedMemory())
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			s.Put(key, int64(i))
			if _, _, err := s.Get(key); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	puts, gets := s.Stats()
	if puts != 32 || gets != 32 {
		t.Fatalf("stats = %d/%d, want 32/32", puts, gets)
	}
}

func TestMemStoreCopiesValues(t *testing.T) {
	s := NewMem()
	v := []byte("hello")
	s.Put("k", v)
	v[0] = 'X' // caller mutation must not leak in
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("stored value corrupted: %q", got)
	}
	got[0] = 'Y' // returned copy mutation must not leak back
	again, _ := s.Get("k")
	if !bytes.Equal(again, []byte("hello")) {
		t.Fatalf("returned slice aliases store: %q", again)
	}
	s.Delete("k")
	if _, err := s.Get("k"); err == nil {
		t.Fatal("deleted key still readable")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete", s.Len())
	}
}

func TestTCPStoreEndToEnd(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := bytes.Repeat([]byte("finra-trade-"), 1000)
	if err := c.Put("trades/batch-1", payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("trades/batch-1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %d bytes vs %d", len(got), len(payload))
	}
	if _, err := c.Get("missing"); err == nil {
		t.Fatal("GET of missing key did not error")
	}
	if err := c.Delete("trades/batch-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("trades/batch-1"); err == nil {
		t.Fatal("deleted key still readable over TCP")
	}
}

func TestTCPStoreEmptyValueAndBadKey(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty value came back as %d bytes", len(got))
	}
	if err := c.Put("has space", []byte("x")); err == nil {
		t.Fatal("whitespace key accepted")
	}
}

func TestTCPStoreConcurrentClients(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialTCP(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			key := fmt.Sprintf("k%d", i)
			want := bytes.Repeat([]byte{byte(i)}, 100+i)
			if err := c.Put(key, want); err != nil {
				errs <- err
				return
			}
			got, err := c.Get(key)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("client %d: payload mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
