package storage

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// A peer that sends a PUT header and then stalls must be disconnected
// once the server's I/O deadline lapses, instead of pinning a handler
// goroutine forever.
func TestTCPServerDisconnectsStalledPeer(t *testing.T) {
	srv, err := ServeTCPTimeout("127.0.0.1:0", NewMem(), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Promise 100 payload bytes, deliver none.
	if _, err := io.WriteString(conn, "PUT stall 100\n"); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
		t.Fatal("server replied to a stalled PUT instead of dropping the connection")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stalled peer kept the connection for %v", elapsed)
	}
}

// An idle peer (connected, never sends a command) is likewise evicted at
// the deadline, so Close never waits on dead conversations.
func TestTCPServerEvictsIdlePeer(t *testing.T) {
	srv, err := ServeTCPTimeout("127.0.0.1:0", NewMem(), 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Give the handler a beat to arm the deadline and trip it.
	time.Sleep(100 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on an idle connection")
	}
}

// A client talking to a server that never replies must surface a timeout
// error from its per-operation deadline rather than hanging.
func TestTCPClientOperationTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow everything, reply with nothing.
			go func() { _, _ = io.Copy(io.Discard, conn) }()
		}
	}()

	c, err := DialTCPTimeout(ln.Addr().String(), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Get("k")
	if err == nil {
		t.Fatal("Get against a mute server returned nil error")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("error %v is not a net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Get hung for %v despite the 50ms deadline", elapsed)
	}
}

// writeFull must loop over short writes.
func TestWriteFullLoopsOverShortWrites(t *testing.T) {
	w := &trickleWriter{}
	payload := []byte("hello, short writes")
	if err := writeFull(w, payload); err != nil {
		t.Fatal(err)
	}
	if got := w.buf.String(); got != string(payload) {
		t.Fatalf("wrote %q, want %q", got, payload)
	}
	if w.calls < len(payload) {
		t.Fatalf("trickle writer called %d times for %d bytes", w.calls, len(payload))
	}
}

type trickleWriter struct {
	buf   strings.Builder
	calls int
}

// Write accepts at most one byte per call (a legal but degenerate
// io.Writer that plain conn.Write-style calls would mishandle).
func (w *trickleWriter) Write(p []byte) (int, error) {
	w.calls++
	if len(p) == 0 {
		return 0, nil
	}
	w.buf.WriteByte(p[0])
	return 1, nil
}
