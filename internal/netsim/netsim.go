// Package netsim models the interaction fabrics of Observation 1: what it
// costs to move a payload of a given size between two serverless functions
// over each medium the paper measures (Figure 4), from AWS Lambda + S3 down
// to same-process shared memory.
package netsim

import (
	"fmt"
	"time"

	"chiron/internal/model"
)

// Profile is a latency/bandwidth model for one interaction medium.
type Profile struct {
	// Name identifies the medium in reports.
	Name string
	// Base is the size-independent floor: connection setup, request
	// framing, storage-service request handling.
	Base time.Duration
	// MBps is the sustained payload bandwidth; zero means size-free
	// (shared memory).
	MBps float64
}

// Transfer returns the time to move n bytes over the medium.
func (p Profile) Transfer(n int64) time.Duration {
	if n < 0 {
		panic(fmt.Sprintf("netsim: negative transfer size %d", n))
	}
	d := p.Base
	if p.MBps > 0 {
		d += time.Duration(float64(n) / (p.MBps * 1e6) * float64(time.Second))
	}
	return d
}

// AWSS3 models function interaction through Amazon S3 from AWS Lambda
// ("even the smallest data transfer can take up to 52 ms ... for 1 GB data
// the overhead can reach up-to 25 s").
func AWSS3(c model.Constants) Profile {
	return Profile{Name: "asf+s3", Base: c.S3BaseLatency, MBps: c.S3BandwidthMBps}
}

// LocalMinIO models interaction through MinIO on the paper's 10 GbE local
// cluster ("the interaction overhead still range from 10 ms to 10 s").
func LocalMinIO(c model.Constants) Profile {
	return Profile{Name: "openfaas+minio", Base: c.MinIOBaseLatency, MBps: c.MinIOBandwidthMBps}
}

// ClusterRPC models one direct sandbox-to-sandbox HTTP invocation on the
// local cluster (Eq. 2's T_RPC); payloads ride the same 10 GbE link.
func ClusterRPC(c model.Constants) Profile {
	return Profile{Name: "cluster-rpc", Base: c.RPCCost, MBps: 1100}
}

// Pipe models parent/child pipe IPC inside one sandbox (Eq. 3's T_IPC).
func Pipe(c model.Constants) Profile {
	return Profile{Name: "pipe", Base: c.IPCCost, MBps: 2800}
}

// SharedMemory models thread interaction through load/store instructions:
// the paper treats it as free ("no interaction time for thread
// communication within a process due to the shared memory").
func SharedMemory() Profile { return Profile{Name: "shared-memory"} }
