package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"chiron/internal/model"
)

func TestS3CalibrationMatchesFigure4(t *testing.T) {
	p := AWSS3(model.Default())
	// "even the smallest data transfer can take up to 52ms"
	if got := p.Transfer(1); got < 50*time.Millisecond || got > 55*time.Millisecond {
		t.Errorf("1B over S3 = %v, want ~52ms", got)
	}
	// "For 1GB data, the overhead can reach up-to 25s"
	if got := p.Transfer(1 << 30); got < 20*time.Second || got > 30*time.Second {
		t.Errorf("1GB over S3 = %v, want ~25s", got)
	}
}

func TestMinIOCalibrationMatchesFigure4(t *testing.T) {
	p := LocalMinIO(model.Default())
	// "the interaction overhead still range from 10 ms to 10 s"
	if got := p.Transfer(1); got < 8*time.Millisecond || got > 15*time.Millisecond {
		t.Errorf("1B over MinIO = %v, want ~10ms", got)
	}
	if got := p.Transfer(1 << 30); got < 8*time.Second || got > 12*time.Second {
		t.Errorf("1GB over MinIO = %v, want ~10s", got)
	}
}

func TestSharedMemoryIsFree(t *testing.T) {
	p := SharedMemory()
	if got := p.Transfer(1 << 30); got != 0 {
		t.Errorf("shared memory transfer = %v, want 0", got)
	}
}

func TestMediaOrdering(t *testing.T) {
	// For any payload, the media must be strictly ordered by cost:
	// shared memory < pipe < cluster RPC < MinIO < S3 (at small sizes).
	c := model.Default()
	sizes := []int64{0, 1, 1 << 10, 1 << 20}
	for _, n := range sizes {
		sm := SharedMemory().Transfer(n)
		pipe := Pipe(c).Transfer(n)
		rpc := ClusterRPC(c).Transfer(n)
		minio := LocalMinIO(c).Transfer(n)
		s3 := AWSS3(c).Transfer(n)
		if !(sm < pipe && pipe < rpc && minio < s3) {
			t.Errorf("size %d: ordering broken: shm=%v pipe=%v rpc=%v minio=%v s3=%v", n, sm, pipe, rpc, minio, s3)
		}
	}
}

func TestTransferMonotoneInSize(t *testing.T) {
	c := model.Default()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		p := LocalMinIO(c)
		return p.Transfer(x) <= p.Transfer(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size did not panic")
		}
	}()
	SharedMemory().Transfer(-1)
}
