package dag

import (
	"encoding/json"
	"testing"
	"time"

	"chiron/internal/behavior"
)

func fn(name string) *behavior.Spec {
	return &behavior.Spec{
		Name:    name,
		Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: time.Millisecond},
		},
		MemMB: 1,
	}
}

func twoStage(t *testing.T) *Workflow {
	t.Helper()
	w, err := FromStages("finra", 200*time.Millisecond,
		[]*behavior.Spec{fn("fetch")},
		[]*behavior.Spec{fn("v1"), fn("v2"), fn("v3")},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBasicAccessors(t *testing.T) {
	w := twoStage(t)
	if got := w.NumFunctions(); got != 4 {
		t.Errorf("NumFunctions = %d, want 4", got)
	}
	if got := w.MaxParallelism(); got != 3 {
		t.Errorf("MaxParallelism = %d, want 3", got)
	}
	if got := len(w.Functions()); got != 4 {
		t.Errorf("Functions() returned %d specs", got)
	}
	if w.Lookup("v2") == nil || w.Lookup("nope") != nil {
		t.Error("Lookup misbehaved")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Workflow)
	}{
		{"empty name", func(w *Workflow) { w.Name = "" }},
		{"no stages", func(w *Workflow) { w.Stages = nil }},
		{"empty stage", func(w *Workflow) { w.Stages[1].Functions = nil }},
		{"duplicate function", func(w *Workflow) { w.Stages[1].Functions[1] = w.Stages[0].Functions[0] }},
		{"invalid spec", func(w *Workflow) { w.Stages[0].Functions[0].Segments = nil }},
		{"negative slo", func(w *Workflow) { w.SLO = -time.Second }},
	}
	for _, tc := range cases {
		w := twoStage(t)
		tc.mut(w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid workflow", tc.name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	w := twoStage(t)
	c := w.Clone()
	c.Stages[0].Functions[0].Segments[0].Dur = time.Hour
	if w.Stages[0].Functions[0].Segments[0].Dur == time.Hour {
		t.Fatal("Clone shares specs with original")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := twoStage(t)
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Workflow
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != w.Name || back.SLO != w.SLO || back.NumFunctions() != w.NumFunctions() {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestUnmarshalValidates(t *testing.T) {
	var w Workflow
	if err := json.Unmarshal([]byte(`{"name":"","stages":[]}`), &w); err == nil {
		t.Fatal("invalid workflow decoded without error")
	}
}

func TestLevelDiamond(t *testing.T) {
	// a -> (b, c) -> d : the classic diamond must level into 3 stages.
	g := &Graph{
		Name: "diamond",
		Nodes: []Node{
			{Spec: fn("d"), Deps: []string{"b", "c"}},
			{Spec: fn("a")},
			{Spec: fn("b"), Deps: []string{"a"}},
			{Spec: fn("c"), Deps: []string{"a"}},
		},
		SLO: time.Second,
	}
	w, err := g.Level()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Stages) != 3 {
		t.Fatalf("levelled into %d stages, want 3", len(w.Stages))
	}
	if w.Stages[0].Functions[0].Name != "a" {
		t.Errorf("stage 0 = %s, want a", w.Stages[0].Functions[0].Name)
	}
	if w.Stages[1].Parallelism() != 2 {
		t.Errorf("stage 1 parallelism %d, want 2", w.Stages[1].Parallelism())
	}
	if w.Stages[2].Functions[0].Name != "d" {
		t.Errorf("stage 2 = %s, want d", w.Stages[2].Functions[0].Name)
	}
	if w.SLO != time.Second {
		t.Errorf("SLO not carried through levelling")
	}
}

func TestLevelPreservesSubmissionOrderWithinStage(t *testing.T) {
	g := &Graph{Name: "wide", Nodes: []Node{
		{Spec: fn("z")}, {Spec: fn("a")}, {Spec: fn("m")},
	}}
	w, err := g.Level()
	if err != nil {
		t.Fatal(err)
	}
	got := []string{}
	for _, f := range w.Stages[0].Functions {
		got = append(got, f.Name)
	}
	if got[0] != "z" || got[1] != "a" || got[2] != "m" {
		t.Fatalf("stage order %v, want submission order [z a m]", got)
	}
}

func TestLevelDetectsCycle(t *testing.T) {
	g := &Graph{Name: "loop", Nodes: []Node{
		{Spec: fn("a"), Deps: []string{"b"}},
		{Spec: fn("b"), Deps: []string{"a"}},
	}}
	if _, err := g.Level(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestLevelDetectsUnknownDep(t *testing.T) {
	g := &Graph{Name: "bad", Nodes: []Node{
		{Spec: fn("a"), Deps: []string{"ghost"}},
	}}
	if _, err := g.Level(); err == nil {
		t.Fatal("unknown dependency not detected")
	}
}

func TestLevelDetectsDuplicatesAndNilSpecs(t *testing.T) {
	g := &Graph{Name: "dup", Nodes: []Node{{Spec: fn("a")}, {Spec: fn("a")}}}
	if _, err := g.Level(); err == nil {
		t.Fatal("duplicate node not detected")
	}
	g = &Graph{Name: "nil", Nodes: []Node{{Spec: nil}}}
	if _, err := g.Level(); err == nil {
		t.Fatal("nil spec not detected")
	}
}

func TestFromStagesRejectsInvalid(t *testing.T) {
	if _, err := FromStages("w", 0); err == nil {
		t.Fatal("FromStages with no stages should fail")
	}
}
