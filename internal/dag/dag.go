// Package dag models serverless workflows.
//
// A workflow is a directed acyclic graph of functions. Like the paper
// (Section 3.3), we exploit that serverless orchestrators execute such a
// graph as "a sequence of execution stages, wherein each stage includes one
// or more parallel functions": the canonical in-memory form is the staged
// form, and general DAGs are levelled into stages by topological depth.
package dag

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"chiron/internal/behavior"
)

// ErrInvalid marks every workflow/graph shape failure (empty stages,
// duplicate functions, cycles, dangling dependencies). Callers classify
// with errors.Is(err, dag.ErrInvalid) instead of matching error text.
var ErrInvalid = errors.New("dag: invalid workflow")

// Stage is one rank of the workflow: all functions in a stage may run in
// parallel; consecutive stages are strictly ordered.
type Stage struct {
	Functions []*behavior.Spec `json:"functions"`
}

// Parallelism returns the number of functions in the stage.
func (s *Stage) Parallelism() int { return len(s.Functions) }

// Workflow is the staged form of a serverless application.
type Workflow struct {
	Name   string  `json:"name"`
	Stages []Stage `json:"stages"`
	// SLO is the user-supplied end-to-end latency target handed to PGP
	// (zero means "no SLO"; PGP then minimizes latency).
	SLO time.Duration `json:"slo,omitempty"`
}

// Functions returns all function specs in stage-major order.
func (w *Workflow) Functions() []*behavior.Spec {
	var out []*behavior.Spec
	for _, st := range w.Stages {
		out = append(out, st.Functions...)
	}
	return out
}

// NumFunctions returns the total number of functions (the paper's m).
func (w *Workflow) NumFunctions() int {
	n := 0
	for _, st := range w.Stages {
		n += len(st.Functions)
	}
	return n
}

// MaxParallelism returns the widest stage (Algorithm 2 line 1's M).
func (w *Workflow) MaxParallelism() int {
	m := 0
	for _, st := range w.Stages {
		if p := st.Parallelism(); p > m {
			m = p
		}
	}
	return m
}

// Lookup returns the spec with the given name, or nil.
func (w *Workflow) Lookup(name string) *behavior.Spec {
	for _, st := range w.Stages {
		for _, f := range st.Functions {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// Validate checks structural invariants: non-empty name and stages, every
// stage non-empty, every spec valid, function names unique.
func (w *Workflow) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("%w: workflow has empty name", ErrInvalid)
	}
	if len(w.Stages) == 0 {
		return fmt.Errorf("%w: workflow %s has no stages", ErrInvalid, w.Name)
	}
	seen := make(map[string]bool)
	for i, st := range w.Stages {
		if len(st.Functions) == 0 {
			return fmt.Errorf("%w: workflow %s stage %d is empty", ErrInvalid, w.Name, i)
		}
		for _, f := range st.Functions {
			if err := f.Validate(); err != nil {
				return fmt.Errorf("%w: workflow %s stage %d: %w", ErrInvalid, w.Name, i, err)
			}
			if seen[f.Name] {
				return fmt.Errorf("%w: workflow %s has duplicate function %q", ErrInvalid, w.Name, f.Name)
			}
			seen[f.Name] = true
		}
	}
	if w.SLO < 0 {
		return fmt.Errorf("%w: workflow %s has negative SLO", ErrInvalid, w.Name)
	}
	return nil
}

// Clone returns a deep copy of the workflow.
func (w *Workflow) Clone() *Workflow {
	c := &Workflow{Name: w.Name, SLO: w.SLO, Stages: make([]Stage, len(w.Stages))}
	for i, st := range w.Stages {
		fns := make([]*behavior.Spec, len(st.Functions))
		for j, f := range st.Functions {
			fns[j] = f.Clone(f.Name)
		}
		c.Stages[i] = Stage{Functions: fns}
	}
	return c
}

// MarshalJSON/UnmarshalJSON use the natural struct encoding; defined so the
// wire format is part of the package contract and covered by tests.
func (w *Workflow) MarshalJSON() ([]byte, error) {
	type alias Workflow
	return json.Marshal((*alias)(w))
}

// UnmarshalJSON decodes and validates a workflow.
func (w *Workflow) UnmarshalJSON(b []byte) error {
	type alias Workflow
	if err := json.Unmarshal(b, (*alias)(w)); err != nil {
		return err
	}
	return w.Validate()
}

// ---- General DAG form ----

// Node is one vertex of a workflow DAG.
type Node struct {
	Spec *behavior.Spec `json:"spec"`
	// Deps names the functions that must complete before this one starts.
	Deps []string `json:"deps,omitempty"`
}

// Graph is the edge-list form of a workflow, as a user would submit it
// (e.g. an AWS Step Functions state machine flattened to data
// dependencies).
type Graph struct {
	Name  string        `json:"name"`
	Nodes []Node        `json:"nodes"`
	SLO   time.Duration `json:"slo,omitempty"`
}

// Level converts the DAG to the staged form by topological depth: a node's
// stage index is 1 + max(stage of its dependencies). Within a stage, the
// original submission order is preserved so results are deterministic.
// It returns an error on unknown dependencies or cycles.
func (g *Graph) Level() (*Workflow, error) {
	index := make(map[string]int, len(g.Nodes))
	for i, n := range g.Nodes {
		if n.Spec == nil {
			return nil, fmt.Errorf("%w: graph %s node %d has nil spec", ErrInvalid, g.Name, i)
		}
		if _, dup := index[n.Spec.Name]; dup {
			return nil, fmt.Errorf("%w: graph %s has duplicate node %q", ErrInvalid, g.Name, n.Spec.Name)
		}
		index[n.Spec.Name] = i
	}

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]int, len(g.Nodes))
	depth := make([]int, len(g.Nodes))

	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("%w: graph %s has a cycle through %q", ErrInvalid, g.Name, g.Nodes[i].Spec.Name)
		}
		state[i] = visiting
		d := 0
		for _, dep := range g.Nodes[i].Deps {
			j, ok := index[dep]
			if !ok {
				return fmt.Errorf("%w: graph %s: %q depends on unknown %q", ErrInvalid, g.Name, g.Nodes[i].Spec.Name, dep)
			}
			if err := visit(j); err != nil {
				return err
			}
			if depth[j]+1 > d {
				d = depth[j] + 1
			}
		}
		depth[i] = d
		state[i] = done
		return nil
	}
	for i := range g.Nodes {
		if err := visit(i); err != nil {
			return nil, err
		}
	}

	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	stages := make([]Stage, maxDepth+1)
	order := make([]int, len(g.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return depth[order[a]] < depth[order[b]] })
	for _, i := range order {
		stages[depth[i]].Functions = append(stages[depth[i]].Functions, g.Nodes[i].Spec)
	}

	w := &Workflow{Name: g.Name, Stages: stages, SLO: g.SLO}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// FromStages builds a validated workflow from explicit stages.
func FromStages(name string, slo time.Duration, stages ...[]*behavior.Spec) (*Workflow, error) {
	w := &Workflow{Name: name, SLO: slo}
	for _, fns := range stages {
		w.Stages = append(w.Stages, Stage{Functions: fns})
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
