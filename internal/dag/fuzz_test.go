package dag

import (
	"encoding/json"
	"testing"
)

// FuzzWorkflowJSON hardens the workflow decoder: arbitrary bytes must
// never panic, and anything accepted must validate and survive a
// marshal/unmarshal round trip.
func FuzzWorkflowJSON(f *testing.F) {
	f.Add([]byte(`{"name":"wf","stages":[{"functions":[{"name":"a","runtime":"python3","segments":[{"kind":"cpu","dur":1000000}],"mem_mb":1}]}]}`))
	f.Add([]byte(`{"name":"","stages":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"name":"wf","slo":-5,"stages":[{"functions":[{"name":"a","runtime":"cobol","segments":[{"kind":"warp","dur":-1}]}]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var w Workflow
		if err := json.Unmarshal(data, &w); err != nil {
			return
		}
		// Accepted implies valid (UnmarshalJSON validates).
		if err := w.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid workflow: %v", err)
		}
		out, err := json.Marshal(&w)
		if err != nil {
			t.Fatalf("accepted workflow failed to marshal: %v", err)
		}
		var back Workflow
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Name != w.Name || back.NumFunctions() != w.NumFunctions() {
			t.Fatalf("round trip changed the workflow")
		}
	})
}
