// Package parallel is the repo-wide deterministic execution layer: a
// bounded worker pool with order-preserving fan-out, hash-based per-task
// seed derivation, and (in cache.go) a sharded bounded LRU used as the
// process-wide prediction cache.
//
// Every simulated request, (workload x system) configuration and whole
// experiment in this repository is an independent, seeded, deterministic
// computation, so the only thing parallel execution must preserve is the
// *merge order* of results. Map guarantees exactly that: out[i] is always
// task i's result regardless of scheduling, and the first error by task
// index wins, so a run with 1 worker and a run with N workers are
// bit-for-bit identical.
//
// The pool is global and bounded by a token semaphore. A Map that cannot
// acquire a token runs the task inline on the calling goroutine, which
// makes nested fan-outs (an experiment fanning over workloads whose PGP
// planner fans over process counts whose engine fans over requests) safe:
// total concurrency stays bounded and no call ever deadlocks waiting for
// a token held by its own caller.
package parallel

import (
	"runtime"
	"sync"
	"time"
)

var (
	mu  sync.Mutex
	sem chan struct{}
)

func init() {
	sem = make(chan struct{}, runtime.GOMAXPROCS(0))
}

// Workers returns the current pool width.
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	return cap(sem)
}

// SetWorkers resizes the pool to n workers; n <= 0 restores the default
// (GOMAXPROCS). In-flight tasks keep their tokens from the old semaphore,
// so the new width applies to work submitted after the call. Width 1 makes
// every Map run fully inline (the sequential baseline).
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	mu.Lock()
	sem = make(chan struct{}, n)
	mu.Unlock()
}

// acquire returns a release func if a pool token was free, else nil.
func acquire() func() {
	mu.Lock()
	s := sem
	mu.Unlock()
	if cap(s) <= 1 {
		// Width 1 is the sequential mode: never spawn, so a single-worker
		// run is exactly the pre-parallel code path.
		return nil
	}
	select {
	case s <- struct{}{}:
		return func() { <-s }
	default:
		return nil
	}
}

// Map runs fn(0..n-1) on the pool and returns the results in task-index
// order. All tasks run to completion even when some fail; the returned
// error is the failing task with the lowest index, so error reporting is
// deterministic under any scheduling.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		submitted := time.Now()
		release := acquire()
		if release == nil {
			instrument(submitted, true, func() { out[i], errs[i] = fn(i) })
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer release()
			instrument(submitted, false, func() { out[i], errs[i] = fn(i) })
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ForEach runs fn(0..n-1) on the pool and waits for completion.
func ForEach(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		submitted := time.Now()
		release := acquire()
		if release == nil {
			instrument(submitted, true, func() { fn(i) })
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer release()
			instrument(submitted, false, func() { fn(i) })
		}(i)
	}
	wg.Wait()
}

// Seed derives task index's seed from a base seed: a SplitMix64 finalizer
// over (base, index). Unlike affine schemes (base + index*k), nearby
// indices produce statistically independent streams, and the derivation is
// stable across runs, platforms and worker counts — the seed contract the
// determinism tests pin down.
func Seed(base int64, index int) int64 {
	x := uint64(base) ^ (uint64(index+1) * 0x9e3779b97f4a7c15)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}
