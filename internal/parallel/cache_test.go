package parallel

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache[string, int](8, 1, StringHash)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("got %d, %v", v, ok)
	}
	c.Put("a", 2)
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("refresh lost: %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache[string, int](3, 1, StringHash)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a") // promote a: LRU order is now b, c, a
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
}

func TestCacheCapacityBound(t *testing.T) {
	const capacity, shards = 64, 8
	c := NewCache[string, int](capacity, shards, StringHash)
	for i := 0; i < 10*capacity; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("cache grew to %d entries, capacity %d", n, capacity)
	}
}

func TestCacheShardingSpreads(t *testing.T) {
	c := NewCache[string, int](1024, 16, StringHash)
	for i := 0; i < 1024; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	// Every shard should hold something: FNV-1a over realistic keys must
	// not funnel into a few shards.
	empty := 0
	for i := range c.shards {
		if c.shards[i].pol.len() == 0 {
			empty++
		}
	}
	if empty > 0 {
		t.Fatalf("%d of 16 shards empty after 1024 inserts", empty)
	}
}

func TestCacheGetOrCompute(t *testing.T) {
	c := NewCache[string, int](8, 2, StringHash)
	calls := 0
	for i := 0; i < 3; i++ {
		v := c.GetOrCompute("k", func() int { calls++; return 7 })
		if v != 7 {
			t.Fatalf("got %d", v)
		}
	}
	if calls != 1 {
		t.Fatalf("computed %d times", calls)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache[string, int](8, 2, StringHash)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("purged entry survived")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache[string, int](256, 8, StringHash)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("key-%d", i%300)
				c.GetOrCompute(key, func() int { return i })
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 256 {
		t.Fatalf("capacity exceeded: %d", n)
	}
}
