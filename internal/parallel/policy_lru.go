package parallel

// lruPolicy is the classic least-recently-used policy: a map into an
// intrusive doubly-linked list ordered most- to least-recently used.
// Hits relink in place (no allocation); overflow evicts the list tail.
type lruPolicy[K comparable, V any] struct {
	cap int
	m   map[K]*lruEntry[K, V]
	// head.next is the MRU entry; head.prev the LRU (ring with sentinel).
	head lruEntry[K, V]
}

type lruEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruEntry[K, V]
}

func newLRUPolicy[K comparable, V any](capacity int) *lruPolicy[K, V] {
	p := &lruPolicy[K, V]{cap: capacity}
	p.reset()
	return p
}

func (p *lruPolicy[K, V]) reset() {
	p.m = make(map[K]*lruEntry[K, V], p.cap)
	p.head.prev = &p.head
	p.head.next = &p.head
}

func (p *lruPolicy[K, V]) unlink(e *lruEntry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (p *lruPolicy[K, V]) pushFront(e *lruEntry[K, V]) {
	e.prev = &p.head
	e.next = p.head.next
	e.next.prev = e
	p.head.next = e
}

func (p *lruPolicy[K, V]) get(key K) (V, bool) {
	e, ok := p.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	p.unlink(e)
	p.pushFront(e)
	return e.val, true
}

func (p *lruPolicy[K, V]) put(key K, v V) (evicted int) {
	if e, ok := p.m[key]; ok {
		e.val = v
		p.unlink(e)
		p.pushFront(e)
		return 0
	}
	if len(p.m) >= p.cap {
		lru := p.head.prev
		p.unlink(lru)
		delete(p.m, lru.key)
		evicted = 1
	}
	e := &lruEntry[K, V]{key: key, val: v}
	p.m[key] = e
	p.pushFront(e)
	return evicted
}

func (p *lruPolicy[K, V]) len() int { return len(p.m) }

func (p *lruPolicy[K, V]) purge() { p.reset() }
