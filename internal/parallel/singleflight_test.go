package parallel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGetOrComputeStampede is the singleflight contract: 100 goroutines
// missing the same cold key run the loader exactly once, and every
// other goroutine shares the winner's result. The loader blocks until
// all goroutines have entered GetOrCompute, so the test is deterministic
// rather than racy-lucky: had dedup failed, every late arrival would
// have run its own loader.
func TestGetOrComputeStampede(t *testing.T) {
	for _, pol := range allPolicies {
		t.Run(string(pol), func(t *testing.T) {
			const goroutines = 100
			c := NewCachePolicy[string, int](pol, 64, 4, StringHash)

			var loaders atomic.Int64
			var entered sync.WaitGroup
			entered.Add(goroutines)
			release := make(chan struct{})

			var wg sync.WaitGroup
			results := make([]int, goroutines)
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					entered.Done()
					results[i] = c.GetOrCompute("cold", func() int {
						loaders.Add(1)
						<-release // hold the flight open until everyone has arrived
						return 42
					})
				}(i)
			}
			entered.Wait()
			close(release)
			wg.Wait()

			if n := loaders.Load(); n != 1 {
				t.Fatalf("loader ran %d times for one key, want 1", n)
			}
			for i, v := range results {
				if v != 42 {
					t.Fatalf("goroutine %d got %d, want 42", i, v)
				}
			}
			st := c.Stats()
			if st.Misses-st.Shared != 1 {
				t.Fatalf("Misses-Shared = %d-%d = %d, want 1 (one loader execution)",
					st.Misses, st.Shared, st.Misses-st.Shared)
			}
			// The result landed: the next lookup is a plain hit.
			if v, ok := c.Get("cold"); !ok || v != 42 {
				t.Fatalf("post-stampede Get = %d, %v", v, ok)
			}
		})
	}
}

// TestComputeMissedStampede exercises the closure-free hot-path pairing
// (Get, then ComputeMissed on miss) under the same 100-goroutine
// stampede, including the rescue window where a value lands between a
// goroutine's Get and its ComputeMissed. The loader-execution invariant
// Misses - Shared = 1 must hold regardless of which window each
// goroutine fell into.
func TestComputeMissedStampede(t *testing.T) {
	const goroutines = 100
	c := NewCache[string, int](64, 4, StringHash)

	var loaders atomic.Int64
	var entered sync.WaitGroup
	entered.Add(goroutines)
	release := make(chan struct{})

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered.Done()
			if v, ok := c.Get("cold"); ok {
				if v != 7 {
					t.Errorf("hit value %d", v)
				}
				return
			}
			v, _, err := c.ComputeMissed("cold", func() (int, error) {
				loaders.Add(1)
				<-release
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("ComputeMissed = %d, %v", v, err)
			}
		}()
	}
	entered.Wait()
	close(release)
	wg.Wait()

	if n := loaders.Load(); n != 1 {
		t.Fatalf("loader ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Misses-st.Shared != 1 {
		t.Fatalf("Misses-Shared = %d-%d = %d, want 1", st.Misses, st.Shared, st.Misses-st.Shared)
	}
}

// TestGetOrComputeErrNotCached: a loader error reaches the winner and
// every waiter of that flight, but the next lookup runs a fresh loader —
// failures are never cached.
func TestGetOrComputeErrNotCached(t *testing.T) {
	c := NewCache[string, int](8, 1, StringHash)
	boom := errors.New("boom")

	calls := 0
	_, computed, err := c.GetOrComputeErr("k", func() (int, error) {
		calls++
		return 0, boom
	})
	if !computed || !errors.Is(err, boom) {
		t.Fatalf("first call: computed=%v err=%v", computed, err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed load was cached")
	}
	v, computed, err := c.GetOrComputeErr("k", func() (int, error) {
		calls++
		return 9, nil
	})
	if err != nil || !computed || v != 9 {
		t.Fatalf("retry after error: %d, %v, %v", v, computed, err)
	}
	if calls != 2 {
		t.Fatalf("loader calls = %d, want 2", calls)
	}
	if v, ok := c.Get("k"); !ok || v != 9 {
		t.Fatalf("successful retry not cached: %d, %v", v, ok)
	}
}

// TestGetOrComputeErrSharedError: waiters joined to a failing flight all
// observe the winner's error (not a zero value silently).
func TestGetOrComputeErrSharedError(t *testing.T) {
	c := NewCache[string, int](8, 1, StringHash)
	boom := errors.New("boom")

	started := make(chan struct{})
	release := make(chan struct{})
	var winnerDone sync.WaitGroup
	winnerDone.Add(1)
	go func() {
		defer winnerDone.Done()
		_, _, _ = c.GetOrComputeErr("k", func() (int, error) {
			close(started)
			<-release
			return 0, boom
		})
	}()
	<-started

	var wg sync.WaitGroup
	errs := make([]error, 10)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, computed, err := c.GetOrComputeErr("k", func() (int, error) {
				t.Error("waiter ran its own loader while a flight was pending")
				return 0, nil
			})
			if computed {
				t.Error("waiter reported computed=true")
			}
			errs[i] = err
		}(i)
	}
	// Wait until every waiter has joined the flight before failing it, so
	// the t.Error above would fire if a joined waiter recomputed.
	waitForShared(c, 10)
	close(release)
	winnerDone.Wait()
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d error = %v, want boom", i, err)
		}
	}
}

// waitForShared spins until the cache has seen n shared misses — i.e. n
// goroutines are parked on in-flight calls.
func waitForShared(c *Cache[string, int], n uint64) {
	for c.Stats().Shared < n {
		runtime.Gosched()
	}
}

// TestGetOrComputePanicWakesWaiters: a panicking loader must not strand
// waiters forever; they are woken with errLoaderPanic, the panic
// propagates on the winner's goroutine, and the key computes cleanly
// afterwards.
func TestGetOrComputePanicWakesWaiters(t *testing.T) {
	c := NewCache[string, int](8, 1, StringHash)

	started := make(chan struct{})
	release := make(chan struct{})
	panicked := make(chan struct{})
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("loader panic did not propagate")
			}
			close(panicked)
		}()
		_, _, _ = c.GetOrComputeErr("k", func() (int, error) {
			close(started)
			<-release
			panic("loader exploded")
		})
	}()
	<-started

	var waiterErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, waiterErr = c.GetOrComputeErr("k", func() (int, error) { return 0, nil })
	}()
	waitForShared(c, 1)
	close(release)
	<-panicked
	wg.Wait()

	if !errors.Is(waiterErr, errLoaderPanic) {
		t.Fatalf("waiter error = %v, want errLoaderPanic", waiterErr)
	}
	// The flight was torn down: a fresh compute works.
	v, computed, err := c.GetOrComputeErr("k", func() (int, error) { return 5, nil })
	if err != nil || !computed || v != 5 {
		t.Fatalf("compute after panic: %d, %v, %v", v, computed, err)
	}
}

// TestGetOrComputeDistinctKeysConcurrent: singleflight dedups per key,
// not globally — distinct keys compute concurrently and each exactly
// once.
func TestGetOrComputeDistinctKeysConcurrent(t *testing.T) {
	c := NewCache[int, int](256, 8, func(k int) uint64 { return uint64(k) * 0x9e3779b97f4a7c15 })
	var loaders atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 64; k++ {
				if v := c.GetOrCompute(k, func() int { loaders.Add(1); return k * 3 }); v != k*3 {
					t.Errorf("key %d = %d", k, v)
				}
			}
		}()
	}
	wg.Wait()
	if n := loaders.Load(); n != 64 {
		t.Fatalf("loaders ran %d times for 64 keys, want 64", n)
	}
	st := c.Stats()
	if st.Misses-st.Shared != 64 {
		t.Fatalf("Misses-Shared = %d, want 64", st.Misses-st.Shared)
	}
}
