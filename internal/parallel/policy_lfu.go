package parallel

// lfuPolicy is least-frequently-used replacement (samber/hot's lfu/
// layout): every entry carries a reference count, overflow evicts the
// entry with the lowest count, and recency (a monotone tick stamped on
// each touch) breaks frequency ties so the staler of two equally-used
// entries goes first. Entries sit in a hand-rolled value-slice min-heap
// keyed by (freq, tick); hits bump the count and sift the entry in place
// — no allocation, O(log n).
//
// LFU protects high-reuse entries against sustained medium-frequency
// traffic that would cycle an LRU, at the cost of aging slowly when the
// working set shifts (a once-hot key must be out-counted before it
// yields its slot).
type lfuPolicy[K comparable, V any] struct {
	cap  int
	m    map[K]*lfuEntry[K, V]
	heap []*lfuEntry[K, V]
	tick uint64
}

type lfuEntry[K comparable, V any] struct {
	key  K
	val  V
	freq uint64
	last uint64 // tick of the most recent touch (tie-break: older first)
	pos  int    // index in the heap
}

func newLFUPolicy[K comparable, V any](capacity int) *lfuPolicy[K, V] {
	p := &lfuPolicy[K, V]{cap: capacity}
	p.reset()
	return p
}

func (p *lfuPolicy[K, V]) reset() {
	p.m = make(map[K]*lfuEntry[K, V], p.cap)
	p.heap = make([]*lfuEntry[K, V], 0, p.cap)
	p.tick = 0
}

// less orders the heap: lowest frequency first, oldest touch first among
// equals — the eviction victim is always heap[0].
func (p *lfuPolicy[K, V]) less(a, b *lfuEntry[K, V]) bool {
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.last < b.last
}

func (p *lfuPolicy[K, V]) swap(i, j int) {
	h := p.heap
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}

func (p *lfuPolicy[K, V]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !p.less(p.heap[i], p.heap[parent]) {
			return
		}
		p.swap(i, parent)
		i = parent
	}
}

func (p *lfuPolicy[K, V]) siftDown(i int) {
	n := len(p.heap)
	for {
		least := i
		if l := 2*i + 1; l < n && p.less(p.heap[l], p.heap[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && p.less(p.heap[r], p.heap[least]) {
			least = r
		}
		if least == i {
			return
		}
		p.swap(i, least)
		i = least
	}
}

// touch bumps an entry's frequency and restores heap order; a higher
// count or fresher tick only ever pushes the entry down the heap.
func (p *lfuPolicy[K, V]) touch(e *lfuEntry[K, V]) {
	p.tick++
	e.freq++
	e.last = p.tick
	p.siftDown(e.pos)
}

func (p *lfuPolicy[K, V]) get(key K) (V, bool) {
	e, ok := p.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	p.touch(e)
	return e.val, true
}

func (p *lfuPolicy[K, V]) put(key K, v V) (evicted int) {
	if e, ok := p.m[key]; ok {
		e.val = v
		p.touch(e)
		return 0
	}
	if len(p.m) >= p.cap {
		victim := p.heap[0]
		last := len(p.heap) - 1
		p.swap(0, last)
		p.heap = p.heap[:last]
		if last > 0 {
			p.siftDown(0)
		}
		delete(p.m, victim.key)
		evicted = 1
	}
	p.tick++
	e := &lfuEntry[K, V]{key: key, val: v, freq: 1, last: p.tick, pos: len(p.heap)}
	p.heap = append(p.heap, e)
	p.m[key] = e
	p.siftUp(e.pos)
	return evicted
}

func (p *lfuPolicy[K, V]) len() int { return len(p.m) }

func (p *lfuPolicy[K, V]) purge() { p.reset() }
