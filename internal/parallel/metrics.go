package parallel

import (
	"time"

	"chiron/internal/obs"
)

// Pool metrics, registered in the process-wide obs registry. Tasks here
// are whole simulations or plan evaluations — microseconds to seconds —
// so two clock reads per task are noise, and the pool can stay
// instrumented unconditionally.
var (
	poolBusy    = obs.Default.Gauge("chiron_pool_busy", "tasks currently executing on the worker pool")
	poolSpawned = obs.Default.Counter("chiron_pool_tasks_spawned_total", "tasks run on a pool goroutine")
	poolInline  = obs.Default.Counter("chiron_pool_tasks_inline_total", "tasks run inline on the caller (no token free)")
	poolWait    = obs.Default.Histogram("chiron_pool_queue_wait", "delay between task submission and task start (seconds)", nil)
	poolRun     = obs.Default.Histogram("chiron_pool_task_run", "task execution time (seconds)", nil)
)

// PoolStats is a point-in-time snapshot of the pool metrics.
type PoolStats struct {
	// Spawned and Inline count tasks by execution mode: on a pool
	// goroutine vs. on the caller because no token was free.
	Spawned, Inline uint64
	// Busy is the number of tasks executing right now.
	Busy int64
	// MeanWait is the average submission-to-start delay.
	MeanWait time.Duration
	// MeanRun is the average task execution time.
	MeanRun time.Duration
}

// Stats snapshots the pool metrics (occupancy and queue-wait live in
// obs.Default under chiron_pool_*; this is the convenience view).
func Stats() PoolStats {
	return PoolStats{
		Spawned:  poolSpawned.Value(),
		Inline:   poolInline.Value(),
		Busy:     poolBusy.Value(),
		MeanWait: poolWait.Mean(),
		MeanRun:  poolRun.Mean(),
	}
}

// instrument wraps one task execution with the pool metrics. inline
// marks tasks that ran on the caller; submitted is when the fan-out
// loop reached the task, so wait is scheduling delay, not queueing (the
// pool never queues — it falls back inline).
func instrument(submitted time.Time, inline bool, task func()) {
	if inline {
		poolInline.Inc()
	} else {
		poolSpawned.Inc()
	}
	poolWait.Observe(time.Since(submitted))
	poolBusy.Add(1)
	start := time.Now()
	task()
	poolRun.Observe(time.Since(start))
	poolBusy.Add(-1)
}
