package parallel

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		SetWorkers(workers)
		out, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	SetWorkers(0)
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{1, 8} {
		SetWorkers(workers)
		_, err := Map(50, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: err = %v, want task 3 failed", workers, err)
		}
	}
	SetWorkers(0)
}

func TestMapZeroTasks(t *testing.T) {
	out, err := Map(0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestNestedMapNoDeadlock(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	// 8x8 nested fan-out over a width-4 pool: inline fallback must keep
	// this from deadlocking and the merge order must survive nesting.
	out, err := Map(8, func(i int) ([]int, error) {
		return Map(8, func(j int) (int, error) { return i*8 + j, nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range out {
		for j, v := range row {
			if v != i*8+j {
				t.Fatalf("out[%d][%d] = %d", i, j, v)
			}
		}
	}
}

func TestForEachRunsAll(t *testing.T) {
	SetWorkers(8)
	defer SetWorkers(0)
	var n atomic.Int64
	ForEach(200, func(i int) { n.Add(int64(i)) })
	if got := n.Load(); got != 199*200/2 {
		t.Fatalf("sum = %d", got)
	}
}

func TestSetWorkersSequentialMode(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	// With one worker everything must run inline on the calling
	// goroutine, in index order.
	var order []int
	ForEach(10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential mode ran out of order: %v", order)
		}
	}
}

func TestSeedDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		if Seed(42, i) != Seed(42, i) {
			t.Fatalf("Seed(42, %d) unstable", i)
		}
	}
	// Pin a few values: the derivation is a documented contract (tables
	// depend on it), so silent changes must fail loudly.
	pinned := map[int]int64{0: Seed(1, 0), 1: Seed(1, 1)}
	if pinned[0] == pinned[1] {
		t.Fatal("adjacent indices collide")
	}
}

func TestSeedSpreads(t *testing.T) {
	// Affine schemes make nearby indices correlated; the hash must not.
	seen := map[int64]bool{}
	for base := int64(0); base < 8; base++ {
		for i := 0; i < 1000; i++ {
			s := Seed(base, i)
			if seen[s] {
				t.Fatalf("collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
}
