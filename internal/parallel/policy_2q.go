package parallel

// twoQPolicy is the 2Q replacement algorithm (Johnson & Shasha, VLDB'94;
// samber/hot's 2q/ layout): a small FIFO probation queue A1in admits
// every new key, keys aged out of A1in leave only a ghost (key, no
// value) in A1out, and a key re-referenced while ghosted is promoted
// into the main LRU Am. One-shot scan keys — a junk-name flood, a sweep
// of never-repeated candidate groups — churn through A1in and the ghost
// queue without ever displacing the hot working set resident in Am.
//
// Live entries (A1in + Am) never exceed capacity; ghosts hold no value
// and are bounded separately at kout.
type twoQPolicy[K comparable, V any] struct {
	cap  int
	kin  int // A1in target size (cap/4, min 1)
	kout int // A1out ghost bound (cap/2, min 1)

	m map[K]*twoQEntry[K, V] // live: in A1in or Am

	amHead twoQEntry[K, V] // Am LRU ring: next = MRU, prev = LRU
	inHead twoQEntry[K, V] // A1in FIFO ring: next = newest, prev = oldest
	amLen  int
	inLen  int

	ghosts map[K]*twoQGhost[K]
	gHead  twoQGhost[K] // A1out FIFO ring: next = newest, prev = oldest
}

type twoQEntry[K comparable, V any] struct {
	key        K
	val        V
	inA1       bool // resident in A1in (else Am)
	prev, next *twoQEntry[K, V]
}

type twoQGhost[K comparable] struct {
	key        K
	prev, next *twoQGhost[K]
}

func newTwoQPolicy[K comparable, V any](capacity int) *twoQPolicy[K, V] {
	p := &twoQPolicy[K, V]{cap: capacity}
	p.kin = capacity / 4
	if p.kin < 1 {
		p.kin = 1
	}
	p.kout = capacity / 2
	if p.kout < 1 {
		p.kout = 1
	}
	p.reset()
	return p
}

func (p *twoQPolicy[K, V]) reset() {
	p.m = make(map[K]*twoQEntry[K, V], p.cap)
	p.ghosts = make(map[K]*twoQGhost[K], p.kout)
	p.amHead.prev, p.amHead.next = &p.amHead, &p.amHead
	p.inHead.prev, p.inHead.next = &p.inHead, &p.inHead
	p.gHead.prev, p.gHead.next = &p.gHead, &p.gHead
	p.amLen, p.inLen = 0, 0
}

func unlink2Q[K comparable, V any](e *twoQEntry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func pushFront2Q[K comparable, V any](head, e *twoQEntry[K, V]) {
	e.prev = head
	e.next = head.next
	e.next.prev = e
	head.next = e
}

func (p *twoQPolicy[K, V]) get(key K) (V, bool) {
	e, ok := p.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	if !e.inA1 {
		// Am hit: promote to MRU. A1in hits stay in FIFO order — the
		// probation queue measures "referenced again after admission",
		// not recency.
		unlink2Q(e)
		pushFront2Q(&p.amHead, e)
	}
	return e.val, true
}

func (p *twoQPolicy[K, V]) put(key K, v V) (evicted int) {
	if e, ok := p.m[key]; ok {
		e.val = v
		if !e.inA1 {
			unlink2Q(e)
			pushFront2Q(&p.amHead, e)
		}
		return 0
	}
	evicted = p.reclaim()
	e := &twoQEntry[K, V]{key: key, val: v}
	if g, ghosted := p.ghosts[key]; ghosted {
		// Re-referenced after aging out of A1in: this key has proven
		// reuse, admit it straight into the protected main queue.
		p.dropGhost(g)
		pushFront2Q(&p.amHead, e)
		p.amLen++
	} else {
		e.inA1 = true
		pushFront2Q(&p.inHead, e)
		p.inLen++
	}
	p.m[key] = e
	return evicted
}

// reclaim frees one live slot when the cache is full, per 2Q's
// "reclaimfor": age A1in's oldest entry into the ghost queue while A1in
// is over its target, otherwise evict Am's LRU.
func (p *twoQPolicy[K, V]) reclaim() (evicted int) {
	if p.amLen+p.inLen < p.cap {
		return 0
	}
	if p.inLen > p.kin || p.amLen == 0 {
		oldest := p.inHead.prev
		unlink2Q(oldest)
		p.inLen--
		delete(p.m, oldest.key)
		p.addGhost(oldest.key)
		return 1
	}
	lru := p.amHead.prev
	unlink2Q(lru)
	p.amLen--
	delete(p.m, lru.key)
	return 1
}

func (p *twoQPolicy[K, V]) addGhost(key K) {
	g := &twoQGhost[K]{key: key}
	g.prev = &p.gHead
	g.next = p.gHead.next
	g.next.prev = g
	p.gHead.next = g
	p.ghosts[key] = g
	if len(p.ghosts) > p.kout {
		p.dropGhost(p.gHead.prev)
	}
}

func (p *twoQPolicy[K, V]) dropGhost(g *twoQGhost[K]) {
	g.prev.next = g.next
	g.next.prev = g.prev
	delete(p.ghosts, g.key)
}

func (p *twoQPolicy[K, V]) len() int { return len(p.m) }

func (p *twoQPolicy[K, V]) purge() { p.reset() }
