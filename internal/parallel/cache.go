package parallel

import (
	"fmt"
	"sync"

	"chiron/internal/obs"
)

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	// Shared counts misses that were served by another goroutine's
	// compute instead of running the loader again (the singleflight
	// dedup; see GetOrCompute). Misses - Shared is therefore the number
	// of loader executions.
	Shared uint64
}

// Policy selects a shard's replacement policy. The shell (sharding, hash,
// metrics, singleflight) is identical across policies; only what each
// shard evicts differs. Defaults across the repo are picked by benchmark
// (make cache-bench, BENCH_pr8.json), not by taste.
type Policy string

const (
	// PolicyLRU evicts the least-recently-used entry — the right default
	// when the working set fits and recency predicts reuse.
	PolicyLRU Policy = "lru"
	// Policy2Q is the 2Q algorithm: new keys enter a small FIFO probation
	// queue (A1in) and are promoted to the main LRU (Am) only when
	// re-referenced after falling into the ghost queue (A1out). One-shot
	// scan keys churn through A1in without ever displacing the hot
	// working set in Am.
	Policy2Q Policy = "2q"
	// PolicyLFU evicts the least-frequently-used entry (recency breaks
	// frequency ties), protecting high-reuse entries against bursts of
	// medium-frequency traffic.
	PolicyLFU Policy = "lfu"
)

// ParsePolicy validates a policy name from a flag or config.
func ParsePolicy(s string) (Policy, error) {
	switch p := Policy(s); p {
	case PolicyLRU, Policy2Q, PolicyLFU:
		return p, nil
	}
	return "", fmt.Errorf("parallel: unknown cache policy %q (want lru, 2q or lfu)", s)
}

// cachePolicy is one shard's replacement policy. Implementations are not
// thread-safe: the owning shard's mutex serializes every call. A get hit
// must not allocate (the shell promises a zero-alloc hit path); put may.
type cachePolicy[K comparable, V any] interface {
	// get returns the value and promotes the entry per the policy.
	get(key K) (V, bool)
	// put inserts or refreshes an entry, reporting how many live entries
	// (entries whose values were still cached) it evicted to make room.
	put(key K, v V) (evicted int)
	// len is the number of live entries (ghost/bookkeeping entries that
	// hold no value do not count).
	len() int
	// purge drops every entry, live and ghost, keeping capacity.
	purge()
}

func newPolicy[K comparable, V any](p Policy, capacity int) cachePolicy[K, V] {
	switch p {
	case Policy2Q:
		return newTwoQPolicy[K, V](capacity)
	case PolicyLFU:
		return newLFUPolicy[K, V](capacity)
	default:
		return newLRUPolicy[K, V](capacity)
	}
}

// Cache is a sharded, bounded, thread-safe cache with a pluggable
// per-shard replacement policy (in the spirit of samber/hot's
// sharded/2q/lfu layout). Shards cut lock contention under parallel
// planners; each shard holds capacity/shards entries and evicts per its
// policy on overflow.
//
// The key type is any comparable; the caller supplies the shard-selection
// hash at construction so hot paths can use fixed-size struct keys (e.g.
// predict's fingerprint key) without ever materializing a string. For
// string keys, pass StringHash.
//
// The cache stores only values that are pure functions of their key, so a
// concurrent double-compute or an eviction changes wall-clock time, never
// results — determinism does not depend on cache state. GetOrCompute
// additionally collapses concurrent misses on one key into a single
// loader execution (singleflight), so a re-plan burst or a cold fan-out
// pays for each distinct computation once.
type Cache[K comparable, V any] struct {
	shards []cacheShard[K, V]
	hash   func(K) uint64
	// Counters are obs metrics so a cache can publish itself in a
	// registry (NewCacheMetrics); by default they are private.
	hits   *obs.Counter
	misses *obs.Counter
	evicts *obs.Counter
	shared *obs.Counter
}

// NewCache returns an LRU cache holding at most capacity entries across
// the given number of shards (both floored at 1; shards are capped at
// capacity so every shard can hold at least one entry). hash selects the
// shard for a key and only needs to spread well, not be cryptographic.
func NewCache[K comparable, V any](capacity, shards int, hash func(K) uint64) *Cache[K, V] {
	return NewCachePolicy[K, V](PolicyLRU, capacity, shards, hash)
}

// NewCachePolicy is NewCache with an explicit replacement policy.
func NewCachePolicy[K comparable, V any](policy Policy, capacity, shards int, hash func(K) uint64) *Cache[K, V] {
	return newCache[K, V](policy, capacity, shards, hash,
		&obs.Counter{}, &obs.Counter{}, &obs.Counter{}, &obs.Counter{})
}

// NewCacheMetrics is NewCache with the hit/miss/eviction/shared counters
// registered in reg as <prefix>_hits_total, <prefix>_misses_total,
// <prefix>_evictions_total and <prefix>_shared_total, so the cache shows
// up in metric dumps (chiron-bench -metrics) without a bespoke reporting
// path.
func NewCacheMetrics[K comparable, V any](capacity, shards int, hash func(K) uint64, reg *obs.Registry, prefix string) *Cache[K, V] {
	return NewCachePolicyMetrics[K, V](PolicyLRU, capacity, shards, hash, reg, prefix)
}

// NewCachePolicyMetrics is NewCacheMetrics with an explicit replacement
// policy. Re-creating a cache under the same prefix (ConfigureExecCache
// and friends) reuses the registered counters, so metric continuity
// survives a policy swap.
func NewCachePolicyMetrics[K comparable, V any](policy Policy, capacity, shards int, hash func(K) uint64, reg *obs.Registry, prefix string) *Cache[K, V] {
	return newCache[K, V](policy, capacity, shards, hash,
		reg.Counter(prefix+"_hits_total", "cache lookups served from the cache"),
		reg.Counter(prefix+"_misses_total", "cache lookups that fell through to compute"),
		reg.Counter(prefix+"_evictions_total", "cached entries displaced by inserts"),
		reg.Counter(prefix+"_shared_total", "concurrent misses served by another goroutine's in-flight compute"),
	)
}

func newCache[K comparable, V any](policy Policy, capacity, shards int, hash func(K) uint64, hits, misses, evicts, shared *obs.Counter) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	c := &Cache[K, V]{
		shards: make([]cacheShard[K, V], shards),
		hash:   hash,
		hits:   hits, misses: misses, evicts: evicts, shared: shared,
	}
	per := capacity / shards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].pol = newPolicy[K, V](policy, per)
	}
	return c
}

// StringHash is the 64-bit FNV-1a hash over the key's bytes — the default
// shard selector for string-keyed caches.
func StringHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (c *Cache[K, V]) shard(key K) *cacheShard[K, V] {
	return &c.shards[c.hash(key)%uint64(len(c.shards))]
}

// Get returns the cached value and whether it was present, promoting the
// entry per the shard's policy. A hit performs zero heap allocations.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	v, ok := s.pol.get(key)
	s.mu.Unlock()
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return v, ok
}

// Put inserts or refreshes an entry, evicting per the shard's policy when
// the shard is full.
func (c *Cache[K, V]) Put(key K, v V) {
	s := c.shard(key)
	s.mu.Lock()
	n := s.pol.put(key, v)
	s.mu.Unlock()
	for ; n > 0; n-- {
		c.evicts.Inc()
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.pol.len()
		s.mu.Unlock()
	}
	return n
}

// Purge empties the cache, keeping capacity; counters are unaffected.
// In-flight GetOrCompute loaders are untouched: they complete and insert
// into the purged cache.
func (c *Cache[K, V]) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.pol.purge()
		s.mu.Unlock()
	}
}

// Stats returns cumulative hit/miss/eviction/shared counters.
func (c *Cache[K, V]) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evicts.Value(),
		Shared:    c.shared.Value(),
	}
}

// cacheShard is one lock domain: a policy instance plus the shard's
// in-flight singleflight calls (lazily allocated; nil until the first
// GetOrCompute miss).
type cacheShard[K comparable, V any] struct {
	mu  sync.Mutex
	pol cachePolicy[K, V]
	fl  map[K]*flightCall[V]
}
