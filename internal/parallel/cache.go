package parallel

import (
	"sync"

	"chiron/internal/obs"
)

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits, Misses, Evictions uint64
}

// Cache is a sharded, bounded, thread-safe LRU. Shards cut lock contention
// under parallel planners (in the spirit of samber/hot's sharded cache);
// each shard holds capacity/shards entries and evicts its own
// least-recently-used entry on overflow.
//
// The key type is any comparable; the caller supplies the shard-selection
// hash at construction so hot paths can use fixed-size struct keys (e.g.
// predict's fingerprint key) without ever materializing a string. For
// string keys, pass StringHash.
//
// The cache stores only values that are pure functions of their key, so a
// concurrent double-compute or an eviction changes wall-clock time, never
// results — determinism does not depend on cache state.
type Cache[K comparable, V any] struct {
	shards []cacheShard[K, V]
	hash   func(K) uint64
	// Counters are obs metrics so a cache can publish itself in a
	// registry (NewCacheMetrics); by default they are private.
	hits   *obs.Counter
	misses *obs.Counter
	evicts *obs.Counter
}

// NewCache returns a cache holding at most capacity entries across the
// given number of shards (both floored at 1; shards are capped at
// capacity so every shard can hold at least one entry). hash selects the
// shard for a key and only needs to spread well, not be cryptographic.
func NewCache[K comparable, V any](capacity, shards int, hash func(K) uint64) *Cache[K, V] {
	return newCache[K, V](capacity, shards, hash, &obs.Counter{}, &obs.Counter{}, &obs.Counter{})
}

// NewCacheMetrics is NewCache with the hit/miss/eviction counters
// registered in reg as <prefix>_hits_total, <prefix>_misses_total and
// <prefix>_evictions_total, so the cache shows up in metric dumps
// (chiron-bench -metrics) without a bespoke reporting path.
func NewCacheMetrics[K comparable, V any](capacity, shards int, hash func(K) uint64, reg *obs.Registry, prefix string) *Cache[K, V] {
	return newCache[K, V](capacity, shards, hash,
		reg.Counter(prefix+"_hits_total", "cache lookups served from the cache"),
		reg.Counter(prefix+"_misses_total", "cache lookups that fell through to compute"),
		reg.Counter(prefix+"_evictions_total", "LRU entries displaced by inserts"),
	)
}

func newCache[K comparable, V any](capacity, shards int, hash func(K) uint64, hits, misses, evicts *obs.Counter) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	c := &Cache[K, V]{
		shards: make([]cacheShard[K, V], shards),
		hash:   hash,
		hits:   hits, misses: misses, evicts: evicts,
	}
	per := capacity / shards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].init(per)
	}
	return c
}

// StringHash is the 64-bit FNV-1a hash over the key's bytes — the default
// shard selector for string-keyed caches.
func StringHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (c *Cache[K, V]) shard(key K) *cacheShard[K, V] {
	return &c.shards[c.hash(key)%uint64(len(c.shards))]
}

// Get returns the cached value and whether it was present, promoting the
// entry to most-recently-used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	v, ok := c.shard(key).get(key)
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return v, ok
}

// Put inserts or refreshes an entry, evicting the shard's LRU entry when
// the shard is full.
func (c *Cache[K, V]) Put(key K, v V) {
	if c.shard(key).put(key, v) {
		c.evicts.Inc()
	}
}

// GetOrCompute returns the cached value for key, computing and inserting
// it on a miss. Concurrent callers may compute the same key twice; both
// arrive at the same value (keys determine values), so the only cost is
// duplicated work, never divergent results.
func (c *Cache[K, V]) GetOrCompute(key K, fn func() V) V {
	if v, ok := c.Get(key); ok {
		return v
	}
	v := fn()
	c.Put(key, v)
	return v
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].len()
	}
	return n
}

// Purge empties the cache, keeping capacity; counters are unaffected.
func (c *Cache[K, V]) Purge() {
	for i := range c.shards {
		c.shards[i].purge()
	}
}

// Stats returns cumulative hit/miss/eviction counters.
func (c *Cache[K, V]) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evicts.Value(),
	}
}

// cacheShard is one lock domain: a map into an intrusive doubly-linked
// list ordered most- to least-recently used.
type cacheShard[K comparable, V any] struct {
	mu  sync.Mutex
	cap int
	m   map[K]*cacheEntry[K, V]
	// head.next is the MRU entry; head.prev the LRU (ring with sentinel).
	head cacheEntry[K, V]
}

type cacheEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *cacheEntry[K, V]
}

func (s *cacheShard[K, V]) init(capacity int) {
	s.cap = capacity
	s.m = make(map[K]*cacheEntry[K, V], capacity)
	s.head.prev = &s.head
	s.head.next = &s.head
}

func (s *cacheShard[K, V]) unlink(e *cacheEntry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (s *cacheShard[K, V]) pushFront(e *cacheEntry[K, V]) {
	e.prev = &s.head
	e.next = s.head.next
	e.next.prev = e
	s.head.next = e
}

func (s *cacheShard[K, V]) get(key K) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	s.unlink(e)
	s.pushFront(e)
	return e.val, true
}

func (s *cacheShard[K, V]) put(key K, v V) (evicted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[key]; ok {
		e.val = v
		s.unlink(e)
		s.pushFront(e)
		return false
	}
	if len(s.m) >= s.cap {
		lru := s.head.prev
		s.unlink(lru)
		delete(s.m, lru.key)
		evicted = true
	}
	e := &cacheEntry[K, V]{key: key, val: v}
	s.m[key] = e
	s.pushFront(e)
	return evicted
}

func (s *cacheShard[K, V]) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func (s *cacheShard[K, V]) purge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[K]*cacheEntry[K, V], s.cap)
	s.head.prev = &s.head
	s.head.next = &s.head
}
