package parallel

import (
	"sync"

	"chiron/internal/obs"
)

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits, Misses, Evictions uint64
}

// Cache is a sharded, bounded, thread-safe LRU keyed by string. Shards cut
// lock contention under parallel planners (in the spirit of samber/hot's
// sharded cache); each shard holds capacity/shards entries and evicts its
// own least-recently-used entry on overflow.
//
// The cache stores only values that are pure functions of their key, so a
// concurrent double-compute or an eviction changes wall-clock time, never
// results — determinism does not depend on cache state.
type Cache[V any] struct {
	shards []cacheShard[V]
	// Counters are obs metrics so a cache can publish itself in a
	// registry (NewCacheMetrics); by default they are private.
	hits   *obs.Counter
	misses *obs.Counter
	evicts *obs.Counter
}

// NewCache returns a cache holding at most capacity entries across the
// given number of shards (both floored at 1; shards are capped at
// capacity so every shard can hold at least one entry).
func NewCache[V any](capacity, shards int) *Cache[V] {
	return newCache[V](capacity, shards, &obs.Counter{}, &obs.Counter{}, &obs.Counter{})
}

// NewCacheMetrics is NewCache with the hit/miss/eviction counters
// registered in reg as <prefix>_hits_total, <prefix>_misses_total and
// <prefix>_evictions_total, so the cache shows up in metric dumps
// (chiron-bench -metrics) without a bespoke reporting path.
func NewCacheMetrics[V any](capacity, shards int, reg *obs.Registry, prefix string) *Cache[V] {
	return newCache[V](capacity, shards,
		reg.Counter(prefix+"_hits_total", "cache lookups served from the cache"),
		reg.Counter(prefix+"_misses_total", "cache lookups that fell through to compute"),
		reg.Counter(prefix+"_evictions_total", "LRU entries displaced by inserts"),
	)
}

func newCache[V any](capacity, shards int, hits, misses, evicts *obs.Counter) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	c := &Cache[V]{
		shards: make([]cacheShard[V], shards),
		hits:   hits, misses: misses, evicts: evicts,
	}
	per := capacity / shards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].init(per)
	}
	return c
}

// fnv1a is the 64-bit FNV-1a hash, used only for shard selection.
func fnv1a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (c *Cache[V]) shard(key string) *cacheShard[V] {
	return &c.shards[fnv1a(key)%uint64(len(c.shards))]
}

// Get returns the cached value and whether it was present, promoting the
// entry to most-recently-used.
func (c *Cache[V]) Get(key string) (V, bool) {
	v, ok := c.shard(key).get(key)
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return v, ok
}

// Put inserts or refreshes an entry, evicting the shard's LRU entry when
// the shard is full.
func (c *Cache[V]) Put(key string, v V) {
	if c.shard(key).put(key, v) {
		c.evicts.Inc()
	}
}

// GetOrCompute returns the cached value for key, computing and inserting
// it on a miss. Concurrent callers may compute the same key twice; both
// arrive at the same value (keys determine values), so the only cost is
// duplicated work, never divergent results.
func (c *Cache[V]) GetOrCompute(key string, fn func() V) V {
	if v, ok := c.Get(key); ok {
		return v
	}
	v := fn()
	c.Put(key, v)
	return v
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].len()
	}
	return n
}

// Purge empties the cache, keeping capacity; counters are unaffected.
func (c *Cache[V]) Purge() {
	for i := range c.shards {
		c.shards[i].purge()
	}
}

// Stats returns cumulative hit/miss/eviction counters.
func (c *Cache[V]) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evicts.Value(),
	}
}

// cacheShard is one lock domain: a map into an intrusive doubly-linked
// list ordered most- to least-recently used.
type cacheShard[V any] struct {
	mu  sync.Mutex
	cap int
	m   map[string]*cacheEntry[V]
	// head.next is the MRU entry; head.prev the LRU (ring with sentinel).
	head cacheEntry[V]
}

type cacheEntry[V any] struct {
	key        string
	val        V
	prev, next *cacheEntry[V]
}

func (s *cacheShard[V]) init(capacity int) {
	s.cap = capacity
	s.m = make(map[string]*cacheEntry[V], capacity)
	s.head.prev = &s.head
	s.head.next = &s.head
}

func (s *cacheShard[V]) unlink(e *cacheEntry[V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (s *cacheShard[V]) pushFront(e *cacheEntry[V]) {
	e.prev = &s.head
	e.next = s.head.next
	e.next.prev = e
	s.head.next = e
}

func (s *cacheShard[V]) get(key string) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	s.unlink(e)
	s.pushFront(e)
	return e.val, true
}

func (s *cacheShard[V]) put(key string, v V) (evicted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[key]; ok {
		e.val = v
		s.unlink(e)
		s.pushFront(e)
		return false
	}
	if len(s.m) >= s.cap {
		lru := s.head.prev
		s.unlink(lru)
		delete(s.m, lru.key)
		evicted = true
	}
	e := &cacheEntry[V]{key: key, val: v}
	s.m[key] = e
	s.pushFront(e)
	return evicted
}

func (s *cacheShard[V]) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func (s *cacheShard[V]) purge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[string]*cacheEntry[V], s.cap)
	s.head.prev = &s.head
	s.head.next = &s.head
}
