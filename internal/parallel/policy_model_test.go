package parallel

import (
	"fmt"
	"math/rand"
	"testing"
)

// allPolicies enumerates the pluggable policies for table-driven tests.
var allPolicies = []Policy{PolicyLRU, Policy2Q, PolicyLFU}

func TestParsePolicy(t *testing.T) {
	for _, p := range allPolicies {
		got, err := ParsePolicy(string(p))
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %q, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("arc"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
}

// TestPolicyModelProperties drives every policy with a long seeded random
// op sequence against a reference model, checking the invariants that
// hold regardless of replacement choice:
//
//   - bounded size: live entries never exceed capacity;
//   - hit correctness: a hit returns the exact value of the most recent
//     put for that key (no aliasing, no lost updates);
//   - no resurrection: a key that was never put never hits.
func TestPolicyModelProperties(t *testing.T) {
	const (
		capacity = 32
		keyspace = 96
		ops      = 20000
	)
	for _, pol := range allPolicies {
		t.Run(string(pol), func(t *testing.T) {
			p := newPolicy[int, int](pol, capacity)
			rng := rand.New(rand.NewSource(42))
			latest := map[int]int{} // reference: last value put per key
			for i := 0; i < ops; i++ {
				k := rng.Intn(keyspace)
				if rng.Intn(2) == 0 {
					v := rng.Int()
					p.put(k, v)
					latest[k] = v
				} else if v, ok := p.get(k); ok {
					want, ever := latest[k]
					if !ever {
						t.Fatalf("op %d: key %d hit but was never put", i, k)
					}
					if v != want {
						t.Fatalf("op %d: key %d = %d, want %d", i, k, v, want)
					}
				}
				if n := p.len(); n > capacity {
					t.Fatalf("op %d: %d live entries exceed capacity %d", i, n, capacity)
				}
			}
			p.purge()
			if p.len() != 0 {
				t.Fatalf("purge left %d entries", p.len())
			}
			if _, ok := p.get(1); ok {
				t.Fatal("purged entry survived")
			}
		})
	}
}

// refLRU is an executable specification of LRU built on a plain slice:
// most-recently-used first, evict the back.
type refLRU struct {
	cap  int
	keys []int
	vals map[int]int
}

func (r *refLRU) touch(k int) {
	for i, key := range r.keys {
		if key == k {
			copy(r.keys[1:i+1], r.keys[:i])
			r.keys[0] = k
			return
		}
	}
}

func (r *refLRU) get(k int) (int, bool) {
	v, ok := r.vals[k]
	if !ok {
		return 0, false
	}
	r.touch(k)
	return v, true
}

func (r *refLRU) put(k, v int) (evicted int) {
	if _, ok := r.vals[k]; ok {
		r.vals[k] = v
		r.touch(k)
		return 0
	}
	if len(r.keys) >= r.cap {
		victim := r.keys[len(r.keys)-1]
		r.keys = r.keys[:len(r.keys)-1]
		delete(r.vals, victim)
		evicted = 1
	}
	r.keys = append([]int{k}, r.keys...)
	r.vals[k] = v
	return evicted
}

// TestLRUMatchesReferenceModel checks the LRU policy op-for-op against
// the executable specification: identical hits, misses, values and
// eviction counts over a long random sequence — full recency-order
// equivalence, not just invariants.
func TestLRUMatchesReferenceModel(t *testing.T) {
	const capacity, keyspace, ops = 16, 48, 20000
	p := newLRUPolicy[int, int](capacity)
	ref := &refLRU{cap: capacity, vals: map[int]int{}}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < ops; i++ {
		k := rng.Intn(keyspace)
		if rng.Intn(2) == 0 {
			v := rng.Int()
			if got, want := p.put(k, v), ref.put(k, v); got != want {
				t.Fatalf("op %d: put(%d) evicted %d, reference %d", i, k, got, want)
			}
		} else {
			gv, gok := p.get(k)
			wv, wok := ref.get(k)
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: get(%d) = %d,%v, reference %d,%v", i, k, gv, gok, wv, wok)
			}
		}
		if p.len() != len(ref.vals) {
			t.Fatalf("op %d: len %d, reference %d", i, p.len(), len(ref.vals))
		}
	}
}

// TestTwoQPromotionLifecycle walks one key through 2Q's three states:
// admitted into A1in, aged out into the A1out ghost queue (a miss — the
// value is gone), then promoted into Am on re-admission, where it
// survives a scan flood that would cycle a plain LRU.
func TestTwoQPromotionLifecycle(t *testing.T) {
	p := newTwoQPolicy[string, int](8) // kin=2, kout=4

	p.put("hot", 1)
	if e := p.m["hot"]; e == nil || !e.inA1 {
		t.Fatal("fresh key not admitted into A1in")
	}

	// Fill past capacity: reclaim drains A1in (over its target) oldest
	// first, so "hot" ages out and leaves a ghost.
	for i := 0; i < 8; i++ {
		p.put(fmt.Sprintf("fill-%d", i), i)
	}
	if _, ok := p.get("hot"); ok {
		t.Fatal("key aged out of A1in still hits (ghosts must not serve values)")
	}
	if _, ghosted := p.ghosts["hot"]; !ghosted {
		t.Fatal("key aged out of A1in left no A1out ghost")
	}

	// Re-put while ghosted: promoted straight into the protected Am.
	p.put("hot", 2)
	if e := p.m["hot"]; e == nil || e.inA1 {
		t.Fatal("ghosted key re-put was not promoted into Am")
	}

	// A one-shot scan several times the capacity churns A1in and the
	// ghost queue but never displaces the Am resident.
	for i := 0; i < 64; i++ {
		p.put(fmt.Sprintf("scan-%d", i), i)
		if p.len() > 8 {
			t.Fatalf("live entries %d exceed capacity", p.len())
		}
	}
	if v, ok := p.get("hot"); !ok || v != 2 {
		t.Fatalf("Am entry evicted by scan flood: %d, %v", v, ok)
	}
}

// TestLFUFrequencyEviction checks the LFU contract: overflow evicts the
// lowest-frequency entry, and recency breaks ties (the staler entry of
// equal frequency goes first).
func TestLFUFrequencyEviction(t *testing.T) {
	p := newLFUPolicy[string, int](3)
	p.put("a", 1) // freq 1
	p.get("a")
	p.get("a") // freq 3
	p.put("b", 2)
	p.get("b")    // freq 2
	p.put("c", 3) // freq 1
	p.put("d", 4) // evicts c: lowest frequency
	if _, ok := p.get("c"); ok {
		t.Fatal("lowest-frequency entry survived overflow")
	}
	for _, k := range []string{"a", "b", "d"} {
		if _, ok := p.get(k); !ok {
			t.Fatalf("%q evicted wrongly", k)
		}
	}

	// Tie-break: equal frequency, oldest touch evicted first.
	p2 := newLFUPolicy[string, int](2)
	p2.put("x", 1)
	p2.put("y", 2) // both freq 1, x older
	p2.put("z", 3) // evicts x
	if _, ok := p2.get("x"); ok {
		t.Fatal("older of two equal-frequency entries survived")
	}
	if _, ok := p2.get("y"); !ok {
		t.Fatal("newer of two equal-frequency entries evicted")
	}
}

// TestCachePolicyShellIntegration runs the full sharded shell (not bare
// policies) under every policy: capacity bound across shards, hit
// correctness, purge, and eviction counters consistent with Len.
func TestCachePolicyShellIntegration(t *testing.T) {
	const capacity = 64
	for _, pol := range allPolicies {
		t.Run(string(pol), func(t *testing.T) {
			c := NewCachePolicy[string, int](pol, capacity, 8, StringHash)
			for i := 0; i < 10*capacity; i++ {
				k := fmt.Sprintf("key-%d", i%(2*capacity))
				c.Put(k, i)
				if v, ok := c.Get(k); !ok || v != i {
					t.Fatalf("just-put key %q = %d, %v", k, v, ok)
				}
			}
			if n := c.Len(); n > capacity {
				t.Fatalf("cache grew to %d entries, capacity %d", n, capacity)
			}
			st := c.Stats()
			if st.Evictions == 0 {
				t.Fatal("no evictions recorded despite 2x-capacity keyspace")
			}
			c.Purge()
			if c.Len() != 0 {
				t.Fatalf("Len after purge = %d", c.Len())
			}
		})
	}
}

// TestCachePolicyHitPathZeroAlloc pins the shell's promise: a warm Get is
// allocation-free under every policy (LRU relinks, 2Q relinks or holds,
// LFU sifts a heap in place).
func TestCachePolicyHitPathZeroAlloc(t *testing.T) {
	for _, pol := range allPolicies {
		t.Run(string(pol), func(t *testing.T) {
			c := NewCachePolicy[string, int](pol, 64, 4, StringHash)
			c.Put("warm", 7)
			var v int
			if avg := testing.AllocsPerRun(200, func() {
				got, ok := c.Get("warm")
				if !ok {
					t.Fatal("warm key missed")
				}
				v = got
			}); avg > 0 {
				t.Fatalf("%s hit allocates %.1f allocs/run, want 0", pol, avg)
			}
			if v != 7 {
				t.Fatalf("hit value = %d", v)
			}
		})
	}
}

// FuzzCachePolicies feeds arbitrary op tapes to all three policies at
// once, holding every policy to the shared model: bounded live size, and
// hits that return exactly the last value put for the key.
func FuzzCachePolicies(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x11, 0x00})
	f.Add([]byte("put-get-put-get-scan-scan-scan"))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const capacity = 8
		pols := make([]cachePolicy[byte, int], 0, len(allPolicies))
		for _, pol := range allPolicies {
			pols = append(pols, newPolicy[byte, int](pol, capacity))
		}
		latest := map[byte]int{}
		for i := 0; i+1 < len(tape); i += 2 {
			op, key := tape[i], tape[i+1]%32
			for pi, p := range pols {
				if op&1 == 0 {
					if pi == 0 {
						latest[key] = i
					}
					p.put(key, i)
				} else if v, ok := p.get(key); ok {
					want, ever := latest[key]
					if !ever || v != want {
						t.Fatalf("%s: op %d key %d = %d, want %d (ever=%v)",
							allPolicies[pi], i, key, v, want, ever)
					}
				}
				if n := p.len(); n > capacity {
					t.Fatalf("%s: op %d: %d live entries exceed capacity", allPolicies[pi], i, n)
				}
			}
		}
	})
}
