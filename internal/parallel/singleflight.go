package parallel

import "errors"

// This file is the cache's stampede control: GetOrCompute collapses
// concurrent misses on one key into a single loader execution. The first
// goroutine to miss registers an in-flight call in its shard and runs
// the loader outside the lock; every other goroutine that misses the
// same key while the call is pending blocks on the winner's done channel
// and shares its result. A re-plan burst or a freshly registered
// workflow under load therefore runs each distinct GIL simulation or
// profile once, not once per waiter.
//
// Errors are returned to the winner and every waiter of that one flight,
// but never cached: the next miss after a failed load starts a fresh
// computation.

// errLoaderPanic wakes waiters when a loader panics; the panic itself
// propagates on the winner's goroutine.
var errLoaderPanic = errors.New("parallel: cache loader panicked")

// flightCall is one in-flight loader execution. val and err are written
// once, before done is closed; waiters read them only after <-done.
type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// GetOrCompute returns the cached value for key, computing and inserting
// it on a miss. Concurrent misses on the same key run fn exactly once:
// losers block until the winner's result lands and share it.
func (c *Cache[K, V]) GetOrCompute(key K, fn func() V) V {
	v, _, _ := c.GetOrComputeErr(key, func() (V, error) { return fn(), nil })
	return v
}

// GetOrComputeErr is GetOrCompute for fallible loaders. computed reports
// whether this goroutine ran fn (false on a cache hit or when the result
// was shared from another goroutine's in-flight call). A loader error is
// delivered to the winner and every waiter of that flight but is not
// cached — the next lookup recomputes.
func (c *Cache[K, V]) GetOrComputeErr(key K, fn func() (V, error)) (v V, computed bool, err error) {
	s := c.shard(key)
	s.mu.Lock()
	if v, ok := s.pol.get(key); ok {
		s.mu.Unlock()
		c.hits.Inc()
		return v, false, nil
	}
	return c.computeLocked(s, key, fn, true)
}

// ComputeMissed joins or starts the singleflight for a key the caller
// already observed missing via Get. Hot paths use the Get+ComputeMissed
// pair so their hit path stays closure-free (building the loader closure
// only after the zero-alloc Get fails); the caller's Get recorded the
// miss, so this entry point never re-counts it. Either way the counters
// satisfy the invariant: loader executions = Misses - Shared.
func (c *Cache[K, V]) ComputeMissed(key K, fn func() (V, error)) (v V, computed bool, err error) {
	s := c.shard(key)
	s.mu.Lock()
	if v, ok := s.pol.get(key); ok {
		// The value landed between the caller's Get and this call: a miss
		// rescued by another goroutine's compute, same as joining its
		// flight a moment earlier — count it Shared so the invariant
		// above stays exact.
		s.mu.Unlock()
		c.shared.Inc()
		return v, false, nil
	}
	return c.computeLocked(s, key, fn, false)
}

// computeLocked joins the key's in-flight call or becomes its winner.
// countMiss records the lookup miss here (false when the caller's Get
// already did). Called with s.mu held; returns with it released.
func (c *Cache[K, V]) computeLocked(s *cacheShard[K, V], key K, fn func() (V, error), countMiss bool) (V, bool, error) {
	if f, ok := s.fl[key]; ok {
		s.mu.Unlock()
		if countMiss {
			c.misses.Inc()
		}
		c.shared.Inc()
		<-f.done
		return f.val, false, f.err
	}
	f := &flightCall[V]{done: make(chan struct{})}
	if s.fl == nil {
		s.fl = make(map[K]*flightCall[V])
	}
	s.fl[key] = f
	s.mu.Unlock()
	if countMiss {
		c.misses.Inc()
	}

	finished := false
	defer func() {
		// On a loader panic, unblock the waiters with an error and let
		// the panic propagate on this goroutine.
		if !finished {
			f.err = errLoaderPanic
			s.mu.Lock()
			delete(s.fl, key)
			s.mu.Unlock()
			close(f.done)
		}
	}()
	f.val, f.err = fn()
	finished = true

	s.mu.Lock()
	delete(s.fl, key)
	evicted := 0
	if f.err == nil {
		evicted = s.pol.put(key, f.val)
	}
	s.mu.Unlock()
	close(f.done)
	for ; evicted > 0; evicted-- {
		c.evicts.Inc()
	}
	return f.val, true, f.err
}
