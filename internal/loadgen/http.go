package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"chiron/internal/metrics"
	"chiron/internal/obs"
)

// HTTP-driver metrics, in the process-wide registry.
var (
	drvSent     = obs.Default.Counter("chiron_drive_sent_total", "requests issued by the closed-loop HTTP driver")
	drvRejected = obs.Default.Counter("chiron_drive_rejected_total", "driver requests rejected with 429")
	drvFailed   = obs.Default.Counter("chiron_drive_failed_total", "driver requests that errored (non-2xx/429 or transport)")
	drvLatency  = obs.Default.Histogram("chiron_drive_latency", "driver-observed request latency (wall seconds)", nil)
)

// DriveOptions configure the closed-loop HTTP driver.
type DriveOptions struct {
	// Requests is the total invocations to issue (default 100).
	Requests int
	// Concurrency is the closed-loop width: that many workers each keep
	// exactly one request outstanding (default 4).
	Concurrency int
	// Timeout bounds one HTTP round trip (default 60s).
	Timeout time.Duration
	// Body is the POST body (default empty).
	Body []byte
	// Client overrides the HTTP client (Timeout still applies per
	// request via context).
	Client *http.Client
	// Async (UDP driver only): submit invocations detached and await
	// each completion reply, exercising the ack+completion path.
	Async bool
	// SLO, when non-zero, counts OK requests slower than it (wall
	// clock) into DriveStats.Violations — the driver-side view of the
	// server's burn-rate accounting.
	SLO time.Duration
}

// DriveStats summarize one closed-loop run against a gateway.
type DriveStats struct {
	Sent     int
	OK       int
	Rejected int // 429 responses (admission backpressure)
	Failed   int
	// Violations counts OK requests slower than DriveOptions.SLO (0
	// when no SLO was set).
	Violations int
	// Latency of OK requests, wall clock.
	Mean, P50, P95, P99 time.Duration
	Elapsed             time.Duration
	// Throughput is OK requests per wall second.
	Throughput float64
}

// DriveHTTP is loadgen's online counterpart: where Simulate models an
// open-loop arrival process on virtual time, DriveHTTP closes the loop
// against a real chirond gateway — Concurrency workers each fire the
// next request the moment the previous one returns, so offered load
// self-regulates to the gateway's service rate (and its backpressure:
// 429s are counted, honoured via Retry-After, and retried against the
// remaining budget).
func DriveHTTP(ctx context.Context, url string, opt DriveOptions) (*DriveStats, error) {
	if opt.Requests <= 0 {
		opt.Requests = 100
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 4
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 60 * time.Second
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{}
	}

	var (
		next       atomic.Int64
		mu         sync.Mutex
		lats       []time.Duration
		ok, rej    int
		failed     int
		violations int
		firstErr   error
	)
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opt.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if n := next.Add(1); n > int64(opt.Requests) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				drvSent.Inc()
				start := time.Now()
				status, retryAfter, err := post(ctx, client, url, opt)
				lat := time.Since(start)
				mu.Lock()
				switch {
				case err != nil:
					failed++
					drvFailed.Inc()
					if firstErr == nil {
						firstErr = err
					}
				case status == http.StatusTooManyRequests:
					rej++
					drvRejected.Inc()
				case status >= 200 && status < 300:
					ok++
					lats = append(lats, lat)
					drvLatency.Observe(lat)
					if opt.SLO > 0 && lat > opt.SLO {
						violations++
					}
				default:
					failed++
					drvFailed.Inc()
					if firstErr == nil {
						firstErr = fmt.Errorf("loadgen: HTTP %d from %s", status, url)
					}
				}
				mu.Unlock()
				if status == http.StatusTooManyRequests && retryAfter > 0 {
					// Honour backpressure before the next attempt.
					select {
					case <-time.After(retryAfter):
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	st := &DriveStats{
		Sent:       ok + rej + failed,
		OK:         ok,
		Rejected:   rej,
		Failed:     failed,
		Violations: violations,
		Elapsed:    time.Since(t0),
	}
	if st.Elapsed > 0 {
		st.Throughput = float64(ok) / st.Elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st.Mean = metrics.Mean(lats)
		st.P50 = metrics.Percentile(lats, 0.50)
		st.P95 = metrics.Percentile(lats, 0.95)
		st.P99 = metrics.Percentile(lats, 0.99)
	}
	if ok == 0 && firstErr != nil {
		return st, fmt.Errorf("loadgen: no request succeeded: %w", firstErr)
	}
	return st, nil
}

// post issues one invocation and returns (status, Retry-After, error).
func post(ctx context.Context, client *http.Client, url string, opt DriveOptions) (int, time.Duration, error) {
	rctx, cancel := context.WithTimeout(ctx, opt.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url, bodyReader(opt.Body))
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	var retry time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil {
			retry = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retry, nil
}

func bodyReader(b []byte) io.Reader {
	if len(b) == 0 {
		return nil
	}
	return bytes.NewReader(b)
}
