package loadgen

import (
	"testing"
	"time"

	"chiron/internal/parallel"
)

func fixedServer(instances int, svc time.Duration) Server {
	return Server{Instances: instances, ServiceTimes: []time.Duration{svc}}
}

func TestLowLoadSojournNearService(t *testing.T) {
	s := fixedServer(4, 10*time.Millisecond)
	st, err := Simulate(s, 20, Options{Seed: 1}) // 5% of capacity
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean < 10*time.Millisecond {
		t.Fatalf("mean %v below the service time", st.Mean)
	}
	if st.Mean > 12*time.Millisecond {
		t.Fatalf("mean %v at 5%% load; queueing should be negligible", st.Mean)
	}
	if st.Served < 400 {
		t.Fatalf("served only %d requests in 30s at 20 rps", st.Served)
	}
}

func TestNearCapacityQueues(t *testing.T) {
	s := fixedServer(4, 10*time.Millisecond)
	cap := s.Capacity() // 400 rps
	light, err := Simulate(s, cap*0.3, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Simulate(s, cap*0.97, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.P95 <= light.P95 {
		t.Fatalf("p95 did not grow with load: %v vs %v", heavy.P95, light.P95)
	}
	if heavy.MaxQueue == 0 {
		t.Fatal("no queueing observed at 97% load")
	}
}

func TestOverloadExplodesLatency(t *testing.T) {
	s := fixedServer(2, 10*time.Millisecond)
	over, err := Simulate(s, s.Capacity()*1.5, Options{Seed: 3, Duration: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Overload: the queue grows without bound, so late requests wait far
	// beyond the 10ms service time.
	if over.P99 < 100*time.Millisecond {
		t.Fatalf("p99 %v under 1.5x overload; queue model broken", over.P99)
	}
}

func TestMaxRateBelowCapacityAboveZero(t *testing.T) {
	s := fixedServer(4, 10*time.Millisecond)
	rate, err := MaxRate(s, 25*time.Millisecond, Options{Seed: 4, Duration: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatal("sustainable rate is zero for a comfortably meetable SLO")
	}
	if rate >= s.Capacity() {
		t.Fatalf("sustainable rate %v >= zero-queueing capacity %v", rate, s.Capacity())
	}
	// A server whose service time alone misses the SLO sustains nothing.
	zero, err := MaxRate(fixedServer(4, 50*time.Millisecond), 25*time.Millisecond, Options{Seed: 4, Duration: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Fatalf("impossible SLO sustained %v rps", zero)
	}
}

func TestMoreInstancesSustainMore(t *testing.T) {
	slo := 30 * time.Millisecond
	opt := Options{Seed: 5, Duration: 10 * time.Second}
	small, err := MaxRate(fixedServer(2, 10*time.Millisecond), slo, opt)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MaxRate(fixedServer(8, 10*time.Millisecond), slo, opt)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("8 instances (%v rps) should sustain more than 2 (%v rps)", big, small)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	s := fixedServer(3, 8*time.Millisecond)
	a, err := Simulate(s, 100, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(s, 100, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean || a.Served != b.Served {
		t.Fatal("same seed differed")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(Server{}, 10, Options{}); err == nil {
		t.Error("empty server accepted")
	}
	if _, err := Simulate(fixedServer(1, time.Millisecond), 0, Options{}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Simulate(Server{Instances: 1, ServiceTimes: []time.Duration{0}}, 1, Options{}); err == nil {
		t.Error("zero service time accepted")
	}
	if _, err := MaxRate(fixedServer(1, time.Millisecond), 0, Options{}); err == nil {
		t.Error("zero SLO accepted")
	}
}

func TestSweepRatesDeterministicAcrossWorkerCounts(t *testing.T) {
	s := fixedServer(3, 8*time.Millisecond)
	rates := []float64{50, 100, 200, 300}
	run := func(workers int) []*Stats {
		prev := parallel.Workers()
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		out, err := SweepRates(s, rates, Options{Seed: 9, Duration: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	par := run(8)
	for i := range rates {
		if seq[i].Mean != par[i].Mean || seq[i].Served != par[i].Served || seq[i].P99 != par[i].P99 {
			t.Fatalf("rate %v differs between 1 and 8 workers: %+v vs %+v", rates[i], seq[i], par[i])
		}
	}
	// Distinct rates must not share an arrival stream: the derived seeds
	// differ, so equal rates at different indices still draw differently.
	same, err := SweepRates(s, []float64{100, 100}, Options{Seed: 9, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if same[0].Mean == same[1].Mean && same[0].Served == same[1].Served && same[0].P99 == same[1].P99 {
		t.Fatal("identical stats for distinct sweep indices — seeds not derived per index")
	}
}
