package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// DriveHTTP must classify responses (2xx OK, 429 rejected, rest failed),
// honour Retry-After, and keep going against the remaining budget.
func TestDriveHTTPClassifiesResponses(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch hits.Add(1) {
		case 1, 2:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
		case 3:
			w.WriteHeader(http.StatusInternalServerError)
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer srv.Close()

	st, err := DriveHTTP(context.Background(), srv.URL, DriveOptions{
		Requests:    20,
		Concurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 20 {
		t.Fatalf("sent %d, want 20", st.Sent)
	}
	if st.Rejected != 2 || st.Failed != 1 || st.OK != 17 {
		t.Fatalf("ok/rejected/failed = %d/%d/%d, want 17/2/1", st.OK, st.Rejected, st.Failed)
	}
	if st.P50 <= 0 || st.Mean <= 0 || st.Throughput <= 0 {
		t.Fatalf("latency summary not populated: %+v", st)
	}
}

// With no successful request at all, the driver reports the first error.
func TestDriveHTTPAllFailed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	st, err := DriveHTTP(context.Background(), srv.URL, DriveOptions{Requests: 4, Concurrency: 1})
	if err == nil {
		t.Fatal("all-failed run returned nil error")
	}
	if st.Failed != 4 || st.OK != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// Cancelling the context stops the closed loop early.
func TestDriveHTTPContextCancel(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
		close(release)
	}()
	st, _ := DriveHTTP(ctx, srv.URL, DriveOptions{Requests: 1000, Concurrency: 2, Timeout: 5 * time.Second})
	if st.Sent >= 1000 {
		t.Fatalf("driver ignored cancellation: sent %d", st.Sent)
	}
}
