package loadgen

import (
	"context"
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/obs"
	"chiron/internal/serve"
	"chiron/internal/udp"
)

func driveTestServer(t *testing.T) *udp.Server {
	t.Helper()
	app := serve.New(serve.Options{Scale: 0.02, Reg: obs.NewRegistry()})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = app.Shutdown(ctx)
	})
	mk := func(name string) *behavior.Spec {
		return &behavior.Spec{
			Name: name, Runtime: behavior.Python,
			Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: 4 * time.Millisecond}},
			MemMB:    64,
		}
	}
	w, err := dag.FromStages("wf-drive", 0, []*behavior.Spec{mk("f1")}, []*behavior.Spec{mk("f2")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Register(w); err != nil {
		t.Fatal(err)
	}
	if _, err := app.PlanWorkflow("wf-drive", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	srv, err := udp.New(app, udp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestDriveUDPClosedLoop(t *testing.T) {
	srv := driveTestServer(t)
	st, err := DriveUDP(context.Background(), srv.Addr().String(), "wf-drive", DriveOptions{
		Requests: 40, Concurrency: 4, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 40 || st.OK+st.Rejected != st.Sent || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.OK == 0 || st.Throughput <= 0 || st.P95 < st.P50 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDriveUDPAsync(t *testing.T) {
	srv := driveTestServer(t)
	st, err := DriveUDP(context.Background(), srv.Addr().String(), "wf-drive", DriveOptions{
		Requests: 20, Concurrency: 2, Timeout: 10 * time.Second, Async: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed != 0 || st.OK == 0 {
		t.Fatalf("async stats %+v", st)
	}
}

func TestDriveUDPDurationBounded(t *testing.T) {
	srv := driveTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	st, err := DriveUDP(ctx, srv.Addr().String(), "wf-drive", DriveOptions{
		Requests: 1 << 30, Concurrency: 4, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ctx expiry is a clean stop: everything sent was answered.
	if st.Failed != 0 || st.OK == 0 || st.OK+st.Rejected != st.Sent {
		t.Fatalf("stats %+v", st)
	}
	if st.Elapsed > 5*time.Second {
		t.Fatalf("duration-bounded drive ran %v", st.Elapsed)
	}
}

func TestDriveUDPUnknownWorkflow(t *testing.T) {
	srv := driveTestServer(t)
	st, err := DriveUDP(context.Background(), srv.Addr().String(), "no-such", DriveOptions{
		Requests: 5, Concurrency: 1, Timeout: 5 * time.Second,
	})
	if err == nil {
		t.Fatalf("expected failure, got %+v", st)
	}
	if st == nil || st.Failed != 5 || st.OK != 0 {
		t.Fatalf("stats %+v", st)
	}
}
