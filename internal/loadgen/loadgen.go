// Package loadgen measures a deployment's sustainable throughput
// empirically: an open-loop arrival simulation over the virtual-time
// kernel, with Poisson arrivals, a bounded fleet of deployment instances,
// FIFO queueing, and per-request service times drawn from the engine's
// measured latency distribution.
//
// Figure 16's throughput metric (instances per node / latency) is the
// zero-queueing upper bound; this package shows where latency actually
// collapses as offered load approaches that bound, and finds the maximum
// arrival rate that still meets a latency SLO (MaxRate).
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"chiron/internal/metrics"
	"chiron/internal/obs"
	"chiron/internal/parallel"
	"chiron/internal/sim"
)

// Load-generator metrics, in the process-wide registry.
var (
	lgServed  = obs.Default.Counter("chiron_loadgen_served_total", "requests completed across load simulations")
	lgSojourn = obs.Default.Histogram("chiron_loadgen_sojourn", "request sojourn time (queueing + service, virtual seconds)", nil)
)

// kernelPool recycles event kernels across runs: MaxRate's binary search
// alone performs ~15 simulations, and each one queues tens of thousands of
// events whose heap storage is worth keeping warm.
var kernelPool = sync.Pool{New: func() interface{} { return sim.New() }}

// Server models the serving fleet: how many instances exist and the
// empirical distribution of one request's service time.
type Server struct {
	// Instances is the fleet size (e.g. node.MaxInstances).
	Instances int
	// ServiceTimes is the empirical service-time sample (e.g.
	// engine.RunMany output); requests draw from it uniformly.
	ServiceTimes []time.Duration
}

// Validate reports malformed servers.
func (s Server) Validate() error {
	if s.Instances < 1 {
		return fmt.Errorf("loadgen: %d instances", s.Instances)
	}
	if len(s.ServiceTimes) == 0 {
		return fmt.Errorf("loadgen: empty service-time sample")
	}
	for _, d := range s.ServiceTimes {
		if d <= 0 {
			return fmt.Errorf("loadgen: non-positive service time %v", d)
		}
	}
	return nil
}

// MeanService returns the sample's mean service time.
func (s Server) MeanService() time.Duration { return metrics.Mean(s.ServiceTimes) }

// Capacity returns the zero-queueing throughput bound in requests/second.
func (s Server) Capacity() float64 {
	return float64(s.Instances) / s.MeanService().Seconds()
}

// Stats summarizes one simulated load run.
type Stats struct {
	// Offered is the arrival rate (req/s).
	Offered float64
	// Served is the number of completed requests.
	Served int
	// Mean, P50, P95 and P99 are sojourn times (queueing + service).
	Mean, P50, P95, P99 time.Duration
	// MaxQueue is the deepest backlog observed.
	MaxQueue int
}

// Options configure a run.
type Options struct {
	// Duration is the simulated interval (default 30s).
	Duration time.Duration
	// Seed drives arrivals and service sampling.
	Seed int64
	// Rec, when non-nil, receives one span per served request (PID 0,
	// category "load") and a queue-depth counter sample at every
	// arrival and departure, all in virtual time.
	Rec obs.Recorder
}

// Simulate runs an open-loop experiment: Poisson arrivals at `rate`
// requests/second against the server, for the configured duration.
func Simulate(s Server, rate float64, opt Options) (*Stats, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive rate %v", rate)
	}
	if opt.Duration <= 0 {
		opt.Duration = 30 * time.Second
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	k := kernelPool.Get().(*sim.Kernel)
	defer func() {
		k.Reset()
		kernelPool.Put(k)
	}()

	free := s.Instances
	type pending struct{ arrived time.Duration }
	var queue []pending
	var sojourns []time.Duration
	maxQueue := 0
	sampleQueue := func() {
		if opt.Rec != nil {
			opt.Rec.RecordSample(obs.Sample{PID: 0, Name: "queue_depth", At: k.Now(), Value: float64(len(queue))})
		}
	}

	var serve func(p pending)
	serve = func(p pending) {
		free--
		svc := s.ServiceTimes[rng.Intn(len(s.ServiceTimes))]
		k.After(svc, func() {
			sojourns = append(sojourns, k.Now()-p.arrived)
			lgServed.Inc()
			lgSojourn.Observe(k.Now() - p.arrived)
			if opt.Rec != nil {
				opt.Rec.RecordSpan(obs.Span{
					PID: 0, TID: 0, Name: "req", Cat: obs.CatLoad,
					Start: p.arrived, End: k.Now(),
				})
			}
			free++
			if len(queue) > 0 {
				next := queue[0]
				queue = queue[1:]
				sampleQueue()
				serve(next)
			}
		})
	}

	// Poisson arrivals: exponential inter-arrival times.
	var arrive func()
	arrive = func() {
		p := pending{arrived: k.Now()}
		if free > 0 {
			serve(p)
		} else {
			queue = append(queue, p)
			if len(queue) > maxQueue {
				maxQueue = len(queue)
			}
			sampleQueue()
		}
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if next := k.Now() + gap; next <= opt.Duration {
			k.At(next, arrive)
		}
	}
	k.At(0, arrive)
	k.SetBudget(50_000_000)
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("loadgen: simulation exploded: %w", err)
	}
	if len(sojourns) == 0 {
		return nil, fmt.Errorf("loadgen: no requests completed")
	}
	sort.Slice(sojourns, func(i, j int) bool { return sojourns[i] < sojourns[j] })
	return &Stats{
		Offered:  rate,
		Served:   len(sojourns),
		Mean:     metrics.Mean(sojourns),
		P50:      metrics.Percentile(sojourns, 0.50),
		P95:      metrics.Percentile(sojourns, 0.95),
		P99:      metrics.Percentile(sojourns, 0.99),
		MaxQueue: maxQueue,
	}, nil
}

// SweepRates simulates every offered rate on the parallel worker pool and
// returns the stats in rate order. Each rate gets an independent seed
// derived from opt.Seed and its index (parallel.Seed), so the sweep's
// output is identical at any worker count and no two rates share an
// arrival stream.
func SweepRates(s Server, rates []float64, opt Options) ([]*Stats, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return parallel.Map(len(rates), func(i int) (*Stats, error) {
		o := opt
		o.Seed = parallel.Seed(opt.Seed, i)
		return Simulate(s, rates[i], o)
	})
}

// MaxRate binary-searches the highest arrival rate whose p95 sojourn time
// stays within the SLO. The search is bracketed by the zero-queueing
// capacity bound.
func MaxRate(s Server, slo time.Duration, opt Options) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if slo <= 0 {
		return 0, fmt.Errorf("loadgen: non-positive SLO")
	}
	meets := func(rate float64) (bool, error) {
		st, err := Simulate(s, rate, opt)
		if err != nil {
			return false, err
		}
		return st.P95 <= slo, nil
	}
	hi := s.Capacity()
	lo := 0.0
	// If even a trickle misses (service time above SLO), the answer is 0.
	ok, err := meets(math.Max(hi/100, 0.1))
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	// The capacity bound itself usually queues past the SLO; expand the
	// bracket only if it somehow holds.
	if ok, err = meets(hi); err != nil {
		return 0, err
	} else if ok {
		return hi, nil
	}
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
