package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chiron/internal/metrics"
	"chiron/internal/obs"
	"chiron/internal/udp"
)

// UDP-driver metrics, in the process-wide registry (the driver-side
// twins of the server's chiron_udp_* counters).
var (
	drvUDPSent     = obs.Default.Counter("chiron_drive_udp_sent_total", "invocations issued by the closed-loop UDP driver")
	drvUDPRejected = obs.Default.Counter("chiron_drive_udp_rejected_total", "UDP driver invocations rejected (overload backpressure)")
	drvUDPFailed   = obs.Default.Counter("chiron_drive_udp_failed_total", "UDP driver invocations that failed or lost their reply")
	drvUDPLatency  = obs.Default.Histogram("chiron_drive_udp_latency", "UDP driver-observed invocation latency (wall seconds)", nil)
)

// DriveUDP is DriveHTTP's twin for the binary ingress plane: Concurrency
// workers each hold one connected, token-handshaked udp.Client and keep
// exactly one invocation outstanding, so offered load self-regulates to
// the server's service rate. StatusOverloaded replies are counted as
// rejections and honoured via the retry-after hint; a reply that never
// arrives (datagram loss, timeout) counts as failed. With opt.Async each
// invocation is submitted detached and the worker then awaits its
// completion reply, exercising the ack+completion path end to end.
//
// Cancelling ctx stops cleanly: workers finish the invocation in flight
// (its reply still counts) and return, so a time-bounded soak reports
// zero failures unless replies were actually dropped.
func DriveUDP(ctx context.Context, addr, workflow string, opt DriveOptions) (*DriveStats, error) {
	if opt.Requests <= 0 {
		opt.Requests = 100
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 4
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 60 * time.Second
	}
	hash := udp.HashWorkflow(workflow)

	var flags byte
	if opt.Async {
		flags = udp.FlagAsync
	}

	var (
		next     atomic.Int64
		mu       sync.Mutex
		lats     []time.Duration
		ok, rej  int
		failed   int
		firstErr error
	)
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opt.Concurrency; w++ {
		c, err := udp.Dial(addr, opt.Timeout)
		if err != nil {
			wg.Wait()
			return nil, fmt.Errorf("loadgen: udp worker %d: %w", w, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			for {
				if n := next.Add(1); n > int64(opt.Requests) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				drvUDPSent.Inc()
				start := time.Now()
				r, err := c.Invoke(hash, opt.Body, opt.Timeout, flags)
				if err == nil && r.Type == udp.TypeAck {
					r, err = c.Await(r.ID)
				}
				lat := time.Since(start)
				mu.Lock()
				switch {
				case err != nil:
					failed++
					drvUDPFailed.Inc()
					if firstErr == nil {
						firstErr = err
					}
				case r.Status == udp.StatusOK:
					ok++
					lats = append(lats, lat)
					drvUDPLatency.Observe(lat)
				case r.Status == udp.StatusOverloaded:
					rej++
					drvUDPRejected.Inc()
				default:
					failed++
					drvUDPFailed.Inc()
					if firstErr == nil {
						firstErr = fmt.Errorf("loadgen: udp status %d for %s", r.Status, workflow)
					}
				}
				mu.Unlock()
				if err == nil && r.Status == udp.StatusOverloaded && r.Aux > 0 {
					select {
					case <-time.After(r.Aux):
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	st := &DriveStats{
		Sent:     ok + rej + failed,
		OK:       ok,
		Rejected: rej,
		Failed:   failed,
		Elapsed:  time.Since(t0),
	}
	if st.Elapsed > 0 {
		st.Throughput = float64(ok) / st.Elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st.Mean = metrics.Mean(lats)
		st.P50 = metrics.Percentile(lats, 0.50)
		st.P95 = metrics.Percentile(lats, 0.95)
		st.P99 = metrics.Percentile(lats, 0.99)
	}
	if ok == 0 && firstErr != nil {
		return st, fmt.Errorf("loadgen: no invocation succeeded: %w", firstErr)
	}
	if ok == 0 && errors.Is(ctx.Err(), context.Canceled) {
		return st, ctx.Err()
	}
	return st, nil
}
