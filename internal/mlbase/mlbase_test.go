package mlbase

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Fatalf("At = %v", m.At(0, 1))
	}
	if len(m.Row(1)) != 3 {
		t.Fatal("Row width wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases")
	}
	m.Zero()
	if m.At(0, 1) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMat(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	out := m.MulVec([]float64{5, 6})
	if out[0] != 17 || out[1] != 39 {
		t.Fatalf("MulVec = %v", out)
	}
}

func TestAXPY(t *testing.T) {
	a := NewMat(1, 2)
	b := NewMat(1, 2)
	b.Set(0, 0, 2)
	b.Set(0, 1, 3)
	a.AXPY(0.5, b)
	if a.At(0, 0) != 1 || a.At(0, 1) != 1.5 {
		t.Fatalf("AXPY = %v", a.Data)
	}
}

func TestShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"NewMat":    func() { NewMat(0, 1) },
		"MulVec":    func() { NewMat(1, 2).MulVec([]float64{1}) },
		"AXPY":      func() { NewMat(1, 2).AXPY(1, NewMat(2, 1)) },
		"Dot":       func() { Dot([]float64{1}, []float64{1, 2}) },
		"AddScaled": func() { AddScaled([]float64{1}, 1, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on shape mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 100}, {3, 300}, {5, 500}}
	s := FitStandardizer(X)
	out := s.TransformAll(X)
	for j := 0; j < 2; j++ {
		var mean, v float64
		for i := range out {
			mean += out[i][j]
		}
		mean /= 3
		for i := range out {
			d := out[i][j] - mean
			v += d * d
		}
		if math.Abs(mean) > 1e-9 || math.Abs(v/3-1) > 1e-9 {
			t.Fatalf("column %d not standardized: mean=%v var=%v", j, mean, v/3)
		}
	}
}

func TestStandardizerConstantColumn(t *testing.T) {
	s := FitStandardizer([][]float64{{7}, {7}})
	out := s.Transform([]float64{7})
	if out[0] != 0 {
		t.Fatalf("constant column -> %v, want 0 (no div-by-zero blowup)", out[0])
	}
}

func TestSplitDeterministicDisjoint(t *testing.T) {
	tr1, te1 := Split(100, 0.8, 42)
	tr2, te2 := Split(100, 0.8, 42)
	if len(tr1) != 80 || len(te1) != 20 {
		t.Fatalf("split sizes %d/%d", len(tr1), len(te1))
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatal("split not deterministic")
		}
	}
	_ = te2
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, tr1...), te1...) {
		if seen[i] {
			t.Fatal("index repeated across train/test")
		}
		seen[i] = true
	}
	if len(seen) != 100 {
		t.Fatal("indices lost")
	}
}

func TestSplitExtremesStayNonEmpty(t *testing.T) {
	tr, te := Split(3, 0.99, 1)
	if len(tr) == 0 || len(te) == 0 {
		t.Fatal("split produced empty side")
	}
}

func TestMAPEAndMAE(t *testing.T) {
	pred := []float64{110, 90}
	truth := []float64{100, 100}
	if got := MAPE(pred, truth); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE = %v", got)
	}
	if got := MAE(pred, truth); got != 10 {
		t.Fatalf("MAE = %v", got)
	}
}

func TestActivations(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Fatal("Sigmoid(0)")
	}
	if ReLU(-1) != 0 || ReLU(2) != 2 {
		t.Fatal("ReLU")
	}
	if Tanh(0) != 0 {
		t.Fatal("Tanh")
	}
}

func TestRandMatDeterministic(t *testing.T) {
	a := RandMat(3, 3, 0.5, rand.New(rand.NewSource(1)))
	b := RandMat(3, 3, 0.5, rand.New(rand.NewSource(1)))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("RandMat not deterministic")
		}
		if a.Data[i] < -0.5 || a.Data[i] > 0.5 {
			t.Fatal("RandMat out of scale")
		}
	}
}
