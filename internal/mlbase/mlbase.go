// Package mlbase supplies the shared numeric plumbing for the learned
// latency-prediction baselines of Figure 12 (random forest, LSTM, GNN):
// small dense matrices, feature standardization, deterministic splits and
// error metrics. Everything is plain float64 slices — no BLAS, no
// dependencies — because the models are deliberately small: the paper's
// point is that with realistic profiling budgets they underperform the
// white-box Predictor.
package mlbase

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	Data []float64
}

// NewMat allocates an R x C zero matrix.
func NewMat(r, c int) *Mat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mlbase: invalid matrix shape %dx%d", r, c))
	}
	return &Mat{R: r, C: c, Data: make([]float64, r*c)}
}

// RandMat allocates an R x C matrix with entries uniform in
// [-scale, scale], deterministically from rng.
func RandMat(r, c int, scale float64, rng *rand.Rand) *Mat {
	m := NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// At returns m[i,j].
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns m[i,j] = v.
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Add accumulates m[i,j] += v.
func (m *Mat) Add(i, j int, v float64) { m.Data[i*m.C+j] += v }

// Row returns a view of row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone deep-copies the matrix.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all entries.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// AXPY performs m += alpha * g (shapes must match).
func (m *Mat) AXPY(alpha float64, g *Mat) {
	if m.R != g.R || m.C != g.C {
		panic("mlbase: AXPY shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += alpha * g.Data[i]
	}
}

// MulVec returns m * x for a length-C vector x.
func (m *Mat) MulVec(x []float64) []float64 {
	if len(x) != m.C {
		panic(fmt.Sprintf("mlbase: MulVec dim %d != %d", len(x), m.C))
	}
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mlbase: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AddScaled performs dst += alpha * src element-wise.
func AddScaled(dst []float64, alpha float64, src []float64) {
	if len(dst) != len(src) {
		panic("mlbase: AddScaled length mismatch")
	}
	for i := range dst {
		dst[i] += alpha * src[i]
	}
}

// Sigmoid is the logistic function.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Tanh wraps math.Tanh for symmetry with Sigmoid.
func Tanh(x float64) float64 { return math.Tanh(x) }

// ReLU is max(0, x).
func ReLU(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// Standardizer centers and scales features to zero mean / unit variance.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer learns per-column statistics from X (rows = samples).
func FitStandardizer(X [][]float64) *Standardizer {
	if len(X) == 0 {
		return &Standardizer{}
	}
	d := len(X[0])
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns a standardized copy of x.
func (s *Standardizer) Transform(x []float64) []float64 {
	if len(s.Mean) == 0 {
		return append([]float64(nil), x...)
	}
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardizes every row.
func (s *Standardizer) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}

// Split deterministically shuffles [0,n) and cuts it into train and test
// index sets with the given train fraction.
func Split(n int, trainFrac float64, seed int64) (train, test []int) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("mlbase: train fraction %v out of (0,1)", trainFrac))
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	cut := int(float64(n) * trainFrac)
	if cut < 1 {
		cut = 1
	}
	if cut >= n {
		cut = n - 1
	}
	return idx[:cut], idx[cut:]
}

// MAPE returns the mean absolute percentage error of predictions against
// ground truth (the paper's prediction-error metric, |P^ - P| / P).
func MAPE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		panic("mlbase: MAPE needs equal non-empty slices")
	}
	var s float64
	for i := range pred {
		if truth[i] == 0 {
			continue
		}
		s += math.Abs(pred[i]-truth[i]) / math.Abs(truth[i])
	}
	return s / float64(len(pred))
}

// MAE returns the mean absolute error.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		panic("mlbase: MAE needs equal non-empty slices")
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}
