package cfs

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

type fakeEnt struct {
	name string
	vr   time.Duration
}

func (f *fakeEnt) VRuntime() time.Duration { return f.vr }

func TestPopMinReturnsLeastVRuntime(t *testing.T) {
	var q Queue
	a := &fakeEnt{"a", 30}
	b := &fakeEnt{"b", 10}
	c := &fakeEnt{"c", 20}
	q.Add(a)
	q.Add(b)
	q.Add(c)
	want := []string{"b", "c", "a"}
	for i, w := range want {
		got := q.PopMin().(*fakeEnt).name
		if got != w {
			t.Fatalf("pop %d = %s, want %s", i, got, w)
		}
	}
	if q.PopMin() != nil {
		t.Fatal("PopMin on empty queue should return nil")
	}
}

func TestTiesAreFIFO(t *testing.T) {
	var q Queue
	for i := 0; i < 20; i++ {
		q.Add(&fakeEnt{name: string(rune('a' + i)), vr: 5})
	}
	for i := 0; i < 20; i++ {
		got := q.PopMin().(*fakeEnt).name
		if got != string(rune('a'+i)) {
			t.Fatalf("tie pop %d = %s, want FIFO order", i, got)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue
	q.Add(&fakeEnt{"x", 1})
	if q.Peek().(*fakeEnt).name != "x" {
		t.Fatal("Peek returned wrong entity")
	}
	if q.Len() != 1 {
		t.Fatal("Peek removed the entity")
	}
	q.PopMin()
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue should return nil")
	}
}

func TestReAddAfterRunning(t *testing.T) {
	// The GIL simulator's usage pattern: pop, accumulate vruntime, re-add.
	var q Queue
	a := &fakeEnt{"a", 0}
	b := &fakeEnt{"b", 0}
	q.Add(a)
	q.Add(b)

	first := q.PopMin().(*fakeEnt)
	if first.name != "a" {
		t.Fatalf("first pop = %s, want a (FIFO at vr=0)", first.name)
	}
	first.vr += 10
	q.Add(first)

	second := q.PopMin().(*fakeEnt)
	if second.name != "b" {
		t.Fatalf("after a accumulated vruntime, pop = %s, want b", second.name)
	}
}

func TestPropertyPopOrderIsSorted(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			q.Add(&fakeEnt{vr: time.Duration(rng.Int63n(1000))})
		}
		prev := time.Duration(-1)
		for q.Len() > 0 {
			e := q.PopMin().(*fakeEnt)
			if e.vr < prev {
				return false
			}
			prev = e.vr
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
