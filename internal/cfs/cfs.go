// Package cfs implements the pick-next-thread policy used by the GIL
// simulator and the process-pool model.
//
// The paper (Algorithm 1, line 17) emulates the Linux Completely Fair
// Scheduler: among runnable threads, the one with the minimum consumed CPU
// time runs next. This package provides a small run queue keyed on consumed
// CPU time ("vruntime"), with FIFO tie-breaking for determinism.
package cfs

import (
	"container/heap"
	"time"
)

// Entity is anything schedulable: it exposes and accumulates vruntime.
type Entity interface {
	// VRuntime returns the CPU time this entity has consumed so far.
	VRuntime() time.Duration
}

type item struct {
	e   Entity
	seq uint64
	idx int
}

type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	vi, vj := h[i].e.VRuntime(), h[j].e.VRuntime()
	if vi != vj {
		return vi < vj
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *itemHeap) Push(x interface{}) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Queue is a min-vruntime run queue. The zero value is ready to use.
// It is not safe for concurrent use.
type Queue struct {
	h   itemHeap
	seq uint64
}

// Len returns the number of queued entities.
func (q *Queue) Len() int { return len(q.h) }

// Add enqueues an entity. The same entity may be re-added after being
// popped; each residency is independent.
func (q *Queue) Add(e Entity) {
	heap.Push(&q.h, &item{e: e, seq: q.seq})
	q.seq++
}

// PopMin removes and returns the entity with the least vruntime
// (FIFO-ordered among ties). It returns nil when the queue is empty.
//
// Note: entities' vruntime must not change while they sit in the queue;
// callers re-Add after running, which is how both the GIL simulator and the
// pool model use it.
func (q *Queue) PopMin() Entity {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*item).e
}

// Peek returns the entity PopMin would return, without removing it.
func (q *Queue) Peek() Entity {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0].e
}
