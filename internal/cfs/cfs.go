// Package cfs implements the pick-next-thread policy used by the GIL
// simulator and the process-pool model.
//
// The paper (Algorithm 1, line 17) emulates the Linux Completely Fair
// Scheduler: among runnable threads, the one with the minimum consumed CPU
// time runs next. This package provides a small run queue keyed on consumed
// CPU time ("vruntime"), with FIFO tie-breaking for determinism.
//
// The heap is hand-rolled over a value slice (no container/heap, no
// interface boxing of items), so a warm queue performs zero heap
// allocations per Add/PopMin — part of the simulator's zero-allocation
// steady-state budget.
package cfs

import "time"

// Entity is anything schedulable: it exposes and accumulates vruntime.
type Entity interface {
	// VRuntime returns the CPU time this entity has consumed so far.
	VRuntime() time.Duration
}

// item caches the entity's vruntime at Add time. Entities must not mutate
// their vruntime while queued (documented on PopMin), so the cache is
// exact and saves an interface call per heap comparison.
type item struct {
	e   Entity
	v   time.Duration
	seq uint64
}

// Queue is a min-vruntime run queue. The zero value is ready to use.
// It is not safe for concurrent use.
type Queue struct {
	h   []item
	seq uint64
}

// Len returns the number of queued entities.
func (q *Queue) Len() int { return len(q.h) }

// Reset empties the queue, keeping its allocated capacity. Entity
// references in the backing array are cleared so they can be collected.
func (q *Queue) Reset() {
	for i := range q.h {
		q.h[i].e = nil
	}
	q.h = q.h[:0]
	q.seq = 0
}

func (q *Queue) less(i, j int) bool {
	if q.h[i].v != q.h[j].v {
		return q.h[i].v < q.h[j].v
	}
	return q.h[i].seq < q.h[j].seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		min := l
		if r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			return
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}

// Add enqueues an entity. The same entity may be re-added after being
// popped; each residency is independent.
func (q *Queue) Add(e Entity) {
	q.h = append(q.h, item{e: e, v: e.VRuntime(), seq: q.seq})
	q.seq++
	q.up(len(q.h) - 1)
}

// PopMin removes and returns the entity with the least vruntime
// (FIFO-ordered among ties). It returns nil when the queue is empty.
//
// Note: entities' vruntime must not change while they sit in the queue;
// callers re-Add after running, which is how both the GIL simulator and the
// pool model use it.
func (q *Queue) PopMin() Entity {
	n := len(q.h)
	if n == 0 {
		return nil
	}
	e := q.h[0].e
	q.h[0] = q.h[n-1]
	q.h[n-1].e = nil // release the reference held by the shrunk tail
	q.h = q.h[:n-1]
	q.down(0)
	return e
}

// Peek returns the entity PopMin would return, without removing it.
func (q *Queue) Peek() Entity {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0].e
}
