package adapt

import (
	"fmt"
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/engine"
	"chiron/internal/metrics"
	"chiron/internal/model"
	"chiron/internal/platform"
)

// shiftingWorkload's validator cost can be dialed up mid-run, the drift
// the controller must absorb.
type shiftingWorkload struct {
	validatorCPU time.Duration
}

func (s *shiftingWorkload) workflow() *dag.Workflow {
	vs := make([]*behavior.Spec, 10)
	for i := range vs {
		vs[i] = &behavior.Spec{
			Name: fmt.Sprintf("v%02d", i), Runtime: behavior.Python,
			Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: s.validatorCPU}},
			MemMB:    1,
		}
	}
	w, err := dag.FromStages("shifting", 0, vs)
	if err != nil {
		panic(err)
	}
	return w
}

func opts(slo time.Duration) Options {
	return Options{Const: model.Default(), SLO: slo, Window: 10}
}

// serve executes n requests of the source's CURRENT behaviour under the
// controller's active plan (behaviour drifts; the plan lags until the
// controller adapts).
func serve(t *testing.T, src *shiftingWorkload, c *Controller, seed int64, n int) (lats []time.Duration, replans int) {
	t.Helper()
	env := platform.Chiron(model.Default()).Env()
	for i := 0; i < n; i++ {
		env.Seed = seed + int64(i)*7919
		res, err := engine.Run(src.workflow(), c.Plan(), env)
		if err != nil {
			t.Fatal(err)
		}
		lats = append(lats, res.E2E)
		re, err := c.Observe(res.E2E)
		if err != nil {
			t.Fatal(err)
		}
		if re {
			replans++
		}
	}
	return lats, replans
}

func TestStableWorkloadNeverReplans(t *testing.T) {
	src := &shiftingWorkload{validatorCPU: 2 * time.Millisecond}
	c, err := New(src.workflow, opts(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, replans := serve(t, src, c, 1, 40)
	if replans != 0 {
		t.Fatalf("%d replans on a stable workload", replans)
	}
	if c.Replans() != 0 {
		t.Fatalf("Replans() = %d", c.Replans())
	}
}

func TestDriftTriggersReplanAndRecovers(t *testing.T) {
	slo := 60 * time.Millisecond
	src := &shiftingWorkload{validatorCPU: 2 * time.Millisecond}
	c, err := New(src.workflow, opts(slo))
	if err != nil {
		t.Fatal(err)
	}
	beforeProcs := countProcs(c)
	// The workload shifts: validators become 4x heavier. The active plan
	// (sized for 2ms functions) now misses the SLO.
	src.validatorCPU = 8 * time.Millisecond
	driftLats, replans := serve(t, src, c, 100, 30)
	if replans == 0 {
		t.Fatalf("no replan despite 4x heavier functions (mean %v, slo %v)",
			metrics.Mean(driftLats), slo)
	}
	afterProcs := countProcs(c)
	if afterProcs <= beforeProcs {
		t.Fatalf("replan did not add parallelism: %d -> %d processes", beforeProcs, afterProcs)
	}
	// After adaptation the deployment meets the SLO again.
	recovered, _ := serve(t, src, c, 500, 20)
	if v := metrics.ViolationRate(recovered, slo); v > 0.1 {
		t.Fatalf("still violating after adaptation: %.0f%% (mean %v)", v*100, metrics.Mean(recovered))
	}
}

func countProcs(c *Controller) int {
	procs := map[[2]int]bool{}
	for _, loc := range c.Plan().Loc {
		procs[[2]int{loc.Sandbox, loc.Proc}] = true
	}
	return len(procs)
}

func TestValidation(t *testing.T) {
	src := &shiftingWorkload{validatorCPU: time.Millisecond}
	if _, err := New(src.workflow, Options{Const: model.Default()}); err == nil {
		t.Error("missing SLO accepted")
	}
	bad := func() *dag.Workflow { return &dag.Workflow{Name: ""} }
	if _, err := New(bad, opts(time.Second)); err == nil {
		t.Error("invalid workflow source accepted")
	}
}

func TestObserveBelowWindowNoTrigger(t *testing.T) {
	src := &shiftingWorkload{validatorCPU: time.Millisecond}
	c, err := New(src.workflow, opts(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		re, err := c.Observe(time.Hour) // wildly violating, but window not full
		if err != nil {
			t.Fatal(err)
		}
		if re {
			t.Fatal("replanned before the window filled")
		}
	}
}
