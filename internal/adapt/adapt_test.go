package adapt

import (
	"fmt"
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/engine"
	"chiron/internal/metrics"
	"chiron/internal/model"
	"chiron/internal/platform"
)

// shiftingWorkload's validator cost can be dialed up mid-run, the drift
// the controller must absorb.
type shiftingWorkload struct {
	validatorCPU time.Duration
}

func (s *shiftingWorkload) workflow() *dag.Workflow {
	vs := make([]*behavior.Spec, 10)
	for i := range vs {
		vs[i] = &behavior.Spec{
			Name: fmt.Sprintf("v%02d", i), Runtime: behavior.Python,
			Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: s.validatorCPU}},
			MemMB:    1,
		}
	}
	w, err := dag.FromStages("shifting", 0, vs)
	if err != nil {
		panic(err)
	}
	return w
}

func opts(slo time.Duration) Options {
	return Options{Const: model.Default(), SLO: slo, Window: 10}
}

// serve executes n requests of the source's CURRENT behaviour under the
// controller's active plan (behaviour drifts; the plan lags until the
// controller adapts).
func serve(t *testing.T, src *shiftingWorkload, c *Controller, seed int64, n int) (lats []time.Duration, replans int) {
	t.Helper()
	env := platform.Chiron(model.Default()).Env()
	for i := 0; i < n; i++ {
		env.Seed = seed + int64(i)*7919
		res, err := engine.Run(src.workflow(), c.Plan(), env)
		if err != nil {
			t.Fatal(err)
		}
		lats = append(lats, res.E2E)
		act, err := c.Observe(res.E2E)
		if err != nil {
			t.Fatal(err)
		}
		if act == ActionReplanned {
			replans++
		}
	}
	return lats, replans
}

// feed pushes one full window of identical synthetic latencies and
// returns the window-closing action.
func feed(t *testing.T, c *Controller, lat time.Duration) Action {
	t.Helper()
	for i := 0; i < c.opt.Window-1; i++ {
		act, err := c.Observe(lat)
		if err != nil {
			t.Fatal(err)
		}
		if act != ActionNone {
			t.Fatalf("mid-window action %v", act)
		}
	}
	act, err := c.Observe(lat)
	if err != nil {
		t.Fatal(err)
	}
	return act
}

func TestStableWorkloadNeverReplans(t *testing.T) {
	src := &shiftingWorkload{validatorCPU: 2 * time.Millisecond}
	c, err := New(src.workflow, opts(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, replans := serve(t, src, c, 1, 40)
	if replans != 0 {
		t.Fatalf("%d replans on a stable workload", replans)
	}
	if c.Replans() != 0 {
		t.Fatalf("Replans() = %d", c.Replans())
	}
}

// TestConstantBiasCalibratesAway is the churn bug's regression test: a
// persistent executor overhead (observed = k x predicted, k above the
// drift trigger) must stop looking like drift after the first window
// calibrates the bias, so the controller never re-plans.
func TestConstantBiasCalibratesAway(t *testing.T) {
	src := &shiftingWorkload{validatorCPU: 2 * time.Millisecond}
	o := opts(time.Second) // generous SLO: the overhead is not a violation
	c, err := New(src.workflow, o)
	if err != nil {
		t.Fatal(err)
	}
	biased := time.Duration(2.0 * float64(c.Predicted())) // 2x > DriftTrigger 1.3
	if act := feed(t, c, biased); act != ActionCalibrated {
		t.Fatalf("first window: %v, want calibrated", act)
	}
	if b := c.Bias(); b < 1.9 || b > 2.1 {
		t.Fatalf("bias after priming = %.3f, want ~2.0", b)
	}
	for w := 0; w < 10; w++ {
		if act := feed(t, c, biased); act != ActionCalibrated {
			t.Fatalf("window %d under constant bias: %v, want calibrated", w, act)
		}
	}
	if c.Replans() != 0 || c.Suppressed() != 0 {
		t.Fatalf("constant bias caused churn: replans=%d suppressed=%d", c.Replans(), c.Suppressed())
	}
	if got, want := c.Corrected(), biased; got < want*9/10 || got > want*11/10 {
		t.Fatalf("corrected prediction %v, want ~%v", got, want)
	}
}

// TestGenuineDriftReplansExactlyOnce: after calibration, a real workload
// shift triggers exactly one adaptation; the post-swap windows (served
// at the new plan's own biased latency) stay quiet.
func TestGenuineDriftReplansExactlyOnce(t *testing.T) {
	src := &shiftingWorkload{validatorCPU: 2 * time.Millisecond}
	o := opts(5 * time.Second)
	o.Cooldown = 2
	c, err := New(src.workflow, o)
	if err != nil {
		t.Fatal(err)
	}
	p1 := c.Predicted()
	bias := 1.4
	steady := time.Duration(bias * float64(p1))
	feed(t, c, steady) // prime
	feed(t, c, steady) // quiet window (also clears the cooldown budget)
	feed(t, c, steady)

	// The workload shifts 4x; observed latency under the stale plan jumps
	// far past the corrected baseline.
	src.validatorCPU = 8 * time.Millisecond
	drifted := time.Duration(8 * bias * float64(p1))
	act := feed(t, c, drifted)
	if act != ActionReplanned {
		t.Fatalf("drift window: %v, want replanned", act)
	}
	if c.Replans() != 1 {
		t.Fatalf("Replans() = %d, want 1", c.Replans())
	}
	p2 := c.Predicted()
	// Post-swap: the new plan serves at its own (biased) latency. The
	// probation window sees an improvement, then everything is quiet.
	post := time.Duration(bias * float64(p2))
	if act := feed(t, c, post); act != ActionCalibrated {
		t.Fatalf("probation window: %v, want calibrated", act)
	}
	for w := 0; w < 6; w++ {
		if act := feed(t, c, post); act != ActionCalibrated {
			t.Fatalf("post-swap window %d: %v, want calibrated", w, act)
		}
	}
	if c.Replans() != 1 {
		t.Fatalf("post-swap churn: Replans() = %d, want exactly 1", c.Replans())
	}
}

// TestCooldownSuppressesBackToBackTriggers: triggers inside the cooldown
// are suppressed, not adapted.
func TestCooldownSuppressesBackToBackTriggers(t *testing.T) {
	src := &shiftingWorkload{validatorCPU: 2 * time.Millisecond}
	o := opts(5 * time.Second)
	o.Cooldown = 3
	c, err := New(src.workflow, o)
	if err != nil {
		t.Fatal(err)
	}
	p1 := c.Predicted()
	feed(t, c, p1) // prime, windows=1
	// Immediate huge drift: windows 2 and 3 are inside the cooldown.
	drifted := 10 * p1
	for w := 0; w < 2; w++ {
		if act := feed(t, c, drifted); act != ActionSuppressed {
			t.Fatalf("cooldown window %d: %v, want suppressed", w, act)
		}
	}
	if c.Suppressed() != 2 || c.Replans() != 0 {
		t.Fatalf("suppressed=%d replans=%d, want 2/0", c.Suppressed(), c.Replans())
	}
	// Cooldown expired: the same trigger now adapts.
	if act := feed(t, c, drifted); act != ActionReplanned {
		t.Fatalf("post-cooldown window: %v, want replanned", act)
	}
}

// TestMinImprovementGateKeepsIncumbent: a trigger whose fresh plan is no
// better than what the incumbent is serving recalibrates instead of
// swapping (replanning cannot fix an executor-side slowdown).
func TestMinImprovementGateKeepsIncumbent(t *testing.T) {
	src := &shiftingWorkload{validatorCPU: 2 * time.Millisecond}
	o := opts(time.Second)
	o.Cooldown = 1
	c, err := New(src.workflow, o)
	if err != nil {
		t.Fatal(err)
	}
	p1, plan1 := c.Predicted(), c.Plan()
	feed(t, c, p1) // prime bias 1.0
	feed(t, c, p1) // clear cooldown
	// Latency drifts past the trigger but the BEHAVIOUR did not change,
	// so the tentative re-plan reproduces the same prediction. A strict
	// MinImprovement makes the gate unsatisfiable, pinning it shut: the
	// trigger must resolve to "keep the incumbent, recalibrate".
	c.opt.MinImprovement = 0.95
	act := feed(t, c, time.Duration(1.5*float64(p1)))
	if act != ActionSuppressed {
		t.Fatalf("gated window: %v, want suppressed", act)
	}
	if c.Plan() != plan1 || c.Predicted() != p1 {
		t.Fatal("min-improvement gate did not keep the incumbent plan")
	}
	if c.Replans() != 0 || c.Suppressed() != 1 {
		t.Fatalf("replans=%d suppressed=%d, want 0/1", c.Replans(), c.Suppressed())
	}
	// The rejected window recalibrated: bias moved toward 1.5.
	if b := c.Bias(); b <= 1.0 || b > 1.5 {
		t.Fatalf("bias after gated window = %.3f, want in (1.0, 1.5]", b)
	}
}

// TestPostSwapRegressionSignalsRollback: when the first window after a
// swap is worse than the pre-swap baseline, Observe reports
// ActionRollback and Adopt restores the prior epoch.
func TestPostSwapRegressionSignalsRollback(t *testing.T) {
	src := &shiftingWorkload{validatorCPU: 2 * time.Millisecond}
	o := opts(5 * time.Second)
	o.Cooldown = 1
	c, err := New(src.workflow, o)
	if err != nil {
		t.Fatal(err)
	}
	oldWf, oldPlan, oldPred := c.Workflow(), c.Plan(), c.Predicted()
	feed(t, c, oldPred) // prime
	feed(t, c, oldPred) // clear cooldown
	if act := feed(t, c, 8*oldPred); act != ActionReplanned {
		t.Fatalf("drift window did not replan")
	}
	// The swap made things WORSE (12x > 1.1 * 8x): probation fails.
	if act := feed(t, c, 12*oldPred); act != ActionRollback {
		t.Fatalf("regressed probation window: %v, want rollback", act)
	}
	if err := c.Adopt(oldWf, oldPlan, oldPred); err != nil {
		t.Fatal(err)
	}
	if c.Plan() != oldPlan || c.Predicted() != oldPred {
		t.Fatal("Adopt did not restore the prior plan")
	}
	// Post-rollback the controller re-calibrates and stays quiet.
	if act := feed(t, c, oldPred); act != ActionCalibrated {
		t.Fatalf("post-rollback window: want calibrated")
	}
	if c.Replans() != 1 {
		t.Fatalf("rollback counted as a replan: %d", c.Replans())
	}
}

func TestAdoptValidates(t *testing.T) {
	src := &shiftingWorkload{validatorCPU: 2 * time.Millisecond}
	c, err := New(src.workflow, opts(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	other := &shiftingWorkload{validatorCPU: time.Millisecond}
	ow := other.workflow()
	ow.Name = "other"
	if err := c.Adopt(ow, c.Plan(), c.Predicted()); err == nil {
		t.Error("Adopt accepted a plan/workflow mismatch")
	}
	if err := c.Adopt(c.Workflow(), c.Plan(), 0); err == nil {
		t.Error("Adopt accepted a zero prediction")
	}
}

func TestDriftTriggersReplanAndRecovers(t *testing.T) {
	slo := 60 * time.Millisecond
	src := &shiftingWorkload{validatorCPU: 2 * time.Millisecond}
	o := opts(slo)
	o.Cooldown = 1
	c, err := New(src.workflow, o)
	if err != nil {
		t.Fatal(err)
	}
	beforeProcs := countProcs(c)
	// The workload shifts: validators become 4x heavier. The active plan
	// (sized for 2ms functions) now misses the SLO.
	src.validatorCPU = 8 * time.Millisecond
	driftLats, replans := serve(t, src, c, 100, 40)
	if replans == 0 {
		t.Fatalf("no replan despite 4x heavier functions (mean %v, slo %v)",
			metrics.Mean(driftLats), slo)
	}
	afterProcs := countProcs(c)
	if afterProcs <= beforeProcs {
		t.Fatalf("replan did not add parallelism: %d -> %d processes", beforeProcs, afterProcs)
	}
	// After adaptation the deployment meets the SLO again.
	recovered, _ := serve(t, src, c, 500, 20)
	if v := metrics.ViolationRate(recovered, slo); v > 0.1 {
		t.Fatalf("still violating after adaptation: %.0f%% (mean %v)", v*100, metrics.Mean(recovered))
	}
}

func countProcs(c *Controller) int {
	procs := map[[2]int]bool{}
	for _, loc := range c.Plan().Loc {
		procs[[2]int{loc.Sandbox, loc.Proc}] = true
	}
	return len(procs)
}

func TestValidation(t *testing.T) {
	src := &shiftingWorkload{validatorCPU: time.Millisecond}
	if _, err := New(src.workflow, Options{Const: model.Default()}); err == nil {
		t.Error("missing SLO accepted")
	}
	bad := func() *dag.Workflow { return &dag.Workflow{Name: ""} }
	if _, err := New(bad, opts(time.Second)); err == nil {
		t.Error("invalid workflow source accepted")
	}
}

func TestObserveBelowWindowNoTrigger(t *testing.T) {
	src := &shiftingWorkload{validatorCPU: time.Millisecond}
	c, err := New(src.workflow, opts(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		act, err := c.Observe(time.Hour) // wildly violating, but window not full
		if err != nil {
			t.Fatal(err)
		}
		if act != ActionNone {
			t.Fatal("acted before the window filled")
		}
	}
}
