// Package adapt closes the loop the paper sketches at the end of Section
// 3.4: "the Profiler and PGP are re-run periodically to update wraps,
// enabling them to adapt to changes in the workload."
//
// A Controller serves a workflow under a PGP plan and watches the
// latencies it observes. When the recent window drifts away from the
// Predictor's estimate — a violation-rate trigger or a mean-drift trigger
// — it re-profiles the *current* function behaviour (via the Source
// callback, since behaviour is what changed) and re-plans. Deployments
// stay SLO-compliant across workload shifts without manual intervention.
package adapt

import (
	"fmt"
	"time"

	"chiron/internal/dag"
	"chiron/internal/metrics"
	"chiron/internal/model"
	"chiron/internal/pgp"
	"chiron/internal/profiler"
	"chiron/internal/wrap"
)

// Source returns the workflow's current behaviour (fresh specs). The
// controller calls it at plan time and at every re-plan; in production
// this is "profile the live functions again".
type Source func() *dag.Workflow

// Options configure the controller.
type Options struct {
	// Const is the substrate calibration.
	Const model.Constants
	// SLO is the latency target handed to PGP and used for the violation
	// trigger.
	SLO time.Duration
	// Window is how many recent requests the triggers evaluate
	// (default 20).
	Window int
	// ViolationTrigger re-plans when the window's violation rate exceeds
	// this fraction (default 0.2).
	ViolationTrigger float64
	// DriftTrigger re-plans when the window's mean exceeds the
	// prediction by this factor (default 1.3).
	DriftTrigger float64
	// PGP carries extra scheduler options (Style, Iso); Const/SLO/Safety
	// are overridden by the controller.
	PGP pgp.Options
}

func (o *Options) defaults() error {
	if o.SLO <= 0 {
		return fmt.Errorf("adapt: an SLO is required")
	}
	if o.Window <= 0 {
		o.Window = 20
	}
	if o.ViolationTrigger <= 0 {
		o.ViolationTrigger = 0.2
	}
	if o.DriftTrigger <= 1 {
		o.DriftTrigger = 1.3
	}
	return nil
}

// Controller is the adaptive deployment manager.
type Controller struct {
	src Source
	opt Options

	plan      *wrap.Plan
	workflow  *dag.Workflow
	predicted time.Duration
	window    []time.Duration
	replans   int
}

// New profiles and plans the workflow's current behaviour.
func New(src Source, opt Options) (*Controller, error) {
	if err := opt.defaults(); err != nil {
		return nil, err
	}
	c := &Controller{src: src, opt: opt}
	if err := c.replan(); err != nil {
		return nil, err
	}
	c.replans = 0 // the initial plan is not an adaptation
	return c, nil
}

func (c *Controller) replan() error {
	w := c.src()
	if err := w.Validate(); err != nil {
		return err
	}
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		return err
	}
	p := c.opt.PGP
	p.Const = c.opt.Const
	p.SLO = c.opt.SLO
	res, err := pgp.Plan(w, set, p)
	if err != nil {
		return err
	}
	c.workflow = w
	c.plan = res.Plan
	c.predicted = res.Predicted
	c.window = c.window[:0]
	c.replans++
	return nil
}

// Plan returns the active deployment plan.
func (c *Controller) Plan() *wrap.Plan { return c.plan }

// Workflow returns the workflow snapshot the active plan was built for.
func (c *Controller) Workflow() *dag.Workflow { return c.workflow }

// Predicted returns the active plan's predicted latency.
func (c *Controller) Predicted() time.Duration { return c.predicted }

// Replans returns how many adaptations have occurred.
func (c *Controller) Replans() int { return c.replans }

// Observe records one served latency; when the window fills and a trigger
// fires, the controller re-profiles and re-plans, returning true.
func (c *Controller) Observe(lat time.Duration) (replanned bool, err error) {
	c.window = append(c.window, lat)
	if len(c.window) < c.opt.Window {
		return false, nil
	}
	violations := metrics.ViolationRate(c.window, c.opt.SLO)
	drift := float64(metrics.Mean(c.window)) / float64(c.predicted)
	c.window = c.window[:0]
	if violations > c.opt.ViolationTrigger || drift > c.opt.DriftTrigger {
		if err := c.replan(); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}
