// Package adapt closes the loop the paper sketches at the end of Section
// 3.4: "the Profiler and PGP are re-run periodically to update wraps,
// enabling them to adapt to changes in the workload."
//
// A Controller serves a workflow under a PGP plan and watches the
// latencies it observes. Naively comparing the live window against the
// raw PGP prediction forever is a churn bug: live execution carries a
// persistent executor overhead (scheduler/timer noise, wall/scale
// rounding), so a constant model bias looks like workload drift and
// re-plans every window — exactly the control-plane churn Dirigent
// identifies as the real tail-latency driver at scale. The controller
// therefore separates *bias* from *drift*:
//
//   - Calibration: it learns an EWMA of the observed/predicted ratio
//     (the bias) and evaluates the drift trigger against the
//     bias-corrected prediction, bias x predicted. A constant executor
//     overhead calibrates away after the first window; only movement
//     relative to the calibrated baseline counts as drift.
//   - Hysteresis: adaptations are separated by a cooldown (a minimum
//     number of full windows), and a fresh plan is adopted only when the
//     re-profile confirms a genuine behaviour change (the prediction
//     itself moved) or its corrected prediction is meaningfully better
//     than what the incumbent is actually serving (the min-improvement
//     gate). Triggers that fail the checks are suppressed and recorded,
//     and the window is folded into the bias instead — "keep the
//     incumbent, recalibrate".
//   - Probation: the first full window after a swap is compared against
//     the pre-swap observed mean; a regression asks the caller to roll
//     back to the previous plan epoch (Adopt restores it).
package adapt

import (
	"fmt"
	"math"
	"time"

	"chiron/internal/dag"
	"chiron/internal/metrics"
	"chiron/internal/model"
	"chiron/internal/pgp"
	"chiron/internal/profiler"
	"chiron/internal/wrap"
)

// Source returns the workflow's current behaviour (fresh specs). The
// controller calls it at plan time and at every re-plan; in production
// this is "profile the live functions again".
type Source func() *dag.Workflow

// Action is what one Observe call decided.
type Action int

const (
	// ActionNone: the window is not full yet; nothing was decided.
	ActionNone Action = iota
	// ActionCalibrated: the window closed without an adaptation and its
	// observed/predicted ratio was folded into the bias EWMA.
	ActionCalibrated
	// ActionReplanned: a trigger fired, the fresh plan passed the
	// hysteresis gates and was adopted. The caller should swap epochs.
	ActionReplanned
	// ActionSuppressed: a trigger fired but hysteresis (cooldown or the
	// min-improvement gate) kept the incumbent plan.
	ActionSuppressed
	// ActionRollback: the first post-swap window regressed versus the
	// pre-swap baseline. The caller should restore the previous plan
	// epoch via Adopt.
	ActionRollback
)

// String names the action for logs and test failures.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionCalibrated:
		return "calibrated"
	case ActionReplanned:
		return "replanned"
	case ActionSuppressed:
		return "suppressed"
	case ActionRollback:
		return "rollback"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Options configure the controller.
type Options struct {
	// Const is the substrate calibration.
	Const model.Constants
	// SLO is the latency target handed to PGP and used for the violation
	// trigger.
	SLO time.Duration
	// Window is how many recent requests the triggers evaluate
	// (default 20).
	Window int
	// ViolationTrigger re-plans when the window's violation rate exceeds
	// this fraction (default 0.2).
	ViolationTrigger float64
	// DriftTrigger re-plans when the window's mean exceeds the
	// bias-corrected prediction by this factor (default 1.3).
	DriftTrigger float64
	// BiasAlpha is the EWMA weight for folding a window's
	// observed/predicted ratio into the bias (default 0.25). The first
	// full window under a plan primes the bias outright.
	BiasAlpha float64
	// Cooldown is the minimum number of full windows between
	// adaptations (default 2). Triggers inside the cooldown are
	// suppressed, not queued.
	Cooldown int
	// MinImprovement is the min-improvement gate: a fresh plan is
	// adopted only when the re-profile moved the prediction by more
	// than this fraction (the behaviour genuinely changed) or its
	// bias-corrected prediction undercuts the window's observed mean by
	// at least this fraction (default 0.1). Otherwise the incumbent is
	// kept and the window recalibrates.
	MinImprovement float64
	// RollbackGuard flags a post-swap regression when the first full
	// window's mean exceeds RollbackGuard x the pre-swap mean
	// (default 1.1).
	RollbackGuard float64
	// PGP carries extra scheduler options (Style, Iso); Const/SLO/Safety
	// are overridden by the controller.
	PGP pgp.Options
}

func (o *Options) defaults() error {
	if o.SLO <= 0 {
		return fmt.Errorf("adapt: an SLO is required")
	}
	if o.Window <= 0 {
		o.Window = 20
	}
	if o.ViolationTrigger <= 0 {
		o.ViolationTrigger = 0.2
	}
	if o.DriftTrigger <= 1 {
		o.DriftTrigger = 1.3
	}
	if o.BiasAlpha <= 0 || o.BiasAlpha > 1 {
		o.BiasAlpha = 0.25
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2
	}
	if o.MinImprovement <= 0 {
		o.MinImprovement = 0.1
	}
	if o.RollbackGuard <= 1 {
		o.RollbackGuard = 1.1
	}
	return nil
}

// Controller is the adaptive deployment manager.
type Controller struct {
	src Source
	opt Options

	plan      *wrap.Plan
	workflow  *dag.Workflow
	predicted time.Duration
	window    []time.Duration
	replans   int

	// Calibration state: bias is the observed/predicted EWMA, primed by
	// the first full window under each plan (calibrated flips then).
	bias       float64
	calibrated bool

	// Hysteresis state: windows counts full windows since the last
	// adaptation; suppressed counts triggers hysteresis swallowed.
	windows    int
	suppressed int

	// Probation state: after a swap, the next full window is compared
	// against preSwapMean.
	postSwap    bool
	preSwapMean time.Duration

	// lastWin summarizes the most recently closed window (zero until
	// the first window fills) — observability detail for annotating
	// adapt actions with the evidence that drove them.
	lastWin WindowStats
}

// WindowStats summarizes one closed controller window.
type WindowStats struct {
	// Mean is the window's mean served latency.
	Mean time.Duration
	// Violations is the fraction of the window over the SLO.
	Violations float64
	// Drift is mean / bias-corrected prediction at window close.
	Drift float64
}

// LastWindow returns the most recently closed window's summary. Callers
// synchronize with Observe (serve holds the same lock around both).
func (c *Controller) LastWindow() WindowStats { return c.lastWin }

// New profiles and plans the workflow's current behaviour.
func New(src Source, opt Options) (*Controller, error) {
	if err := opt.defaults(); err != nil {
		return nil, err
	}
	c := &Controller{src: src, opt: opt, bias: 1}
	if err := c.replan(); err != nil {
		return nil, err
	}
	c.replans = 0 // the initial plan is not an adaptation
	return c, nil
}

// replan re-profiles the live behaviour and re-plans with PGP. Both
// stages lean on the process-wide caches: an unchanged function is
// served from the profiler memo, and when several workflows' controllers
// re-plan in one burst, concurrent misses on a shared function or group
// collapse into a single profile/simulation through the caches'
// singleflight loaders — N controllers re-planning at once do the
// distinct work once, not N times.
func (c *Controller) replan() error {
	w := c.src()
	if err := w.Validate(); err != nil {
		return err
	}
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		return err
	}
	p := c.opt.PGP
	p.Const = c.opt.Const
	p.SLO = c.opt.SLO
	res, err := pgp.Plan(w, set, p)
	if err != nil {
		return err
	}
	c.workflow = w
	c.plan = res.Plan
	c.predicted = res.Predicted
	c.window = c.window[:0]
	c.windows = 0
	c.replans++
	return nil
}

// Plan returns the active deployment plan.
func (c *Controller) Plan() *wrap.Plan { return c.plan }

// Workflow returns the workflow snapshot the active plan was built for.
func (c *Controller) Workflow() *dag.Workflow { return c.workflow }

// Predicted returns the active plan's raw predicted latency.
func (c *Controller) Predicted() time.Duration { return c.predicted }

// Corrected returns the bias-corrected prediction, the drift baseline:
// bias x predicted. Before calibration it equals the raw prediction.
func (c *Controller) Corrected() time.Duration {
	return time.Duration(c.bias * float64(c.predicted))
}

// Bias returns the current observed/predicted EWMA (1.0 before the
// first window calibrates it).
func (c *Controller) Bias() float64 { return c.bias }

// Replans returns how many adaptations have occurred.
func (c *Controller) Replans() int { return c.replans }

// Suppressed returns how many triggers hysteresis swallowed (cooldown
// or the min-improvement gate).
func (c *Controller) Suppressed() int { return c.suppressed }

// Adopt installs an externally chosen plan — the rollback hook. The
// caller supplies a previous epoch's behaviour snapshot, plan and raw
// prediction (internal/serve keeps that history); the controller resets
// its window, restarts calibration under the restored plan, and arms
// the cooldown so the rollback itself cannot immediately re-trigger.
// Adoption is not counted as a re-plan.
func (c *Controller) Adopt(w *dag.Workflow, plan *wrap.Plan, predicted time.Duration) error {
	if err := plan.Validate(w); err != nil {
		return err
	}
	if predicted <= 0 {
		return fmt.Errorf("adapt: adopted plan needs a positive prediction, got %v", predicted)
	}
	c.workflow = w
	c.plan = plan
	c.predicted = predicted
	c.window = c.window[:0]
	c.windows = 0
	c.calibrated = false
	c.bias = 1
	c.postSwap = false
	return nil
}

// Observe records one served latency. When the window fills it runs the
// calibration/trigger/hysteresis pipeline and reports what happened:
// ActionReplanned means a fresh plan was adopted (callers swap epochs),
// ActionRollback means the post-swap window regressed (callers restore
// the prior epoch via Adopt).
func (c *Controller) Observe(lat time.Duration) (Action, error) {
	c.window = append(c.window, lat)
	if len(c.window) < c.opt.Window {
		return ActionNone, nil
	}

	mean := metrics.Mean(c.window)
	violations := metrics.ViolationRate(c.window, c.opt.SLO)
	ratio := float64(mean) / float64(c.predicted)
	c.window = c.window[:0]
	c.windows++
	c.lastWin = WindowStats{
		Mean:       mean,
		Violations: violations,
		Drift:      float64(mean) / float64(c.Corrected()),
	}

	// Probation: the first full window after a swap answers one question
	// — did the swap hold? A regression versus the pre-swap baseline
	// hands control back to the caller for a rollback; otherwise the
	// window doubles as the fresh plan's calibration sample.
	if c.postSwap {
		c.postSwap = false
		if float64(mean) > c.opt.RollbackGuard*float64(c.preSwapMean) {
			return ActionRollback, nil
		}
		c.bias = clampRatio(ratio)
		c.calibrated = true
		return ActionCalibrated, nil
	}

	// First window under this plan: prime the bias, don't trigger. This
	// is what stops a constant executor overhead from looking like
	// drift forever. Calibration only trusts windows that are at least
	// SLO-plausible — a first window already violating the SLO is not a
	// baseline, it is a symptom, so it falls through to the trigger path
	// with the raw prediction (bias 1) as the reference.
	if !c.calibrated {
		if violations <= c.opt.ViolationTrigger {
			c.bias = clampRatio(ratio)
			c.calibrated = true
			return ActionCalibrated, nil
		}
	}

	drift := float64(mean) / float64(c.Corrected())
	if violations <= c.opt.ViolationTrigger && drift <= c.opt.DriftTrigger {
		// Quiet window: keep tracking slow bias movement.
		c.fold(ratio)
		c.calibrated = true
		return ActionCalibrated, nil
	}

	// A trigger fired. Cooldown first: adaptations must be at least
	// Cooldown full windows apart. (The triggering ratio is deliberately
	// NOT folded into the bias here — genuine drift must stay visible
	// once the cooldown expires.)
	if c.windows <= c.opt.Cooldown {
		c.suppressed++
		return ActionSuppressed, nil
	}

	// Tentative re-plan, then the min-improvement gate. Two outcomes
	// justify a swap: the re-profile moved the prediction materially
	// (the behaviour genuinely changed, and the prediction must stay
	// honest — it drives admission estimates and warm-pool sizing), or
	// the fresh plan's corrected prediction meaningfully undercuts what
	// the incumbent is actually serving. A re-profile that merely
	// confirms the incumbent's prediction means the offset is
	// executor-side bias, not a plannable drift: keep the incumbent,
	// recalibrate, back off.
	oldWorkflow, oldPlan, oldPredicted := c.workflow, c.plan, c.predicted
	if err := c.replan(); err != nil {
		return ActionNone, err
	}
	moved := math.Abs(float64(c.predicted-oldPredicted)) > c.opt.MinImprovement*float64(oldPredicted)
	improves := c.bias*float64(c.predicted) < (1-c.opt.MinImprovement)*float64(mean)
	if !moved && !improves {
		c.workflow, c.plan, c.predicted = oldWorkflow, oldPlan, oldPredicted
		c.replans--
		c.windows = 0
		c.suppressed++
		c.fold(ratio)
		c.calibrated = true
		return ActionSuppressed, nil
	}
	c.preSwapMean = mean
	c.postSwap = true
	return ActionReplanned, nil
}

// fold moves the bias EWMA toward a window's observed/predicted ratio.
func (c *Controller) fold(ratio float64) {
	c.bias = (1-c.opt.BiasAlpha)*c.bias + c.opt.BiasAlpha*clampRatio(ratio)
}

// clampRatio keeps the bias strictly positive so the corrected
// prediction (the drift denominator) never collapses to zero.
func clampRatio(r float64) float64 {
	if r < 1e-6 {
		return 1e-6
	}
	return r
}
