package live

import (
	"fmt"
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/engine"
	"chiron/internal/model"
	"chiron/internal/wrap"
)

// Live runs ride the wall clock, so every assertion here is an envelope,
// not an equality; the workloads are tens of milliseconds to keep the
// suite fast while dwarfing scheduler noise.

func cpuFn(name string, d time.Duration) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: d}},
		MemMB:    1,
	}
}

func sleepFn(name string, d time.Duration) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.Sleep, Dur: d}},
		MemMB:    1,
	}
}

func singleWrapPlan(w *dag.Workflow, groups map[string]int, cpus int) *wrap.Plan {
	p := &wrap.Plan{Workflow: w.Name, Loc: map[string]wrap.Loc{}}
	for name, proc := range groups {
		p.Loc[name] = wrap.Loc{Sandbox: 0, Proc: proc}
	}
	p.Sandboxes = []wrap.SandboxCfg{{CPUs: cpus}}
	return p
}

func opts() Options {
	return Options{Const: model.Default(), Timeout: 20 * time.Second}
}

func TestGILSerializesCPUThreads(t *testing.T) {
	w, err := dag.FromStages("wf", 0, []*behavior.Spec{
		cpuFn("a", 30*time.Millisecond), cpuFn("b", 30*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"a": 0, "b": 0}, 1)
	res, err := Run(w, plan, opts())
	if err != nil {
		t.Fatal(err)
	}
	// Two 30ms CPU threads under a real token GIL: >= ~60ms.
	if res.E2E < 55*time.Millisecond {
		t.Fatalf("E2E %v below serialized floor; GIL not enforced", res.E2E)
	}
	if res.E2E > 120*time.Millisecond {
		t.Fatalf("E2E %v implausibly slow", res.E2E)
	}
}

func TestSleepsOverlapUnderGIL(t *testing.T) {
	w, err := dag.FromStages("wf", 0, []*behavior.Spec{
		sleepFn("a", 40*time.Millisecond), sleepFn("b", 40*time.Millisecond),
		sleepFn("c", 40*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"a": 0, "b": 0, "c": 0}, 1)
	res, err := Run(w, plan, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.E2E > 80*time.Millisecond {
		t.Fatalf("E2E %v: blocking spans did not overlap", res.E2E)
	}
}

func TestForkedProcessesRunTrulyParallel(t *testing.T) {
	w, err := dag.FromStages("wf", 0, []*behavior.Spec{
		cpuFn("a", 40*time.Millisecond), cpuFn("b", 40*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"a": 1, "b": 2}, 2)
	res, err := Run(w, plan, opts())
	if err != nil {
		t.Fatal(err)
	}
	c := model.Default()
	// Parallel: ~max(40) + fork costs + IPC, far below the 80ms serial sum.
	ceiling := 40*time.Millisecond + c.ProcBlockStep + c.ProcStartup + c.IPCCost + 25*time.Millisecond
	if res.E2E > ceiling {
		t.Fatalf("E2E %v exceeds parallel ceiling %v", res.E2E, ceiling)
	}
}

func TestJavaThreadsNoGIL(t *testing.T) {
	mk := func(rt behavior.Runtime) time.Duration {
		a, b := cpuFn("a", 40*time.Millisecond), cpuFn("b", 40*time.Millisecond)
		a.Runtime, b.Runtime = rt, rt
		w, err := dag.FromStages("wf", 0, []*behavior.Spec{a, b})
		if err != nil {
			t.Fatal(err)
		}
		plan := singleWrapPlan(w, map[string]int{"a": 0, "b": 0}, 2)
		res, err := Run(w, plan, opts())
		if err != nil {
			t.Fatal(err)
		}
		return res.E2E
	}
	py := mk(behavior.Python)
	jv := mk(behavior.Java)
	if jv >= py-15*time.Millisecond {
		t.Fatalf("Java threads (%v) should clearly beat GIL threads (%v)", jv, py)
	}
}

func TestStagesAreOrdered(t *testing.T) {
	w, err := dag.FromStages("wf", 0,
		[]*behavior.Spec{cpuFn("head", 10*time.Millisecond)},
		[]*behavior.Spec{cpuFn("tail", 10*time.Millisecond)},
	)
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"head": 0, "tail": 0}, 1)
	res, err := Run(w, plan, opts())
	if err != nil {
		t.Fatal(err)
	}
	var head, tail FnTiming
	for _, ft := range res.Functions {
		if ft.Name == "head" {
			head = ft
		} else {
			tail = ft
		}
	}
	if tail.Start < head.Finish {
		t.Fatalf("stage 1 started (%v) before stage 0 finished (%v)", tail.Start, head.Finish)
	}
}

func TestPoolBoundsCPUs(t *testing.T) {
	var fns []*behavior.Spec
	names := map[string]int{}
	for i := 0; i < 4; i++ {
		n := fmt.Sprintf("t%d", i)
		fns = append(fns, cpuFn(n, 30*time.Millisecond))
		names[n] = i + 1
	}
	w, err := dag.FromStages("wf", 0, fns)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(cpus int) time.Duration {
		plan := singleWrapPlan(w, names, cpus)
		plan.Sandboxes[0].Pool = true
		plan.Sandboxes[0].Workers = 4
		res, err := Run(w, plan, opts())
		if err != nil {
			t.Fatal(err)
		}
		return res.E2E
	}
	wide := mk(4)
	narrow := mk(1)
	if narrow < 110*time.Millisecond {
		t.Fatalf("1-CPU pool finished 4x30ms in %v; cpuset not enforced", narrow)
	}
	if wide > 75*time.Millisecond {
		t.Fatalf("4-CPU pool took %v; tasks did not parallelize", wide)
	}
}

func TestBindingsRunRealCode(t *testing.T) {
	w, err := dag.FromStages("wf", 0,
		[]*behavior.Spec{cpuFn("produce", time.Millisecond)},
		[]*behavior.Spec{cpuFn("consume", time.Millisecond)},
	)
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"produce": 0, "consume": 0}, 1)
	o := opts()
	o.Bindings = map[string]Fn{
		"produce": func(c *Ctx) error {
			c.Store.Put("k", []byte("hello from stage 0"))
			return nil
		},
		"consume": func(c *Ctx) error {
			v, err := c.Store.Get("k")
			if err != nil {
				return err
			}
			c.Store.Put("out", append(v, '!'))
			return nil
		},
	}
	res, err := Run(w, plan, o)
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Store.Get("out")
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hello from stage 0!" {
		t.Fatalf("bound pipeline produced %q", out)
	}
}

func TestBindingErrorPropagates(t *testing.T) {
	w, err := dag.FromStages("wf", 0, []*behavior.Spec{cpuFn("boom", time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"boom": 0}, 1)
	o := opts()
	o.Bindings = map[string]Fn{
		"boom": func(*Ctx) error { return fmt.Errorf("exploded") },
	}
	if _, err := Run(w, plan, o); err == nil {
		t.Fatal("binding error swallowed")
	}
}

func TestScaleSpeedsUpWallTime(t *testing.T) {
	w, err := dag.FromStages("wf", 0, []*behavior.Spec{sleepFn("s", 200*time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"s": 0}, 1)
	o := opts()
	o.Scale = 0.1
	start := time.Now()
	res, err := Run(w, plan, o)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if wall > 120*time.Millisecond {
		t.Fatalf("scaled run took %v wall time, want ~20ms", wall)
	}
	// Nominal time is scaled back.
	if res.E2E < 150*time.Millisecond || res.E2E > 400*time.Millisecond {
		t.Fatalf("nominal E2E %v, want ~200ms", res.E2E)
	}
}

func TestLiveAgreesWithEngineEnvelope(t *testing.T) {
	// Cross-validation: the live executor and the virtual-time engine
	// should land within a loose envelope on the same plan.
	var fns []*behavior.Spec
	groups := map[string]int{}
	for i := 0; i < 4; i++ {
		n := fmt.Sprintf("v%d", i)
		fns = append(fns, &behavior.Spec{
			Name: n, Runtime: behavior.Python,
			Segments: []behavior.Segment{
				{Kind: behavior.CPU, Dur: 8 * time.Millisecond},
				{Kind: behavior.Sleep, Dur: 6 * time.Millisecond},
			},
			MemMB: 1,
		})
		groups[n] = i % 2 // two processes, two threads each
	}
	// Proc 0 is resident main; proc 1 forked.
	w, err := dag.FromStages("wf", 0, fns)
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, groups, 2)
	lres, err := Run(w, plan, opts())
	if err != nil {
		t.Fatal(err)
	}
	eres, err := engine.Run(w, plan, engine.Env{Const: model.Default()})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(lres.E2E) / float64(eres.E2E)
	if ratio < 0.6 || ratio > 1.8 {
		t.Fatalf("live %v vs engine %v (ratio %.2f) outside envelope", lres.E2E, eres.E2E, ratio)
	}
}

func TestInvalidPlanRejected(t *testing.T) {
	w, err := dag.FromStages("wf", 0, []*behavior.Spec{cpuFn("a", time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	bad := &wrap.Plan{Workflow: "wf", Loc: map[string]wrap.Loc{}, Sandboxes: []wrap.SandboxCfg{{CPUs: 1}}}
	if _, err := Run(w, bad, opts()); err == nil {
		t.Fatal("invalid plan accepted")
	}
}
