package live

import (
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/obs"
)

// TestLiveTraceOneGILAcquirePerCPUSpan is the envelope the taxonomy
// promises: in a single-threaded wrap, every contiguous CPU span takes
// the GIL token exactly once (quantum re-acquisitions are switches, not
// acquires) and releases it exactly once at the end.
func TestLiveTraceOneGILAcquirePerCPUSpan(t *testing.T) {
	spec := &behavior.Spec{
		Name: "a", Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: 20 * time.Millisecond},
			{Kind: behavior.Sleep, Dur: 5 * time.Millisecond},
			{Kind: behavior.CPU, Dur: 20 * time.Millisecond},
		},
		MemMB: 1,
	}
	w, err := dag.FromStages("wf", 0, []*behavior.Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"a": 0}, 1)
	o := opts()
	tr := obs.NewTrace()
	o.Rec = tr
	if _, err := Run(w, plan, o); err != nil {
		t.Fatal(err)
	}

	acq := tr.InstantsBy(obs.GILAcquire)
	rel := tr.InstantsBy(obs.GILRelease)
	if len(acq) != 2 {
		t.Fatalf("%d GIL acquires, want exactly 2 (one per CPU span)", len(acq))
	}
	if len(rel) != 2 {
		t.Fatalf("%d GIL releases, want exactly 2", len(rel))
	}
	// Single-threaded: every GIL event rides the one function row.
	for _, ev := range append(acq, rel...) {
		if ev.PID != acq[0].PID || ev.TID != acq[0].TID {
			t.Fatalf("GIL events scattered across tracks: %+v vs %+v", ev, acq[0])
		}
	}
	// Switches only ever appear between an acquire and its release.
	for _, sw := range tr.InstantsBy(obs.GILSwitch) {
		if sw.At < acq[0].At || sw.At > rel[len(rel)-1].At {
			t.Fatalf("GIL switch %v outside any held interval", sw.At)
		}
	}

	if n := len(tr.SpansBy(obs.CatRequest)); n != 1 {
		t.Fatalf("%d request spans, want 1", n)
	}
	if n := len(tr.SpansBy(obs.CatWrap)); n != 1 {
		t.Fatalf("%d wrap spans, want 1", n)
	}
	fns := tr.SpansBy(obs.CatFunction)
	if len(fns) != 1 || fns[0].Name != "a" || fns[0].TID == 0 {
		t.Fatalf("function spans = %+v", fns)
	}
}

// TestLiveTraceForkInstants checks that forked processes are narrated:
// one fork instant per non-resident process on the wrap's orchestrator
// row, and one function span per function.
func TestLiveTraceForkInstants(t *testing.T) {
	w, err := dag.FromStages("wf", 0, []*behavior.Spec{
		cpuFn("a", 10*time.Millisecond), cpuFn("b", 10*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"a": 1, "b": 2}, 2)
	o := opts()
	tr := obs.NewTrace()
	o.Rec = tr
	if _, err := Run(w, plan, o); err != nil {
		t.Fatal(err)
	}
	forks := tr.InstantsBy("fork")
	if len(forks) != 2 {
		t.Fatalf("%d fork instants, want 2", len(forks))
	}
	for _, f := range forks {
		if f.TID != 0 {
			t.Fatalf("fork instant off the orchestrator row: %+v", f)
		}
	}
	if n := len(tr.SpansBy(obs.CatFunction)); n != 2 {
		t.Fatalf("%d function spans, want 2", n)
	}
	if n := len(tr.SpansBy(obs.CatIPC)); n != 1 {
		t.Fatalf("%d IPC spans, want 1 (two procs share one wrap)", n)
	}
}
