// Package live executes a deployment plan with real goroutines on the
// wall clock — the in-process equivalent of deploying the generated
// orchestrators (package deploy) onto a worker.
//
// Where package engine *models* a request on virtual time, live *runs*
// one: every process group is a goroutine tree, threads of a
// pseudo-parallel runtime contend on a real token-passing GIL (held for
// CPU spans, released on blocking spans and at every switch interval),
// forks are serialized by the orchestrator exactly like Observation 2's
// block time, pools are worker goroutines fed from a channel, and
// functions can be bound to real Go code that reads and writes a real
// in-memory store. Wall-clock scheduling noise makes results
// non-deterministic — that is the point; tests assert envelopes, not
// equalities.
package live

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/model"
	"chiron/internal/obs"
	"chiron/internal/storage"
	"chiron/internal/wrap"
)

// Ctx is handed to bound functions: access to the shared intermediate
// store and the function's own spec.
type Ctx struct {
	// Store is the request's intermediate-data store (shared memory /
	// MinIO stand-in).
	Store *storage.MemStore
	// Spec is the function being executed.
	Spec *behavior.Spec
	// Context carries cancellation.
	Context context.Context
}

// Fn is user code bound to a function name. When bound, the function's
// live duration is whatever the code takes (plus GIL contention); when
// not bound, the runtime replays the spec's segments.
type Fn func(*Ctx) error

// Options configure a live run.
type Options struct {
	// Const supplies block/startup/IPC/RPC costs.
	Const model.Constants
	// Scale multiplies every modelled duration before sleeping: 0.25
	// runs four times faster than nominal; reported timings are scaled
	// back. Zero means 1.0. Bound functions are never scaled.
	Scale float64
	// Bindings maps function names to real code.
	Bindings map[string]Fn
	// Timeout aborts the request (default 30s wall time).
	Timeout time.Duration
	// Rec, when non-nil, receives wall-clock spans and instant events
	// (package obs): request/stage/wrap/function spans plus fork, GIL
	// token acquire/switch/release and IPC/RPC events, stamped in
	// nominal time (wall divided by Scale). Live traces are envelopes,
	// not byte-stable artifacts.
	Rec obs.Recorder
}

func (o *Options) scale() float64 {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

// FnTiming is one function's measured schedule (nominal time: wall time
// divided by Scale).
type FnTiming struct {
	Name    string
	Stage   int
	Sandbox int
	Start   time.Duration
	Finish  time.Duration
}

// Result is one live request.
type Result struct {
	// E2E is the nominal end-to-end latency.
	E2E time.Duration
	// Functions in completion order.
	Functions []FnTiming
	// Store is the final intermediate-data store (bound functions'
	// outputs survive here).
	Store *storage.MemStore
}

// Run executes one request of w under plan.
func Run(w *dag.Workflow, plan *wrap.Plan, opt Options) (*Result, error) {
	return RunCtx(context.Background(), w, plan, opt)
}

// RunCtx executes one request of w under plan, honouring the parent
// context: cancelling parent aborts the request between (and inside)
// segments, and a parent deadline acts exactly like Options.Timeout. The
// gateway (internal/serve) uses this to enforce per-request deadlines and
// to drain cleanly on shutdown. When both a parent deadline and
// Options.Timeout are set, the earlier one wins; when neither is set the
// 30s default backstop applies.
func RunCtx(parent context.Context, w *dag.Workflow, plan *wrap.Plan, opt Options) (*Result, error) {
	if err := plan.Validate(w); err != nil {
		return nil, err
	}
	if opt.Timeout <= 0 {
		if _, hasDeadline := parent.Deadline(); !hasDeadline {
			opt.Timeout = 30 * time.Second
		}
	}
	var cancel context.CancelFunc
	ctx := parent
	if opt.Timeout > 0 {
		ctx, cancel = context.WithTimeout(parent, opt.Timeout)
	} else {
		ctx, cancel = context.WithCancel(parent)
	}
	defer cancel()

	r := &runner{
		opt:     opt,
		ctx:     ctx,
		store:   storage.NewMem(),
		t0:      time.Now(),
		tids:    map[int]int{},
		verbose: obs.IsVerbose(opt.Rec),
	}
	for si := range w.Stages {
		wraps, err := plan.StageWraps(w, si)
		if err != nil {
			return nil, err
		}
		if err := r.runStage(si, wraps); err != nil {
			return nil, err
		}
	}
	res := &Result{
		E2E:       r.nominalSince(r.t0),
		Functions: r.timings,
		Store:     r.store,
	}
	if rec := r.opt.Rec; rec != nil {
		if tr, ok := rec.(obs.Namer); ok {
			tr.NameProcess(0, "request")
		}
		// Span args are verbose-only: they duplicate what the track
		// layout and span names already say, and each Args literal is
		// an allocation the always-on flight path shouldn't pay.
		var args []obs.Arg
		if r.verbose {
			args = []obs.Arg{obs.A("workflow", w.Name), obs.A("stages", len(w.Stages))}
		}
		rec.RecordSpan(obs.Span{
			PID: 0, TID: 0, Name: "request " + w.Name, Cat: obs.CatRequest,
			Start: 0, End: res.E2E,
			Args: args,
		})
	}
	return res, nil
}

type runner struct {
	opt     Options
	ctx     context.Context
	store   *storage.MemStore
	t0      time.Time
	verbose bool // recorder wants per-quantum GIL instants

	mu      sync.Mutex
	timings []FnTiming
	runErr  error
	tids    map[int]int // per-sandbox function-row allocator (tracing)
}

// Track-name tables: stage/wrap/sandbox indices are single digits in
// practice, and these names are emitted on every request now that the
// flight recorder is always on — precompute them instead of paying a
// fmt.Sprintf per span.
const smallTrack = 32

var (
	stageNames   [smallTrack]string
	wrapNames    [smallTrack]string
	sandboxNames [smallTrack]string
)

func init() {
	for i := 0; i < smallTrack; i++ {
		stageNames[i] = fmt.Sprintf("stage %d", i)
		wrapNames[i] = fmt.Sprintf("s%d.wrap", i)
		sandboxNames[i] = fmt.Sprintf("sandbox %d", i)
	}
}

func stageName(i int) string {
	if 0 <= i && i < smallTrack {
		return stageNames[i]
	}
	return fmt.Sprintf("stage %d", i)
}

func wrapName(i int) string {
	if 0 <= i && i < smallTrack {
		return wrapNames[i]
	}
	return fmt.Sprintf("s%d.wrap", i)
}

func sandboxName(i int) string {
	if 0 <= i && i < smallTrack {
		return sandboxNames[i]
	}
	return fmt.Sprintf("sandbox %d", i)
}

// nextTID hands out the next function thread row for a sandbox's
// pseudo-process (TID 0 is the wrap orchestrator row).
func (r *runner) nextTID(sandbox int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tids[sandbox]++
	return r.tids[sandbox]
}

// instant emits a point event at the current nominal time.
func (r *runner) instant(pid, tid int, name, cat string, args ...obs.Arg) {
	if r.opt.Rec == nil {
		return
	}
	r.opt.Rec.RecordInstant(obs.Instant{
		PID: pid, TID: tid, Name: name, Cat: cat,
		At: r.nominalSince(r.t0), Args: args,
	})
}

// nominalSince converts a wall-clock span back to nominal time.
func (r *runner) nominalSince(from time.Time) time.Duration {
	return time.Duration(float64(time.Since(from)) / r.opt.scale())
}

// sleep waits d nominal time (scaled), honouring cancellation.
func (r *runner) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	scaled := time.Duration(float64(d) * r.opt.scale())
	t := time.NewTimer(scaled)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.ctx.Done():
	}
}

func (r *runner) fail(err error) {
	r.mu.Lock()
	if r.runErr == nil {
		r.runErr = err
	}
	r.mu.Unlock()
}

func (r *runner) record(t FnTiming) {
	r.mu.Lock()
	r.timings = append(r.timings, t)
	r.mu.Unlock()
}

// runStage executes one stage: the local wrap in place, remote wraps with
// invocation stride and RPC cost, all joined at a barrier (stages are
// strictly ordered).
func (r *runner) runStage(si int, wraps []wrap.StageWrap) error {
	stageStart := r.nominalSince(r.t0)
	var wg sync.WaitGroup
	remoteRank := 0
	for i := range wraps {
		sw := wraps[i]
		delay := time.Duration(0)
		rpc := time.Duration(0)
		if sw.Sandbox != 0 {
			remoteRank++
			delay = time.Duration(remoteRank) * r.opt.Const.InvokeCost
			rpc = r.opt.Const.RPCCost
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.sleep(delay)
			r.runWrap(si, sw)
			if rpc > 0 {
				from := r.nominalSince(r.t0)
				r.sleep(rpc)
				if rec := r.opt.Rec; rec != nil {
					rec.RecordSpan(obs.Span{
						PID: sw.Sandbox + 1, TID: 0, Name: "rpc", Cat: obs.CatRPC,
						Start: from, End: r.nominalSince(r.t0),
					})
				}
			}
		}()
	}
	wg.Wait()
	if rec := r.opt.Rec; rec != nil {
		var args []obs.Arg
		if r.verbose {
			args = []obs.Arg{obs.A("wraps", len(wraps))}
		}
		rec.RecordSpan(obs.Span{
			PID: 0, TID: 0, Name: stageName(si), Cat: obs.CatStage,
			Start: stageStart, End: r.nominalSince(r.t0),
			Args: args,
		})
	}
	select {
	case <-r.ctx.Done():
		return fmt.Errorf("live: request aborted in stage %d: %w", si, context.Cause(r.ctx))
	default:
	}
	r.mu.Lock()
	err := r.runErr
	r.mu.Unlock()
	return err
}

// runWrap executes one wrap's process groups: the resident main group
// immediately, forked groups serialized by block time; results gathered
// over pipes (modelled as a final sleep).
func (r *runner) runWrap(si int, sw wrap.StageWrap) {
	pid := sw.Sandbox + 1
	if tr, ok := r.opt.Rec.(obs.Namer); ok {
		tr.NameProcess(pid, sandboxName(sw.Sandbox))
	}
	wrapStart := r.nominalSince(r.t0)
	if sw.Cfg.Pool {
		r.runPool(si, sw)
		r.emitWrapSpan(si, pid, wrapStart)
		return
	}
	var wg sync.WaitGroup
	for _, g := range sw.Procs {
		g := g
		resident := g.Proc == 0 && !sw.Cfg.ForkPerRequest
		if !resident {
			// The orchestrator issues this fork, then blocks the next
			// one (Observation 2's sequential forking).
			r.instant(pid, 0, "fork", obs.CatFork, obs.A("proc", g.Proc))
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.sleep(r.opt.Const.ProcStartup)
				r.runProcess(si, sw, g)
			}()
			r.sleep(r.opt.Const.ProcBlockStep)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.runProcess(si, sw, g)
		}()
	}
	wg.Wait()
	if n := len(sw.Procs); n > 1 {
		from := r.nominalSince(r.t0)
		r.sleep(time.Duration(n-1) * r.opt.Const.IPCCost)
		if rec := r.opt.Rec; rec != nil {
			rec.RecordSpan(obs.Span{
				PID: pid, TID: 0, Name: "ipc", Cat: obs.CatIPC,
				Start: from, End: r.nominalSince(r.t0),
			})
		}
	}
	r.emitWrapSpan(si, pid, wrapStart)
}

// emitWrapSpan closes the wrap's orchestrator-row span.
func (r *runner) emitWrapSpan(si, pid int, from time.Duration) {
	if rec := r.opt.Rec; rec != nil {
		var args []obs.Arg
		if r.verbose {
			args = []obs.Arg{obs.A("stage", si), obs.A("sandbox", pid-1)}
		}
		rec.RecordSpan(obs.Span{
			PID: pid, TID: 0, Name: wrapName(si), Cat: obs.CatWrap,
			Start: from, End: r.nominalSince(r.t0),
			Args: args,
		})
	}
}

// runProcess executes one process's functions as threads sharing a GIL
// (for pseudo-parallel runtimes) or truly in parallel (GIL-free).
func (r *runner) runProcess(si int, sw wrap.StageWrap, g wrap.ProcGroup) {
	if len(g.Functions) == 0 {
		return
	}
	var lock *gilLock
	if g.Functions[0].Runtime.PseudoParallel() {
		lock = newGIL(time.Duration(float64(r.opt.Const.GILInterval) * r.opt.scale()))
	}
	var wg sync.WaitGroup
	for i, fn := range g.Functions {
		fn := fn
		// Thread clone cost, paid serially by the process main.
		if len(g.Functions) > 1 || g.Proc == 0 {
			r.sleep(r.opt.Const.ThreadStartup)
		}
		_ = i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.runFunction(si, sw.Sandbox, fn, lock)
		}()
	}
	wg.Wait()
}

// runPool executes the wrap's functions on a worker pool.
func (r *runner) runPool(si int, sw wrap.StageWrap) {
	var fns []*behavior.Spec
	for _, g := range sw.Procs {
		fns = append(fns, g.Functions...)
	}
	workers := sw.Cfg.Workers
	if workers <= 0 {
		workers = len(fns)
	}
	// CPU slots bound concurrent CPU spans; pool workers are GIL-free
	// processes.
	cpus := newCPUSet(max(sw.Cfg.CPUs, 1))
	tasks := make(chan *behavior.Spec)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fn := range tasks {
				r.runFunctionOnCPUs(si, sw.Sandbox, fn, cpus)
			}
		}()
	}
	for _, fn := range fns {
		r.sleep(r.opt.Const.PoolDispatch)
		select {
		case tasks <- fn:
		case <-r.ctx.Done():
		}
	}
	close(tasks)
	wg.Wait()
}

// runFunction executes one function: bound code if present, spec replay
// otherwise, under the process GIL when one exists.
func (r *runner) runFunction(si, sandbox int, fn *behavior.Spec, lock *gilLock) {
	start := r.nominalSince(r.t0)
	pid := sandbox + 1
	tid := 0
	var gilEv func(string)
	if r.opt.Rec != nil {
		tid = r.nextTID(sandbox)
		// Per-quantum GIL handoff instants are verbose-only: the
		// always-on flight recorder pays for the coarse span tree, not
		// for hundreds of scheduler events per CPU segment.
		if r.verbose {
			gilEv = func(name string) { r.instant(pid, tid, name, obs.CatGIL) }
		}
	}
	if bound, ok := r.opt.Bindings[fn.Name]; ok {
		if lock != nil {
			lock.acquire()
			if gilEv != nil {
				gilEv(obs.GILAcquire)
			}
		}
		err := bound(&Ctx{Store: r.store, Spec: fn, Context: r.ctx})
		if lock != nil {
			if gilEv != nil {
				gilEv(obs.GILRelease)
			}
			lock.release()
		}
		if err != nil {
			r.fail(fmt.Errorf("live: function %s: %w", fn.Name, err))
		}
	} else {
		for _, seg := range fn.Segments {
			dur := segmentDur(seg)
			if seg.Kind.Blocking() || lock == nil {
				r.sleep(dur)
				continue
			}
			// CPU span: hold the GIL, yielding every switch interval.
			lock.run(func(quantum time.Duration) {
				r.sleepWall(quantum)
			}, time.Duration(float64(dur)*r.opt.scale()), gilEv)
		}
	}
	finish := r.nominalSince(r.t0)
	if rec := r.opt.Rec; rec != nil {
		var args []obs.Arg
		if r.verbose {
			args = []obs.Arg{obs.A("stage", si)}
		}
		rec.RecordSpan(obs.Span{
			PID: pid, TID: tid, Name: fn.Name, Cat: obs.CatFunction,
			Start: start, End: finish,
			Args: args,
		})
	}
	r.record(FnTiming{Name: fn.Name, Stage: si, Sandbox: sandbox, Start: start, Finish: finish})
}

// runFunctionOnCPUs executes a pool task: CPU spans occupy a cpu slot.
func (r *runner) runFunctionOnCPUs(si, sandbox int, fn *behavior.Spec, cpus *cpuSet) {
	start := r.nominalSince(r.t0)
	pid := sandbox + 1
	tid := 0
	if r.opt.Rec != nil {
		tid = r.nextTID(sandbox)
	}
	if bound, ok := r.opt.Bindings[fn.Name]; ok {
		cpus.acquire()
		err := bound(&Ctx{Store: r.store, Spec: fn, Context: r.ctx})
		cpus.release()
		if err != nil {
			r.fail(fmt.Errorf("live: function %s: %w", fn.Name, err))
		}
	} else {
		for _, seg := range fn.Segments {
			dur := segmentDur(seg)
			if seg.Kind.Blocking() {
				r.sleep(dur)
				continue
			}
			cpus.acquire()
			r.sleep(dur)
			cpus.release()
		}
	}
	finish := r.nominalSince(r.t0)
	if rec := r.opt.Rec; rec != nil {
		var args []obs.Arg
		if r.verbose {
			args = []obs.Arg{obs.A("stage", si)}
		}
		rec.RecordSpan(obs.Span{
			PID: pid, TID: tid, Name: fn.Name, Cat: obs.CatFunction,
			Start: start, End: finish,
			Args: args,
		})
	}
	r.record(FnTiming{Name: fn.Name, Stage: si, Sandbox: sandbox, Start: start, Finish: finish})
}

// segmentDur samples one live execution's duration for a segment:
// Dur, plus the heavy tail with probability TailProb. Only the live
// executor rolls this dice — the engine, profiler and predictor always
// see Dur, so a tail is unmodeled straggler noise by construction.
func segmentDur(seg behavior.Segment) time.Duration {
	if seg.TailProb > 0 && seg.TailDur > 0 && rand.Float64() < seg.TailProb {
		return seg.Dur + seg.TailDur
	}
	return seg.Dur
}

// sleepWall sleeps a wall-clock duration (already scaled).
func (r *runner) sleepWall(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.ctx.Done():
	}
}

// ---- GIL emulation ----

// gilLock is a token-passing global interpreter lock: one holder at a
// time; holders of long CPU spans yield at every switch interval so
// waiters interleave, exactly like Figure 2's timeout-triggered drop.
type gilLock struct {
	token   chan struct{}
	quantum time.Duration
}

func newGIL(quantum time.Duration) *gilLock {
	g := &gilLock{token: make(chan struct{}, 1), quantum: quantum}
	g.token <- struct{}{}
	return g
}

func (g *gilLock) acquire() { <-g.token }
func (g *gilLock) release() { g.token <- struct{}{} }

// run executes total wall-time of CPU work in quantum-sized slices,
// acquiring the token for each slice. ev (nil when tracing is off)
// observes the token protocol: one acquire when the CPU span first
// takes the token, a switch at every intermediate re-acquisition
// (the timeout-triggered drop of Figure 2), one release at the end —
// so a CPU span always carries exactly one gil.acquire.
func (g *gilLock) run(slice func(time.Duration), total time.Duration, ev func(string)) {
	first := true
	for total > 0 {
		q := g.quantum
		if q <= 0 || q > total {
			q = total
		}
		g.acquire()
		if ev != nil {
			if first {
				ev(obs.GILAcquire)
				first = false
			} else {
				ev(obs.GILSwitch)
			}
		}
		slice(q)
		total -= q
		if ev != nil && total <= 0 {
			ev(obs.GILRelease)
		}
		g.release()
	}
}

// cpuSet is a counted semaphore standing for a cpuset.
type cpuSet struct{ slots chan struct{} }

func newCPUSet(n int) *cpuSet {
	c := &cpuSet{slots: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		c.slots <- struct{}{}
	}
	return c
}

func (c *cpuSet) acquire() { <-c.slots }
func (c *cpuSet) release() { c.slots <- struct{}{} }
