package live

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
)

// Failure-path coverage for RunCtx: cancellation mid-stage, per-request
// deadlines, and error propagation — all asserting that the runner's
// goroutine tree is fully reaped afterwards.

// goroutinesSettle waits for the goroutine count to return to within
// slack of the baseline (the runtime needs a moment to retire exiting
// goroutines) and reports the final count.
func goroutinesSettle(t *testing.T, baseline, slack int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline+slack {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
	return n
}

func TestRunCtxCancelMidStage(t *testing.T) {
	w, err := dag.FromStages("wf", 0,
		[]*behavior.Spec{sleepFn("slow", 10*time.Second)},
		[]*behavior.Spec{sleepFn("later", time.Millisecond)},
	)
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"slow": 0, "later": 0}, 1)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = RunCtx(ctx, w, plan, opts())
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let stage 0 begin its 10s sleep
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("RunCtx did not return after cancellation")
	}
	if runErr == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", runErr)
	}
	if after := goroutinesSettle(t, before, 2); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestRunCtxParentDeadline(t *testing.T) {
	w, err := dag.FromStages("wf", 0, []*behavior.Spec{sleepFn("slow", 10*time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"slow": 0}, 1)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	o := opts()
	o.Timeout = 0 // the parent deadline must bound the run by itself
	start := time.Now()
	_, runErr := RunCtx(ctx, w, plan, o)
	if runErr == nil {
		t.Fatal("deadline-bounded run returned nil error")
	}
	if !errors.Is(runErr, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", runErr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("run outlived its deadline by far: %v", elapsed)
	}
	if after := goroutinesSettle(t, before, 2); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestRunCtxOptionTimeout(t *testing.T) {
	w, err := dag.FromStages("wf", 0, []*behavior.Spec{sleepFn("slow", 10*time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"slow": 0}, 1)
	o := opts()
	o.Timeout = 30 * time.Millisecond
	_, runErr := RunCtx(context.Background(), w, plan, o)
	if !errors.Is(runErr, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", runErr)
	}
}

func TestFailPropagatesFirstErrorWithoutLeaks(t *testing.T) {
	w, err := dag.FromStages("wf", 0,
		[]*behavior.Spec{cpuFn("boom", time.Millisecond)},
		[]*behavior.Spec{cpuFn("never", time.Millisecond)},
	)
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"boom": 0, "never": 0}, 1)

	var laterRan atomic.Bool
	o := opts()
	o.Bindings = map[string]Fn{
		"boom":  func(*Ctx) error { return fmt.Errorf("boom failed") },
		"never": func(*Ctx) error { laterRan.Store(true); return nil },
	}
	before := runtime.NumGoroutine()
	_, runErr := Run(w, plan, o)
	if runErr == nil {
		t.Fatal("failing binding produced no error")
	}
	if got := runErr.Error(); got != "live: function boom: boom failed" {
		t.Fatalf("unexpected error %q", got)
	}
	if laterRan.Load() {
		t.Fatal("stage after the failure still executed")
	}
	if after := goroutinesSettle(t, before, 2); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestFailKeepsFirstOfConcurrentErrors(t *testing.T) {
	// Two bound functions fail in the same stage; runner.fail must keep
	// exactly one (the first recorded) and the run must still reap every
	// goroutine.
	w, err := dag.FromStages("wf", 0, []*behavior.Spec{
		cpuFn("a", time.Millisecond), cpuFn("b", time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := singleWrapPlan(w, map[string]int{"a": 0, "b": 1}, 2)
	o := opts()
	o.Bindings = map[string]Fn{
		"a": func(*Ctx) error { return fmt.Errorf("a failed") },
		"b": func(*Ctx) error { return fmt.Errorf("b failed") },
	}
	before := runtime.NumGoroutine()
	_, runErr := Run(w, plan, o)
	if runErr == nil {
		t.Fatal("failing bindings produced no error")
	}
	got := runErr.Error()
	if got != "live: function a: a failed" && got != "live: function b: b failed" {
		t.Fatalf("error %q is neither single failure", got)
	}
	if after := goroutinesSettle(t, before, 2); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}
