// Package render formats experiment tables as aligned text for the bench
// harness and CLI. It is deliberately dependency-free: the reproduction's
// "figures" are tables whose rows carry the same series the paper plots.
package render

import (
	"fmt"
	"strings"
)

// Table is one reproduced figure or table.
type Table struct {
	// ID is the experiment identifier ("fig13", "table1", ...).
	ID string
	// Title describes what the paper's figure/table shows.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows are pre-formatted cells; ragged rows are padded.
	Rows [][]string
	// Notes are free-form caveats printed under the table.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a caveat line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, len(cell))
			} else if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width(widths, i), cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", max(total-2, 4)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func width(ws []int, i int) int {
	if i < len(ws) {
		return ws[i]
	}
	return 0
}

// Duration formats a duration in milliseconds with sensible precision.
func Duration(d interface{ Milliseconds() int64 }) string {
	return fmt.Sprintf("%dms", d.Milliseconds())
}

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Ms formats a duration as fractional milliseconds.
func Ms(d interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.1fms", d.Seconds()*1000)
}

// GanttRow is one labelled timeline for Gantt.
type GanttRow struct {
	Label string
	// Spans are (from, to, glyph) triples; glyphs paint the row between
	// the bounds (e.g. 's' startup, '#' run, '.' block).
	Spans []GanttSpan
}

// GanttSpan is one painted interval.
type GanttSpan struct {
	From, To float64 // arbitrary shared unit (e.g. milliseconds)
	Glyph    byte
}

// Gantt renders rows as a fixed-width ASCII chart over [0, max span end],
// the textual equivalent of the paper's Figure 5 timelines. Later spans
// overpaint earlier ones; a trailing axis line marks the scale.
func Gantt(rows []GanttRow, width int) string {
	if width < 10 {
		width = 60
	}
	maxEnd := 0.0
	labelW := 0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
		for _, s := range r.Spans {
			if s.To > maxEnd {
				maxEnd = s.To
			}
		}
	}
	if maxEnd <= 0 {
		return ""
	}
	var b strings.Builder
	scale := float64(width) / maxEnd
	for _, r := range rows {
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for _, s := range r.Spans {
			lo := int(s.From * scale)
			hi := int(s.To * scale)
			if hi <= lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < width; i++ {
				line[i] = s.Glyph
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, r.Label, line)
	}
	fmt.Fprintf(&b, "%-*s 0%*s\n", labelW, "", width, fmt.Sprintf("%.1f", maxEnd))
	return b.String()
}
