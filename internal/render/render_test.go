package render

import (
	"strings"
	"testing"
	"time"
)

func TestTableAlignment(t *testing.T) {
	tab := &Table{
		ID: "t1", Title: "demo",
		Columns: []string{"name", "value"},
	}
	tab.AddRow("short", "1")
	tab.AddRow("much-longer-name", "22")
	tab.AddNote("a note with %d args", 2)
	out := tab.String()

	if !strings.Contains(out, "== t1: demo ==") {
		t.Error("header missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header, columns, rule, 2 rows, note.
	if len(lines) != 6 {
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	// Column starts align: "value" column begins at the same offset in
	// the header and both rows.
	hdrIdx := strings.Index(lines[1], "value")
	if hdrIdx < 0 {
		t.Fatal("no value column")
	}
	if lines[3][hdrIdx] != '1' || lines[4][hdrIdx] != '2' {
		t.Errorf("columns not aligned:\n%s", out)
	}
	if !strings.Contains(out, "note: a note with 2 args") {
		t.Error("note missing")
	}
}

func TestRaggedRowsPad(t *testing.T) {
	tab := &Table{ID: "t", Title: "ragged", Columns: []string{"a"}}
	tab.AddRow("x", "extra", "more")
	out := tab.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "more") {
		t.Errorf("extra cells dropped:\n%s", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := Ms(1500 * time.Microsecond); got != "1.5ms" {
		t.Errorf("Ms = %q", got)
	}
	if got := Duration(2500 * time.Millisecond); got != "2500ms" {
		t.Errorf("Duration = %q", got)
	}
	if got := F1(3.14159); got != "3.1" {
		t.Errorf("F1 = %q", got)
	}
	if got := F2(3.14159); got != "3.14" {
		t.Errorf("F2 = %q", got)
	}
	if got := Pct(0.123); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestEmptyTableStillRenders(t *testing.T) {
	tab := &Table{ID: "e", Title: "empty", Columns: []string{"c"}}
	out := tab.String()
	if !strings.Contains(out, "== e: empty ==") {
		t.Errorf("empty table broken: %q", out)
	}
}

func TestGantt(t *testing.T) {
	rows := []GanttRow{
		{Label: "p1", Spans: []GanttSpan{{0, 5, 's'}, {5, 20, '#'}}},
		{Label: "p2-long", Spans: []GanttSpan{{10, 15, 's'}, {15, 40, '#'}, {18, 25, '.'}}},
	}
	out := Gantt(rows, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "s") || !strings.Contains(lines[0], "#") {
		t.Errorf("row 1 glyphs missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], ".") {
		t.Errorf("overpaint glyph missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], "40.0") {
		t.Errorf("axis missing: %q", lines[2])
	}
	// Rows align: both pipes at the same column.
	if strings.IndexByte(lines[0], '|') != strings.IndexByte(lines[1], '|') {
		t.Error("rows misaligned")
	}
	if Gantt(nil, 40) != "" {
		t.Error("empty input should render empty")
	}
	if out := Gantt(rows, 1); out == "" {
		t.Error("tiny width should fall back, not vanish")
	}
}
