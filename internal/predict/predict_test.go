package predict

import (
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/model"
	"chiron/internal/profiler"
	"chiron/internal/wrap"
)

func cpuFn(name string, d time.Duration) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: d}},
		MemMB:    1,
	}
}

func mixFn(name string, cpu, block time.Duration) *behavior.Spec {
	return &behavior.Spec{
		Name: name, Runtime: behavior.Python,
		Segments: []behavior.Segment{
			{Kind: behavior.CPU, Dur: cpu},
			{Kind: behavior.Sleep, Dur: block},
			{Kind: behavior.CPU, Dur: cpu},
		},
		MemMB: 1,
	}
}

// harness profiles a workflow and returns a predictor over it.
func harness(t *testing.T, w *dag.Workflow) *Predictor {
	t.Helper()
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return New(model.Default(), set)
}

func finra(t *testing.T, par int) *dag.Workflow {
	t.Helper()
	var vs []*behavior.Spec
	for i := 0; i < par; i++ {
		vs = append(vs, cpuFn("v"+string(rune('a'+i)), 900*time.Microsecond))
	}
	w, err := dag.FromStages("finra", 0,
		[]*behavior.Spec{mixFn("fetch", 2*time.Millisecond, 5*time.Millisecond)},
		vs,
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestExecThreadsMatchesAlgorithmOneShape(t *testing.T) {
	w := finra(t, 5)
	p := harness(t, w)
	names := []string{"va", "vb", "vc", "vd", "ve"}
	exec, err := p.ExecThreads(names, wrap.IsoNone)
	if err != nil {
		t.Fatal(err)
	}
	// Five ~0.9ms CPU functions serialized under the GIL plus clone costs:
	// at least 4.5ms, well under 10ms.
	if exec < 4500*time.Microsecond || exec > 10*time.Millisecond {
		t.Fatalf("ExecThreads = %v, want ~5-7ms", exec)
	}
	single, err := p.ExecThreads([]string{"va"}, wrap.IsoNone)
	if err != nil {
		t.Fatal(err)
	}
	if single > 1100*time.Microsecond {
		t.Fatalf("single thread exec %v should be near solo latency", single)
	}
}

func TestProcessEquationFour(t *testing.T) {
	w := finra(t, 5)
	p := harness(t, w)
	c := p.Const
	exec, _ := p.ExecThreads([]string{"va"}, wrap.IsoNone)
	for rank := 0; rank < 3; rank++ {
		got, err := p.Process([]string{"va"}, rank, wrap.IsoNone)
		if err != nil {
			t.Fatal(err)
		}
		want := time.Duration(rank)*c.ProcBlockStep + c.ProcStartup + exec
		if got != want {
			t.Fatalf("rank %d: %v, want %v", rank, got, want)
		}
	}
	main, _ := p.Process([]string{"va"}, -1, wrap.IsoNone)
	if main != exec {
		t.Fatalf("main-process rank must skip fork cost: %v vs %v", main, exec)
	}
}

func TestWrapEquationThree(t *testing.T) {
	w := finra(t, 4)
	p := harness(t, w)
	c := p.Const
	sw := wrap.StageWrap{
		Sandbox: 0,
		Cfg:     wrap.SandboxCfg{CPUs: 4},
		Procs: []wrap.ProcGroup{
			{Proc: 1, Functions: []*behavior.Spec{w.Stages[1].Functions[0]}},
			{Proc: 2, Functions: []*behavior.Spec{w.Stages[1].Functions[1]}},
			{Proc: 3, Functions: []*behavior.Spec{w.Stages[1].Functions[2]}},
		},
	}
	got, err := p.Wrap(sw)
	if err != nil {
		t.Fatal(err)
	}
	// Slowest process is rank 2; IPC for 3 processes adds 2 x T_IPC.
	slowest, _ := p.Process([]string{sw.Procs[2].Functions[0].Name}, 2, wrap.IsoNone)
	want := slowest + 2*c.IPCCost
	if got != want {
		t.Fatalf("Wrap = %v, want %v", got, want)
	}
}

func TestStageEquationTwoRemoteWrapPaysRPC(t *testing.T) {
	w := finra(t, 4)
	p := harness(t, w)
	c := p.Const

	// All four functions local in sandbox 0.
	local := &wrap.Plan{
		Workflow: "finra",
		Loc: map[string]wrap.Loc{
			"fetch": {Sandbox: 0, Proc: 0}, "va": {Sandbox: 0, Proc: 1}, "vb": {Sandbox: 0, Proc: 2}, "vc": {Sandbox: 0, Proc: 3}, "vd": {Sandbox: 0, Proc: 4},
		},
		Sandboxes: []wrap.SandboxCfg{{CPUs: 4}},
	}
	// Two split across sandboxes.
	split := &wrap.Plan{
		Workflow: "finra",
		Loc: map[string]wrap.Loc{
			"fetch": {Sandbox: 0, Proc: 0}, "va": {Sandbox: 0, Proc: 1}, "vb": {Sandbox: 0, Proc: 2}, "vc": {Sandbox: 1, Proc: 1}, "vd": {Sandbox: 1, Proc: 2},
		},
		Sandboxes: []wrap.SandboxCfg{{CPUs: 2}, {CPUs: 2}},
	}
	tl, err := p.Stage(w, local, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := p.Stage(w, split, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With sub-ms functions the RPC (17.5ms) dominates: splitting loses.
	if ts <= tl {
		t.Fatalf("split stage (%v) should exceed local stage (%v) for tiny functions", ts, tl)
	}
	if ts < c.RPCCost {
		t.Fatalf("split stage %v cannot undercut one RPC %v", ts, c.RPCCost)
	}
}

func TestStageSplittingWinsWhenBlockDominates(t *testing.T) {
	// 40 sub-ms functions: one wrap accrues 39 x 3.45ms of fork block
	// time (~134ms); two wraps halve it, easily buying back one 17.5ms
	// RPC. This is the m-to-n model's core trade (Observation 2/3).
	w := finra(t, 40)
	p := harness(t, w)
	names := make([]string, 40)
	for i := range names {
		names[i] = w.Stages[1].Functions[i].Name
	}
	groups := make([][]string, 40)
	for i, n := range names {
		groups[i] = []string{n}
	}
	one, err := p.StageGroups(groups, []int{40}, wrap.IsoNone, false)
	if err != nil {
		t.Fatal(err)
	}
	two, err := p.StageGroups(groups, []int{20, 20}, wrap.IsoNone, false)
	if err != nil {
		t.Fatal(err)
	}
	if two >= one {
		t.Fatalf("two wraps (%v) should beat one wrap (%v) at 40-way parallelism", two, one)
	}
}

func TestStageGroupsValidatesCoverage(t *testing.T) {
	w := finra(t, 4)
	p := harness(t, w)
	groups := [][]string{{"va"}, {"vb"}}
	if _, err := p.StageGroups(groups, []int{1}, wrap.IsoNone, false); err == nil {
		t.Error("under-covering wrapSizes accepted")
	}
	if _, err := p.StageGroups(groups, []int{3}, wrap.IsoNone, false); err == nil {
		t.Error("over-covering wrapSizes accepted")
	}
	if _, err := p.StageGroups([][]string{{"ghost"}}, []int{1}, wrap.IsoNone, false); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestWorkflowEquationOneSumsStages(t *testing.T) {
	w := finra(t, 4)
	p := harness(t, w)
	plan := &wrap.Plan{
		Workflow: "finra",
		Loc: map[string]wrap.Loc{
			"fetch": {Sandbox: 0, Proc: 0}, "va": {Sandbox: 0, Proc: 1}, "vb": {Sandbox: 0, Proc: 2}, "vc": {Sandbox: 0, Proc: 3}, "vd": {Sandbox: 0, Proc: 4},
		},
		Sandboxes: []wrap.SandboxCfg{{CPUs: 4}},
	}
	total, err := p.Workflow(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := p.Stage(w, plan, 0)
	s1, _ := p.Stage(w, plan, 1)
	if total != s0+s1 {
		t.Fatalf("Workflow = %v, want %v + %v", total, s0, s1)
	}
}

func TestSafetyMarginInflates(t *testing.T) {
	w := finra(t, 4)
	p := harness(t, w)
	plan := &wrap.Plan{
		Workflow: "finra",
		Loc: map[string]wrap.Loc{
			"fetch": {Sandbox: 0, Proc: 0}, "va": {Sandbox: 0, Proc: 1}, "vb": {Sandbox: 0, Proc: 2}, "vc": {Sandbox: 0, Proc: 3}, "vd": {Sandbox: 0, Proc: 4},
		},
		Sandboxes: []wrap.SandboxCfg{{CPUs: 4}},
	}
	base, _ := p.Workflow(w, plan)
	p.Safety = 1.15
	inflated, _ := p.Workflow(w, plan)
	ratio := float64(inflated) / float64(base)
	if ratio < 1.14 || ratio > 1.16 {
		t.Fatalf("safety ratio %.3f, want 1.15", ratio)
	}
}

func TestMPKDearerThanNativeCheaperThanSFI(t *testing.T) {
	w := finra(t, 5)
	p := harness(t, w)
	names := []string{"va", "vb", "vc"}
	native, _ := p.ExecThreads(names, wrap.IsoNone)
	mpk, _ := p.ExecThreads(names, wrap.IsoMPK)
	sfi, _ := p.ExecThreads(names, wrap.IsoSFI)
	if !(native < mpk && mpk < sfi) {
		t.Fatalf("isolation ordering broken: native=%v mpk=%v sfi=%v", native, mpk, sfi)
	}
}

func TestPoolWrapUsesDispatcher(t *testing.T) {
	w := finra(t, 4)
	p := harness(t, w)
	fns := w.Stages[1].Functions
	mk := func(pool bool) wrap.StageWrap {
		sw := wrap.StageWrap{Sandbox: 0, Cfg: wrap.SandboxCfg{CPUs: 4, Pool: pool}}
		for i, f := range fns {
			sw.Procs = append(sw.Procs, wrap.ProcGroup{Proc: i + 1, Functions: []*behavior.Spec{f}})
		}
		return sw
	}
	forked, err := p.Wrap(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := p.Wrap(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if pooled >= forked {
		t.Fatalf("pool (%v) must beat per-request forks (%v)", pooled, forked)
	}
}

func TestJavaThreadsTrueParallel(t *testing.T) {
	// GIL-free runtime: 4 CPU-bound threads finish in ~one solo latency.
	var fns []*behavior.Spec
	for i := 0; i < 4; i++ {
		f := cpuFn("j"+string(rune('a'+i)), 10*time.Millisecond)
		f.Runtime = behavior.Java
		fns = append(fns, f)
	}
	w, err := dag.FromStages("java-wf", 0, fns)
	if err != nil {
		t.Fatal(err)
	}
	p := harness(t, w)
	exec, err := p.ExecThreads([]string{"ja", "jb", "jc", "jd"}, wrap.IsoNone)
	if err != nil {
		t.Fatal(err)
	}
	if exec > 13*time.Millisecond {
		t.Fatalf("Java threads took %v, want ~10-12ms (true parallelism)", exec)
	}
}

func TestSequentialStage(t *testing.T) {
	w := finra(t, 4)
	p := harness(t, w)
	seq, err := p.SequentialStage("fetch", wrap.IsoNone)
	if err != nil {
		t.Fatal(err)
	}
	solo := p.Profiles["fetch"].Solo
	if seq < solo || seq > solo+time.Millisecond {
		t.Fatalf("sequential stage %v, want ~solo %v (no fork cost)", seq, solo)
	}
}

func TestWorkflowRejectsInvalidPlan(t *testing.T) {
	w := finra(t, 4)
	p := harness(t, w)
	bad := &wrap.Plan{Workflow: "finra", Loc: map[string]wrap.Loc{}, Sandboxes: []wrap.SandboxCfg{{CPUs: 1}}}
	if _, err := p.Workflow(w, bad); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestNodeWorkerThreadsCostly(t *testing.T) {
	// Section 2.1: Node.js worker threads pay >50ms startup each, unlike
	// CPython's sub-millisecond clones.
	mk := func(rt behavior.Runtime) time.Duration {
		var fns []*behavior.Spec
		for i := 0; i < 3; i++ {
			f := cpuFn("n"+string(rune('a'+i)), 2*time.Millisecond)
			f.Runtime = rt
			fns = append(fns, f)
		}
		w, err := dag.FromStages("rtwf", 0, fns)
		if err != nil {
			t.Fatal(err)
		}
		p := harness(t, w)
		exec, err := p.ExecThreads([]string{"na", "nb", "nc"}, wrap.IsoNone)
		if err != nil {
			t.Fatal(err)
		}
		return exec
	}
	py := mk(behavior.Python)
	node := mk(behavior.NodeJS)
	if node < py+100*time.Millisecond {
		t.Fatalf("Node worker threads (%v) should far exceed CPython threads (%v)", node, py)
	}
}

func TestExecThreadsCachedMatchesUncached(t *testing.T) {
	p := harness(t, finra(t, 6))
	names := []string{"va", "vb", "vc"}
	for _, iso := range []wrap.IsolationKind{wrap.IsoNone, wrap.IsoMPK} {
		want, err := p.ExecThreads(names, iso)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			got, err := p.ExecThreadsCached(names, iso)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("iso %v: cached %v != uncached %v", iso, got, want)
			}
		}
	}
}

func TestExecCacheSharesAcrossPredictors(t *testing.T) {
	// Two predictors over identical profile contents must key the same
	// cache entries: that is what makes adapt re-plans (fresh profiling,
	// unchanged behaviour) nearly free.
	w := finra(t, 6)
	p1 := harness(t, w)
	p2 := harness(t, w)
	names := []string{"va", "vb", "vc", "vd"}
	if _, err := p1.ExecThreadsCached(names, wrap.IsoNone); err != nil {
		t.Fatal(err)
	}
	before := ExecCacheStats()
	if _, err := p2.ExecThreadsCached(names, wrap.IsoNone); err != nil {
		t.Fatal(err)
	}
	after := ExecCacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("second predictor missed the shared cache: %+v -> %+v", before, after)
	}
}

func TestExecCacheKeyedByConstantsAndIso(t *testing.T) {
	w := finra(t, 4)
	p1 := harness(t, w)
	set, err := profiler.ProfileWorkflow(w, profiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c2 := model.Default()
	c2.GILInterval *= 2
	p2 := New(c2, set)
	names := []string{"va", "vb"}
	if p1.execKeyOf(names, wrap.IsoNone) == p2.execKeyOf(names, wrap.IsoNone) {
		t.Fatal("different constants produced identical cache keys")
	}
	if p1.execKeyOf(names, wrap.IsoNone) == p1.execKeyOf(names, wrap.IsoMPK) {
		t.Fatal("isolation not part of the cache key")
	}
	// Distinct keys must also behave as distinct entries: warm one key,
	// then confirm the other two still miss.
	if _, err := p1.ExecThreadsCached(names, wrap.IsoNone); err != nil {
		t.Fatal(err)
	}
	before := ExecCacheStats()
	if _, err := p2.ExecThreadsCached(names, wrap.IsoNone); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.ExecThreadsCached(names, wrap.IsoMPK); err != nil {
		t.Fatal(err)
	}
	after := ExecCacheStats()
	if got := after.Misses - before.Misses; got != 2 {
		t.Fatalf("expected 2 cold lookups for distinct keys, got %d (stats %+v -> %+v)", got, before, after)
	}
}
