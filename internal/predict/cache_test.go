package predict

import (
	"strings"
	"sync"
	"testing"
	"time"

	"chiron/internal/wrap"
)

// TestExecKeyIsolationKinds is the satellite collision table: spec sets
// that differ only in isolation kind must never share a cache entry, for
// every pair of kinds and several group shapes.
func TestExecKeyIsolationKinds(t *testing.T) {
	w := finra(t, 6)
	p := harness(t, w)
	kinds := []wrap.IsolationKind{wrap.IsoNone, wrap.IsoMPK, wrap.IsoSFI}
	groups := [][]string{
		{"va"},
		{"va", "vb"},
		{"va", "vb", "vc", "vd"},
		{"vd", "vc", "vb", "va"}, // order matters: distinct group identity
	}
	for _, names := range groups {
		for i, a := range kinds {
			for _, b := range kinds[i+1:] {
				if p.execKeyOf(names, a) == p.execKeyOf(names, b) {
					t.Errorf("group %v: isolation %q and %q share a cache key", names, a, b)
				}
			}
		}
	}
	// And the cache must actually treat them as distinct entries.
	PurgeExecCache()
	before := ExecCacheStats()
	for _, k := range kinds {
		if _, err := p.ExecThreadsCached([]string{"va", "vb"}, k); err != nil {
			t.Fatal(err)
		}
	}
	after := ExecCacheStats()
	if got := after.Misses - before.Misses; got != uint64(len(kinds)) {
		t.Fatalf("expected %d cold lookups across isolation kinds, got %d", len(kinds), got)
	}
}

func TestExecKeyGroupBoundaries(t *testing.T) {
	// The separator-folded hash streams must distinguish name lists that
	// concatenate identically: ["ab","c"] vs ["a","bc"] vs ["abc"].
	w := finra(t, 4)
	p := harness(t, w)
	cases := [][]string{{"ab", "c"}, {"a", "bc"}, {"abc"}, {"c", "ab"}}
	seen := map[execKey][]string{}
	for _, names := range cases {
		k := p.execKeyOf(names, wrap.IsoNone)
		if prev, dup := seen[k]; dup {
			t.Fatalf("groups %v and %v share a cache key", prev, names)
		}
		seen[k] = names
	}
}

func TestCachedExecThreadsHitDoesNotAllocate(t *testing.T) {
	// Allocation budget: a warm ExecThreadsCached lookup is PGP's innermost
	// candidate-pricing call and must not touch the heap.
	w := finra(t, 6)
	p := harness(t, w)
	names := []string{"va", "vb", "vc", "vd"}
	if _, err := p.ExecThreadsCached(names, wrap.IsoNone); err != nil {
		t.Fatal(err)
	}
	var d time.Duration
	if avg := testing.AllocsPerRun(200, func() {
		v, _, err := p.ExecThreadsCachedHit(names, wrap.IsoNone)
		if err != nil {
			t.Fatal(err)
		}
		d = v
	}); avg > 0 {
		t.Fatalf("cached ExecThreads hit allocates %.1f allocs/run, want 0", avg)
	}
	if d <= 0 {
		t.Fatal("cached prediction is zero")
	}
}

// FuzzExecKeyIsolation drives the collision property with fuzzed group
// names: for any group, distinct isolation kinds yield distinct keys, and
// a group must never collide with the same group plus a trailing name.
func FuzzExecKeyIsolation(f *testing.F) {
	f.Add("fa", "fb")
	f.Add("x", "")
	f.Add("a\x1fb", "c") // adversarial: name containing the separator byte
	f.Add("long-function-name-with-suffix", "long-function-name")
	p := &Predictor{}
	p.fp = 42
	p.fpOnce.Do(func() {}) // pin the fingerprint; only key hashing is under test
	f.Fuzz(func(t *testing.T, a, b string) {
		names := []string{a, b}
		if p.execKeyOf(names, wrap.IsoNone) == p.execKeyOf(names, wrap.IsoMPK) {
			t.Fatalf("group %q: IsoNone and IsoMPK share a key", names)
		}
		if p.execKeyOf(names, wrap.IsoMPK) == p.execKeyOf(names, wrap.IsoSFI) {
			t.Fatalf("group %q: IsoMPK and IsoSFI share a key", names)
		}
		if !strings.Contains(a, "\x1f") && !strings.Contains(b, "\x1f") {
			grown := []string{a, b, "z"}
			if p.execKeyOf(names, wrap.IsoNone) == p.execKeyOf(grown, wrap.IsoNone) {
				t.Fatalf("group %q collides with %q", names, grown)
			}
		}
	})
}

// TestExecCacheStampede is the PR-8 acceptance proof for the prediction
// cache: 100 goroutines racing a cold key run the GIL simulation exactly
// once — the singleflight loader collapses the rest into shared waiters.
// Counters obey loader executions = Misses - Shared, so the assertion is
// exact under any interleaving (late arrivals become plain hits and touch
// neither counter).
func TestExecCacheStampede(t *testing.T) {
	w := finra(t, 6)
	p := harness(t, w)
	names := []string{"va", "vb", "vc", "vd"}
	PurgeExecCache()
	before := ExecCacheStats()

	const goroutines = 100
	var entered, wg sync.WaitGroup
	entered.Add(goroutines)
	start := make(chan struct{})
	results := make([]time.Duration, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Done()
			<-start
			d, _, err := p.ExecThreadsCachedHit(names, wrap.IsoNone)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = d
		}(i)
	}
	entered.Wait()
	close(start)
	wg.Wait()

	after := ExecCacheStats()
	if ran := (after.Misses - before.Misses) - (after.Shared - before.Shared); ran != 1 {
		t.Fatalf("simulations run = %d (misses %d, shared %d), want exactly 1",
			ran, after.Misses-before.Misses, after.Shared-before.Shared)
	}
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got %v, goroutine 0 got %v", i, results[i], results[0])
		}
	}
}
