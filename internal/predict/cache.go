package predict

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"chiron/internal/obs"
	"chiron/internal/parallel"
	"chiron/internal/wrap"
)

// execKey identifies one Algorithm-1 prediction: a process group (ordered
// function names, hashed), under one isolation mechanism, for one predictor
// content fingerprint. It is a fixed-size comparable struct so the hot-path
// lookup builds the key on the stack with zero heap allocations — no
// strings.Builder, no joined name string.
//
// The group is carried as two independent 64-bit hash streams over the
// name bytes (separator \x1f between names, which dag validation keeps out
// of function names) plus the name count; a collision requires two
// different ordered name lists to collide in 128 hash bits simultaneously,
// which is vanishingly unlikely and, per the cache contract, could only
// trade wall-clock time — the fingerprint and isolation fields are exact.
type execKey struct {
	fp  uint64
	iso wrap.IsolationKind
	n   uint32
	h1  uint64 // FNV-1a stream over names
	h2  uint64 // FNV-1 stream (xor/multiply order swapped) over names
}

const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

// execKeyOf builds the cache key for one process group under one isolation
// mechanism, allocation-free.
func (p *Predictor) execKeyOf(names []string, iso wrap.IsolationKind) execKey {
	h1, h2 := fnvOffset, fnvOffset
	for i, name := range names {
		if i > 0 {
			h1 ^= 0x1f
			h1 *= fnvPrime
			h2 *= fnvPrime
			h2 ^= 0x1f
		}
		for j := 0; j < len(name); j++ {
			c := uint64(name[j])
			h1 ^= c
			h1 *= fnvPrime
			h2 *= fnvPrime
			h2 ^= c
		}
	}
	return execKey{fp: p.fingerprint(), iso: iso, n: uint32(len(names)), h1: h1, h2: h2}
}

// execKeyHash selects the cache shard for a key; it only needs to spread.
func execKeyHash(k execKey) uint64 {
	h := k.h1 ^ (k.h2 * fnvPrime) ^ (k.fp * 0x9e3779b97f4a7c15)
	for i := 0; i < len(k.iso); i++ {
		h ^= uint64(k.iso[i])
		h *= fnvPrime
	}
	h += uint64(k.n)
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// execCache is the process-wide prediction cache: Algorithm-1 group
// predictions keyed by (constants, profile contents, isolation, group).
// Keys are content fingerprints, not planner identities, so every PGP
// planner, adapt re-plan and experiment in the process shares one cache —
// a group priced once is never simulated again, no matter which component
// asks. Entries are pure functions of their key, so cache state can change
// wall-clock time but never results.
// Counters publish in obs.Default as chiron_predict_cache_*.
//
// The default policy and size were picked by benchmark (BENCH_pr8.json):
// LRU wins the hit-heavy and serve-mix shapes at this capacity because
// PGP's candidate fan-out re-prices the same groups within a tight
// window; 2Q's probation queue only pays off when scan traffic floods
// the cache faster than 1<<15 entries absorb (see BenchmarkCacheScanFlood
// for the shape where it inverts). ConfigureExecCache swaps either knob
// at boot.
var execCache = parallel.NewCachePolicyMetrics[execKey, time.Duration](
	parallel.PolicyLRU, 1<<15, 16, execKeyHash, obs.Default, "chiron_predict_cache")

// ConfigureExecCache rebuilds the process-wide prediction cache with an
// explicit policy and capacity (capacity <= 0 keeps the default 1<<15).
// Call it at boot (chirond -predict-cache), before traffic: the swap is
// not synchronized with in-flight lookups. Counters are reused across
// the swap, so metric continuity survives reconfiguration.
func ConfigureExecCache(policy parallel.Policy, capacity int) {
	if capacity <= 0 {
		capacity = 1 << 15
	}
	execCache = parallel.NewCachePolicyMetrics[execKey, time.Duration](
		policy, capacity, 16, execKeyHash, obs.Default, "chiron_predict_cache")
}

// ExecCacheStats exposes the shared cache's counters (benchmarks track the
// hit rate across re-plans; Shared counts concurrent misses deduplicated
// by the singleflight loader, so Misses - Shared is the number of GIL
// simulations actually run).
func ExecCacheStats() parallel.CacheStats { return execCache.Stats() }

// PurgeExecCache empties the shared cache (tests that measure cold-path
// behaviour).
func PurgeExecCache() { execCache.Purge() }

// fingerprint returns the predictor's content fingerprint: a hash of the
// calibrated constants and every profile's full content. Two predictors
// built from identical calibrations and profile sets — e.g. an adapt
// controller re-profiling an unchanged workload — produce the same
// fingerprint and therefore share cache entries. Computed once per
// Predictor (it may allocate); per-lookup keys never re-hash it.
func (p *Predictor) fingerprint() uint64 {
	p.fpOnce.Do(func() {
		h := fnv.New64a()
		fmt.Fprintf(h, "%+v", p.Const)
		names := make([]string, 0, len(p.Profiles))
		for name := range p.Profiles {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			prof := p.Profiles[name]
			fmt.Fprintf(h, "|%s:%d:%v:%g:%d", name, prof.Solo, prof.Runtime, prof.MemMB, prof.OutputBytes)
			for _, per := range prof.Periods {
				fmt.Fprintf(h, ";%d,%d,%d", per.Start, per.End, per.Kind)
			}
			for _, f := range prof.Files {
				fmt.Fprintf(h, ";f=%s", f)
			}
		}
		p.fp = h.Sum64()
	})
	return p.fp
}

// ExecThreadsCached is ExecThreads through the process-wide prediction
// cache. PGP's candidate search and adapt's re-plans call this on the hot
// path; identical groups (same profiles, same isolation) are simulated
// once per process and then served from the sharded LRU.
func (p *Predictor) ExecThreadsCached(names []string, iso wrap.IsolationKind) (time.Duration, error) {
	d, _, err := p.ExecThreadsCachedHit(names, iso)
	return d, err
}

// ExecThreadsCachedHit is ExecThreadsCached plus whether the prediction
// was served from the cache, for callers that trace lookup outcomes
// (PGP emits a cache-hit instant per served candidate). The key is built
// once; a steady-state hit performs zero heap allocations.
//
// Misses go through the cache's singleflight loader: when PGP's parallel
// candidate fan-out or a burst of adapt re-plans race on one uncached
// group, exactly one goroutine runs the GIL simulation and the rest
// block on its in-flight entry and share the result (hit=true — they
// did not simulate). The loader closure is only built after the
// zero-alloc hit check fails, so the hot path stays allocation-free.
func (p *Predictor) ExecThreadsCachedHit(names []string, iso wrap.IsolationKind) (time.Duration, bool, error) {
	key := p.execKeyOf(names, iso)
	if d, ok := execCache.Get(key); ok {
		return d, true, nil
	}
	d, computed, err := execCache.ComputeMissed(key, func() (time.Duration, error) {
		return p.ExecThreads(names, iso)
	})
	if err != nil {
		return 0, false, err
	}
	return d, !computed, nil
}
