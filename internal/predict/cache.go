package predict

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"chiron/internal/obs"
	"chiron/internal/parallel"
	"chiron/internal/wrap"
)

// execCache is the process-wide prediction cache: Algorithm-1 group
// predictions keyed by (constants, profile contents, isolation, group).
// Keys are content fingerprints, not planner identities, so every PGP
// planner, adapt re-plan and experiment in the process shares one cache —
// a group priced once is never simulated again, no matter which component
// asks. Entries are pure functions of their key, so cache state can change
// wall-clock time but never results.
// Counters publish in obs.Default as chiron_predict_cache_*.
var execCache = parallel.NewCacheMetrics[time.Duration](1<<15, 16, obs.Default, "chiron_predict_cache")

// ExecCacheStats exposes the shared cache's counters (benchmarks track the
// hit rate across re-plans).
func ExecCacheStats() parallel.CacheStats { return execCache.Stats() }

// PurgeExecCache empties the shared cache (tests that measure cold-path
// behaviour).
func PurgeExecCache() { execCache.Purge() }

// fingerprint returns the predictor's content fingerprint: a hash of the
// calibrated constants and every profile's full content. Two predictors
// built from identical calibrations and profile sets — e.g. an adapt
// controller re-profiling an unchanged workload — produce the same
// fingerprint and therefore share cache entries.
func (p *Predictor) fingerprint() string {
	p.fpOnce.Do(func() {
		h := fnv.New64a()
		fmt.Fprintf(h, "%+v", p.Const)
		names := make([]string, 0, len(p.Profiles))
		for name := range p.Profiles {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			prof := p.Profiles[name]
			fmt.Fprintf(h, "|%s:%d:%v:%g:%d", name, prof.Solo, prof.Runtime, prof.MemMB, prof.OutputBytes)
			for _, per := range prof.Periods {
				fmt.Fprintf(h, ";%d,%d,%d", per.Start, per.End, per.Kind)
			}
			for _, f := range prof.Files {
				fmt.Fprintf(h, ";f=%s", f)
			}
		}
		p.fp = fmt.Sprintf("%016x", h.Sum64())
	})
	return p.fp
}

// execKey builds the cache key for one process group under one isolation
// mechanism. Function names cannot contain the separators (dag validation
// rejects control characters in practice; the fingerprint prefix keeps
// cross-profile collisions impossible regardless).
func (p *Predictor) execKey(names []string, iso wrap.IsolationKind) string {
	var b strings.Builder
	b.Grow(20 + len(names)*12)
	b.WriteString(p.fingerprint())
	fmt.Fprintf(&b, "|%v|", iso)
	b.WriteString(strings.Join(names, "\x1f"))
	return b.String()
}

// ExecThreadsCached is ExecThreads through the process-wide prediction
// cache. PGP's candidate search and adapt's re-plans call this on the hot
// path; identical groups (same profiles, same isolation) are simulated
// once per process and then served from the sharded LRU.
func (p *Predictor) ExecThreadsCached(names []string, iso wrap.IsolationKind) (time.Duration, error) {
	d, _, err := p.ExecThreadsCachedHit(names, iso)
	return d, err
}

// ExecThreadsCachedHit is ExecThreadsCached plus whether the prediction
// was served from the cache, for callers that trace lookup outcomes
// (PGP emits a cache-hit instant per served candidate).
func (p *Predictor) ExecThreadsCachedHit(names []string, iso wrap.IsolationKind) (time.Duration, bool, error) {
	if d, ok := execCache.Get(p.execKey(names, iso)); ok {
		return d, true, nil
	}
	d, err := p.ExecThreads(names, iso)
	if err != nil {
		return 0, false, err
	}
	execCache.Put(p.execKey(names, iso), d)
	return d, false, nil
}
