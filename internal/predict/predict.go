// Package predict implements Chiron's white-box latency Predictor
// (Section 3.3): the end-to-end model of Eq. (1)-(4) plus Algorithm 1's
// multi-thread GIL simulation.
//
// The Predictor sees functions only through their Profiles (package
// profiler) and prices deployments with the calibrated constants — never
// with engine-grade fidelity knobs. The difference between its estimates
// and the engine's ground truth is exactly the prediction error evaluated
// in Figure 12.
package predict

import (
	"fmt"
	"sync"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/dag"
	"chiron/internal/gil"
	"chiron/internal/model"
	"chiron/internal/proc"
	"chiron/internal/profiler"
	"chiron/internal/wrap"
)

// Predictor estimates workflow latency under a deployment plan.
type Predictor struct {
	// Const is the calibrated timing set.
	Const model.Constants
	// Profiles supplies the per-function behaviour estimates.
	Profiles profiler.Set
	// Safety inflates every estimate by this factor when > 1. PGP plans
	// with a safety margin ("Chiron adopts larger parameters to estimate
	// the latency, avoiding performance violation resulting from
	// mispredictions", Section 6.2).
	Safety float64

	// fp memoizes the content fingerprint that keys the shared
	// prediction cache (cache.go). Computed once; Const and Profiles
	// must not be mutated after the first cached prediction.
	fpOnce sync.Once
	fp     uint64
}

// New returns a Predictor with no safety margin.
func New(c model.Constants, profiles profiler.Set) *Predictor {
	return &Predictor{Const: c, Profiles: profiles, Safety: 1}
}

func (p *Predictor) safety(d time.Duration) time.Duration {
	if p.Safety > 1 {
		return time.Duration(float64(d) * p.Safety)
	}
	return d
}

// isolation maps a sandbox's configured mechanism to its cost model.
func (p *Predictor) isolation(kind wrap.IsolationKind) proc.Isolation {
	switch kind {
	case wrap.IsoMPK:
		return proc.MPK(p.Const)
	case wrap.IsoSFI:
		return proc.SFI(p.Const)
	default:
		return proc.NoIsolation()
	}
}

// ExecThreads is Algorithm 1: the predicted makespan of running the given
// functions as threads of one process under the GIL (or truly in parallel
// for GIL-free runtimes). Inputs are function names resolved through the
// profile set.
func (p *Predictor) ExecThreads(names []string, iso wrap.IsolationKind) (time.Duration, error) {
	specs, err := p.Profiles.Specs(names)
	if err != nil {
		return 0, err
	}
	return p.execThreadsSpecs(specs, iso), nil
}

func (p *Predictor) execThreadsSpecs(specs []*behavior.Spec, isoKind wrap.IsolationKind) time.Duration {
	if len(specs) == 0 {
		return 0
	}
	iso := p.isolation(isoKind)
	spawn := p.Const.ThreadStartup + iso.ThreadStartupExtra
	if specs[0].Runtime == behavior.NodeJS {
		// Node.js worker threads pay tens of milliseconds per clone
		// (Section 2.1).
		spawn = p.Const.NodeWorkerStartup + iso.ThreadStartupExtra
	}
	procs := 1
	if !specs[0].Runtime.PseudoParallel() {
		// GIL-free runtime: threads are truly parallel (Figure 18); they
		// still share the process's cpuset, priced at one CPU per thread
		// by the planner, so contention is not modelled here.
		procs = len(specs)
	}
	if len(specs) == 1 {
		spawn = 0
	}
	// Only the makespan is read, so the pooled reusable simulator skips
	// the caller-owned result copy — this is PGP's innermost operation.
	s := gil.AcquireSim()
	res := s.Simulate(specs, gil.Options{
		Procs:      procs,
		Quantum:    p.Const.GILInterval,
		Spawn:      gil.MainThread,
		SpawnBatch: p.Const.ThreadSpawnBatch,
		SpawnCost:  spawn,
		CPUFactor:  iso.CPUFactor,
		IOFactor:   iso.IOFactor,
	})
	total := res.Total
	gil.ReleaseSim(s)
	if n := len(specs); n > 1 && iso.Interaction > 0 {
		total += time.Duration(n-1) * iso.Interaction
	}
	return total
}

// Process is Eq. 4: the completion time of the process holding the given
// functions, forked as the forkRank-th process of its wrap (0-based; rank
// -1 marks the resident main process, which pays no fork cost).
func (p *Predictor) Process(names []string, forkRank int, isoKind wrap.IsolationKind) (time.Duration, error) {
	exec, err := p.ExecThreads(names, isoKind)
	if err != nil {
		return 0, err
	}
	if forkRank < 0 {
		return exec, nil
	}
	return time.Duration(forkRank)*p.Const.ProcBlockStep + p.Const.ProcStartup + exec, nil
}

// groupNames extracts function names from a stage wrap's process groups.
func groupNames(g wrap.ProcGroup) []string {
	names := make([]string, len(g.Functions))
	for i, f := range g.Functions {
		names[i] = f.Name
	}
	return names
}

// Wrap is Eq. 3: the latency of one wrap within one stage — the slowest
// process plus pipe IPC for result gathering.
func (p *Predictor) Wrap(sw wrap.StageWrap) (time.Duration, error) {
	if sw.Cfg.Pool {
		return p.poolWrap(sw)
	}
	var slowest time.Duration
	forkRank := 0
	for _, g := range sw.Procs {
		rank := forkRank
		if g.Proc == 0 && !sw.Cfg.ForkPerRequest {
			rank = -1
		} else {
			forkRank++
		}
		t, err := p.Process(groupNames(g), rank, sw.Cfg.Iso)
		if err != nil {
			return 0, err
		}
		if t > slowest {
			slowest = t
		}
	}
	// Eq. 3: T_IPC x (|P|-1) across the wrap's function processes.
	if n := len(sw.Procs); n > 1 {
		slowest += time.Duration(n-1) * p.Const.IPCCost
	}
	return slowest, nil
}

// poolWrap prices a warm-pool wrap: dispatcher admission, true
// parallelism over the cpuset, workers bounded.
func (p *Predictor) poolWrap(sw wrap.StageWrap) (time.Duration, error) {
	var names []string
	for _, g := range sw.Procs {
		names = append(names, groupNames(g)...)
	}
	specs, err := p.Profiles.Specs(names)
	if err != nil {
		return 0, err
	}
	workers := sw.Cfg.Workers
	if workers == 0 {
		workers = len(specs)
	}
	s := gil.AcquireSim()
	res := s.Simulate(specs, gil.Options{
		Procs:        sw.Cfg.CPUs,
		Quantum:      p.Const.GILInterval,
		Spawn:        gil.Dispatcher,
		SpawnCost:    p.Const.PoolDispatch,
		Workers:      workers,
		LongestFirst: sw.Cfg.LongestFirst,
	})
	total := res.Total
	gil.ReleaseSim(s)
	if n := min(workers, len(specs)); n > 1 {
		total += time.Duration(n-1) * p.Const.IPCCost
	}
	return total, nil
}

// Stage is Eq. 2: wrap 1 (the orchestrator's own sandbox, when it hosts
// stage functions) runs locally; every other wrap pays invocation overhead
// (k-1) x T_INV plus one network round T_RPC.
func (p *Predictor) Stage(w *dag.Workflow, plan *wrap.Plan, stage int) (time.Duration, error) {
	wraps, err := plan.StageWraps(w, stage)
	if err != nil {
		return 0, err
	}
	return p.stageWraps(wraps)
}

func (p *Predictor) stageWraps(wraps []wrap.StageWrap) (time.Duration, error) {
	if len(wraps) == 0 {
		return 0, fmt.Errorf("predict: stage has no wraps")
	}
	var local time.Duration
	var remoteMax time.Duration
	remoteRank := 0
	hasRemote := false
	for _, sw := range wraps {
		t, err := p.Wrap(sw)
		if err != nil {
			return 0, err
		}
		if sw.Sandbox == 0 {
			local = t
			continue
		}
		hasRemote = true
		remoteRank++
		if cand := t + time.Duration(remoteRank)*p.Const.InvokeCost; cand > remoteMax {
			remoteMax = cand
		}
	}
	total := local
	if hasRemote {
		if r := remoteMax + p.Const.RPCCost; r > total {
			total = r
		}
	}
	return total, nil
}

// Workflow is Eq. 1: the sum of all stage latencies, inflated by the
// safety margin.
func (p *Predictor) Workflow(w *dag.Workflow, plan *wrap.Plan) (time.Duration, error) {
	if err := plan.Validate(w); err != nil {
		return 0, err
	}
	var total time.Duration
	for i := range w.Stages {
		t, err := p.Stage(w, plan, i)
		if err != nil {
			return 0, err
		}
		total += t
	}
	return p.safety(total), nil
}

// StageGroups prices a candidate partition during PGP's search without
// materializing a full plan: groups[i] is the function-name set of the
// i-th process; wrapSizes distributes those processes over wraps in order
// (wrap 0 is the orchestrator's sandbox). Iso applies to every process.
// When mainFirst is set, each wrap's first group runs as threads of the
// wrap's existing main process (cloned, not forked) — the hybrid m-to-n
// mode's "thread from an existing process".
func (p *Predictor) StageGroups(groups [][]string, wrapSizes []int, iso wrap.IsolationKind, mainFirst bool) (time.Duration, error) {
	var wraps []wrap.StageWrap
	idx := 0
	for wi, size := range wrapSizes {
		sw := wrap.StageWrap{Sandbox: wi, Cfg: wrap.SandboxCfg{CPUs: max(size, 1), Iso: iso}}
		for j := 0; j < size; j++ {
			if idx >= len(groups) {
				return 0, fmt.Errorf("predict: wrapSizes exceed %d groups", len(groups))
			}
			specs, err := p.Profiles.Specs(groups[idx])
			if err != nil {
				return 0, err
			}
			pr := j + 1
			if mainFirst {
				pr = j
			}
			sw.Procs = append(sw.Procs, wrap.ProcGroup{Proc: pr, Functions: specs})
			idx++
		}
		wraps = append(wraps, sw)
	}
	if idx != len(groups) {
		return 0, fmt.Errorf("predict: wrapSizes cover %d of %d groups", idx, len(groups))
	}
	t, err := p.stageWraps(wraps)
	if err != nil {
		return 0, err
	}
	return p.safety(t), nil
}

// SequentialStage prices a single-function stage executed as a thread of
// the orchestrator's main process (rank -1), the treatment Chiron and
// Faastlane give sequential functions.
func (p *Predictor) SequentialStage(name string, iso wrap.IsolationKind) (time.Duration, error) {
	t, err := p.Process([]string{name}, -1, iso)
	if err != nil {
		return 0, err
	}
	return p.safety(t), nil
}
