package sandbox

import (
	"testing"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/model"
)

func fn(mem float64) *behavior.Spec {
	return &behavior.Spec{
		Name: "f", Runtime: behavior.Python,
		Segments: []behavior.Segment{{Kind: behavior.CPU, Dur: time.Millisecond}},
		MemMB:    mem,
	}
}

func TestOneToOneMemoryRedundancy(t *testing.T) {
	// Observation 4: 10 one-to-one sandboxes pay the runtime 10 times;
	// one shared sandbox with 10 threads pays it once. The paper measures
	// ~77-85% memory savings.
	c := model.Default()
	var oneToOne float64
	for i := 0; i < 10; i++ {
		oneToOne += ForSingle(fn(2), 1).MemoryMB(c)
	}
	shared := ForWrap(behavior.Python, [][]*behavior.Spec{
		{fn(2), fn(2), fn(2), fn(2), fn(2), fn(2), fn(2), fn(2), fn(2), fn(2)},
	}, false, 1).MemoryMB(c)
	saving := 1 - shared/oneToOne
	if saving < 0.7 || saving > 0.95 {
		t.Fatalf("thread sharing saves %.0f%% memory, want 70-95%% (1:1=%.1fMB shared=%.1fMB)", saving*100, oneToOne, shared)
	}
}

func TestThreadsCheaperThanProcesses(t *testing.T) {
	c := model.Default()
	fns := []*behavior.Spec{fn(1), fn(1), fn(1), fn(1), fn(1)}
	procs := make([][]*behavior.Spec, len(fns))
	for i, f := range fns {
		procs[i] = []*behavior.Spec{f}
	}
	processMode := ForWrap(behavior.Python, procs, false, 5).MemoryMB(c)
	threadMode := ForWrap(behavior.Python, [][]*behavior.Spec{fns}, false, 1).MemoryMB(c)
	if threadMode >= processMode {
		t.Fatalf("threads (%.1fMB) must undercut processes (%.1fMB)", threadMode, processMode)
	}
}

func TestPoolResidency(t *testing.T) {
	// "the long-running processes consume more than 5x memory to avoid
	// duplicate startup overhead".
	c := model.Default()
	fns := [][]*behavior.Spec{{fn(1)}, {fn(1)}, {fn(1)}, {fn(1)}, {fn(1)}}
	forked := ForWrap(behavior.Python, fns, false, 5)
	pooled := ForWrap(behavior.Python, fns, true, 5)
	fm, pm := forked.MemoryMB(c), pooled.MemoryMB(c)
	if pm <= fm {
		t.Fatalf("pool (%.1fMB) must exceed forked (%.1fMB)", pm, fm)
	}
	procPart := pm - c.SandboxRuntimeMB - 5
	forkedProcPart := fm - c.SandboxRuntimeMB - 5
	ratio := procPart / forkedProcPart
	if ratio < 4.5 || ratio > 6 {
		t.Fatalf("pool process residency ratio %.1fx, want ~%.1fx", ratio, c.PoolResidentFactor)
	}
}

func TestPoolOfOneStillPaysWorker(t *testing.T) {
	c := model.Default()
	single := ForWrap(behavior.Python, [][]*behavior.Spec{{fn(1)}}, false, 1)
	pool1 := ForWrap(behavior.Python, [][]*behavior.Spec{{fn(1)}}, true, 1)
	if pool1.MemoryMB(c) <= single.MemoryMB(c) {
		t.Fatal("size-1 pool should cost more than a plain process")
	}
}

func TestStartLatency(t *testing.T) {
	c := model.Default()
	s := ForSingle(fn(1), 1)
	if got := s.StartLatency(c, true); got != c.ColdStart {
		t.Errorf("cold start = %v, want %v", got, c.ColdStart)
	}
	if got := s.StartLatency(c, false); got != 0 {
		t.Errorf("warm start = %v, want 0", got)
	}
}

func TestCounts(t *testing.T) {
	s := ForWrap(behavior.Python, [][]*behavior.Spec{
		{fn(1), fn(1)}, {fn(1)},
	}, false, 2)
	if s.NumProcs() != 2 || s.NumFunctions() != 3 {
		t.Fatalf("counts = %d procs / %d fns, want 2/3", s.NumProcs(), s.NumFunctions())
	}
}

func TestValidate(t *testing.T) {
	good := ForSingle(fn(1), 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Sandbox)
	}{
		{"no procs", func(s *Sandbox) { s.Procs = nil }},
		{"zero threads", func(s *Sandbox) { s.Procs[0].Threads = 0 }},
		{"zero cpus", func(s *Sandbox) { s.CPUs = 0 }},
		{"negative mem", func(s *Sandbox) { s.FnMemMB = -1 }},
	}
	for _, tc := range cases {
		s := ForSingle(fn(1), 1)
		tc.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
