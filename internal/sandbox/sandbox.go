// Package sandbox models the container substrate: what one sandbox costs
// to start and to keep resident.
//
// Memory accounting follows Observation 4 / Figure 16: every sandbox pays
// its language runtime once (the redundancy that makes one-to-one
// deployment 11x-37x more expensive), each forked process adds private
// interpreter residue, each extra thread adds only a stack, pool workers
// keep arenas resident, and each distinct function brings its own private
// working set.
package sandbox

import (
	"fmt"
	"time"

	"chiron/internal/behavior"
	"chiron/internal/model"
)

// Proc describes one process inside a sandbox by how many functions it
// hosts as threads (>= 1; the first runs on the process main thread).
type Proc struct {
	Threads int
}

// Sandbox is a static description of one deployed instance: enough to
// price its memory, CPU reservation and start latency. Execution dynamics
// live in package proc; this package is the resource ledger.
type Sandbox struct {
	// Runtime is the language runtime baked into the image.
	Runtime behavior.Runtime
	// Procs lists the resident processes.
	Procs []Proc
	// Pool marks warm-pool sandboxes (long-lived workers, resident
	// arenas).
	Pool bool
	// CPUs is the cpuset reservation.
	CPUs int
	// FnMemMB is the summed private working set of the functions deployed
	// into this sandbox.
	FnMemMB float64
}

// Validate reports structurally broken descriptions.
func (s *Sandbox) Validate() error {
	if len(s.Procs) == 0 {
		return fmt.Errorf("sandbox: no processes")
	}
	for i, p := range s.Procs {
		if p.Threads < 1 {
			return fmt.Errorf("sandbox: process %d has %d threads", i, p.Threads)
		}
	}
	if s.CPUs < 1 {
		return fmt.Errorf("sandbox: %d CPUs reserved", s.CPUs)
	}
	if s.FnMemMB < 0 {
		return fmt.Errorf("sandbox: negative function memory")
	}
	return nil
}

// NumProcs returns the resident process count.
func (s *Sandbox) NumProcs() int { return len(s.Procs) }

// NumFunctions returns the total functions hosted.
func (s *Sandbox) NumFunctions() int {
	n := 0
	for _, p := range s.Procs {
		n += p.Threads
	}
	return n
}

// MemoryMB prices the sandbox's resident memory under the calibration c.
func (s *Sandbox) MemoryMB(c model.Constants) float64 {
	mem := c.SandboxRuntimeMB + s.FnMemMB
	procMB := c.ProcOverheadMB
	if s.Pool {
		procMB *= c.PoolResidentFactor
	}
	for _, p := range s.Procs {
		// The first process is the sandbox's own runtime process, already
		// covered by SandboxRuntimeMB; extra threads in it still pay
		// stacks.
		mem += float64(p.Threads-1) * c.ThreadOverheadMB
	}
	if n := len(s.Procs); n > 1 {
		mem += float64(n-1) * procMB
	} else if s.Pool {
		// A pool of size 1 still keeps one resident worker beyond the
		// parent.
		mem += procMB
	}
	return mem
}

// StartLatency returns the sandbox's spawn cost: a cold start pays the
// full container boot; a pre-warmed instance is immediately schedulable.
func (s *Sandbox) StartLatency(c model.Constants, cold bool) time.Duration {
	if cold {
		return c.ColdStart
	}
	return 0
}

// ForWrap builds the ledger entry for a wrap deployment: processes[j]
// hosts len(processes[j]) functions as threads.
func ForWrap(rt behavior.Runtime, processes [][]*behavior.Spec, pool bool, cpus int) *Sandbox {
	s := &Sandbox{Runtime: rt, Pool: pool, CPUs: cpus}
	for _, fns := range processes {
		s.Procs = append(s.Procs, Proc{Threads: len(fns)})
		for _, f := range fns {
			s.FnMemMB += f.MemMB
		}
	}
	return s
}

// ForSingle builds the ledger entry for a one-to-one deployment of fn.
func ForSingle(fn *behavior.Spec, cpus int) *Sandbox {
	return &Sandbox{
		Runtime: fn.Runtime,
		Procs:   []Proc{{Threads: 1}},
		CPUs:    cpus,
		FnMemMB: fn.MemMB,
	}
}
