package obs

// Tests for labeled series, text-format escaping, the OpenMetrics
// exemplar rendering, and the strict parser's histogram invariants.

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{`all\"of` + "\nthem", `all\\\"of\nthem`},
		{"", ""},
		{`\`, `\\`},
		{`\\`, `\\\\`},
		{`trailing\`, `trailing\\`},
	}
	for _, c := range cases {
		if got := EscapeLabel(c.in); got != c.want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLabelsRendering(t *testing.T) {
	if got := Labels(); got != "" {
		t.Errorf("Labels() = %q, want empty", got)
	}
	if got := Labels("workflow", "Social"); got != `{workflow="Social"}` {
		t.Errorf("got %q", got)
	}
	if got := Labels("a", "1", "b", `x"y`); got != `{a="1",b="x\"y"}` {
		t.Errorf("got %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd kv count did not panic")
		}
	}()
	Labels("only-key")
}

// TestWritePromLabeledSeries: labeled series of one family share one
// HELP/TYPE header, stay contiguous, and escaped values round-trip
// through the strict parser.
func TestWritePromLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("slo_bad_total"+Labels("workflow", "A"), "bad requests").Add(3)
	r.Counter("slo_bad_total"+Labels("workflow", `we"ird\wf`+"\n2"), "bad requests").Add(5)
	// A family whose name would sort between "slo_bad_total" and
	// "slo_bad_total{..." under raw-byte ordering ('_' < '{').
	r.Counter("slo_bad_totals_total", "different family").Add(7)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "# TYPE slo_bad_total counter"); n != 1 {
		t.Errorf("want exactly 1 TYPE line for slo_bad_total, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, `slo_bad_total{workflow="A"} 3`) {
		t.Errorf("missing labeled sample:\n%s", out)
	}
	if !strings.Contains(out, `slo_bad_total{workflow="we\"ird\\wf\n2"} 5`) {
		t.Errorf("missing escaped labeled sample:\n%s", out)
	}
	// Family contiguity: the other family must not interleave.
	a := strings.Index(out, `slo_bad_total{workflow="A"}`)
	b := strings.Index(out, `slo_bad_total{workflow="we`)
	c := strings.Index(out, "slo_bad_totals_total 7")
	if !(a < b && b < c) {
		t.Errorf("labeled family interleaved (a=%d b=%d c=%d):\n%s", a, b, c, out)
	}

	fams, err := CheckProm(strings.NewReader(out))
	if err != nil {
		t.Fatalf("strict parse: %v\n%s", err, out)
	}
	f := fams["slo_bad_total"]
	if f == nil || len(f.Samples) != 2 {
		t.Fatalf("parser saw %+v", f)
	}
	seen := map[string]float64{}
	for _, s := range f.Samples {
		seen[s.Labels["workflow"]] = s.Value
	}
	if seen["A"] != 3 {
		t.Errorf("A = %v", seen["A"])
	}
	if seen[`we"ird\wf`+"\n2"] != 5 {
		t.Errorf("escaped label did not round-trip: %+v", seen)
	}
}

func TestWritePromLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat"+Labels("plane", "udp"), "latency", []time.Duration{time.Millisecond})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lat histogram",
		`lat_bucket{plane="udp",le="0.001"} 1`,
		`lat_bucket{plane="udp",le="+Inf"} 2`,
		`lat_sum{plane="udp"}`,
		`lat_count{plane="udp"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if _, err := CheckProm(strings.NewReader(out)); err != nil {
		t.Fatalf("strict parse: %v\n%s", err, out)
	}
}

func TestWriteOpenMetricsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []time.Duration{time.Millisecond, time.Second})
	h.Observe(2 * time.Millisecond)
	h.SetExemplar(2*time.Millisecond, 42)

	var classic, om bytes.Buffer
	if err := r.WriteProm(&classic); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(classic.String(), "trace_id") {
		t.Errorf("classic output must not carry exemplars:\n%s", classic.String())
	}
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	if !strings.Contains(out, `lat_bucket{le="1"} 1 # {trace_id="42"} 0.002`) {
		t.Errorf("missing exemplar:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics output missing # EOF:\n%s", out)
	}
}

func TestCheckPromRejectsMalformed(t *testing.T) {
	cases := []struct{ name, in string }{
		{"bad-name", "1bad_name 3\n"},
		{"no-value", "metric\n"},
		{"bad-value", "metric abc\n"},
		{"bad-escape", `m{l="a\q"} 1` + "\n"},
		{"unterminated-label", `m{l="a} 1` + "\n"},
		{"bad-label-name", `m{0l="a"} 1` + "\n"},
		{"missing-inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"count-mismatch", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
		{"non-monotone", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"missing-sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"},
		{"missing-count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n"},
	}
	for _, c := range cases {
		if _, err := CheckProm(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted malformed input:\n%s", c.name, c.in)
		}
	}
}

func TestCheckPromAcceptsRegistryOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests").Add(10)
	r.Gauge("depth", "queue depth").Set(3)
	r.Histogram("lat", "latency", nil).Observe(time.Millisecond)
	r.IntHistogram("sizes", "bytes", nil).Observe(512)
	RegisterBuildInfo(r)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := CheckProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("CheckProm rejected registry output: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"reqs_total", "depth", "lat", "sizes", "chiron_build_info"} {
		if _, ok := fams[want]; !ok {
			t.Errorf("family %s missing from parse", want)
		}
	}
	bi := fams["chiron_build_info"]
	if len(bi.Samples) != 1 || bi.Samples[0].Value != 1 {
		t.Fatalf("chiron_build_info = %+v", bi.Samples)
	}
	if bi.Samples[0].Labels["go_version"] == "" || bi.Samples[0].Labels["version"] == "" {
		t.Errorf("chiron_build_info labels incomplete: %+v", bi.Samples[0].Labels)
	}
}

func TestRuntimeBridgeCollect(t *testing.T) {
	r := NewRegistry()
	b := NewRuntimeBridge(r)
	b.Collect()
	if v := r.Gauge("chiron_runtime_goroutines", "").Value(); v <= 0 {
		t.Errorf("goroutines gauge = %d, want > 0", v)
	}
	if v := r.Gauge("chiron_runtime_heap_bytes", "").Value(); v <= 0 {
		t.Errorf("heap gauge = %d, want > 0", v)
	}
	// The bridged output must satisfy the strict parser too.
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckProm(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("runtime metrics fail strict parse: %v", err)
	}
	// Start/Stop cycle terminates cleanly.
	b.Start(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	b.Stop()
}

func TestReadBuild(t *testing.T) {
	b := ReadBuild()
	if b.GoVersion == "" {
		t.Error("GoVersion empty")
	}
}
