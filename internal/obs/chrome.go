package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"chiron/internal/render"
)

// chromeEvent is one trace_event object. Field order is fixed by the
// struct, and args are pre-rendered in Arg order, so serialization is
// deterministic.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  *float64        `json:"dur,omitempty"`
	PID  int             `json:"pid"`
	TID  int             `json:"tid"`
	S    string          `json:"s,omitempty"`
	Args json.RawMessage `json:"args,omitempty"`
}

// us converts a virtual/nominal duration to trace_event microseconds.
func us(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}

// encodeArgs renders an ordered Arg list as a JSON object, preserving
// order (encoding/json would sort a map; we want recording order).
func encodeArgs(args []Arg) json.RawMessage {
	if len(args) == 0 {
		return nil
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		k, _ := json.Marshal(a.Key)
		v, _ := json.Marshal(a.Val)
		b.Write(k)
		b.WriteByte(':')
		b.Write(v)
	}
	b.WriteByte('}')
	return json.RawMessage(b.String())
}

// WriteChrome renders the trace in the Chrome trace_event JSON format
// (the "JSON Object Format": {"traceEvents": [...]}), loadable in
// Perfetto or chrome://tracing. Virtual-time traces map nanosecond
// timestamps onto the microsecond timeline; sandboxes appear as
// pseudo-processes with their functions as threads. Output is
// byte-deterministic for a canonically-equal trace.
func (t *Trace) WriteChrome(w io.Writer) error {
	var evs []chromeEvent

	// Metadata: process and thread names, sorted for determinism.
	t.mu.Lock()
	type pname struct {
		pid  int
		name string
	}
	var procs []pname
	for pid, name := range t.procs {
		procs = append(procs, pname{pid, name})
	}
	type tname struct {
		pid, tid int
		name     string
	}
	var threads []tname
	for k, name := range t.threads {
		threads = append(threads, tname{k[0], k[1], name})
	}
	t.mu.Unlock()
	sort.Slice(procs, func(i, j int) bool { return procs[i].pid < procs[j].pid })
	sort.Slice(threads, func(i, j int) bool {
		if threads[i].pid != threads[j].pid {
			return threads[i].pid < threads[j].pid
		}
		return threads[i].tid < threads[j].tid
	})
	for _, p := range procs {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", PID: p.pid,
			Args: encodeArgs([]Arg{{Key: "name", Val: p.name}}),
		})
	}
	for _, th := range threads {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", PID: th.pid, TID: th.tid,
			Args: encodeArgs([]Arg{{Key: "name", Val: th.name}}),
		})
	}

	for _, s := range t.Spans() {
		d := us(s.End - s.Start)
		evs = append(evs, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X", Ts: us(s.Start), Dur: &d,
			PID: s.PID, TID: s.TID, Args: encodeArgs(s.Args),
		})
	}
	for _, i := range t.Instants() {
		evs = append(evs, chromeEvent{
			Name: i.Name, Cat: i.Cat, Ph: "i", Ts: us(i.At),
			PID: i.PID, TID: i.TID, S: "t", Args: encodeArgs(i.Args),
		})
	}
	for _, c := range t.Samples() {
		evs = append(evs, chromeEvent{
			Name: c.Name, Ph: "C", Ts: us(c.At), PID: c.PID,
			Args: encodeArgs([]Arg{{Key: "value", Val: fmt.Sprintf("%g", c.Value)}}),
		})
	}

	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range evs {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return err
}

// timelineGlyphs maps span categories to Gantt glyphs.
var timelineGlyphs = map[string]byte{
	CatRequest:  '=',
	CatStage:    '-',
	CatWrap:     'w',
	CatFunction: '#',
	CatSlice:    '.',
	CatIPC:      'i',
	CatRPC:      'r',
	CatBoundary: 'b',
	CatCold:     'c',
	CatPlan:     'p',
	CatLoad:     'l',
}

// Timeline renders the trace as a fixed-width text chart via
// render.Gantt: one row per (pid, tid) track, spans painted by
// category glyph ('=' request, '-' stage, 'w' wrap, '#' function,
// '.' slice detail, 'i' IPC, 'r' RPC, 'b' boundary, 'c' cold start).
// Units are milliseconds.
func (t *Trace) Timeline(width int) string {
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	type track struct{ pid, tid int }
	var order []track
	rowsByTrack := map[track]*render.GanttRow{}
	t.mu.Lock()
	procs := make(map[int]string, len(t.procs))
	for pid, name := range t.procs {
		procs[pid] = name
	}
	t.mu.Unlock()
	for _, s := range spans {
		tr := track{s.PID, s.TID}
		row, ok := rowsByTrack[tr]
		if !ok {
			label := procs[s.PID]
			if label == "" {
				label = fmt.Sprintf("p%d", s.PID)
			}
			if s.TID != 0 {
				label = fmt.Sprintf("%s.t%d", label, s.TID)
			}
			row = &render.GanttRow{Label: label}
			rowsByTrack[tr] = row
			order = append(order, tr)
		}
		glyph := timelineGlyphs[s.Cat]
		if glyph == 0 {
			glyph = '?'
		}
		row.Spans = append(row.Spans, render.GanttSpan{
			From:  s.Start.Seconds() * 1000,
			To:    s.End.Seconds() * 1000,
			Glyph: glyph,
		})
	}
	// Row order: by (pid, tid) so sandboxes group together.
	sort.Slice(order, func(i, j int) bool {
		if order[i].pid != order[j].pid {
			return order[i].pid < order[j].pid
		}
		return order[i].tid < order[j].tid
	})
	rows := make([]render.GanttRow, len(order))
	for i, tr := range order {
		rows[i] = *rowsByTrack[tr]
	}
	return render.Gantt(rows, width)
}
