package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets is the default latency histogram layout, spanning the
// microsecond dispatch costs through multi-second cold workflows.
func DefBuckets() []time.Duration {
	return []time.Duration{
		100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
	}
}

// Exemplar links one histogram bucket to a retained trace: the flight
// recorder stamps the bucket a kept request landed in, so a latency
// spike in /metrics points straight at a fetchable trace id.
type Exemplar struct {
	TraceID uint64
	Value   float64 // observed value in seconds
}

// Histogram is a fixed-bucket latency histogram. Buckets hold counts of
// observations at or below their upper bound (cumulative on export, per
// the Prometheus convention); observation is lock-free.
type Histogram struct {
	bounds    []time.Duration // ascending upper bounds
	counts    []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum       atomic.Int64    // nanoseconds
	count     atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1, last-write-wins
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (nil means DefBuckets).
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets()
	}
	bounds = append([]time.Duration(nil), bounds...)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// SetExemplar attaches a trace id to the bucket d falls in. It does not
// count an observation — callers Observe first, then stamp the exemplar
// once a trace is known to be retained (exemplars must reference
// fetchable traces). Last write per bucket wins.
func (h *Histogram) SetExemplar(d time.Duration, traceID uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: d.Seconds()})
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile approximates the q-quantile from bucket counts: the upper
// bound of the bucket where the cumulative count crosses q (an upper
// bound of the true quantile, exact to bucket resolution).
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] // +Inf bucket: report the top bound
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// DefSizeBuckets is the default datagram/payload size histogram layout
// (bytes), spanning a bare header through a jumbo-free MTU.
func DefSizeBuckets() []int64 {
	return []int64{32, 64, 128, 256, 512, 1024, 1200, 1500}
}

// IntHistogram is a fixed-bucket histogram over plain integers (byte
// counts, queue depths) — the duration-typed Histogram's unit-free twin.
// Buckets hold counts of observations at or below their upper bound;
// observation is lock-free.
type IntHistogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	count  atomic.Uint64
}

// NewIntHistogram returns a histogram over the given ascending upper
// bounds (nil means DefSizeBuckets).
func NewIntHistogram(bounds []int64) *IntHistogram {
	if len(bounds) == 0 {
		bounds = DefSizeBuckets()
	}
	bounds = append([]int64(nil), bounds...)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	return &IntHistogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *IntHistogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *IntHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *IntHistogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average observation (0 when empty).
func (h *IntHistogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Registry is a named collection of counters, gauges and histograms.
// Lookup is get-or-create, so packages can declare their metrics at
// init and tests can read them back by name.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaugs map[string]*Gauge
	hists map[string]*Histogram
	sizes map[string]*IntHistogram
	help  map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  map[string]*Counter{},
		gaugs: map[string]*Gauge{},
		hists: map[string]*Histogram{},
		sizes: map[string]*IntHistogram{},
		help:  map[string]string{},
	}
}

// Default is the process-wide registry: the prediction cache, worker
// pool and load generator register here, and chiron-bench -metrics
// dumps it.
var Default = NewRegistry()

func (r *Registry) setHelp(name, help string) {
	if help != "" {
		r.help[name] = help
	}
}

// Counter returns the registered counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	r.setHelp(name, help)
	return c
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gaugs[name]
	if !ok {
		g = &Gauge{}
		r.gaugs[name] = g
	}
	r.setHelp(name, help)
	return g
}

// Histogram returns the registered histogram, creating it on first use
// (nil bounds means DefBuckets; bounds are fixed at creation).
func (r *Registry) Histogram(name, help string, bounds []time.Duration) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	r.setHelp(name, help)
	return h
}

// IntHistogram returns the registered integer histogram, creating it on
// first use (nil bounds means DefSizeBuckets; bounds are fixed at
// creation).
func (r *Registry) IntHistogram(name, help string, bounds []int64) *IntHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.sizes[name]
	if !ok {
		h = NewIntHistogram(bounds)
		r.sizes[name] = h
	}
	r.setHelp(name, help)
	return h
}

// Reset zeroes every registered metric, keeping registrations. Tests
// use it to isolate runs; package-level metric pointers stay valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.ctrs {
		c.v.Store(0)
	}
	for _, g := range r.gaugs {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		for i := range h.exemplars {
			h.exemplars[i].Store(nil)
		}
		h.sum.Store(0)
		h.count.Store(0)
	}
	for _, h := range r.sizes {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.count.Store(0)
	}
}

// ---- labeled series ----
//
// The registry keys series by their full name, which may carry an
// inline label block: Counter(`chiron_slo_bad_total{workflow="x"}`).
// Labels builds such a block with correct text-format escaping; the
// exporters split it back apart so HELP/TYPE lines name the bare
// family, histogram buckets merge `le` into the existing set, and
// families stay contiguous in the output.

// EscapeLabel escapes a label value for the Prometheus text exposition
// format: backslash, double quote and newline must be escaped (in that
// order — escaping the escape character first).
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line: only backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Labels renders alternating key/value pairs as a `{k="v",...}` label
// block with escaped values, suitable for appending to a metric name
// handed to the registry. Keys are written as given (callers pass valid
// label names); values go through EscapeLabel. Panics on an odd number
// of arguments — that is a programming error, not input.
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs.Labels: odd number of key/value arguments")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// splitSeries separates a registry series name into its bare family
// name and the inner label list (without braces, "" when unlabeled).
func splitSeries(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	inner := name[i+1:]
	inner = strings.TrimSuffix(inner, "}")
	return name[:i], inner
}

// series renders "base{labels}" or just "base", and "base_suffix{...}"
// variants for histogram children.
func seriesName(base, suffix, labels string) string {
	if labels == "" {
		return base + suffix
	}
	return base + suffix + "{" + labels + "}"
}

// bucketName renders a histogram bucket series, merging le into any
// existing labels.
func bucketName(base, labels, le string) string {
	if labels == "" {
		return base + `_bucket{le="` + le + `"}`
	}
	return base + `_bucket{` + labels + `,le="` + le + `"}`
}

// WriteProm renders every metric in the Prometheus text exposition
// format (classic 0.0.4: no exemplars), families contiguous and sorted
// by name so output is stable. Labeled series of one family share a
// single HELP/TYPE header.
func (r *Registry) WriteProm(w io.Writer) error {
	return r.writeText(w, false)
}

// WriteOpenMetrics renders the same families with OpenMetrics-style
// bucket exemplars (`# {trace_id="7"} 0.093` after bucket samples) and
// a trailing `# EOF`. Classic-format scrapers should use WriteProm;
// this variant exists so latency buckets can point at retained flight
// traces.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.writeText(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (r *Registry) writeText(w io.Writer, exemplars bool) error {
	type hsnap struct {
		bounds    []time.Duration
		counts    []uint64
		exemplars []*Exemplar
		sum       time.Duration
		count     uint64
	}
	type isnap struct {
		bounds []int64
		counts []uint64
		sum    int64
		count  uint64
	}
	type row struct {
		base, labels string
		kind         byte
		name         string // full series name as registered
	}

	r.mu.Lock()
	rows := make([]row, 0, len(r.ctrs)+len(r.gaugs)+len(r.hists)+len(r.sizes))
	add := func(n string, kind byte) {
		base, labels := splitSeries(n)
		rows = append(rows, row{base: base, labels: labels, kind: kind, name: n})
	}
	ctrs := map[string]uint64{}
	gaugs := map[string]int64{}
	hists := map[string]hsnap{}
	sizes := map[string]isnap{}
	help := map[string]string{}
	for n, c := range r.ctrs {
		add(n, 'c')
		ctrs[n] = c.Value()
		help[n] = r.help[n]
	}
	for n, g := range r.gaugs {
		add(n, 'g')
		gaugs[n] = g.Value()
		help[n] = r.help[n]
	}
	for n, h := range r.hists {
		add(n, 'h')
		s := hsnap{bounds: h.bounds, sum: h.Sum(), count: h.Count()}
		s.counts = make([]uint64, len(h.counts))
		s.exemplars = make([]*Exemplar, len(h.counts))
		for i := range h.counts {
			s.counts[i] = h.counts[i].Load()
			s.exemplars[i] = h.exemplars[i].Load()
		}
		hists[n] = s
		help[n] = r.help[n]
	}
	for n, h := range r.sizes {
		add(n, 'i')
		s := isnap{bounds: h.bounds, sum: h.Sum(), count: h.Count()}
		s.counts = make([]uint64, len(h.counts))
		for i := range h.counts {
			s.counts[i] = h.counts[i].Load()
		}
		sizes[n] = s
		help[n] = r.help[n]
	}
	r.mu.Unlock()

	// Sort by (family, labels) so a family's labeled series stay
	// contiguous — `{` sorts after `_`, so sorting raw names could
	// interleave another family between an unlabeled and a labeled
	// series of the same base.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].base != rows[j].base {
			return rows[i].base < rows[j].base
		}
		return rows[i].labels < rows[j].labels
	})

	kindName := map[byte]string{'c': "counter", 'g': "gauge", 'h': "histogram", 'i': "histogram"}
	lastFamily := ""
	for _, rw := range rows {
		if rw.base != lastFamily {
			lastFamily = rw.base
			if hl := help[rw.name]; hl != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", rw.base, escapeHelp(hl)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", rw.base, kindName[rw.kind]); err != nil {
				return err
			}
		}
		switch rw.kind {
		case 'c':
			if _, err := fmt.Fprintf(w, "%s %d\n", rw.name, ctrs[rw.name]); err != nil {
				return err
			}
		case 'g':
			if _, err := fmt.Fprintf(w, "%s %d\n", rw.name, gaugs[rw.name]); err != nil {
				return err
			}
		case 'i':
			h := sizes[rw.name]
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i]
				if _, err := fmt.Fprintf(w, "%s %d\n", bucketName(rw.base, rw.labels, fmt.Sprintf("%d", b)), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.counts)-1]
			if _, err := fmt.Fprintf(w, "%s %d\n", bucketName(rw.base, rw.labels, "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n%s %d\n",
				seriesName(rw.base, "_sum", rw.labels), h.sum,
				seriesName(rw.base, "_count", rw.labels), h.count); err != nil {
				return err
			}
		default:
			h := hists[rw.name]
			cum := uint64(0)
			writeBucket := func(le string, cum uint64, ex *Exemplar) error {
				if _, err := fmt.Fprintf(w, "%s %d", bucketName(rw.base, rw.labels, le), cum); err != nil {
					return err
				}
				if exemplars && ex != nil {
					if _, err := fmt.Fprintf(w, " # {trace_id=\"%d\"} %g", ex.TraceID, ex.Value); err != nil {
						return err
					}
				}
				_, err := io.WriteString(w, "\n")
				return err
			}
			for i, b := range h.bounds {
				cum += h.counts[i]
				if err := writeBucket(fmt.Sprintf("%g", b.Seconds()), cum, h.exemplars[i]); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.counts)-1]
			if err := writeBucket("+Inf", cum, h.exemplars[len(h.counts)-1]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %g\n%s %d\n",
				seriesName(rw.base, "_sum", rw.labels), h.sum.Seconds(),
				seriesName(rw.base, "_count", rw.labels), h.count); err != nil {
				return err
			}
		}
	}
	return nil
}
