package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets is the default latency histogram layout, spanning the
// microsecond dispatch costs through multi-second cold workflows.
func DefBuckets() []time.Duration {
	return []time.Duration{
		100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
	}
}

// Histogram is a fixed-bucket latency histogram. Buckets hold counts of
// observations at or below their upper bound (cumulative on export, per
// the Prometheus convention); observation is lock-free.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64    // nanoseconds
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (nil means DefBuckets).
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets()
	}
	bounds = append([]time.Duration(nil), bounds...)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile approximates the q-quantile from bucket counts: the upper
// bound of the bucket where the cumulative count crosses q (an upper
// bound of the true quantile, exact to bucket resolution).
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] // +Inf bucket: report the top bound
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// DefSizeBuckets is the default datagram/payload size histogram layout
// (bytes), spanning a bare header through a jumbo-free MTU.
func DefSizeBuckets() []int64 {
	return []int64{32, 64, 128, 256, 512, 1024, 1200, 1500}
}

// IntHistogram is a fixed-bucket histogram over plain integers (byte
// counts, queue depths) — the duration-typed Histogram's unit-free twin.
// Buckets hold counts of observations at or below their upper bound;
// observation is lock-free.
type IntHistogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	count  atomic.Uint64
}

// NewIntHistogram returns a histogram over the given ascending upper
// bounds (nil means DefSizeBuckets).
func NewIntHistogram(bounds []int64) *IntHistogram {
	if len(bounds) == 0 {
		bounds = DefSizeBuckets()
	}
	bounds = append([]int64(nil), bounds...)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	return &IntHistogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *IntHistogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *IntHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *IntHistogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average observation (0 when empty).
func (h *IntHistogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Registry is a named collection of counters, gauges and histograms.
// Lookup is get-or-create, so packages can declare their metrics at
// init and tests can read them back by name.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaugs map[string]*Gauge
	hists map[string]*Histogram
	sizes map[string]*IntHistogram
	help  map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  map[string]*Counter{},
		gaugs: map[string]*Gauge{},
		hists: map[string]*Histogram{},
		sizes: map[string]*IntHistogram{},
		help:  map[string]string{},
	}
}

// Default is the process-wide registry: the prediction cache, worker
// pool and load generator register here, and chiron-bench -metrics
// dumps it.
var Default = NewRegistry()

func (r *Registry) setHelp(name, help string) {
	if help != "" {
		r.help[name] = help
	}
}

// Counter returns the registered counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	r.setHelp(name, help)
	return c
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gaugs[name]
	if !ok {
		g = &Gauge{}
		r.gaugs[name] = g
	}
	r.setHelp(name, help)
	return g
}

// Histogram returns the registered histogram, creating it on first use
// (nil bounds means DefBuckets; bounds are fixed at creation).
func (r *Registry) Histogram(name, help string, bounds []time.Duration) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	r.setHelp(name, help)
	return h
}

// IntHistogram returns the registered integer histogram, creating it on
// first use (nil bounds means DefSizeBuckets; bounds are fixed at
// creation).
func (r *Registry) IntHistogram(name, help string, bounds []int64) *IntHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.sizes[name]
	if !ok {
		h = NewIntHistogram(bounds)
		r.sizes[name] = h
	}
	r.setHelp(name, help)
	return h
}

// Reset zeroes every registered metric, keeping registrations. Tests
// use it to isolate runs; package-level metric pointers stay valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.ctrs {
		c.v.Store(0)
	}
	for _, g := range r.gaugs {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.count.Store(0)
	}
	for _, h := range r.sizes {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.count.Store(0)
	}
}

// WriteProm renders every metric in the Prometheus text exposition
// format, sorted by name so output is stable.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.ctrs)+len(r.gaugs)+len(r.hists)+len(r.sizes))
	for n := range r.ctrs {
		names = append(names, n)
	}
	for n := range r.gaugs {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.sizes {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot under the lock; rendering happens after.
	type hsnap struct {
		bounds []time.Duration
		counts []uint64
		sum    time.Duration
		count  uint64
	}
	type isnap struct {
		bounds []int64
		counts []uint64
		sum    int64
		count  uint64
	}
	ctrs := map[string]uint64{}
	gaugs := map[string]int64{}
	hists := map[string]hsnap{}
	sizes := map[string]isnap{}
	help := map[string]string{}
	kind := map[string]byte{}
	for n, c := range r.ctrs {
		ctrs[n] = c.Value()
		help[n] = r.help[n]
		kind[n] = 'c'
	}
	for n, g := range r.gaugs {
		gaugs[n] = g.Value()
		help[n] = r.help[n]
		kind[n] = 'g'
	}
	for n, h := range r.hists {
		s := hsnap{bounds: h.bounds, sum: h.Sum(), count: h.Count()}
		s.counts = make([]uint64, len(h.counts))
		for i := range h.counts {
			s.counts[i] = h.counts[i].Load()
		}
		hists[n] = s
		help[n] = r.help[n]
		kind[n] = 'h'
	}
	for n, h := range r.sizes {
		s := isnap{bounds: h.bounds, sum: h.Sum(), count: h.Count()}
		s.counts = make([]uint64, len(h.counts))
		for i := range h.counts {
			s.counts[i] = h.counts[i].Load()
		}
		sizes[n] = s
		help[n] = r.help[n]
		kind[n] = 'i'
	}
	r.mu.Unlock()

	for _, n := range names {
		if hl := help[n]; hl != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, hl); err != nil {
				return err
			}
		}
		switch kind[n] {
		case 'c':
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, ctrs[n]); err != nil {
				return err
			}
		case 'g':
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, gaugs[n]); err != nil {
				return err
			}
		case 'i':
			h := sizes[n]
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
				return err
			}
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, b, cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.counts)-1]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, h.sum, n, h.count); err != nil {
				return err
			}
		default:
			h := hists[n]
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
				return err
			}
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", n, b.Seconds(), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.counts)-1]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, h.sum.Seconds(), n, h.count); err != nil {
				return err
			}
		}
	}
	return nil
}
