package obs

// Strict validator for the Prometheus text exposition format (the
// classic 0.0.4 dialect WriteProm emits). CI's obs-smoke target runs it
// against a live /metrics scrape via cmd/promcheck, so a malformed
// label escape or a histogram missing its +Inf bucket fails the build
// instead of silently confusing a scraper. The checks go beyond line
// syntax: histogram bucket series must be cumulative-monotone, end at
// le="+Inf", and agree with their _count sample.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string            // bare metric name (no label block)
	Labels map[string]string // decoded label values
	Value  float64
}

// PromFamily groups the samples that share a bare family name, in the
// histogram sense: chiron_serve_latency_bucket/_sum/_count all belong
// to family chiron_serve_latency once TYPE declares it a histogram.
type PromFamily struct {
	Name    string
	Type    string // counter | gauge | histogram | untyped
	Help    string
	Samples []PromSample
}

// ParseProm strictly parses a classic-format exposition. It returns
// families keyed by name, or the first error with its line number.
func ParseProm(r io.Reader) (map[string]*PromFamily, error) {
	fams := map[string]*PromFamily{}
	get := func(name string) *PromFamily {
		f, ok := fams[name]
		if !ok {
			f = &PromFamily{Name: name, Type: "untyped"}
			fams[name] = f
		}
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parsePromComment(line, get); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suf)
			if base != s.Name {
				if f, ok := fams[base]; ok && f.Type == "histogram" {
					fam = base
				}
				break
			}
		}
		get(fam).Samples = append(get(fam).Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func parsePromComment(line string, get func(string) *PromFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment, legal
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !promNameRe.MatchString(name) {
			return fmt.Errorf("TYPE names invalid metric %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		f := get(name)
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		f.Type = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		name := fields[2]
		if !promNameRe.MatchString(name) {
			return fmt.Errorf("HELP names invalid metric %q", name)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		if i := strings.IndexAny(strings.ReplaceAll(strings.ReplaceAll(help, `\\`, ""), `\n`, ""), "\\"); i >= 0 {
			return fmt.Errorf("HELP for %s has invalid escape", name)
		}
		get(name).Help = help
	}
	return nil
}

func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if brace >= 0 && (sp < 0 || brace < sp) {
		s.Name = rest[:brace]
		var err error
		rest, err = parsePromLabels(rest[brace:], s.Labels)
		if err != nil {
			return s, err
		}
	} else {
		if sp < 0 {
			return s, fmt.Errorf("sample %q has no value", line)
		}
		s.Name = rest[:sp]
		rest = rest[sp:]
	}
	if !promNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = strings.TrimLeft(rest, " ")
	// Value is the first space-separated token; a timestamp may follow.
	val := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		val = rest[:i]
		ts := strings.TrimSpace(rest[i+1:])
		if ts != "" {
			if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
				return s, fmt.Errorf("invalid timestamp %q", ts)
			}
		}
	}
	v, err := parsePromValue(val)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// parsePromLabels consumes a `{k="v",...}` block (rest starts at '{')
// and returns what follows the closing brace.
func parsePromLabels(rest string, out map[string]string) (string, error) {
	rest = rest[1:] // skip '{'
	for {
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return rest, fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(rest[:eq])
		if !promLabelRe.MatchString(name) {
			return rest, fmt.Errorf("invalid label name %q", name)
		}
		rest = strings.TrimLeft(rest[eq+1:], " ")
		if !strings.HasPrefix(rest, `"`) {
			return rest, fmt.Errorf("label %s value not quoted", name)
		}
		rest = rest[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return rest, fmt.Errorf("label %s has dangling backslash", name)
				}
				i++
				switch rest[i] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return rest, fmt.Errorf("label %s has invalid escape \\%c", name, rest[i])
				}
				continue
			}
			if c == '"' {
				out[name] = b.String()
				rest = rest[i+1:]
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return rest, fmt.Errorf("label %s value unterminated", name)
		}
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		return rest, fmt.Errorf("expected ',' or '}' after label %s", name)
	}
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid sample value %q", s)
	}
	return v, nil
}

// labelsKey renders the non-le labels of a sample as a stable grouping
// key, so one histogram family with several label sets is checked per
// series.
func labelsKey(s PromSample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// CheckProm parses an exposition and enforces the invariants WriteProm
// promises: histogram bucket series are cumulative-monotone, include a
// le="+Inf" bucket, and that bucket equals the _count sample; every
// histogram also carries a _sum. Returns the parsed families on
// success.
func CheckProm(r io.Reader) (map[string]*PromFamily, error) {
	fams, err := ParseProm(r)
	if err != nil {
		return nil, err
	}
	for name, f := range fams {
		if f.Type != "histogram" {
			continue
		}
		type hseries struct {
			buckets []PromSample
			sum     *PromSample
			count   *PromSample
		}
		series := map[string]*hseries{}
		get := func(k string) *hseries {
			h, ok := series[k]
			if !ok {
				h = &hseries{}
				series[k] = h
			}
			return h
		}
		for i := range f.Samples {
			s := f.Samples[i]
			key := labelsKey(s)
			switch s.Name {
			case name + "_bucket":
				get(key).buckets = append(get(key).buckets, s)
			case name + "_sum":
				get(key).sum = &f.Samples[i]
			case name + "_count":
				get(key).count = &f.Samples[i]
			default:
				return nil, fmt.Errorf("histogram %s has stray sample %s", name, s.Name)
			}
		}
		for key, h := range series {
			where := name
			if key != "" {
				where = name + "{" + key + "}"
			}
			if len(h.buckets) == 0 {
				return nil, fmt.Errorf("histogram %s has no buckets", where)
			}
			prev := -1.0
			var infCount float64
			sawInf := false
			for _, b := range h.buckets {
				le, ok := b.Labels["le"]
				if !ok {
					return nil, fmt.Errorf("histogram %s bucket missing le label", where)
				}
				if b.Value < prev {
					return nil, fmt.Errorf("histogram %s buckets not cumulative at le=%s", where, le)
				}
				prev = b.Value
				if le == "+Inf" {
					sawInf = true
					infCount = b.Value
				}
			}
			if !sawInf {
				return nil, fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", where)
			}
			if h.count == nil {
				return nil, fmt.Errorf("histogram %s missing _count", where)
			}
			if h.sum == nil {
				return nil, fmt.Errorf("histogram %s missing _sum", where)
			}
			if h.count.Value != infCount {
				return nil, fmt.Errorf("histogram %s _count %g != +Inf bucket %g", where, h.count.Value, infCount)
			}
		}
	}
	return fams, nil
}
